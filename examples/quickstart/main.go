// Quickstart: build a sensor grid, track one object through a few moves,
// and locate it from another corner of the network — the smallest complete
// use of the public API.
package main

import (
	"fmt"
	"log"

	mot "repro"
)

func main() {
	// A 16x16 sensor grid (unit spacing); sensor (x, y) has ID y*16+x.
	g := mot.Grid(16, 16)

	tr, err := mot.NewTracker(g, mot.Options{
		Seed:                1, // deterministic overlay construction
		SpecialParentOffset: 2, // sigma of Definition 3
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay: %d levels, root (sink) at sensor %d\n",
		tr.OverlayHeight(), tr.RootNode())

	// An animal appears in the south-west corner.
	const elk = mot.ObjectID(1)
	if err := tr.Publish(elk, 0); err != nil {
		log.Fatal(err)
	}

	// It wanders east along the bottom row; each step between adjacent
	// sensors is one maintenance operation in the tracking structure.
	for _, next := range []mot.NodeID{1, 2, 3, 19, 35, 36} {
		if err := tr.Move(elk, next); err != nil {
			log.Fatal(err)
		}
	}

	// A sensor in the opposite corner asks where the elk is.
	proxy, cost, err := tr.Query(255, elk)
	if err != nil {
		log.Fatal(err)
	}
	optimal := tr.Metric().Dist(255, proxy)
	fmt.Printf("query from sensor 255: elk at sensor %d (cost %.1f, optimal %.1f, ratio %.2f)\n",
		proxy, cost, optimal, cost/optimal)

	m := tr.Meter()
	fmt.Printf("maintenance so far: %d ops, cost ratio %.2f (paper: O(min{log n, log D}))\n",
		m.MaintOps, m.MaintRatio())

	if err := tr.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("directory invariants: ok")
}
