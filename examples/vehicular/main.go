// Vehicular tracking on the live distributed runtime: every road-side
// sensor runs as its own goroutine, and a fleet of vehicles moves through
// the grid concurrently while dispatchers query their positions. This
// exercises the message-passing realization of MOT (one goroutine per
// sensor, operations as messages) rather than the metered sequential
// engine.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	mot "repro"
)

func main() {
	// A 24x24 road grid: 576 intersections with road-side sensors.
	g := mot.Grid(24, 24)
	d, err := mot.NewDistributed(g, mot.Options{Seed: 42, SpecialParentOffset: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	const fleet = 24
	const trips = 60

	var wg sync.WaitGroup
	positions := make([]mot.NodeID, fleet)
	for v := 0; v < fleet; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + v)))
			pos := mot.NodeID(rng.Intn(g.N()))
			if err := d.Publish(mot.ObjectID(v), pos); err != nil {
				log.Fatal(err)
			}
			for t := 0; t < trips; t++ {
				nbrs := g.NeighborIDs(pos)
				pos = nbrs[rng.Intn(len(nbrs))]
				if err := d.Move(mot.ObjectID(v), pos); err != nil {
					log.Fatal(err)
				}
				// Every few blocks a dispatcher checks in on the vehicle.
				if t%15 == 14 {
					dispatcher := mot.NodeID(rng.Intn(g.N()))
					got, _, err := d.Query(dispatcher, mot.ObjectID(v))
					if err != nil {
						log.Fatal(err)
					}
					if got != pos {
						log.Fatalf("vehicle %d: dispatcher saw %d, truth %d", v, got, pos)
					}
				}
			}
			positions[v] = pos
		}(v)
	}
	wg.Wait()

	// Final roll call from the depot (sensor 0).
	correct := 0
	for v := 0; v < fleet; v++ {
		got, _, err := d.Query(0, mot.ObjectID(v))
		if err != nil {
			log.Fatal(err)
		}
		if got == positions[v] {
			correct++
		}
	}
	fmt.Printf("fleet of %d vehicles, %d moves each, tracked across %d sensor goroutines\n",
		fleet, trips, g.N())
	fmt.Printf("final roll call: %d/%d located correctly\n", correct, fleet)
	fmt.Printf("total message distance: %.0f (%.1f per maintenance operation)\n",
		d.Cost(), d.Cost()/float64(fleet*trips))
}
