// General networks (§6): sensors deployed at random positions connect by
// radio range, and the tracker runs on the (O(log n), O(log n))
// sparse-partition overlay instead of the constant-doubling hierarchy. The
// example also exercises §7's coarse dynamics: part of the field dies and
// tracking migrates to the surviving deployment.
package main

import (
	"fmt"
	"log"
	"math/rand"

	mot "repro"
)

func main() {
	// 120 sensors scattered over a 12x12 field, radio radius 2.
	rng := rand.New(rand.NewSource(11))
	g := mot.RandomGeometricGraph(120, 12, 2, rng)

	tr, err := mot.NewTracker(g, mot.Options{GeneralOverlay: true, SpecialParentOffset: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random geometric network: %d sensors, overlay height %d\n",
		g.N(), tr.OverlayHeight())

	// Track a handful of objects through random walks.
	locs := make([]mot.NodeID, 6)
	for o := range locs {
		locs[o] = mot.NodeID(rng.Intn(g.N()))
		if err := tr.Publish(mot.ObjectID(o), locs[o]); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		o := rng.Intn(len(locs))
		nbrs := g.NeighborIDs(locs[o])
		locs[o] = nbrs[rng.Intn(len(nbrs))]
		if err := tr.Move(mot.ObjectID(o), locs[o]); err != nil {
			log.Fatal(err)
		}
	}
	found := 0
	for o := range locs {
		got, _, err := tr.Query(0, mot.ObjectID(o))
		if err != nil {
			log.Fatal(err)
		}
		if got == locs[o] {
			found++
		}
	}
	m := tr.Meter()
	fmt.Printf("tracked %d objects through 300 moves: %d/%d located, maintenance ratio %.2f\n",
		len(locs), found, len(locs), m.MaintMeanRatio())

	// §7 coarse dynamics: the deployment is replaced (e.g. after battery
	// depletion crosses the rebuild threshold); tracking migrates.
	g2 := mot.RandomGeometricGraph(100, 12, 2, rand.New(rand.NewSource(12)))
	fresh, err := mot.Migrate(tr, g2, mot.Options{GeneralOverlay: true, SpecialParentOffset: 2},
		func(old mot.NodeID) mot.NodeID { return mot.NodeID(int(old) % g2.N()) })
	if err != nil {
		log.Fatal(err)
	}
	got, _, err := fresh.Query(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after redeployment to %d sensors: object 0 tracked at sensor %d\n", g2.N(), got)
}
