// Habitat monitoring (the paper's motivating application, §1): a herd of
// animals roams a sensor field under the random-waypoint model while
// ranger stations issue location queries. The example compares
// traffic-oblivious MOT with the traffic-conscious baselines on the exact
// same season of movement — including what happens when the animals'
// movement patterns change after the baselines were built, the situation
// MOT's traffic-obliviousness is designed for.
package main

import (
	"fmt"
	"log"

	mot "repro"
)

func main() {
	g := mot.Grid(20, 20)
	m := mot.NewMetric(g)

	// Season one: the migration the baselines get to observe.
	season1, err := mot.GenerateWorkload(g, m, mot.WorkloadConfig{
		Objects:        40,
		MovesPerObject: 300,
		Queries:        200,
		Model:          mot.RandomWaypoint,
		Seed:           2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Season two: different year, different movement (the baselines keep
	// their season-one trees; MOT never needed traffic knowledge).
	season2, err := mot.GenerateWorkload(g, m, mot.WorkloadConfig{
		Objects:        40,
		MovesPerObject: 300,
		Queries:        200,
		Model:          mot.RandomWaypoint,
		Seed:           2025,
	})
	if err != nil {
		log.Fatal(err)
	}
	season1Rates := mot.DetectionRates(season1, g)

	build := func() map[string]mot.Directory {
		tr, err := mot.NewTrackerWithMetric(g, m, mot.Options{Seed: 7, SpecialParentOffset: 2})
		if err != nil {
			log.Fatal(err)
		}
		stun, err := mot.NewSTUN(g, m, season1Rates)
		if err != nil {
			log.Fatal(err)
		}
		zdat, err := mot.NewZDAT(g, m, season1Rates, mot.ZDATOptions{ZoneDepth: 2, Sink: mot.Undefined})
		if err != nil {
			log.Fatal(err)
		}
		return map[string]mot.Directory{"MOT": tr, "STUN": stun, "Z-DAT": zdat}
	}

	for name, season := range map[string]*mot.Workload{"season 1 (observed traffic)": season1, "season 2 (unseen traffic)": season2} {
		fmt.Printf("== %s ==\n", name)
		for _, alg := range []string{"MOT", "STUN", "Z-DAT"} {
			d := build()[alg]
			meter, err := mot.Replay(d, season)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-6s maintenance ratio %6.2f, query ratio %6.2f\n",
				alg, meter.MaintMeanRatio(), meter.QueryMeanRatio())
		}
	}
	fmt.Println("MOT needs no traffic knowledge, so its ratios are the same kind in both seasons;")
	fmt.Println("the baselines' trees were tuned to season-one detection rates.")
}
