// Intrusion detection (military surveillance, §1): a few intruders cross a
// large monitored field while many checkpoints flood the network with
// location queries. The example shows the two properties MOT brings to
// this query-heavy regime: per-node storage load stays bounded under §5
// load balancing (memory-constrained sensors!) and queries stay
// distance-sensitive, while the concurrent simulator demonstrates queries
// overlapping maintenance and chasing moving intruders.
package main

import (
	"fmt"
	"log"
	"sort"

	mot "repro"
)

func main() {
	g := mot.Grid(32, 32) // 1024 sensors, the paper's largest network
	m := mot.NewMetric(g)

	w, err := mot.GenerateWorkload(g, m, mot.WorkloadConfig{
		Objects:        100,
		MovesPerObject: 10,
		Queries:        400,
		Seed:           99,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Load-balanced MOT versus STUN on the same intrusion scenario.
	balanced, err := mot.NewTrackerWithMetric(g, m, mot.Options{
		Seed: 5, SpecialParentOffset: 2, LoadBalance: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	stun, err := mot.NewSTUN(g, m, mot.DetectionRates(w, g))
	if err != nil {
		log.Fatal(err)
	}

	for name, d := range map[string]mot.Directory{"MOT(lb)": balanced, "STUN": stun} {
		meter, err := mot.Replay(d, w)
		if err != nil {
			log.Fatal(err)
		}
		load := d.LoadByNode()
		sort.Ints(load)
		over10 := 0
		for _, c := range load {
			if c > 10 {
				over10++
			}
		}
		fmt.Printf("%-8s query ratio %5.2f | load: max %3d per sensor, %d sensors over 10 entries\n",
			name, meter.QueryMeanRatio(), load[len(load)-1], over10)
	}

	// Concurrent wave: bursts of up to 10 moves per intruder with
	// checkpoint queries overlapping the movement.
	res, err := mot.RunConcurrent(g, w, mot.ConcurrentOptions{Seed: 5, Concurrency: 10, PeriodSync: true})
	if err != nil {
		log.Fatal(err)
	}
	waited, chased := 0, 0
	for _, q := range res.Queries {
		if q.Waited {
			waited++
		}
		if q.Restarts > 0 {
			chased++
		}
	}
	fmt.Printf("concurrent wave: %d queries answered while intruders moved; %d waited at a stale proxy, %d re-climbed\n",
		len(res.Queries), waited, chased)
	fmt.Printf("concurrent maintenance ratio %.2f, query ratio %.2f\n",
		res.Meter.MaintMeanRatio(), res.Meter.QueryMeanRatio())
}
