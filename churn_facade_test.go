package mot

import (
	"math/rand"
	"testing"
)

// incrTracker builds an IncrementalRepair tracker over a grid with a
// moved-around population, returning the ground-truth proxies.
func incrTracker(t *testing.T, w, h, objects int, opt Options) (*Tracker, *Graph, []NodeID) {
	t.Helper()
	g := Grid(w, h)
	opt.IncrementalRepair = true
	tr, err := NewTracker(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	locs := make([]NodeID, objects)
	for o := range locs {
		locs[o] = NodeID(rng.Intn(g.N()))
		if err := tr.Publish(ObjectID(o), locs[o]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10*objects; i++ {
		o := rng.Intn(len(locs))
		nbrs := g.NeighborIDs(locs[o])
		locs[o] = nbrs[rng.Intn(len(nbrs))]
		if err := tr.Move(ObjectID(o), locs[o]); err != nil {
			t.Fatal(err)
		}
	}
	return tr, g, locs
}

func TestIncrementalRepairOptionGuards(t *testing.T) {
	g := Grid(3, 3)
	if _, err := NewTracker(g, Options{IncrementalRepair: true, GeneralOverlay: true}); err == nil {
		t.Fatal("IncrementalRepair with GeneralOverlay accepted")
	}
	if _, err := NewTracker(g, Options{IncrementalRepair: true, LoadBalance: true}); err == nil {
		t.Fatal("IncrementalRepair with LoadBalance accepted")
	}
}

// TestFailRecoverDefinedNoOps pins the §7 idempotence contract in both
// regimes: failing a failed node and recovering a live node change
// nothing — no error, no extra churn accounting, no meter movement.
func TestFailRecoverDefinedNoOps(t *testing.T) {
	for _, incremental := range []bool{false, true} {
		opt := Options{Seed: 4, SpecialParentOffset: 2, IncrementalRepair: incremental}
		g := Grid(5, 5)
		tr, err := NewTracker(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Publish(1, 7); err != nil {
			t.Fatal(err)
		}
		if err := tr.RecoverNode(3); err != nil {
			t.Fatalf("incremental=%v: recovering a live node: %v", incremental, err)
		}
		if err := tr.FailNode(12); err != nil {
			t.Fatalf("incremental=%v: FailNode: %v", incremental, err)
		}
		before := tr.Meter()
		if err := tr.FailNode(12); err != nil {
			t.Fatalf("incremental=%v: double FailNode: %v", incremental, err)
		}
		if got := tr.Meter(); got != before {
			t.Fatalf("incremental=%v: double FailNode moved the meter: %+v vs %+v", incremental, got, before)
		}
		if got := tr.FailedNodes(); len(got) != 1 || got[0] != 12 {
			t.Fatalf("incremental=%v: FailedNodes = %v", incremental, got)
		}
		if err := tr.RecoverNode(12); err != nil {
			t.Fatalf("incremental=%v: RecoverNode: %v", incremental, err)
		}
		if err := tr.RecoverNode(12); err != nil {
			t.Fatalf("incremental=%v: double RecoverNode: %v", incremental, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("incremental=%v: invariants: %v", incremental, err)
		}
	}
}

// TestIncrementalChurnAvailability is the tentpole's availability claim at
// facade scope: while sensors are down, every object on a live proxy
// stays queryable from live nodes, and the directory passes invariants
// after each event once the damage is repaired.
func TestIncrementalChurnAvailability(t *testing.T) {
	tr, g, locs := incrTracker(t, 8, 8, 5, Options{Seed: 11, UseParentSets: true, SpecialParentOffset: 2})
	proxies := map[NodeID]bool{}
	for _, p := range locs {
		proxies[p] = true
	}
	// Fail three non-proxy sensors in sequence, then recover them.
	down := []NodeID{}
	for n := 0; n < g.N() && len(down) < 3; n++ {
		if !proxies[NodeID(n)] {
			down = append(down, NodeID(n))
		}
	}
	check := func(stage string) {
		t.Helper()
		failed := map[NodeID]bool{}
		for _, n := range tr.FailedNodes() {
			failed[n] = true
		}
		for o, want := range locs {
			from := NodeID(0)
			for failed[from] {
				from++
			}
			got, _, err := tr.Query(from, ObjectID(o))
			if err != nil {
				t.Fatalf("%s: query %d from %d: %v", stage, o, from, err)
			}
			if got != want {
				t.Fatalf("%s: object %d at %d, want %d", stage, o, got, want)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: invariants: %v", stage, err)
		}
	}
	for _, n := range down {
		if err := tr.FailNode(n); err != nil {
			t.Fatalf("FailNode(%d): %v", n, err)
		}
		check("after fail")
	}
	// Tracking continues mid-churn: move an object across live nodes.
	nbrs := g.NeighborIDs(locs[0])
	to := nbrs[len(nbrs)-1]
	if err := tr.Move(0, to); err != nil {
		t.Fatalf("Move mid-churn: %v", err)
	}
	locs[0] = to
	check("after mid-churn move")
	for _, n := range down {
		if err := tr.RecoverNode(n); err != nil {
			t.Fatalf("RecoverNode(%d): %v", n, err)
		}
		check("after recover")
	}
	if m := tr.Meter(); m.RecoveryOps == 0 {
		t.Fatal("churn repaired nothing — the schedule should have damaged at least one trail")
	}
}

// TestIncrementalThresholdRebuildParksObjects drives churn past the
// threshold so the coarse fallback rebuilds over the live set: objects on
// a failed proxy park until their sensor returns, everything else stays
// tracked.
func TestIncrementalThresholdRebuildParksObjects(t *testing.T) {
	opt := Options{Seed: 8, UseParentSets: true, SpecialParentOffset: 2,
		Chaos: &ChaosConfig{ChurnThreshold: 0.01}}
	tr, _, locs := incrTracker(t, 6, 6, 4, opt)
	victim := locs[1]
	if err := tr.FailNode(victim); err != nil {
		t.Fatalf("FailNode(%d): %v", victim, err)
	}
	parked := tr.ParkedObjects()
	if len(parked) == 0 {
		t.Fatal("threshold rebuild parked nothing despite a failed proxy")
	}
	for _, o := range parked {
		if locs[o] != victim {
			t.Fatalf("object %d parked but proxied at %d, not the victim %d", o, locs[o], victim)
		}
		if _, ok := tr.Location(o); ok {
			t.Fatalf("parked object %d still in the directory", o)
		}
		if err := tr.Move(o, 0); err == nil {
			t.Fatalf("moving parked object %d accepted", o)
		}
	}
	// Unparked survivors remain available during the outage.
	for o, want := range locs {
		if want == victim {
			continue
		}
		from := NodeID(0)
		if from == victim {
			from = 1
		}
		got, _, err := tr.Query(from, ObjectID(o))
		if err != nil || got != want {
			t.Fatalf("object %d: got %d err %v, want %d", o, got, err, want)
		}
	}
	if err := tr.RecoverNode(victim); err != nil {
		t.Fatalf("RecoverNode: %v", err)
	}
	if got := tr.ParkedObjects(); len(got) != 0 {
		t.Fatalf("objects still parked after recovery: %v", got)
	}
	for o, want := range locs {
		if got, ok := tr.Location(ObjectID(o)); !ok || got != want {
			t.Fatalf("object %d at %d after recovery, want %d", o, got, want)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after recovery: %v", err)
	}
}

// TestRebuildEachEventMatchesRepair is the facade-scope half of the
// golden equivalence: an identical churn + workload schedule under
// hier.Repair and under from-scratch rebuilds per event must land on
// byte-identical meters and query costs.
func TestRebuildEachEventMatchesRepair(t *testing.T) {
	run := func(rebuild bool) (*Tracker, []NodeID) {
		opt := Options{Seed: 13, UseParentSets: true, SpecialParentOffset: 2,
			Chaos: &ChaosConfig{RebuildEachEvent: rebuild}}
		tr, g, locs := incrTracker(t, 7, 7, 4, opt)
		rng := rand.New(rand.NewSource(31))
		downAt := []NodeID{5, 17, 40}
		for _, n := range downAt {
			if err := tr.FailNode(n); err != nil {
				t.Fatalf("FailNode(%d): %v", n, err)
			}
			for i := 0; i < 6; i++ {
				o := rng.Intn(len(locs))
				if locs[o] == n {
					continue
				}
				nbrs := g.NeighborIDs(locs[o])
				to := nbrs[rng.Intn(len(nbrs))]
				if to == n {
					continue
				}
				locs[o] = to
				if err := tr.Move(ObjectID(o), to); err != nil {
					t.Fatalf("Move: %v", err)
				}
			}
			if err := tr.RecoverNode(n); err != nil {
				t.Fatalf("RecoverNode(%d): %v", n, err)
			}
		}
		return tr, locs
	}
	a, locsA := run(false)
	b, locsB := run(true)
	if a.Meter() != b.Meter() {
		t.Fatalf("meters diverged:\nrepair:  %+v\nrebuild: %+v", a.Meter(), b.Meter())
	}
	for o := range locsA {
		if locsA[o] != locsB[o] {
			t.Fatalf("object %d ground truth diverged: %d vs %d", o, locsA[o], locsB[o])
		}
		pa, ca, errA := a.Query(3, ObjectID(o))
		pb, cb, errB := b.Query(3, ObjectID(o))
		if errA != nil || errB != nil || pa != pb || ca != cb {
			t.Fatalf("query %d: repair=(%d,%v,%v) rebuild=(%d,%v,%v)", o, pa, ca, errA, pb, cb, errB)
		}
	}
}

// TestFailNodeKeepsTwoLiveSensors guards the bottom of the liveness range.
func TestFailNodeKeepsTwoLiveSensors(t *testing.T) {
	g := Grid(2, 2)
	tr, err := NewTracker(g, Options{Seed: 2, IncrementalRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.FailNode(0); err != nil {
		t.Fatalf("FailNode(0): %v", err)
	}
	if err := tr.FailNode(1); err != nil {
		t.Fatalf("FailNode(1): %v", err)
	}
	if err := tr.FailNode(2); err == nil {
		t.Fatal("failing below two live sensors accepted")
	}
	if err := tr.RecoverNode(1); err != nil {
		t.Fatalf("RecoverNode: %v", err)
	}
	if err := tr.FailNode(2); err != nil {
		t.Fatalf("FailNode after recovery: %v", err)
	}
}
