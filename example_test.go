package mot_test

import (
	"fmt"
	"log"

	mot "repro"
)

// Tracking one object on a small grid: publish, move, query.
func ExampleTracker() {
	g := mot.Grid(8, 8)
	tr, err := mot.NewTracker(g, mot.Options{Seed: 1, SpecialParentOffset: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.Publish(1, 0); err != nil {
		log.Fatal(err)
	}
	if err := tr.Move(1, 8); err != nil { // one step north
		log.Fatal(err)
	}
	proxy, _, err := tr.Query(63, 1) // ask from the far corner
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("object 1 is at sensor", proxy)
	// Output: object 1 is at sensor 8
}

// Comparing MOT against a traffic-conscious baseline on the same workload.
func ExampleReplay() {
	g := mot.Grid(8, 8)
	m := mot.NewMetric(g)
	w, err := mot.GenerateWorkload(g, m, mot.WorkloadConfig{
		Objects: 5, MovesPerObject: 40, Queries: 20, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := mot.NewTrackerWithMetric(g, m, mot.Options{Seed: 3, SpecialParentOffset: 2})
	if err != nil {
		log.Fatal(err)
	}
	meter, err := mot.Replay(tr, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("maintenance ops:", meter.MaintOps, "queries:", meter.QueryOps)
	// Output: maintenance ops: 200 queries: 20
}

// Running a concurrent simulation where queries overlap maintenance.
func ExampleRunConcurrent() {
	g := mot.Grid(6, 6)
	m := mot.NewMetric(g)
	w, err := mot.GenerateWorkload(g, m, mot.WorkloadConfig{
		Objects: 3, MovesPerObject: 20, Queries: 10, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := mot.RunConcurrent(g, w, mot.ConcurrentOptions{Seed: 4, PeriodSync: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("queries completed:", len(res.Queries))
	// Output: queries completed: 10
}
