package mot

import (
	"fmt"

	"repro/internal/mobility"
	"repro/internal/stun"
	"repro/internal/treedir"
	"repro/internal/zdat"
)

// Directory is the common surface of the MOT tracker and the baseline
// trackers, for side-by-side comparisons.
type Directory interface {
	Publish(o ObjectID, at NodeID) error
	Move(o ObjectID, to NodeID) error
	Query(from NodeID, o ObjectID) (NodeID, float64, error)
	Location(o ObjectID) (NodeID, bool)
	Meter() CostMeter
	LoadByNode() []int
}

var _ Directory = (*Tracker)(nil)

// EdgeRates is the detection-rate traffic knowledge the traffic-conscious
// baselines consume: how often objects cross each sensor adjacency.
type EdgeRates = map[mobility.EdgeKey]float64

// baseline adapts a treedir.Directory to the Directory interface.
type baseline struct {
	d *treedir.Directory
	n int
}

func (b baseline) Publish(o ObjectID, at NodeID) error { return b.d.Publish(o, at) }
func (b baseline) Move(o ObjectID, to NodeID) error    { return b.d.Move(o, to) }
func (b baseline) Query(from NodeID, o ObjectID) (NodeID, float64, error) {
	return b.d.Query(from, o)
}
func (b baseline) Location(o ObjectID) (NodeID, bool) { return b.d.Location(o) }
func (b baseline) Meter() CostMeter                   { return b.d.Meter() }
func (b baseline) LoadByNode() []int                  { return b.d.LoadByNode(b.n) }

// NewSTUN builds the STUN baseline (Kung & Vlah 2003): a Drain-And-Balance
// hierarchy constructed from the given detection rates, with sink-initiated
// queries. Unlike MOT it is traffic-conscious — it needs rates up front.
func NewSTUN(g *Graph, m *Metric, rates EdgeRates) (Directory, error) {
	d, err := stun.New(g, m, rates)
	if err != nil {
		return nil, fmt.Errorf("mot: %w", err)
	}
	return baseline{d: d, n: g.N()}, nil
}

// ZDATOptions configures the Z-DAT baseline.
type ZDATOptions struct {
	// ZoneDepth is the recursive quadrant-division depth (4^depth zones).
	ZoneDepth int
	// Shortcuts enables the shortcuts query variant (Liu et al. 2008).
	Shortcuts bool
	// Sink is the tree root sensor. Set it to mot.Undefined for the
	// metric center (the natural sink placement); note that the zero
	// value selects sensor 0.
	Sink NodeID
}

// NewZDAT builds the Z-DAT baseline (Lin et al. 2006): a zone-based
// deviation-avoidance spanning tree over the detection rates.
func NewZDAT(g *Graph, m *Metric, rates EdgeRates, opt ZDATOptions) (Directory, error) {
	d, err := zdat.New(g, m, rates, zdat.Config{
		ZoneDepth: opt.ZoneDepth,
		Shortcuts: opt.Shortcuts,
		Sink:      opt.Sink,
	})
	if err != nil {
		return nil, fmt.Errorf("mot: %w", err)
	}
	return baseline{d: d, n: g.N()}, nil
}
