package mot

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/runtime"
)

// Distributed is a live, goroutine-per-node realization of MOT: every
// sensor runs as its own goroutine and operations travel as messages
// between them. It trades the sequential Tracker's detailed metering for
// actual distributed execution; the examples use it to model deployments.
type Distributed struct {
	tr *runtime.Tracker
}

// NewDistributed builds the overlay and starts one goroutine per sensor.
// Call Close when done.
func NewDistributed(g *Graph, opt Options) (*Distributed, error) {
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{
		Seed:                opt.Seed,
		SpecialParentOffset: opt.SpecialParentOffset,
	})
	if err != nil {
		return nil, fmt.Errorf("mot: building HS overlay: %w", err)
	}
	return &Distributed{tr: runtime.New(g, hs)}, nil
}

// Publish introduces object o at sensor at; it blocks until the detection
// trail reaches the root.
func (d *Distributed) Publish(o ObjectID, at NodeID) error { return d.tr.Publish(o, at) }

// Move reports that o moved to sensor to; it blocks until the maintenance
// operation completes. Same-object moves serialize; different objects
// proceed concurrently.
func (d *Distributed) Move(o ObjectID, to NodeID) error { return d.tr.Move(o, to) }

// Query locates o from sensor from, returning the proxy and the search
// walk's communication cost.
func (d *Distributed) Query(from NodeID, o ObjectID) (NodeID, float64, error) {
	return d.tr.Query(from, o)
}

// Location returns o's current proxy.
func (d *Distributed) Location(o ObjectID) (NodeID, bool) { return d.tr.Location(o) }

// Cost returns the total distance traveled by all messages so far.
func (d *Distributed) Cost() float64 { return d.tr.Cost() }

// Close stops all node goroutines.
func (d *Distributed) Close() { d.tr.Stop() }
