package mot

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/runtime"
)

// Distributed is a live, goroutine-per-node realization of MOT: every
// sensor runs as its own goroutine and operations travel as messages
// between them. It trades the sequential Tracker's detailed metering for
// actual distributed execution; the examples use it to model deployments.
type Distributed struct {
	tr *runtime.Tracker
}

// NewDistributed builds the overlay and starts one goroutine per sensor.
// Call Close when done.
func NewDistributed(g *Graph, opt Options) (*Distributed, error) {
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{
		Seed:                opt.Seed,
		SpecialParentOffset: opt.SpecialParentOffset,
	})
	if err != nil {
		return nil, fmt.Errorf("mot: building HS overlay: %w", err)
	}
	var inj *chaos.Injector
	if opt.Chaos != nil {
		c := opt.Chaos
		// Crash windows need a simulated clock, which the live runtime
		// lacks; crashes are driven explicitly through Crash/Recover.
		inj = chaos.NewInjector(chaos.Config{
			Seed:        c.Seed,
			DropRate:    c.DropRate,
			DelayRate:   c.DelayRate,
			DelayFactor: c.DelayFactor,
			MaxAttempts: c.MaxAttempts,
		}, g.N())
	}
	return &Distributed{tr: runtime.NewInstrumented(g, hs, inj, opt.Obs)}, nil
}

// ServeDebug starts the opt-in HTTP diagnostics endpoint (obs snapshot,
// per-node load, expvar, pprof) on addr; "127.0.0.1:0" picks a free port.
func (d *Distributed) ServeDebug(addr string) (*runtime.DebugServer, error) {
	return d.tr.ServeDebug(addr)
}

// LoadByNode returns each sensor's stored entry count. Call only at
// quiescence (no operations in flight).
func (d *Distributed) LoadByNode() []int { return d.tr.LoadByNode() }

// ObserveLoad snapshots LoadByNode into the recorder (Options.Obs) as the
// node.entries series; a no-op without a recorder.
func (d *Distributed) ObserveLoad() { d.tr.ObserveLoad() }

// Crash marks sensor n as down: messages to it are dropped and retried
// until Recover; operations whose retransmission budget runs out fail with
// a typed *DeliveryError. Only effective with Options.Chaos set.
func (d *Distributed) Crash(n NodeID) { d.tr.Crash(n) }

// Recover marks sensor n as up again.
func (d *Distributed) Recover(n NodeID) { d.tr.Recover(n) }

// SimulatedDelay returns the simulated time spent in chaos backoffs and
// injected delivery delays (accounted, never slept).
func (d *Distributed) SimulatedDelay() float64 { return d.tr.SimulatedDelay() }

// FaultTrace returns the deterministic fault trace (nil without chaos).
func (d *Distributed) FaultTrace() *FaultTrace { return d.tr.FaultTrace() }

// Publish introduces object o at sensor at; it blocks until the detection
// trail reaches the root.
func (d *Distributed) Publish(o ObjectID, at NodeID) error { return d.tr.Publish(o, at) }

// Move reports that o moved to sensor to; it blocks until the maintenance
// operation completes. Same-object moves serialize; different objects
// proceed concurrently.
func (d *Distributed) Move(o ObjectID, to NodeID) error { return d.tr.Move(o, to) }

// Query locates o from sensor from, returning the proxy and the search
// walk's communication cost.
func (d *Distributed) Query(from NodeID, o ObjectID) (NodeID, float64, error) {
	return d.tr.Query(from, o)
}

// Location returns o's current proxy.
func (d *Distributed) Location(o ObjectID) (NodeID, bool) { return d.tr.Location(o) }

// Cost returns the total distance traveled by all messages so far.
func (d *Distributed) Cost() float64 { return d.tr.Cost() }

// Close stops all node goroutines.
func (d *Distributed) Close() { d.tr.Stop() }
