package mot

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	g := Grid(8, 8)
	tr, err := NewTracker(g, Options{Seed: 1, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Move(1, 8); err != nil {
		t.Fatal(err)
	}
	proxy, cost, err := tr.Query(63, 1)
	if err != nil {
		t.Fatal(err)
	}
	if proxy != 8 {
		t.Fatalf("proxy %d", proxy)
	}
	if cost < tr.Metric().Dist(63, 8) {
		t.Fatalf("cost %v below optimal", cost)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.OverlayHeight() < 2 {
		t.Fatalf("overlay height %d", tr.OverlayHeight())
	}
	if tr.RootNode() == Undefined {
		t.Fatal("no root node")
	}
	if objs := tr.Objects(); len(objs) != 1 || objs[0] != 1 {
		t.Fatalf("objects %v", objs)
	}
}

func TestTrackerVariants(t *testing.T) {
	g := Grid(7, 7)
	for _, opt := range []Options{
		{Seed: 1},
		{Seed: 1, UseParentSets: true, SpecialParentOffset: 2},
		{Seed: 1, LoadBalance: true},
		{GeneralOverlay: true, SpecialParentOffset: 2},
		{Seed: 1, CountSpecialParentCost: true, CountReply: true, SpecialParentOffset: 1},
	} {
		tr, err := NewTracker(g, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		rng := rand.New(rand.NewSource(5))
		cur := NodeID(24)
		if err := tr.Publish(7, cur); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			nbrs := g.NeighborIDs(cur)
			cur = nbrs[rng.Intn(len(nbrs))]
			if err := tr.Move(7, cur); err != nil {
				t.Fatalf("%+v move: %v", opt, err)
			}
		}
		got, _, err := tr.Query(0, 7)
		if err != nil {
			t.Fatalf("%+v query: %v", opt, err)
		}
		if got != cur {
			t.Fatalf("%+v: query said %d, proxy %d", opt, got, cur)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
	}
}

func TestTrackerRejectsDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.MustAddEdge(0, 1, 1)
	if _, err := NewTracker(g, Options{}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
	if _, err := NewTracker(g, Options{GeneralOverlay: true}); err == nil {
		t.Fatal("disconnected graph accepted by general overlay")
	}
}

func TestBaselinesSideBySide(t *testing.T) {
	g := Grid(7, 7)
	m := NewMetric(g)
	w, err := GenerateWorkload(g, m, WorkloadConfig{Objects: 6, MovesPerObject: 60, Queries: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rates := DetectionRates(w, g)

	mot, err := NewTrackerWithMetric(g, m, Options{Seed: 2, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	stunDir, err := NewSTUN(g, m, rates)
	if err != nil {
		t.Fatal(err)
	}
	zdatDir, err := NewZDAT(g, m, rates, ZDATOptions{ZoneDepth: 2, Sink: Undefined})
	if err != nil {
		t.Fatal(err)
	}
	zsc, err := NewZDAT(g, m, rates, ZDATOptions{ZoneDepth: 2, Shortcuts: true, Sink: Undefined})
	if err != nil {
		t.Fatal(err)
	}
	finals := w.FinalLocations()
	for _, d := range []Directory{mot, stunDir, zdatDir, zsc} {
		meter, err := Replay(d, w)
		if err != nil {
			t.Fatal(err)
		}
		if meter.MaintRatio() < 1 {
			t.Fatalf("maintenance ratio %v", meter.MaintRatio())
		}
		for o, want := range finals {
			if got, _ := d.Location(ObjectID(o)); got != want {
				t.Fatalf("location of %d: %d want %d", o, got, want)
			}
		}
		if len(d.LoadByNode()) != g.N() {
			t.Fatal("load vector size")
		}
	}
}

func TestRunConcurrentFacade(t *testing.T) {
	g := Grid(7, 7)
	m := NewMetric(g)
	w, err := GenerateWorkload(g, m, WorkloadConfig{Objects: 5, MovesPerObject: 30, Queries: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConcurrent(g, w, ConcurrentOptions{Seed: 3, PeriodSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Meter.MaintOps == 0 || len(res.Queries) != len(w.Queries) {
		t.Fatalf("result %+v", res.Meter)
	}
}

func TestDistributedFacade(t *testing.T) {
	g := Grid(6, 6)
	d, err := NewDistributed(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Move(1, 1); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.Query(35, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("query said %d", got)
	}
	if d.Cost() <= 0 {
		t.Fatal("no cost accrued")
	}
	if loc, ok := d.Location(1); !ok || loc != 1 {
		t.Fatalf("location %d %t", loc, ok)
	}
}

func TestRunFigureFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFigure(99, 0.05, &buf); err == nil {
		t.Fatal("unknown figure accepted")
	}
	ids := FigureIDs()
	if len(ids) != 12 {
		t.Fatalf("figure ids %v", ids)
	}
	if err := RunFigure(8, 0.05, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Fatalf("output %q", buf.String())
	}
}
