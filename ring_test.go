package mot

import (
	"testing"
)

// The paper's §1.3 motivation for hierarchies over spanning trees: "cost
// ratios for maintenance and query operations can be as large as O(D) in
// those approaches, e.g. in ring networks". An object shuttling across the
// tree's cut edge forces the tree directory to traverse the whole ring
// every move, while MOT's hierarchy pays a bounded ratio.
func TestRingSeparationFromSpanningTrees(t *testing.T) {
	const n = 64
	g := Ring(n)
	m := NewMetric(g)

	tr, err := NewTrackerWithMetric(g, m, Options{Seed: 1, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Z-DAT's sink sits at the metric center; on a ring every node is a
	// center, and the spanning tree cuts the cycle somewhere. Build it
	// with an explicit sink so the cut is known: the deviation-avoidance
	// tree rooted at 0 cuts between n/2 and n/2+1.
	zd, err := NewZDAT(g, m, nil, ZDATOptions{Sink: 0})
	if err != nil {
		t.Fatal(err)
	}

	// Shuttle across the cut: nodes n/2 and n/2+1 are adjacent in the
	// ring (distance 1) but on opposite branches of the tree.
	a, b := NodeID(n/2), NodeID(n/2+1)
	if err := tr.Publish(1, a); err != nil {
		t.Fatal(err)
	}
	if err := zd.Publish(1, a); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		to := b
		if i%2 == 1 {
			to = a
		}
		if err := tr.Move(1, to); err != nil {
			t.Fatal(err)
		}
		if err := zd.Move(1, to); err != nil {
			t.Fatal(err)
		}
	}
	motRatio := tr.Meter().MaintMeanRatio()
	treeRatio := zd.Meter().MaintMeanRatio()
	// The tree pays ~2*depth(a)+... per unit move — Θ(n); MOT pays the
	// hierarchy's O(log n) factor.
	if treeRatio < float64(n)/2 {
		t.Fatalf("tree ratio %.1f unexpectedly small; the cut-shuttle should cost Θ(n)", treeRatio)
	}
	if motRatio > treeRatio/2 {
		t.Fatalf("MOT ratio %.1f not clearly below tree ratio %.1f on the ring", motRatio, treeRatio)
	}
	// Queries across the cut from a nearby node.
	qFrom := NodeID(n/2 + 2)
	_, motCost, err := tr.Query(qFrom, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, treeCost, err := zd.Query(qFrom, 1)
	if err != nil {
		t.Fatal(err)
	}
	if motCost >= treeCost {
		t.Fatalf("MOT query cost %.1f not below tree query cost %.1f across the cut", motCost, treeCost)
	}
}

// Weighted networks flow through the whole stack: normalization, overlay
// construction, tracking, and ratio accounting.
func TestWeightedRingEndToEnd(t *testing.T) {
	g := NewGraph(12)
	for i := 0; i < 11; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), float64(1+i%3))
	}
	g.MustAddEdge(11, 0, 7)
	g.Normalize()
	tr, err := NewTracker(g, Options{Seed: 4, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	for _, to := range []NodeID{1, 2, 3, 4, 5, 6, 5, 4} {
		if err := tr.Move(1, to); err != nil {
			t.Fatal(err)
		}
	}
	got, cost, err := tr.Query(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("query said %d", got)
	}
	if cost < tr.Metric().Dist(9, 4) {
		t.Fatal("cost below optimal")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if r := tr.Meter().MaintRatio(); r < 1 {
		t.Fatalf("maintenance ratio %v", r)
	}
}

// Locality sweep shape (recorded in EXPERIMENTS.md): as queries localize,
// STUN's sink-trip ratio grows much faster than MOT's.
func TestQueryLocalityFavorsDistanceSensitivity(t *testing.T) {
	g := Grid(16, 16)
	m := NewMetric(g)
	run := func(radius float64) (motRatio, stunRatio float64) {
		w, err := GenerateWorkload(g, m, WorkloadConfig{
			Objects: 20, MovesPerObject: 40, Queries: 150, Seed: 5, QueryRadius: radius,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTrackerWithMetric(g, m, Options{Seed: 5, SpecialParentOffset: 2})
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewSTUN(g, m, DetectionRates(w, g))
		if err != nil {
			t.Fatal(err)
		}
		mm, err := Replay(tr, w)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := Replay(st, w)
		if err != nil {
			t.Fatal(err)
		}
		return mm.QueryMeanRatio(), sm.QueryMeanRatio()
	}
	mu, su := run(0) // uniform
	ml, sl := run(2) // local
	if sl <= su {
		t.Fatalf("STUN ratio did not grow under locality: %v -> %v", su, sl)
	}
	if sl/su <= ml/mu {
		t.Fatalf("locality hurt MOT (%vx) at least as much as STUN (%vx)", ml/mu, sl/su)
	}
	if ml >= sl {
		t.Fatalf("local queries: MOT %v not below STUN %v", ml, sl)
	}
}
