package mot

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for any random workload on any tracker configuration, every
// query answers with the true proxy, directory invariants hold, and all
// measured maintenance ratios are >= 1.
func TestQuickTrackerAlwaysCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, wIdx, hIdx, optIdx uint8) bool {
		w := 4 + int(wIdx)%6
		h := 4 + int(hIdx)%6
		g := Grid(w, h)
		opts := []Options{
			{Seed: seed, SpecialParentOffset: 2},
			{Seed: seed, SpecialParentOffset: 2, UseParentSets: true},
			{Seed: seed, SpecialParentOffset: 2, LoadBalance: true},
			{GeneralOverlay: true, SpecialParentOffset: 2},
			{Seed: seed, SpecialParentOffset: -1},
		}
		tr, err := NewTracker(g, opts[int(optIdx)%len(opts)])
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		const objs = 5
		locs := make([]NodeID, objs)
		for o := range locs {
			locs[o] = NodeID(rng.Intn(g.N()))
			if err := tr.Publish(ObjectID(o), locs[o]); err != nil {
				return false
			}
		}
		for i := 0; i < 80; i++ {
			o := rng.Intn(objs)
			nbrs := g.NeighborIDs(locs[o])
			locs[o] = nbrs[rng.Intn(len(nbrs))]
			if err := tr.Move(ObjectID(o), locs[o]); err != nil {
				return false
			}
		}
		for o := range locs {
			got, cost, err := tr.Query(NodeID(rng.Intn(g.N())), ObjectID(o))
			if err != nil || got != locs[o] || cost < 0 {
				return false
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		m := tr.Meter()
		return m.MaintRatio() >= 1 && m.MaintMeanRatio() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent simulations settle into a consistent directory for
// any workload, with every query completed, under both period-gate modes.
func TestQuickConcurrentAlwaysSettles(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, sizeIdx uint8, period bool) bool {
		sz := 5 + int(sizeIdx)%4
		g := Grid(sz, sz)
		m := NewMetric(g)
		w, err := GenerateWorkload(g, m, WorkloadConfig{
			Objects: 4, MovesPerObject: 25, Queries: 20, Seed: seed,
		})
		if err != nil {
			return false
		}
		res, err := RunConcurrent(g, w, ConcurrentOptions{Seed: seed, PeriodSync: period})
		if err != nil {
			return false
		}
		return len(res.Queries) == len(w.Queries) && res.Meter.MaintRatio() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the invariant guarantees are topology-blind. Arbitrary seeded
// Publish/Move/Query workloads on random-geometric deployments (the sensor
// model) and uniformly random trees (a pathological general network) leave
// the directory consistent, with every query answering the true proxy —
// the existing property tests only ever exercised grids.
func TestQuickInvariantsOnRandomTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, sizeIdx, topo uint8) bool {
		n := 24 + int(sizeIdx)%17
		rng := rand.New(rand.NewSource(seed))
		var g *Graph
		opt := Options{Seed: seed, SpecialParentOffset: 2}
		if topo%2 == 0 {
			g = RandomGeometricGraph(n, 10, 3.5, rng)
		} else {
			g = RandomTreeGraph(n, rng)
			// Alternate the general-network overlay on trees.
			opt.GeneralOverlay = topo%4 == 1
		}
		tr, err := NewTracker(g, opt)
		if err != nil {
			return false
		}
		const objs = 3
		locs := make([]NodeID, objs)
		for o := range locs {
			locs[o] = NodeID(rng.Intn(g.N()))
			if err := tr.Publish(ObjectID(o), locs[o]); err != nil {
				return false
			}
		}
		for i := 0; i < 50; i++ {
			o := rng.Intn(objs)
			nbrs := g.NeighborIDs(locs[o])
			locs[o] = nbrs[rng.Intn(len(nbrs))]
			if err := tr.Move(ObjectID(o), locs[o]); err != nil {
				return false
			}
		}
		for o := range locs {
			got, cost, err := tr.Query(NodeID(rng.Intn(g.N())), ObjectID(o))
			if err != nil || got != locs[o] || cost < 0 {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 14}); err != nil {
		t.Fatal(err)
	}
}

// The theoretical special-parent offset (sigma = 3*rho+6) on a deep
// hierarchy: path graphs have rho ~= 1, so sigma lands inside the
// hierarchy and SDL shortcuts actually register.
func TestTheoreticalSigmaOnPathGraph(t *testing.T) {
	// D = 699 gives h ~= 11, comfortably above the derived sigma (~9).
	g := NewGraph(700)
	for i := 0; i < 699; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), 1)
	}
	tr, err := NewTracker(g, Options{Seed: 3}) // sigma derived from rho
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	for to := NodeID(1); to <= 30; to++ {
		if err := tr.Move(1, to); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := tr.Query(699, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Fatalf("query said %d", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// With a deep hierarchy the derived sigma registers SDL entries.
	if tr.Meter().SpecialCost <= 0 {
		t.Fatal("no SDL registrations with the theoretical sigma on a deep hierarchy")
	}
}
