package mot

import (
	"math/rand"
	"testing"
)

// §7 coarse rebuild: sensors fail, the region is re-deployed as a smaller
// grid, and tracking continues after Migrate with every surviving object
// findable.
func TestMigrateAfterChurn(t *testing.T) {
	oldG := Grid(10, 10)
	tr, err := NewTracker(oldG, Options{Seed: 1, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	locs := make([]NodeID, 15)
	for o := range locs {
		locs[o] = NodeID(rng.Intn(oldG.N()))
		if err := tr.Publish(ObjectID(o), locs[o]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		o := rng.Intn(len(locs))
		nbrs := oldG.NeighborIDs(locs[o])
		locs[o] = nbrs[rng.Intn(len(nbrs))]
		if err := tr.Move(ObjectID(o), locs[o]); err != nil {
			t.Fatal(err)
		}
	}

	// The outer ring of sensors dies; survivors renumber into an 8x8 grid.
	newG := Grid(8, 8)
	relocate := func(u NodeID) NodeID {
		x, y := int(u)%10, int(u)/10
		if x < 1 {
			x = 1
		}
		if x > 8 {
			x = 8
		}
		if y < 1 {
			y = 1
		}
		if y > 8 {
			y = 8
		}
		return NodeID((y-1)*8 + (x - 1))
	}
	fresh, err := Migrate(tr, newG, Options{Seed: 9, SpecialParentOffset: 2}, relocate)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for o := range locs {
		want := relocate(locs[o])
		got, _, err := fresh.Query(0, ObjectID(o))
		if err != nil {
			t.Fatalf("object %d: %v", o, err)
		}
		if got != want {
			t.Fatalf("object %d at %d after migration, want %d", o, got, want)
		}
		// Tracking continues normally on the new network.
		nbrs := newG.NeighborIDs(want)
		if err := fresh.Move(ObjectID(o), nbrs[0]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fresh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateIdentityAndErrors(t *testing.T) {
	g := Grid(4, 4)
	tr, err := NewTracker(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Publish(1, 5); err != nil {
		t.Fatal(err)
	}
	// Identity relocation onto the same graph.
	fresh, err := Migrate(tr, g, Options{Seed: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := fresh.Location(1); got != 5 {
		t.Fatalf("location %d", got)
	}
	// Relocation out of range must fail.
	if _, err := Migrate(tr, Grid(2, 2), Options{Seed: 3}, nil); err == nil {
		t.Fatal("out-of-range relocation accepted")
	}
}

// A relocate function that maps any proxy outside the new network must be
// rejected — above and below the node range.
func TestMigrateRelocateOutOfRange(t *testing.T) {
	g := Grid(4, 4)
	tr, err := NewTracker(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Publish(1, 5); err != nil {
		t.Fatal(err)
	}
	high := func(NodeID) NodeID { return NodeID(g.N()) }
	if _, err := Migrate(tr, g, Options{Seed: 2}, high); err == nil {
		t.Fatal("relocate past the node range accepted")
	}
	low := func(NodeID) NodeID { return -1 }
	if _, err := Migrate(tr, g, Options{Seed: 2}, low); err == nil {
		t.Fatal("negative relocate accepted")
	}
}

// An object retired while the migration is enumerating (its location
// vanishes between Objects and Location) is skipped, not an error.
func TestMigrateSkipsObjectRetiredMidway(t *testing.T) {
	g := Grid(5, 5)
	tr, err := NewTracker(g, Options{Seed: 1, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	for o := 1; o <= 3; o++ {
		if err := tr.Publish(ObjectID(o), NodeID(o)); err != nil {
			t.Fatal(err)
		}
	}
	retired := false
	fresh, err := Migrate(tr, g, Options{Seed: 2, SpecialParentOffset: 2}, func(u NodeID) NodeID {
		if !retired {
			retired = true
			// Object 3 leaves the system while 1 is being relocated.
			if err := tr.Unpublish(3); err != nil {
				t.Fatal(err)
			}
		}
		return u
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Location(3); ok {
		t.Fatal("retired object resurfaced after migration")
	}
	for o := 1; o <= 2; o++ {
		if got, ok := fresh.Location(ObjectID(o)); !ok || got != NodeID(o) {
			t.Fatalf("object %d at %d after migration", o, got)
		}
	}
	if err := fresh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Golden equivalence: a nil relocate and an explicit identity function
// must build indistinguishable trackers — same proxies, same meter, and
// the same cost for every (from, object) query.
func TestMigrateIdentityGoldenEquivalence(t *testing.T) {
	tr, g, locs := chaosTracker(t, Options{Seed: 6, SpecialParentOffset: 2})
	opt := Options{Seed: 7, SpecialParentOffset: 2}
	a, err := Migrate(tr, g, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Migrate(tr, g, opt, func(u NodeID) NodeID { return u })
	if err != nil {
		t.Fatal(err)
	}
	if a.Meter() != b.Meter() {
		t.Fatalf("meters diverged:\nnil:      %+v\nidentity: %+v", a.Meter(), b.Meter())
	}
	for o, want := range locs {
		for from := 0; from < g.N(); from += 7 {
			pa, ca, errA := a.Query(NodeID(from), ObjectID(o))
			pb, cb, errB := b.Query(NodeID(from), ObjectID(o))
			if errA != nil || errB != nil {
				t.Fatalf("query (%d,%d): %v / %v", from, o, errA, errB)
			}
			if pa != pb || ca != cb || pa != want {
				t.Fatalf("query (%d,%d): nil=(%d,%v) identity=(%d,%v), want proxy %d",
					from, o, pa, ca, pb, cb, want)
			}
		}
	}
}
