package mot

import (
	"math/rand"
	"testing"
)

// §7 coarse rebuild: sensors fail, the region is re-deployed as a smaller
// grid, and tracking continues after Migrate with every surviving object
// findable.
func TestMigrateAfterChurn(t *testing.T) {
	oldG := Grid(10, 10)
	tr, err := NewTracker(oldG, Options{Seed: 1, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	locs := make([]NodeID, 15)
	for o := range locs {
		locs[o] = NodeID(rng.Intn(oldG.N()))
		if err := tr.Publish(ObjectID(o), locs[o]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		o := rng.Intn(len(locs))
		nbrs := oldG.NeighborIDs(locs[o])
		locs[o] = nbrs[rng.Intn(len(nbrs))]
		if err := tr.Move(ObjectID(o), locs[o]); err != nil {
			t.Fatal(err)
		}
	}

	// The outer ring of sensors dies; survivors renumber into an 8x8 grid.
	newG := Grid(8, 8)
	relocate := func(u NodeID) NodeID {
		x, y := int(u)%10, int(u)/10
		if x < 1 {
			x = 1
		}
		if x > 8 {
			x = 8
		}
		if y < 1 {
			y = 1
		}
		if y > 8 {
			y = 8
		}
		return NodeID((y-1)*8 + (x - 1))
	}
	fresh, err := Migrate(tr, newG, Options{Seed: 9, SpecialParentOffset: 2}, relocate)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for o := range locs {
		want := relocate(locs[o])
		got, _, err := fresh.Query(0, ObjectID(o))
		if err != nil {
			t.Fatalf("object %d: %v", o, err)
		}
		if got != want {
			t.Fatalf("object %d at %d after migration, want %d", o, got, want)
		}
		// Tracking continues normally on the new network.
		nbrs := newG.NeighborIDs(want)
		if err := fresh.Move(ObjectID(o), nbrs[0]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fresh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateIdentityAndErrors(t *testing.T) {
	g := Grid(4, 4)
	tr, err := NewTracker(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Publish(1, 5); err != nil {
		t.Fatal(err)
	}
	// Identity relocation onto the same graph.
	fresh, err := Migrate(tr, g, Options{Seed: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := fresh.Location(1); got != 5 {
		t.Fatalf("location %d", got)
	}
	// Relocation out of range must fail.
	if _, err := Migrate(tr, Grid(2, 2), Options{Seed: 3}, nil); err == nil {
		t.Fatal("out-of-range relocation accepted")
	}
}
