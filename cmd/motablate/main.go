// Command motablate quantifies MOT's design choices on one workload: the
// §3.1 parent-set probing, special parents, §5 load balancing under both
// surcharge pricings, the §6 general-network overlay, and the concurrent
// period gate — the ablation matrix DESIGN.md calls out.
//
// Usage:
//
//	motablate -grid 16x16 -objects 20 -moves 200
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	mot "repro"
)

type variant struct {
	name string
	opt  mot.Options
}

func main() {
	gridSpec := flag.String("grid", "16x16", "grid dimensions WxH")
	objects := flag.Int("objects", 20, "number of objects")
	moves := flag.Int("moves", 200, "moves per object")
	queries := flag.Int("queries", 200, "queries")
	seed := flag.Int64("seed", 7, "workload and overlay seed")
	flag.Parse()

	var w, h int
	if _, err := fmt.Sscanf(strings.ToLower(*gridSpec), "%dx%d", &w, &h); err != nil {
		fmt.Fprintf(os.Stderr, "motablate: invalid -grid %q\n", *gridSpec)
		os.Exit(2)
	}
	g := mot.Grid(w, h)
	m := mot.NewMetric(g)
	wl, err := mot.GenerateWorkload(g, m, mot.WorkloadConfig{
		Objects: *objects, MovesPerObject: *moves, Queries: *queries, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	variants := []variant{
		{"base (simple paths, sigma=2)", mot.Options{Seed: *seed, SpecialParentOffset: 2}},
		{"parent sets (§3.1)", mot.Options{Seed: *seed, SpecialParentOffset: 2, UseParentSets: true}},
		{"no special parents", mot.Options{Seed: *seed, SpecialParentOffset: -1}},
		{"load balanced (§5)", mot.Options{Seed: *seed, SpecialParentOffset: 2, LoadBalance: true}},
		{"load balanced, surcharge counted", mot.Options{Seed: *seed, SpecialParentOffset: 2, LoadBalance: true, CountLBRouteCost: true}},
		{"general overlay (§6)", mot.Options{GeneralOverlay: true, SpecialParentOffset: 2}},
	}

	fmt.Printf("grid %dx%d, %d objects, %d moves/object, %d queries\n\n", w, h, *objects, *moves, *queries)
	fmt.Printf("%-36s %12s %12s %12s %12s %10s\n",
		"variant", "maint ratio", "query ratio", "sdl cost", "lb cost", "max load")
	for _, v := range variants {
		tr, err := mot.NewTrackerWithMetric(g, m, v.opt)
		if err != nil {
			fatal(err)
		}
		meter, err := mot.Replay(tr, wl)
		if err != nil {
			fatal(err)
		}
		load := tr.LoadByNode()
		maxLoad := 0
		for _, c := range load {
			if c > maxLoad {
				maxLoad = c
			}
		}
		fmt.Printf("%-36s %12.2f %12.2f %12.0f %12.0f %10d\n",
			v.name, meter.MaintMeanRatio(), meter.QueryMeanRatio(),
			meter.SpecialCost, meter.LBRouteCost, maxLoad)
	}

	// Concurrent period-gate comparison on the same workload.
	fmt.Println()
	for _, on := range []bool{false, true} {
		res, err := mot.RunConcurrent(g, wl, mot.ConcurrentOptions{Seed: *seed, PeriodSync: on})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("concurrent, period gate %-5t: maint ratio %6.2f, query ratio %6.2f\n",
			on, res.Meter.MaintMeanRatio(), res.Meter.QueryMeanRatio())
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "motablate: %v\n", err)
	os.Exit(1)
}
