// Command benchdiff is the CI bench-regression gate: it compares a
// freshly measured mot-bench/v1 report against the committed baseline
// and exits non-zero when a pinned benchmark regressed (>15% ns/op by
// default, or any allocs/op growth). `make bench-gate` runs the suite
// into BENCH_current.json and invokes this; -md writes the delta table
// CI uploads as an artifact.
//
// Usage:
//
//	benchdiff -baseline BENCH_10.json -current BENCH_current.json -md benchdiff.md
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench/diff"
)

func main() {
	baseline := flag.String("baseline", "", "committed baseline report (required)")
	current := flag.String("current", "", "freshly measured report (required)")
	mdOut := flag.String("md", "", "write the markdown delta table here (optional)")
	maxNs := flag.Float64("max-ns-regress", 0.15, "tolerated fractional ns/op growth on pinned benchmarks")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := diff.LoadReport(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := diff.LoadReport(*current)
	if err != nil {
		fatal(err)
	}
	rep := diff.Diff(base, cur, diff.Options{MaxNsRegress: *maxNs})

	if *mdOut != "" {
		f, err := os.Create(*mdOut)
		if err != nil {
			fatal(err)
		}
		if err := diff.WriteMarkdown(f, rep); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if err := diff.WriteMarkdown(os.Stdout, rep); err != nil {
		fatal(err)
	}
	if !rep.OK() {
		fmt.Fprintf(os.Stderr, "benchdiff: gate FAILED (%d regression(s) vs %s)\n", len(rep.Failures), *baseline)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: gate passed (%d benchmarks, baseline %s)\n", len(rep.Rows), *baseline)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
