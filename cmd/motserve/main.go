// Command motserve runs the sharded tracking front end: a long-running
// HTTP/JSON server over the goroutine runtime, where the headline
// numbers are ops/sec and tail latency rather than cost ratio.
//
// Usage:
//
//	motserve -shards 8 -addr :8080          # 8-way sharded server
//	motserve -nodes 1024 -chaos             # bigger grid + fault drills
//
// API (JSON in, JSON out):
//
//	curl -XPOST localhost:8080/v1/publish -d '{"object":1,"node":5}'
//	curl -XPOST localhost:8080/v1/move    -d '{"object":1,"to":9}'
//	curl localhost:8080/v1/query/1
//	curl localhost:8080/v1/query/1?from=30
//	curl -XPOST localhost:8080/v1/fail/5     # 403 unless -chaos
//	curl -XPOST localhost:8080/v1/recover/5
//
// Observability:
//
//	curl localhost:8080/debug/serve                      # aggregate
//	curl localhost:8080/debug/shard/0/debug/live         # one shard
//
// Backpressure: a full per-shard move queue (-queue) or a saturated
// inflight window (-inflight) answers 429 with Retry-After: 1; clients
// should back off and retry. SIGINT/SIGTERM drains gracefully — every
// move acknowledged with a 200 is applied before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/runtime/track"
	"repro/internal/serve"
)

// drainTimeout bounds the SIGTERM drain before straggling connections
// are cut.
const drainTimeout = 10 * time.Second

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("motserve", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", ":8080", "listen address")
	shards := fs.Int("shards", 4, "tracker shards (object space partitions)")
	nodes := fs.Int("nodes", 256, "sensor network size (near-square grid)")
	queue := fs.Int("queue", 1024, "per-shard pending-move queue bound")
	inflight := fs.Int("inflight", 256, "per-shard synchronous-op window")
	seed := fs.Int64("seed", 1, "overlay/telemetry seed")
	chaosAdmin := fs.Bool("chaos", false, "enable /v1/fail and /v1/recover fault drills")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "motserve: unexpected arguments %q\n", fs.Args())
		fs.Usage()
		return 2
	}

	s, err := serve.New(serve.Config{
		Shards:     *shards,
		Nodes:      *nodes,
		Seed:       *seed,
		QueueDepth: *queue,
		Inflight:   *inflight,
		ChaosAdmin: *chaosAdmin,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "motserve:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "motserve:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "motserve: %d shards over %d sensors, listening on %s\n",
		*shards, *nodes, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var g track.Group
	serveErr := make(chan error, 1)
	g.Go(func() { serveErr <- s.Serve(ln) })

	code := 0
	select {
	case <-ctx.Done():
		// Graceful drain: stop admitting, flush every acknowledged move,
		// stop the trackers. Bounded so a wedged client can't hold the
		// process hostage.
		fmt.Fprintln(os.Stderr, "motserve: draining")
		dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		if err := s.Shutdown(dctx); err != nil {
			fmt.Fprintln(os.Stderr, "motserve: drain:", err)
			code = 1
		}
		cancel()
		<-serveErr // http.ErrServerClosed after a clean drain
	case err := <-serveErr:
		// Listener died out from under us (port conflict, ulimit, ...).
		fmt.Fprintln(os.Stderr, "motserve:", err)
		dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		_ = s.Shutdown(dctx)
		cancel()
		code = 1
	}
	g.Wait()
	fmt.Fprintln(os.Stderr, "motserve: drained")
	return code
}
