// Command motlint runs the repository's determinism & concurrency
// analyzer suite (internal/lint) over the module and prints findings as
//
//	file:line: [rule] message
//
// exiting 1 when any violation survives and 2 on usage or load errors.
//
// Usage:
//
//	motlint ./...              # lint every package in the module (default)
//	motlint -list              # print the rule table and exit
//	motlint -rules barego,walltime ./...
//	motlint -json ./...        # findings as a JSON array on stdout
//	motlint -sarif out.sarif ./...   # also write SARIF 2.1.0 for CI
//
// The policy (allowlists per rule) is internal/lint's Default config;
// waive a single finding in place with
//
//	//motlint:ignore <rule> <reason>
//
// on the offending line or the line above it. make lint wires this
// command into the tier-1 `make check` and hands the SARIF artifact to
// the CI annotation step.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzer rules and exit")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	asJSON := flag.Bool("json", false, "print findings as a JSON array instead of text")
	sarifPath := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		byName := append([]*lint.Analyzer(nil), analyzers...)
		sort.Slice(byName, func(i, j int) bool { return byName[i].Name < byName[j].Name })
		for _, a := range byName {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var picked []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				picked = append(picked, a)
				delete(want, a.Name)
			}
		}
		for r := range want {
			fmt.Fprintf(os.Stderr, "motlint: unknown rule %q (see -list)\n", r)
			os.Exit(2)
		}
		analyzers = picked
	}

	// Targets: "./..." (the default) lints the whole module; a
	// directory path lints that one package. Module-wide runs are the
	// policy — single directories exist for poking at fixtures.
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "motlint: %v\n", err)
		os.Exit(2)
	}
	runner := lint.NewRunner(lint.Default(), analyzers...)
	var findings []lint.Finding
	for _, arg := range args {
		var fs []lint.Finding
		if arg == "./..." {
			fs, err = runner.LintModule(root)
		} else {
			fs, err = runner.LintDir(root, arg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "motlint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	lint.SortFindings(findings)

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "motlint: %v\n", err)
			os.Exit(2)
		}
		err = writeSARIF(f, analyzers, findings)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "motlint: writing SARIF: %v\n", err)
			os.Exit(2)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{} // an empty run is [], not null
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "motlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "motlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
