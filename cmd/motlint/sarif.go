package main

import (
	"encoding/json"
	"io"

	"repro/internal/lint"
)

// SARIF 2.1.0 output: the minimal subset GitHub code scanning ingests —
// one run, the rule table as tool.driver.rules, one result per finding
// with a physical location relative to the repository root. Only the
// fields we emit are modeled; encoding/json omits nothing we set.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the findings of one lint run. analyzers is the rule
// set that ran (every finding's rule is among them), findings must
// already be sorted.
func writeSARIF(w io.Writer, analyzers []*lint.Analyzer, findings []lint.Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "motlint", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
