package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/lint"
)

// TestWriteSARIF pins the SARIF subset CI ingests: schema/version, the
// rule table, and one result per finding with a root-relative location.
func TestWriteSARIF(t *testing.T) {
	findings := []lint.Finding{
		{File: "internal/sim/engine.go", Line: 42, Col: 3, Rule: "walltime", Msg: "nope"},
		{File: "internal/core/ops.go", Line: 7, Col: 1, Rule: "hotalloc", Msg: "make allocates on a hot path"},
	}
	var buf bytes.Buffer
	if err := writeSARIF(&buf, lint.All(), findings); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !bytes.Contains([]byte(log.Schema), []byte("sarif-2.1.0")) {
		t.Fatalf("schema/version = %q / %q", log.Schema, log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "motlint" {
		t.Fatalf("driver name = %q", run.Tool.Driver.Name)
	}
	if got, want := len(run.Tool.Driver.Rules), len(lint.All()); got != want {
		t.Fatalf("rule table has %d entries, want %d", got, want)
	}
	ids := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Fatalf("rule %s has no description", r.ID)
		}
		ids[r.ID] = true
	}
	if len(run.Results) != len(findings) {
		t.Fatalf("got %d results, want %d", len(run.Results), len(findings))
	}
	for i, res := range run.Results {
		f := findings[i]
		if res.RuleID != f.Rule || !ids[res.RuleID] {
			t.Fatalf("result %d ruleId = %q (in table: %v)", i, res.RuleID, ids[res.RuleID])
		}
		if res.Level != "error" || res.Message.Text != f.Msg {
			t.Fatalf("result %d level/message = %q/%q", i, res.Level, res.Message.Text)
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != f.File || loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
			t.Fatalf("result %d artifact = %+v", i, loc.ArtifactLocation)
		}
		if loc.Region.StartLine != f.Line || loc.Region.StartColumn != f.Col {
			t.Fatalf("result %d region = %+v", i, loc.Region)
		}
	}
}

// TestWriteSARIFEmpty checks a clean run still produces a valid log with
// an empty (non-null) results array — GitHub rejects null results.
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(&buf, lint.All(), nil); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"results": null`)) {
		t.Fatal("empty run encodes results as null")
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if log.Runs[0].Results == nil || len(log.Runs[0].Results) != 0 {
		t.Fatalf("results = %v, want empty array", log.Runs[0].Results)
	}
}
