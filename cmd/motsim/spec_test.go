package main

import (
	"strings"
	"testing"
)

func TestParseChaosSpec(t *testing.T) {
	for _, tc := range []struct {
		spec    string
		seed    int64
		rate    float64
		wantErr string // substring; "" = success
	}{
		{spec: "1,0.15", seed: 1, rate: 0.15},
		{spec: "-7,0", seed: -7, rate: 0},
		{spec: " 3 , 1 ", seed: 3, rate: 1},
		{spec: "0,0.5", seed: 0, rate: 0.5},

		{spec: "", wantErr: "wants seed,rate"},
		{spec: "1", wantErr: "wants seed,rate"},
		{spec: "1,0.5,2", wantErr: "wants seed,rate"},
		{spec: "1,", wantErr: "empty field"},
		{spec: ",0.5", wantErr: "empty field"},
		{spec: "x,0.5", wantErr: "not an integer"},
		{spec: "1.5,0.5", wantErr: "not an integer"},
		{spec: "1,x", wantErr: "probability"},
		{spec: "1,-0.1", wantErr: "probability"},
		{spec: "1,1.01", wantErr: "probability"},
		// NaN compares false against every bound: the old range check
		// (rate < 0 || rate > 1) let it straight through into the tier.
		{spec: "1,NaN", wantErr: "probability"},
		{spec: "1,+Inf", wantErr: "probability"},
		{spec: "1,-Inf", wantErr: "probability"},
	} {
		seed, rate, err := parseChaosSpec(tc.spec)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("parseChaosSpec(%q) err = %v, want substring %q", tc.spec, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseChaosSpec(%q): %v", tc.spec, err)
			continue
		}
		if seed != tc.seed || rate != tc.rate {
			t.Errorf("parseChaosSpec(%q) = %d, %g, want %d, %g", tc.spec, seed, rate, tc.seed, tc.rate)
		}
	}
}

func TestParseChurnSpec(t *testing.T) {
	for _, tc := range []struct {
		spec    string
		rate    float64
		seed    int64
		wantErr string
	}{
		{spec: "0.05,7", rate: 0.05, seed: 7},
		{spec: "0.10,1", rate: 0.10, seed: 1},
		{spec: "0.01,-2", rate: 0.01, seed: -2},
		{spec: " 0.02 , 9 ", rate: 0.02, seed: 9},

		{spec: "", wantErr: "wants rate,seed"},
		{spec: "0.05", wantErr: "wants rate,seed"},
		{spec: "0.05,7,9", wantErr: "wants rate,seed"},
		{spec: "0.05,", wantErr: "empty field"},
		{spec: ",7", wantErr: "empty field"},
		{spec: "x,7", wantErr: "churn regime"},
		{spec: "0,7", wantErr: "churn regime"},
		{spec: "-0.05,7", wantErr: "churn regime"},
		// Above the regime used to be silently clamped to 0.10 by the
		// experiment config — a different run than the one asked for.
		{spec: "0.11,7", wantErr: "churn regime"},
		{spec: "0.5,7", wantErr: "churn regime"},
		{spec: "1,7", wantErr: "churn regime"},
		{spec: "NaN,7", wantErr: "churn regime"},
		{spec: "Inf,7", wantErr: "churn regime"},
		{spec: "0.05,x", wantErr: "not an integer"},
		{spec: "0.05,7.5", wantErr: "not an integer"},
	} {
		rate, seed, err := parseChurnSpec(tc.spec)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("parseChurnSpec(%q) err = %v, want substring %q", tc.spec, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseChurnSpec(%q): %v", tc.spec, err)
			continue
		}
		if rate != tc.rate || seed != tc.seed {
			t.Errorf("parseChurnSpec(%q) = %g, %d, want %g, %d", tc.spec, rate, seed, tc.rate, tc.seed)
		}
	}
}
