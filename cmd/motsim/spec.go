// Flag-spec parsing for the composite -chaos and -churn arguments,
// split from main so the validation is table-testable. The historical
// parser looked strict but had real holes: NaN satisfies neither
// `rate < 0` nor `rate > 1` and sailed through both range checks, empty
// fields from a trailing comma surfaced as confusing strconv errors,
// and churn rates above the paper's 10% regime were silently clamped
// down by the experiment tier instead of being rejected. All of those
// are usage errors now: stderr message, exit 2.
package main

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// maxChurnRate is the top of the paper's 1–10% churn regime. Rates
// above it used to be accepted here and clamped to 0.10 deep inside the
// experiment config, so `-churn 0.5,7` quietly ran a different
// experiment than asked; it is a usage error now. (The config-level
// clamp stays, as defense for non-CLI callers.)
const maxChurnRate = 0.10

// splitSpec splits a two-field comma spec, rejecting wrong arity and
// empty fields up front.
func splitSpec(flag, spec, shape string) (first, second string, err error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return "", "", fmt.Errorf("-%s wants %s, got %q", flag, shape, spec)
	}
	first, second = strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
	if first == "" || second == "" {
		return "", "", fmt.Errorf("-%s wants %s, got %q (empty field)", flag, shape, spec)
	}
	return first, second, nil
}

// parseRate parses a rate field and rejects every non-finite and
// out-of-range value. NaN must be tested explicitly: every comparison
// against it is false, so a plain lo/hi check lets it through.
func parseRate(flag, raw string, lo, hi float64, loExclusive bool, rangeDesc string) (float64, error) {
	rate, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(rate) || math.IsInf(rate, 0) ||
		rate < lo || (loExclusive && rate == lo) || rate > hi {
		return 0, fmt.Errorf("-%s rate %q: must be %s", flag, raw, rangeDesc)
	}
	return rate, nil
}

// parseChaosSpec parses the -chaos argument "seed,rate": seed is any
// integer, rate a drop probability in [0,1] (0 selects the tier's
// default fault mix).
func parseChaosSpec(spec string) (seed int64, rate float64, err error) {
	seedStr, rateStr, err := splitSpec("chaos", spec, "seed,rate (e.g. -chaos 1,0.15)")
	if err != nil {
		return 0, 0, err
	}
	seed, err = strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("-chaos seed %q: not an integer", seedStr)
	}
	rate, err = parseRate("chaos", rateStr, 0, 1, false, "a probability in [0,1]")
	if err != nil {
		return 0, 0, err
	}
	return seed, rate, nil
}

// parseChurnSpec parses the -churn argument "rate,seed": rate is the
// per-epoch fraction of failed sensors in (0, 0.10] — the paper's churn
// regime — and seed is any integer.
func parseChurnSpec(spec string) (rate float64, seed int64, err error) {
	rateStr, seedStr, err := splitSpec("churn", spec, "rate,seed (e.g. -churn 0.05,7)")
	if err != nil {
		return 0, 0, err
	}
	rate, err = parseRate("churn", rateStr, 0, maxChurnRate, true,
		fmt.Sprintf("a fraction in (0,%.2f] (the paper's 1-10%% churn regime)", maxChurnRate))
	if err != nil {
		return 0, 0, err
	}
	seed, err = strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("-churn seed %q: not an integer", seedStr)
	}
	return rate, seed, nil
}
