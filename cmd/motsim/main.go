// Command motsim regenerates the paper's evaluation figures (Figs. 4–15):
// maintenance and query cost ratios of MOT vs STUN vs Z-DAT (± shortcuts)
// on grid networks in one-by-one and concurrent executions, and the
// per-node load comparisons.
//
// Usage:
//
//	motsim -fig 4              # one figure at full (paper) scale
//	motsim -fig all -scale 0.1 # all figures, workload scaled to 10%
//	motsim -fig 5 -workers 8   # sweep cells on 8 goroutines
//
// Scale 1 reproduces the paper's exact setting (grids of 10–1024 nodes,
// 100/1000 objects, 1000 maintenance operations per object, 5 seeds) and
// takes a long while; small scales finish in seconds to minutes.
//
// -workers sizes the sweep worker pool (default: one per CPU). Each
// (size, seed) cell derives its PRNG from an independent
// (baseSeed, size, seedIndex) stream, so the printed figures are
// byte-identical for every worker count.
//
// -chaos seed,rate runs the fault-injection tier instead of a figure:
// seeded crash/drop/delay schedules on both execution substrates, with
// recovery invariants asserted at quiescence. The printed summary is
// byte-identical for a given (seed, rate) at any -workers value; -format
// md/csv selects the report renderer.
//
// -churn rate,seed runs the sustained-churn tier instead of a figure:
// seeded fail/recover schedules (rate is the fraction of sensors failed
// per epoch, within the paper's 1–10% regime) interleaved with
// tracking operations on the incremental repair engine, a rebuild
// baseline, a fault-free control, and the de Bruijn relabeling, with the
// recovery SLO asserted after every epoch. The summary is byte-identical
// for a given (rate, seed) at any -workers value; -format md/csv selects
// the report renderer:
//
//	motsim -churn 0.05,7            # 5% churn per epoch, base seed 7
//	motsim -churn 0.05,7 -format csv
//
// -trace/-metrics/-chrome run the observability sweep instead of a
// figure: one seeded workload replayed on the sequential core (load
// balancing on and off), the discrete-event simulator, and the goroutine
// runtime, each under a span/metrics recorder:
//
//	motsim -trace out.jsonl -metrics out.csv   # spans + metrics
//	motsim -chrome trace.json                  # open in ui.perfetto.dev
//	motsim -trace out.jsonl -obs-size 256 -obs-seed 3
//
// Artifacts are byte-identical for a given (-obs-size, -obs-seed) at any
// -workers value; the §5 per-node load report prints to stdout. Without
// any obs or chaos flag, motsim's figure output is unchanged.
// -live-summary attaches a live wall-clock recorder to the sweep's
// runtime run and prints p50/p99 tail latencies per op class to stderr
// at exit; stdout and every artifact file keep their exact
// deterministic bytes:
//
//	motsim -live-summary                       # stderr-only latency recap
//	motsim -trace out.jsonl -live-summary      # artifacts unchanged
//
// -benchjson runs the perf-trajectory benchmark suite instead of a
// figure and writes a JSON report (frozen vs lazy metric reads,
// all-pairs precompute, a 16×16-grid sweep with the substrate cache on
// vs off, oracle build/read costs vs exact, a 10k oracle scale cell,
// and a sustained-churn cell with the repair-vs-rebuild ratio):
//
//	motsim -benchjson BENCH_08.json    # what `make bench-json` runs
//
// -oracle runs the large-network scale sweep instead of a figure: MOT
// cost-ratio cells on near-square grids using the sub-quadratic
// landmark/ball distance oracle (exact frozen metric below 2048 nodes),
// with sampled exact re-metering auditing the oracle's estimates:
//
//	motsim -oracle                         # one 10 000-node cell
//	motsim -oracle -nodes 10000,40000      # explicit size sweep
//	motsim -oracle -nodes 2048 -seeds 3    # averaged over 3 seeds
//
// The printed table is byte-identical for any -workers value.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/report"
)

// runObs runs the observability sweep (one seeded workload traced on the
// sequential core with load balancing on and off, the discrete-event
// simulator, and the goroutine runtime) and writes the requested
// artifacts. All three formats are byte-deterministic for a given
// (size, seed) at any -workers value; -live-summary only adds stderr
// chatter (wall-clock p50/p99 per op class from the live recorder) and
// leaves every stdout/file byte unchanged.
func runObs(trace, metrics, chrome string, size int, seed int64, workers int, liveSummary bool) {
	res, err := experiments.RunObs(experiments.ObsConfig{
		BaseSeed:      seed,
		Size:          size,
		Workers:       workers,
		LiveTelemetry: liveSummary,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "motsim: obs: %v\n", err)
		os.Exit(1)
	}
	emit := func(path string, write func(io.Writer) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "motsim: %v\n", err)
			os.Exit(1)
		}
		werr := write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "motsim: writing %s: %v\n", path, werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	emit(trace, res.WriteTraceJSONL)
	emit(metrics, res.WriteMetricsCSV)
	emit(chrome, res.WriteChromeTrace)
	if liveSummary {
		// Wall-clock tail latencies are diagnostics, not measurements:
		// they print to stderr only, and the live recorders are dropped
		// before rendering so the stdout report keeps its exact live-off
		// layout (byte-identical to a run without -live-summary).
		for _, lrec := range res.Live {
			if lrec != nil {
				lrec.WriteSummary(os.Stderr)
			}
		}
		res.Live = nil
	}
	// The per-node load report (§5: balanced vs unbalanced placement)
	// goes to stdout so the run leaves a human-readable headline.
	if err := report.MarkdownObsLoad(os.Stdout, res, 0); err != nil {
		fmt.Fprintf(os.Stderr, "motsim: obs report: %v\n", err)
		os.Exit(1)
	}
}

// runChaos parses "seed,rate" and runs the chaos tier with rate as the
// message drop rate (0 selects the default mix); delay and crash rates
// keep their tier defaults. format picks the renderer (text, md, csv).
func runChaos(spec string, workers int, format string) {
	seed, rate, err := parseChaosSpec(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "motsim: %v\n", err)
		os.Exit(2)
	}
	res, err := experiments.RunChaos(experiments.ChaosConfig{
		BaseSeed: seed,
		DropRate: rate,
		Workers:  workers,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "motsim: chaos: %v\n", err)
		os.Exit(1)
	}
	switch format {
	case "md":
		err = report.MarkdownChaos(os.Stdout, res)
	case "csv":
		err = report.CSVChaos(os.Stdout, res)
	default:
		experiments.PrintChaos(os.Stdout, res)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "motsim: chaos report: %v\n", err)
		os.Exit(1)
	}
}

// runChurn parses "rate,seed" and runs the sustained-churn tier: rate is
// the per-epoch fraction of failed sensors in the paper's 1–10% regime
// (anything outside is a usage error), seed salts every schedule stream.
// format picks the renderer (text, md, csv).
func runChurn(spec string, workers int, format string) {
	rate, seed, err := parseChurnSpec(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "motsim: %v\n", err)
		os.Exit(2)
	}
	res, err := experiments.RunChurn(experiments.ChurnConfig{
		BaseSeed:  seed,
		ChurnRate: rate,
		Workers:   workers,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "motsim: churn: %v\n", err)
		os.Exit(1)
	}
	switch format {
	case "md":
		err = report.MarkdownChurn(os.Stdout, res)
	case "csv":
		err = report.CSVChurn(os.Stdout, res)
	default:
		experiments.PrintChurn(os.Stdout, res)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "motsim: churn report: %v\n", err)
		os.Exit(1)
	}
}

// runOracle runs the large-network scale sweep (oracle substrate) and
// prints the per-size table to stdout.
func runOracle(nodes string, seeds, workers int, loadBalance bool) {
	cfg := experiments.ScaleConfig{
		Seeds:       seeds,
		Workers:     workers,
		LoadBalance: loadBalance,
	}
	if nodes != "" {
		for _, part := range strings.Split(nodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "motsim: -nodes wants positive sizes (e.g. -nodes 10000,40000), got %q\n", part)
				os.Exit(2)
			}
			cfg.Sizes = append(cfg.Sizes, n)
		}
	}
	res, err := experiments.RunScale(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "motsim: scale: %v\n", err)
		os.Exit(1)
	}
	experiments.PrintScale(os.Stdout, res)
}

// runBenchJSON runs the perf-trajectory benchmark suite and writes the
// JSON artifact (BENCH_08.json in CI). Progress goes to stderr so the
// artifact file holds only the report bytes.
func runBenchJSON(path string) {
	fmt.Fprintln(os.Stderr, "motsim: running benchmark suite (a minute or so)...")
	rep := bench.Run()
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "motsim: %v\n", err)
		os.Exit(1)
	}
	werr := bench.WriteJSON(f, rep)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "motsim: %v\n", werr)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "motsim: wrote %s (%d benchmarks)\n", path, len(rep.Benchmarks))
}

func main() {
	fig := flag.String("fig", "all", "figure number (4..15) or 'all'")
	scale := flag.Float64("scale", 0.1, "workload scale in (0,1]; 1 = the paper's full setting")
	format := flag.String("format", "text", "output format: text, md, or csv")
	workers := flag.Int("workers", 0, "sweep worker pool size; 0 = one per CPU (output is identical for any value)")
	chaosSpec := flag.String("chaos", "", "run the chaos tier as 'seed,rate' (e.g. 1,0.15) instead of a figure")
	churnSpec := flag.String("churn", "", "run the sustained-churn tier as 'rate,seed' (e.g. 0.05,7) instead of a figure")
	trace := flag.String("trace", "", "write an observability span trace (JSON lines) to this file")
	metrics := flag.String("metrics", "", "write observability metrics (CSV) to this file")
	chrome := flag.String("chrome", "", "write a Chrome trace-event JSON (Perfetto-loadable) to this file")
	obsSize := flag.Int("obs-size", 256, "sensor count of the observability sweep (16x16 grid by default)")
	obsSeed := flag.Int64("obs-seed", 0, "base seed of the observability sweep")
	liveSummary := flag.Bool("live-summary", false, "attach a live wall-clock recorder to the obs sweep's runtime run and print p50/p99 per op class to stderr (stdout stays deterministic)")
	benchJSON := flag.String("benchjson", "", "run the substrate/harness benchmark suite and write BENCH_08-style JSON to this file")
	oracle := flag.Bool("oracle", false, "run the large-network scale sweep (sub-quadratic distance oracle) instead of a figure")
	nodes := flag.String("nodes", "", "comma-separated node counts of the -oracle sweep (default 10000)")
	seeds := flag.Int("seeds", 1, "seeds averaged per -oracle cell")
	oracleLB := flag.Bool("oracle-lb", false, "enable §5 load-balanced placement in the -oracle sweep")
	list := flag.Bool("list", false, "list available figures and exit")
	quiet := flag.Bool("quiet", false, "suppress the per-figure wall-clock summary")
	flag.Parse()

	if *benchJSON != "" {
		runBenchJSON(*benchJSON)
		return
	}
	if *oracle {
		runOracle(*nodes, *seeds, *workers, *oracleLB)
		return
	}
	if *chaosSpec != "" {
		runChaos(*chaosSpec, *workers, *format)
		return
	}
	if *churnSpec != "" {
		runChurn(*churnSpec, *workers, *format)
		return
	}
	if *trace != "" || *metrics != "" || *chrome != "" || *liveSummary {
		runObs(*trace, *metrics, *chrome, *obsSize, *obsSeed, *workers, *liveSummary)
		return
	}

	figs := experiments.Figures(*scale)
	if *list {
		for _, id := range experiments.FigureIDs(figs) {
			fmt.Printf("fig %2d: %s\n", id, figs[id].Title)
		}
		return
	}

	var ids []int
	if *fig == "all" {
		ids = experiments.FigureIDs(figs)
	} else {
		id, err := strconv.Atoi(*fig)
		if err != nil {
			fmt.Fprintf(os.Stderr, "motsim: invalid figure %q\n", *fig)
			os.Exit(2)
		}
		if _, ok := figs[id]; !ok {
			fmt.Fprintf(os.Stderr, "motsim: unknown figure %d (have 4..15)\n", id)
			os.Exit(2)
		}
		ids = []int{id}
	}

	for _, id := range ids {
		start := time.Now()
		f := figs[id].WithWorkers(*workers)
		var err error
		switch *format {
		case "text":
			err = f.Run(os.Stdout)
		case "md":
			err = f.RunWith(os.Stdout, func(res *experiments.CostRatioResult) error {
				return report.MarkdownCostRatio(os.Stdout, res, f.IsQuery)
			}, func(res *experiments.LoadResult) error {
				return report.MarkdownLoad(os.Stdout, res)
			})
		case "csv":
			err = f.RunWith(os.Stdout, func(res *experiments.CostRatioResult) error {
				return report.CSVCostRatio(os.Stdout, res)
			}, func(res *experiments.LoadResult) error {
				return report.CSVLoad(os.Stdout, res)
			})
		default:
			fmt.Fprintf(os.Stderr, "motsim: unknown format %q\n", *format)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "motsim: figure %d: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
		// Wall-clock timing is driver chatter, not part of the figure:
		// it goes to stderr so redirected result files hold only
		// deterministic bytes, and -quiet silences it entirely.
		if !*quiet {
			fmt.Fprintf(os.Stderr, "(figure %d took %v)\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
