// Command mothier builds and inspects the tracking hierarchies: the
// constant-doubling overlay HS (§2.2) and the general-network
// sparse-partition overlay (§6). It prints level sizes, parent statistics,
// the measured doubling constant, and validates the structural invariants.
//
// Usage:
//
//	mothier -grid 16x16
//	mothier -grid 32x32 -seed 3 -parentsets
//	mothier -grid 16x16 -general
//	mothier -ring 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/overlay"
	"repro/internal/partition"
)

func main() {
	gridSpec := flag.String("grid", "16x16", "grid dimensions WxH")
	ring := flag.Int("ring", 0, "build a ring of this size instead of a grid")
	seed := flag.Int64("seed", 1, "MIS seed")
	parentSets := flag.Bool("parentsets", false, "build detection paths over full parent sets (§3.1)")
	general := flag.Bool("general", false, "build the §6 sparse-partition overlay instead of HS")
	sigma := flag.Int("sigma", 2, "special-parent level offset (0 = theoretical, <0 = disabled)")
	node := flag.Int("dpath", -1, "print the detection path of this sensor")
	flag.Parse()

	var g *graph.Graph
	switch {
	case *ring > 0:
		g = graph.Ring(*ring)
	default:
		var w, h int
		if _, err := fmt.Sscanf(strings.ToLower(*gridSpec), "%dx%d", &w, &h); err != nil {
			fmt.Fprintf(os.Stderr, "mothier: invalid -grid %q\n", *gridSpec)
			os.Exit(2)
		}
		g = graph.Grid(w, h)
	}
	m := graph.NewMetric(g)
	m.Precompute(0)
	fmt.Printf("network: %v, diameter %.0f\n", g, m.Diameter())

	var ov overlay.Overlay
	if *general {
		hs, err := partition.Build(g, m, partition.Config{SpecialParentOffset: *sigma})
		if err != nil {
			fatal(err)
		}
		if err := hs.Validate(); err != nil {
			fatal(err)
		}
		st := hs.Stats()
		fmt.Printf("sparse partition: height %d, sigma %d\n", st.Height, st.Sigma)
		fmt.Printf("%-6s %9s %11s %10s\n", "level", "clusters", "max-member", "max-radius")
		for l := 0; l <= st.Height; l++ {
			fmt.Printf("%-6d %9d %11d %10.1f\n", l, st.ClusterCounts[l], st.MaxMembership[l], st.MaxRadius[l])
		}
		ov = hs
	} else {
		hs, err := hier.Build(g, m, hier.Config{Seed: *seed, UseParentSets: *parentSets, SpecialParentOffset: *sigma})
		if err != nil {
			fatal(err)
		}
		if err := hs.Validate(); err != nil {
			fatal(err)
		}
		st := hs.Stats()
		fmt.Printf("HS: height %d, root %d, rho %.2f, sigma %d\n", st.Height, st.Root, st.Rho, st.Sigma)
		fmt.Printf("%-6s %7s\n", "level", "leaders")
		for l, sz := range st.LevelSizes {
			fmt.Printf("%-6d %7d\n", l, sz)
		}
		ov = hs
	}

	if *node >= 0 && *node < g.N() {
		p := ov.DPath(graph.NodeID(*node))
		fmt.Printf("DPath(%d), length %.1f:\n", *node, overlay.Length(p, m))
		for l, sts := range p {
			fmt.Printf("  level %d:", l)
			for _, s := range sts {
				fmt.Printf(" %v", s)
			}
			fmt.Println()
		}
	}
	fmt.Println("invariants: ok")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mothier: %v\n", err)
	os.Exit(1)
}
