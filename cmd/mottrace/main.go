// Command mottrace generates the evaluation's mobility workloads and
// reports their statistics: per-object movement traces (random walk or
// random waypoint over the grid), query workloads, and the per-edge
// detection rates that the traffic-conscious baselines consume. Traces can
// be dumped as JSON for external tooling.
//
// Usage:
//
//	mottrace -grid 16x16 -objects 100 -moves 1000
//	mottrace -grid 8x8 -model waypoint -json trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/mobility"
	"repro/internal/stats"
)

func main() {
	gridSpec := flag.String("grid", "16x16", "grid dimensions WxH")
	objects := flag.Int("objects", 100, "number of mobile objects")
	moves := flag.Int("moves", 1000, "maintenance operations per object")
	queries := flag.Int("queries", 100, "number of queries")
	model := flag.String("model", "walk", "mobility model: walk or waypoint")
	seed := flag.Int64("seed", 1, "workload seed")
	jsonOut := flag.String("json", "", "write the full trace as JSON to this file")
	flag.Parse()

	var w, h int
	if _, err := fmt.Sscanf(strings.ToLower(*gridSpec), "%dx%d", &w, &h); err != nil {
		fmt.Fprintf(os.Stderr, "mottrace: invalid -grid %q\n", *gridSpec)
		os.Exit(2)
	}
	g := graph.Grid(w, h)
	m := graph.NewMetric(g)

	var mdl mobility.Model
	switch *model {
	case "walk":
		mdl = mobility.RandomWalk
	case "waypoint":
		mdl = mobility.RandomWaypoint
	default:
		fmt.Fprintf(os.Stderr, "mottrace: unknown model %q\n", *model)
		os.Exit(2)
	}

	wl, err := mobility.Generate(g, m, mobility.Config{
		Objects:        *objects,
		MovesPerObject: *moves,
		Queries:        *queries,
		Model:          mdl,
		Seed:           *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mottrace: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("grid %dx%d (%d sensors), %d objects, %d moves, %d queries, model %s\n",
		w, h, g.N(), wl.Objects, len(wl.Moves), len(wl.Queries), *model)

	rates := wl.DetectionRates(g)
	var vals []float64
	for _, r := range rates {
		vals = append(vals, r)
	}
	sort.Float64s(vals)
	s := stats.Summarize(vals)
	fmt.Printf("detection rates over %d of %d edges: mean %.1f, p50 %.0f, p95 %.0f, max %.0f\n",
		len(rates), g.M(), s.Mean, s.P50, s.P95, s.Max)

	// Move-distance sanity: every move crosses exactly one unit edge.
	finals := wl.FinalLocations()
	displaced := 0
	for o, f := range finals {
		if f != wl.Initial[o] {
			displaced++
		}
	}
	fmt.Printf("objects displaced from start: %d/%d\n", displaced, wl.Objects)

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mottrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(wl); err != nil {
			fmt.Fprintf(os.Stderr, "mottrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *jsonOut)
	}
}
