package mot

import (
	"repro/internal/chaos"
)

// ChaosConfig configures deterministic fault injection (see
// internal/chaos): every fault decision is a pure hash of the seed and the
// message's logical identity, so fault schedules replay byte for byte.
type ChaosConfig struct {
	// Seed selects the fault stream.
	Seed int64
	// DropRate is the per-attempt probability a message is lost; dropped
	// attempts are retried with exponential backoff up to MaxAttempts,
	// then the operation fails with a typed *DeliveryError.
	DropRate float64
	// DelayRate is the probability a delivered message is slowed by
	// DelayFactor times its travel distance.
	DelayRate   float64
	DelayFactor float64
	// MaxAttempts bounds retransmissions per message (0 → 8).
	MaxAttempts int
	// ChurnThreshold is the fraction of sensors whose cumulative failures
	// trigger the coarse §7 fallback — a full rebuild — instead of
	// fine-grained repair. 0 defaults to 0.25.
	ChurnThreshold float64
	// RebuildEachEvent is the validation mode of the incremental regime:
	// every FailNode/RecoverNode rebuilds the overlay from scratch over
	// the live set (hier.BuildExcluding) in place of hier.Repair, with the
	// directory-repair discipline unchanged. Repair lands on a
	// Fingerprint-identical overlay, so a run under this mode must be
	// byte-identical to the same run without it — the golden churn tier
	// replays both and diffs the cost traces. Only meaningful with
	// Options.IncrementalRepair.
	RebuildEachEvent bool
}

// DeliveryError is the typed failure surfaced when a message exhausts its
// retransmission budget under chaos; match it with errors.As.
type DeliveryError = chaos.DeliveryError

// FaultTrace is the deterministic record of injected faults.
type FaultTrace = chaos.Trace

func (t *Tracker) churnThreshold() float64 {
	if t.opt.Chaos != nil && t.opt.Chaos.ChurnThreshold > 0 {
		return t.opt.Chaos.ChurnThreshold
	}
	return 0.25
}
