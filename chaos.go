package mot

import (
	"fmt"
	"sort"

	"repro/internal/chaos"
)

// ChaosConfig configures deterministic fault injection (see
// internal/chaos): every fault decision is a pure hash of the seed and the
// message's logical identity, so fault schedules replay byte for byte.
type ChaosConfig struct {
	// Seed selects the fault stream.
	Seed int64
	// DropRate is the per-attempt probability a message is lost; dropped
	// attempts are retried with exponential backoff up to MaxAttempts,
	// then the operation fails with a typed *DeliveryError.
	DropRate float64
	// DelayRate is the probability a delivered message is slowed by
	// DelayFactor times its travel distance.
	DelayRate   float64
	DelayFactor float64
	// MaxAttempts bounds retransmissions per message (0 → 8).
	MaxAttempts int
	// ChurnThreshold is the fraction of sensors whose cumulative failures
	// trigger the coarse §7 fallback — a full Migrate-style rebuild — on
	// recovery, instead of per-object trail repair. 0 defaults to 0.25.
	ChurnThreshold float64
}

// DeliveryError is the typed failure surfaced when a message exhausts its
// retransmission budget under chaos; match it with errors.As.
type DeliveryError = chaos.DeliveryError

// FaultTrace is the deterministic record of injected faults.
type FaultTrace = chaos.Trace

func (t *Tracker) churnThreshold() float64 {
	if t.opt.Chaos != nil && t.opt.Chaos.ChurnThreshold > 0 {
		return t.opt.Chaos.ChurnThreshold
	}
	return 0.25
}

// FailNode models the crash of sensor n: every directory entry stored at
// its stations is lost and stale shortcuts into it are invalidated. The
// damaged objects are remembered for repair; queries touching broken
// trails fail until RecoverNode restores them. Failing an already-failed
// node is a no-op.
func (t *Tracker) FailNode(n NodeID) error {
	if int(n) < 0 || int(n) >= t.g.N() {
		return fmt.Errorf("mot: fail: node %d out of range [0,%d)", n, t.g.N())
	}
	t.chaosMu.Lock()
	defer t.chaosMu.Unlock()
	if t.failed == nil {
		t.failed = make(map[NodeID]bool)
	}
	if t.damaged == nil {
		t.damaged = make(map[ObjectID]bool)
	}
	if t.failed[n] {
		return nil
	}
	t.failed[n] = true
	t.churn++
	for _, o := range t.dir.DropHost(n) {
		t.damaged[o] = true
	}
	return nil
}

// RecoverNode brings sensor n back. When the last failed node recovers,
// the directory is healed: each damaged object's trail is re-stamped from
// its surviving ground-truth proxy (the fine-grained §7 path, charged to
// CostMeter.RecoveryCost) — unless cumulative churn exceeded
// ChurnThreshold × N, in which case the whole hierarchy is rebuilt through
// Migrate (the coarse fallback) and the old meter carried over.
func (t *Tracker) RecoverNode(n NodeID) error {
	t.chaosMu.Lock()
	defer t.chaosMu.Unlock()
	if t.failed == nil || !t.failed[n] {
		return fmt.Errorf("mot: recover: node %d is not failed", n)
	}
	delete(t.failed, n)
	if len(t.failed) > 0 {
		return nil // heal once the network is whole again
	}
	if float64(t.churn) > t.churnThreshold()*float64(t.g.N()) {
		return t.rebuildLocked()
	}
	objs := make([]ObjectID, 0, len(t.damaged))
	for o := range t.damaged {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, o := range objs {
		if _, ok := t.dir.Location(o); !ok {
			continue // unpublished while damaged
		}
		if err := t.dir.Repair(o); err != nil {
			return fmt.Errorf("mot: recover: %w", err)
		}
	}
	t.damaged = make(map[ObjectID]bool)
	t.churn = 0
	return nil
}

// rebuildLocked is the coarse §7 fallback: migrate onto a fresh hierarchy
// over the same network (identity relocation) and adopt it in place,
// preserving accumulated costs. Caller holds chaosMu.
func (t *Tracker) rebuildLocked() error {
	fresh, err := Migrate(t, t.g, t.opt, nil)
	if err != nil {
		return fmt.Errorf("mot: rebuild past churn threshold: %w", err)
	}
	fresh.dir.AbsorbMeter(t.dir.Meter())
	t.m, t.ov, t.dir, t.cfg = fresh.m, fresh.ov, fresh.dir, fresh.cfg
	t.damaged = make(map[ObjectID]bool)
	t.churn = 0
	return nil
}

// FailedNodes lists the currently failed sensors, sorted.
func (t *Tracker) FailedNodes() []NodeID {
	t.chaosMu.Lock()
	defer t.chaosMu.Unlock()
	out := make([]NodeID, 0, len(t.failed))
	for n := range t.failed {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Unpublish removes object o from tracking (the "object retired / sensor
// left" half of §7 dynamics); its trail is erased root to proxy.
// Re-introducing the object later is a fresh Publish.
func (t *Tracker) Unpublish(o ObjectID) error {
	t.chaosMu.Lock()
	delete(t.damaged, o)
	t.chaosMu.Unlock()
	return t.dir.Unpublish(o)
}
