package partition

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/overlay"
)

func build(t testing.TB, g *graph.Graph, cfg Config) *Hierarchy {
	t.Helper()
	m := graph.NewMetric(g)
	hs, err := Build(g, m, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return hs
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(graph.New(0), graph.NewMetric(graph.New(0)), Config{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	g := graph.New(2)
	if _, err := Build(g, graph.NewMetric(g), Config{}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestValidateOnFamilies(t *testing.T) {
	cases := []*graph.Graph{
		graph.Grid(6, 6),
		graph.Ring(20),
		graph.Path(17),
		graph.Star(12),
		graph.RandomTree(25, rand.New(rand.NewSource(1))),
	}
	for i, g := range cases {
		hs := build(t, g, Config{})
		if err := hs.Validate(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestHeightBound(t *testing.T) {
	g := graph.Grid(10, 10)
	m := graph.NewMetric(g)
	hs, err := Build(g, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bound := int(math.Ceil(math.Log2(m.Diameter()))) + 2
	if hs.Height() > bound {
		t.Fatalf("height %d > bound %d", hs.Height(), bound)
	}
}

func TestMembershipLogarithmic(t *testing.T) {
	g := graph.Grid(12, 12)
	hs := build(t, g, Config{})
	limit := 4 * int(math.Ceil(math.Log2(float64(g.N()))))
	st := hs.Stats()
	for l, maxM := range st.MaxMembership {
		if maxM > limit {
			t.Fatalf("level %d: node in %d clusters, limit %d", l, maxM, limit)
		}
	}
}

func TestClusterRadiusBound(t *testing.T) {
	g := graph.Grid(12, 12)
	hs := build(t, g, Config{})
	k := math.Ceil(math.Log2(float64(g.N())))
	for l := 1; l <= hs.Height(); l++ {
		bound := (2*k + 1) * math.Pow(2, float64(l))
		for _, c := range hs.Clusters(l) {
			if c.Radius > bound {
				t.Fatalf("level %d cluster %d radius %v > bound %v", l, c.ID, c.Radius, bound)
			}
		}
	}
}

// Lemma 6.1 (first part): detection paths of u and v share a station at
// level ceil(log dist(u,v)) + 1.
func TestLemma61MeetingLevel(t *testing.T) {
	g := graph.Grid(9, 9)
	m := graph.NewMetric(g)
	hs, err := Build(g, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u += 5 {
		for v := u + 1; v < g.N(); v += 7 {
			d := m.Dist(graph.NodeID(u), graph.NodeID(v))
			want := int(math.Ceil(math.Log2(d))) + 1
			if want > hs.Height() {
				want = hs.Height()
			}
			got := overlay.MeetLevel(hs.DPath(graph.NodeID(u)), hs.DPath(graph.NodeID(v)))
			if got < 0 || got > want {
				t.Fatalf("paths of %d,%d (dist %v) meet at %d, bound %d", u, v, d, got, want)
			}
		}
	}
}

func TestDPathStructure(t *testing.T) {
	g := graph.Ring(16)
	hs := build(t, g, Config{})
	root := hs.Root()
	for u := 0; u < g.N(); u++ {
		p := hs.DPath(graph.NodeID(u))
		if len(p) != hs.Height()+1 {
			t.Fatalf("path of %d has %d levels", u, len(p))
		}
		if len(p[0]) != 1 || p[0][0].Host != graph.NodeID(u) {
			t.Fatalf("level 0 of %d: %v", u, p[0])
		}
		topLevel := p[len(p)-1]
		if len(topLevel) != 1 || topLevel[0] != root {
			t.Fatalf("path of %d tops at %v, root %v", u, topLevel, root)
		}
		for l := range p {
			for i, s := range p[l] {
				if s.Level != l {
					t.Fatalf("station level mismatch: %v at level %d", s, l)
				}
				if i > 0 && p[l][i-1].Key >= s.Key {
					t.Fatalf("level %d stations not label-sorted", l)
				}
			}
		}
	}
}

func TestDPathCached(t *testing.T) {
	g := graph.Path(8)
	hs := build(t, g, Config{})
	p1 := hs.DPath(2)
	p2 := hs.DPath(2)
	if &p1[0] != &p2[0] {
		t.Fatal("DPath not cached")
	}
}

func TestSigmaModes(t *testing.T) {
	g := graph.Grid(6, 6)
	if s := build(t, g, Config{SpecialParentOffset: 3}).SpecialOffset(); s != 3 {
		t.Fatalf("explicit sigma %d", s)
	}
	if s := build(t, g, Config{SpecialParentOffset: -1}).SpecialOffset(); s != 0 {
		t.Fatalf("disabled sigma %d", s)
	}
	if s := build(t, g, Config{}).SpecialOffset(); s < 2 {
		t.Fatalf("derived sigma %d", s)
	}
}

func TestSingleNode(t *testing.T) {
	g := graph.New(1)
	hs := build(t, g, Config{})
	if hs.Height() != 1 {
		// level 0 singleton, level 1 all-covering cluster of the one node
		t.Fatalf("height %d", hs.Height())
	}
	if hs.Root().Host != 0 {
		t.Fatalf("root %v", hs.Root())
	}
	if err := hs.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	g := graph.Grid(5, 5)
	hs := build(t, g, Config{})
	st := hs.Stats()
	if st.ClusterCounts[0] != 25 {
		t.Fatalf("level-0 cluster count %d", st.ClusterCounts[0])
	}
	if st.ClusterCounts[st.Height] != 1 {
		t.Fatalf("top cluster count %d", st.ClusterCounts[st.Height])
	}
}

func BenchmarkBuildGrid16(b *testing.B) {
	g := graph.Grid(16, 16)
	m := graph.NewMetric(g)
	m.Precompute(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, m, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
