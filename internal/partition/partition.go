// Package partition builds the (O(log n), O(log n)) sparse-partition
// hierarchy the paper uses for general networks (§6), following the sparse
// covers of Awerbuch–Peleg (FOCS 1990) as used by Jia et al. (STOC 2005)
// and Sharma et al. (IPDPS 2012).
//
// Levels run 0..h with h ≈ ceil(log D)+1. Level 0 has one singleton cluster
// per node; at level l every ball of radius 2^l is fully contained in some
// cluster, clusters have radius O(2^l * log n), and each node belongs to
// O(log n) clusters. Each cluster has a leader node; the detection path of
// a node visits the leaders of all clusters containing it, level by level,
// in cluster-label order — exactly the general-network overlay the MOT
// directory runs on.
package partition

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/overlay"
	"sync"
)

// Config controls the partition hierarchy construction.
type Config struct {
	// SpecialParentOffset is the level offset for special parents
	// (Lemma 6.3 uses O(log log n) levels; experiments use a small
	// constant). Zero derives 2 + ceil(2*log2(log2(n))); negative
	// disables special parents.
	SpecialParentOffset int
	// GrowthFactor is the coarsening stop threshold of the sparse-cover
	// construction (n^(1/k) with k = log2 n gives 2, the default when 0).
	GrowthFactor float64
}

// Cluster is one cluster of one level.
type Cluster struct {
	ID      int // label within the level
	Level   int
	Leader  graph.NodeID
	Members []graph.NodeID // sorted
	Radius  float64        // max leader-to-member distance
}

// Hierarchy is the built sparse-partition overlay. It implements
// overlay.Overlay.
type Hierarchy struct {
	g   *graph.Graph
	m   graph.DistanceOracle
	cfg Config

	levels  [][]Cluster // levels[l] = clusters of level l, by ID
	byNode  [][][]int   // byNode[l][u] = IDs of level-l clusters containing u
	home    [][]int     // home[l][u] = ID of u's anchor cluster at level l
	h       int
	sigma   int
	pathsMu sync.RWMutex
	paths   map[graph.NodeID]overlay.Path
}

// Build constructs the hierarchy over a connected graph. All distances
// flow through the oracle's exact local queries (Near/Ball), so exact and
// oracle builds of the same inputs are identical.
func Build(g *graph.Graph, m graph.DistanceOracle, cfg Config) (*Hierarchy, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("partition: empty graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("partition: graph must be connected")
	}
	n := g.N()
	growth := cfg.GrowthFactor
	if growth <= 1 {
		growth = 2
	}
	hs := &Hierarchy{g: g, m: m, cfg: cfg, paths: make(map[graph.NodeID]overlay.Path)}

	// Level 0: singleton clusters.
	lvl0 := make([]Cluster, n)
	by0 := make([][]int, n)
	home0 := make([]int, n)
	for u := 0; u < n; u++ {
		lvl0[u] = Cluster{ID: u, Level: 0, Leader: graph.NodeID(u), Members: []graph.NodeID{graph.NodeID(u)}}
		by0[u] = []int{u}
		home0[u] = u
	}
	hs.levels = append(hs.levels, lvl0)
	hs.byNode = append(hs.byNode, by0)
	hs.home = append(hs.home, home0)

	// Higher levels: sparse covers of radius-2^l balls until a single
	// cluster holds everything. On the exact metric, taking the diameter
	// here freezes the flat table up front so every Ball below reads it;
	// an approximate oracle returns a ≤2× upper bound, which only delays
	// the convergence guard (never fires it early).
	diam := m.Diameter()
	maxIter := int(math.Ceil(math.Log2(float64(n)))) + 1
	for l := 1; ; l++ {
		r := math.Pow(2, float64(l))
		clusters := sparseCover(m, n, r, growth, maxIter, l)
		by := make([][]int, n)
		for _, c := range clusters {
			for _, u := range c.Members {
				by[u] = append(by[u], c.ID)
			}
		}
		// Anchor clusters: for each node, the smallest-label cluster that
		// contains its whole radius-2^l ball (the covering property
		// guarantees one exists; Lemma 6.1 needs the anchor, not just any
		// member cluster, so that nearby nodes' probes always find it).
		homes := make([]int, n)
		for u := 0; u < n; u++ {
			ball := m.Ball(graph.NodeID(u), r)
			homes[u] = -1
			for _, id := range by[u] {
				if containsAll(clusters[id].Members, ball) {
					homes[u] = id
					break
				}
			}
			if homes[u] < 0 {
				return nil, fmt.Errorf("partition: node %d has no ball-covering cluster at level %d", u, l)
			}
		}
		hs.levels = append(hs.levels, clusters)
		hs.byNode = append(hs.byNode, by)
		hs.home = append(hs.home, homes)
		if len(clusters) == 1 && len(clusters[0].Members) == n {
			hs.h = l
			break
		}
		if r > 4*diam+4 {
			return nil, fmt.Errorf("partition: cover did not converge to one cluster by level %d", l)
		}
	}

	switch {
	case cfg.SpecialParentOffset > 0:
		hs.sigma = cfg.SpecialParentOffset
	case cfg.SpecialParentOffset < 0:
		hs.sigma = 0
	default:
		lg := math.Log2(math.Max(2, math.Log2(float64(n)+1)))
		hs.sigma = 2 + int(math.Ceil(2*lg))
	}
	return hs, nil
}

// sparseCover covers all radius-r balls with clusters: repeatedly seed a
// cluster at the smallest uncovered center and absorb intersecting balls
// until the node count grows by less than the growth factor, then absorb
// that final layer and emit the cluster (Awerbuch–Peleg coarsening). Every
// absorbed center's full ball lies inside the emitted cluster.
func sparseCover(m graph.DistanceOracle, n int, r, growth float64, maxIter, level int) []Cluster {
	remaining := make([]bool, n)
	for u := range remaining {
		remaining[u] = true
	}
	left := n
	var clusters []Cluster
	for left > 0 {
		// Seed: smallest remaining center.
		seed := -1
		for u := 0; u < n; u++ {
			if remaining[u] {
				seed = u
				break
			}
		}
		inY := make([]bool, n)
		var members []graph.NodeID
		absorb := func(center graph.NodeID) {
			for _, nb := range m.Near(center, r) {
				if !inY[nb.Node] {
					inY[nb.Node] = true
					members = append(members, nb.Node)
				}
			}
		}
		absorb(graph.NodeID(seed))
		merged := []int{seed}
		remaining[seed] = false
		left--

		for iter := 0; iter < maxIter; iter++ {
			// Centers whose ball intersects the current cluster.
			var layer []int
			for u := 0; u < n; u++ {
				if !remaining[u] {
					continue
				}
				// ball(u,r) intersects the cluster iff some in-cluster node
				// is within r of u (distances are symmetric).
				for _, nb := range m.Near(graph.NodeID(u), r) {
					if inY[nb.Node] {
						layer = append(layer, u)
						break
					}
				}
			}
			if len(layer) == 0 {
				break
			}
			before := len(members)
			for _, u := range layer {
				absorb(graph.NodeID(u))
				remaining[u] = false
				left--
			}
			merged = append(merged, layer...)
			if float64(len(members)) <= growth*float64(before) {
				break // slow growth: emit with this layer absorbed
			}
		}

		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		leader := graph.NodeID(seed)
		radius := leaderRadius(m, leader, members, r*(1+2*float64(maxIter)))

		clusters = append(clusters, Cluster{
			ID:      len(clusters),
			Level:   level,
			Leader:  leader,
			Members: members,
			Radius:  radius,
		})
	}
	return clusters
}

// leaderRadius returns max_v dist(leader, v) over members, exactly, via
// Near. The coarsening absorbs at most maxIter layers each extending the
// cluster by ≤2r, so members lie within r·(1+2·maxIter) of the leader;
// the doubling retry is a safety net, not an expected path.
func leaderRadius(m graph.DistanceOracle, leader graph.NodeID, members []graph.NodeID, bound float64) float64 {
	for {
		near := make(map[graph.NodeID]float64, len(members)*2)
		for _, nb := range m.Near(leader, bound) {
			near[nb.Node] = nb.D
		}
		radius, ok := 0.0, true
		for _, v := range members {
			d, in := near[v]
			if !in {
				ok = false
				break
			}
			if d > radius {
				radius = d
			}
		}
		if ok {
			return radius
		}
		bound *= 2
	}
}

// Height returns the top level index.
func (hs *Hierarchy) Height() int { return hs.h }

// Root returns the root station: the leader of the single top-level cluster.
func (hs *Hierarchy) Root() overlay.Station {
	c := hs.levels[hs.h][0]
	return overlay.Station{Level: hs.h, Key: int64(c.ID), Host: c.Leader}
}

// Metric returns the distance oracle.
func (hs *Hierarchy) Metric() graph.DistanceOracle { return hs.m }

// SpecialOffset returns sigma.
func (hs *Hierarchy) SpecialOffset() int { return hs.sigma }

// Clusters returns the clusters of level l (shared; do not modify).
func (hs *Hierarchy) Clusters(l int) []Cluster {
	if l < 0 || l > hs.h {
		return nil
	}
	return hs.levels[l]
}

// Membership returns the IDs of the level-l clusters containing u.
func (hs *Hierarchy) Membership(u graph.NodeID, l int) []int {
	if l < 0 || l > hs.h || int(u) < 0 || int(u) >= hs.g.N() {
		return nil
	}
	return hs.byNode[l][u]
}

// HomeStation returns u's anchor station at level l: the smallest-label
// cluster containing u's entire radius-2^l ball. Detection trails attach to
// anchors; probes sweep the full membership list for early meets.
func (hs *Hierarchy) HomeStation(u graph.NodeID, l int) overlay.Station {
	c := hs.levels[l][hs.home[l][u]]
	return overlay.Station{Level: l, Key: int64(c.ID), Host: c.Leader}
}

// containsAll reports whether every node of want is in the sorted members
// slice.
func containsAll(members []graph.NodeID, want []graph.NodeID) bool {
	set := make(map[graph.NodeID]bool, len(members))
	for _, v := range members {
		set[v] = true
	}
	for _, v := range want {
		if !set[v] {
			return false
		}
	}
	return true
}

// DPath returns the detection path of node u: per level, the leaders of all
// clusters containing u, in cluster-label order. Results are cached.
func (hs *Hierarchy) DPath(u graph.NodeID) overlay.Path {
	hs.pathsMu.RLock()
	p, ok := hs.paths[u]
	hs.pathsMu.RUnlock()
	if ok {
		return p
	}
	p = make(overlay.Path, hs.h+1)
	for l := 0; l <= hs.h; l++ {
		ids := hs.byNode[l][u]
		stations := make([]overlay.Station, len(ids))
		for i, id := range ids {
			c := hs.levels[l][id]
			stations[i] = overlay.Station{Level: l, Key: int64(id), Host: c.Leader}
		}
		p[l] = stations
	}
	hs.pathsMu.Lock()
	if prev, ok := hs.paths[u]; ok {
		hs.pathsMu.Unlock()
		return prev
	}
	hs.paths[u] = p
	hs.pathsMu.Unlock()
	return p
}

// Validate checks the sparse-partition invariants: level 0 singletons, the
// ball-covering property at every level (every radius-2^l ball fully inside
// some level-l cluster), every node covered at every level, and a single
// all-covering top cluster.
func (hs *Hierarchy) Validate() error {
	n := hs.g.N()
	for u := 0; u < n; u++ {
		if len(hs.byNode[0][u]) != 1 || hs.levels[0][hs.byNode[0][u][0]].Leader != graph.NodeID(u) {
			return fmt.Errorf("partition: level 0 not singleton at node %d", u)
		}
	}
	for l := 1; l <= hs.h; l++ {
		r := math.Pow(2, float64(l))
		for u := 0; u < n; u++ {
			if len(hs.byNode[l][u]) == 0 {
				return fmt.Errorf("partition: node %d uncovered at level %d", u, l)
			}
			ball := hs.m.Ball(graph.NodeID(u), r)
			contained := false
			for _, id := range hs.byNode[l][u] {
				c := hs.levels[l][id]
				inC := make(map[graph.NodeID]bool, len(c.Members))
				for _, v := range c.Members {
					inC[v] = true
				}
				all := true
				for _, v := range ball {
					if !inC[v] {
						all = false
						break
					}
				}
				if all {
					contained = true
					break
				}
			}
			if !contained {
				return fmt.Errorf("partition: ball(%d, 2^%d) not contained in any level-%d cluster", u, l, l)
			}
		}
	}
	top := hs.levels[hs.h]
	if len(top) != 1 || len(top[0].Members) != n {
		return fmt.Errorf("partition: top level not a single all-covering cluster")
	}
	return nil
}

// Stats summarizes the hierarchy.
type Stats struct {
	Height        int
	ClusterCounts []int
	MaxMembership []int // per level, max clusters containing one node
	MaxRadius     []float64
	Sigma         int
}

// Stats returns summary statistics.
func (hs *Hierarchy) Stats() Stats {
	st := Stats{Height: hs.h, Sigma: hs.sigma}
	for l := 0; l <= hs.h; l++ {
		st.ClusterCounts = append(st.ClusterCounts, len(hs.levels[l]))
		maxM, maxR := 0, 0.0
		for u := 0; u < hs.g.N(); u++ {
			if len(hs.byNode[l][u]) > maxM {
				maxM = len(hs.byNode[l][u])
			}
		}
		for _, c := range hs.levels[l] {
			if c.Radius > maxR {
				maxR = c.Radius
			}
		}
		st.MaxMembership = append(st.MaxMembership, maxM)
		st.MaxRadius = append(st.MaxRadius, maxR)
	}
	return st
}

var _ overlay.Overlay = (*Hierarchy)(nil)
