// Package chaos is a deterministic fault-injection layer for the MOT
// execution substrates (the discrete-event simulator in internal/sim and
// the goroutine runtime in internal/runtime). Real sensor deployments are
// defined by faults — sleeping/faulty sensors, radio loss, congestion
// delay — yet a reproduction is only trustworthy if every run is
// replayable byte for byte. The layer therefore never consults a global
// PRNG or the wall clock: every fault decision is a pure SplitMix64 hash
// of the plan seed and the *logical identity* of the message attempt
// (operation id, hop index, attempt number), the same discipline as
// mobility.StreamSeed. Equal (seed, key) always yields the same fate, no
// matter which goroutine asks or in which order, so fault schedules are
// reproducible across runs and across worker counts.
//
// Three fault kinds are modeled:
//
//   - message drop: an attempt is lost with probability DropRate; the
//     sender retries after exponential backoff (in simulated time) up to
//     MaxAttempts, then surfaces a typed *DeliveryError instead of
//     hanging;
//   - extra delay: a delivered attempt is slowed by DelayFactor × the
//     message distance with probability DelayRate (congestion that is
//     proportional to how far the message travels);
//   - node crash/recover: a deterministic schedule of crash windows
//     derived from the seed (CrashRate × n nodes, each down for a
//     CrashSpan fraction of the horizon); messages to a crashed node are
//     dropped. The goroutine runtime, which has no simulated clock,
//     drives crashes explicitly through Tracker.Crash/Recover instead.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Config parameterizes a fault plan. The zero value injects nothing.
type Config struct {
	// Seed selects the fault stream; equal seeds give identical plans.
	Seed int64
	// DropRate is the per-attempt probability a message is lost in
	// transit.
	DropRate float64
	// DelayRate is the probability a delivered attempt is slowed down.
	DelayRate float64
	// DelayFactor scales the extra delay: a slowed message takes
	// (1+DelayFactor)×dist instead of dist. Zero defaults to 1.
	DelayFactor float64
	// CrashRate is the fraction of nodes that crash once during the
	// horizon (rounded down; 0 disables crash windows).
	CrashRate float64
	// CrashSpan is each crash window's length as a fraction of the
	// horizon. Zero defaults to 0.15.
	CrashSpan float64
	// Horizon is the simulated-time span crash windows are placed in;
	// required when CrashRate > 0.
	Horizon float64
	// MaxAttempts bounds per-message retransmissions before the delivery
	// fails with a *DeliveryError. Zero defaults to 8.
	MaxAttempts int
	// BackoffBase is the first retry's backoff in simulated time units;
	// attempt k backs off BackoffBase×2^(k-1). Zero defaults to 1.
	BackoffBase float64
}

func (c *Config) fill() {
	if c.DelayFactor <= 0 {
		c.DelayFactor = 1
	}
	if c.CrashSpan <= 0 {
		c.CrashSpan = 0.15
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 1
	}
}

// Window is one node's crash window: the node is down in [From, To).
type Window struct {
	Node     graph.NodeID
	From, To float64
}

// splitmix64 advances a SplitMix64 state and returns the mixed output
// (Steele et al.; the same mixer mobility.StreamSeed uses).
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Decision-kind salts, mixed into the hash so the drop and delay streams
// of the same message attempt are independent.
const (
	kindDrop  = 0x5fa7
	kindDelay = 0xd31a
)

// Plan is a deterministic fault plan over an n-node network. All methods
// are pure (no internal state advances), so a Plan is safe for concurrent
// use and replays identically.
type Plan struct {
	cfg     Config
	h0      uint64
	windows []Window // sorted by (Node, From)
}

// NewPlan derives the fault plan for an n-node network from cfg.
func NewPlan(cfg Config, n int) *Plan {
	cfg.fill()
	p := &Plan{cfg: cfg, h0: splitmix64(uint64(cfg.Seed))}
	crashes := int(cfg.CrashRate * float64(n))
	if crashes > 0 && cfg.Horizon > 0 {
		// The window schedule is the only seeded-rand use: it is built
		// once in the constructor, so no decision depends on call order.
		rng := rand.New(rand.NewSource(int64(splitmix64(p.h0 ^ 0xc4a54))))
		perm := rng.Perm(n)
		if crashes > n {
			crashes = n
		}
		span := cfg.CrashSpan * cfg.Horizon
		for i := 0; i < crashes; i++ {
			start := rng.Float64() * (cfg.Horizon - span)
			if start < 0 {
				start = 0
			}
			p.windows = append(p.windows, Window{
				Node: graph.NodeID(perm[i]),
				From: start,
				To:   start + span,
			})
		}
		sort.Slice(p.windows, func(i, j int) bool {
			if p.windows[i].Node != p.windows[j].Node {
				return p.windows[i].Node < p.windows[j].Node
			}
			return p.windows[i].From < p.windows[j].From
		})
	}
	return p
}

// Config returns the plan's (filled) configuration.
func (p *Plan) Config() Config { return p.cfg }

// Windows returns the crash schedule, sorted by (node, start).
func (p *Plan) Windows() []Window {
	return append([]Window(nil), p.windows...)
}

// CrashedAt reports whether node is inside a crash window at time t.
// Negative times (substrates without a simulated clock) never match.
func (p *Plan) CrashedAt(node graph.NodeID, t float64) bool {
	if t < 0 {
		return false
	}
	for _, w := range p.windows {
		if w.Node == node && t >= w.From && t < w.To {
			return true
		}
		if w.Node > node {
			return false
		}
	}
	return false
}

// roll hashes a decision key into [0, 1).
func (p *Plan) roll(kind uint64, op uint64, hop, attempt int) float64 {
	h := splitmix64(p.h0 ^ kind)
	h = splitmix64(h ^ op)
	h = splitmix64(h ^ uint64(int64(hop)))
	h = splitmix64(h ^ uint64(int64(attempt)))
	return float64(h>>11) / (1 << 53)
}

// DropAttempt reports whether attempt `attempt` of message `hop` of
// operation `op` is lost in transit.
func (p *Plan) DropAttempt(op uint64, hop, attempt int) bool {
	if p.cfg.DropRate <= 0 {
		return false
	}
	return p.roll(kindDrop, op, hop, attempt) < p.cfg.DropRate
}

// ExtraDelay returns the additional travel time of a delivered attempt (0
// for unslowed messages, DelayFactor×dist for slowed ones).
func (p *Plan) ExtraDelay(op uint64, hop, attempt int, dist float64) float64 {
	if p.cfg.DelayRate <= 0 {
		return 0
	}
	if p.roll(kindDelay, op, hop, attempt) < p.cfg.DelayRate {
		return p.cfg.DelayFactor * dist
	}
	return 0
}

// MaxAttempts returns the per-message retransmission bound.
func (p *Plan) MaxAttempts() int { return p.cfg.MaxAttempts }

// Backoff returns the simulated-time backoff after failed attempt k
// (exponential: BackoffBase × 2^(k-1)).
func (p *Plan) Backoff(attempt int) float64 {
	b := p.cfg.BackoffBase
	for k := 1; k < attempt; k++ {
		b *= 2
	}
	return b
}

// DeliveryError is the typed failure surfaced when a message exhausts its
// retransmission budget (a crashed or unreachable destination). Callers
// match it with errors.As.
type DeliveryError struct {
	Op       uint64
	Hop      int
	Attempts int
	Dest     graph.NodeID
}

func (e *DeliveryError) Error() string {
	return fmt.Sprintf("chaos: delivery to node %d failed after %d attempts (op %d, hop %d)",
		e.Dest, e.Attempts, e.Op, e.Hop)
}
