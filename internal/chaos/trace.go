package chaos

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/graph"
)

// Event is one recorded fault occurrence.
type Event struct {
	// Kind is "drop" (hashed loss), "crash" (loss to a crashed node),
	// "delay" (slowed delivery), or "fail" (attempts exhausted).
	Kind string
	// Op, Hop, Attempt identify the message attempt the fault hit.
	Op           uint64
	Hop, Attempt int
	// Node is the message destination.
	Node graph.NodeID
	// At is the simulated time of the fault (-1 on substrates without a
	// simulated clock).
	At float64
	// Amount is the extra delay of a "delay" event.
	Amount float64
}

// String renders the event as one stable trace line.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Kind)
	b.WriteString(" op=")
	b.WriteString(strconv.FormatUint(e.Op, 10))
	b.WriteString(" hop=")
	b.WriteString(strconv.Itoa(e.Hop))
	b.WriteString(" attempt=")
	b.WriteString(strconv.Itoa(e.Attempt))
	b.WriteString(" dest=")
	b.WriteString(strconv.Itoa(int(e.Node)))
	if e.At >= 0 {
		b.WriteString(" t=")
		b.WriteString(strconv.FormatFloat(e.At, 'g', -1, 64))
	}
	if e.Amount != 0 {
		b.WriteString(" extra=")
		b.WriteString(strconv.FormatFloat(e.Amount, 'g', -1, 64))
	}
	return b.String()
}

// Trace accumulates fault events. It is safe for concurrent use (the
// goroutine runtime records from many node loops); Render sorts by
// logical identity, so the rendered trace is deterministic even when the
// recording order is not.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// Record appends one event.
func (t *Trace) Record(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events in logical order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	out := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Hop != b.Hop {
			return a.Hop < b.Hop
		}
		if a.Attempt != b.Attempt {
			return a.Attempt < b.Attempt
		}
		return a.Kind < b.Kind
	})
	return out
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Render returns the trace as newline-separated stable lines — the byte
// representation the golden chaos replay tests pin.
func (t *Trace) Render() string {
	evs := t.Events()
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Injector couples a Plan with a Trace and adapts both to the substrate
// fault hooks (sim.Engine's FaultInjector, runtime.Tracker's chaos path).
type Injector struct {
	plan  *Plan
	trace *Trace
}

// NewInjector builds a plan for an n-node network and an empty trace.
func NewInjector(cfg Config, n int) *Injector {
	return &Injector{plan: NewPlan(cfg, n), trace: &Trace{}}
}

// Plan returns the underlying deterministic plan.
func (i *Injector) Plan() *Plan { return i.plan }

// Trace returns the fault trace recorded so far.
func (i *Injector) Trace() *Trace { return i.trace }

// Attempt decides the fate of one message attempt: drop (retry later) or
// deliver with an extra delay (possibly 0). now is the simulated time, or
// -1 on substrates without a clock (crash windows then never match; the
// runtime drives crashes explicitly).
func (i *Injector) Attempt(op uint64, hop, attempt int, dest graph.NodeID, dist, now float64) (drop bool, extraDelay float64) {
	if i.plan.CrashedAt(dest, now) {
		i.trace.Record(Event{Kind: "crash", Op: op, Hop: hop, Attempt: attempt, Node: dest, At: now})
		return true, 0
	}
	if i.plan.DropAttempt(op, hop, attempt) {
		i.trace.Record(Event{Kind: "drop", Op: op, Hop: hop, Attempt: attempt, Node: dest, At: now})
		return true, 0
	}
	if extra := i.plan.ExtraDelay(op, hop, attempt, dist); extra > 0 {
		i.trace.Record(Event{Kind: "delay", Op: op, Hop: hop, Attempt: attempt, Node: dest, At: now, Amount: extra})
		return false, extra
	}
	return false, 0
}

// DropForced records a drop imposed by substrate state rather than the
// hash stream — the goroutine runtime's explicitly crashed destinations.
func (i *Injector) DropForced(op uint64, hop, attempt int, dest graph.NodeID) {
	i.trace.Record(Event{Kind: "crash", Op: op, Hop: hop, Attempt: attempt, Node: dest, At: -1})
}

// MaxAttempts returns the per-message retransmission bound.
func (i *Injector) MaxAttempts() int { return i.plan.MaxAttempts() }

// Backoff returns the simulated-time backoff after failed attempt k.
func (i *Injector) Backoff(attempt int) float64 { return i.plan.Backoff(attempt) }

// Fail records the exhaustion of a message's retransmission budget and
// returns the typed error the operation surfaces.
func (i *Injector) Fail(op uint64, hop, attempts int, dest graph.NodeID, now float64) error {
	i.trace.Record(Event{Kind: "fail", Op: op, Hop: hop, Attempt: attempts, Node: dest, At: now})
	return &DeliveryError{Op: op, Hop: hop, Attempts: attempts, Dest: dest}
}
