package chaos

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestChaosPlanDeterministicAndSeedSensitive(t *testing.T) {
	cfg := Config{Seed: 7, DropRate: 0.3, DelayRate: 0.2, CrashRate: 0.2, Horizon: 100}
	a := NewPlan(cfg, 50)
	b := NewPlan(cfg, 50)
	differ := 0
	for op := uint64(0); op < 40; op++ {
		for hop := 0; hop < 8; hop++ {
			if a.DropAttempt(op, hop, 1) != b.DropAttempt(op, hop, 1) {
				t.Fatalf("equal plans disagree on drop(%d,%d)", op, hop)
			}
			if a.ExtraDelay(op, hop, 1, 2) != b.ExtraDelay(op, hop, 1, 2) {
				t.Fatalf("equal plans disagree on delay(%d,%d)", op, hop)
			}
		}
	}
	aw, bw := a.Windows(), b.Windows()
	if len(aw) != len(bw) || len(aw) != 10 {
		t.Fatalf("windows %d vs %d, want 10 (CrashRate 0.2 of 50)", len(aw), len(bw))
	}
	for i := range aw {
		if aw[i] != bw[i] {
			t.Fatalf("window %d differs: %+v vs %+v", i, aw[i], bw[i])
		}
		if aw[i].From < 0 || aw[i].To > 100 || aw[i].To <= aw[i].From {
			t.Fatalf("window %d out of horizon: %+v", i, aw[i])
		}
	}
	cfg2 := cfg
	cfg2.Seed = 8
	c := NewPlan(cfg2, 50)
	for op := uint64(0); op < 40; op++ {
		for hop := 0; hop < 8; hop++ {
			if a.DropAttempt(op, hop, 1) != c.DropAttempt(op, hop, 1) {
				differ++
			}
		}
	}
	if differ == 0 {
		t.Fatal("distinct seeds produced identical drop streams")
	}
}

func TestChaosDropRateEmpirical(t *testing.T) {
	p := NewPlan(Config{Seed: 3, DropRate: 0.25}, 10)
	drops := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.DropAttempt(uint64(i), i%7, 1+i%3) {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.22 || got > 0.28 {
		t.Fatalf("empirical drop rate %.3f, want ≈0.25", got)
	}
}

func TestChaosZeroConfigInjectsNothing(t *testing.T) {
	p := NewPlan(Config{}, 20)
	for i := 0; i < 500; i++ {
		if p.DropAttempt(uint64(i), i, 1) {
			t.Fatal("zero-value plan dropped a message")
		}
		if p.ExtraDelay(uint64(i), i, 1, 3) != 0 {
			t.Fatal("zero-value plan delayed a message")
		}
	}
	if len(p.Windows()) != 0 {
		t.Fatal("zero-value plan scheduled crash windows")
	}
	if p.CrashedAt(0, 5) {
		t.Fatal("zero-value plan crashed a node")
	}
}

func TestChaosBackoffExponential(t *testing.T) {
	p := NewPlan(Config{Seed: 1, BackoffBase: 2}, 4)
	want := []float64{2, 4, 8, 16}
	for k, w := range want {
		if got := p.Backoff(k + 1); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", k+1, got, w)
		}
	}
	if p.MaxAttempts() != 8 {
		t.Fatalf("default MaxAttempts = %d, want 8", p.MaxAttempts())
	}
}

func TestChaosCrashedAtRespectsWindowsAndClocklessTime(t *testing.T) {
	p := NewPlan(Config{Seed: 11, CrashRate: 0.5, CrashSpan: 0.2, Horizon: 50}, 8)
	ws := p.Windows()
	if len(ws) != 4 {
		t.Fatalf("want 4 windows, got %d", len(ws))
	}
	w := ws[0]
	mid := (w.From + w.To) / 2
	if !p.CrashedAt(w.Node, mid) {
		t.Fatalf("node %d not crashed inside its window", w.Node)
	}
	if p.CrashedAt(w.Node, w.To+1) {
		t.Fatal("node crashed after its window ended")
	}
	if p.CrashedAt(w.Node, -1) {
		t.Fatal("clockless time (-1) matched a crash window")
	}
}

func TestChaosTraceRenderSortedAndStable(t *testing.T) {
	tr := &Trace{}
	tr.Record(Event{Kind: "drop", Op: 5, Hop: 2, Attempt: 1, Node: 3, At: 7.5})
	tr.Record(Event{Kind: "delay", Op: 1, Hop: 0, Attempt: 1, Node: 9, At: 2, Amount: 1.5})
	tr.Record(Event{Kind: "fail", Op: 5, Hop: 2, Attempt: 8, Node: 3, At: 40})
	got := tr.Render()
	want := "delay op=1 hop=0 attempt=1 dest=9 t=2 extra=1.5\n" +
		"drop op=5 hop=2 attempt=1 dest=3 t=7.5\n" +
		"fail op=5 hop=2 attempt=8 dest=3 t=40\n"
	if got != want {
		t.Fatalf("rendered trace:\n%s\nwant:\n%s", got, want)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestChaosInjectorRecordsAndFails(t *testing.T) {
	inj := NewInjector(Config{Seed: 2, DropRate: 1}, 10)
	drop, _ := inj.Attempt(1, 0, 1, 4, 2, 0)
	if !drop {
		t.Fatal("DropRate=1 did not drop")
	}
	err := inj.Fail(1, 0, inj.MaxAttempts(), 4, 9)
	var de *DeliveryError
	if !errors.As(err, &de) {
		t.Fatalf("Fail returned %T, want *DeliveryError", err)
	}
	if de.Dest != 4 || de.Attempts != 8 {
		t.Fatalf("DeliveryError = %+v", de)
	}
	if !strings.Contains(err.Error(), "node 4") {
		t.Fatalf("error text %q", err)
	}
	if inj.Trace().Len() != 2 {
		t.Fatalf("trace has %d events, want 2", inj.Trace().Len())
	}
	inj.DropForced(2, 1, 1, graph.NodeID(6))
	evs := inj.Trace().Events()
	if evs[len(evs)-1].Kind != "crash" || evs[len(evs)-1].At != -1 {
		t.Fatalf("DropForced recorded %+v", evs[len(evs)-1])
	}
}
