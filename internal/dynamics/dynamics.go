// Package dynamics implements the §7 incremental churn engine: a mutable
// HS hierarchy plus directory that stay consistent while sensors fail and
// recover. Every liveness flip is handled immediately — hier.Repair
// re-elects the overlay locally (landing on the exact hierarchy a
// from-scratch rebuild of the live set would produce) and precisely the
// trails the event broke (crash damage ∪ structural staleness) are
// re-stamped — so tracking stays available throughout and repair work is
// local to the perturbation. Past ChurnThreshold × N cumulative failures
// the coarse fallback rebuilds overlay and directory from scratch over
// the live set, parking objects whose proxy is down until it returns.
//
// The engine is deliberately unsynchronized: callers serialize churn
// events against tracking operations (the mot facade holds its churn
// lock; the experiments harness is sequential per schedule).
package dynamics

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hier"
)

// Config parameterizes an Engine.
type Config struct {
	// Hier configures the HS overlay; Incremental is forced on.
	Hier hier.Config
	// Core configures the directory (placement must be host placement —
	// the load-balanced distribution does not survive overlay mutation).
	Core core.Config
	// ChurnThreshold is the fraction of sensors whose cumulative failures
	// trigger the coarse rebuild; <= 0 defaults to 0.25.
	ChurnThreshold float64
	// RebuildEachEvent is the validation mode: every event rebuilds the
	// overlay from scratch over the live set (hier.BuildExcluding) in
	// place of hier.Repair, with the directory-repair discipline
	// unchanged. Repair lands on a Fingerprint-identical overlay, so a
	// run under this mode must be byte-identical to the same run without
	// it — the golden churn tier replays both and diffs the cost traces.
	RebuildEachEvent bool
}

// Engine owns the churn-mutable overlay and directory.
type Engine struct {
	g   *graph.Graph
	dm  graph.DistanceOracle
	cfg Config

	hs  *hier.Hierarchy
	dir *core.Directory

	failed  map[graph.NodeID]bool
	damaged map[core.ObjectID]bool
	parked  map[core.ObjectID]graph.NodeID
	churn   int
}

// New builds a pristine engine over the full live set.
func New(g *graph.Graph, dm graph.DistanceOracle, cfg Config) (*Engine, error) {
	cfg.Hier.Incremental = true
	if cfg.ChurnThreshold <= 0 {
		cfg.ChurnThreshold = 0.25
	}
	hs, err := hier.BuildExcluding(g, dm, cfg.Hier, nil)
	if err != nil {
		return nil, fmt.Errorf("dynamics: %w", err)
	}
	return &Engine{
		g: g, dm: dm, cfg: cfg,
		hs:      hs,
		dir:     core.New(hs, cfg.Core),
		failed:  make(map[graph.NodeID]bool),
		damaged: make(map[core.ObjectID]bool),
		parked:  make(map[core.ObjectID]graph.NodeID),
	}, nil
}

// Directory returns the live directory. The pointer changes when a
// threshold rebuild replaces it — re-read after every Fail/Recover.
func (e *Engine) Directory() *core.Directory { return e.dir }

// Overlay returns the live hierarchy (same caveat as Directory).
func (e *Engine) Overlay() *hier.Hierarchy { return e.hs }

// IsFailed reports whether sensor n is currently down.
func (e *Engine) IsFailed(n graph.NodeID) bool { return e.failed[n] }

// FailedNodes lists the currently failed sensors, sorted.
func (e *Engine) FailedNodes() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(e.failed))
	for n := range e.failed {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ParkedObjects lists the objects stranded on a failed proxy across a
// coarse rebuild, sorted; they re-enter the directory when their node
// recovers.
func (e *Engine) ParkedObjects() []core.ObjectID {
	out := make([]core.ObjectID, 0, len(e.parked))
	for o := range e.parked {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Fail takes sensor n down: its stored entries are dropped (core.DropHost),
// the overlay is repaired around the exclusion, and every broken trail is
// re-stamped before Fail returns. Failing an already-failed node is a
// defined no-op.
func (e *Engine) Fail(n graph.NodeID) error {
	if int(n) < 0 || int(n) >= e.g.N() {
		return fmt.Errorf("dynamics: fail: node %d out of range [0,%d)", n, e.g.N())
	}
	if e.failed[n] {
		return nil
	}
	if e.hs.LiveCount() <= 2 {
		return fmt.Errorf("dynamics: fail: node %d would leave fewer than two live sensors", n)
	}
	if err := e.hs.Exclude(n); err != nil {
		return fmt.Errorf("dynamics: fail: %w", err)
	}
	e.failed[n] = true
	e.churn++
	for _, o := range e.dir.DropHost(n) {
		e.damaged[o] = true
	}
	return e.event(n)
}

// Recover brings sensor n back, readmits it into the overlay, restores
// objects parked on it, and re-stamps whatever the readmission perturbed.
// Recovering a node that is not failed is a defined no-op.
func (e *Engine) Recover(n graph.NodeID) error {
	if int(n) < 0 || int(n) >= e.g.N() {
		return fmt.Errorf("dynamics: recover: node %d out of range [0,%d)", n, e.g.N())
	}
	if !e.failed[n] {
		return nil
	}
	delete(e.failed, n)
	if err := e.hs.Readmit(n); err != nil {
		return fmt.Errorf("dynamics: recover: %w", err)
	}
	if err := e.unpark(n); err != nil {
		return err
	}
	if err := e.event(n); err != nil {
		return err
	}
	if len(e.failed) == 0 {
		e.churn = 0
	}
	return nil
}

// Unpublish retires object o, wherever it currently lives (directory or
// parking lot).
func (e *Engine) Unpublish(o core.ObjectID) error {
	delete(e.damaged, o)
	if _, ok := e.parked[o]; ok {
		delete(e.parked, o)
		return nil // never entered the rebuilt directory
	}
	return e.dir.Unpublish(o)
}

// event is the shared response to one liveness flip at node n (already
// Excluded or Readmitted): repair or rebuild the overlay, then re-stamp
// exactly the trails the event broke.
func (e *Engine) event(n graph.NodeID) error {
	if float64(e.churn) > e.cfg.ChurnThreshold*float64(e.g.N()) {
		return e.rebuild()
	}
	if e.cfg.RebuildEachEvent {
		fresh, err := hier.BuildExcluding(e.g, e.dm, e.cfg.Hier, e.FailedNodes())
		if err != nil {
			return fmt.Errorf("dynamics: rebuild-each-event: %w", err)
		}
		e.hs = fresh
		e.dir.SwapOverlay(fresh)
	} else {
		if _, err := e.hs.Repair([]graph.NodeID{n}); err != nil {
			return fmt.Errorf("dynamics: churn repair: %w", err)
		}
	}
	return e.repairStale()
}

// repairStale re-stamps every object whose trail the last event left
// broken — the union of crash damage (DropHost) and structural staleness
// (StaleObjects) — skipping objects whose proxy is down; those stay
// damaged until their node recovers.
func (e *Engine) repairStale() error {
	pending := make(map[core.ObjectID]bool, len(e.damaged))
	for _, o := range e.dir.StaleObjects(func(u graph.NodeID) bool { return e.failed[u] }) {
		pending[o] = true
	}
	for o := range e.damaged {
		pending[o] = true
	}
	objs := make([]core.ObjectID, 0, len(pending))
	for o := range pending {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, o := range objs {
		proxy, ok := e.dir.Location(o)
		if !ok {
			delete(e.damaged, o) // unpublished while damaged
			continue
		}
		if e.failed[proxy] {
			continue // repaired when the proxy recovers
		}
		if err := e.dir.Repair(o); err != nil {
			return fmt.Errorf("dynamics: churn repair: %w", err)
		}
		delete(e.damaged, o)
	}
	return nil
}

// unpark re-introduces the objects parked on proxy n, in object order.
func (e *Engine) unpark(n graph.NodeID) error {
	objs := make([]core.ObjectID, 0, len(e.parked))
	for o, proxy := range e.parked {
		if proxy == n {
			objs = append(objs, o)
		}
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, o := range objs {
		if err := e.dir.Restore(o, n); err != nil {
			return fmt.Errorf("dynamics: recover: %w", err)
		}
		delete(e.parked, o)
	}
	return nil
}

// rebuild is the coarse fallback: a fresh overlay and directory over the
// live set, re-introducing every reachable object (charged to
// RecoveryCost, meter carried over) and parking objects whose proxy is
// down.
func (e *Engine) rebuild() error {
	fresh, err := hier.BuildExcluding(e.g, e.dm, e.cfg.Hier, e.FailedNodes())
	if err != nil {
		return fmt.Errorf("dynamics: rebuild past churn threshold: %w", err)
	}
	dir := core.New(fresh, e.cfg.Core)
	dir.AbsorbMeter(e.dir.Meter())
	for _, o := range e.dir.Objects() {
		proxy, _ := e.dir.Location(o)
		if e.failed[proxy] {
			e.parked[o] = proxy
			continue
		}
		if err := dir.Restore(o, proxy); err != nil {
			return fmt.Errorf("dynamics: rebuild past churn threshold: %w", err)
		}
	}
	e.hs, e.dir = fresh, dir
	e.damaged = make(map[core.ObjectID]bool)
	e.churn = 0
	return nil
}
