package overlay

import (
	"testing"

	"repro/internal/graph"
)

func pathOn(hosts ...[]graph.NodeID) Path {
	p := make(Path, len(hosts))
	for l, hs := range hosts {
		for _, h := range hs {
			p[l] = append(p[l], Station{Level: l, Key: int64(h), Host: h})
		}
	}
	return p
}

func TestFlatten(t *testing.T) {
	p := pathOn([]graph.NodeID{0}, []graph.NodeID{1, 2}, []graph.NodeID{3})
	fl := Flatten(p)
	want := []graph.NodeID{0, 1, 2, 3}
	if len(fl) != len(want) {
		t.Fatalf("flatten %v", fl)
	}
	for i, s := range fl {
		if s.Host != want[i] {
			t.Fatalf("flatten %v", fl)
		}
	}
}

func TestLengthOnPathGraph(t *testing.T) {
	g := graph.Path(5)
	m := graph.NewMetric(g)
	p := pathOn([]graph.NodeID{0}, []graph.NodeID{2}, []graph.NodeID{4})
	if got := Length(p, m); got != 4 {
		t.Fatalf("Length = %v, want 4", got)
	}
	if got := LengthUpTo(p, m, 1); got != 2 {
		t.Fatalf("LengthUpTo(1) = %v, want 2", got)
	}
	if got := LengthUpTo(p, m, 0); got != 0 {
		t.Fatalf("LengthUpTo(0) = %v, want 0", got)
	}
	// Multi-station level accrues intra-level travel.
	p2 := pathOn([]graph.NodeID{0}, []graph.NodeID{1, 3})
	if got := Length(p2, m); got != 3 { // 0->1 (1) + 1->3 (2)
		t.Fatalf("Length with parent set = %v, want 3", got)
	}
}

func TestMeetLevel(t *testing.T) {
	a := pathOn([]graph.NodeID{0}, []graph.NodeID{5}, []graph.NodeID{9})
	b := pathOn([]graph.NodeID{1}, []graph.NodeID{6}, []graph.NodeID{9})
	if got := MeetLevel(a, b); got != 2 {
		t.Fatalf("MeetLevel = %d, want 2", got)
	}
	c := pathOn([]graph.NodeID{1}, []graph.NodeID{5}, []graph.NodeID{9})
	if got := MeetLevel(a, c); got != 1 {
		t.Fatalf("MeetLevel = %d, want 1", got)
	}
	d := pathOn([]graph.NodeID{1}, []graph.NodeID{6}, []graph.NodeID{8})
	if got := MeetLevel(a, d); got != -1 {
		t.Fatalf("MeetLevel disjoint = %d, want -1", got)
	}
	if got := MeetLevel(a, a); got != 0 {
		t.Fatalf("MeetLevel self = %d, want 0", got)
	}
}

func TestSpecialParentWrapsIndex(t *testing.T) {
	p := pathOn([]graph.NodeID{0}, []graph.NodeID{1, 2, 3}, []graph.NodeID{4, 5}, []graph.NodeID{6})
	sp, ok := SpecialParent(p, 1, 2, 1)
	if !ok || sp.Host != 4 { // idx 2 mod len 2 = 0
		t.Fatalf("sp %v ok %t", sp, ok)
	}
	sp, ok = SpecialParent(p, 1, 1, 2)
	if !ok || sp.Host != 6 {
		t.Fatalf("sp %v ok %t", sp, ok)
	}
	if _, ok := SpecialParent(p, 2, 0, 5); ok {
		t.Fatal("offset beyond top should be undefined")
	}
	if _, ok := SpecialParent(p, 2, 0, 0); ok {
		t.Fatal("zero offset should be undefined")
	}
}

func TestStationString(t *testing.T) {
	s := Station{Level: 2, Key: 7, Host: 7}
	if s.String() != "L2/k7@7" {
		t.Fatalf("String = %q", s.String())
	}
}
