// Package overlay defines the types shared between the hierarchical overlay
// constructions (constant-doubling HS in internal/hier, the general-network
// sparse-partition hierarchy in internal/partition) and the MOT directory
// core that runs on top of them.
//
// An overlay presents, for every bottom-level sensor node u, its detection
// path DPath(u): for each level 0..h an ordered list of stations (directory
// slots hosted at physical sensor nodes) that publish, maintenance, and
// query operations visit in order (§2.2, Definition 1). Station order within
// a level is the paper's ID order, which rules out the race conditions of
// Fig. 3 in concurrent executions (§3.1).
package overlay

import (
	"fmt"

	"repro/internal/graph"
)

// Station is one directory slot in the overlay: a (level, key) pair hosted
// at a physical sensor node. For the constant-doubling HS the key is the
// leader's node ID; for the general-network partition the key is a cluster
// ID (several clusters per level may share a physical host).
type Station struct {
	Level int
	Key   int64
	Host  graph.NodeID
}

// String renders the station for diagnostics.
func (s Station) String() string {
	return fmt.Sprintf("L%d/k%d@%d", s.Level, s.Key, s.Host)
}

// Path is a detection path: Path[l] lists the stations visited at level l,
// in visit (ID) order. Path[0] is always the single bottom-level station of
// the issuing sensor node, and Path[h] contains the root station.
type Path [][]Station

// Overlay is the hierarchical tracking structure the MOT directory runs on.
// Implementations must be safe for concurrent use after construction.
type Overlay interface {
	// Height returns h, the top level index; levels run 0..h.
	Height() int
	// Root returns the root station (the single station at level h).
	Root() Station
	// DPath returns the detection path of bottom-level node u. The result
	// is shared and must not be modified by callers.
	DPath(u graph.NodeID) Path
	// HomeStation returns the default-parent station of u at the given
	// level (home^level(u), §2.2) — the station detection trails are
	// anchored at. It is always a member of DPath(u)[level].
	HomeStation(u graph.NodeID, level int) Station
	// SpecialOffset returns the level offset sigma used to pick special
	// parents (Definition 3; sigma = 3*rho+6 in the theory).
	SpecialOffset() int
	// Metric returns the distance oracle of the underlying network, used
	// for message-cost accounting (exact *graph.Metric at small n, the
	// sub-quadratic sketch oracle in scale sweeps).
	Metric() graph.DistanceOracle
}

// SpecialParent returns the special parent of the station at (level, idx)
// on path p: the station offset levels higher on the same detection path,
// with index wrapped modulo the higher level's station count (§3,
// Definition 3 and the parent-set extension below it). ok is false when the
// special parent is undefined (too close to the root), which the paper
// allows.
func SpecialParent(p Path, level, idx, offset int) (Station, bool) {
	k := level + offset
	if k <= level || k >= len(p) || len(p[k]) == 0 {
		return Station{}, false
	}
	ss := p[k]
	return ss[idx%len(ss)], true
}

// Flatten returns all stations of p in visit order: level by level,
// ascending, and within each level in the stored (ID) order.
func Flatten(p Path) []Station {
	var out []Station
	for _, lvl := range p {
		out = append(out, lvl...)
	}
	return out
}

// Length returns the total travel distance of visiting all stations of p in
// order, measured by shortest-path distances between consecutive hosts —
// the length of the detection path (Definition 1, Lemma 2.2).
func Length(p Path, m graph.DistanceOracle) float64 {
	st := Flatten(p)
	total := 0.0
	for i := 1; i < len(st); i++ {
		total += m.Dist(st[i-1].Host, st[i].Host)
	}
	return total
}

// LengthUpTo returns the travel distance of visiting stations of p in order
// up to and including level j.
func LengthUpTo(p Path, m graph.DistanceOracle, j int) float64 {
	total := 0.0
	var prev *Station
	for l := 0; l <= j && l < len(p); l++ {
		for i := range p[l] {
			s := p[l][i]
			if prev != nil {
				total += m.Dist(prev.Host, s.Host)
			}
			prev = &p[l][i]
		}
	}
	return total
}

// MeetLevel returns the lowest level at which the two paths share a
// station, or -1 if they share none below or at maxLevel. Lemma 2.1
// guarantees a meeting at level ceil(log dist(u,v)) + 1 on constant-doubling
// overlays built with parent sets.
func MeetLevel(a, b Path) int {
	h := len(a)
	if len(b) < h {
		h = len(b)
	}
	for l := 0; l < h; l++ {
		set := make(map[int64]bool, len(a[l]))
		for _, s := range a[l] {
			set[s.Key] = true
		}
		for _, s := range b[l] {
			if set[s.Key] {
				return l
			}
		}
	}
	return -1
}
