package experiments

// Tests for the per-topology substrate cache: pointer identity (cells
// actually share one metric/hierarchy), byte-identical output with the
// cache on versus off, and race-freedom of concurrent cache access
// (TestRaceSubstrateCacheShared runs in the -race smoke tier).

import (
	"bytes"
	"testing"

	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/runtime/track"
)

func TestSubstrateCacheIdentity(t *testing.T) {
	c := NewSubstrateCache()
	g1, m1 := c.Grid(36)
	g2, m2 := c.Grid(36)
	if g1 != g2 || m1 != m2 {
		t.Fatal("same-size Grid calls returned distinct substrates")
	}
	if !m1.Frozen() {
		t.Fatal("cached metric is not frozen")
	}
	if g3, _ := c.Grid(16); g3 == g1 {
		t.Fatal("different sizes share a grid")
	}

	cfg := hier.Config{Seed: 7, SpecialParentOffset: 2}
	h1, err := c.GridHierarchy(36, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.GridHierarchy(36, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("same (size, config) hierarchies are distinct")
	}
	if h1.Metric() != m1 {
		t.Fatal("cached hierarchy was not built over the cached metric")
	}
	hOther, err := c.GridHierarchy(36, hier.Config{Seed: 8, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	if hOther == h1 {
		t.Fatal("different seeds share a hierarchy")
	}

	c.Reset()
	if g4, _ := c.Grid(36); g4 == g1 {
		t.Fatal("Reset did not drop the grid entry")
	}

	// Disabled path always builds fresh.
	ga, ma := gridSubstrate(36, true)
	gb, mb := gridSubstrate(36, true)
	if ga == gb || ma == mb {
		t.Fatal("disabled substrate cache still shared instances")
	}
}

// TestGoldenSubstrateCacheOffMatchesOn pins that sharing substrates
// cannot perturb sweep output: a cache-disabled run renders byte-for-byte
// the same figures as the default cached run, sequentially and in
// parallel.
func TestGoldenSubstrateCacheOffMatchesOn(t *testing.T) {
	on, err := RunCostRatio(goldenConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	offCfg := goldenConfig(4)
	offCfg.DisableSubstrateCache = true
	off, err := RunCostRatio(offCfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderCost(on), renderCost(off)
	if !bytes.Equal(a, b) {
		t.Fatalf("substrate cache changed sweep output:\n--- cache on\n%s--- cache off\n%s", a, b)
	}
}

// TestRaceSubstrateCacheShared hammers one cache from several goroutines;
// under -race this proves concurrent cells can share a frozen metric and
// a hierarchy (detection-path cache included) without data races.
func TestRaceSubstrateCacheShared(t *testing.T) {
	c := NewSubstrateCache()
	cfg := hier.Config{Seed: 3, SpecialParentOffset: 2}
	type got struct {
		h   *hier.Hierarchy
		err error
	}
	const goroutines = 6
	results := make([]got, goroutines)
	var pool track.Group
	for i := 0; i < goroutines; i++ {
		pool.Go(func() {
			g, m := c.Grid(25)
			h, err := c.GridHierarchy(25, cfg)
			if err == nil {
				// Exercise shared read paths under race: frozen rows,
				// diameter, and the hierarchy's path cache.
				_ = m.Diameter()
				_ = m.Row(0)
				for u := 0; u < g.N(); u++ {
					_ = h.DPath(graph.NodeID(u))
				}
			}
			results[i] = got{h: h, err: err}
		})
	}
	pool.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("goroutine %d: %v", i, r.err)
		}
		if r.h != results[0].h {
			t.Fatal("concurrent GridHierarchy calls returned distinct hierarchies")
		}
	}
}
