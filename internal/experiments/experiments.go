// Package experiments contains the harnesses that regenerate every figure
// of the paper's evaluation (§8, Figs. 4–15): maintenance and query cost
// ratios for MOT, STUN, Z-DAT, and Z-DAT with shortcuts over grid networks
// of 10–1024 nodes with 100 and 1000 objects, in one-by-one and concurrent
// executions, plus the per-node load comparisons.
//
// Each harness returns structured results; the Print helpers render the
// same rows/series the paper plots. DESIGN.md maps figure numbers to
// harness configurations, and cmd/motsim drives them from the command line.
package experiments

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/lb"
	"repro/internal/mobility"
	"repro/internal/runtime/track"
	"repro/internal/stun"
	"repro/internal/treedir"
	"repro/internal/zdat"
)

// Algorithm names, in the order the figures list them.
const (
	AlgMOT    = "MOT"
	AlgSTUN   = "STUN"
	AlgZDAT   = "Z-DAT"
	AlgZDATSC = "Z-DAT+shortcuts"
)

// Algorithms is the comparison set of the paper's figures.
var Algorithms = []string{AlgMOT, AlgSTUN, AlgZDAT, AlgZDATSC}

// CostRatioConfig parameterizes a cost-ratio sweep (Figs. 4–7, 12–15).
type CostRatioConfig struct {
	// Sizes are target node counts; each becomes a near-square grid.
	Sizes []int
	// Objects is m (100 or 1000 in the paper).
	Objects int
	// MovesPerObject is the maintenance operations per object (1000).
	MovesPerObject int
	// Queries is the number of query operations issued after (one-by-one)
	// or during (concurrent) the maintenance workload.
	Queries int
	// QueryRadius localizes queries: each requester is sampled within
	// this distance of the queried object's final position (0 = uniform
	// over all sensors, the paper's setting). Local queries are the
	// regime where distance-sensitive tracking shines.
	QueryRadius float64
	// Seeds is the number of independent repetitions averaged (5).
	Seeds int
	// Concurrent selects the discrete-event concurrent execution
	// (Figs. 12–15) instead of one-by-one (Figs. 4–7).
	Concurrent bool
	// Concurrency is the per-object burst size in concurrent mode (10).
	Concurrency int
	// LoadBalance runs MOT with the §5 hashed-cluster placement (the
	// paper's MOT variant; its maintenance ratio is slightly above
	// Z-DAT's because of the de Bruijn routing surcharge).
	LoadBalance bool
	// UseParentSets enables the §3.1 parent-set probing in one-by-one
	// runs (the concurrent simulator always uses the simple single-parent
	// form of Algorithm 1).
	UseParentSets bool
	// ZoneDepth is Z-DAT's quadrant depth.
	ZoneDepth int
	// BaseSeed salts every cell's PRNG stream: cell (size, seedIndex)
	// runs on mobility.StreamSeed(BaseSeed, size, seedIndex). Zero is a
	// valid base (the default sweep).
	BaseSeed int64
	// Workers bounds the worker pool running sweep cells concurrently.
	// Zero or negative means one worker per CPU (runtime.GOMAXPROCS).
	// Any value yields byte-identical results: cells share only immutable
	// substrates and are merged in (size, seedIndex) order regardless of
	// scheduling.
	Workers int
	// DisableSubstrateCache makes every cell rebuild its own grid, metric,
	// and hierarchy instead of sharing the per-topology substrate cache.
	// Output is byte-identical either way (the cache holds only immutable
	// values); this exists for benchmarking the cache's win and as an
	// escape hatch.
	DisableSubstrateCache bool
}

func (c *CostRatioConfig) fill() {
	if len(c.Sizes) == 0 {
		c.Sizes = append([]int(nil), DefaultSizes...)
	}
	fillInt(&c.Objects, DefaultObjects)
	fillInt(&c.MovesPerObject, DefaultMovesPerObject)
	fillInt(&c.Queries, c.Objects)
	fillInt(&c.Seeds, DefaultSeeds)
	fillInt(&c.Concurrency, DefaultConcurrency)
	fillInt(&c.ZoneDepth, DefaultZoneDepth)
	fillWorkers(&c.Workers)
}

// CostRatioResult holds cost ratios per algorithm per network size.
// Maintenance and Query are aggregate ratios (total cost / total optimal);
// MaintenanceMean and QueryMean average the per-operation ratios, which is
// how the paper's figures weight operations (each query counts equally, so
// a distance-insensitive algorithm's overpriced short-range queries show).
type CostRatioResult struct {
	Sizes           []int
	Algorithms      []string
	Maintenance     [][]float64
	Query           [][]float64
	MaintenanceMean [][]float64
	QueryMean       [][]float64

	// Auxiliary traffic, averaged over seeds like the ratios above, so no
	// metered cost is droppable in reports: SDL registration traffic,
	// the §5 de Bruijn routing surcharge, and §7 recovery cost and
	// operation counts (all zero for the fault-free baselines).
	Special     [][]float64
	LBRoute     [][]float64
	Recovery    [][]float64
	RecoveryOps [][]float64
}

// sweepCell is one independent unit of a cost-ratio sweep: a (size,
// seedIndex) pair. Cells share nothing — each builds its own grid,
// metric, workload, and directories from its own seed stream — so they
// can run on any worker in any order.
type sweepCell struct {
	si      int // index into cfg.Sizes
	seedIdx int
}

// RunCostRatio executes the sweep and returns mean maintenance and query
// cost ratios — the data behind Figs. 4–7 (one-by-one) and 12–15
// (concurrent). Cells run on cfg.Workers goroutines; the per-cell meters
// are merged in (size, seedIndex) order afterwards, so the result is
// byte-identical for every worker count.
func RunCostRatio(cfg CostRatioConfig) (*CostRatioResult, error) {
	cfg.fill()
	res := &CostRatioResult{Sizes: cfg.Sizes, Algorithms: Algorithms}
	res.Maintenance = make([][]float64, len(Algorithms))
	res.Query = make([][]float64, len(Algorithms))
	res.MaintenanceMean = make([][]float64, len(Algorithms))
	res.QueryMean = make([][]float64, len(Algorithms))
	res.Special = make([][]float64, len(Algorithms))
	res.LBRoute = make([][]float64, len(Algorithms))
	res.Recovery = make([][]float64, len(Algorithms))
	res.RecoveryOps = make([][]float64, len(Algorithms))
	for a := range Algorithms {
		res.Maintenance[a] = make([]float64, len(cfg.Sizes))
		res.Query[a] = make([]float64, len(cfg.Sizes))
		res.MaintenanceMean[a] = make([]float64, len(cfg.Sizes))
		res.QueryMean[a] = make([]float64, len(cfg.Sizes))
		res.Special[a] = make([]float64, len(cfg.Sizes))
		res.LBRoute[a] = make([]float64, len(cfg.Sizes))
		res.Recovery[a] = make([]float64, len(cfg.Sizes))
		res.RecoveryOps[a] = make([]float64, len(cfg.Sizes))
	}

	cells := make([]sweepCell, 0, len(cfg.Sizes)*cfg.Seeds)
	for si := range cfg.Sizes {
		for seed := 0; seed < cfg.Seeds; seed++ {
			cells = append(cells, sweepCell{si: si, seedIdx: seed})
		}
	}
	meters, err := runCells(cfg, cells)
	if err != nil {
		return nil, err
	}

	// Deterministic merge: fold per-cell meters in (size, seedIndex)
	// order. Scheduling never touches the sum order, so Workers=N output
	// is byte-identical to Workers=1.
	for ci, c := range cells {
		for a := range Algorithms {
			res.Maintenance[a][c.si] += meters[ci][a].MaintRatio() / float64(cfg.Seeds)
			res.Query[a][c.si] += meters[ci][a].QueryRatio() / float64(cfg.Seeds)
			res.MaintenanceMean[a][c.si] += meters[ci][a].MaintMeanRatio() / float64(cfg.Seeds)
			res.QueryMean[a][c.si] += meters[ci][a].QueryMeanRatio() / float64(cfg.Seeds)
			res.Special[a][c.si] += meters[ci][a].SpecialCost / float64(cfg.Seeds)
			res.LBRoute[a][c.si] += meters[ci][a].LBRouteCost / float64(cfg.Seeds)
			res.Recovery[a][c.si] += meters[ci][a].RecoveryCost / float64(cfg.Seeds)
			res.RecoveryOps[a][c.si] += float64(meters[ci][a].RecoveryOps) / float64(cfg.Seeds)
		}
	}
	return res, nil
}

// runCells executes sweep cells on a bounded worker pool and returns the
// per-cell meters indexed like cells. On failure it reports the error of
// the earliest cell that failed (deterministic even when several workers
// fail at once) and stops handing out further cells.
func runCells(cfg CostRatioConfig, cells []sweepCell) ([][]core.CostMeter, error) {
	meters := make([][]core.CostMeter, len(cells))
	errs := make([]error, len(cells))
	workers := cfg.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	var failed atomic.Bool
	jobs := make(chan int)
	var pool track.Group
	for w := 0; w < workers; w++ {
		pool.Go(func() {
			for ci := range jobs {
				if failed.Load() {
					continue
				}
				c := cells[ci]
				n := cfg.Sizes[c.si]
				ms, err := runOne(cfg, n, mobility.StreamSeed(cfg.BaseSeed, n, c.seedIdx))
				if err != nil {
					errs[ci] = fmt.Errorf("experiments: size %d seed %d: %w", n, c.seedIdx, err)
					failed.Store(true)
					continue
				}
				meters[ci] = ms
			}
		})
	}
	for ci := range cells {
		jobs <- ci
	}
	close(jobs)
	pool.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return meters, nil
}

// runOne runs all four algorithms on one grid/seed and returns their
// meters in Algorithms order. seed is the cell's derived stream seed; it
// drives workload generation, hierarchy construction, and the concurrent
// scheduler, so the cell is fully reproducible in isolation.
func runOne(cfg CostRatioConfig, n int, seed int64) ([]core.CostMeter, error) {
	g, m := gridSubstrate(n, cfg.DisableSubstrateCache)
	w, err := mobility.Generate(g, m, mobility.Config{
		Objects:        cfg.Objects,
		MovesPerObject: cfg.MovesPerObject,
		Queries:        cfg.Queries,
		QueryRadius:    cfg.QueryRadius,
		Seed:           seed,
	})
	if err != nil {
		return nil, err
	}
	rates := w.DetectionRates(g)
	if cfg.Concurrent {
		return runConcurrentAll(cfg, n, g, m, w, rates, seed)
	}
	return runOneByOneAll(cfg, n, g, m, w, rates, seed)
}

// runOneByOneAll replays the workload on the four directories sequentially.
func runOneByOneAll(cfg CostRatioConfig, n int, g *graph.Graph, m *graph.Metric, w *mobility.Workload, rates map[mobility.EdgeKey]float64, seed int64) ([]core.CostMeter, error) {
	hs, err := hierSubstrate(n, g, m, hier.Config{Seed: seed, SpecialParentOffset: 2, UseParentSets: cfg.UseParentSets}, cfg.DisableSubstrateCache)
	if err != nil {
		return nil, err
	}
	dcfg := core.Config{}
	if cfg.LoadBalance {
		dcfg.Placement = lb.New(hs)
	}
	mot := core.New(hs, dcfg)

	stunDir, err := stun.New(g, m, rates)
	if err != nil {
		return nil, err
	}
	zdatDir, err := zdat.New(g, m, rates, zdat.Config{ZoneDepth: cfg.ZoneDepth, Sink: graph.Undefined})
	if err != nil {
		return nil, err
	}
	zdatSC, err := zdat.New(g, m, rates, zdat.Config{ZoneDepth: cfg.ZoneDepth, Shortcuts: true, Sink: graph.Undefined})
	if err != nil {
		return nil, err
	}

	type dir interface {
		Publish(core.ObjectID, graph.NodeID) error
		Move(core.ObjectID, graph.NodeID) error
		Query(graph.NodeID, core.ObjectID) (graph.NodeID, float64, error)
		Meter() core.CostMeter
	}
	dirs := []dir{motAdapter{mot}, stunDir, zdatDir, zdatSC}
	meters := make([]core.CostMeter, len(dirs))
	for di, d := range dirs {
		for o, at := range w.Initial {
			if err := d.Publish(core.ObjectID(o), at); err != nil {
				return nil, err
			}
		}
		for _, mv := range w.Moves {
			if err := d.Move(mv.Object, mv.To); err != nil {
				return nil, err
			}
		}
		for _, q := range w.Queries {
			if _, _, err := d.Query(q.From, q.Object); err != nil {
				return nil, err
			}
		}
		meters[di] = d.Meter()
	}
	return meters, nil
}

// motAdapter narrows *core.Directory to the shared driver interface.
type motAdapter struct{ d *core.Directory }

func (a motAdapter) Publish(o core.ObjectID, at graph.NodeID) error { return a.d.Publish(o, at) }
func (a motAdapter) Move(o core.ObjectID, to graph.NodeID) error    { return a.d.Move(o, to) }
func (a motAdapter) Query(from graph.NodeID, o core.ObjectID) (graph.NodeID, float64, error) {
	return a.d.Query(from, o)
}
func (a motAdapter) Meter() core.CostMeter { return a.d.Meter() }

// baselineTree builds the baseline tree plus its query discipline.
func baselineTree(alg string, g *graph.Graph, m *graph.Metric, rates map[mobility.EdgeKey]float64, zoneDepth int) (*treedir.Tree, treedir.Config, error) {
	switch alg {
	case AlgSTUN:
		t, err := stun.BuildTree(g, m, rates)
		return t, treedir.Config{SinkQueries: true}, err
	case AlgZDAT:
		t, err := zdat.BuildTree(g, m, rates, zdat.Config{ZoneDepth: zoneDepth, Sink: graph.Undefined})
		return t, treedir.Config{}, err
	case AlgZDATSC:
		t, err := zdat.BuildTree(g, m, rates, zdat.Config{ZoneDepth: zoneDepth, Sink: graph.Undefined})
		return t, treedir.Config{Shortcuts: true}, err
	}
	return nil, treedir.Config{}, fmt.Errorf("experiments: unknown baseline %q", alg)
}
