package experiments

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/mobility"
	motruntime "repro/internal/runtime"
	"repro/internal/runtime/track"
	"repro/internal/sim"
)

// ChaosConfig parameterizes the chaos tier: seeded crash/drop/delay
// schedules replayed on both execution substrates (the discrete-event
// simulator and the goroutine runtime). Every schedule's fault plan is a
// pure function of (BaseSeed, Size, schedule index), so the produced fault
// traces are byte-identical across runs and worker counts.
type ChaosConfig struct {
	// BaseSeed salts every schedule's stream; schedule i runs on
	// mobility.StreamSeed(BaseSeed, Size, i).
	BaseSeed int64
	// Size is the target sensor count (a near-square grid).
	Size int
	// Objects / MovesPerObject / Queries shape the workload.
	Objects        int
	MovesPerObject int
	Queries        int
	// Schedules is the number of independent chaos schedules.
	Schedules int
	// DropRate / DelayRate / DelayFactor / CrashRate / CrashSpan configure
	// the fault plan (zero value defaults below; negative rates disable
	// that fault). CrashSpan is each crash window's length as a fraction
	// of the schedule horizon — long windows outlast retransmission
	// budgets, forcing delivery failures and the repair path.
	DropRate    float64
	DelayRate   float64
	DelayFactor float64
	CrashRate   float64
	CrashSpan   float64
	// MaxAttempts bounds per-message retransmissions.
	MaxAttempts int
	// Workers bounds the pool running schedules concurrently; any value
	// yields byte-identical results.
	Workers int
	// DisableSubstrateCache makes every schedule rebuild its own grid,
	// metric, and hierarchy instead of sharing the substrate cache.
	DisableSubstrateCache bool
}

// fillRate defaults a zero rate and clamps negative ("disabled") to 0.
func fillRate(v *float64, def float64) {
	if *v == 0 {
		*v = def
	}
	if *v < 0 {
		*v = 0
	}
}

func (c *ChaosConfig) fill() {
	fillInt(&c.Size, 49)
	fillInt(&c.Objects, 4)
	fillInt(&c.MovesPerObject, 25)
	fillInt(&c.Queries, 15)
	fillInt(&c.Schedules, 3)
	fillRate(&c.DropRate, 0.15)
	fillRate(&c.DelayRate, 0.2)
	fillRate(&c.CrashRate, 0.1)
	fillRate(&c.CrashSpan, 0.4)
	fillInt(&c.MaxAttempts, 6)
	fillWorkers(&c.Workers)
}

// ChaosSchedule is the outcome of one seeded schedule on both substrates.
// The trace strings are the golden byte representation of the injected
// faults (chaos.Trace.Render).
type ChaosSchedule struct {
	Index int
	Seed  int64

	// Discrete-event simulator run (crash windows + drops + delays).
	SimTrace     string
	SimMeter     core.CostMeter
	SimCompleted int // queries that completed
	SimLost      int // operations abandoned by the fault layer

	// Goroutine runtime run (drops + delays; no simulated clock).
	RunTrace  string
	RunCost   float64
	RunDelay  float64 // simulated backoff/delay time accounted
	RunFailed int     // operations failed with a *chaos.DeliveryError
}

// SimFaults returns the number of fault events injected into the
// discrete-event simulator run (lines of the golden trace).
func (s *ChaosSchedule) SimFaults() int { return countLines(s.SimTrace) }

// RunFaults returns the number of fault events injected into the
// goroutine-runtime run.
func (s *ChaosSchedule) RunFaults() int { return countLines(s.RunTrace) }

// ChaosResult is the full chaos tier outcome.
type ChaosResult struct {
	Config    ChaosConfig
	Schedules []ChaosSchedule
}

// RunChaos executes cfg.Schedules seeded fault schedules on a worker pool
// and returns their outcomes in schedule order. Each schedule drives the
// same workload through the discrete-event simulator (with crash windows,
// drops, and delays; recovery invariants are asserted at quiescence) and
// through the goroutine runtime (drops and delays with retry/backoff).
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	cfg.fill()
	res := &ChaosResult{Config: cfg, Schedules: make([]ChaosSchedule, cfg.Schedules)}
	errs := make([]error, cfg.Schedules)
	workers := cfg.Workers
	if workers > cfg.Schedules {
		workers = cfg.Schedules
	}
	var failed atomic.Bool
	jobs := make(chan int)
	var pool track.Group
	for w := 0; w < workers; w++ {
		pool.Go(func() {
			for i := range jobs {
				if failed.Load() {
					continue
				}
				sched, err := runChaosSchedule(cfg, i)
				if err != nil {
					errs[i] = fmt.Errorf("experiments: chaos schedule %d: %w", i, err)
					failed.Store(true)
					continue
				}
				res.Schedules[i] = sched
			}
		})
	}
	for i := 0; i < cfg.Schedules; i++ {
		jobs <- i
	}
	close(jobs)
	pool.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runChaosSchedule runs one seeded schedule on both substrates.
func runChaosSchedule(cfg ChaosConfig, idx int) (ChaosSchedule, error) {
	seed := mobility.StreamSeed(cfg.BaseSeed, cfg.Size, idx)
	out := ChaosSchedule{Index: idx, Seed: seed}

	g, m := gridSubstrate(cfg.Size, cfg.DisableSubstrateCache)
	w, err := mobility.Generate(g, m, mobility.Config{
		Objects:        cfg.Objects,
		MovesPerObject: cfg.MovesPerObject,
		Queries:        cfg.Queries,
		Seed:           seed,
	})
	if err != nil {
		return out, err
	}
	hs, err := hierSubstrate(cfg.Size, g, m, hier.Config{Seed: seed, SpecialParentOffset: 2}, cfg.DisableSubstrateCache)
	if err != nil {
		return out, err
	}

	// --- substrate 1: discrete-event simulator, full fault mix ---------
	eng := sim.NewEngine(0)
	ms, err := sim.NewMOT(hs, eng, sim.Config{PeriodSync: true})
	if err != nil {
		return out, err
	}
	horizon, err := sim.Schedule(ms, w, sim.DriverConfig{Diameter: m.Diameter(), Seed: seed})
	if err != nil {
		return out, err
	}
	inj := chaos.NewInjector(chaos.Config{
		Seed:        seed,
		DropRate:    cfg.DropRate,
		DelayRate:   cfg.DelayRate,
		DelayFactor: cfg.DelayFactor,
		CrashRate:   cfg.CrashRate,
		CrashSpan:   cfg.CrashSpan,
		Horizon:     horizon,
		MaxAttempts: cfg.MaxAttempts,
	}, g.N())
	eng.SetFaults(inj)
	if err := eng.Run(); err != nil {
		return out, err
	}
	// The recovery contract: after quiescence the directory must be
	// globally consistent no matter which messages the plan killed.
	if err := ms.CheckInvariants(); err != nil {
		return out, fmt.Errorf("invariants after chaos: %w", err)
	}
	out.SimTrace = inj.Trace().Render()
	out.SimMeter = ms.Meter()
	out.SimCompleted = len(ms.Results())
	out.SimLost = len(ms.Lost())

	// --- substrate 2: goroutine runtime, drop+delay with retry ---------
	// The runtime has no simulated clock, so crash windows do not apply;
	// explicit Crash/Recover is exercised by the runtime's own chaos
	// tests. Operations replay sequentially so operation numbering (and
	// with it the fault trace) is deterministic.
	rinj := chaos.NewInjector(chaos.Config{
		Seed:        seed,
		DropRate:    cfg.DropRate,
		DelayRate:   cfg.DelayRate,
		DelayFactor: cfg.DelayFactor,
		MaxAttempts: cfg.MaxAttempts,
	}, g.N())
	tr := motruntime.NewChaos(g, hs, rinj)
	defer tr.Stop()
	countFail := func(err error) error {
		var de *chaos.DeliveryError
		if errors.As(err, &de) {
			out.RunFailed++
			return nil
		}
		return err
	}
	for o, at := range w.Initial {
		if err := tr.Publish(core.ObjectID(o), at); err != nil {
			if err = countFail(err); err != nil {
				return out, err
			}
		}
	}
	for _, mv := range w.Moves {
		if err := tr.Move(mv.Object, mv.To); err != nil {
			if err = countFail(err); err != nil {
				return out, err
			}
		}
	}
	for _, q := range w.Queries {
		if _, _, err := tr.Query(q.From, q.Object); err != nil {
			if err = countFail(err); err != nil {
				return out, err
			}
		}
	}
	out.RunTrace = rinj.Trace().Render()
	out.RunCost = tr.Cost()
	out.RunDelay = tr.SimulatedDelay()
	return out, nil
}

// PrintChaos renders the chaos tier outcome, one line per schedule.
func PrintChaos(w io.Writer, res *ChaosResult) {
	fmt.Fprintf(w, "chaos tier: %d schedules on %d sensors (drop=%.2f delay=%.2f crash=%.2f, %d attempts)\n",
		res.Config.Schedules, res.Config.Size,
		res.Config.DropRate, res.Config.DelayRate, res.Config.CrashRate, res.Config.MaxAttempts)
	for _, s := range res.Schedules {
		simEvents := countLines(s.SimTrace)
		runEvents := countLines(s.RunTrace)
		fmt.Fprintf(w, "  schedule %d (seed %d): sim %d faults, %d lost ops, %d queries done, recovery %.1f over %d repairs; runtime %d faults, %d failed ops, cost %.1f, delay %.1f\n",
			s.Index, s.Seed,
			simEvents, s.SimLost, s.SimCompleted, s.SimMeter.RecoveryCost, s.SimMeter.RecoveryOps,
			runEvents, s.RunFailed, s.RunCost, s.RunDelay)
	}
}

func countLines(s string) int {
	n := 0
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}
