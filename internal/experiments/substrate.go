package experiments

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/hier"
)

// SubstrateCache shares the expensive immutable inputs of sweep cells.
// Every harness in this package runs cells on near-square grids, and a
// cell's grid, frozen metric, and hierarchy are pure functions of the
// requested size (and, for the hierarchy, the hier.Config): cells that
// agree on those can reuse one instance across seeds and workers instead
// of redoing the O(n²·log n) all-pairs fill per cell.
//
// Sharing cannot perturb results: graphs are never mutated after
// construction, a frozen *graph.Metric is immutable and lock-free (see
// graph.Metric), and *hier.Hierarchy is read-only after Build apart from
// its internally synchronized detection-path cache, whose entries are
// deterministic regardless of which cell fills them first. The golden
// Workers=1≡N byte-identity tests run with the cache enabled and pin
// this.
//
// Entries are never evicted — the paper's sweeps touch a handful of
// sizes, each worth one n×n float64 table — but Reset drops everything
// (benchmarks use it to measure cold builds).
// Oracle entries are kept in maps separate from the exact ones on
// purpose: the exact gridEntry runs a full Precompute, so reusing it for
// oracle cells would materialize exactly the n×n table the oracle mode
// exists to avoid.
type SubstrateCache struct {
	mu          sync.Mutex
	grids       map[int]*gridEntry
	hiers       map[hierKey]*hierEntry
	oracles     map[int]*oracleEntry
	oracleHiers map[hierKey]*hierEntry
}

// Entries carry their own once so builds run outside the cache lock:
// two cells racing on different sizes build concurrently, two racing on
// the same size share one build.
type gridEntry struct {
	once sync.Once
	g    *graph.Graph
	m    *graph.Metric
}

type oracleEntry struct {
	once sync.Once
	g    *graph.Graph
	o    *graph.Oracle
}

type hierKey struct {
	n   int // requested grid size, not g.N()
	cfg hier.Config
}

type hierEntry struct {
	once sync.Once
	hs   *hier.Hierarchy
	err  error
}

// NewSubstrateCache returns an empty cache.
func NewSubstrateCache() *SubstrateCache {
	return &SubstrateCache{
		grids:       make(map[int]*gridEntry),
		hiers:       make(map[hierKey]*hierEntry),
		oracles:     make(map[int]*oracleEntry),
		oracleHiers: make(map[hierKey]*hierEntry),
	}
}

// defaultSubstrates backs every harness unless its config sets
// DisableSubstrateCache.
var defaultSubstrates = NewSubstrateCache()

// ResetSubstrateCache drops every entry of the package-level cache.
func ResetSubstrateCache() { defaultSubstrates.Reset() }

// Reset drops every cached substrate.
func (c *SubstrateCache) Reset() {
	c.mu.Lock()
	c.grids = make(map[int]*gridEntry)
	c.hiers = make(map[hierKey]*hierEntry)
	c.oracles = make(map[int]*oracleEntry)
	c.oracleHiers = make(map[hierKey]*hierEntry)
	c.mu.Unlock()
}

// Grid returns the shared near-square grid for requested size n together
// with its frozen metric, building both on first use.
func (c *SubstrateCache) Grid(n int) (*graph.Graph, *graph.Metric) {
	c.mu.Lock()
	e, ok := c.grids[n]
	if !ok {
		e = &gridEntry{}
		c.grids[n] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.g = graph.NearSquareGrid(n)
		e.m = graph.NewMetric(e.g)
		e.m.Precompute(0)
	})
	return e.g, e.m
}

// GridHierarchy returns the shared hierarchy built over Grid(n) with cfg,
// or Build's error (also cached: a failing (n, cfg) fails every cell the
// same way).
func (c *SubstrateCache) GridHierarchy(n int, cfg hier.Config) (*hier.Hierarchy, error) {
	key := hierKey{n: n, cfg: cfg}
	c.mu.Lock()
	e, ok := c.hiers[key]
	if !ok {
		e = &hierEntry{}
		c.hiers[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		g, m := c.Grid(n)
		e.hs, e.err = hier.Build(g, m, cfg)
	})
	return e.hs, e.err
}

// GridOracle returns the shared near-square grid for requested size n
// together with its sub-quadratic distance oracle, building both on first
// use. The grid is built independently of Grid(n)'s entry so that an
// oracle-mode sweep never triggers the exact metric's n×n Precompute.
// Oracle parameters are the seeded defaults (see graph.OracleConfig),
// making the entry a pure function of n.
func (c *SubstrateCache) GridOracle(n int) (*graph.Graph, *graph.Oracle) {
	c.mu.Lock()
	e, ok := c.oracles[n]
	if !ok {
		e = &oracleEntry{}
		c.oracles[n] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.g = graph.NearSquareGrid(n)
		e.o = graph.NewOracle(e.g, graph.OracleConfig{})
	})
	return e.g, e.o
}

// GridOracleHierarchy returns the shared hierarchy built over
// GridOracle(n) with cfg, or Build's error.
func (c *SubstrateCache) GridOracleHierarchy(n int, cfg hier.Config) (*hier.Hierarchy, error) {
	key := hierKey{n: n, cfg: cfg}
	c.mu.Lock()
	e, ok := c.oracleHiers[key]
	if !ok {
		e = &hierEntry{}
		c.oracleHiers[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		g, o := c.GridOracle(n)
		e.hs, e.err = hier.Build(g, o, cfg)
	})
	return e.hs, e.err
}

// gridSubstrate resolves a cell's grid and frozen metric, from the shared
// cache unless disabled.
func gridSubstrate(n int, disable bool) (*graph.Graph, *graph.Metric) {
	if disable {
		g := graph.NearSquareGrid(n)
		m := graph.NewMetric(g)
		m.Precompute(0)
		return g, m
	}
	return defaultSubstrates.Grid(n)
}

// hierSubstrate resolves a cell's hierarchy for the grid of requested
// size n. With the cache enabled the hierarchy is built over (and
// therefore shares) the cached grid and metric; g and m are only used
// when the cache is disabled, and must then be the cell's own.
func hierSubstrate(n int, g *graph.Graph, m *graph.Metric, cfg hier.Config, disable bool) (*hier.Hierarchy, error) {
	if disable {
		return hier.Build(g, m, cfg)
	}
	return defaultSubstrates.GridHierarchy(n, cfg)
}
