package experiments

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/lb"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/obs/live"
	motruntime "repro/internal/runtime"
	"repro/internal/runtime/track"
	"repro/internal/sim"
)

// Observability run names, in report order. The four runs replay one
// seeded workload on every substrate: the sequential core with §5 load
// balancing on and off (the per-node load comparison), the discrete-event
// simulator, and the goroutine runtime in sequential replay.
const (
	ObsRunCoreLB   = "core-lb"
	ObsRunCoreNoLB = "core-nolb"
	ObsRunSim      = "sim"
	ObsRunRuntime  = "runtime"
)

// ObsRuns is the fixed run set of an observability sweep.
var ObsRuns = []string{ObsRunCoreLB, ObsRunCoreNoLB, ObsRunSim, ObsRunRuntime}

// ObsConfig parameterizes an observability sweep: one seeded workload
// traced on all substrates.
type ObsConfig struct {
	// BaseSeed salts the shared workload stream; the sweep runs on
	// mobility.StreamSeed(BaseSeed, Size, 0).
	BaseSeed int64
	// Size is the sensor count (a near-square grid).
	Size int
	// Objects / MovesPerObject / Queries shape the workload.
	Objects        int
	MovesPerObject int
	Queries        int
	// Workers bounds the pool running the four runs concurrently. Runs
	// share only immutable substrates (each derives its own workload and
	// recorder from the same seed), so any value yields byte-identical
	// recorders.
	Workers int
	// DisableSubstrateCache makes every run rebuild its own grid, metric,
	// and hierarchy instead of sharing the substrate cache.
	DisableSubstrateCache bool
	// LiveTelemetry attaches a wall-clock live recorder to the runtime
	// run (the only substrate with real per-op wall time). The live
	// layer is additive: it populates ObsResult.Live for diagnostics
	// (`motsim -live-summary`, latency report columns) and never touches
	// the deterministic recorders, so every Write* artifact stays
	// byte-identical to a live-off run.
	LiveTelemetry bool
}

func (c *ObsConfig) fill() {
	fillInt(&c.Size, 64)
	fillInt(&c.Objects, 8)
	fillInt(&c.MovesPerObject, 40)
	fillInt(&c.Queries, 30)
	fillWorkers(&c.Workers)
}

// ObsResult carries one recorder per run, in ObsRuns order. The Write
// methods delegate to internal/obs's deterministic exporters, so equal
// configs produce byte-identical artifacts at any worker count.
type ObsResult struct {
	Config    ObsConfig
	Seed      int64
	Recorders []*obs.Recorder
	// Live holds each run's wall-clock recorder, aligned with Recorders
	// (nil entries for runs without one; all nil unless
	// Config.LiveTelemetry). Non-deterministic by nature — summaries and
	// report latency columns only, never the Write* artifacts.
	Live []*live.Recorder
}

// WriteTraceJSONL writes every run's spans as sorted JSON lines.
func (r *ObsResult) WriteTraceJSONL(w io.Writer) error {
	return obs.WriteJSONLAll(w, r.Recorders...)
}

// WriteMetricsCSV writes every run's metrics as one CSV.
func (r *ObsResult) WriteMetricsCSV(w io.Writer) error {
	return obs.WriteMetricsCSVAll(w, r.Recorders...)
}

// WriteChromeTrace writes a Chrome trace-event JSON covering all runs.
func (r *ObsResult) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, r.Recorders...)
}

// Recorder returns the named run's recorder (nil if absent).
func (r *ObsResult) Recorder(name string) *obs.Recorder {
	for _, rec := range r.Recorders {
		if rec.Label() == name {
			return rec
		}
	}
	return nil
}

// LiveFor returns the named run's live wall-clock recorder, or nil when
// the run has none (live telemetry off, or a substrate it never
// attaches to).
func (r *ObsResult) LiveFor(name string) *live.Recorder {
	for i, rec := range r.Recorders {
		if rec.Label() == name && i < len(r.Live) {
			return r.Live[i]
		}
	}
	return nil
}

// HasLive reports whether any run carries a live recorder.
func (r *ObsResult) HasLive() bool {
	for _, lrec := range r.Live {
		if lrec != nil {
			return true
		}
	}
	return false
}

// RunObs traces one seeded workload on every substrate and returns the
// recorders in ObsRuns order. Runs execute on cfg.Workers goroutines;
// each run only ever touches its own recorder, so scheduling cannot leak
// into the artifacts and Workers=N output is byte-identical to Workers=1.
func RunObs(cfg ObsConfig) (*ObsResult, error) {
	cfg.fill()
	seed := mobility.StreamSeed(cfg.BaseSeed, cfg.Size, 0)
	res := &ObsResult{
		Config:    cfg,
		Seed:      seed,
		Recorders: make([]*obs.Recorder, len(ObsRuns)),
		Live:      make([]*live.Recorder, len(ObsRuns)),
	}
	errs := make([]error, len(ObsRuns))
	workers := cfg.Workers
	if workers > len(ObsRuns) {
		workers = len(ObsRuns)
	}
	var failed atomic.Bool
	jobs := make(chan int)
	var pool track.Group
	for w := 0; w < workers; w++ {
		pool.Go(func() {
			for ri := range jobs {
				if failed.Load() {
					continue
				}
				rec, lrec, err := runObsOne(cfg, ObsRuns[ri], seed)
				if err != nil {
					errs[ri] = fmt.Errorf("experiments: obs run %s: %w", ObsRuns[ri], err)
					failed.Store(true)
					continue
				}
				res.Recorders[ri] = rec
				res.Live[ri] = lrec
			}
		})
	}
	for ri := range ObsRuns {
		jobs <- ri
	}
	close(jobs)
	pool.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runObsOne replays the seeded workload on one substrate under a fresh
// recorder. The grid, metric, and hierarchy come from the shared
// substrate cache (all four runs use the same seed, so they share one
// hierarchy); each run still derives its own workload and recorder from
// seed, so it is fully reproducible in isolation.
func runObsOne(cfg ObsConfig, name string, seed int64) (*obs.Recorder, *live.Recorder, error) {
	g, m := gridSubstrate(cfg.Size, cfg.DisableSubstrateCache)
	w, err := mobility.Generate(g, m, mobility.Config{
		Objects:        cfg.Objects,
		MovesPerObject: cfg.MovesPerObject,
		Queries:        cfg.Queries,
		Seed:           seed,
	})
	if err != nil {
		return nil, nil, err
	}
	hs, err := hierSubstrate(cfg.Size, g, m, hier.Config{Seed: seed, SpecialParentOffset: 2}, cfg.DisableSubstrateCache)
	if err != nil {
		return nil, nil, err
	}
	rec := obs.New(name)
	var lrec *live.Recorder
	switch name {
	case ObsRunCoreLB, ObsRunCoreNoLB:
		dcfg := core.Config{Obs: rec}
		if name == ObsRunCoreLB {
			dcfg.Placement = lb.New(hs)
		}
		d := core.New(hs, dcfg)
		if err := replayCore(d, w); err != nil {
			return nil, nil, err
		}
		d.ObserveLoad(g.N())
	case ObsRunSim:
		eng := sim.NewEngine(0)
		ms, err := sim.NewMOT(hs, eng, sim.Config{PeriodSync: true, Obs: rec})
		if err != nil {
			return nil, nil, err
		}
		if _, err := sim.Schedule(ms, w, sim.DriverConfig{Diameter: m.Diameter(), Seed: seed}); err != nil {
			return nil, nil, err
		}
		if err := eng.Run(); err != nil {
			return nil, nil, err
		}
	case ObsRunRuntime:
		if cfg.LiveTelemetry {
			lrec = live.New(name, live.Config{Seed: seed})
		}
		tr := motruntime.NewLive(g, hs, nil, rec, lrec)
		defer tr.Stop()
		if err := replayRuntime(tr, w); err != nil {
			return nil, nil, err
		}
		tr.ObserveLoad()
	default:
		return nil, nil, fmt.Errorf("unknown run %q", name)
	}
	return rec, lrec, nil
}

// replayCore drives the workload through a sequential directory.
func replayCore(d *core.Directory, w *mobility.Workload) error {
	for o, at := range w.Initial {
		if err := d.Publish(core.ObjectID(o), at); err != nil {
			return err
		}
	}
	for _, mv := range w.Moves {
		if err := d.Move(mv.Object, mv.To); err != nil {
			return err
		}
	}
	for _, q := range w.Queries {
		if _, _, err := d.Query(q.From, q.Object); err != nil {
			return err
		}
	}
	return nil
}

// replayRuntime drives the workload through the goroutine runtime
// sequentially: each operation completes before the next is issued, so
// the recorder's cost clock (and with it the trace) is deterministic.
func replayRuntime(tr *motruntime.Tracker, w *mobility.Workload) error {
	for o, at := range w.Initial {
		if err := tr.Publish(core.ObjectID(o), at); err != nil {
			return err
		}
	}
	for _, mv := range w.Moves {
		if err := tr.Move(mv.Object, mv.To); err != nil {
			return err
		}
	}
	for _, q := range w.Queries {
		if _, _, err := tr.Query(q.From, q.Object); err != nil {
			return err
		}
	}
	return nil
}
