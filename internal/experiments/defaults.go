package experiments

import "runtime"

// The paper's evaluation parameters (§8). Every harness config defaults
// its zero values to these in one place, so the figure harnesses, the
// benchmarks, and cmd/motsim cannot drift apart.
const (
	// DefaultObjects is m, the number of tracked objects (Figs. 4, 6, 8–11).
	DefaultObjects = 100
	// DefaultMovesPerObject is the maintenance operations per object.
	DefaultMovesPerObject = 1000
	// DefaultSeeds is the number of independent repetitions averaged.
	DefaultSeeds = 5
	// DefaultConcurrency is the per-object burst size in concurrent mode.
	DefaultConcurrency = 10
	// DefaultZoneDepth is Z-DAT's quadrant depth.
	DefaultZoneDepth = 2
	// DefaultLoadNodes is the network size of the load comparisons.
	DefaultLoadNodes = 1024
	// DefaultHistogramMax is the largest per-node load bucket reported.
	DefaultHistogramMax = 20

	// DefaultScaleNodes is the scale sweep's default (and smoke-tier)
	// network size — past the exact metric's practical range.
	DefaultScaleNodes = 10000
	// DefaultScaleObjects/Moves/Queries size the scale workload: small on
	// purpose, since a scale cell measures large-n structure cost, not
	// workload volume.
	DefaultScaleObjects = 20
	DefaultScaleMoves   = 50
	DefaultScaleQueries = 100
	// DefaultOracleMinN is the size at which scale sweeps switch from the
	// exact frozen metric to the sketch oracle (an n×n table below this
	// is a few tens of MB at most).
	DefaultOracleMinN = 2048
	// DefaultExactSampleEvery is the sampled exact re-metering rate of
	// scale sweeps (about one in this many move/query operations).
	DefaultExactSampleEvery = 16
)

// DefaultSizes are the paper's grid sweep sizes (10–1024 sensors).
var DefaultSizes = []int{10, 16, 36, 64, 121, 256, 529, 1024}

// fillInt replaces a non-positive config value with its default.
func fillInt(v *int, def int) {
	if *v <= 0 {
		*v = def
	}
}

// fillWorkers resolves a worker-pool size: non-positive means "one worker
// per available CPU" (runtime.GOMAXPROCS).
func fillWorkers(v *int) {
	if *v <= 0 {
		*v = runtime.GOMAXPROCS(0)
	}
}
