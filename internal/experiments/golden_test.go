package experiments

import (
	"bytes"
	"testing"
)

// goldenConfig is a small Fig-4-style sweep: one-by-one execution, load
// balancing on, several sizes and seeds so cells actually interleave
// across workers.
func goldenConfig(workers int) CostRatioConfig {
	return CostRatioConfig{
		Sizes:          []int{10, 16, 36},
		Objects:        6,
		MovesPerObject: 30,
		Queries:        20,
		Seeds:          3,
		LoadBalance:    true,
		Workers:        workers,
	}
}

// renderCost prints a sweep result the way the figures do, both metric
// tables, into one byte buffer.
func renderCost(res *CostRatioResult) []byte {
	var buf bytes.Buffer
	PrintCostRatio(&buf, res, false)
	PrintCostRatio(&buf, res, true)
	return buf.Bytes()
}

// Golden determinism contract: the rendered figure rows must be
// byte-identical for Workers=1 and Workers=8. Any shared PRNG between
// cells or any scheduling-dependent merge order breaks this.
func TestGoldenParallelMatchesSequential(t *testing.T) {
	seq, err := RunCostRatio(goldenConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCostRatio(goldenConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderCost(seq), renderCost(par)
	if !bytes.Equal(a, b) {
		t.Fatalf("Workers=1 and Workers=8 rendered different figures:\n--- sequential\n%s--- parallel\n%s", a, b)
	}

	// Re-running the parallel sweep must also reproduce itself exactly.
	par2, err := RunCostRatio(goldenConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, renderCost(par2)) {
		t.Fatal("two Workers=8 runs rendered different figures")
	}
}

// The concurrent (discrete-event) sweep must obey the same contract.
func TestGoldenParallelMatchesSequentialConcurrent(t *testing.T) {
	cfg := goldenConfig(1)
	cfg.Concurrent = true
	cfg.Sizes = []int{16, 36}
	cfg.Seeds = 2
	seq, err := RunCostRatio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := RunCostRatio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderCost(seq), renderCost(par)) {
		t.Fatal("concurrent sweep: Workers=1 and Workers=8 rendered different figures")
	}
}

// A distinct BaseSeed must select a different (but still reproducible)
// sweep — the base seed is a real input to the stream split, not ignored.
func TestGoldenBaseSeedSelectsStream(t *testing.T) {
	a := goldenConfig(4)
	b := goldenConfig(4)
	b.BaseSeed = 99
	ra, err := RunCostRatio(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunCostRatio(b)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(renderCost(ra), renderCost(rb)) {
		t.Fatal("BaseSeed=0 and BaseSeed=99 rendered identical figures")
	}
	rb2, err := RunCostRatio(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderCost(rb), renderCost(rb2)) {
		t.Fatal("BaseSeed=99 sweep did not reproduce itself")
	}
}
