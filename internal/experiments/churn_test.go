package experiments

import (
	"strings"
	"testing"
)

// TestChurnTierSLO is the headline churn cell: sustained 1–10% churn with
// the SLO asserted inside RunChurn (any issued operation failing past the
// grace window aborts the schedule), invariants and zero staleness at
// every epoch's quiescence, and the tentpole's economics — incremental
// repair strictly cheaper than the rebuild baseline, availability above
// the masked floor.
func TestChurnTierSLO(t *testing.T) {
	res, err := RunChurn(ChurnConfig{
		BaseSeed:  7,
		Size:      64,
		Objects:   5,
		ChurnRate: 0.05,
		Epochs:    3,
		Schedules: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Schedules {
		s := &res.Schedules[i]
		if s.FailEvents == 0 || s.FailEvents != s.RecoverEvents {
			t.Fatalf("schedule %d: %d fail / %d recover events", i, s.FailEvents, s.RecoverEvents)
		}
		if s.OpsIssued == 0 {
			t.Fatalf("schedule %d issued no operations", i)
		}
		if a := s.Availability(); a < 0.5 || a > 1 {
			t.Fatalf("schedule %d availability %.3f out of range", i, a)
		}
		if s.RepairRecoveryOps == 0 {
			t.Fatalf("schedule %d repaired nothing — churn should damage trails", i)
		}
		if s.RepairRecoveryCost >= s.RebuildRecoveryCost {
			t.Fatalf("schedule %d: incremental repair (%.1f) not cheaper than rebuild baseline (%.1f)",
				i, s.RepairRecoveryCost, s.RebuildRecoveryCost)
		}
		if s.Relabels == 0 {
			t.Fatalf("schedule %d: the de Bruijn embedding absorbed no relabels", i)
		}
		if got := strings.Count(s.CostTrace, "\n"); got != res.Config.Epochs {
			t.Fatalf("schedule %d trace has %d lines, want %d", i, got, res.Config.Epochs)
		}
	}
}

// TestChurnRateClamped pins the 1–10% contract: rates above 10% are
// clamped rather than honored.
func TestChurnRateClamped(t *testing.T) {
	res, err := RunChurn(ChurnConfig{
		BaseSeed: 3, Size: 49, ChurnRate: 0.9,
		Epochs: 1, OpsPerEpoch: 4, Schedules: 1, DisableRuntime: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Config.ChurnRate; got != 0.10 {
		t.Fatalf("ChurnRate = %v after fill, want clamp to 0.10", got)
	}
	if want := 5; res.Schedules[0].FailEvents != want { // 10% of 49, rounded
		t.Fatalf("FailEvents = %d, want %d", res.Schedules[0].FailEvents, want)
	}
}

// TestChurnRuntimeReplayCountsLosses exercises the second substrate: the
// goroutine runtime replays the same crash schedule with a static overlay,
// so some operations must be lost — that count is the measured price of
// not repairing incrementally.
func TestChurnRuntimeReplayCountsLosses(t *testing.T) {
	res, err := RunChurn(ChurnConfig{
		BaseSeed: 11, Size: 49, Objects: 6,
		ChurnRate: 0.08, Epochs: 3, OpsPerEpoch: 30, Schedules: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	for i := range res.Schedules {
		lost += res.Schedules[i].RunFailed
	}
	if lost == 0 {
		t.Fatal("static-overlay runtime lost nothing under sustained crashes — replay is not exercising the crash path")
	}
}

// TestScaleOracleChurnSublinear is the 10k churn scale cell (its name
// rides the non-race `make scale` tier): one seeded schedule on the
// sub-quadratic oracle substrate, asserting the tentpole's economics at
// scale — incremental repair's recovery cost must be a small fraction of
// the rebuild baseline's, because repair re-stamps O(affected trails)
// while each rebuild pays Θ(n) to re-elect and re-publish everything.
func TestScaleOracleChurnSublinear(t *testing.T) {
	res, err := RunChurn(ChurnConfig{
		BaseSeed:       13,
		Size:           10000,
		Objects:        40,
		ChurnRate:      0.0004, // four victims per epoch at n=10k
		Epochs:         2,
		OpsPerEpoch:    6,
		Schedules:      1,
		DisableRuntime: true,
		UseOracle:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &res.Schedules[0]
	if want := 4 * res.Config.Epochs; s.FailEvents != want {
		t.Fatalf("expected %d fail events, got %d", want, s.FailEvents)
	}
	if s.RepairRecoveryOps == 0 || s.RebuildRecoveryCost == 0 {
		t.Fatalf("degenerate meters: repair %v/%d rebuild %v/%d",
			s.RepairRecoveryCost, s.RepairRecoveryOps, s.RebuildRecoveryCost, s.RebuildRecoveryOps)
	}
	if ratio := s.RecoveryRatio(); ratio > 0.05 {
		t.Fatalf("repair/rebuild recovery ratio %.4f at n=10000 — incremental repair is not sublinear (repair %.1f vs rebuild %.1f)",
			ratio, s.RepairRecoveryCost, s.RebuildRecoveryCost)
	}
}

// TestChurnPrint smoke-tests the human rendering.
func TestChurnPrint(t *testing.T) {
	res, err := RunChurn(ChurnConfig{
		BaseSeed: 5, Size: 36, Epochs: 1, OpsPerEpoch: 6,
		Schedules: 1, DisableRuntime: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	PrintChurn(&sb, res)
	outStr := sb.String()
	for _, want := range []string{"churn tier", "schedule 0", "availability", "recovery"} {
		if !strings.Contains(outStr, want) {
			t.Fatalf("PrintChurn output missing %q:\n%s", want, outStr)
		}
	}
}
