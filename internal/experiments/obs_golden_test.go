package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// obsArtifacts renders a result's trace and metrics to strings.
func obsArtifacts(t *testing.T, res *ObsResult) (trace, metrics string) {
	t.Helper()
	var tb, mb strings.Builder
	if err := res.WriteTraceJSONL(&tb); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteMetricsCSV(&mb); err != nil {
		t.Fatal(err)
	}
	return tb.String(), mb.String()
}

// dumpGoldenDiff writes mismatching artifacts for offline inspection (CI
// uploads the obs-golden-diff directory when this test fails).
func dumpGoldenDiff(t *testing.T, name, seq, par string) {
	t.Helper()
	dir := "obs-golden-diff"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("cannot create %s: %v", dir, err)
		return
	}
	for suffix, data := range map[string]string{"-seq": seq, "-par": par} {
		p := filepath.Join(dir, name+suffix+".txt")
		if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
			t.Logf("cannot write %s: %v", p, err)
		}
	}
	t.Logf("dumped mismatching artifacts under %s/", dir)
}

// TestGoldenObsParallelMatchesSequential is the determinism contract of
// the observability layer: the exported trace and metrics are
// byte-identical whether the four runs execute on one worker or four.
// Both sim and runtime substrates are covered by the run set.
func TestGoldenObsParallelMatchesSequential(t *testing.T) {
	cfg := ObsConfig{Size: 64, Objects: 6, MovesPerObject: 20, Queries: 15, BaseSeed: 7}

	cfg.Workers = 1
	seqRes, err := RunObs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parRes, err := RunObs(cfg)
	if err != nil {
		t.Fatal(err)
	}

	seqTrace, seqMetrics := obsArtifacts(t, seqRes)
	parTrace, parMetrics := obsArtifacts(t, parRes)
	if seqTrace != parTrace {
		dumpGoldenDiff(t, "trace", seqTrace, parTrace)
		t.Error("trace JSONL differs between Workers=1 and Workers=4")
	}
	if seqMetrics != parMetrics {
		dumpGoldenDiff(t, "metrics", seqMetrics, parMetrics)
		t.Error("metrics CSV differs between Workers=1 and Workers=4")
	}

	// The run set must cover both live substrates plus the two core
	// variants, each with recorded spans.
	for _, name := range ObsRuns {
		rec := seqRes.Recorder(name)
		if rec == nil {
			t.Fatalf("missing recorder %s", name)
		}
		if rec.SpanCount() == 0 {
			t.Errorf("run %s recorded no spans", name)
		}
	}

	// Chrome trace export must be deterministic too and carry every run.
	var cb1, cb2 strings.Builder
	if err := seqRes.WriteChromeTrace(&cb1); err != nil {
		t.Fatal(err)
	}
	if err := parRes.WriteChromeTrace(&cb2); err != nil {
		t.Fatal(err)
	}
	if cb1.String() != cb2.String() {
		t.Error("chrome trace differs between Workers=1 and Workers=4")
	}
	for _, name := range ObsRuns {
		if !strings.Contains(cb1.String(), `"`+name+`"`) {
			t.Errorf("chrome trace missing run %s", name)
		}
	}
}

// TestRunObsLoadSeries checks the §5 claim surfaces in the artifacts: the
// load-balanced core run reports a strictly lower maximum per-node
// storage load than the unbalanced one on the same workload.
func TestRunObsLoadSeries(t *testing.T) {
	res, err := RunObs(ObsConfig{Size: 256, Objects: 24, MovesPerObject: 10, Queries: 5, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lbVals := res.Recorder(ObsRunCoreLB).SeriesValues(obs.SeriesNodeEntries)
	noVals := res.Recorder(ObsRunCoreNoLB).SeriesValues(obs.SeriesNodeEntries)
	if len(lbVals) != 256 || len(noVals) != 256 {
		t.Fatalf("series lengths = %d, %d; want 256", len(lbVals), len(noVals))
	}
	maxOf := func(vs []float64) float64 {
		m := 0.0
		for _, v := range vs {
			if v > m {
				m = v
			}
		}
		return m
	}
	if maxOf(lbVals) >= maxOf(noVals) {
		t.Errorf("load balancing did not lower max load: lb=%v nolb=%v", maxOf(lbVals), maxOf(noVals))
	}
}
