package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Small but real end-to-end run of the one-by-one cost-ratio harness,
// verifying the paper's qualitative shape: MOT beats STUN on both metrics
// and is within a small factor of the Z-DAT variants.
func TestCostRatioOneByOneShape(t *testing.T) {
	res, err := RunCostRatio(CostRatioConfig{
		Sizes:          []int{36, 121},
		Objects:        10,
		MovesPerObject: 120,
		Queries:        60,
		// Localized queries are where distance-sensitivity is structural:
		// STUN pays the sink trip ~O(D) per query while MOT pays O(dist),
		// so the separation survives small samples at any seed.
		QueryRadius: 3,
		Seeds:       3,
		LoadBalance: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	for si, n := range res.Sizes {
		mot, stun := res.MaintenanceMean[0][si], res.MaintenanceMean[1][si]
		if mot < 1 || stun < 1 {
			t.Fatalf("size %d: ratios below 1: mot=%v stun=%v", n, mot, stun)
		}
		if mot >= stun {
			t.Errorf("size %d: MOT maintenance ratio %.2f not below STUN %.2f", n, mot, stun)
		}
		// Query separation needs network scale: on tiny grids the
		// hierarchy constants mask the sink-trip gap.
		qmot, qstun := res.QueryMean[0][si], res.QueryMean[1][si]
		if n >= 100 && qmot >= qstun {
			t.Errorf("size %d: MOT query ratio %.2f not below STUN %.2f", n, qmot, qstun)
		}
		// MOT within a modest factor of Z-DAT (the paper: "matches").
		zdat := res.MaintenanceMean[2][si]
		if mot > 6*zdat {
			t.Errorf("size %d: MOT maintenance %.2f far above Z-DAT %.2f", n, mot, zdat)
		}
	}
}

func TestCostRatioConcurrentRuns(t *testing.T) {
	res, err := RunCostRatio(CostRatioConfig{
		Sizes:          []int{121},
		Objects:        6,
		MovesPerObject: 40,
		Queries:        30,
		Seeds:          1,
		Concurrent:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for a := range res.Algorithms {
		if res.Maintenance[a][0] < 1 {
			t.Fatalf("%s concurrent maintenance ratio %v", res.Algorithms[a], res.Maintenance[a][0])
		}
		if res.QueryMean[a][0] <= 0 {
			t.Fatalf("%s concurrent query ratio %v", res.Algorithms[a], res.QueryMean[a][0])
		}
	}
	// Sink-based STUN queries must cost more than MOT's on a per-query basis.
	if res.QueryMean[0][0] >= res.QueryMean[1][0] {
		t.Errorf("concurrent: MOT query ratio %.2f not below STUN %.2f", res.QueryMean[0][0], res.QueryMean[1][0])
	}
}

func TestRunLoadHeadline(t *testing.T) {
	for _, baseline := range []string{AlgSTUN, AlgZDAT} {
		res, err := RunLoad(LoadConfig{Nodes: 144, Objects: 40, Baseline: baseline, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		// The paper's headline: the baseline concentrates load (nodes with
		// load > 10 exist; the root holds every object), MOT spreads it.
		if res.Baseline.Max < res.MOT.Max {
			t.Errorf("%s: baseline max %d below MOT max %d", baseline, res.Baseline.Max, res.MOT.Max)
		}
		if res.Baseline.AboveTen == 0 {
			t.Errorf("%s: baseline has no node with load > 10 (max %d)", baseline, res.Baseline.Max)
		}
		if res.MOT.AboveTen > res.Baseline.AboveTen {
			t.Errorf("%s: MOT has more overloaded nodes (%d) than baseline (%d)",
				baseline, res.MOT.AboveTen, res.Baseline.AboveTen)
		}
		if len(res.MOTLoad) != 144 {
			t.Fatalf("load vector length %d", len(res.MOTLoad))
		}
	}
}

func TestRunLoadAfterMoves(t *testing.T) {
	res, err := RunLoad(LoadConfig{Nodes: 100, Objects: 30, MovesPerObject: 10, Baseline: AlgZDAT, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.MOT.Total == 0 || res.Baseline.Total == 0 {
		t.Fatalf("empty load totals: %+v", res)
	}
}

func TestFiguresRegistry(t *testing.T) {
	figs := Figures(0.05)
	ids := FigureIDs(figs)
	if len(ids) != 12 || ids[0] != 4 || ids[len(ids)-1] != 15 {
		t.Fatalf("figure ids %v", ids)
	}
	for _, id := range ids {
		f := figs[id]
		if f.Title == "" || f.Kind == "" {
			t.Fatalf("figure %d incomplete: %+v", id, f)
		}
	}
	// Full-scale registry keeps the paper's parameters.
	full := Figures(1)
	if full[4].Cost.Objects != 100 || full[5].Cost.Objects != 1000 {
		t.Fatalf("full-scale objects: %d, %d", full[4].Cost.Objects, full[5].Cost.Objects)
	}
	if full[4].Cost.MovesPerObject != 1000 || full[4].Cost.Seeds != 5 {
		t.Fatalf("full-scale moves/seeds: %+v", full[4].Cost)
	}
	if full[8].Load.Nodes != 1024 || full[9].Load.MovesPerObject != 10 {
		t.Fatalf("full-scale load config: %+v", full[8].Load)
	}
}

func TestFigureRunPrints(t *testing.T) {
	figs := Figures(0.02)
	// One cheap cost figure and one cheap load figure.
	f := figs[4]
	f.Cost.Sizes = []int{16}
	f.Cost.Objects = 4
	f.Cost.MovesPerObject = 20
	f.Cost.Queries = 10
	f.Cost.Seeds = 1
	var buf bytes.Buffer
	if err := f.Run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "MOT") {
		t.Fatalf("output %q", out)
	}

	lf := figs[8]
	lf.Load.Nodes = 64
	lf.Load.Objects = 10
	buf.Reset()
	if err := lf.Run(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "STUN") {
		t.Fatalf("load output %q", buf.String())
	}
}
