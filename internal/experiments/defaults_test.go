package experiments

import (
	"reflect"
	"runtime"
	"testing"
)

// Zero-value configs must fill to the paper's §8 parameters — the single
// source of truth in defaults.go.
func TestZeroCostRatioConfigFillsToPaper(t *testing.T) {
	var c CostRatioConfig
	c.fill()
	if !reflect.DeepEqual(c.Sizes, []int{10, 16, 36, 64, 121, 256, 529, 1024}) {
		t.Errorf("sizes %v", c.Sizes)
	}
	if c.Objects != 100 {
		t.Errorf("objects %d, want m=100", c.Objects)
	}
	if c.MovesPerObject != 1000 {
		t.Errorf("moves/object %d, want 1000", c.MovesPerObject)
	}
	if c.Queries != c.Objects {
		t.Errorf("queries %d, want one per object (%d)", c.Queries, c.Objects)
	}
	if c.Seeds != 5 {
		t.Errorf("seeds %d, want 5", c.Seeds)
	}
	if c.Concurrency != 10 {
		t.Errorf("concurrency %d, want 10", c.Concurrency)
	}
	if c.ZoneDepth != 2 {
		t.Errorf("zone depth %d, want 2", c.ZoneDepth)
	}
	if c.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("workers %d, want GOMAXPROCS=%d", c.Workers, runtime.GOMAXPROCS(0))
	}
}

func TestZeroLoadConfigFillsToPaper(t *testing.T) {
	var c LoadConfig
	c.fill()
	if c.Nodes != 1024 {
		t.Errorf("nodes %d, want 1024", c.Nodes)
	}
	if c.Objects != 100 {
		t.Errorf("objects %d, want m=100", c.Objects)
	}
	if c.Baseline != AlgSTUN {
		t.Errorf("baseline %q", c.Baseline)
	}
	if c.HistogramMax != 20 {
		t.Errorf("histogram max %d, want 20", c.HistogramMax)
	}
	if c.ZoneDepth != 2 {
		t.Errorf("zone depth %d, want 2", c.ZoneDepth)
	}
	if c.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("workers %d, want GOMAXPROCS=%d", c.Workers, runtime.GOMAXPROCS(0))
	}
}

// Explicit values must survive fill untouched.
func TestFillKeepsExplicitValues(t *testing.T) {
	c := CostRatioConfig{Sizes: []int{16}, Objects: 7, MovesPerObject: 3,
		Queries: 9, Seeds: 2, Concurrency: 4, ZoneDepth: 1, Workers: 3}
	c.fill()
	want := CostRatioConfig{Sizes: []int{16}, Objects: 7, MovesPerObject: 3,
		Queries: 9, Seeds: 2, Concurrency: 4, ZoneDepth: 1, Workers: 3}
	if !reflect.DeepEqual(c, want) {
		t.Errorf("fill changed explicit values: %+v", c)
	}
}
