package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// churnArtifact renders a churn result's full byte representation: every
// schedule's cost trace plus its scalar outcome line.
func churnArtifact(res *ChurnResult) string {
	var sb strings.Builder
	for i := range res.Schedules {
		s := &res.Schedules[i]
		fmt.Fprintf(&sb, "== schedule %d seed %d ==\n", s.Index, s.Seed)
		sb.WriteString(s.CostTrace)
		fmt.Fprintf(&sb, "issued %d masked %d relabels %d repair %.4f/%d rebuild %.4f/%d churn %.4f steady %.4f lost %d\n",
			s.OpsIssued, s.OpsMasked, s.Relabels,
			s.RepairRecoveryCost, s.RepairRecoveryOps,
			s.RebuildRecoveryCost, s.RebuildRecoveryOps,
			s.ChurnOpCost, s.SteadyOpCost, s.RunFailed)
	}
	return sb.String()
}

// dumpChurnGoldenDiff writes mismatching artifacts for offline inspection
// (CI uploads the churn-golden-diff directory when these tests fail).
func dumpChurnGoldenDiff(t *testing.T, name, a, b string) {
	t.Helper()
	dir := "churn-golden-diff"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("cannot create %s: %v", dir, err)
		return
	}
	for suffix, data := range map[string]string{"-a": a, "-b": b} {
		p := filepath.Join(dir, name+suffix+".txt")
		if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
			t.Logf("cannot write %s: %v", p, err)
		}
	}
	t.Logf("dumped mismatching artifacts under %s/", dir)
}

var churnGoldenConfig = ChurnConfig{
	BaseSeed:  19,
	Size:      64,
	Objects:   5,
	ChurnRate: 0.06,
	Epochs:    3,
	Schedules: 3,
}

// TestGoldenChurnParallelMatchesSequential pins worker-count determinism:
// the full churn artifact is byte-identical on one worker and on four.
func TestGoldenChurnParallelMatchesSequential(t *testing.T) {
	cfg := churnGoldenConfig
	cfg.Workers = 1
	seqRes, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parRes, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, par := churnArtifact(seqRes), churnArtifact(parRes)
	if seq != par {
		dumpChurnGoldenDiff(t, "workers", seq, par)
		t.Fatal("churn artifact differs between Workers=1 and Workers=4")
	}
}

// TestGoldenChurnRebuildEachEventMatchesRepair pins the tentpole's
// correctness argument in the large: hier.Repair lands on overlays
// Fingerprint-identical to from-scratch rebuilds, so flipping the
// validation mode must not change a single output byte of the tier.
func TestGoldenChurnRebuildEachEventMatchesRepair(t *testing.T) {
	cfg := churnGoldenConfig
	repairRes, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RebuildEachEvent = true
	rebuildRes, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	repair, rebuild := churnArtifact(repairRes), churnArtifact(rebuildRes)
	if repair != rebuild {
		dumpChurnGoldenDiff(t, "rebuild-mode", repair, rebuild)
		t.Fatal("churn artifact differs between repair mode and rebuild-each-event mode")
	}
}
