package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/lb"
	"repro/internal/mobility"
	"repro/internal/stats"
	"repro/internal/treedir"
)

// LoadConfig parameterizes a load/node comparison (Figs. 8–11).
type LoadConfig struct {
	// Nodes is the network size (1024 in the paper).
	Nodes int
	// Objects is m (100).
	Objects int
	// MovesPerObject performed before measuring; 0 measures right after
	// initialization (Figs. 8/10), 10 matches Figs. 9/11.
	MovesPerObject int
	// Baseline is AlgSTUN or AlgZDAT.
	Baseline string
	// Seed drives placement and movement.
	Seed int64
	// HistogramMax is the largest per-node load bucket reported.
	HistogramMax int
	// ZoneDepth is Z-DAT's quadrant depth.
	ZoneDepth int
}

func (c *LoadConfig) fill() {
	if c.Nodes <= 0 {
		c.Nodes = 1024
	}
	if c.Objects <= 0 {
		c.Objects = 100
	}
	if c.Baseline == "" {
		c.Baseline = AlgSTUN
	}
	if c.HistogramMax <= 0 {
		c.HistogramMax = 20
	}
	if c.ZoneDepth <= 0 {
		c.ZoneDepth = 2
	}
}

// LoadResult compares per-node load distributions.
type LoadResult struct {
	Config       LoadConfig
	MOT          stats.LoadStats
	Baseline     stats.LoadStats
	MOTLoad      []int
	BaselineLoad []int
}

// RunLoad reproduces the load/node comparisons: MOT with §5 load balancing
// against a baseline, measured after initialization or after a burst of
// maintenance operations. The paper's headline is the count of nodes with
// load > 10 (zero for MOT, positive for STUN and Z-DAT).
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	cfg.fill()
	g := graph.NearSquareGrid(cfg.Nodes)
	m := graph.NewMetric(g)
	m.Precompute(0)
	w, err := mobility.Generate(g, m, mobility.Config{
		Objects:        cfg.Objects,
		MovesPerObject: cfg.MovesPerObject,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	rates := w.DetectionRates(g)

	// MOT with hashed-cluster placement.
	hs, err := hier.Build(g, m, hier.Config{Seed: cfg.Seed, SpecialParentOffset: 2})
	if err != nil {
		return nil, err
	}
	mot := core.New(hs, core.Config{Placement: lb.New(hs)})
	for o, at := range w.Initial {
		if err := mot.Publish(core.ObjectID(o), at); err != nil {
			return nil, err
		}
	}
	for _, mv := range w.Moves {
		if err := mot.Move(mv.Object, mv.To); err != nil {
			return nil, err
		}
	}
	motLoad := mot.LoadByNode(g.N())

	// Baseline.
	t, tc, err := baselineTree(cfg.Baseline, g, m, rates, cfg.ZoneDepth)
	if err != nil {
		return nil, err
	}
	base, err := treedir.New(t, m, tc)
	if err != nil {
		return nil, err
	}
	for o, at := range w.Initial {
		if err := base.Publish(core.ObjectID(o), at); err != nil {
			return nil, err
		}
	}
	for _, mv := range w.Moves {
		if err := base.Move(mv.Object, mv.To); err != nil {
			return nil, err
		}
	}
	baseLoad := base.LoadByNode(g.N())

	return &LoadResult{
		Config:       cfg,
		MOT:          stats.SummarizeLoad(motLoad, cfg.HistogramMax),
		Baseline:     stats.SummarizeLoad(baseLoad, cfg.HistogramMax),
		MOTLoad:      motLoad,
		BaselineLoad: baseLoad,
	}, nil
}

// String renders the headline comparison.
func (r *LoadResult) String() string {
	return fmt.Sprintf("MOT: max=%d nodes>10=%d mean=%.2f | %s: max=%d nodes>10=%d mean=%.2f",
		r.MOT.Max, r.MOT.AboveTen, r.MOT.Mean,
		r.Config.Baseline, r.Baseline.Max, r.Baseline.AboveTen, r.Baseline.Mean)
}
