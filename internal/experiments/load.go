package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/lb"
	"repro/internal/mobility"
	"repro/internal/runtime/track"
	"repro/internal/stats"
	"repro/internal/treedir"
)

// LoadConfig parameterizes a load/node comparison (Figs. 8–11).
type LoadConfig struct {
	// Nodes is the network size (1024 in the paper).
	Nodes int
	// Objects is m (100).
	Objects int
	// MovesPerObject performed before measuring; 0 measures right after
	// initialization (Figs. 8/10), 10 matches Figs. 9/11.
	MovesPerObject int
	// Baseline is AlgSTUN or AlgZDAT.
	Baseline string
	// Seed drives placement and movement.
	Seed int64
	// HistogramMax is the largest per-node load bucket reported.
	HistogramMax int
	// ZoneDepth is Z-DAT's quadrant depth.
	ZoneDepth int
	// Workers bounds the harness's concurrency. The MOT and baseline
	// replays are independent (they share only the read-only workload),
	// so Workers>1 runs them on separate goroutines; the result is
	// identical either way. Zero or negative means runtime.GOMAXPROCS.
	Workers int
	// DisableSubstrateCache rebuilds the grid, metric, and hierarchy for
	// this run instead of sharing the per-topology substrate cache.
	DisableSubstrateCache bool
}

func (c *LoadConfig) fill() {
	fillInt(&c.Nodes, DefaultLoadNodes)
	fillInt(&c.Objects, DefaultObjects)
	if c.Baseline == "" {
		c.Baseline = AlgSTUN
	}
	fillInt(&c.HistogramMax, DefaultHistogramMax)
	fillInt(&c.ZoneDepth, DefaultZoneDepth)
	fillWorkers(&c.Workers)
}

// LoadResult compares per-node load distributions.
type LoadResult struct {
	Config       LoadConfig
	MOT          stats.LoadStats
	Baseline     stats.LoadStats
	MOTLoad      []int
	BaselineLoad []int
}

// RunLoad reproduces the load/node comparisons: MOT with §5 load balancing
// against a baseline, measured after initialization or after a burst of
// maintenance operations. The paper's headline is the count of nodes with
// load > 10 (zero for MOT, positive for STUN and Z-DAT).
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	cfg.fill()
	g, m := gridSubstrate(cfg.Nodes, cfg.DisableSubstrateCache)
	w, err := mobility.Generate(g, m, mobility.Config{
		Objects:        cfg.Objects,
		MovesPerObject: cfg.MovesPerObject,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	rates := w.DetectionRates(g)

	// The two sides only read g, m, w, and rates, so with Workers>1 they
	// run concurrently; each side's load vector depends on nothing but
	// its own replay, so the result is the same either way.
	var motLoad, baseLoad []int
	motSide := func() error {
		hs, err := hierSubstrate(cfg.Nodes, g, m, hier.Config{Seed: cfg.Seed, SpecialParentOffset: 2}, cfg.DisableSubstrateCache)
		if err != nil {
			return err
		}
		mot := core.New(hs, core.Config{Placement: lb.New(hs)})
		for o, at := range w.Initial {
			if err := mot.Publish(core.ObjectID(o), at); err != nil {
				return err
			}
		}
		for _, mv := range w.Moves {
			if err := mot.Move(mv.Object, mv.To); err != nil {
				return err
			}
		}
		motLoad = mot.LoadByNode(g.N())
		return nil
	}
	baseSide := func() error {
		t, tc, err := baselineTree(cfg.Baseline, g, m, rates, cfg.ZoneDepth)
		if err != nil {
			return err
		}
		base, err := treedir.New(t, m, tc)
		if err != nil {
			return err
		}
		for o, at := range w.Initial {
			if err := base.Publish(core.ObjectID(o), at); err != nil {
				return err
			}
		}
		for _, mv := range w.Moves {
			if err := base.Move(mv.Object, mv.To); err != nil {
				return err
			}
		}
		baseLoad = base.LoadByNode(g.N())
		return nil
	}
	if cfg.Workers > 1 {
		var sides track.Group
		var motErr, baseErr error
		sides.Go(func() { motErr = motSide() })
		sides.Go(func() { baseErr = baseSide() })
		sides.Wait()
		if motErr != nil {
			return nil, motErr
		}
		if baseErr != nil {
			return nil, baseErr
		}
	} else {
		if err := motSide(); err != nil {
			return nil, err
		}
		if err := baseSide(); err != nil {
			return nil, err
		}
	}

	return &LoadResult{
		Config:       cfg,
		MOT:          stats.SummarizeLoad(motLoad, cfg.HistogramMax),
		Baseline:     stats.SummarizeLoad(baseLoad, cfg.HistogramMax),
		MOTLoad:      motLoad,
		BaselineLoad: baseLoad,
	}, nil
}

// String renders the headline comparison.
func (r *LoadResult) String() string {
	return fmt.Sprintf("MOT: max=%d nodes>10=%d mean=%.2f | %s: max=%d nodes>10=%d mean=%.2f",
		r.MOT.Max, r.MOT.AboveTen, r.MOT.Mean,
		r.Config.Baseline, r.Baseline.Max, r.Baseline.AboveTen, r.Baseline.Mean)
}
