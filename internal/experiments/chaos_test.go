package experiments

import (
	"bytes"
	"fmt"
	"testing"
)

func chaosConfig(workers int) ChaosConfig {
	return ChaosConfig{Workers: workers}
}

// renderChaos concatenates every schedule's full fault traces and summary
// line — the byte representation the replay contract pins.
func renderChaos(res *ChaosResult) []byte {
	var buf bytes.Buffer
	PrintChaos(&buf, res)
	for _, s := range res.Schedules {
		fmt.Fprintf(&buf, "--- schedule %d sim\n%s--- schedule %d runtime\n%s", s.Index, s.SimTrace, s.Index, s.RunTrace)
		fmt.Fprintf(&buf, "meter %+v\n", s.SimMeter)
	}
	return buf.Bytes()
}

// Golden chaos replay contract (mirrors TestGoldenParallelMatchesSequential):
// the same (seed, rate) settings must yield byte-identical fault traces and
// final meters for Workers=1 and Workers=4, and across reruns.
func TestGoldenChaosReplay(t *testing.T) {
	seq, err := RunChaos(chaosConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunChaos(chaosConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderChaos(seq), renderChaos(par)
	if !bytes.Equal(a, b) {
		t.Fatalf("Workers=1 and Workers=4 chaos runs diverged:\n--- sequential\n%s--- parallel\n%s", a, b)
	}
	par2, err := RunChaos(chaosConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, renderChaos(par2)) {
		t.Fatal("two Workers=4 chaos runs diverged")
	}
}

// A different BaseSeed must select a different (but reproducible) fault
// schedule — the seed is a real input, not decoration.
func TestGoldenChaosSeedSelectsSchedule(t *testing.T) {
	a := chaosConfig(2)
	b := chaosConfig(2)
	b.BaseSeed = 1234
	ra, err := RunChaos(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunChaos(b)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(renderChaos(ra), renderChaos(rb)) {
		t.Fatal("BaseSeed=0 and BaseSeed=1234 produced identical chaos traces")
	}
}

// The default chaos tier must actually exercise the recovery machinery:
// some schedule loses operations and repairs trails, and every schedule
// still ends consistent (RunChaos fails on any invariant violation).
func TestChaosTierExercisesRecovery(t *testing.T) {
	res, err := RunChaos(chaosConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	lost, repairs, faults := 0, 0, 0
	for _, s := range res.Schedules {
		lost += s.SimLost
		repairs += s.SimMeter.RecoveryOps
		faults += countLines(s.SimTrace) + countLines(s.RunTrace)
		if s.RunCost <= 0 {
			t.Fatalf("schedule %d: runtime accrued no cost", s.Index)
		}
	}
	if faults == 0 {
		t.Fatal("chaos tier injected no faults")
	}
	if lost == 0 || repairs == 0 {
		t.Fatalf("chaos tier never exercised recovery (lost=%d repairs=%d); harshen the defaults", lost, repairs)
	}
}
