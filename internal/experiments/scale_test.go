package experiments

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// renderScale prints a scale result the way cmd/motsim does.
func renderScale(res *ScaleResult) []byte {
	var buf bytes.Buffer
	PrintScale(&buf, res)
	return buf.Bytes()
}

// TestScaleOracleNoFlatTable is the acceptance smoke for the scale tier
// (`make scale`): a full 10 000-node cost-ratio cell — oracle build,
// hierarchy build, workload replay with sampled exact re-metering —
// completes without EVER materializing an n×n flat distance table
// (graph.FrozenTableCount is the process-wide freeze counter; at 10k
// nodes one table would be 800 MB, at 100k it would be 80 GB).
func TestScaleOracleNoFlatTable(t *testing.T) {
	before := graph.FrozenTableCount()
	res, err := RunScale(ScaleConfig{Sizes: []int{10000}})
	if err != nil {
		t.Fatal(err)
	}
	if delta := graph.FrozenTableCount() - before; delta != 0 {
		t.Fatalf("scale run froze %d flat n×n tables; oracle mode must freeze none", delta)
	}
	if !res.OracleMode[0] {
		t.Fatal("10k cell did not run in oracle mode")
	}
	if res.Stretch[0] < 1 {
		t.Fatalf("stretch bound %v < 1", res.Stretch[0])
	}
	if res.Maintenance[0] <= 0 || res.Query[0] <= 0 {
		t.Fatalf("degenerate metered ratios: maint=%v query=%v", res.Maintenance[0], res.Query[0])
	}
	if res.SampledOps[0] <= 0 {
		t.Fatal("sampled exact re-metering recorded no operations")
	}
	if res.SampledMaint[0] <= 0 || res.SampledQuery[0] <= 0 {
		t.Fatalf("degenerate sampled exact ratios: maint=%v query=%v", res.SampledMaint[0], res.SampledQuery[0])
	}
	// The audited overshoot must sit inside [1, stretch]: estimates never
	// undershoot exact distances and never exceed the published bound.
	const eps = 1e-9
	if o := res.Overestimate[0]; o < 1-eps || o > res.Stretch[0]+eps {
		t.Fatalf("sampled est/exact factor %v outside [1, stretch=%v]", o, res.Stretch[0])
	}
}

// TestScaleOracleSampledAudit runs a mid-size cell in oracle mode and
// checks the sampled exact audit against a ForceExact run of the same
// cell: the exact run's sampled Est and Exact fields must coincide, and
// the oracle run's audited overshoot must respect the stretch bound.
func TestScaleOracleSampledAudit(t *testing.T) {
	cfg := ScaleConfig{Sizes: []int{2048}, Objects: 8, MovesPerObject: 30, Queries: 50}
	res, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OracleMode[0] {
		t.Fatal("2048-node cell should run in oracle mode (OracleMinN default)")
	}
	const eps = 1e-9
	if o := res.Overestimate[0]; o < 1-eps || o > res.Stretch[0]+eps {
		t.Fatalf("est/exact factor %v outside [1, stretch=%v]", o, res.Stretch[0])
	}

	cfg.ForceExact = true
	exact, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exact.OracleMode[0] {
		t.Fatal("ForceExact cell reported oracle mode")
	}
	if exact.Stretch[0] != 1 {
		t.Fatalf("exact substrate stretch %v, want 1", exact.Stretch[0])
	}
	// On the exact metric the shadowed estimates ARE the exact values.
	if o := exact.Overestimate[0]; o != 1 {
		t.Fatalf("exact-mode est/exact factor %v, want exactly 1", o)
	}
}

// TestGoldenScaleOracleFallback pins the fallback contract: below
// OracleMinN an oracle-mode sweep takes the exact substrate path, so its
// rendered output is byte-identical to a ForceExact sweep — and to
// itself at any worker count (this name rides the golden race tier).
func TestGoldenScaleOracleFallback(t *testing.T) {
	base := ScaleConfig{
		Sizes:          []int{36, 64, 121},
		Objects:        6,
		MovesPerObject: 25,
		Queries:        20,
		Seeds:          3,
		Workers:        1,
	}
	oracle, err := RunScale(base)
	if err != nil {
		t.Fatal(err)
	}
	for i, mode := range oracle.OracleMode {
		if mode {
			t.Fatalf("size %d ran in oracle mode below OracleMinN", base.Sizes[i])
		}
	}

	exactCfg := base
	exactCfg.ForceExact = true
	exact, err := RunScale(exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderScale(oracle), renderScale(exact)
	if !bytes.Equal(a, b) {
		t.Fatalf("small-n oracle mode is not byte-identical to exact mode:\n--- oracle\n%s--- exact\n%s", a, b)
	}

	parCfg := base
	parCfg.Workers = 4
	par, err := RunScale(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, renderScale(par)) {
		t.Fatalf("Workers=1 and Workers=4 rendered different scale figures:\n--- w1\n%s--- w4\n%s", a, renderScale(par))
	}
}

// TestScaleOracleDefaults pins the config defaulting: an empty config
// becomes the one-cell 10k sweep with sampling on, and a negative
// ExactSampleEvery disables sampling.
func TestScaleOracleDefaults(t *testing.T) {
	cfg := ScaleConfig{}
	cfg.fill()
	if len(cfg.Sizes) != 1 || cfg.Sizes[0] != DefaultScaleNodes {
		t.Fatalf("default sizes %v", cfg.Sizes)
	}
	if cfg.ExactSampleEvery != DefaultExactSampleEvery {
		t.Fatalf("default sample rate %d", cfg.ExactSampleEvery)
	}
	if cfg.OracleMinN != DefaultOracleMinN {
		t.Fatalf("default OracleMinN %d", cfg.OracleMinN)
	}

	off := ScaleConfig{Sizes: []int{64}, Objects: 2, MovesPerObject: 5, Queries: 5, ExactSampleEvery: -1}
	res, err := RunScale(off)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampledOps[0] != 0 {
		t.Fatalf("sampling disabled but %v ops sampled", res.SampledOps[0])
	}
}
