package experiments

import (
	"testing"

	"repro/internal/obs/live"
)

// TestObsLiveTelemetryAdditive pins the two-layer contract at the sweep
// level: turning LiveTelemetry on attaches a wall-clock recorder to the
// runtime run only, and every deterministic artifact stays byte-identical
// to the live-off run on the same config.
func TestObsLiveTelemetryAdditive(t *testing.T) {
	cfg := ObsConfig{Size: 64, Objects: 6, MovesPerObject: 20, Queries: 15, BaseSeed: 7}

	offRes, err := RunObs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LiveTelemetry = true
	onRes, err := RunObs(cfg)
	if err != nil {
		t.Fatal(err)
	}

	offTrace, offMetrics := obsArtifacts(t, offRes)
	onTrace, onMetrics := obsArtifacts(t, onRes)
	if offTrace != onTrace {
		dumpGoldenDiff(t, "live-trace", offTrace, onTrace)
		t.Error("trace JSONL differs between live-off and live-on")
	}
	if offMetrics != onMetrics {
		dumpGoldenDiff(t, "live-metrics", offMetrics, onMetrics)
		t.Error("metrics CSV differs between live-off and live-on")
	}

	if offRes.HasLive() {
		t.Error("live-off sweep reports HasLive")
	}
	if !onRes.HasLive() {
		t.Fatal("live-on sweep has no live recorder")
	}
	// Only the runtime run carries a recorder; the core and sim runs are
	// logically clocked and must stay live-free.
	for _, name := range ObsRuns {
		lrec := onRes.LiveFor(name)
		if name == ObsRunRuntime {
			if lrec == nil {
				t.Fatalf("runtime run missing its live recorder")
			}
			continue
		}
		if lrec != nil {
			t.Errorf("run %s unexpectedly carries a live recorder", name)
		}
	}

	// The recorder saw every runtime op: 6 publishes + 6*20 moves +
	// 15 queries, each with a positive wall-clock duration, and the
	// reservoir stayed within its configured bound.
	snap := onRes.LiveFor(ObsRunRuntime).Snapshot()
	wantOps := int64(6 + 6*20 + 15)
	if snap.Total.Count != wantOps {
		t.Errorf("live op count = %d, want %d", snap.Total.Count, wantOps)
	}
	if snap.Total.Errors != 0 {
		t.Errorf("live error count = %d, want 0", snap.Total.Errors)
	}
	if snap.Total.MaxNs <= 0 {
		t.Errorf("live max latency = %dns, want > 0", snap.Total.MaxNs)
	}
	if snap.SamplesSeen != wantOps {
		t.Errorf("reservoir saw %d, want %d", snap.SamplesSeen, wantOps)
	}
	if snap.SamplesKept > live.DefaultSampleSize {
		t.Errorf("reservoir kept %d samples, cap is %d", snap.SamplesKept, live.DefaultSampleSize)
	}
}
