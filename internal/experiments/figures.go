package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Figure identifies one of the paper's evaluation figures and knows how to
// regenerate and print it.
type Figure struct {
	ID      int
	Title   string
	Kind    string // "maintenance", "query", or "load"
	Cost    CostRatioConfig
	Load    LoadConfig
	IsQuery bool
}

// Figures maps figure numbers (4–15) to their harness configurations,
// exactly as indexed in DESIGN.md. Scale (0,1] shrinks the workload for
// quick runs; 1 reproduces the paper's full setting.
func Figures(scale float64) map[int]Figure {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	objs100 := scaleInt(DefaultObjects, scale, 4)
	objs1000 := scaleInt(10*DefaultObjects, scale, 8)
	moves := scaleInt(DefaultMovesPerObject, scale, 20)
	queries100 := scaleInt(100, scale, 20)
	queries1000 := scaleInt(1000, scale, 20)
	seeds := scaleInt(DefaultSeeds, scale, 1)
	sizes := append([]int(nil), DefaultSizes...)
	if scale < 1 {
		sizes = []int{10, 36, 121, 256}
	}
	loadNodes := scaleInt(DefaultLoadNodes, scale, 100)

	cost := func(objects, queries int, concurrent bool) CostRatioConfig {
		return CostRatioConfig{
			Sizes:          sizes,
			Objects:        objects,
			MovesPerObject: moves,
			Queries:        queries,
			Seeds:          seeds,
			Concurrent:     concurrent,
			LoadBalance:    true,
		}
	}
	load := func(movesPerObject int, baseline string) LoadConfig {
		return LoadConfig{Nodes: loadNodes, Objects: objs100, MovesPerObject: movesPerObject, Baseline: baseline}
	}

	return map[int]Figure{
		4:  {ID: 4, Title: "maintenance cost ratio, one-by-one, 100 objects", Kind: "maintenance", Cost: cost(objs100, queries100, false)},
		5:  {ID: 5, Title: "maintenance cost ratio, one-by-one, 1000 objects", Kind: "maintenance", Cost: cost(objs1000, queries1000, false)},
		6:  {ID: 6, Title: "query cost ratio, one-by-one, 100 objects", Kind: "query", Cost: cost(objs100, queries100, false), IsQuery: true},
		7:  {ID: 7, Title: "query cost ratio, one-by-one, 1000 objects", Kind: "query", Cost: cost(objs1000, queries1000, false), IsQuery: true},
		8:  {ID: 8, Title: "load/node, MOT vs STUN, after initialization", Kind: "load", Load: load(0, AlgSTUN)},
		9:  {ID: 9, Title: "load/node, MOT vs STUN, after 10 moves/object", Kind: "load", Load: load(10, AlgSTUN)},
		10: {ID: 10, Title: "load/node, MOT vs Z-DAT, after initialization", Kind: "load", Load: load(0, AlgZDAT)},
		11: {ID: 11, Title: "load/node, MOT vs Z-DAT, after 10 moves/object", Kind: "load", Load: load(10, AlgZDAT)},
		12: {ID: 12, Title: "maintenance cost ratio, concurrent, 100 objects", Kind: "maintenance", Cost: cost(objs100, queries100, true)},
		13: {ID: 13, Title: "maintenance cost ratio, concurrent, 1000 objects", Kind: "maintenance", Cost: cost(objs1000, queries1000, true)},
		14: {ID: 14, Title: "query cost ratio, concurrent, 100 objects", Kind: "query", Cost: cost(objs100, queries100, true), IsQuery: true},
		15: {ID: 15, Title: "query cost ratio, concurrent, 1000 objects", Kind: "query", Cost: cost(objs1000, queries1000, true), IsQuery: true},
	}
}

func scaleInt(full int, scale float64, min int) int {
	v := int(float64(full) * scale)
	if v < min {
		v = min
	}
	return v
}

// WithWorkers returns a copy of f whose harness runs its sweep cells on
// an n-goroutine worker pool (n <= 0 means one per CPU). The rendered
// figure is byte-identical for every n; only wall-clock time changes.
func (f Figure) WithWorkers(n int) Figure {
	f.Cost.Workers = n
	f.Load.Workers = n
	return f
}

// FigureIDs returns the available figure numbers sorted.
func FigureIDs(figs map[int]Figure) []int {
	ids := make([]int, 0, len(figs))
	for id := range figs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Run executes a figure's harness and prints its series to w as text.
func (f Figure) Run(w io.Writer) error {
	return f.RunWith(w, func(res *CostRatioResult) error {
		PrintCostRatio(w, res, f.IsQuery)
		return nil
	}, func(res *LoadResult) error {
		PrintLoad(w, res)
		return nil
	})
}

// RunWith executes the figure's harness and hands the structured result to
// the matching renderer (cost-ratio sweeps or load comparisons).
func (f Figure) RunWith(w io.Writer, cost func(*CostRatioResult) error, load func(*LoadResult) error) error {
	fmt.Fprintf(w, "== Figure %d: %s ==\n", f.ID, f.Title)
	switch f.Kind {
	case "maintenance", "query":
		res, err := RunCostRatio(f.Cost)
		if err != nil {
			return err
		}
		return cost(res)
	case "load":
		res, err := RunLoad(f.Load)
		if err != nil {
			return err
		}
		return load(res)
	default:
		return fmt.Errorf("experiments: unknown figure kind %q", f.Kind)
	}
}

// PrintCostRatio renders a cost-ratio sweep as the figure's series: one row
// per network size, one column per algorithm.
func PrintCostRatio(w io.Writer, res *CostRatioResult, query bool) {
	fmt.Fprintf(w, "%-8s", "nodes")
	for _, a := range res.Algorithms {
		fmt.Fprintf(w, "%18s", a)
	}
	fmt.Fprintln(w)
	table := res.MaintenanceMean
	if query {
		table = res.QueryMean
	}
	for si, n := range res.Sizes {
		fmt.Fprintf(w, "%-8d", n)
		for a := range res.Algorithms {
			fmt.Fprintf(w, "%18.3f", table[a][si])
		}
		fmt.Fprintln(w)
	}
}

// PrintLoad renders a load comparison: headline counts plus the histogram
// series of both algorithms.
func PrintLoad(w io.Writer, res *LoadResult) {
	fmt.Fprintf(w, "%s\n", res.String())
	fmt.Fprintf(w, "%-8s%12s%12s\n", "load", "MOT nodes", res.Config.Baseline)
	for b := range res.MOT.Histogram {
		label := fmt.Sprintf("%d", b)
		if b == len(res.MOT.Histogram)-1 {
			label = fmt.Sprintf(">=%d", b)
		}
		fmt.Fprintf(w, "%-8s%12d%12d\n", label, res.MOT.Histogram[b], res.Baseline.Histogram[b])
	}
}
