package experiments

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/mobility"
	"repro/internal/sim"
)

// runConcurrentAll drives the workload through the discrete-event
// simulator for the four algorithms (Figs. 12–15 setting: bursts of up to
// 10 concurrent operations per object, queries overlapping maintenance).
func runConcurrentAll(cfg CostRatioConfig, n int, g *graph.Graph, m *graph.Metric, w *mobility.Workload, rates map[mobility.EdgeKey]float64, seed int64) ([]core.CostMeter, error) {
	meters := make([]core.CostMeter, len(Algorithms))
	diam := m.Diameter()
	dcfg := sim.DriverConfig{Concurrency: cfg.Concurrency, Diameter: diam, Seed: seed}

	// MOT on the event simulator. The concurrent simulator requires the
	// single-parent overlay (Algorithm 1's simple form).
	hs, err := hierSubstrate(n, g, m, hier.Config{Seed: seed, SpecialParentOffset: 2}, cfg.DisableSubstrateCache)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(0)
	ms, err := sim.NewMOT(hs, eng, sim.Config{PeriodSync: true})
	if err != nil {
		return nil, err
	}
	if _, err := sim.Schedule(ms, w, dcfg); err != nil {
		return nil, err
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	if err := ms.CheckInvariants(); err != nil {
		return nil, err
	}
	meters[0] = ms.Meter()

	// Tree baselines on the same schedule.
	for ai, alg := range Algorithms[1:] {
		t, tc, err := baselineTree(alg, g, m, rates, cfg.ZoneDepth)
		if err != nil {
			return nil, err
		}
		eng := sim.NewEngine(0)
		ts, err := sim.NewTree(t, m, eng, sim.Config{}, tc)
		if err != nil {
			return nil, err
		}
		if _, err := sim.Schedule(ts, w, dcfg); err != nil {
			return nil, err
		}
		if err := eng.Run(); err != nil {
			return nil, err
		}
		if err := ts.CheckInvariants(); err != nil {
			return nil, err
		}
		meters[1+ai] = ts.Meter()
	}
	return meters, nil
}
