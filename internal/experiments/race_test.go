package experiments

import "testing"

// Race-detector smoke for the parallel sweep harness: enough cells to
// keep several workers busy at once, both execution modes, plus a
// parallel load run. `make check` runs this under `go test -race`; any
// state shared between sweep cells shows up here.
func TestRaceParallelSweep(t *testing.T) {
	res, err := RunCostRatio(CostRatioConfig{
		Sizes:          []int{10, 16, 25, 36},
		Objects:        5,
		MovesPerObject: 20,
		Queries:        10,
		Seeds:          3,
		LoadBalance:    true,
		Workers:        6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for a := range res.Algorithms {
		for si := range res.Sizes {
			if res.MaintenanceMean[a][si] <= 0 {
				t.Fatalf("%s size %d: empty cell merged", res.Algorithms[a], res.Sizes[si])
			}
		}
	}
}

func TestRaceParallelSweepConcurrentMode(t *testing.T) {
	_, err := RunCostRatio(CostRatioConfig{
		Sizes:          []int{16, 25},
		Objects:        4,
		MovesPerObject: 15,
		Queries:        8,
		Seeds:          2,
		Concurrent:     true,
		Workers:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRaceParallelLoad(t *testing.T) {
	res, err := RunLoad(LoadConfig{Nodes: 64, Objects: 15, MovesPerObject: 5, Workers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MOT.Total == 0 || res.Baseline.Total == 0 {
		t.Fatalf("empty load totals: %+v", res)
	}
}

// A failing cell must surface the error of the earliest (size, seed) cell
// deterministically, not whichever worker lost the race.
func TestParallelSweepErrorIsDeterministic(t *testing.T) {
	cfg := CostRatioConfig{
		// Size 1 has a single node with no neighbors: workload generation
		// fails in every seed cell of that size.
		Sizes:          []int{1, 16},
		Objects:        3,
		MovesPerObject: 5,
		Queries:        3,
		Seeds:          2,
		Workers:        4,
	}
	var first string
	for i := 0; i < 4; i++ {
		_, err := RunCostRatio(cfg)
		if err == nil {
			t.Fatal("sweep over a neighborless grid succeeded")
		}
		if i == 0 {
			first = err.Error()
			continue
		}
		if err.Error() != first {
			t.Fatalf("error not deterministic: %q vs %q", err.Error(), first)
		}
	}
}
