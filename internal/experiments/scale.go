package experiments

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/lb"
	"repro/internal/mobility"
	"repro/internal/runtime/track"
)

// ScaleConfig parameterizes the large-network cost-ratio sweep: MOT-only
// cells over near-square grids at 10k+ nodes, running on the
// sub-quadratic distance oracle instead of the exact metric. The
// traffic-aware baselines (STUN, Z-DAT) are excluded by design — their
// medoid and quadrant constructions are inherently quadratic, which is
// exactly the wall this harness exists to scale past.
type ScaleConfig struct {
	// Sizes are target node counts; each becomes a near-square grid.
	// Empty defaults to one 10 000-node cell.
	Sizes []int
	// Objects, MovesPerObject, Queries size the replayed workload; the
	// defaults are deliberately small (the point of a scale cell is the
	// build and per-operation cost at large n, not workload volume).
	Objects        int
	MovesPerObject int
	Queries        int
	// QueryRadius localizes queries exactly as in CostRatioConfig.
	QueryRadius float64
	// Seeds is the number of independent repetitions averaged.
	Seeds int
	// BaseSeed salts every cell's PRNG stream (see CostRatioConfig).
	BaseSeed int64
	// Workers bounds the cell worker pool; results are byte-identical for
	// every value.
	Workers int
	// OracleMinN is the fallback threshold: cells with n below it run on
	// the exact frozen metric — the regime where exactness is cheap —
	// making small-n scale sweeps byte-identical to exact mode (the
	// golden fallback contract). Zero defaults to 2048.
	OracleMinN int
	// ForceExact runs every size on the exact metric regardless of
	// OracleMinN (golden tests compare this against oracle mode).
	ForceExact bool
	// ExactSampleEvery enables sampled exact re-metering in the MOT
	// directory (core.Config.ExactSampleEvery): zero defaults to 16,
	// negative disables sampling.
	ExactSampleEvery int
	// LoadBalance enables the §5 hashed-cluster placement.
	LoadBalance bool
	// UseParentSets enables §3.1 parent-set probing.
	UseParentSets bool
	// DisableSubstrateCache rebuilds per-cell substrates (see
	// CostRatioConfig; output is byte-identical either way).
	DisableSubstrateCache bool
}

func (c *ScaleConfig) fill() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{DefaultScaleNodes}
	}
	fillInt(&c.Objects, DefaultScaleObjects)
	fillInt(&c.MovesPerObject, DefaultScaleMoves)
	fillInt(&c.Queries, DefaultScaleQueries)
	fillInt(&c.Seeds, 1)
	fillInt(&c.OracleMinN, DefaultOracleMinN)
	if c.ExactSampleEvery == 0 {
		c.ExactSampleEvery = DefaultExactSampleEvery
	}
	fillWorkers(&c.Workers)
}

// ScaleResult holds the per-size outcome of a scale sweep, averaged over
// seeds. Maintenance/Query are the metered (oracle-estimated in oracle
// mode) aggregate ratios; SampledMaint/SampledQuery are the exact ratios
// over the re-measured operation sample, and Overestimate is the factor
// by which the oracle's metered distance terms exceeded their exact
// re-measurements (1 = exact, bounded by Stretch).
type ScaleResult struct {
	Sizes      []int
	OracleMode []bool    // per size: ran on the sketch oracle
	Stretch    []float64 // oracle stretch bound (1 in exact mode)

	Maintenance  []float64
	Query        []float64
	SampledMaint []float64
	SampledQuery []float64
	Overestimate []float64
	SampledOps   []float64 // re-measured operations per cell
}

type scaleCell struct {
	si      int
	seedIdx int
}

// RunScale executes the scale sweep. Cells run on cfg.Workers goroutines
// and merge in (size, seedIndex) order, so output is byte-identical for
// every worker count; in oracle mode no cell ever materializes an n×n
// distance table (pinned by TestScaleOracleNoFlatTable).
func RunScale(cfg ScaleConfig) (*ScaleResult, error) {
	cfg.fill()
	res := &ScaleResult{
		Sizes:        cfg.Sizes,
		OracleMode:   make([]bool, len(cfg.Sizes)),
		Stretch:      make([]float64, len(cfg.Sizes)),
		Maintenance:  make([]float64, len(cfg.Sizes)),
		Query:        make([]float64, len(cfg.Sizes)),
		SampledMaint: make([]float64, len(cfg.Sizes)),
		SampledQuery: make([]float64, len(cfg.Sizes)),
		Overestimate: make([]float64, len(cfg.Sizes)),
		SampledOps:   make([]float64, len(cfg.Sizes)),
	}

	cells := make([]scaleCell, 0, len(cfg.Sizes)*cfg.Seeds)
	for si := range cfg.Sizes {
		for seed := 0; seed < cfg.Seeds; seed++ {
			cells = append(cells, scaleCell{si: si, seedIdx: seed})
		}
	}

	type cellOut struct {
		meter   core.CostMeter
		stretch float64
		oracle  bool
	}
	outs := make([]cellOut, len(cells))
	errs := make([]error, len(cells))
	workers := cfg.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	var failed atomic.Bool
	jobs := make(chan int)
	var pool track.Group
	for w := 0; w < workers; w++ {
		pool.Go(func() {
			for ci := range jobs {
				if failed.Load() {
					continue
				}
				c := cells[ci]
				n := cfg.Sizes[c.si]
				meter, stretch, oracle, err := runScaleCell(cfg, n, mobility.StreamSeed(cfg.BaseSeed, n, c.seedIdx))
				if err != nil {
					errs[ci] = fmt.Errorf("experiments: scale size %d seed %d: %w", n, c.seedIdx, err)
					failed.Store(true)
					continue
				}
				outs[ci] = cellOut{meter: meter, stretch: stretch, oracle: oracle}
			}
		})
	}
	for ci := range cells {
		jobs <- ci
	}
	close(jobs)
	pool.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Deterministic merge in (size, seedIndex) order.
	for ci, c := range cells {
		o := outs[ci]
		res.OracleMode[c.si] = o.oracle
		res.Stretch[c.si] += o.stretch / float64(cfg.Seeds)
		res.Maintenance[c.si] += o.meter.MaintRatio() / float64(cfg.Seeds)
		res.Query[c.si] += o.meter.QueryRatio() / float64(cfg.Seeds)
		res.SampledMaint[c.si] += o.meter.SampledMaintRatio() / float64(cfg.Seeds)
		res.SampledQuery[c.si] += o.meter.SampledQueryRatio() / float64(cfg.Seeds)
		res.Overestimate[c.si] += o.meter.SampledOverestimate() / float64(cfg.Seeds)
		res.SampledOps[c.si] += float64(o.meter.SampledMaintOps+o.meter.SampledQueryOps) / float64(cfg.Seeds)
	}
	return res, nil
}

// scaleSubstrate resolves one scale cell's grid and distance oracle:
// the sketch oracle at or above OracleMinN (unless ForceExact), the
// exact frozen metric below it — the documented fallback contract.
func scaleSubstrate(cfg ScaleConfig, n int) (*graph.Graph, graph.DistanceOracle, bool) {
	oracleMode := !cfg.ForceExact && n >= cfg.OracleMinN
	if !oracleMode {
		g, m := gridSubstrate(n, cfg.DisableSubstrateCache)
		return g, m, false
	}
	if cfg.DisableSubstrateCache {
		g := graph.NearSquareGrid(n)
		return g, graph.NewOracle(g, graph.OracleConfig{}), true
	}
	g, o := defaultSubstrates.GridOracle(n)
	return g, o, true
}

// runScaleCell runs MOT on one grid/seed and returns its meter, the
// substrate's stretch bound, and whether the cell ran in oracle mode.
func runScaleCell(cfg ScaleConfig, n int, seed int64) (core.CostMeter, float64, bool, error) {
	g, dm, oracleMode := scaleSubstrate(cfg, n)
	w, err := mobility.Generate(g, dm, mobility.Config{
		Objects:        cfg.Objects,
		MovesPerObject: cfg.MovesPerObject,
		Queries:        cfg.Queries,
		QueryRadius:    cfg.QueryRadius,
		Seed:           seed,
	})
	if err != nil {
		return core.CostMeter{}, 0, false, err
	}

	// SpecialParentOffset is explicit so Build never needs the doubling
	// estimate (whose ball sweep is the one query pattern that is not
	// output-sensitive at 10k+ nodes).
	hcfg := hier.Config{Seed: seed, SpecialParentOffset: 2, UseParentSets: cfg.UseParentSets}
	var hs *hier.Hierarchy
	switch {
	case cfg.DisableSubstrateCache:
		hs, err = hier.Build(g, dm, hcfg)
	case oracleMode:
		hs, err = defaultSubstrates.GridOracleHierarchy(n, hcfg)
	default:
		hs, err = defaultSubstrates.GridHierarchy(n, hcfg)
	}
	if err != nil {
		return core.CostMeter{}, 0, false, err
	}

	dcfg := core.Config{ExactSampleSeed: seed}
	if cfg.ExactSampleEvery > 0 {
		dcfg.ExactSampleEvery = cfg.ExactSampleEvery
	}
	if cfg.LoadBalance {
		dcfg.Placement = lb.New(hs)
	}
	dir := core.New(hs, dcfg)
	for o, at := range w.Initial {
		if err := dir.Publish(core.ObjectID(o), at); err != nil {
			return core.CostMeter{}, 0, false, err
		}
	}
	for _, mv := range w.Moves {
		if err := dir.Move(mv.Object, mv.To); err != nil {
			return core.CostMeter{}, 0, false, err
		}
	}
	for _, q := range w.Queries {
		if _, _, err := dir.Query(q.From, q.Object); err != nil {
			return core.CostMeter{}, 0, false, err
		}
	}
	return dir.Meter(), dm.Stretch(), oracleMode, nil
}

// PrintScale renders a scale sweep: per size, the substrate mode and
// stretch bound, the metered ratios, and the sampled exact audit.
func PrintScale(w io.Writer, res *ScaleResult) {
	fmt.Fprintf(w, "MOT scale sweep (oracle substrate)\n")
	fmt.Fprintf(w, "%8s %-7s %8s %8s %8s %12s %12s %10s %10s\n",
		"nodes", "mode", "stretch", "maint", "query", "maint(exact)", "query(exact)", "est/exact", "sampled")
	for i, n := range res.Sizes {
		mode := "exact"
		if res.OracleMode[i] {
			mode = "oracle"
		}
		fmt.Fprintf(w, "%8d %-7s %8.3f %8.3f %8.3f %12.3f %12.3f %10.4f %10.1f\n",
			n, mode, res.Stretch[i], res.Maintenance[i], res.Query[i],
			res.SampledMaint[i], res.SampledQuery[i], res.Overestimate[i], res.SampledOps[i])
	}
}
