package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/debruijn"
	"repro/internal/dynamics"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/mobility"
	"repro/internal/obs/live"
	motruntime "repro/internal/runtime"
	"repro/internal/runtime/track"
)

// ChurnConfig parameterizes the sustained-churn tier: seeded fail/recover
// schedules interleaved with tracking operations, replayed against the
// incremental §7 repair engine, a rebuild-from-scratch baseline, a
// fault-free steady-state control, the §7 de Bruijn relabeling, and
// (unless disabled) the goroutine runtime with explicit crashes. Every
// schedule is a pure function of (BaseSeed, Size, schedule index), so the
// produced cost traces are byte-identical across runs and worker counts.
type ChurnConfig struct {
	// BaseSeed salts every schedule's stream; schedule i runs on
	// mobility.StreamSeed(BaseSeed, Size, i).
	BaseSeed int64
	// Size is the target sensor count (a near-square grid).
	Size int
	// Objects is the tracked population.
	Objects int
	// ChurnRate is the fraction of sensors failed per epoch (the paper's
	// sustained-churn regime is 1–10%); values above 0.10 are clamped.
	// Each epoch fails max(1, ChurnRate·Size) distinct sensors.
	ChurnRate float64
	// Epochs is the number of fail → operate → recover rounds.
	Epochs int
	// OpsPerEpoch is the number of tracking operations (moves and
	// queries, evenly mixed by the schedule stream) issued per epoch
	// while the epoch's sensors are down.
	OpsPerEpoch int
	// SLOGraceOps is k of the headline SLO: every operation issued at
	// least k issued-ops after a failure event must complete. Operations
	// inside the grace window may fail without violating the SLO (they
	// are masked from the cost comparison instead).
	SLOGraceOps int
	// Schedules is the number of independent churn schedules.
	Schedules int
	// Workers bounds the pool running schedules concurrently; any value
	// yields byte-identical results.
	Workers int
	// RebuildEachEvent switches the repair engine into its validation
	// mode (a from-scratch overlay rebuild per event in place of
	// hier.Repair). The golden tier pins that this flag does not change a
	// single output byte.
	RebuildEachEvent bool
	// UseOracle builds the schedules over the sub-quadratic distance
	// oracle instead of the exact metric — the only affordable substrate
	// at the 10k scale cell.
	UseOracle bool
	// DisableRuntime skips the goroutine-runtime crash replay (used at
	// scale, where spinning up one goroutine per sensor per schedule
	// dominates the measurement).
	DisableRuntime bool
	// DisableSubstrateCache makes every schedule rebuild its own grid and
	// metric instead of sharing the substrate cache. The churn engines
	// always build private hierarchies — they mutate them.
	DisableSubstrateCache bool
	// LiveTelemetry attaches a wall-clock live recorder to each
	// schedule's goroutine-runtime replay (no effect with
	// DisableRuntime) and stores the final snapshot on the schedule.
	// Diagnostics only: CostTrace and every deterministic artifact stay
	// byte-identical to a live-off run.
	LiveTelemetry bool
}

func (c *ChurnConfig) fill() {
	fillInt(&c.Size, 49)
	fillInt(&c.Objects, 4)
	if c.ChurnRate <= 0 {
		c.ChurnRate = 0.05
	}
	if c.ChurnRate > 0.10 {
		c.ChurnRate = 0.10
	}
	fillInt(&c.Epochs, 4)
	fillInt(&c.OpsPerEpoch, 24)
	if c.SLOGraceOps <= 0 {
		c.SLOGraceOps = 2
	}
	fillInt(&c.Schedules, 3)
	fillWorkers(&c.Workers)
}

// ChurnSchedule is the outcome of one seeded churn schedule.
type ChurnSchedule struct {
	Index int
	Seed  int64

	// FailEvents / RecoverEvents count liveness flips (they are equal:
	// every epoch recovers its victims).
	FailEvents    int
	RecoverEvents int

	// OpsIssued / OpsMasked partition the operation stream: an operation
	// is masked when one of its endpoints or its object's ground-truth
	// proxy is down — no regime, incremental or not, can serve it.
	OpsIssued int
	OpsMasked int

	// Relabels is the total de Bruijn relabel count the same fail/recover
	// schedule costs the §7 cluster embedding (internal/debruijn).
	Relabels int

	// Repair* are the incremental engine's recovery meters; Rebuild* the
	// same schedule on the rebuild-from-scratch baseline.
	RepairRecoveryCost  float64
	RepairRecoveryOps   int
	RebuildRecoveryCost float64
	RebuildRecoveryOps  int

	// ChurnOpCost is the issued operations' cost on the repaired-under-
	// churn directory; SteadyOpCost is the same operations on the
	// fault-free control.
	ChurnOpCost  float64
	SteadyOpCost float64

	// RunFailed counts operations the goroutine runtime — which has no
	// incremental repair; its overlay stays static while sensors crash —
	// lost to *chaos.DeliveryError under the same schedule. 0 when the
	// runtime replay is disabled.
	RunFailed int

	// Live is the runtime replay's wall-clock latency snapshot (nil
	// unless ChurnConfig.LiveTelemetry; excluded from CostTrace and all
	// golden artifacts — report renderers add latency columns from it
	// only when present).
	Live *live.Snapshot

	// CostTrace is the golden byte representation of the schedule: one
	// line per epoch with the victims, availability counts, and meters.
	CostTrace string
}

// Availability is the fraction of attempted operations that were
// servable during churn.
func (s *ChurnSchedule) Availability() float64 {
	total := s.OpsIssued + s.OpsMasked
	if total == 0 {
		return 1
	}
	return float64(s.OpsIssued) / float64(total)
}

// CostRatio is the steady-state cost ratio: issued-operation cost under
// churn over the same operations fault-free.
func (s *ChurnSchedule) CostRatio() float64 {
	if s.SteadyOpCost == 0 {
		return 1
	}
	return s.ChurnOpCost / s.SteadyOpCost
}

// RecoveryRatio is incremental repair's recovery cost over the
// rebuild-from-scratch baseline's — the tentpole's headline number.
func (s *ChurnSchedule) RecoveryRatio() float64 {
	if s.RebuildRecoveryCost == 0 {
		return 1
	}
	return s.RepairRecoveryCost / s.RebuildRecoveryCost
}

// ChurnResult is the full churn tier outcome.
type ChurnResult struct {
	Config    ChurnConfig
	Schedules []ChurnSchedule
}

// RunChurn executes cfg.Schedules seeded churn schedules on a worker pool
// and returns their outcomes in schedule order.
func RunChurn(cfg ChurnConfig) (*ChurnResult, error) {
	cfg.fill()
	res := &ChurnResult{Config: cfg, Schedules: make([]ChurnSchedule, cfg.Schedules)}
	errs := make([]error, cfg.Schedules)
	workers := cfg.Workers
	if workers > cfg.Schedules {
		workers = cfg.Schedules
	}
	var failed atomic.Bool
	jobs := make(chan int)
	var pool track.Group
	for w := 0; w < workers; w++ {
		pool.Go(func() {
			for i := range jobs {
				if failed.Load() {
					continue
				}
				sched, err := runChurnSchedule(cfg, i)
				if err != nil {
					errs[i] = fmt.Errorf("experiments: churn schedule %d: %w", i, err)
					failed.Store(true)
					continue
				}
				res.Schedules[i] = sched
			}
		})
	}
	for i := 0; i < cfg.Schedules; i++ {
		jobs <- i
	}
	close(jobs)
	pool.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// churnSubstrate resolves a schedule's grid and distance oracle.
func churnSubstrate(cfg ChurnConfig) (*graph.Graph, graph.DistanceOracle) {
	if cfg.UseOracle {
		if cfg.DisableSubstrateCache {
			g := graph.NearSquareGrid(cfg.Size)
			return g, graph.NewOracle(g, graph.OracleConfig{})
		}
		g, o := defaultSubstrates.GridOracle(cfg.Size)
		return g, o
	}
	g, m := gridSubstrate(cfg.Size, cfg.DisableSubstrateCache)
	return g, m
}

// churnOp is one recorded event of a schedule, replayed verbatim on the
// goroutine runtime.
type churnOp struct {
	kind byte // 'f' fail, 'r' recover, 'm' move, 'q' query
	node graph.NodeID
	obj  core.ObjectID
}

// opCost is the tracking-operation share of a meter (recovery and
// publish traffic are accounted separately).
func opCost(m core.CostMeter) float64 { return m.MaintCost + m.QueryCost }

// runChurnSchedule runs one seeded churn schedule: the incremental repair
// engine, the rebuild baseline, the fault-free control, and the de Bruijn
// relabeling all see the same event stream.
func runChurnSchedule(cfg ChurnConfig, idx int) (ChurnSchedule, error) {
	seed := mobility.StreamSeed(cfg.BaseSeed, cfg.Size, idx)
	out := ChurnSchedule{Index: idx, Seed: seed}
	rng := rand.New(rand.NewSource(seed))

	g, dm := churnSubstrate(cfg)
	hcfg := hier.Config{Seed: seed, SpecialParentOffset: 2}

	// The two engines own and mutate their hierarchies, so they never
	// share the substrate cache. ChurnThreshold 1 keeps the repair engine
	// incremental for the whole schedule; a vanishing threshold turns the
	// baseline into a rebuild per fail event.
	repairEng, err := dynamics.New(g, dm, dynamics.Config{
		Hier: hcfg, ChurnThreshold: 1, RebuildEachEvent: cfg.RebuildEachEvent,
	})
	if err != nil {
		return out, err
	}
	rebuildEng, err := dynamics.New(g, dm, dynamics.Config{Hier: hcfg, ChurnThreshold: 1e-9})
	if err != nil {
		return out, err
	}
	// The steady control never churns; its hierarchy is immutable and can
	// come from the shared cache.
	var steadyHS *hier.Hierarchy
	if cfg.DisableSubstrateCache {
		steadyHS, err = hier.BuildExcluding(g, dm, hcfg, nil)
	} else if cfg.UseOracle {
		steadyHS, err = defaultSubstrates.GridOracleHierarchy(cfg.Size, hcfg)
	} else {
		steadyHS, err = defaultSubstrates.GridHierarchy(cfg.Size, hcfg)
	}
	if err != nil {
		return out, err
	}
	steady := core.New(steadyHS, core.Config{})

	locs := make([]graph.NodeID, cfg.Objects)
	for o := range locs {
		locs[o] = graph.NodeID(rng.Intn(g.N()))
		for _, dir := range []*core.Directory{repairEng.Directory(), rebuildEng.Directory(), steady} {
			if err := dir.Publish(core.ObjectID(o), locs[o]); err != nil {
				return out, err
			}
		}
	}
	initial := append([]graph.NodeID(nil), locs...)

	members := make([]graph.NodeID, g.N())
	for i := range members {
		members[i] = graph.NodeID(i)
	}
	emb := debruijn.New(members)
	failed := make(map[graph.NodeID]bool)
	var events []churnOp
	var trace strings.Builder
	victimsPerEpoch := int(cfg.ChurnRate*float64(g.N()) + 0.5)
	if victimsPerEpoch < 1 {
		victimsPerEpoch = 1
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		issuedBefore, maskedBefore := out.OpsIssued, out.OpsMasked
		churnBefore := opCost(repairEng.Directory().Meter())
		steadyBefore := opCost(steady.Meter())

		// --- fail this epoch's victims --------------------------------
		victims := make([]graph.NodeID, 0, victimsPerEpoch)
		for len(victims) < victimsPerEpoch {
			v := graph.NodeID(rng.Intn(g.N()))
			if failed[v] {
				continue
			}
			failed[v] = true
			victims = append(victims, v)
			if err := repairEng.Fail(v); err != nil {
				return out, err
			}
			if err := rebuildEng.Fail(v); err != nil {
				return out, err
			}
			upd, err := emb.Leave(v)
			if err != nil {
				return out, err
			}
			out.Relabels += upd
			out.FailEvents++
			events = append(events, churnOp{kind: 'f', node: v})
		}
		opsSinceFail := 0

		// --- operate while down ---------------------------------------
		for i := 0; i < cfg.OpsPerEpoch; i++ {
			var op churnOp
			if rng.Intn(2) == 0 { // move
				o := rng.Intn(len(locs))
				nbrs := g.NeighborIDs(locs[o])
				op = churnOp{kind: 'm', obj: core.ObjectID(o), node: nbrs[rng.Intn(len(nbrs))]}
			} else { // query
				op = churnOp{kind: 'q', obj: core.ObjectID(rng.Intn(len(locs))), node: graph.NodeID(rng.Intn(g.N()))}
			}
			// Mask operations no regime can serve: a down endpoint or a
			// down ground-truth proxy (the rebuild baseline parks exactly
			// those objects).
			if failed[op.node] || failed[locs[op.obj]] {
				out.OpsMasked++
				continue
			}
			err := issueOp(repairEng.Directory(), op)
			opsSinceFail++
			if err != nil {
				if opsSinceFail > cfg.SLOGraceOps {
					return out, fmt.Errorf("SLO violation: epoch %d op %d (%d past failure, grace %d): %w",
						epoch, i, opsSinceFail, cfg.SLOGraceOps, err)
				}
				out.OpsMasked++
				continue
			}
			if err := issueOp(rebuildEng.Directory(), op); err != nil {
				return out, fmt.Errorf("rebuild baseline diverged on epoch %d op %d: %w", epoch, i, err)
			}
			if err := issueOp(steady, op); err != nil {
				return out, fmt.Errorf("steady control failed epoch %d op %d: %w", epoch, i, err)
			}
			if op.kind == 'm' {
				locs[op.obj] = op.node
			}
			out.OpsIssued++
			events = append(events, op)
		}

		// --- recover and assert quiescence ----------------------------
		for _, v := range victims {
			delete(failed, v)
			if err := repairEng.Recover(v); err != nil {
				return out, err
			}
			if err := rebuildEng.Recover(v); err != nil {
				return out, err
			}
			upd, err := emb.Join(v)
			if err != nil {
				return out, err
			}
			out.Relabels += upd
			out.RecoverEvents++
			events = append(events, churnOp{kind: 'r', node: v})
		}
		if err := repairEng.Directory().CheckInvariants(); err != nil {
			return out, fmt.Errorf("repair engine invariants after epoch %d: %w", epoch, err)
		}
		if err := rebuildEng.Directory().CheckInvariants(); err != nil {
			return out, fmt.Errorf("rebuild baseline invariants after epoch %d: %w", epoch, err)
		}
		if stale := repairEng.Directory().StaleObjects(func(graph.NodeID) bool { return false }); len(stale) != 0 {
			return out, fmt.Errorf("stale objects at quiescence after epoch %d: %v", epoch, stale)
		}

		rm := repairEng.Directory().Meter()
		fmt.Fprintf(&trace, "epoch %d: fail %v | issued %d masked %d | churn %.2f steady %.2f | repair recovery %.2f/%d | relabels %d\n",
			epoch, victims,
			out.OpsIssued-issuedBefore, out.OpsMasked-maskedBefore,
			opCost(rm)-churnBefore, opCost(steady.Meter())-steadyBefore,
			rm.RecoveryCost, rm.RecoveryOps, out.Relabels)
	}

	rm := repairEng.Directory().Meter()
	bm := rebuildEng.Directory().Meter()
	out.RepairRecoveryCost, out.RepairRecoveryOps = rm.RecoveryCost, rm.RecoveryOps
	out.RebuildRecoveryCost, out.RebuildRecoveryOps = bm.RecoveryCost, bm.RecoveryOps
	out.ChurnOpCost = opCost(rm)
	out.SteadyOpCost = opCost(steady.Meter())
	out.CostTrace = trace.String()

	if !cfg.DisableRuntime {
		var lrec *live.Recorder
		if cfg.LiveTelemetry {
			lrec = live.New(fmt.Sprintf("churn-%d", out.Index), live.Config{Seed: out.Seed})
		}
		failedOps, err := replayChurnOnRuntime(g, steadyHS, initial, events, lrec)
		if err != nil {
			return out, err
		}
		out.RunFailed = failedOps
		if lrec != nil {
			snap := lrec.Snapshot()
			out.Live = &snap
		}
	}
	return out, nil
}

// issueOp applies one recorded operation to a directory.
func issueOp(dir *core.Directory, op churnOp) error {
	switch op.kind {
	case 'm':
		return dir.Move(op.obj, op.node)
	case 'q':
		_, _, err := dir.Query(op.node, op.obj)
		return err
	}
	return fmt.Errorf("experiments: unknown churn op %q", op.kind)
}

// replayChurnOnRuntime replays the recorded event stream on the goroutine
// runtime with explicit crashes. The runtime's overlay is static — it has
// no incremental repair — so operations whose trails route through downed
// sensors exhaust their retry budget and fail with *chaos.DeliveryError,
// and a Move that loses messages mid-trail leaves the object's directory
// state permanently inconsistent, failing its later operations outright.
// Every failed operation counts as lost: the total is the measured price
// of not repairing. The pre-churn publishes run before any crash and must
// succeed.
func replayChurnOnRuntime(g *graph.Graph, hs *hier.Hierarchy, locs []graph.NodeID, events []churnOp, lrec *live.Recorder) (int, error) {
	inj := chaos.NewInjector(chaos.Config{Seed: 1, MaxAttempts: 4}, g.N())
	tr := motruntime.NewLive(g, hs, inj, nil, lrec)
	defer tr.Stop()
	failedOps := 0
	for o, at := range locs {
		if err := tr.Publish(core.ObjectID(o), at); err != nil {
			return failedOps, err
		}
	}
	for _, ev := range events {
		switch ev.kind {
		case 'f':
			tr.Crash(ev.node)
		case 'r':
			tr.Recover(ev.node)
		case 'm':
			if err := tr.Move(ev.obj, ev.node); err != nil {
				failedOps++
			}
		case 'q':
			if _, _, err := tr.Query(ev.node, ev.obj); err != nil {
				failedOps++
			}
		}
	}
	return failedOps, nil
}

// PrintChurn renders the churn tier outcome, one line per schedule.
func PrintChurn(w io.Writer, res *ChurnResult) {
	fmt.Fprintf(w, "churn tier: %d schedules on %d sensors (%.0f%% churn/epoch, %d epochs x %d ops, grace %d)\n",
		res.Config.Schedules, res.Config.Size,
		res.Config.ChurnRate*100, res.Config.Epochs, res.Config.OpsPerEpoch, res.Config.SLOGraceOps)
	for i := range res.Schedules {
		s := &res.Schedules[i]
		fmt.Fprintf(w, "  schedule %d (seed %d): %d fail/%d recover, availability %.3f, cost ratio %.3f, recovery %.1f/%d vs rebuild %.1f/%d (ratio %.3f), %d relabels, runtime lost %d\n",
			s.Index, s.Seed, s.FailEvents, s.RecoverEvents,
			s.Availability(), s.CostRatio(),
			s.RepairRecoveryCost, s.RepairRecoveryOps,
			s.RebuildRecoveryCost, s.RebuildRecoveryOps, s.RecoveryRatio(),
			s.Relabels, s.RunFailed)
	}
}
