package lint

import "go/ast"

// BareGo forbids bare go statements in library packages. Goroutines must
// launch through internal/runtime/track.Group so every one is tracked and
// the -race smoke tier can drain them; an untracked goroutine that
// outlives its test is exactly the leak the tier cannot see.
var BareGo = &Analyzer{
	Name: "barego",
	Doc:  "forbid bare go statements in library code; launch via internal/runtime/track.Group",
	Run: func(p *Pass) {
		if p.Cfg.isDriver(p.Path) || pathAllowed(p.Cfg.BareGoAllowed, p.Path) {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.Reportf(g.Pos(),
						"bare go statement in library code; launch via internal/runtime/track.Group so the -race tier can drain it")
				}
				return true
			})
		}
	},
}
