package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapRange flags `for … range` over a map whose body feeds an ordered
// result — appending to an outer slice, printing/writing, or
// accumulating into an order-sensitive value (string or float). Go map
// iteration order is randomized, so any such loop makes output bytes (or
// float sums) depend on the run, which is exactly what the golden figure
// tests forbid.
//
// The sorted-keys helper idiom is recognized and exempt: a loop that only
// collects keys/values into a slice which is passed to sort.* /
// slices.Sort* later in the same function (e.g. experiments.FigureIDs)
// is the fix, not a violation. Prints and string/float accumulation have
// no after-the-fact fix and are always flagged.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "forbid map iteration that feeds ordered output; go through a sorted-keys helper",
	Run: func(p *Pass) {
		if p.Cfg.isDriver(p.Path) || pathAllowed(p.Cfg.MapRangeAllowed, p.Path) {
			return
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkMapRanges(p, fn.Body)
			}
		}
	},
}

// checkMapRanges walks one function body (function literals included —
// they sort, or fail to, within the same enclosing body).
func checkMapRanges(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		acc := scanAccumulation(p, rs)
		if acc == nil {
			return true
		}
		if acc.onlyAppends() && allSortedAfter(p, body, rs, acc.appendTargets) {
			return true
		}
		p.Reportf(rs.Pos(),
			"map iteration feeds ordered output (%s); iterate sorted keys (FigureIDs-style helper) instead",
			strings.Join(acc.kinds(), ", "))
		return true
	})
}

// accumulation describes what a map-range body does with the unordered
// iteration.
type accumulation struct {
	appendTargets []types.Object // outer slices appended to
	prints        bool           // fmt.Print*/Fprint* or Write* method calls
	concats       bool           // += / -= on an outer string or float
}

func (a *accumulation) onlyAppends() bool {
	return len(a.appendTargets) > 0 && !a.prints && !a.concats
}

func (a *accumulation) kinds() []string {
	var ks []string
	if len(a.appendTargets) > 0 {
		ks = append(ks, "append")
	}
	if a.prints {
		ks = append(ks, "print")
	}
	if a.concats {
		ks = append(ks, "order-sensitive accumulation")
	}
	return ks
}

// writeMethods are method names treated as ordered-output sinks.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// scanAccumulation inspects a map-range body; nil means the body is
// order-insensitive as far as the rule can tell.
func scanAccumulation(p *Pass, rs *ast.RangeStmt) *accumulation {
	acc := &accumulation{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			scanAssign(p, rs, n, acc)
		case *ast.CallExpr:
			if pkg, name, ok := pkgFunc(p.Info, n); ok {
				if pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
					acc.prints = true
				}
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && writeMethods[sel.Sel.Name] {
				acc.prints = true
			}
		}
		return true
	})
	if len(acc.appendTargets) == 0 && !acc.prints && !acc.concats {
		return nil
	}
	return acc
}

// scanAssign records appends to outer slices and order-sensitive += / -=
// on outer strings and floats. Integer accumulation is commutative and
// stays legal; float addition is not associative, so a float sum over map
// order is a real determinism bug.
func scanAssign(p *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, acc *accumulation) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "append" {
				continue
			}
			if u := p.Info.Uses[id]; u != nil && u.Pkg() != nil {
				continue // a user function shadowing the builtin
			}
			if obj := outerObject(p, rs, as.Lhs[i]); obj != nil {
				acc.appendTargets = append(acc.appendTargets, obj)
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if len(as.Lhs) != 1 {
			return
		}
		obj := outerObject(p, rs, as.Lhs[0])
		if obj == nil {
			return
		}
		switch bt := obj.Type().Underlying().(type) {
		case *types.Basic:
			if bt.Info()&types.IsString != 0 || bt.Info()&types.IsFloat != 0 {
				acc.concats = true
			}
		}
	}
}

// outerObject resolves an assignment target declared outside the range
// statement (struct fields count: their declaration is outside too).
func outerObject(p *Pass, rs *ast.RangeStmt, lhs ast.Expr) types.Object {
	var id *ast.Ident
	switch l := lhs.(type) {
	case *ast.Ident:
		id = l
	case *ast.SelectorExpr:
		id = l.Sel
	default:
		return nil
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil || !obj.Pos().IsValid() {
		return nil
	}
	if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
		return nil // declared inside the loop; dies with the iteration
	}
	return obj
}

// allSortedAfter reports whether every append target is handed to a
// sort.* or slices.Sort* call after the range statement in the same
// function body — the sorted-keys helper shape.
func allSortedAfter(p *Pass, body *ast.BlockStmt, rs *ast.RangeStmt, targets []types.Object) bool {
	if len(targets) == 0 {
		return false
	}
	sorted := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		pkg, _, ok := pkgFunc(p.Info, call)
		if !ok || (pkg != "sort" && pkg != "slices") {
			return true
		}
		for _, arg := range call.Args {
			id, ok := arg.(*ast.Ident)
			if !ok {
				continue
			}
			if obj := p.Info.Uses[id]; obj != nil {
				sorted[obj] = true
			}
		}
		return true
	})
	for _, t := range targets {
		if !sorted[t] {
			return false
		}
	}
	return true
}
