package lint

import (
	"go/ast"
	"go/types"
)

// DistLoop flags Metric.Dist calls inside a loop whose source argument
// is loop-invariant. Before a metric freezes, every Dist call pays an
// RWMutex acquisition plus a map lookup to find the source row; a loop
// probing many targets from one source repeats that work per iteration.
// The fix is the Row idiom: hoist `row := m.Row(u)` above the loop and
// index `row[v]`, which pins the row lookup to one call (and reads the
// frozen flat table directly once the metric is frozen).
//
// The rule is deliberately conservative: it only fires when the call is
// directly inside a for/range statement (not nested deeper in another
// loop or function literal, which are analyzed on their own) and both
// the receiver and the first argument are invariant with respect to that
// loop — built from identifiers that are neither declared inside the
// loop nor assigned anywhere in its body, with no function calls.
var DistLoop = &Analyzer{
	Name: "distloop",
	Doc:  "hoist loop-invariant Metric.Dist sources: row := m.Row(u) before the loop, then row[v]",
	Run: func(p *Pass) {
		if p.Cfg.isDriver(p.Path) || pathAllowed(p.Cfg.DistLoopAllowed, p.Path) {
			return
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					switch loop := n.(type) {
					case *ast.ForStmt:
						checkDistLoop(p, loop, loop.Body)
					case *ast.RangeStmt:
						checkDistLoop(p, loop, loop.Body)
					}
					return true
				})
			}
		}
	},
}

// checkDistLoop scans one loop body for Dist calls that belong directly
// to this loop (nested loops and function literals are skipped here —
// the enclosing Inspect visits them as their own loops).
func checkDistLoop(p *Pass, loop ast.Node, body *ast.BlockStmt) {
	// Scan the whole loop statement (init/post/key/value included) so
	// `for u = 0; u < n; u++` marks u as loop-varying too.
	assigned := assignedObjects(p, loop)
	ast.Inspect(body, func(n ast.Node) bool {
		switch inner := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			_ = inner
			return false
		case *ast.CallExpr:
			sel, ok := inner.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Dist" || len(inner.Args) < 2 {
				return true
			}
			if !isMetricReceiver(p, sel.X) {
				return true
			}
			if !loopInvariant(p, loop, assigned, sel.X) || !loopInvariant(p, loop, assigned, inner.Args[0]) {
				return true
			}
			p.Reportf(inner.Pos(),
				"Metric.Dist with loop-invariant source inside a loop re-resolves the row each iteration; hoist row := m.Row(src) before the loop and index row[target]")
		}
		return true
	})
}

// isMetricReceiver reports whether expr's type is a (pointer to a) named
// type called Metric. Matching by name rather than by import path lets
// the testdata fixtures — which cannot import module packages — declare
// their own Metric.
func isMetricReceiver(p *Pass, expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Metric"
}

// assignedObjects collects every object assigned (or ++/--'d) anywhere
// in the loop, including nested loops and function literals — any write
// makes an identifier loop-varying for the enclosing loop too.
func assignedObjects(p *Pass, root ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if obj := p.Info.Uses[id]; obj != nil {
			out[obj] = true
		}
		if obj := p.Info.Defs[id]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(n.X)
		case *ast.RangeStmt:
			record(n.Key)
			record(n.Value)
		}
		return true
	})
	return out
}

// loopInvariant reports whether expr cannot change across iterations of
// loop: it contains no function calls, and every identifier it uses is
// declared outside the loop and never assigned in its body. Loop
// variables of the for/range statement itself are declared within
// [loop.Pos(), loop.End()], so they fail the position test.
func loopInvariant(p *Pass, loop ast.Node, assigned map[types.Object]bool, expr ast.Expr) bool {
	invariant := true
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			invariant = false
			return false
		case *ast.Ident:
			obj := p.Info.Uses[n]
			if obj == nil {
				obj = p.Info.Defs[n]
			}
			if obj == nil {
				return true
			}
			if pos := obj.Pos(); pos.IsValid() && pos >= loop.Pos() && pos <= loop.End() {
				invariant = false
				return false
			}
			if assigned[obj] {
				invariant = false
				return false
			}
		}
		return true
	})
	return invariant
}
