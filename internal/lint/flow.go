package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotPathDirective marks a function as a hot-path root for the hotalloc
// rule. It goes in the function's doc comment, on its own line:
//
//	//motlint:hotpath
//
// The obligation propagates to everything the function reaches through
// statically-resolvable intra-module calls, bounded by
// Config.HotPathDepth.
const hotPathDirective = "//motlint:hotpath"

// Flow is the module-wide flow pass shared by the flow-aware analyzers:
// a lightweight call graph over every loaded package (static edges only
// — interface dispatch is invisible to it, deliberately: the hot
// implementations behind an interface carry their own annotations), the
// set of //motlint:hotpath roots, and the depth-bounded hot set derived
// from them. A Runner rebuilds it whenever new packages load, so by the
// time LintModule lints the first package the graph already spans the
// whole tree.
type Flow struct {
	fset  *token.FileSet
	funcs map[types.Object]*FlowFunc
	hot   map[types.Object]*HotInfo
	// callers inverts the edge set: callee → calling functions, used by
	// lockfield's held-lock propagation. Cold and waived edges are
	// included — a caller is a caller no matter how it handles errors.
	callers map[types.Object][]*FlowFunc
	// scopes resolves package scopes by import path, for analyzers that
	// need a type declared in another package (meterfields' CSV check).
	scopes map[string]*types.Package
	// stop holds Config.HotAllocStop: package prefixes the hot BFS never
	// descends into.
	stop []string
}

// FlowFunc is one declared function or method of a loaded package.
type FlowFunc struct {
	Obj   *types.Func
	Decl  *ast.FuncDecl
	Path  string // import path of the declaring package
	Hot   bool   // carries the //motlint:hotpath directive
	Edges []FlowEdge
}

// FlowEdge is one statically-resolved call site.
type FlowEdge struct {
	Callee types.Object
	Pos    token.Pos
	// Cold marks calls inside error-handling or panic contexts — hot
	// paths bail through them only when the operation already failed, so
	// the hotalloc obligation does not follow.
	Cold bool
	// Waived marks calls on a line covered by a //motlint:ignore
	// hotalloc directive: a reasoned waiver at a call boundary also
	// releases the callee subtree it guards.
	Waived bool
}

// HotInfo records how the hotalloc obligation reached a function.
type HotInfo struct {
	Depth int
	Chain string // call chain from the annotated root, "Tracker.send → Tracker.handle"
}

// suffix renders the provenance clause appended to hotalloc findings.
func (h *HotInfo) suffix() string {
	if h.Depth == 0 {
		return " (marked " + hotPathDirective + ")"
	}
	return " (hot via " + h.Chain + ")"
}

// HotOf returns how the hotalloc obligation reached obj, or nil when obj
// is not on a hot path.
func (w *Flow) HotOf(obj types.Object) *HotInfo {
	if w == nil || obj == nil {
		return nil
	}
	return w.hot[obj]
}

// CallersOf returns the functions with a call edge to callee, sorted by
// (package, position) at build time.
func (w *Flow) CallersOf(callee types.Object) []*FlowFunc {
	if w == nil {
		return nil
	}
	return w.callers[callee]
}

// LookupType finds a struct type by name across the loaded packages,
// scanning import paths in sorted order so the result is deterministic.
func (w *Flow) LookupType(name string) *types.Named {
	if w == nil {
		return nil
	}
	paths := make([]string, 0, len(w.scopes))
	for p := range w.scopes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		obj, ok := w.scopes[p].Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isStruct := named.Underlying().(*types.Struct); isStruct {
			return named
		}
	}
	return nil
}

// buildFlow constructs the flow pass over every package the runner has
// loaded. Iteration orders are pinned (sorted paths, source positions)
// so the hot chains in finding messages never depend on map order.
func buildFlow(r *Runner) *Flow {
	w := &Flow{
		fset:    r.fset,
		funcs:   map[types.Object]*FlowFunc{},
		hot:     map[types.Object]*HotInfo{},
		callers: map[types.Object][]*FlowFunc{},
		scopes:  map[string]*types.Package{},
		stop:    r.cfg.HotAllocStop,
	}
	paths := make([]string, 0, len(r.pkgs))
	for p := range r.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	var all []*FlowFunc
	for _, path := range paths {
		pi := r.pkgs[path]
		w.scopes[path] = pi.pkg
		waived := waivedLines(r.fset, pi.files, "hotalloc")
		for _, f := range pi.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pi.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ff := &FlowFunc{
					Obj: obj, Decl: fd, Path: path,
					Hot: hasHotDirective(fd),
				}
				cold := coldRanges(pi.info, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := staticCallee(pi.info, call)
					if callee == nil || callee.Pkg() == nil {
						return true
					}
					cp := callee.Pkg().Path()
					mod := r.cfg.ModulePath
					if cp != mod && !strings.HasPrefix(cp, mod+"/") {
						return true
					}
					pp := r.fset.Position(call.Pos())
					ff.Edges = append(ff.Edges, FlowEdge{
						Callee: callee,
						Pos:    call.Pos(),
						Cold:   inCold(cold, call.Pos()),
						Waived: waived[pp.Filename][pp.Line],
					})
					return true
				})
				w.funcs[obj] = ff
				all = append(all, ff)
			}
		}
	}

	for _, ff := range all {
		for _, e := range ff.Edges {
			w.callers[e.Callee] = append(w.callers[e.Callee], ff)
		}
	}

	w.propagateHot(r.cfg.HotPathDepth)
	return w
}

// propagateHot runs the depth-bounded BFS from the annotated roots. Cold
// and waived edges never propagate; neither do edges into Config
// .HotAllocStop packages or into constructor shapes (init, New*), whose
// whole job is allocating.
func (w *Flow) propagateHot(maxDepth int) {
	if maxDepth <= 0 {
		maxDepth = 4
	}
	type item struct {
		ff    *FlowFunc
		depth int
		chain string
	}
	var queue []item
	var roots []*FlowFunc
	for _, ff := range w.funcs {
		if ff.Hot {
			roots = append(roots, ff)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].Path != roots[j].Path {
			return roots[i].Path < roots[j].Path
		}
		return funcDisplayName(roots[i].Obj) < funcDisplayName(roots[j].Obj)
	})
	for _, ff := range roots {
		name := funcDisplayName(ff.Obj)
		w.hot[ff.Obj] = &HotInfo{Depth: 0, Chain: name}
		queue = append(queue, item{ff: ff, depth: 0, chain: name})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.depth >= maxDepth {
			continue
		}
		edges := append([]FlowEdge(nil), it.ff.Edges...)
		sort.Slice(edges, func(i, j int) bool { return edges[i].Pos < edges[j].Pos })
		for _, e := range edges {
			if e.Cold || e.Waived {
				continue
			}
			cf := w.funcs[e.Callee]
			if cf == nil || w.hot[e.Callee] != nil {
				continue
			}
			if pathAllowed(w.stop, cf.Path) {
				continue
			}
			name := e.Callee.Name()
			if name == "init" || strings.HasPrefix(name, "New") {
				continue
			}
			chain := it.chain + " → " + funcDisplayName(cf.Obj)
			w.hot[e.Callee] = &HotInfo{Depth: it.depth + 1, Chain: chain}
			queue = append(queue, item{ff: cf, depth: it.depth + 1, chain: chain})
		}
	}
}

// hasHotDirective reports whether fd's doc comment carries
// //motlint:hotpath on a line of its own.
func hasHotDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotPathDirective || strings.HasPrefix(c.Text, hotPathDirective+" ") {
			return true
		}
	}
	return false
}

// funcDisplayName renders a function as it appears in hot-chain
// messages: "Type.Method" for methods, the bare name otherwise.
func funcDisplayName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return named.Obj().Name() + "." + f.Name()
		}
	}
	return f.Name()
}

// posRange is a half-open source region [lo, hi].
type posRange struct {
	lo, hi token.Pos
}

func inCold(rs []posRange, pos token.Pos) bool {
	for _, r := range rs {
		if pos >= r.lo && pos <= r.hi {
			return true
		}
	}
	return false
}

// errorIface is the universe error interface, for cold-context checks.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorish(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// coldRanges returns the regions of body the hotalloc rule treats as
// cold: every expression whose static type implements error (an
// operation bailing out pays its allocation once, on failure — fmt
// .Errorf inside a return, an error field of a reply struct), and the
// arguments of panic calls (invariant-violation messages). Identifiers
// merely reading an error variable form degenerate one-token ranges and
// hide nothing.
func coldRanges(info *types.Info, body ast.Node) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, isID := call.Fun.(*ast.Ident); isID {
				if b, isB := info.Uses[id].(*types.Builtin); isB && b.Name() == "panic" {
					out = append(out, posRange{call.Pos(), call.End()})
					return false
				}
			}
		}
		if e, ok := n.(ast.Expr); ok {
			if tv, has := info.Types[e]; has && isErrorish(tv.Type) {
				out = append(out, posRange{e.Pos(), e.End()})
				return false
			}
		}
		return true
	})
	return out
}

// staticCallee resolves a call to the declared function or method it
// statically dispatches to, unwrapping generic instantiations
// (IndexExpr / IndexListExpr). Interface method calls and function
// values return nil: their targets are dynamic.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
			continue
		case *ast.IndexExpr:
			fun = f.X
			continue
		case *ast.IndexListExpr:
			fun = f.X
			continue
		}
		break
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			fn, isFn := sel.Obj().(*types.Func)
			if !isFn {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch
			}
			return fn
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// waivedLines collects, per absolute file name, the lines covered by a
// //motlint:ignore directive naming rule (or "all"). Used by the flow
// pass to prune propagation edges; malformed directives are ignored here
// — parseIgnores reports them during the lint pass proper.
func waivedLines(fset *token.FileSet, files []*ast.File, rule string) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
				if len(fields) < 2 {
					continue
				}
				match := false
				for _, rl := range strings.Split(fields[0], ",") {
					if rl == rule || rl == "all" {
						match = true
					}
				}
				if !match {
					continue
				}
				pp := fset.Position(c.Pos())
				if out[pp.Filename] == nil {
					out[pp.Filename] = map[int]bool{}
				}
				out[pp.Filename][pp.Line] = true
				out[pp.Filename][pp.Line+1] = true
			}
		}
	}
	return out
}
