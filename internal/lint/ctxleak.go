package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxLeak polices track.Group launch sites: every Go must have a
// reachable Wait, or the -race tier's drain guarantee (all goroutines
// join before results are read) silently breaks.
//
//   - A Group held in a struct field may Wait anywhere in the package
//     (ServeDebug launches, Close waits); no Wait at all is the finding.
//   - A Group in a local variable must Wait in the same function. A
//     deferred Wait always satisfies; otherwise a return statement
//     between the first Go and the last Wait is a leak path.
//
// Group types are matched structurally by name and method set (a named
// "Group" with Go and Wait methods), so fixtures can declare their own.
var CtxLeak = &Analyzer{
	Name: "ctxleak",
	Doc:  "every track.Group launch site needs a reachable Wait on all return paths",
	Run:  runCtxLeak,
}

func runCtxLeak(p *Pass) {
	if pathAllowed(p.Cfg.CtxLeakAllowed, p.Path) {
		return
	}

	type site struct {
		pos token.Pos
		fn  string
	}
	fieldGos := map[*types.Var][]site{}
	fieldWaits := map[*types.Var]bool{}

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fnName := fd.Name.Name
			if fn, isFn := p.Info.Defs[fd.Name].(*types.Func); isFn {
				fnName = funcDisplayName(fn)
			}

			deferred := deferredCalls(fd.Body)
			litRanges := funcLitRanges(fd.Body)
			type localUse struct {
				gos          []token.Pos
				waits        []token.Pos
				deferredWait bool
			}
			locals := map[*types.Var]*localUse{}
			var localOrder []*types.Var

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				op := sel.Sel.Name
				if op != "Go" && op != "Wait" {
					return true
				}
				switch base := sel.X.(type) {
				case *ast.Ident:
					v, isVar := p.Info.Uses[base].(*types.Var)
					if !isVar || v.IsField() || !isTrackGroup(v.Type()) {
						return true
					}
					lu := locals[v]
					if lu == nil {
						lu = &localUse{}
						locals[v] = lu
						localOrder = append(localOrder, v)
					}
					if op == "Go" {
						lu.gos = append(lu.gos, call.Pos())
					} else {
						lu.waits = append(lu.waits, call.End())
						if deferred[call] {
							lu.deferredWait = true
						}
					}
				case *ast.SelectorExpr:
					s, hasSel := p.Info.Selections[base]
					if !hasSel || s.Kind() != types.FieldVal {
						return true
					}
					fld, isVar := s.Obj().(*types.Var)
					if !isVar || !isTrackGroup(fld.Type()) {
						return true
					}
					if op == "Go" {
						fieldGos[fld] = append(fieldGos[fld], site{pos: call.Pos(), fn: fnName})
					} else {
						fieldWaits[fld] = true
					}
				}
				return true
			})

			for _, v := range localOrder {
				lu := locals[v]
				if len(lu.gos) == 0 {
					continue
				}
				if len(lu.waits) == 0 {
					p.Reportf(lu.gos[0], "%s.Go launches goroutines but %s never calls %s.Wait",
						v.Name(), fnName, v.Name())
					continue
				}
				if lu.deferredWait {
					continue
				}
				firstGo, lastWait := lu.gos[0], lu.waits[0]
				for _, w := range lu.waits {
					if w > lastWait {
						lastWait = w
					}
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					ret, isRet := n.(*ast.ReturnStmt)
					if !isRet {
						return true
					}
					if ret.Pos() <= firstGo || ret.Pos() >= lastWait {
						return true
					}
					for _, lr := range litRanges {
						if ret.Pos() >= lr.lo && ret.Pos() <= lr.hi {
							return true // a closure's return, not this function's
						}
					}
					p.Reportf(ret.Pos(), "return between %s.Go and %s.Wait leaks goroutines (defer the Wait or restructure)",
						v.Name(), v.Name())
					return true
				})
			}
		}
	}

	for fld, sites := range fieldGos {
		if fieldWaits[fld] {
			continue
		}
		for _, s := range sites {
			p.Reportf(s.pos, "field %s launches goroutines in %s but no function in this package calls its Wait",
				fld.Name(), s.fn)
		}
	}
}

// funcLitRanges records the source extents of closures inside body.
func funcLitRanges(body ast.Node) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			out = append(out, posRange{fl.Pos(), fl.End()})
		}
		return true
	})
	return out
}

// isTrackGroup matches the track.Group shape: a named type called Group
// with Go and Wait methods.
func isTrackGroup(t types.Type) bool {
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Group" {
		return false
	}
	var hasGo, hasWait bool
	for i := 0; i < named.NumMethods(); i++ {
		switch named.Method(i).Name() {
		case "Go":
			hasGo = true
		case "Wait":
			hasWait = true
		}
	}
	return hasGo && hasWait
}
