package lint

import "go/ast"

// wallClockFuncs are the time package entry points that read the machine
// clock. Timers and tickers are caught by their own entry points.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// WallTime forbids wall-clock reads in simulation library code. Simulated
// time lives in the discrete-event engine; a time.Now in a result path
// makes output depend on the machine that produced it. Drivers (cmd/,
// examples/) may time things — around the simulation, never inside it.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/time.Since in simulation library code",
	Run: func(p *Pass) {
		if p.Cfg.isDriver(p.Path) || pathAllowed(p.Cfg.WallTimeAllowed, p.Path) {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, name, ok := pkgFunc(p.Info, call)
				if !ok || pkg != "time" || !wallClockFuncs[name] {
					return true
				}
				p.Reportf(call.Pos(),
					"time.%s reads the wall clock in simulation library code; time the call from cmd/ instead", name)
				return true
			})
		}
	},
}
