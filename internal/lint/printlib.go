package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PrintLib forbids writing to the process's stdout from library code:
// fmt.Print* calls and any mention of os.Stdout. Renderers take an
// io.Writer so callers (and tests) own the byte stream; a library-level
// print interleaves with harness output nondeterministically under the
// parallel sweeps.
var PrintLib = &Analyzer{
	Name: "printlib",
	Doc:  "forbid fmt.Print*/os.Stdout in library code; render through an io.Writer",
	Run: func(p *Pass) {
		if p.Cfg.isDriver(p.Path) || pathAllowed(p.Cfg.PrintAllowed, p.Path) {
			return
		}
		for _, f := range p.Files {
			if p.fileAllowed(p.Cfg.PrintAllowedFiles, f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					pkg, name, ok := pkgFunc(p.Info, n)
					if ok && pkg == "fmt" && strings.HasPrefix(name, "Print") {
						p.Reportf(n.Pos(),
							"fmt.%s writes to process stdout from library code; take an io.Writer", name)
					}
				case *ast.SelectorExpr:
					id, ok := n.X.(*ast.Ident)
					if !ok || n.Sel.Name != "Stdout" {
						return true
					}
					if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "os" {
						p.Reportf(n.Pos(),
							"os.Stdout referenced from library code; take an io.Writer")
					}
				}
				return true
			})
		}
	},
}
