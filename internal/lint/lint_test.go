package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtures pins each rule's behavior with a golden want.txt: every
// directory under testdata/src is linted as a library package and its
// findings must match byte for byte (positives fire, negatives stay
// silent, directives waive).
func TestFixtures(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no fixture directories under testdata/src")
	}
	for _, dir := range dirs {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			r := NewRunner(Default(), All()...)
			findings, err := r.LintPackage(dir, "repro/internal/fixture/"+name)
			if err != nil {
				t.Fatal(err)
			}
			var got strings.Builder
			for _, f := range findings {
				got.WriteString(f.String())
				got.WriteByte('\n')
			}
			want, err := os.ReadFile(filepath.Join(dir, "want.txt"))
			if err != nil {
				t.Fatal(err)
			}
			if got.String() != string(want) {
				t.Errorf("findings mismatch\n got:\n%s\nwant:\n%s", got.String(), want)
			}
		})
	}
}

// TestAllowlistExemptsPackage re-lints the globalrand fixture as if it
// were internal/mobility — the one package allowed to touch the global
// source — and expects silence.
func TestAllowlistExemptsPackage(t *testing.T) {
	r := NewRunner(Default(), All()...)
	findings, err := r.LintPackage(filepath.Join("testdata", "src", "globalrand"), "repro/internal/mobility")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("allowlisted package still flagged: %s", f)
	}
}

// TestWallTimeAllowlistScope re-lints the walltime fixture under the
// live-telemetry carve-out: as repro/internal/obs/live (the one library
// package allowed wall clocks) it must go silent, while the parent
// repro/internal/obs — and, via TestFixtures' golden, every other
// library path — keeps firing. The waiver must not widen.
func TestWallTimeAllowlistScope(t *testing.T) {
	dir := filepath.Join("testdata", "src", "walltime")

	r := NewRunner(Default(), All()...)
	findings, err := r.LintPackage(dir, "repro/internal/obs/live")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("allowlisted live package still flagged: %s", f)
	}

	r = NewRunner(Default(), All()...)
	findings, err = r.LintPackage(dir, "repro/internal/obs")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 3 {
		t.Fatalf("parent obs package findings = %d, want 3 (carve-out must not widen):\n%v",
			len(findings), findings)
	}
}

// TestDriverPackagesExempt re-lints the barego and printlib fixtures
// under a cmd/ import path: drivers may launch goroutines and print.
func TestDriverPackagesExempt(t *testing.T) {
	for _, name := range []string{"barego", "printlib"} {
		r := NewRunner(Default(), All()...)
		findings, err := r.LintPackage(filepath.Join("testdata", "src", name), "repro/cmd/"+name)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			t.Errorf("driver package still flagged: %s", f)
		}
	}
}

// TestPrintAllowedFiles re-lints the printfile fixture with export.go on
// the per-file allowlist: its finding disappears while printer.go in the
// same package stays flagged — the file waiver must not widen to the
// package.
func TestPrintAllowedFiles(t *testing.T) {
	cfg := Default()
	cfg.PrintAllowedFiles = []string{"repro/internal/fixture/printfile/export.go"}
	r := NewRunner(cfg, All()...)
	findings, err := r.LintPackage(filepath.Join("testdata", "src", "printfile"), "repro/internal/fixture/printfile")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly printer.go's", findings)
	}
	if f := findings[0]; f.File != "printer.go" || f.Rule != "printlib" {
		t.Fatalf("unexpected finding: %s", f)
	}
}

// TestFindingString pins the canonical output format the Makefile and CI
// grep for.
func TestFindingString(t *testing.T) {
	f := Finding{File: "internal/sim/engine.go", Line: 42, Col: 3, Rule: "walltime", Msg: "nope"}
	const want = "internal/sim/engine.go:42: [walltime] nope"
	if got := f.String(); got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}

// TestRepoIsLintClean runs the full suite over the real module — the
// self-applied tree must stay at zero findings. This is the test that
// turns motlint into a tier-1 invariant (make check also runs the CLI,
// but the CLI path can be skipped locally; this one cannot).
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; run without -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(Default(), All()...)
	findings, err := r.LintModule(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("lint finding in tree: %s", f)
	}
}

// TestMeterCSVSpec points the CostMeter spec's CSV exporter at the
// meterfields fixture itself: the fixture's CSVMeter forgets the
// dropped_cost column, which must surface alongside the aggregator
// finding the default config already produces.
func TestMeterCSVSpec(t *testing.T) {
	cfg := Default()
	for i := range cfg.Meters {
		if cfg.Meters[i].Type == "CostMeter" {
			cfg.Meters[i].CSVPkg = "repro/internal/fixture/meterfields"
			cfg.Meters[i].CSVFunc = "CSVMeter"
		}
	}
	r := NewRunner(cfg, MeterFields)
	findings, err := r.LintPackage(filepath.Join("testdata", "src", "meterfields"), "repro/internal/fixture/meterfields")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.String())
	}
	want := []string{
		`meterfields.go:13: [meterfields] CostMeter.DroppedCost is not referenced by Add (metered value silently dropped)`,
		`meterfields.go:25: [meterfields] CSVMeter is missing CSV column "dropped_cost" for CostMeter.DroppedCost`,
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
	}
}
