// Package meterfields exercises the meterfields rule with a local copy
// of the metered CostMeter shape (structs are matched by name, like the
// distloop fixture's Metric).
package meterfields

type CostMeter struct {
	PublishCost float64
	QueryCost   float64
	DroppedCost float64
}

// Add accumulates o into m but forgets DroppedCost.
func (m *CostMeter) Add(o CostMeter) {
	m.PublishCost += o.PublishCost
	m.QueryCost += o.QueryCost
}

// AbsorbMeter delegates to Add, which transfers the obligation there.
func AbsorbMeter(dst *CostMeter, o CostMeter) {
	dst.Add(o)
}

// CSVMeter is only checked under a config whose CSV spec points at this
// package (TestMeterCSVSpec); it forgets the dropped_cost column.
func CSVMeter() string {
	return "publish_cost,query_cost"
}
