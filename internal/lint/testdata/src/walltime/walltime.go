// Package fixture seeds positive and negative cases for the walltime
// rule.
package fixture

import "time"

// stamp is a positive: reads the machine clock.
func stamp() time.Time {
	return time.Now()
}

// elapsed is a positive.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}

// remaining is a positive.
func remaining(t0 time.Time) time.Duration {
	return time.Until(t0)
}

// advance is a negative: pure time arithmetic on values handed in.
func advance(t time.Time, d time.Duration) time.Time {
	return t.Add(d)
}

// waived is a negative: the escape hatch with a reason.
func waived() time.Time {
	//motlint:ignore walltime fixture demonstrating the escape hatch
	return time.Now()
}
