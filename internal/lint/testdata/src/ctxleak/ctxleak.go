// Package ctxleak exercises the ctxleak rule with a local Group shaped
// like track.Group (a named Group with Go and Wait methods): every
// launch site needs a reachable Wait.
package ctxleak

type Group struct {
	n int
}

func (g *Group) Go(fn func()) {
	g.n++
	fn()
}

func (g *Group) Wait() {}

func Drained(fns []func()) {
	var g Group
	for _, fn := range fns {
		g.Go(fn)
	}
	g.Wait()
}

func Leaky(fns []func()) {
	var g Group
	for _, fn := range fns {
		g.Go(fn)
	}
}

func EarlyReturn(fns []func(), stop bool) {
	var g Group
	g.Go(fns[0])
	if stop {
		return
	}
	g.Wait()
}

func DeferredOK(fns []func()) {
	var g Group
	defer g.Wait()
	g.Go(fns[0])
	if len(fns) > 1 {
		return
	}
	g.Go(fns[1])
}

type server struct {
	g Group
}

func (s *server) Start(fn func()) {
	s.g.Go(fn)
}

func (s *server) Close() {
	s.g.Wait()
}

type leakServer struct {
	g Group
}

func (l *leakServer) Start(fn func()) {
	l.g.Go(fn)
}
