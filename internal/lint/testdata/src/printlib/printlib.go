// Package fixture seeds positive and negative cases for the printlib
// rule.
package fixture

import (
	"fmt"
	"io"
	"os"
)

// announce is a positive: prints to process stdout from library code.
func announce() {
	fmt.Println("hello")
}

// announcef is a positive.
func announcef(x int) {
	fmt.Printf("%d\n", x)
}

// grab is a positive: handing os.Stdout around is still a write path.
func grab() io.Writer {
	return os.Stdout
}

// render is a negative: the library discipline — callers own the writer.
func render(w io.Writer, x int) {
	fmt.Fprintf(w, "%d\n", x)
}

// complain is a negative: only stdout is result-bearing; stderr
// diagnostics are out of the rule's scope.
func complain() {
	fmt.Fprintln(os.Stderr, "bad")
}

// waived is a negative: the escape hatch with a reason.
func waived() {
	//motlint:ignore printlib fixture demonstrating the escape hatch
	fmt.Println("progress")
}
