// Package fixture seeds positive and negative cases for the barego rule.
package fixture

import "sync"

// fire is a positive: an untracked goroutine.
func fire(fn func()) {
	go fn()
}

// pooled is a positive even though it waits: the launch bypasses
// track.Group, so the lint tier cannot see the pool.
func pooled(n int, fn func()) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}

// inline is a negative: no goroutine, just a call.
func inline(fn func()) {
	fn()
}

// waived is a negative: the escape hatch with a reason.
func waived(fn func()) {
	//motlint:ignore barego fixture demonstrating the escape hatch
	go fn()
}
