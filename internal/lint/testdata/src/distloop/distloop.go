// Package fixture seeds positive and negative cases for the distloop
// rule. Fixtures cannot import module packages, so it declares its own
// Metric with the same method shapes as repro/internal/graph.Metric.
package fixture

// Metric mimics graph.Metric's query surface.
type Metric struct{ n int }

// Dist returns a fake distance.
func (m *Metric) Dist(u, v int) float64 { return float64(v - u) }

// Row returns a fake distance row.
func (m *Metric) Row(u int) []float64 { return make([]float64, m.n) }

// source returns a loop-varying node.
func source(i int) int { return i % 7 }

// sumFromAnchor is a positive: the first argument is loop-invariant, so
// every iteration re-resolves the same row.
func sumFromAnchor(m *Metric, anchor int, targets []int) float64 {
	total := 0.0
	for _, v := range targets {
		total += m.Dist(anchor, v)
	}
	return total
}

// sumHoisted is the negative fix: one Row call, indexed in the loop.
func sumHoisted(m *Metric, anchor int, targets []int) float64 {
	total := 0.0
	row := m.Row(anchor)
	for _, v := range targets {
		total += row[v]
	}
	return total
}

// sumPairwise is a negative: the source varies with the loop.
func sumPairwise(m *Metric, nodes []int) float64 {
	total := 0.0
	for _, u := range nodes {
		total += m.Dist(u, nodes[0])
	}
	return total
}

// sumWalk is a negative: the source is reassigned inside the loop.
func sumWalk(m *Metric, start int, steps []int) float64 {
	total := 0.0
	prev := start
	for _, v := range steps {
		total += m.Dist(prev, v)
		prev = v
	}
	return total
}

// sumCalls is a negative: a call argument may change per iteration.
func sumCalls(m *Metric, k int) float64 {
	total := 0.0
	for i := 0; i < k; i++ {
		total += m.Dist(source(i), i)
	}
	return total
}

// onceOutside is a negative: no loop at all.
func onceOutside(m *Metric, u, v int) float64 {
	return m.Dist(u, v)
}

// manualCounter is a negative: `for u = 0; ...; u++` marks u varying via
// the post statement even though u is declared outside the loop.
func manualCounter(m *Metric, k int) float64 {
	total := 0.0
	var u int
	for u = 0; u < k; u++ {
		total += m.Dist(u, 0)
	}
	return total
}

// waived is a negative: the escape hatch with a reason.
func waived(m *Metric, anchor int, targets []int) float64 {
	total := 0.0
	for _, v := range targets {
		//motlint:ignore distloop fixture demonstrating the escape hatch
		total += m.Dist(anchor, v)
	}
	return total
}
