// Package fixture seeds the printlib per-file allowlist: under the
// default policy both files are flagged; when export.go alone is named in
// PrintAllowedFiles, only this file's findings must remain.
package fixture

import "fmt"

// announce is a positive in every configuration.
func announce() {
	fmt.Println("progress")
}
