package fixture

import (
	"fmt"
	"os"
)

// dump mirrors an exporter entry point (internal/obs's Dump): a positive
// under the default policy, waived when this file is in
// PrintAllowedFiles.
func dump() {
	fmt.Fprintln(os.Stdout, "artifact")
}
