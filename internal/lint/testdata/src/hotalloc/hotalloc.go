// Package hotalloc exercises the hotalloc rule: //motlint:hotpath
// functions and their statically-reachable callees must not allocate;
// error and panic contexts are cold, waived call edges prune
// propagation, and constructor shapes are exempt.
package hotalloc

import (
	"errors"
	"fmt"
)

type buf struct {
	scratch []int
	n       int
}

//motlint:hotpath
func (b *buf) Hot(vs []int, label string) int {
	total := 0
	for _, v := range vs {
		total += v
	}
	m := map[int]int{}
	_ = m
	s := make([]int, 0, 8)
	_ = s
	b.scratch = append(b.scratch, total)
	b.scratch = append(b.scratch[:0], total)
	msg := label + "!"
	_ = msg
	_ = fmt.Sprint(total)
	p := &buf{}
	_ = p
	helper(b)
	waived(b) //motlint:ignore hotalloc lazy fill is off the hot path
	if total < 0 {
		_ = fail(total)
	}
	return total
}

//motlint:hotpath
func Convert(s string, sink func(any)) int {
	bs := []byte(s)
	n := 0
	f := func() { n++ }
	f()
	sink(n)
	return len(bs) + variadicSum(1, 2)
}

//motlint:hotpath
func MustIndex(vs []int, i int) int {
	if i >= len(vs) {
		panic(fmt.Sprintf("index %d out of range", i))
	}
	return vs[i]
}

//motlint:hotpath
func Checked(vs []int, i int) (int, error) {
	if i >= len(vs) {
		return 0, fmt.Errorf("index %d out of range", i)
	}
	return vs[i], nil
}

//motlint:hotpath
func Spawn() *buf {
	return NewBuf()
}

// NewBuf is a constructor shape: allocation is its whole job, and the
// hot obligation never follows the Spawn → NewBuf edge.
func NewBuf() *buf {
	return &buf{scratch: make([]int, 0, 4)}
}

// helper is hot by propagation from buf.Hot.
func helper(b *buf) {
	b.n = len(b.scratch)
	b.scratch = append(b.scratch, b.n)
}

// waived is reached only through a waived edge and stays unchecked.
func waived(b *buf) {
	b.scratch = append(b.scratch, 1)
}

// fail is reached only through a cold (error-typed) context.
func fail(n int) error {
	return errors.New("negative total")
}

func variadicSum(vs ...int) int {
	t := 0
	for _, v := range vs {
		t += v
	}
	return t
}
