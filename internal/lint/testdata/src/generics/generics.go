// Package generics proves the engine survives instantiation syntax:
// analyzers see through explicit f[T](…) and box[T]{…} shapes instead
// of panicking or silently skipping, and hot-path propagation follows
// generic call edges.
package generics

type number interface {
	~int | ~float64
}

func sum[T number](vs []T) T {
	var t T
	for _, v := range vs {
		t += v
	}
	return t
}

type box[T any] struct {
	v T
}

func (b *box[T]) get() T { return b.v }

//motlint:hotpath
func Total(vs []int) int {
	return sum[int](vs) + plain(vs)
}

// plain is hot via Total: the generic call beside it must not hide the
// chain.
func plain(vs []int) int {
	out := make([]int, len(vs))
	copy(out, vs)
	return len(out)
}

func Boxed(v int) int {
	b := box[int]{v: v}
	return b.get()
}
