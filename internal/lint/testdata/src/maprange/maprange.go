// Package fixture seeds positive and negative cases for the maprange
// rule. want.txt next to this file pins the exact findings.
package fixture

import (
	"fmt"
	"io"
	"sort"
)

// keysUnsorted is a positive: appends map keys into an outer slice and
// never sorts them.
func keysUnsorted(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

// keysSorted is a negative: the sorted-keys helper shape the rule asks
// for (collect, then sort in the same function).
func keysSorted(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// dump is a positive: writes during the iteration, so the byte order is
// the map's randomized order.
func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// total is a positive: float addition is not associative, so the sum
// depends on iteration order.
func total(m map[string]float64) float64 {
	var t float64
	for _, v := range m {
		t += v
	}
	return t
}

// join is a positive: string concatenation in map order.
func join(m map[string]string) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}

// count is a negative: integer accumulation commutes.
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// sliceDump is a negative: ranging over a slice is ordered.
func sliceDump(w io.Writer, xs []int) {
	for i, x := range xs {
		fmt.Fprintf(w, "%d=%d\n", i, x)
	}
}

// waived is a negative: the escape hatch with a reason.
func waived(m map[int]string) []int {
	var out []int
	//motlint:ignore maprange caller sorts; keeping the fixture honest
	for k := range m {
		out = append(out, k)
	}
	return out
}
