// Package multirule exercises one line carrying findings from two
// different rules: an ignore for one rule must not suppress the other.
package multirule

import (
	"fmt"
	"time"
)

func Both() {
	fmt.Println(time.Now())
}

func HalfWaived() {
	//motlint:ignore walltime logged wall-clock is fine here
	fmt.Println(time.Now())
}

func FullyWaived() {
	//motlint:ignore walltime,printlib driver-style output in a fixture
	fmt.Println(time.Now())
}
