// Package fixture seeds positive and negative cases for the globalrand
// rule.
package fixture

import "math/rand"

// roll is a positive: draws from the process-global source.
func roll() int {
	return rand.Intn(6)
}

// reseed is a positive: rand.Seed mutates global state.
func reseed() {
	rand.Seed(42)
}

// shuffle is a positive: global-source permutation.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// stream is a negative: the approved constructors for a seeded stream.
func stream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// draw is a negative: method calls on a seeded *rand.Rand are the
// discipline, not a violation.
func draw(r *rand.Rand) int {
	return r.Intn(6)
}

// waived is a negative: the escape hatch with a reason.
func waived() float64 {
	//motlint:ignore globalrand fixture demonstrating the escape hatch
	return rand.Float64()
}
