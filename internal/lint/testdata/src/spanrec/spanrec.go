// Package fixture pins the observability determinism rule: span-recording
// library code never reads the wall clock. Spans are timed on logical or
// simulated clocks handed in by the substrate (internal/obs's contract);
// a time.Now inside a recorder makes trace bytes machine-dependent.
package fixture

import "time"

// span is a miniature of an obs span: start/end on a float64 clock.
type span struct {
	start, end float64
}

// beginWall is a positive: stamping a span from the machine clock.
func beginWall() span {
	return span{start: float64(time.Now().UnixNano())}
}

// endWall is a positive: measuring a span with the machine clock.
func endWall(sp *span, t0 time.Time) {
	sp.end = sp.start + time.Since(t0).Seconds()
}

// beginAt is a negative — the discipline: the caller owns the clock
// (operation count, simulated time, or a cost accumulator) and passes
// the stamp in.
func beginAt(at float64) span {
	return span{start: at}
}

// endAt is a negative.
func endAt(sp *span, at float64) {
	sp.end = at
}
