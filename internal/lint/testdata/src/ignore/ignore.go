// Package fixture exercises the //motlint:ignore directive machinery:
// malformed directives are findings themselves, well-formed ones waive
// rules on their own line and the line below.
package fixture

import "time"

// bad1 has a reasonless directive: the directive is reported AND does not
// waive, so the walltime finding fires too.
//
//motlint:ignore walltime
func bad1() time.Time { return time.Now() }

// bad2 names a rule that does not exist.
func bad2() time.Time {
	//motlint:ignore nosuchrule because reasons
	return time.Now()
}

// listForm waives several rules at once.
func listForm() time.Time {
	//motlint:ignore walltime,printlib comma list covers both rules
	return time.Now()
}

// sameLine puts the directive after the statement.
func sameLine() time.Time {
	return time.Now() //motlint:ignore walltime same-line directive
}

// allForm uses the "all" wildcard.
func allForm() time.Time {
	//motlint:ignore all migration shim, remove with the next refactor
	return time.Now()
}
