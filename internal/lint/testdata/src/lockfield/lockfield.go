// Package lockfield exercises the lockfield rule: fields written under
// a mutex become guarded by it, atomic fields must never be touched
// plain, unexported helpers inherit their callers' locks, and lock
// acquisition order must be consistent.
package lockfield

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	count int
	hits  int64
	gauge int
}

func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
}

func (c *counter) Peek() int {
	return c.count
}

func (c *counter) Hit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) Hits() int64 {
	return c.hits
}

func (c *counter) SetGauge(v int) {
	c.rw.Lock()
	defer c.rw.Unlock()
	c.gauge = v
}

func (c *counter) Gauge() int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.gauge
}

// bump inherits the lock from its only caller: every path into it
// already holds mu, so the plain write is fine.
func (c *counter) bump() {
	c.count++
}

func (c *counter) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump()
}

type pair struct {
	a sync.Mutex
	b sync.Mutex
	x int
	y int
}

func (p *pair) Forward() {
	p.a.Lock()
	p.b.Lock()
	p.x++
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) Backward() {
	p.b.Lock()
	p.a.Lock()
	p.y++
	p.a.Unlock()
	p.b.Unlock()
}

type twin struct {
	m1 sync.Mutex
	m2 sync.Mutex
	v  int
}

func (t *twin) A() {
	t.m1.Lock()
	t.v++
	t.m1.Unlock()
}

func (t *twin) B() {
	t.m2.Lock()
	t.v++
	t.m2.Unlock()
}
