package lint

import "go/ast"

// randConstructors are the math/rand package-level functions that build
// explicitly seeded generators — the approved discipline — rather than
// drawing from the process-global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// GlobalRand forbids package-level math/rand calls (rand.Intn, rand.Seed,
// rand.Shuffle, …) outside the allowlisted packages. Global-source
// randomness is invisible to the (baseSeed, size, seedIndex) stream
// discipline, so one stray call makes a sweep cell irreproducible.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid global-source math/rand calls; randomness must flow through seeded *rand.Rand streams",
	Run: func(p *Pass) {
		if pathAllowed(p.Cfg.GlobalRandAllowed, p.Path) {
			return
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, name, ok := pkgFunc(p.Info, call)
				if !ok || (pkg != "math/rand" && pkg != "math/rand/v2") || randConstructors[name] {
					return true
				}
				p.Reportf(call.Pos(),
					"rand.%s draws from the global source; derive a seeded *rand.Rand (mobility.StreamSeed discipline) instead", name)
				return true
			})
		}
	},
}
