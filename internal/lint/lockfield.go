package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockField enforces the lock discipline on structs that embed a
// sync.Mutex / sync.RWMutex field:
//
//   - A data field written while holding exactly one of the struct's
//     mutexes becomes guarded by it. Every other plain access must hold
//     the same mutex — a write needs the write lock, a read accepts
//     RLock — either directly or inherited: an unexported function whose
//     callers all hold the lock is checked as lock-held (the helper
//     idiom: exported ops lock, helpers assume).
//   - A field touched through sync/atomic (atomic.AddInt64(&s.f, …))
//     must never be accessed plain anywhere in the package.
//   - Lock acquisition order must be consistent: if one function locks
//     A then B while another locks B then A, the later edge is flagged.
//
// Constructor shapes (init, New*) run before the value is shared and are
// exempt. Association is deliberately first-wins in source order, so a
// conflicting second guard is itself the finding.
var LockField = &Analyzer{
	Name: "lockfield",
	Doc:  "mutex-guarded struct fields must not be accessed plain; lock order must be consistent",
	Run:  runLockField,
}

// lfAccess is one plain receiver-field access inside a method.
type lfAccess struct {
	field *types.Var
	pos   token.Pos
	write bool
}

// lfMethod is the per-function summary the rule checks against.
type lfMethod struct {
	decl    *ast.FuncDecl
	obj     types.Object
	name    string
	wLocks  map[*types.Var]bool // mutex fields Lock()ed anywhere in the body
	rLocks  map[*types.Var]bool // mutex fields RLock()ed
	access  []lfAccess
	atomics map[*types.Var]bool // fields passed as &recv.f to sync/atomic
}

func runLockField(p *Pass) {
	if pathAllowed(p.Cfg.LockFieldAllowed, p.Path) {
		return
	}

	// Structs declared in this package that carry at least one mutex
	// field; per-struct data fields eligible for guarding.
	mutexOwner := map[*types.Var]string{} // mutex field → struct name
	dataOwner := map[*types.Var]string{}  // data field → struct name
	guarded := map[*types.Named]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue // methods live with the defining package
				}
				named, ok := tn.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				var mutexes, data []*types.Var
				for i := 0; i < st.NumFields(); i++ {
					fld := st.Field(i)
					if isSyncMutex(fld.Type()) {
						mutexes = append(mutexes, fld)
					} else if !isSyncType(fld.Type()) {
						data = append(data, fld)
					}
				}
				if len(mutexes) == 0 {
					continue
				}
				guarded[named] = true
				for _, m := range mutexes {
					mutexOwner[m] = tn.Name()
				}
				for _, d := range data {
					dataOwner[d] = tn.Name()
				}
			}
		}
	}
	if len(guarded) == 0 {
		return
	}

	// Summarize every method on a guarded struct, in source order.
	var methods []*lfMethod
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvNamed := namedRecv(p.Info, fd)
			if recvNamed == nil || !guarded[recvNamed] {
				continue
			}
			if len(fd.Recv.List[0].Names) == 0 {
				continue // unnamed receiver cannot touch fields
			}
			recvVar, ok := p.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
			if !ok {
				continue
			}
			methods = append(methods, summarizeMethod(p, fd, recvVar, mutexOwner, dataOwner))
		}
	}

	// Atomic fields are a package-wide property.
	atomicFields := map[*types.Var]bool{}
	for _, m := range methods {
		for fld := range m.atomics {
			atomicFields[fld] = true
		}
	}

	// Guard association: first write under exactly one held write-lock
	// wins; a conflicting later association is the finding.
	guard := map[*types.Var]*types.Var{} // data field → mutex field
	guardIn := map[*types.Var]string{}   // data field → method that established it
	for _, m := range methods {
		if isCtorShape(m.name) || len(m.wLocks) != 1 {
			continue
		}
		var mu *types.Var
		for g := range m.wLocks {
			mu = g
		}
		for _, a := range m.access {
			if !a.write || atomicFields[a.field] {
				continue
			}
			if g, ok := guard[a.field]; ok {
				if g != mu {
					p.Reportf(a.pos, "%s.%s is guarded by %s (established in %s) but written here under %s",
						dataOwner[a.field], a.field.Name(), g.Name(), guardIn[a.field], mu.Name())
				}
				continue
			}
			guard[a.field] = mu
			guardIn[a.field] = m.name
		}
	}

	// Held-lock inheritance for unexported helpers: a helper is checked
	// as holding the locks every one of its callers holds. Monotone
	// shrink-from-full fixpoint over the flow pass's caller edges.
	heldW := map[types.Object]map[*types.Var]bool{}
	heldR := map[types.Object]map[*types.Var]bool{}
	byObj := map[types.Object]*lfMethod{}
	universe := map[*types.Var]bool{}
	for mu := range mutexOwner {
		universe[mu] = true
	}
	for _, m := range methods {
		byObj[m.obj] = m
		if m.obj != nil && !m.obj.Exported() && !isCtorShape(m.name) {
			heldW[m.obj] = copySet(universe)
			heldR[m.obj] = copySet(universe)
		} else {
			heldW[m.obj] = map[*types.Var]bool{}
			heldR[m.obj] = map[*types.Var]bool{}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			if m.obj == nil || m.obj.Exported() || isCtorShape(m.name) {
				continue
			}
			callers := p.Flow.CallersOf(m.obj)
			nextW := copySet(universe)
			nextR := copySet(universe)
			if len(callers) == 0 {
				nextW, nextR = map[*types.Var]bool{}, map[*types.Var]bool{}
			}
			for _, c := range callers {
				cm := byObj[c.Obj]
				var cw, cr map[*types.Var]bool
				if cm != nil {
					cw = unionSets(cm.wLocks, heldW[cm.obj])
					cr = unionSets(cm.rLocks, unionSets(heldR[cm.obj], cw))
				}
				nextW = intersectSets(nextW, cw)
				nextR = intersectSets(nextR, cr)
			}
			if !sameSet(nextW, heldW[m.obj]) || !sameSet(nextR, heldR[m.obj]) {
				heldW[m.obj], heldR[m.obj] = nextW, nextR
				changed = true
			}
		}
	}

	// Access checks.
	for _, m := range methods {
		if isCtorShape(m.name) {
			continue
		}
		hw := unionSets(m.wLocks, heldW[m.obj])
		hr := unionSets(m.rLocks, unionSets(heldR[m.obj], hw))
		for _, a := range m.access {
			if atomicFields[a.field] && !m.atomics[a.field] {
				p.Reportf(a.pos, "%s.%s is accessed via sync/atomic elsewhere; plain access races",
					dataOwner[a.field], a.field.Name())
				continue
			}
			g, ok := guard[a.field]
			if !ok || atomicFields[a.field] {
				continue
			}
			if a.write && !hw[g] {
				p.Reportf(a.pos, "write to %s.%s without holding %s",
					dataOwner[a.field], a.field.Name(), g.Name())
			} else if !a.write && !hr[g] {
				p.Reportf(a.pos, "read of %s.%s without holding %s (RLock suffices)",
					dataOwner[a.field], a.field.Name(), g.Name())
			}
		}
	}

	checkLockOrder(p, methods, mutexOwner)
}

// checkLockOrder scans each body linearly, tracking which receiver
// mutexes are held at each Lock call, and flags the lexically later edge
// of any A→B / B→A pair.
func checkLockOrder(p *Pass, methods []*lfMethod, mutexOwner map[*types.Var]string) {
	type edge struct {
		from, to *types.Var
		pos      token.Pos
		fn       string
	}
	var edges []edge
	for _, m := range methods {
		deferred := deferredCalls(m.decl.Body)
		var held []*types.Var
		ast.Inspect(m.decl.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false // closures run on their own schedule
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			mu, op := mutexCall(p.Info, call, mutexOwner)
			if mu == nil {
				return true
			}
			switch op {
			case "Lock", "RLock":
				for _, h := range held {
					if h != mu {
						edges = append(edges, edge{from: h, to: mu, pos: call.Pos(), fn: m.name})
					}
				}
				held = append(held, mu)
			case "Unlock", "RUnlock":
				if deferred[call] {
					break // released at return; held for the rest of the body
				}
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == mu {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
			return true
		})
	}
	// First occurrence of each directed pair; report the later direction.
	first := map[[2]*types.Var]edge{}
	for _, e := range edges {
		k := [2]*types.Var{e.from, e.to}
		if _, ok := first[k]; !ok {
			first[k] = e
		}
	}
	for _, e := range edges {
		rev, ok := first[[2]*types.Var{e.to, e.from}]
		if !ok || rev.pos >= e.pos {
			continue
		}
		file, line, _ := p.rel(rev.pos)
		p.Reportf(e.pos, "lock order %s.%s → %s.%s in %s conflicts with the %s → %s order at %s:%d (in %s)",
			mutexOwner[e.from], e.from.Name(), mutexOwner[e.to], e.to.Name(), e.fn,
			e.to.Name(), e.from.Name(), file, line, rev.fn)
	}
}

// summarizeMethod records a method's lock calls, atomic uses, and plain
// receiver-field accesses.
func summarizeMethod(p *Pass, fd *ast.FuncDecl, recv *types.Var,
	mutexOwner map[*types.Var]string, dataOwner map[*types.Var]string) *lfMethod {
	m := &lfMethod{
		decl: fd, obj: p.Info.Defs[fd.Name], name: funcDisplayName(p.Info.Defs[fd.Name].(*types.Func)),
		wLocks: map[*types.Var]bool{}, rLocks: map[*types.Var]bool{},
		atomics: map[*types.Var]bool{},
	}

	// Selector nodes consumed by lock calls or atomic arguments are not
	// plain accesses; assignment spines are writes.
	consumed := map[*ast.SelectorExpr]bool{}
	writes := map[*ast.SelectorExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if sel := spineField(p.Info, lhs, recv); sel != nil {
					writes[sel] = true
				}
			}
		case *ast.IncDecStmt:
			if sel := spineField(p.Info, x.X, recv); sel != nil {
				writes[sel] = true
			}
		case *ast.CallExpr:
			if mu, op := mutexCall(p.Info, x, mutexOwner); mu != nil {
				switch op {
				case "Lock":
					m.wLocks[mu] = true
				case "RLock":
					m.rLocks[mu] = true
				}
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					if inner, ok := sel.X.(*ast.SelectorExpr); ok {
						consumed[inner] = true
					}
				}
			}
			if path, _, ok := pkgFunc(p.Info, x); ok && path == "sync/atomic" {
				for _, arg := range x.Args {
					ue, isAddr := arg.(*ast.UnaryExpr)
					if !isAddr || ue.Op != token.AND {
						continue
					}
					if sel, isSel := ue.X.(*ast.SelectorExpr); isSel {
						if fld := recvField(p.Info, sel, recv); fld != nil {
							m.atomics[fld] = true
							consumed[sel] = true
						}
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || consumed[sel] {
			return true
		}
		fld := recvField(p.Info, sel, recv)
		if fld == nil {
			return true
		}
		if _, isData := dataOwner[fld]; !isData {
			return true
		}
		m.access = append(m.access, lfAccess{field: fld, pos: sel.Pos(), write: writes[sel]})
		return true
	})
	return m
}

// mutexCall matches recv.mu.Lock() shapes: a Lock/Unlock/RLock/RUnlock
// method call whose base is a known mutex field of the receiver.
func mutexCall(info *types.Info, call *ast.CallExpr, mutexOwner map[*types.Var]string) (*types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	s, ok := info.Selections[inner]
	if !ok {
		return nil, ""
	}
	fld, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, ""
	}
	if _, known := mutexOwner[fld]; !known {
		return nil, ""
	}
	return fld, op
}

// recvField resolves sel to a field of the method receiver: its base
// must be the receiver identifier itself.
func recvField(info *types.Info, sel *ast.SelectorExpr, recv *types.Var) *types.Var {
	id, ok := sel.X.(*ast.Ident)
	if !ok || info.Uses[id] != recv {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	fld, _ := s.Obj().(*types.Var)
	return fld
}

// spineField walks an assignment target's access spine (x.f[i].g = …)
// down its .X chain and returns the receiver-field selector being
// mutated, if any. Index subscripts are off-spine and stay reads.
func spineField(info *types.Info, e ast.Expr, recv *types.Var) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if fld := recvField(info, x, recv); fld != nil {
				return x
			}
			e = x.X
		default:
			return nil
		}
	}
}

// namedRecv returns the (possibly pointer-wrapped) named receiver type.
func namedRecv(info *types.Info, fd *ast.FuncDecl) *types.Named {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func isSyncMutex(t types.Type) bool {
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// isSyncType reports whether t comes from sync or sync/atomic —
// synchronization state is never a guarded data field.
func isSyncType(t types.Type) bool {
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	p := named.Obj().Pkg().Path()
	return p == "sync" || p == "sync/atomic"
}

// isCtorShape reports whether name is a constructor-like function that
// runs before the value is shared.
func isCtorShape(name string) bool {
	base := name
	if i := lastDot(name); i >= 0 {
		base = name[i+1:]
	}
	return base == "init" || (len(base) >= 3 && base[:3] == "New")
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// deferredCalls collects the call expressions inside defer statements.
func deferredCalls(body ast.Node) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			out[d.Call] = true
		}
		return true
	})
	return out
}

func copySet(s map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func unionSets(a, b map[*types.Var]bool) map[*types.Var]bool {
	out := copySet(a)
	for k := range b {
		out[k] = true
	}
	return out
}

func intersectSets(a, b map[*types.Var]bool) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func sameSet(a, b map[*types.Var]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
