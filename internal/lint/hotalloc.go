package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc enforces the zero-allocation discipline on annotated hot
// paths. A function marked //motlint:hotpath — and everything it reaches
// through statically-resolvable intra-module calls, up to
// Config.HotPathDepth — must not contain allocation-inducing constructs:
//
//   - make, new, map/slice literals, heap composite literals (&T{…})
//   - append, unless the base is an explicit x[:0] reuse reslice
//   - fmt.* calls and non-constant string concatenation
//   - string ↔ []byte / []rune conversions
//   - escaping closures (captures state and is not a direct call argument)
//   - interface boxing at call sites and non-spread variadic calls
//
// Error-handling and panic contexts are cold (a failing operation pays
// its allocation once); value struct literals are fine (they stay on the
// stack). A //motlint:ignore hotalloc at a call site additionally prunes
// propagation into the callee — the escape hatch for lazy first-touch
// fills and config-gated slow paths. The static verdict is pinned
// dynamically by the 0 allocs/op benches.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//motlint:hotpath functions and their static callees must not allocate",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) {
	if pathAllowed(p.Cfg.HotAllocAllowed, p.Path) {
		return
	}
	if p.Flow == nil {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hi := p.Flow.HotOf(p.Info.Defs[fd.Name])
			if hi == nil {
				continue
			}
			checkHotFunc(p, fd, hi)
		}
	}
}

func checkHotFunc(p *Pass, fd *ast.FuncDecl, hi *HotInfo) {
	cold := coldRanges(p.Info, fd.Body)

	// Function literals passed directly as call arguments do not escape
	// through the call in the common case (sort.Search, sync.Once.Do);
	// only closures that outlive the call are charged.
	directArg := map[*ast.FuncLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			for _, a := range call.Args {
				if fl, isLit := a.(*ast.FuncLit); isLit {
					directArg[fl] = true
				}
			}
		}
		return true
	})

	report := func(pos token.Pos, what string) {
		p.Reportf(pos, "%s%s", what, hi.suffix())
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if inCold(cold, n.Pos()) {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			if capturesOuter(p.Info, x, fd) && !directArg[x] {
				report(x.Pos(), "escaping closure allocates on a hot path")
			}
			// The literal's body runs on its own path (goroutine,
			// callback) — it is not scanned as part of this one.
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isLit := x.X.(*ast.CompositeLit); isLit {
					report(x.Pos(), "heap composite literal (&T{…}) allocates on a hot path")
					return false
				}
			}
		case *ast.CompositeLit:
			if tv, ok := p.Info.Types[x]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					report(x.Pos(), "map literal allocates on a hot path")
					return false
				case *types.Slice:
					report(x.Pos(), "slice literal allocates on a hot path")
					return false
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := p.Info.Types[x]; ok && tv.Value == nil && isStringType(tv.Type) {
					report(x.Pos(), "string concatenation allocates on a hot path")
					return false // one finding per concat chain
				}
			}
		case *ast.CallExpr:
			checkHotCall(p, x, report)
		}
		return true
	})
}

func checkHotCall(p *Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	// Conversions: T(x). Only string ↔ []byte/[]rune copies allocate.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			if atv, has := p.Info.Types[call.Args[0]]; has && conversionAllocates(tv.Type, atv.Type) {
				report(call.Pos(), "string/byte-slice conversion allocates on a hot path")
			}
		}
		return
	}

	// Builtins.
	if id := calleeIdent(call.Fun); id != nil {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates on a hot path")
			case "new":
				report(call.Pos(), "new allocates on a hot path")
			case "append":
				if len(call.Args) > 0 && !isReuseReslice(call.Args[0]) {
					report(call.Pos(), "append may grow its backing array on a hot path (reuse a x[:0] reslice or preallocate)")
				}
			}
			return
		}
	}

	if path, name, ok := pkgFunc(p.Info, call); ok && path == "fmt" {
		report(call.Pos(), "fmt."+name+" allocates on a hot path")
		return
	}

	sig, ok := p.Info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
		report(call.Pos(), "variadic call allocates its argument slice on a hot path")
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		atv, has := p.Info.Types[arg]
		if !has || atv.Type == nil || types.IsInterface(atv.Type) {
			continue
		}
		if atv.Value != nil || atv.IsNil() {
			continue // constants convert via static interface data
		}
		if boxingAllocates(atv.Type) {
			report(arg.Pos(), "interface boxing of "+atv.Type.String()+" allocates on a hot path")
		}
	}
}

// paramTypeAt returns the declared type of parameter i, or nil for the
// variadic tail (charged as a slice allocation, not as boxing).
func paramTypeAt(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() && i >= n-1 {
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// calleeIdent unwraps a call target to its base identifier, through
// parens and generic instantiations.
func calleeIdent(fun ast.Expr) *ast.Ident {
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
			continue
		case *ast.IndexExpr:
			fun = f.X
			continue
		case *ast.IndexListExpr:
			fun = f.X
			continue
		}
		break
	}
	id, _ := fun.(*ast.Ident)
	return id
}

// isReuseReslice reports whether e has the shape x[:0] (or x[:0:c]) — an
// explicit length-zero reslice of an existing backing array, the
// sanctioned scratch-reuse idiom for append on a hot path.
func isReuseReslice(e ast.Expr) bool {
	se, ok := e.(*ast.SliceExpr)
	if !ok || se.Low != nil || se.High == nil {
		return false
	}
	lit, ok := se.High.(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// conversionAllocates reports whether converting from into to copies the
// contents: string ↔ []byte and string ↔ []rune both do.
func conversionAllocates(to, from types.Type) bool {
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// boxingAllocates reports whether converting a concrete t to an
// interface stores out-of-line data. Pointer-shaped kinds (pointers,
// channels, maps, functions, unsafe pointers) fit in the interface word.
func boxingAllocates(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() != types.UnsafePointer
	}
	return true
}

// capturesOuter reports whether lit references variables declared in the
// enclosing function outside the literal itself (including the
// receiver). Capture-free literals compile to static funcvals.
func capturesOuter(info *types.Info, lit *ast.FuncLit, encl *ast.FuncDecl) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos >= encl.Pos() && pos < encl.End() &&
			!(pos >= lit.Pos() && pos < lit.End()) {
			captured = true
			return false
		}
		return true
	})
	return captured
}
