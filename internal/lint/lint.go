// Package lint is motlint's engine: a stdlib-only static analyzer
// harness (go/parser + go/ast + go/types) that loads every package in the
// module, type-checks it, and runs a pluggable analyzer suite over the
// typed syntax trees. Findings print as "file:line: [rule] message" and
// cmd/motlint exits non-zero when any survive.
//
// The suite encodes this repository's determinism and concurrency
// invariants — the properties the golden figure tests and the -race tier
// rely on (see DESIGN.md, "Static analysis"):
//
//	maprange    map iteration feeding ordered output must sort its keys
//	globalrand  randomness flows through seeded *rand.Rand streams only
//	walltime    simulation library code never reads the wall clock
//	barego      goroutines launch via internal/runtime/track.Group only
//	printlib    library code writes to an io.Writer, never os.Stdout
//	distloop    loop-invariant Metric.Dist sources hoist to Row + index
//	hotalloc    //motlint:hotpath functions (and their static callees)
//	            must not contain allocation-inducing constructs
//	lockfield   mutex-guarded struct fields are never accessed plain,
//	            and lock acquisition order is consistent
//	meterfields every metered-struct field reaches the aggregators and
//	            the CSV header (no silently droppable costs)
//	ctxleak     every track.Group launch has a reachable Wait
//
// The last four are flow-aware: they consult a module-wide call graph
// and hot-path propagation pass (see flow.go) built once per load set.
//
// A finding can be waived in place with a reasoned directive:
//
//	//motlint:ignore <rule>[,<rule>…] <reason>
//
// placed on the offending line or the line directly above it. Directives
// without a reason, or naming an unknown rule, are themselves findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a position.
type Finding struct {
	File string `json:"file"` // relative to the lint root
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// String renders the canonical "file:line: [rule] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Msg)
}

// Analyzer is one pluggable rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass hands an analyzer one type-checked package.
type Pass struct {
	Cfg   *Config
	Fset  *token.FileSet
	Path  string // import path (drives the allowlists)
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Flow is the module-wide call-graph pass (hot-path propagation,
	// caller edges, cross-package type lookup). It spans every package
	// the runner has loaded so far — the whole module under LintModule.
	Flow *Flow

	rule string
	out  *[]Finding
	rel  func(token.Pos) (string, int, int)
}

// Reportf records a finding for the pass's rule at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	file, line, col := p.rel(pos)
	*p.out = append(*p.out, Finding{
		File: file, Line: line, Col: col,
		Rule: p.rule, Msg: fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapRange, GlobalRand, WallTime, BareGo, PrintLib, DistLoop,
		HotAlloc, LockField, MeterFields, CtxLeak,
	}
}

// Runner loads, type-checks, and lints packages. It caches packages
// across the run, so shared dependencies are checked once.
type Runner struct {
	cfg       Config
	analyzers []*Analyzer
	fset      *token.FileSet
	std       types.Importer
	pkgs      map[string]*pkgInfo
	loading   map[string]bool
	moduleDir string
	base      string // findings are reported relative to this directory

	// flowCache memoizes the flow pass; it rebuilds whenever load()
	// brings in a package the cached graph has not seen.
	flowCache *Flow
	flowN     int
}

// flow returns the flow pass over everything loaded so far.
func (r *Runner) flow() *Flow {
	if r.flowCache == nil || r.flowN != len(r.pkgs) {
		r.flowCache = buildFlow(r)
		r.flowN = len(r.pkgs)
	}
	return r.flowCache
}

type pkgInfo struct {
	path  string
	dir   string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// NewRunner builds a runner over cfg with the given analyzers (usually
// All()).
func NewRunner(cfg Config, analyzers ...*Analyzer) *Runner {
	fset := token.NewFileSet()
	return &Runner{
		cfg:       cfg,
		analyzers: analyzers,
		fset:      fset,
		// The source importer type-checks stdlib dependencies from
		// $GOROOT/src — no export data or go tool invocation needed.
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*pkgInfo{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer: module-internal paths resolve against
// the module directory (and get linted later from the same parse);
// everything else falls through to the stdlib source importer.
func (r *Runner) Import(path string) (*types.Package, error) {
	mod := r.cfg.ModulePath
	if mod != "" && (path == mod || strings.HasPrefix(path, mod+"/")) {
		if r.moduleDir == "" {
			return nil, fmt.Errorf("lint: import %q outside a module load", path)
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(path, mod), "/")
		pi, err := r.load(filepath.Join(r.moduleDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pi.pkg, nil
	}
	return r.std.Import(path)
}

// load parses and type-checks the non-test Go files of one directory.
func (r *Runner) load(dir, path string) (*pkgInfo, error) {
	if pi, ok := r.pkgs[path]; ok {
		return pi, nil
	}
	if r.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	r.loading[path] = true
	defer delete(r.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(r.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		// Instances resolves generic functions and types at their use
		// sites, so the suite sees through explicit instantiations
		// (f[int](…)) instead of panicking or silently skipping them.
		Instances: map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: r}
	pkg, err := conf.Check(path, r.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pi := &pkgInfo{path: path, dir: dir, files: files, pkg: pkg, info: info}
	r.pkgs[path] = pi
	return pi, nil
}

// LintModule lints every package under the module rooted at root (the
// directory holding go.mod). Directories named testdata, hidden
// directories, and _-prefixed directories are skipped, mirroring the go
// tool.
func (r *Runner) LintModule(root string) ([]Finding, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return nil, fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	r.moduleDir = root
	r.base = root

	dirSet := map[string]bool{}
	err = filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dirSet[filepath.Dir(p)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	pathOf := func(dir string) (string, error) {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return "", err
		}
		path := r.cfg.ModulePath
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		return path, nil
	}

	// Preload everything before linting anything: the flow-aware rules
	// need caller edges and hot chains that cross package boundaries, so
	// the call graph must span the whole module before the first pass.
	for _, dir := range dirs {
		path, err := pathOf(dir)
		if err != nil {
			return nil, err
		}
		if _, err := r.load(dir, path); err != nil {
			return nil, err
		}
	}

	var all []Finding
	for _, dir := range dirs {
		path, err := pathOf(dir)
		if err != nil {
			return nil, err
		}
		fs, err := r.LintPackage(dir, path)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sortFindings(all)
	return all, nil
}

// LintDir lints the single package in dir as part of the module rooted
// at root: the import path is derived from dir's position in the module,
// and findings are reported relative to root. Used by cmd/motlint to
// lint one directory (e.g. a seeded fixture) instead of the whole tree.
func (r *Runner) LintDir(root, dir string) ([]Finding, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	dir, err = filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module root %s", dir, root)
	}
	r.moduleDir = root
	r.base = root
	path := r.cfg.ModulePath
	if rel != "." {
		path += "/" + filepath.ToSlash(rel)
	}
	return r.LintPackage(dir, path)
}

// LintPackage lints a single directory as the package with the given
// import path (the path decides which allowlists apply). Findings are
// reported relative to the runner's base directory (the module root for
// LintModule; dir itself for a standalone call).
func (r *Runner) LintPackage(dir, path string) ([]Finding, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if r.base == "" {
		r.base = dir
	}
	pi, err := r.load(dir, path)
	if err != nil {
		return nil, err
	}

	rel := func(pos token.Pos) (string, int, int) {
		pp := r.fset.Position(pos)
		name := pp.Filename
		if rp, err := filepath.Rel(r.base, name); err == nil && !strings.HasPrefix(rp, "..") {
			name = filepath.ToSlash(rp)
		}
		return name, pp.Line, pp.Column
	}

	var out []Finding
	ign := parseIgnores(r.fset, pi.files, rel, &out)
	flow := r.flow()
	for _, a := range r.analyzers {
		p := &Pass{
			Cfg: &r.cfg, Fset: r.fset, Path: path,
			Files: pi.files, Pkg: pi.pkg, Info: pi.info, Flow: flow,
			rule: a.Name, out: &out, rel: rel,
		}
		a.Run(p)
	}
	kept := out[:0]
	for _, f := range out {
		if ign.covers(f) {
			continue
		}
		kept = append(kept, f)
	}
	sortFindings(kept)
	return kept, nil
}

// SortFindings orders findings by (file, line, col, rule) — the
// canonical report order. Lint calls already return sorted slices;
// callers that concatenate several runs re-sort with this.
func SortFindings(fs []Finding) { sortFindings(fs) }

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// ignoreSet records which rules are waived on which lines of which files.
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) covers(f Finding) bool {
	return s[f.File] != nil && s[f.File][f.Line] != nil &&
		(s[f.File][f.Line][f.Rule] || s[f.File][f.Line]["all"])
}

func (s ignoreSet) add(file string, line int, rule string) {
	if s[file] == nil {
		s[file] = map[int]map[string]bool{}
	}
	if s[file][line] == nil {
		s[file][line] = map[string]bool{}
	}
	s[file][line][rule] = true
}

const ignorePrefix = "//motlint:ignore"

// parseIgnores collects //motlint:ignore directives. A directive waives
// its rules on its own line and on the line directly below, so it works
// both trailing a statement and on the line above one. Malformed
// directives (no reason, or an unknown rule) are reported as findings
// under the pseudo-rule "motlint". Rule names validate against the full
// registry (All), not the active subset, so a -rules run never flags a
// directive for a disabled rule.
func parseIgnores(fset *token.FileSet, files []*ast.File,
	rel func(token.Pos) (string, int, int), out *[]Finding) ignoreSet {
	known := map[string]bool{"all": true}
	for _, a := range All() {
		known[a.Name] = true
	}
	ign := ignoreSet{}
	bad := func(pos token.Pos, msg string) {
		file, line, col := rel(pos)
		*out = append(*out, Finding{File: file, Line: line, Col: col, Rule: "motlint", Msg: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad(c.Pos(), "malformed ignore directive: want //motlint:ignore <rule>[,<rule>…] <reason>")
					continue
				}
				rules := strings.Split(fields[0], ",")
				ok := true
				for _, rule := range rules {
					if !known[rule] {
						bad(c.Pos(), fmt.Sprintf("ignore directive names unknown rule %q", rule))
						ok = false
					}
				}
				if !ok {
					continue
				}
				file, line, _ := rel(c.Pos())
				for _, rule := range rules {
					ign.add(file, line, rule)
					ign.add(file, line+1, rule)
				}
			}
		}
	}
	return ign
}

// pkgFunc resolves a qualified call like rand.Intn to its package path
// and function name; ok is false for method calls and locals. Explicit
// generic instantiations (pkg.Func[T](…)) unwrap to the same answer.
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
			continue
		case *ast.IndexExpr:
			fun = f.X
			continue
		case *ast.IndexListExpr:
			fun = f.X
			continue
		}
		break
	}
	sel, isSel := fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
