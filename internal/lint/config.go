package lint

import (
	"go/token"
	"path/filepath"
	"strings"
)

// Config carries the per-rule allowlists. Paths are import-path prefixes
// (a prefix matches the package itself and everything below it). The
// zero-value Config forbids everything everywhere; Default() encodes this
// repository's invariants.
type Config struct {
	// ModulePath is the module's import path ("repro"); package kinds
	// (cmd, examples, library) are derived from it.
	ModulePath string

	// GlobalRandAllowed lists packages where top-level math/rand calls
	// (rand.Intn, rand.Seed, …) are permitted. Everywhere else all
	// randomness must flow through a seeded *rand.Rand (the StreamSeed
	// discipline); the constructors rand.New / rand.NewSource /
	// rand.NewZipf are always allowed.
	GlobalRandAllowed []string

	// WallTimeAllowed lists library packages that may call time.Now /
	// time.Since. cmd/ and examples/ are always allowed: wall-clock
	// timing belongs to drivers, never to simulation logic, or result
	// bytes start depending on the machine that produced them.
	WallTimeAllowed []string

	// BareGoAllowed lists library packages that may contain bare go
	// statements. Only internal/runtime/track should ever be here: it is
	// the single sanctioned launch site, so the -race tier can drain
	// every goroutine through Group.Wait.
	BareGoAllowed []string

	// PrintAllowed lists library packages that may write to os.Stdout or
	// call fmt.Print*. cmd/ and examples/ are always allowed; report
	// renderers take an io.Writer, so internal/report is here only for
	// its convenience entry points.
	PrintAllowed []string

	// PrintAllowedFiles waives printlib for single files, named as
	// "<import path>/<file name>". It exists for exporter entry points
	// (internal/obs's Dump) whose whole job is emitting the final artifact
	// to stdout: the narrow waiver keeps the rest of the package — the
	// span-recording and metrics code — under the full rule.
	PrintAllowedFiles []string

	// MapRangeAllowed lists library packages exempt from the maprange
	// rule entirely (none by default — prefer a //motlint:ignore with a
	// reason at the loop, or a sorted-keys helper).
	MapRangeAllowed []string

	// DistLoopAllowed lists library packages exempt from the distloop
	// rule (none by default — hot loops should hoist the Metric row via
	// Row and index it rather than calling Dist per iteration).
	DistLoopAllowed []string

	// HotPathDepth bounds how far the hotalloc rule propagates the
	// //motlint:hotpath obligation through the intra-module call graph:
	// an annotated function is depth 0, its static callees depth 1, and
	// so on. 0 means the default (4). Dynamic (interface) calls and
	// calls into HotAllocStop packages never propagate.
	HotPathDepth int

	// HotAllocStop lists package prefixes the hotalloc propagation never
	// descends into. These are configuration-gated cold subsystems whose
	// enabled paths legitimately allocate while their disabled fast path
	// is a pointer test (internal/obs: a nil Recorder; internal/chaos:
	// a nil Injector). The disabled-path cost is pinned dynamically by
	// the 0-allocs benches instead.
	HotAllocStop []string

	// HotAllocAllowed lists library packages exempt from hotalloc
	// entirely (none by default — prefer a reasoned //motlint:ignore at
	// the allocation or call site, which also prunes propagation).
	HotAllocAllowed []string

	// LockFieldAllowed lists packages exempt from the lockfield rule.
	LockFieldAllowed []string

	// CtxLeakAllowed lists packages exempt from the ctxleak rule.
	CtxLeakAllowed []string

	// Meters lists the metered structs whose fields must never be
	// silently droppable: every field has to be accumulated by the
	// aggregator methods and rendered by the CSV exporter (see the
	// meterfields rule).
	Meters []MeterSpec
}

// MeterSpec names one metered struct and the functions that must cover
// every one of its fields.
type MeterSpec struct {
	// Type is the struct name, matched in any package (fixture packages
	// declare their own copy, like the distloop fixture's Metric).
	Type string
	// Aggregators are function or method names in the struct's own
	// package. Each must reference every field of the struct, or
	// delegate by calling another listed aggregator.
	Aggregators []string
	// CSVPkg/CSVFunc optionally name the exporter that must mention
	// every field (snake_cased) as a column-header string literal, so a
	// field added to the meter cannot silently vanish from the artifact.
	CSVPkg  string
	CSVFunc string
}

// Default is this repository's lint policy, referenced by cmd/motlint and
// the make lint target.
func Default() Config {
	return Config{
		ModulePath:        "repro",
		GlobalRandAllowed: []string{"repro/internal/mobility"},
		// internal/obs/live is the wall-clock half of the two-layer obs
		// contract (DESIGN.md "Live telemetry"): the one library package
		// whose whole point is reading the machine clock. Everything it
		// measures stays in diagnostics channels, never measured output.
		// internal/serve joins it: the serving front end's whole job is
		// wall-clock ops/sec and tail latency, and nothing it measures
		// feeds a deterministic artifact either.
		WallTimeAllowed:   []string{"repro/internal/obs/live", "repro/internal/serve"},
		BareGoAllowed:     []string{"repro/internal/runtime/track"},
		PrintAllowed:      []string{"repro/internal/report"},
		PrintAllowedFiles: []string{"repro/internal/obs/export.go"},
		MapRangeAllowed:   nil,
		DistLoopAllowed:   nil,
		HotPathDepth:      4,
		HotAllocStop: []string{
			"repro/internal/obs",
			"repro/internal/chaos",
		},
		HotAllocAllowed:  nil,
		LockFieldAllowed: nil,
		CtxLeakAllowed:   nil,
		Meters: []MeterSpec{
			{
				Type:        "CostMeter",
				Aggregators: []string{"Add", "AbsorbMeter"},
				CSVPkg:      "repro/internal/report",
				CSVFunc:     "CSVMeter",
			},
			{
				Type:        "Recorder",
				Aggregators: []string{"Snapshot"},
			},
		},
	}
}

// meterFor returns the spec matching a struct type name, or nil.
func (c *Config) meterFor(typeName string) *MeterSpec {
	for i := range c.Meters {
		if c.Meters[i].Type == typeName {
			return &c.Meters[i]
		}
	}
	return nil
}

// pathAllowed reports whether pkgPath is covered by one of the prefixes.
func pathAllowed(prefixes []string, pkgPath string) bool {
	for _, p := range prefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// fileAllowed reports whether the file holding pos is individually
// allowlisted: entries name a file as "<import path>/<file name>".
func (p *Pass) fileAllowed(entries []string, pos token.Pos) bool {
	name := filepath.Base(p.Fset.Position(pos).Filename)
	for _, e := range entries {
		if e == p.Path+"/"+name {
			return true
		}
	}
	return false
}

// isCmd reports whether pkgPath is a command (under <module>/cmd/).
func (c *Config) isCmd(pkgPath string) bool {
	return pathAllowed([]string{c.ModulePath + "/cmd"}, pkgPath)
}

// isExample reports whether pkgPath is an example program.
func (c *Config) isExample(pkgPath string) bool {
	return pathAllowed([]string{c.ModulePath + "/examples"}, pkgPath)
}

// isDriver reports whether pkgPath is a cmd or example — code that talks
// to a terminal rather than producing measured results.
func (c *Config) isDriver(pkgPath string) bool {
	return c.isCmd(pkgPath) || c.isExample(pkgPath)
}
