package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
	"unicode"
)

// MeterFields enforces exhaustiveness on the metered structs listed in
// Config.Meters: every data field of the struct must be referenced by
// each listed aggregator (CostMeter.Add, Directory.AbsorbMeter,
// Recorder.Snapshot, …), so a cost added to the meter cannot silently
// drop out of merged results. An aggregator may instead delegate by
// calling another listed aggregator. When a spec names a CSV exporter,
// that function must mention every field — snake_cased — as a header
// token in its string literals, so the field also reaches the artifact.
// Structs are matched by name, as with the distloop rule's Metric:
// fixtures declare their own copy.
var MeterFields = &Analyzer{
	Name: "meterfields",
	Doc:  "every metered-struct field must reach the aggregators and the CSV header",
	Run:  runMeterFields,
}

func runMeterFields(p *Pass) {
	for i := range p.Cfg.Meters {
		spec := &p.Cfg.Meters[i]
		checkAggregators(p, spec)
		if spec.CSVPkg == p.Path && spec.CSVFunc != "" {
			checkMeterCSV(p, spec)
		}
	}
}

// checkAggregators runs when this package declares the spec's struct.
func checkAggregators(p *Pass, spec *MeterSpec) {
	named, pos := localStruct(p, spec.Type)
	if named == nil {
		return
	}
	fields := meterDataFields(named)

	decls := map[string][]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls[fd.Name.Name] = append(decls[fd.Name.Name], fd)
			}
		}
	}

	for _, aggName := range spec.Aggregators {
		fds := decls[aggName]
		if len(fds) == 0 {
			p.Reportf(pos, "%s has no aggregator %s in this package (fields could be silently dropped on merge)",
				spec.Type, aggName)
			continue
		}
		for _, fd := range fds {
			if delegates(p, fd, spec) {
				continue
			}
			seen := referencedMeterFields(p, fd, spec.Type)
			for _, fld := range fields {
				if !seen[fld.Name()] {
					p.Reportf(fd.Name.Pos(), "%s.%s is not referenced by %s (metered value silently dropped)",
						spec.Type, fld.Name(), fd.Name.Name)
				}
			}
		}
	}
}

// checkMeterCSV runs in the exporter's package: the CSV function must
// exist and mention every field as a snake_cased header token.
func checkMeterCSV(p *Pass, spec *MeterSpec) {
	named := p.Flow.LookupType(spec.Type)
	if named == nil {
		return // struct not loaded; nothing to check against
	}
	var fn *ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && fd.Recv == nil && fd.Name.Name == spec.CSVFunc {
				fn = fd
			}
		}
	}
	if fn == nil {
		p.Reportf(p.Files[0].Name.Pos(), "no CSV exporter %s for %s in this package (meter fields never reach the artifact)",
			spec.CSVFunc, spec.Type)
		return
	}
	tokens := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		for _, tok := range strings.Split(s, ",") {
			tokens[strings.TrimSpace(tok)] = true
		}
		return true
	})
	for _, fld := range meterDataFields(named) {
		col := snakeCase(fld.Name())
		if !tokens[col] {
			p.Reportf(fn.Name.Pos(), "%s is missing CSV column %q for %s.%s",
				spec.CSVFunc, col, spec.Type, fld.Name())
		}
	}
}

// localStruct finds a struct type declared in this package by name,
// returning its named type and declaration position.
func localStruct(p *Pass, name string) (*types.Named, token.Pos) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if ts.Name.Name != name {
					continue
				}
				tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue // the defining package owns the obligation
				}
				named, ok := tn.Type().(*types.Named)
				if !ok {
					continue
				}
				if _, isStruct := named.Underlying().(*types.Struct); isStruct {
					return named, ts.Name.Pos()
				}
			}
		}
	}
	return nil, token.NoPos
}

// meterDataFields lists the struct's fields minus synchronization state.
func meterDataFields(named *types.Named) []*types.Var {
	st := named.Underlying().(*types.Struct)
	var out []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		if fld := st.Field(i); !isSyncType(fld.Type()) {
			out = append(out, fld)
		}
	}
	return out
}

// delegates reports whether fd calls another listed aggregator (by
// name), which transfers the exhaustiveness obligation there.
func delegates(p *Pass, fd *ast.FuncDecl, spec *MeterSpec) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee string
		switch f := call.Fun.(type) {
		case *ast.Ident:
			callee = f.Name
		case *ast.SelectorExpr:
			callee = f.Sel.Name
		}
		if callee == fd.Name.Name {
			return true
		}
		for _, agg := range spec.Aggregators {
			if callee == agg {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// referencedMeterFields collects the names of spec-struct fields the
// function touches, through any selector whose receiver is the struct.
func referencedMeterFields(p *Pass, fd *ast.FuncDecl, typeName string) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := p.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		recv := s.Recv()
		if pt, isPtr := recv.(*types.Pointer); isPtr {
			recv = pt.Elem()
		}
		named, isNamed := recv.(*types.Named)
		if !isNamed || named.Obj().Name() != typeName {
			return true
		}
		out[sel.Sel.Name] = true
		return true
	})
	// Composite-literal keys (CostMeter{PublishCost: …}) also count.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[cl]
		if !ok {
			return true
		}
		t := tv.Type
		if pt, isPtr := t.(*types.Pointer); isPtr {
			t = pt.Elem()
		}
		named, isNamed := t.(*types.Named)
		if !isNamed || named.Obj().Name() != typeName {
			return true
		}
		for _, el := range cl.Elts {
			if kv, isKV := el.(*ast.KeyValueExpr); isKV {
				if id, isID := kv.Key.(*ast.Ident); isID {
					out[id.Name] = true
				}
			}
		}
		return true
	})
	return out
}

// snakeCase converts a Go field name to its CSV column form, keeping
// acronym runs together: PublishCost → publish_cost, LBRouteCost →
// lb_route_cost, SampledMaintCostEst → sampled_maint_cost_est.
func snakeCase(s string) string {
	rs := []rune(s)
	var b strings.Builder
	for i, r := range rs {
		if unicode.IsUpper(r) {
			boundary := i > 0 && (unicode.IsLower(rs[i-1]) || unicode.IsDigit(rs[i-1]) ||
				(i+1 < len(rs) && unicode.IsLower(rs[i+1])))
			if boundary {
				b.WriteByte('_')
			}
			b.WriteRune(unicode.ToLower(r))
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}
