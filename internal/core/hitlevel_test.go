package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/partition"
)

// Lemma 2.1 applied to queries: on an unfragmented trail (publish only,
// no moves) with parent-set probing, a query from x for an object at v
// finds the object at level ceil(log2 dist(x,v)) + 1 at the latest.
func TestQueryHitLevelBoundUnfragmented(t *testing.T) {
	g := graph.Grid(12, 12)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: 3, UseParentSets: true, SpecialParentOffset: -1})
	if err != nil {
		t.Fatal(err)
	}
	d := New(hs, Config{})
	const proxy = graph.NodeID(77)
	if err := d.Publish(1, proxy); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u += 2 {
		if graph.NodeID(u) == proxy {
			continue
		}
		dist := m.Dist(graph.NodeID(u), proxy)
		bound := int(math.Ceil(math.Log2(dist))) + 1
		if bound > hs.Height() {
			bound = hs.Height()
		}
		_, tr, err := d.QueryTraced(graph.NodeID(u), 1)
		if err != nil {
			t.Fatal(err)
		}
		if tr.HitLevel > bound {
			t.Fatalf("query from %d (dist %v) hit at level %d, Lemma 2.1 bound %d",
				u, dist, tr.HitLevel, bound)
		}
	}
}

// The same bound holds on the general-network overlay (Lemma 6.1).
func TestQueryHitLevelBoundGeneralOverlay(t *testing.T) {
	g := graph.Grid(9, 9)
	m := graph.NewMetric(g)
	hs, err := partition.Build(g, m, partition.Config{SpecialParentOffset: -1})
	if err != nil {
		t.Fatal(err)
	}
	d := New(hs, Config{})
	const proxy = graph.NodeID(40)
	if err := d.Publish(1, proxy); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u += 2 {
		if graph.NodeID(u) == proxy {
			continue
		}
		dist := m.Dist(graph.NodeID(u), proxy)
		bound := int(math.Ceil(math.Log2(dist))) + 1
		if bound > hs.Height() {
			bound = hs.Height()
		}
		_, tr, err := d.QueryTraced(graph.NodeID(u), 1)
		if err != nil {
			t.Fatal(err)
		}
		if tr.HitLevel > bound {
			t.Fatalf("query from %d (dist %v) hit at level %d, Lemma 6.1 bound %d",
				u, dist, tr.HitLevel, bound)
		}
	}
}

// SDL shortcuts fire only under parent-set probing: with home-path
// probing, home chains are functional (same node, same parent), so an
// object's live trail always lies on the current mover's home path and DL
// entries shadow every SDL. With parent sets, a move can peak at a
// non-home station, the trail above continues on a different path
// (Fig. 2's fragmentation), and queries that sweep a parent set containing
// one of the mover's SDL-carrying home ancestors are served through the
// shortcut.
func TestQueryTraceReportsSDLUse(t *testing.T) {
	g := graph.Grid(16, 16)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: 5, UseParentSets: true, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := New(hs, Config{})
	if err := d.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	cur := graph.NodeID(0)
	sdlHits := 0
	for i := 0; i < 60; i++ {
		nbrs := g.NeighborIDs(cur)
		cur = nbrs[rng.Intn(len(nbrs))]
		if err := d.Move(1, cur); err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u += 7 {
			got, tr, err := d.QueryTraced(graph.NodeID(u), 1)
			if err != nil {
				t.Fatal(err)
			}
			if got != cur {
				t.Fatalf("query said %d, proxy %d", got, cur)
			}
			if tr.ViaSDL {
				sdlHits++
			}
		}
	}
	if sdlHits == 0 {
		t.Fatal("no query was served through an SDL shortcut despite parent-set fragmentation")
	}

	// And in simple mode, trails never leave the home chain, so SDLs are
	// never consulted — the design insight recorded in DESIGN.md.
	hs2, err := hier.Build(g, m, hier.Config{Seed: 5, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	d2 := New(hs2, Config{})
	if err := d2.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	rng = rand.New(rand.NewSource(4))
	cur = 0
	for i := 0; i < 60; i++ {
		nbrs := g.NeighborIDs(cur)
		cur = nbrs[rng.Intn(len(nbrs))]
		if err := d2.Move(1, cur); err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u += 7 {
			_, tr, err := d2.QueryTraced(graph.NodeID(u), 1)
			if err != nil {
				t.Fatal(err)
			}
			if tr.ViaSDL {
				t.Fatal("SDL hit in simple mode: home-chain fragmentation should be impossible")
			}
		}
	}
}
