package core

import (
	"fmt"
)

// CheckInvariants validates the directory's global consistency; it is used
// by tests and by the simulators after quiescence. For every published
// object it checks that
//
//   - the root station holds the object,
//   - following child groups downward from the root reaches exactly one
//     bottom-level station, and that station is the object's proxy,
//   - every station holding the object is reachable from the root through
//     the group/child-group structure (no orphaned detection-list entries),
//   - every SDL shortcut points at a station that still holds the object.
func (d *Directory) CheckInvariants() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for o, proxy := range d.loc {
		root := d.ov.Root()
		if !d.holds(root, o) {
			return fmt.Errorf("core: invariant: root does not hold object %d", o)
		}
		reach := map[slotKey]bool{}
		st := root
		for {
			k := slotKey{st.Level, st.Key}
			if reach[k] {
				return fmt.Errorf("core: invariant: trail for object %d cycles at %v", o, st)
			}
			reach[k] = true
			s, ok := d.peek(st)
			if !ok {
				return fmt.Errorf("core: invariant: trail station %v has no slot for object %d", st, o)
			}
			e, has := s.dl[o]
			if !has {
				return fmt.Errorf("core: invariant: trail station %v lost object %d", st, o)
			}
			if !e.hasChild {
				if st.Level != 0 {
					return fmt.Errorf("core: invariant: trail for object %d ends above level 0 at %v", o, st)
				}
				if st.Host != proxy {
					return fmt.Errorf("core: invariant: object %d trail ends at %d, proxy is %d", o, st.Host, proxy)
				}
				break
			}
			if e.child.Level != st.Level-1 {
				return fmt.Errorf("core: invariant: trail for object %d skips levels at %v -> %v", o, st, e.child)
			}
			st = e.child
		}
		// No orphans: every holder must be on the trail.
		for k, s := range d.slots {
			if _, has := s.dl[o]; has && !reach[k] {
				return fmt.Errorf("core: invariant: orphaned entry for object %d at %v", o, s.station)
			}
		}
	}
	// SDL shortcuts point at live holders.
	for _, s := range d.slots {
		for o, se := range s.sdl {
			if !d.holds(se.child, o) {
				return fmt.Errorf("core: invariant: SDL at %v points to %v which lost object %d", s.station, se.child, o)
			}
		}
	}
	return nil
}

// LoadByNode returns, for each physical node 0..n-1, the number of object
// and bookkeeping entries (detection-list entries, SDL entries, and proxied
// objects) it stores under the configured placement — the paper's load
// metric (§5, Figs. 8–11).
func (d *Directory) LoadByNode(n int) []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	counts := make([]int, n)
	for _, s := range d.slots {
		spread := d.distributed(s.station)
		bump := func(o ObjectID) {
			host := s.station.Host
			if spread {
				host = d.cfg.Placement.Place(s.station, o)
			}
			if int(host) >= 0 && int(host) < n {
				counts[host]++
			}
		}
		for o := range s.dl {
			bump(o)
		}
		for o := range s.sdl {
			bump(o)
		}
	}
	return counts
}

// SlotCount returns the number of materialized directory slots.
func (d *Directory) SlotCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.slots)
}

// EntryCount returns the total number of DL and SDL entries.
func (d *Directory) EntryCount() (dl, sdl int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, s := range d.slots {
		dl += len(s.dl)
		sdl += len(s.sdl)
	}
	return dl, sdl
}
