package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/overlay"
)

// Operations follow Algorithm 1 with the §3.1 parent-set refinement
// realized as probe-all / stamp-home: climbing operations visit every
// parent-set station of each level in ID order (which is what guarantees
// the Lemma 2.1 meeting levels and avoids the Fig. 3 race), while detection
// trails are anchored at the default-parent (home) chain, so each object's
// trail is a single root-to-proxy pointer chain. Lemma 2.1's proof needs
// exactly this asymmetry: the prober's parent set at level ceil(log d)+1
// always contains the target's home station.

// Publish introduces object o at proxy node at, stamping o along the home
// chain of DPath(at) up to the root (Algorithm 1 lines 1–5). Publishing an
// already-published object is an error.
//
//motlint:hotpath
func (d *Directory) Publish(o ObjectID, at graph.NodeID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cur, ok := d.loc[o]; ok {
		return fmt.Errorf("core: object %d already published at node %d", o, cur)
	}
	d.obsStart(obs.OpPublish, o)
	cost := d.stampWalk(o, at, 0)
	d.loc[o] = at
	d.ver[o] = 0
	d.meter.PublishCost += cost
	d.meter.PublishOps++
	d.obsFinish(cost)
	return nil
}

// stampWalk performs the publish-shaped walk that stamps o along the home
// chain of DPath(at) up to the root at version ver, returning the walk
// cost. Publish, Repair, and Restore share it so a re-stamped trail is
// state- and cost-identical to a freshly published one.
//
//motlint:hotpath
func (d *Directory) stampWalk(o ObjectID, at graph.NodeID, ver uint64) float64 {
	path := d.ov.DPath(at)
	cost := 0.0
	prev := path[0][0]
	for l := 0; l < len(path); l++ {
		lvl := cost
		for _, st := range path[l] {
			cost += d.m.Dist(prev.Host, st.Host)
			prev = st
			d.obsVisit(st)
		}
		d.obsEvent(obs.EvHop, l, prev.Host, cost-lvl)
		cost += d.stampHome(at, path, l, o, ver)
	}
	return cost
}

// Move performs a maintenance operation: object o has moved from its
// current proxy to node to. The insert climbs DPath(to), probing every
// station of each level, until it finds a station already holding o (the
// peak); it repoints the peak into the new home chain and the delete then
// erases the old trail downward to the old proxy (Algorithm 1 lines 6–18).
//
//motlint:hotpath
func (d *Directory) Move(o ObjectID, to graph.NodeID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	from, ok := d.loc[o]
	if !ok {
		return fmt.Errorf("core: object %d not published", o)
	}
	if from == to {
		return nil
	}
	d.ver[o]++
	ver := d.ver[o]
	d.obsStart(obs.OpMove, o)
	sampled := d.sampleBegin()
	path := d.ov.DPath(to)
	cost := 0.0
	prev := path[0][0]
	cost += d.stampHome(to, path, 0, o, ver)

	var peak overlay.Station
	var oldEntry dlEntry
	found := false
	for l := 1; l < len(path) && !found; l++ {
		lvl := cost
		for _, st := range path[l] {
			cost += d.dist(prev.Host, st.Host)
			prev = st
			d.obsVisit(st)
			if found {
				continue
			}
			if s, ok := d.peek(st); ok {
				if e, has := s.dl[o]; has {
					found, peak, oldEntry = true, st, e
					d.obsEvent(obs.EvPeak, st.Level, st.Host, 0)
					cost += d.touch(st, o) // read the distributed entry
				}
			}
		}
		d.obsEvent(obs.EvHop, l, prev.Host, cost-lvl)
		if !found {
			cost += d.stampHome(to, path, l, o, ver)
		}
	}
	if !found {
		// The root always holds every published object; reaching here
		// indicates directory corruption.
		return fmt.Errorf("core: insert for object %d reached the top without finding it", o)
	}

	// Repoint the peak into the new chain.
	cost += d.repoint(to, path, peak, o, ver)

	// Delete the old trail downward from the peak's previous pointer.
	if !oldEntry.hasChild {
		return fmt.Errorf("core: peak entry for object %d at %v has no child", o, peak)
	}
	cur := oldEntry.child
	pos := prev.Host
	for {
		cost += d.dist(pos, cur.Host)
		pos = cur.Host
		d.obsVisit(cur)
		cost += d.touch(cur, o)
		s, ok := d.peek(cur)
		if !ok {
			return fmt.Errorf("core: delete for object %d lost the trail at %v", o, cur)
		}
		e, has := s.dl[o]
		if !has {
			return fmt.Errorf("core: delete for object %d lost the trail at %v", o, cur)
		}
		d.removeEntry(cur, o)
		if !e.hasChild {
			break // old proxy's bottom-level slot erased
		}
		cur = e.child
	}

	d.loc[o] = to
	optEst := d.m.Dist(from, to)
	d.meter.AddMaintSample(cost, optEst)
	if sampled {
		d.sampleEndMaint(from, to, optEst)
	}
	d.obsFinish(cost)
	return nil
}

// QueryTrace reports how a query was resolved.
type QueryTrace struct {
	// HitLevel is the level at which the object was found in a DL or SDL.
	HitLevel int
	// ViaSDL is true when the hit came from a special detection list.
	ViaSDL bool
	// Cost is the query's communication cost.
	Cost float64
}

// Query locates object o from requesting node from (Algorithm 1 lines
// 19–24): climb DPath(from), probing each level's stations, until one holds
// o in its DL or SDL, then descend the trail (via the special child for an
// SDL hit) to the proxy. It returns the proxy and this query's cost.
//
//motlint:hotpath
func (d *Directory) Query(from graph.NodeID, o ObjectID) (graph.NodeID, float64, error) {
	proxy, tr, err := d.QueryTraced(from, o)
	return proxy, tr.Cost, err
}

// QueryTraced is Query returning resolution details (hit level, SDL use) —
// used by the theory-validation tests for Lemma 2.1 and Lemma 4.10.
//
//motlint:hotpath
func (d *Directory) QueryTraced(from graph.NodeID, o ObjectID) (graph.NodeID, QueryTrace, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	proxy, ok := d.loc[o]
	if !ok {
		return graph.Undefined, QueryTrace{}, fmt.Errorf("core: object %d not published", o)
	}
	d.obsStart(obs.OpQuery, o)
	sampled := d.sampleBegin()
	path := d.ov.DPath(from)
	cost := 0.0
	prev := path[0][0]

	var hitDL, hitSDL bool
	var at, sdlChild overlay.Station
	for l := 0; l < len(path) && !hitDL && !hitSDL; l++ {
		lvl := cost
		for _, st := range path[l] {
			cost += d.dist(prev.Host, st.Host)
			prev = st
			d.obsVisit(st)
			if hitDL || hitSDL {
				continue
			}
			if s, ok := d.peek(st); ok {
				if _, has := s.dl[o]; has {
					hitDL, at = true, st
					d.obsEvent(obs.EvPeak, st.Level, st.Host, 0)
					cost += d.touch(st, o) // read the distributed entry
				} else if se, has := s.sdl[o]; has {
					hitSDL, at, sdlChild = true, st, se.child
					d.obsEvent(obs.EvSDL, st.Level, st.Host, 0)
					cost += d.touch(st, o)
				}
			}
		}
		d.obsEvent(obs.EvHop, l, prev.Host, cost-lvl)
	}
	if !hitDL && !hitSDL {
		d.obsFinish(cost)
		return graph.Undefined, QueryTrace{Cost: cost}, fmt.Errorf("core: query for object %d found no trace up to the root", o)
	}
	trace := QueryTrace{HitLevel: at.Level, ViaSDL: hitSDL}

	cur := at
	if hitSDL {
		cost += d.dist(cur.Host, sdlChild.Host)
		cur = sdlChild
		d.obsVisit(cur)
		cost += d.touch(cur, o)
		if !d.holds(cur, o) {
			trace.Cost = cost
			d.obsFinish(cost)
			return graph.Undefined, trace, fmt.Errorf("core: stale SDL shortcut for object %d at %v", o, at)
		}
	}

	for {
		s, ok := d.peek(cur)
		if !ok {
			trace.Cost = cost
			d.obsFinish(cost)
			return graph.Undefined, trace, fmt.Errorf("core: descent lost object %d at %v", o, cur)
		}
		e, has := s.dl[o]
		if !has {
			trace.Cost = cost
			d.obsFinish(cost)
			return graph.Undefined, trace, fmt.Errorf("core: descent lost object %d at %v", o, cur)
		}
		if !e.hasChild {
			break // bottom-level proxy slot
		}
		cost += d.dist(cur.Host, e.child.Host)
		cur = e.child
		d.obsVisit(cur)
		cost += d.touch(cur, o)
	}
	if cur.Host != proxy {
		trace.Cost = cost
		d.obsFinish(cost)
		return graph.Undefined, trace, fmt.Errorf("core: query for object %d ended at %d, proxy is %d", o, cur.Host, proxy)
	}
	if d.cfg.CountReply {
		cost += d.dist(proxy, from)
	}
	trace.Cost = cost
	optEst := d.m.Dist(from, proxy)
	d.meter.AddQuerySample(cost, optEst)
	if sampled {
		d.sampleEndQuery(from, proxy, optEst)
	}
	d.obsFinish(cost)
	return proxy, trace, nil
}

// stampHome writes o's entry at the home station of path level l, pointing
// down at the home station one level below, and registers the special
// parent. It returns the placement routing surcharge.
func (d *Directory) stampHome(owner graph.NodeID, path overlay.Path, l int, o ObjectID, ver uint64) float64 {
	st := d.ov.HomeStation(owner, l)
	e := dlEntry{version: ver}
	if l > 0 {
		e.child = d.ov.HomeStation(owner, l-1)
		e.hasChild = true
	}
	return d.install(st, path, l, o, e)
}

// repoint redirects the peak station's entry into the new home chain one
// level below the peak.
func (d *Directory) repoint(owner graph.NodeID, path overlay.Path, peak overlay.Station, o ObjectID, ver uint64) float64 {
	e := dlEntry{version: ver}
	if peak.Level > 0 {
		e.child = d.ov.HomeStation(owner, peak.Level-1)
		e.hasChild = true
	}
	return d.install(peak, path, peak.Level, o, e)
}

// install writes the entry at st, replacing any previous registration, and
// registers the special parent chosen from the stamping path.
func (d *Directory) install(st overlay.Station, path overlay.Path, l int, o ObjectID, e dlEntry) float64 {
	idx := 0
	for i, cand := range path[l] {
		if cand == st {
			idx = i
			break
		}
	}
	sp, spOK := overlay.SpecialParent(path, l, idx, d.ov.SpecialOffset())
	e.sp, e.spOK = sp, spOK
	s := d.slot(st)
	if old, ok := s.dl[o]; ok && old.spOK {
		d.removeSDL(old.sp, st, o)
	}
	s.dl[o] = e
	d.obsEvent(obs.EvStamp, l, st.Host, 0)
	if spOK {
		d.slot(sp).sdl[o] = sdlEntry{child: st, version: e.version}
		d.addSpecialCost(d.m.Dist(st.Host, sp.Host))
		d.obsEvent(obs.EvSDL, sp.Level, sp.Host, d.m.Dist(st.Host, sp.Host))
	}
	return d.touch(st, o)
}

// removeEntry erases o from the detection list at st and cleans up the
// corresponding SDL registration.
func (d *Directory) removeEntry(st overlay.Station, o ObjectID) {
	s, ok := d.peek(st)
	if !ok {
		return
	}
	e, has := s.dl[o]
	if !has {
		return
	}
	delete(s.dl, o)
	d.obsEvent(obs.EvWipe, st.Level, st.Host, 0)
	if e.spOK {
		d.removeSDL(e.sp, st, o)
		d.addSpecialCost(d.m.Dist(st.Host, e.sp.Host))
	}
}

// removeSDL deletes the SDL entry for o at sp if it was registered by
// child; registrations can be overwritten by newer fragments of the same
// object's trail, in which case the stale cleanup is a no-op.
func (d *Directory) removeSDL(sp, child overlay.Station, o ObjectID) {
	s, ok := d.peek(sp)
	if !ok {
		return
	}
	if se, has := s.sdl[o]; has && se.child == child {
		delete(s.sdl, o)
	}
}

// touch accounts the intra-cluster routing surcharge for accessing the
// entry of o at st under the configured placement (Corollary 5.2's
// O(log n) factor shows up in measured ratios when load balancing is on).
// Only stations whose detection list has grown past the threshold
// distribute — the paper's adaptive "kicks in when flooded" behavior.
func (d *Directory) touch(st overlay.Station, o ObjectID) float64 {
	if !d.distributed(st) {
		return 0
	}
	c := d.cfg.Placement.RouteCost(st, o)
	d.meter.LBRouteCost += c
	d.obsEvent(obs.EvLBRoute, st.Level, st.Host, c)
	if !d.cfg.CountLBRouteCost {
		return 0
	}
	return c
}

// distributed reports whether st currently spreads its entries across its
// cluster.
func (d *Directory) distributed(st overlay.Station) bool {
	if _, host := d.cfg.Placement.(HostPlacement); host {
		return false
	}
	s, ok := d.peek(st)
	return ok && len(s.dl) >= d.cfg.LBThreshold
}

// addSpecialCost accounts an SDL maintenance message; folded into MaintCost
// only when configured (the paper's analysis reports it separately).
func (d *Directory) addSpecialCost(c float64) {
	d.meter.SpecialCost += c
	if d.cfg.CountSpecialParentCost {
		d.meter.MaintCost += c
	}
}
