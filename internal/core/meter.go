package core

// CostMeter accumulates communication costs (total shortest-path distance
// traversed by messages, the paper's cost model) for each operation kind,
// alongside the optimal costs, so cost ratios can be reported exactly as in
// §8.
type CostMeter struct {
	// Publish.
	PublishCost float64
	PublishOps  int

	// Maintenance (insert + delete travel). Optimal cost of one move is
	// the distance between the old and new proxies.
	MaintCost    float64
	MaintOptimal float64
	MaintOps     int

	// Query (search walk from requester to proxy). Optimal cost is the
	// requester-to-proxy distance.
	QueryCost    float64
	QueryOptimal float64
	QueryOps     int

	// SpecialCost is the SDL registration/cleanup message cost, reported
	// separately unless Config.CountSpecialParentCost folds it into
	// MaintCost (the paper's analysis excludes it; §4 preamble).
	SpecialCost float64

	// LBRouteCost is the extra de Bruijn intra-cluster routing distance
	// paid when load balancing distributes entries (§5, Corollary 5.2).
	LBRouteCost float64

	// RecoveryCost is the message cost of fault recovery: re-stamping a
	// damaged object's home chain after a station crash or a lost
	// maintenance operation (the §7 fine-grained adaptability path). It is
	// reported separately so fault-free cost ratios stay comparable.
	RecoveryCost float64
	RecoveryOps  int

	// Sampled exact re-metering (Config.ExactSampleEvery). In oracle mode
	// every metered distance is an estimate; a seeded sample of move and
	// query operations re-measures its distance terms with on-demand exact
	// Dijkstra rows, giving an unbiased exact cost ratio over the sample
	// (SampledMaintRatio/SampledQueryRatio) plus the est/exact gap that
	// audits the oracle's real overshoot. The Est fields accumulate the
	// oracle-reported distance terms of exactly the sampled operations, so
	// Est and Exact are directly comparable. LB-routing and special-parent
	// surcharges are not re-measured (they are metered separately anyway).
	SampledMaintOps       int
	SampledMaintCostEst   float64
	SampledMaintCostExact float64
	SampledMaintOptEst    float64
	SampledMaintOptExact  float64
	SampledQueryOps       int
	SampledQueryCostEst   float64
	SampledQueryCostExact float64
	SampledQueryOptEst    float64
	SampledQueryOptExact  float64

	// Per-operation ratio sums (mean-of-ratios). The aggregate ratios
	// above weight operations by their optimal cost; the figure-style
	// means below weight each operation equally, which is what exposes a
	// distance-insensitive algorithm (STUN pays a sink round trip even
	// for queries whose optimum is one hop).
	MaintRatioSum float64
	MaintRatioOps int
	QueryRatioSum float64
	QueryRatioOps int
}

// MaintRatio returns the maintenance cost ratio C(E)/C*(E); 0 if no
// maintenance cost has been accrued.
func (c CostMeter) MaintRatio() float64 {
	if c.MaintOptimal == 0 {
		return 0
	}
	return c.MaintCost / c.MaintOptimal
}

// QueryRatio returns the query cost ratio; 0 if no query cost accrued.
func (c CostMeter) QueryRatio() float64 {
	if c.QueryOptimal == 0 {
		return 0
	}
	return c.QueryCost / c.QueryOptimal
}

// MaintMeanRatio returns the mean of per-operation maintenance ratios.
func (c CostMeter) MaintMeanRatio() float64 {
	if c.MaintRatioOps == 0 {
		return 0
	}
	return c.MaintRatioSum / float64(c.MaintRatioOps)
}

// QueryMeanRatio returns the mean of per-operation query ratios.
func (c CostMeter) QueryMeanRatio() float64 {
	if c.QueryRatioOps == 0 {
		return 0
	}
	return c.QueryRatioSum / float64(c.QueryRatioOps)
}

// AddMaintSample records one maintenance operation's cost against its
// optimal cost, updating both the aggregate and the per-operation ratio.
func (c *CostMeter) AddMaintSample(cost, optimal float64) {
	c.MaintCost += cost
	c.MaintOptimal += optimal
	c.MaintOps++
	if optimal > 0 {
		c.MaintRatioSum += cost / optimal
		c.MaintRatioOps++
	}
}

// AddQuerySample records one query's cost against its optimal cost.
// Queries issued at the proxy itself (optimal 0) count as operations but
// contribute to neither ratio.
func (c *CostMeter) AddQuerySample(cost, optimal float64) {
	c.QueryOps++
	if optimal > 0 {
		c.QueryCost += cost
		c.QueryOptimal += optimal
		c.QueryRatioSum += cost / optimal
		c.QueryRatioOps++
	}
}

// SampledMaintRatio returns the exact maintenance cost ratio over the
// sampled operations; 0 if nothing was sampled.
func (c CostMeter) SampledMaintRatio() float64 {
	if c.SampledMaintOptExact == 0 {
		return 0
	}
	return c.SampledMaintCostExact / c.SampledMaintOptExact
}

// SampledQueryRatio returns the exact query cost ratio over the sampled
// operations; 0 if nothing was sampled.
func (c CostMeter) SampledQueryRatio() float64 {
	if c.SampledQueryOptExact == 0 {
		return 0
	}
	return c.SampledQueryCostExact / c.SampledQueryOptExact
}

// SampledOverestimate returns the factor by which the oracle's estimated
// distance terms exceed their exact re-measurements over all sampled
// operations (1 = no overshoot, bounded by the oracle's stretch); 0 if
// nothing was sampled.
func (c CostMeter) SampledOverestimate() float64 {
	exact := c.SampledMaintCostExact + c.SampledQueryCostExact
	if exact == 0 {
		return 0
	}
	return (c.SampledMaintCostEst + c.SampledQueryCostEst) / exact
}

// Add accumulates another meter into c.
func (c *CostMeter) Add(o CostMeter) {
	c.PublishCost += o.PublishCost
	c.PublishOps += o.PublishOps
	c.MaintCost += o.MaintCost
	c.MaintOptimal += o.MaintOptimal
	c.MaintOps += o.MaintOps
	c.QueryCost += o.QueryCost
	c.QueryOptimal += o.QueryOptimal
	c.QueryOps += o.QueryOps
	c.SpecialCost += o.SpecialCost
	c.LBRouteCost += o.LBRouteCost
	c.RecoveryCost += o.RecoveryCost
	c.RecoveryOps += o.RecoveryOps
	c.SampledMaintOps += o.SampledMaintOps
	c.SampledMaintCostEst += o.SampledMaintCostEst
	c.SampledMaintCostExact += o.SampledMaintCostExact
	c.SampledMaintOptEst += o.SampledMaintOptEst
	c.SampledMaintOptExact += o.SampledMaintOptExact
	c.SampledQueryOps += o.SampledQueryOps
	c.SampledQueryCostEst += o.SampledQueryCostEst
	c.SampledQueryCostExact += o.SampledQueryCostExact
	c.SampledQueryOptEst += o.SampledQueryOptEst
	c.SampledQueryOptExact += o.SampledQueryOptExact
	c.MaintRatioSum += o.MaintRatioSum
	c.MaintRatioOps += o.MaintRatioOps
	c.QueryRatioSum += o.QueryRatioSum
	c.QueryRatioOps += o.QueryRatioOps
}
