package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/hier"
)

// Error paths of the recovery surface (Repair / Unpublish / DropHost /
// Restore), exercised directly at the core layer.

func TestRecoveryErrorPaths(t *testing.T) {
	d, g := buildDir(t, 5, 5, hier.Config{Seed: 2, SpecialParentOffset: 2}, Config{})
	if err := d.Repair(9); err == nil {
		t.Fatal("Repair of an unpublished object accepted")
	}
	if err := d.Unpublish(9); err == nil {
		t.Fatal("Unpublish of an unpublished object accepted")
	}
	if got := d.DropHost(graph.NodeID(g.N() + 5)); len(got) != 0 {
		// Dropping a host outside the graph damages nothing: no station
		// is hosted there and no SDL shortcut can point into it.
		t.Fatalf("DropHost out of range damaged %v", got)
	}
	if err := d.Publish(1, 3); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if err := d.Restore(1, 4); err == nil {
		t.Fatal("Restore of a still-published object accepted")
	}
	if err := d.Unpublish(1); err != nil {
		t.Fatalf("Unpublish: %v", err)
	}
	if err := d.Unpublish(1); err == nil {
		t.Fatal("double Unpublish accepted")
	}
}

// TestRestoreMatchesPublishState pins Restore's contract: identical
// directory state to a fresh Publish at the same proxy, with the walk
// charged to RecoveryCost instead of PublishCost.
func TestRestoreMatchesPublishState(t *testing.T) {
	hcfg := hier.Config{Seed: 3, UseParentSets: true, SpecialParentOffset: 2}
	da, g := buildDir(t, 6, 6, hcfg, Config{})
	db, _ := buildDir(t, 6, 6, hcfg, Config{})
	at := graph.NodeID(g.N() / 2)
	if err := da.Publish(7, at); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if err := db.Restore(7, at); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	ma, mb := da.Meter(), db.Meter()
	if ma.PublishCost == 0 || mb.RecoveryCost != ma.PublishCost {
		t.Fatalf("RecoveryCost %v != PublishCost %v", mb.RecoveryCost, ma.PublishCost)
	}
	if mb.PublishCost != 0 || mb.PublishOps != 0 {
		t.Fatalf("Restore leaked into the publish meter: %+v", mb)
	}
	if got := db.StaleObjects(nil); len(got) != 0 {
		t.Fatalf("restored object reported stale: %v", got)
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatalf("invariants after Restore: %v", err)
	}
	dlA, sdlA := da.EntryCount()
	dlB, sdlB := db.EntryCount()
	if dlA != dlB || sdlA != sdlB {
		t.Fatalf("entry counts diverge: publish (%d,%d) vs restore (%d,%d)", dlA, sdlA, dlB, sdlB)
	}
}

func TestStaleObjectsFlagsDamageAndSkipsFailedProxies(t *testing.T) {
	d, g := buildDir(t, 6, 6, hier.Config{Seed: 5, UseParentSets: true, SpecialParentOffset: 2}, Config{})
	locs := populate(t, d, g, 4, 11)
	if got := d.StaleObjects(nil); len(got) != 0 {
		t.Fatalf("healthy directory reported stale objects %v", got)
	}
	victim := locs[2]
	damaged := d.DropHost(victim)
	if len(damaged) == 0 {
		t.Fatal("DropHost of a live proxy damaged nothing")
	}
	stale := d.StaleObjects(nil)
	if len(stale) == 0 {
		t.Fatal("StaleObjects missed crash damage")
	}
	// Staleness is sound with respect to DropHost: a trail can only break
	// where damage was reported, so stale ⊆ damaged. (The reverse need not
	// hold — losing an SDL shortcut leaves the trail walkable.)
	damagedSet := map[ObjectID]bool{}
	for _, o := range damaged {
		damagedSet[o] = true
	}
	for _, o := range stale {
		if !damagedSet[o] {
			t.Fatalf("object %d stale without reported damage", o)
		}
	}
	// With the victim's proxy objects skipped, the rest must still show.
	skipped := d.StaleObjects(func(n graph.NodeID) bool { return n == victim })
	for _, o := range skipped {
		if loc, _ := d.Location(o); loc == victim {
			t.Fatalf("skip predicate ignored for object %d", o)
		}
	}
	for _, o := range stale {
		if loc, _ := d.Location(o); loc != victim {
			found := false
			for _, s := range skipped {
				if s == o {
					found = true
				}
			}
			if !found {
				t.Fatalf("object %d lost by skip predicate", o)
			}
		}
	}
	// Repairing everything DropHost reported heals the directory — the
	// victim hosts stations but is not excluded from the overlay here, so
	// even its own proxy objects re-stamp cleanly.
	for _, o := range damaged {
		if err := d.Repair(o); err != nil {
			t.Fatalf("Repair(%d): %v", o, err)
		}
	}
	if got := d.StaleObjects(nil); len(got) != 0 {
		t.Fatalf("stale objects after repair: %v", got)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("invariants after repair: %v", err)
	}
}

// TestStaleObjectsDetectsOverlayDrift pins the structural half: when an
// incremental hierarchy repair moves the root, every trail loses its
// anchor and is reported stale even though no slot was wiped — and a
// repair pass under the new overlay heals the directory.
func TestStaleObjectsDetectsOverlayDrift(t *testing.T) {
	g := graph.Grid(7, 7)
	m := graph.NewMetric(g)
	hcfg := hier.Config{Seed: 9, UseParentSets: true, SpecialParentOffset: 2, Incremental: true}
	hs, err := hier.BuildExcluding(g, m, hcfg, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	d := New(hs, Config{})
	populate(t, d, g, 6, 13)

	// Fail the root node: re-election moves the trail anchor, so reachable
	// objects go stale without any directory entry being destroyed.
	oldRoot := hs.RootNode()
	if err := hs.Exclude(oldRoot); err != nil {
		t.Fatalf("Exclude: %v", err)
	}
	if _, err := hs.Repair([]graph.NodeID{oldRoot}); err != nil {
		t.Fatalf("hier.Repair: %v", err)
	}
	if hs.RootNode() == oldRoot {
		t.Fatal("repair kept the excluded root")
	}
	skip := func(n graph.NodeID) bool { return n == oldRoot }
	stale := d.StaleObjects(skip)
	if len(stale) == 0 {
		t.Fatal("root re-election left no stale objects")
	}
	for _, o := range stale {
		if err := d.Repair(o); err != nil {
			t.Fatalf("Repair(%d): %v", o, err)
		}
	}
	if got := d.StaleObjects(skip); len(got) != 0 {
		t.Fatalf("stale objects after structural repair: %v", got)
	}
	// Quiescence: readmit the node, repair the overlay back to its pristine
	// shape, heal whatever drifted again, and demand full invariants.
	if err := hs.Readmit(oldRoot); err != nil {
		t.Fatalf("Readmit: %v", err)
	}
	if _, err := hs.Repair([]graph.NodeID{oldRoot}); err != nil {
		t.Fatalf("hier.Repair after readmit: %v", err)
	}
	for _, o := range d.StaleObjects(nil) {
		if err := d.Repair(o); err != nil {
			t.Fatalf("Repair(%d): %v", o, err)
		}
	}
	if got := d.StaleObjects(nil); len(got) != 0 {
		t.Fatalf("stale objects at quiescence: %v", got)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("invariants at quiescence: %v", err)
	}
}

// TestStaleObjectsFlagsFragmentsAboveShrunkRoot is the height-shrink
// regression: when an incremental repair lowers the hierarchy root, a
// trail whose suffix below the new root is still walkable keeps stale
// top entries above it. Those fragments sit above every query climb, so
// the walk-validity predicate alone never flags them and they leak as
// orphans; StaleObjects must report such objects so the repair pass
// wipes the fragments.
func TestStaleObjectsFlagsFragmentsAboveShrunkRoot(t *testing.T) {
	g := graph.Grid(6, 6)
	m := graph.NewMetric(g)
	hcfg := hier.Config{Seed: 4, UseParentSets: true, SpecialParentOffset: 2, Incremental: true}
	hs, err := hier.BuildExcluding(g, m, hcfg, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	d := New(hs, Config{})
	// One object per sensor: whatever shape the shrink takes, some trail
	// keeps a walkable suffix through the new root.
	for n := 0; n < g.N(); n++ {
		if err := d.Publish(ObjectID(n), graph.NodeID(n)); err != nil {
			t.Fatalf("Publish(%d): %v", n, err)
		}
	}
	// Excluding this victim grows the hierarchy by a level; trails healed
	// during the outage are stamped up to that taller root. Readmitting
	// shrinks the root back DOWN, stranding those top entries above every
	// walk — the leak condition under test. (Seed and victim are picked so
	// that at least one re-stamped trail stays walkable through the new
	// root while holding a fragment above it: the walk-validity predicate
	// alone misses it and CheckInvariants reports an orphaned entry.)
	const victim = graph.NodeID(18)
	if err := hs.Exclude(victim); err != nil {
		t.Fatalf("Exclude: %v", err)
	}
	if _, err := hs.Repair([]graph.NodeID{victim}); err != nil {
		t.Fatalf("hier.Repair: %v", err)
	}
	skip := func(n graph.NodeID) bool { return n == victim }
	for _, o := range d.StaleObjects(skip) {
		if err := d.Repair(o); err != nil {
			t.Fatalf("Repair(%d): %v", o, err)
		}
	}
	midLevel := hs.Root().Level
	if err := hs.Readmit(victim); err != nil {
		t.Fatalf("Readmit: %v", err)
	}
	if _, err := hs.Repair([]graph.NodeID{victim}); err != nil {
		t.Fatalf("hier.Repair after readmit: %v", err)
	}
	if got := hs.Root().Level; got >= midLevel {
		t.Fatalf("readmit kept height %d (was %d mid-churn) — the seed no longer shrinks; repick", got, midLevel)
	}
	// Quiescence at the SHRUNK height: entries stamped at the old root
	// level now sit above every walk. StaleObjects must flag their
	// objects even when the walk below the new root still succeeds — the
	// orphan check of CheckInvariants is what catches the leak otherwise.
	for _, o := range d.StaleObjects(nil) {
		if err := d.Repair(o); err != nil {
			t.Fatalf("Repair(%d): %v", o, err)
		}
	}
	if got := d.StaleObjects(nil); len(got) != 0 {
		t.Fatalf("stale objects at quiescence: %v", got)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("invariants at quiescence: %v", err)
	}
}

// TestAbsorbMeterIdentity pins meter continuity across a migration-style
// handoff: absorbing the old meter then adding new work equals the sum of
// both histories field by field.
func TestAbsorbMeterIdentity(t *testing.T) {
	hcfg := hier.Config{Seed: 4, UseParentSets: true, SpecialParentOffset: 2}
	da, g := buildDir(t, 6, 6, hcfg, Config{})
	populate(t, da, g, 3, 17)
	old := da.Meter()

	db, _ := buildDir(t, 6, 6, hcfg, Config{})
	db.AbsorbMeter(old)
	if got := db.Meter(); got != old {
		t.Fatalf("AbsorbMeter into empty meter not identity:\n got %+v\nwant %+v", got, old)
	}
	// New work accumulates on top without disturbing absorbed history.
	if err := db.Publish(50, 0); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	got := db.Meter()
	if got.MaintCost != old.MaintCost || got.MaintOps != old.MaintOps {
		t.Fatalf("absorbed maintenance history changed: %+v vs %+v", got, old)
	}
	if got.PublishOps != old.PublishOps+1 || got.PublishCost <= old.PublishCost {
		t.Fatalf("new publish not accumulated: %+v", got)
	}
}
