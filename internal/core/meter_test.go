package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/hier"
)

// TestMeterZeroOptimalRatios pins the degenerate-denominator contract:
// cost accrued against a zero optimal yields ratio 0 (not NaN or Inf),
// and zero-optimal queries count as operations without polluting either
// ratio (a query issued at the proxy itself has optimum 0).
func TestMeterZeroOptimalRatios(t *testing.T) {
	var m CostMeter
	m.MaintCost = 42 // cost with no optimal recorded
	for _, r := range []float64{m.MaintRatio(), m.QueryRatio(), m.MaintMeanRatio(), m.QueryMeanRatio()} {
		if r != 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			t.Fatalf("zero-optimal ratio = %v, want 0", r)
		}
	}

	m = CostMeter{}
	m.AddQuerySample(5, 0) // at-proxy query: an op, but ratio-free
	if m.QueryOps != 1 {
		t.Fatalf("QueryOps = %d, want 1", m.QueryOps)
	}
	if m.QueryCost != 0 || m.QueryOptimal != 0 || m.QueryRatioOps != 0 {
		t.Fatalf("zero-optimal query leaked into ratios: %+v", m)
	}
	m.AddMaintSample(3, 0) // free move (same proxy): op counted, no ratio
	if m.MaintOps != 1 || m.MaintRatioOps != 0 {
		t.Fatalf("zero-optimal move bookkeeping: %+v", m)
	}
	if m.MaintCost != 3 {
		t.Fatalf("maintenance cost must still accrue: %+v", m)
	}
}

// randMeter fills every numeric field of a CostMeter from rng — by
// reflection, so a field added to the struct later is automatically
// covered.
func randMeter(t *testing.T, rng *rand.Rand) CostMeter {
	t.Helper()
	var m CostMeter
	v := reflect.ValueOf(&m).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Float64:
			f.SetFloat(float64(rng.Intn(1000)) / 4)
		case reflect.Int:
			f.SetInt(int64(rng.Intn(100)))
		default:
			t.Fatalf("unhandled CostMeter field kind %v", f.Kind())
		}
	}
	return m
}

// TestMeterAddFieldByField is the quick-check-style merge identity: for
// random meters a, b, (a.Add(b)) equals the field-wise sum of a and b on
// EVERY field. Because the check enumerates fields by reflection, adding
// a field to CostMeter without extending Add (making that cost silently
// droppable in merged sweeps) fails this test.
func TestMeterAddFieldByField(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		a := randMeter(t, rng)
		b := randMeter(t, rng)
		got := a
		got.Add(b)
		va, vb, vg := reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(got)
		for i := 0; i < va.NumField(); i++ {
			name := va.Type().Field(i).Name
			switch va.Field(i).Kind() {
			case reflect.Float64:
				want := va.Field(i).Float() + vb.Field(i).Float()
				if vg.Field(i).Float() != want {
					t.Fatalf("trial %d: Add dropped %s: got %v want %v", trial, name, vg.Field(i).Float(), want)
				}
			case reflect.Int:
				want := va.Field(i).Int() + vb.Field(i).Int()
				if vg.Field(i).Int() != want {
					t.Fatalf("trial %d: Add dropped %s: got %v want %v", trial, name, vg.Field(i).Int(), want)
				}
			}
		}
	}
}

// TestAbsorbMeterMatchesAdd checks the §7 rebuild path folds costs
// exactly like CostMeter.Add — no field treated specially.
func TestAbsorbMeterMatchesAdd(t *testing.T) {
	g := graph.Grid(3, 3)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := New(hs, Config{})
	if err := d.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	base := d.Meter()
	prev := randMeter(t, rand.New(rand.NewSource(9)))
	d.AbsorbMeter(prev)
	want := base
	want.Add(prev)
	if d.Meter() != want {
		t.Fatalf("AbsorbMeter = %+v, want %+v", d.Meter(), want)
	}
}

// TestMeanOfRatiosVsRatioOfMeans pins the divergence the figures hinge
// on: the aggregate ratio weights operations by optimal cost, the mean
// ratio weights them equally. A workload of one long cheap-relative move
// (cost 100 over optimal 100) and one short expensive-relative move
// (cost 10 over optimal 1) makes the two metrics disagree by a factor
// of five — exactly why distance-insensitive baselines look fine in
// aggregate but poor per operation.
func TestMeanOfRatiosVsRatioOfMeans(t *testing.T) {
	var m CostMeter
	m.AddMaintSample(100, 100)
	m.AddMaintSample(10, 1)
	agg := m.MaintRatio()      // 110/101
	mean := m.MaintMeanRatio() // (1.0 + 10.0)/2
	if math.Abs(agg-110.0/101.0) > 1e-12 {
		t.Fatalf("aggregate ratio = %v, want %v", agg, 110.0/101.0)
	}
	if math.Abs(mean-5.5) > 1e-12 {
		t.Fatalf("mean ratio = %v, want 5.5", mean)
	}
	if mean <= agg {
		t.Fatalf("crafted workload must diverge: mean %v <= agg %v", mean, agg)
	}
}
