package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/hier"
)

// The Fig. 2 scenario: repeated maintenance operations fragment an
// object's detection trail so that a nearby query's own path no longer
// intersects the trail at a low level; without special parents the query
// may have to climb to the root, while the SDL shortcut serves it lower.
// We verify the aggregate effect: on heavily fragmented trails, total
// query cost with special parents is at most the cost without them, and
// at least one query is answered through an SDL hit.
func TestFragmentationSpecialParentsHelp(t *testing.T) {
	g := graph.Grid(16, 16)
	m := graph.NewMetric(g)

	run := func(sigma int) (float64, *Directory) {
		hs, err := hier.Build(g, m, hier.Config{Seed: 5, SpecialParentOffset: sigma})
		if err != nil {
			t.Fatal(err)
		}
		d := New(hs, Config{})
		if err := d.Publish(1, 0); err != nil {
			t.Fatal(err)
		}
		// Fragment: many short moves in a confined neighborhood, the
		// regime where trails splinter (Fig. 2).
		rng := rand.New(rand.NewSource(8))
		cur := graph.NodeID(0)
		for i := 0; i < 150; i++ {
			nbrs := g.NeighborIDs(cur)
			cur = nbrs[rng.Intn(len(nbrs))]
			if err := d.Move(1, cur); err != nil {
				t.Fatal(err)
			}
		}
		total := 0.0
		for u := 0; u < g.N(); u += 3 {
			got, c, err := d.Query(graph.NodeID(u), 1)
			if err != nil {
				t.Fatal(err)
			}
			if got != cur {
				t.Fatalf("sigma=%d: query said %d, proxy %d", sigma, got, cur)
			}
			total += c
		}
		return total, d
	}

	withSDL, d := run(2)
	withoutSDL, _ := run(-1)
	if withSDL > withoutSDL {
		t.Fatalf("special parents increased total query cost: %v vs %v", withSDL, withoutSDL)
	}
	// The SDL machinery is actually in play.
	_, sdl := d.EntryCount()
	if sdl == 0 {
		t.Fatal("no SDL entries after fragmentation with sigma=2")
	}
}

// Trail fragment accounting: after k moves the number of DL entries for an
// object is at most h+1 (one per level) plus nothing — the single-chain
// design keeps exactly one entry per level on the live trail.
func TestTrailStaysSingleChain(t *testing.T) {
	g := graph.Grid(12, 12)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: 7, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := New(hs, Config{})
	if err := d.Publish(1, 70); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	cur := graph.NodeID(70)
	for i := 0; i < 100; i++ {
		nbrs := g.NeighborIDs(cur)
		cur = nbrs[rng.Intn(len(nbrs))]
		if err := d.Move(1, cur); err != nil {
			t.Fatal(err)
		}
		dl, _ := d.EntryCount()
		if dl > hs.Height()+1 {
			t.Fatalf("after move %d: %d DL entries for one object, max %d", i, dl, hs.Height()+1)
		}
	}
}
