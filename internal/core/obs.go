package core

import (
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/overlay"
)

// Observability hooks for the sequential substrate. Core operations
// execute instantly under the directory lock, so the logical clock is the
// cumulative metered cost: a span opens at the clock's current value,
// every event inside it carries that same time, and End stamps
// start+cost before the clock advances. Operation numbers are assigned in
// execution order, which under the lock is the issue order — exports are
// therefore byte-deterministic for a deterministic workload. Every hook
// reduces to one pointer test when Config.Obs is nil.

// obsStart opens the span for the operation now entering the directory.
func (d *Directory) obsStart(kind string, o ObjectID) {
	if d.cfg.Obs == nil {
		return
	}
	d.obsOp++
	d.obsCur = d.cfg.Obs.StartSpan(kind, d.obsOp, int(o), d.obsNow)
}

// obsFinish closes the in-flight span and advances the cost clock.
func (d *Directory) obsFinish(cost float64) {
	if d.cfg.Obs == nil {
		return
	}
	d.obsCur.End(d.obsNow + cost)
	d.obsNow += cost
	d.obsCur = obs.Span{}
}

// obsEvent annotates the in-flight span. Inert between operations (the
// zero span swallows events), so helpers shared by several operations can
// call it unconditionally.
func (d *Directory) obsEvent(kind string, level int, host graph.NodeID, cost float64) {
	if d.cfg.Obs == nil {
		return
	}
	d.obsCur.Event(kind, level, int(host), cost, d.obsNow)
}

// obsVisit accounts one message arrival at station st: the per-node
// traffic series and the per-level hop count.
func (d *Directory) obsVisit(st overlay.Station) {
	if d.cfg.Obs == nil {
		return
	}
	d.cfg.Obs.AddAt(obs.SeriesNodeMsgs, int(st.Host), 1)
	d.cfg.Obs.AddAt(obs.SeriesLevelHops, st.Level, 1)
}

// ObserveLoad snapshots the current per-node storage load (placement-
// aware DL+SDL entry counts over n physical nodes) into the recorder's
// node.entries series, replacing any previous snapshot.
func (d *Directory) ObserveLoad(n int) {
	if d.cfg.Obs == nil {
		return
	}
	load := d.LoadByNode(n)
	vals := make([]float64, len(load))
	for i, v := range load {
		vals[i] = float64(v)
	}
	d.cfg.Obs.SetSeries(obs.SeriesNodeEntries, vals)
}
