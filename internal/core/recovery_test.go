package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/hier"
)

// populate publishes objs objects and walks each through a few moves,
// returning the final proxies.
func populate(t *testing.T, d *Directory, g *graph.Graph, objs int, seed int64) []graph.NodeID {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	locs := make([]graph.NodeID, objs)
	for o := range locs {
		locs[o] = graph.NodeID(rng.Intn(g.N()))
		if err := d.Publish(ObjectID(o), locs[o]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10*objs; i++ {
		o := rng.Intn(objs)
		nbrs := g.NeighborIDs(locs[o])
		locs[o] = nbrs[rng.Intn(len(nbrs))]
		if err := d.Move(ObjectID(o), locs[o]); err != nil {
			t.Fatal(err)
		}
	}
	return locs
}

func TestChaosRecoveryUnpublishErasesTrail(t *testing.T) {
	d, g := buildDir(t, 6, 6, hier.Config{Seed: 1, SpecialParentOffset: 2}, Config{})
	locs := populate(t, d, g, 3, 7)
	if err := d.Unpublish(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Location(1); ok {
		t.Fatal("unpublished object still has a location")
	}
	if _, _, err := d.Query(0, 1); err == nil {
		t.Fatal("query answered for an unpublished object")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("invariants after unpublish: %v", err)
	}
	for _, o := range []ObjectID{0, 2} {
		if got, _, err := d.Query(0, o); err != nil || got != locs[o] {
			t.Fatalf("surviving object %d: proxy %d err %v, want %d", o, got, err, locs[o])
		}
	}
	m := d.Meter()
	if m.RecoveryOps != 1 || m.RecoveryCost <= 0 {
		t.Fatalf("unpublish walk not metered: %+v", m)
	}
	if err := d.Unpublish(1); err == nil {
		t.Fatal("double unpublish accepted")
	}
	// Re-introducing the object is a fresh publish.
	if err := d.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	if got, _, err := d.Query(35, 1); err != nil || got != 0 {
		t.Fatalf("re-published object: proxy %d err %v", got, err)
	}
}

func TestChaosRecoveryDropHostThenRepair(t *testing.T) {
	d, g := buildDir(t, 7, 7, hier.Config{Seed: 2, SpecialParentOffset: 2}, Config{})
	locs := populate(t, d, g, 4, 9)
	root := d.ov.Root().Host
	damaged := d.DropHost(root)
	// The root station tops every home chain, so every object is damaged,
	// and the list is sorted.
	if len(damaged) != 4 {
		t.Fatalf("DropHost(root) damaged %v, want all 4 objects", damaged)
	}
	for i, o := range damaged {
		if int(o) != i {
			t.Fatalf("damaged list not sorted: %v", damaged)
		}
	}
	if err := d.CheckInvariants(); err == nil {
		t.Fatal("invariants still hold after dropping the root host")
	}
	for _, o := range damaged {
		if err := d.Repair(o); err != nil {
			t.Fatalf("repair %d: %v", o, err)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("invariants after repair: %v", err)
	}
	for o, want := range locs {
		if got, _, err := d.Query(graph.NodeID((o*5)%g.N()), ObjectID(o)); err != nil || got != want {
			t.Fatalf("object %d after repair: proxy %d err %v, want %d", o, got, err, want)
		}
	}
	m := d.Meter()
	if m.RecoveryOps != 4 || m.RecoveryCost <= 0 {
		t.Fatalf("repairs not metered: %+v", m)
	}
	// A repaired directory keeps working.
	if err := d.Move(0, locs[1]); err != nil {
		t.Fatal(err)
	}
	if err := d.Repair(99); err == nil {
		t.Fatal("repair of an unpublished object accepted")
	}
}

func TestChaosRecoveryDropHostSparesDistantTrails(t *testing.T) {
	d, g := buildDir(t, 6, 6, hier.Config{Seed: 3, SpecialParentOffset: 2}, Config{})
	if err := d.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	// A leaf host that appears in no trail damages nothing.
	var bystander graph.NodeID = -1
	for n, load := range d.LoadByNode(g.N()) {
		if load == 0 {
			bystander = graph.NodeID(n)
			break
		}
	}
	if bystander < 0 {
		t.Skip("every node hosts entries on this overlay")
	}
	if got := d.DropHost(bystander); len(got) != 0 {
		t.Fatalf("dropping an empty host damaged %v", got)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestChaosRecoveryAbsorbMeter(t *testing.T) {
	d1, g := buildDir(t, 5, 5, hier.Config{Seed: 4}, Config{})
	populate(t, d1, g, 2, 3)
	d2, _ := buildDir(t, 5, 5, hier.Config{Seed: 5}, Config{})
	if err := d2.Publish(9, 0); err != nil {
		t.Fatal(err)
	}
	own := d2.Meter()
	d2.AbsorbMeter(d1.Meter())
	got := d2.Meter()
	want := d1.Meter()
	want.Add(own)
	if got != want {
		t.Fatalf("absorbed meter %+v, want %+v", got, want)
	}
}
