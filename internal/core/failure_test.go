package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/overlay"
)

// Failure injection: corrupt the directory state in targeted ways and
// verify CheckInvariants reports each corruption. This guards the checker
// itself — a checker that cannot see breakage would make every other
// invariant test meaningless.
func TestInvariantCheckerDetectsCorruption(t *testing.T) {
	setup := func() *Directory {
		d, g := buildDir(t, 6, 6, hier.Config{Seed: 3, SpecialParentOffset: 2}, Config{})
		if err := d.Publish(1, 0); err != nil {
			t.Fatal(err)
		}
		for _, to := range []graph.NodeID{1, 2, 8, 14} {
			if err := d.Move(1, to); err != nil {
				t.Fatal(err)
			}
		}
		_ = g
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("clean state rejected: %v", err)
		}
		return d
	}

	t.Run("root entry removed", func(t *testing.T) {
		d := setup()
		root := d.ov.Root()
		s, _ := d.peek(root)
		delete(s.dl, 1)
		if err := d.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "root") {
			t.Fatalf("missed root corruption: %v", err)
		}
	})

	t.Run("mid-trail entry removed", func(t *testing.T) {
		d := setup()
		// Remove the entry one level below the root.
		root := d.ov.Root()
		s, _ := d.peek(root)
		child := s.dl[1].child
		cs, _ := d.peek(child)
		delete(cs.dl, 1)
		if err := d.CheckInvariants(); err == nil {
			t.Fatal("missed broken trail")
		}
	})

	t.Run("orphan entry injected", func(t *testing.T) {
		d := setup()
		// Stamp the object at a station that is not on its trail.
		orphan := overlay.Station{Level: 1, Key: 999, Host: 5}
		d.slot(orphan).dl[1] = dlEntry{hasChild: false}
		if err := d.CheckInvariants(); err == nil {
			t.Fatal("missed orphan entry")
		}
	})

	t.Run("stale SDL shortcut", func(t *testing.T) {
		d := setup()
		ghost := overlay.Station{Level: 1, Key: 777, Host: 3}
		sp := d.ov.Root()
		d.slot(sp).sdl[1] = sdlEntry{child: ghost}
		if err := d.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "SDL") {
			t.Fatalf("missed stale SDL: %v", err)
		}
	})

	t.Run("wrong proxy", func(t *testing.T) {
		d := setup()
		d.loc[1] = 30 // lie about the ground truth
		if err := d.CheckInvariants(); err == nil {
			t.Fatal("missed proxy mismatch")
		}
	})

	t.Run("trail level skip", func(t *testing.T) {
		d := setup()
		root := d.ov.Root()
		s, _ := d.peek(root)
		e := s.dl[1]
		// Point the root two levels down directly.
		down, _ := d.peek(e.child)
		e.child = down.dl[1].child
		s.dl[1] = e
		if err := d.CheckInvariants(); err == nil {
			t.Fatal("missed level skip")
		}
	})
}

// A query for an object whose trail was severed reports an error rather
// than answering wrongly.
func TestQueryReportsBrokenTrail(t *testing.T) {
	d, _ := buildDir(t, 6, 6, hier.Config{Seed: 3, SpecialParentOffset: -1}, Config{})
	if err := d.Publish(1, 10); err != nil {
		t.Fatal(err)
	}
	// Sever the trail below the root.
	root := d.ov.Root()
	s, _ := d.peek(root)
	child := s.dl[1].child
	cs, _ := d.peek(child)
	delete(cs.dl, 1)
	if _, _, err := d.Query(30, 1); err == nil {
		t.Fatal("query answered over a severed trail")
	}
}

// Move onto a corrupted directory (object missing everywhere) fails
// loudly instead of corrupting further.
func TestMoveReportsMissingTrail(t *testing.T) {
	d, _ := buildDir(t, 5, 5, hier.Config{Seed: 1, SpecialParentOffset: -1}, Config{})
	if err := d.Publish(1, 3); err != nil {
		t.Fatal(err)
	}
	// Erase every trace of the object.
	for _, s := range d.slots {
		delete(s.dl, 1)
		delete(s.sdl, 1)
	}
	if err := d.Move(1, 4); err == nil {
		t.Fatal("move over an erased trail succeeded")
	}
}
