package core

import (
	"repro/internal/graph"
	"repro/internal/overlay"
)

// Placement decides which physical node stores a directory entry for an
// object at a given station, and what the intra-cluster routing surcharge
// for reaching that entry is. The default (HostPlacement) stores entries on
// the station's own host at zero surcharge; the load-balanced placement of
// §5 hashes entries across the station's cluster and routes to them over an
// embedded de Bruijn graph.
type Placement interface {
	// Place returns the physical node that stores the entry for o at st.
	Place(st overlay.Station, o ObjectID) graph.NodeID
	// RouteCost returns the message distance paid to reach the entry for
	// o from the station host (one way).
	RouteCost(st overlay.Station, o ObjectID) float64
}

// HostPlacement stores every entry on the station host itself (Algorithm 1
// without the §5 extension).
type HostPlacement struct{}

// Place returns the station host.
func (HostPlacement) Place(st overlay.Station, _ ObjectID) graph.NodeID { return st.Host }

// RouteCost is always zero for host placement.
func (HostPlacement) RouteCost(overlay.Station, ObjectID) float64 { return 0 }
