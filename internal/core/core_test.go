package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/hier"
)

// buildDir constructs a directory over a grid HS for tests.
func buildDir(t testing.TB, w, h int, hcfg hier.Config, dcfg Config) (*Directory, *graph.Graph) {
	t.Helper()
	g := graph.Grid(w, h)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hcfg)
	if err != nil {
		t.Fatalf("hier.Build: %v", err)
	}
	return New(hs, dcfg), g
}

func TestPublishAndLocation(t *testing.T) {
	d, _ := buildDir(t, 6, 6, hier.Config{Seed: 1}, Config{})
	if err := d.Publish(1, 7); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if v, ok := d.Location(1); !ok || v != 7 {
		t.Fatalf("Location = %d, %t", v, ok)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	mtr := d.Meter()
	if mtr.PublishOps != 1 || mtr.PublishCost <= 0 {
		t.Fatalf("meter %+v", mtr)
	}
}

func TestPublishDuplicateFails(t *testing.T) {
	d, _ := buildDir(t, 4, 4, hier.Config{Seed: 1}, Config{})
	if err := d.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Publish(1, 5); err == nil {
		t.Fatal("duplicate publish accepted")
	}
}

func TestMoveUnpublishedFails(t *testing.T) {
	d, _ := buildDir(t, 4, 4, hier.Config{Seed: 1}, Config{})
	if err := d.Move(9, 3); err == nil {
		t.Fatal("move of unpublished object accepted")
	}
}

func TestQueryUnpublishedFails(t *testing.T) {
	d, _ := buildDir(t, 4, 4, hier.Config{Seed: 1}, Config{})
	if _, _, err := d.Query(0, 9); err == nil {
		t.Fatal("query of unpublished object accepted")
	}
}

func TestMoveNoopSameNode(t *testing.T) {
	d, _ := buildDir(t, 4, 4, hier.Config{Seed: 1}, Config{})
	if err := d.Publish(1, 3); err != nil {
		t.Fatal(err)
	}
	before := d.Meter()
	if err := d.Move(1, 3); err != nil {
		t.Fatal(err)
	}
	after := d.Meter()
	if after.MaintOps != before.MaintOps || after.MaintCost != before.MaintCost {
		t.Fatal("no-op move changed the meter")
	}
}

func TestMoveUpdatesLocationAndInvariants(t *testing.T) {
	d, g := buildDir(t, 8, 8, hier.Config{Seed: 2, UseParentSets: true, SpecialParentOffset: 2}, Config{})
	if err := d.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	cur := graph.NodeID(0)
	for i := 0; i < 200; i++ {
		nbrs := g.NeighborIDs(cur)
		next := nbrs[rng.Intn(len(nbrs))]
		if err := d.Move(1, next); err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
		cur = next
		if v, _ := d.Location(1); v != cur {
			t.Fatalf("location %d, want %d", v, cur)
		}
		if i%20 == 0 {
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("after move %d: %v", i, err)
			}
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryFindsProxyFromEveryNode(t *testing.T) {
	for _, ps := range []bool{false, true} {
		d, g := buildDir(t, 7, 7, hier.Config{Seed: 4, UseParentSets: ps, SpecialParentOffset: 2}, Config{})
		if err := d.Publish(5, 24); err != nil {
			t.Fatal(err)
		}
		// Fragment the trail with a few moves.
		for _, to := range []graph.NodeID{25, 26, 33, 32, 31} {
			if err := d.Move(5, to); err != nil {
				t.Fatal(err)
			}
		}
		for u := 0; u < g.N(); u++ {
			got, cost, err := d.Query(graph.NodeID(u), 5)
			if err != nil {
				t.Fatalf("parentsets=%t query from %d: %v", ps, u, err)
			}
			if got != 31 {
				t.Fatalf("parentsets=%t query from %d returned %d", ps, u, got)
			}
			m := d.Overlay().Metric()
			if cost+1e-9 < m.Dist(graph.NodeID(u), 31) {
				t.Fatalf("query cost %v below optimal %v", cost, m.Dist(graph.NodeID(u), 31))
			}
		}
	}
}

func TestManyObjectsIndependent(t *testing.T) {
	d, g := buildDir(t, 8, 8, hier.Config{Seed: 9, UseParentSets: true, SpecialParentOffset: 2}, Config{})
	rng := rand.New(rand.NewSource(11))
	const m = 20
	locs := make([]graph.NodeID, m)
	for o := 0; o < m; o++ {
		locs[o] = graph.NodeID(rng.Intn(g.N()))
		if err := d.Publish(ObjectID(o), locs[o]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 400; i++ {
		o := rng.Intn(m)
		nbrs := g.NeighborIDs(locs[o])
		locs[o] = nbrs[rng.Intn(len(nbrs))]
		if err := d.Move(ObjectID(o), locs[o]); err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for o := 0; o < m; o++ {
		from := graph.NodeID(rng.Intn(g.N()))
		got, _, err := d.Query(from, ObjectID(o))
		if err != nil {
			t.Fatalf("query %d: %v", o, err)
		}
		if got != locs[o] {
			t.Fatalf("object %d at %d, query said %d", o, locs[o], got)
		}
	}
}

func TestMaintenanceRatioAtLeastOne(t *testing.T) {
	d, g := buildDir(t, 8, 8, hier.Config{Seed: 5}, Config{})
	rng := rand.New(rand.NewSource(6))
	cur := graph.NodeID(0)
	if err := d.Publish(1, cur); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		nbrs := g.NeighborIDs(cur)
		cur = nbrs[rng.Intn(len(nbrs))]
		if err := d.Move(1, cur); err != nil {
			t.Fatal(err)
		}
	}
	mtr := d.Meter()
	if mtr.MaintOps != 100 {
		t.Fatalf("ops %d", mtr.MaintOps)
	}
	if r := mtr.MaintRatio(); r < 1 {
		t.Fatalf("maintenance ratio %v < 1", r)
	}
	if mtr.MaintOptimal != 100 { // unit grid, adjacent moves
		t.Fatalf("optimal %v", mtr.MaintOptimal)
	}
}

func TestQueryRatioBoundedEmpirically(t *testing.T) {
	// The paper's Theorem 4.11 gives an O(1) query cost ratio; check the
	// measured ratio stays below a generous constant on a mid-size grid.
	d, g := buildDir(t, 11, 11, hier.Config{Seed: 7, UseParentSets: true, SpecialParentOffset: 2}, Config{})
	rng := rand.New(rand.NewSource(8))
	const m = 10
	locs := make([]graph.NodeID, m)
	for o := 0; o < m; o++ {
		locs[o] = graph.NodeID(rng.Intn(g.N()))
		if err := d.Publish(ObjectID(o), locs[o]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		o := rng.Intn(m)
		nbrs := g.NeighborIDs(locs[o])
		locs[o] = nbrs[rng.Intn(len(nbrs))]
		if err := d.Move(ObjectID(o), locs[o]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		o := rng.Intn(m)
		from := graph.NodeID(rng.Intn(g.N()))
		if from == locs[o] {
			continue
		}
		if _, _, err := d.Query(from, ObjectID(o)); err != nil {
			t.Fatal(err)
		}
	}
	if r := d.Meter().QueryRatio(); r < 1 || r > 60 {
		t.Fatalf("query ratio %v outside [1, 60]", r)
	}
}

func TestSpecialParentCostSeparateByDefault(t *testing.T) {
	d, g := buildDir(t, 8, 8, hier.Config{Seed: 5, SpecialParentOffset: 1}, Config{})
	if err := d.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	cur := graph.NodeID(0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		nbrs := g.NeighborIDs(cur)
		cur = nbrs[rng.Intn(len(nbrs))]
		if err := d.Move(1, cur); err != nil {
			t.Fatal(err)
		}
	}
	mtr := d.Meter()
	if mtr.SpecialCost <= 0 {
		t.Fatal("no special-parent cost recorded with sigma=1")
	}

	// With folding enabled the maintenance cost includes the SDL traffic.
	d2, _ := buildDir(t, 8, 8, hier.Config{Seed: 5, SpecialParentOffset: 1}, Config{CountSpecialParentCost: true})
	if err := d2.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	cur = 0
	rng = rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		nbrs := g.NeighborIDs(cur)
		cur = nbrs[rng.Intn(len(nbrs))]
		if err := d2.Move(1, cur); err != nil {
			t.Fatal(err)
		}
	}
	if d2.Meter().MaintCost <= mtr.MaintCost {
		t.Fatalf("folding SDL cost did not increase maintenance cost: %v vs %v",
			d2.Meter().MaintCost, mtr.MaintCost)
	}
}

func TestLoadByNodeCountsEntries(t *testing.T) {
	d, g := buildDir(t, 6, 6, hier.Config{Seed: 3, SpecialParentOffset: 2}, Config{})
	for o := 0; o < 12; o++ {
		if err := d.Publish(ObjectID(o), graph.NodeID(o)); err != nil {
			t.Fatal(err)
		}
	}
	load := d.LoadByNode(g.N())
	total := 0
	for _, c := range load {
		total += c
	}
	dl, sdl := d.EntryCount()
	if total != dl+sdl {
		t.Fatalf("load total %d, entries %d+%d", total, dl, sdl)
	}
	if total == 0 {
		t.Fatal("no load recorded")
	}
}

func TestObjectsSorted(t *testing.T) {
	d, _ := buildDir(t, 4, 4, hier.Config{Seed: 1}, Config{})
	for _, o := range []ObjectID{5, 1, 3} {
		if err := d.Publish(o, 0); err != nil {
			t.Fatal(err)
		}
	}
	objs := d.Objects()
	if len(objs) != 3 || objs[0] != 1 || objs[1] != 3 || objs[2] != 5 {
		t.Fatalf("objects %v", objs)
	}
}

func TestResetMeter(t *testing.T) {
	d, _ := buildDir(t, 4, 4, hier.Config{Seed: 1}, Config{})
	if err := d.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	d.ResetMeter()
	if m := d.Meter(); m.PublishOps != 0 || m.PublishCost != 0 {
		t.Fatalf("meter not reset: %+v", m)
	}
}

func TestMeterAdd(t *testing.T) {
	a := CostMeter{MaintCost: 2, MaintOptimal: 1, QueryCost: 4, QueryOptimal: 2, MaintOps: 1, QueryOps: 1}
	b := CostMeter{MaintCost: 4, MaintOptimal: 1, PublishCost: 3, PublishOps: 2, SpecialCost: 1, LBRouteCost: 0.5}
	a.Add(b)
	if a.MaintCost != 6 || a.MaintOptimal != 2 || a.PublishOps != 2 || a.SpecialCost != 1 || a.LBRouteCost != 0.5 {
		t.Fatalf("add result %+v", a)
	}
	if a.MaintRatio() != 3 {
		t.Fatalf("maint ratio %v", a.MaintRatio())
	}
	if a.QueryRatio() != 2 {
		t.Fatalf("query ratio %v", a.QueryRatio())
	}
	var zero CostMeter
	if zero.MaintRatio() != 0 || zero.QueryRatio() != 0 {
		t.Fatal("zero meter ratios should be 0")
	}
}

func TestCountReply(t *testing.T) {
	d, _ := buildDir(t, 6, 6, hier.Config{Seed: 1}, Config{CountReply: true})
	if err := d.Publish(1, 35); err != nil {
		t.Fatal(err)
	}
	_, cost, err := d.Query(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Overlay().Metric()
	if cost < 2*m.Dist(0, 35) {
		t.Fatalf("reply-counting query cost %v below 2*dist %v", cost, 2*m.Dist(0, 35))
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() CostMeter {
		d, g := buildDir(t, 8, 8, hier.Config{Seed: 42, UseParentSets: true, SpecialParentOffset: 2}, Config{})
		rng := rand.New(rand.NewSource(9))
		cur := graph.NodeID(10)
		if err := d.Publish(1, cur); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			nbrs := g.NeighborIDs(cur)
			cur = nbrs[rng.Intn(len(nbrs))]
			if err := d.Move(1, cur); err != nil {
				t.Fatal(err)
			}
			if _, _, err := d.Query(graph.NodeID(i%g.N()), 1); err != nil {
				t.Fatal(err)
			}
		}
		return d.Meter()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic meters:\n%+v\n%+v", a, b)
	}
}

func BenchmarkMoveGrid16(b *testing.B) {
	g := graph.Grid(16, 16)
	m := graph.NewMetric(g)
	m.Precompute(0)
	hs, err := hier.Build(g, m, hier.Config{Seed: 1, UseParentSets: true, SpecialParentOffset: 2})
	if err != nil {
		b.Fatal(err)
	}
	d := New(hs, Config{})
	if err := d.Publish(1, 0); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cur := graph.NodeID(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nbrs := g.NeighborIDs(cur)
		cur = nbrs[rng.Intn(len(nbrs))]
		if err := d.Move(1, cur); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryGrid16(b *testing.B) {
	g := graph.Grid(16, 16)
	m := graph.NewMetric(g)
	m.Precompute(0)
	hs, err := hier.Build(g, m, hier.Config{Seed: 1, UseParentSets: true, SpecialParentOffset: 2})
	if err != nil {
		b.Fatal(err)
	}
	d := New(hs, Config{})
	if err := d.Publish(1, 100); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Query(graph.NodeID(i%g.N()), 1); err != nil {
			b.Fatal(err)
		}
	}
}
