package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Integration: the directory must behave identically over the
// general-network sparse-partition overlay (§6).
func TestDirectoryOverPartitionOverlay(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Grid(7, 7),
		graph.Ring(24),
		graph.RandomTree(30, rand.New(rand.NewSource(2))),
	} {
		m := graph.NewMetric(g)
		hs, err := partition.Build(g, m, partition.Config{SpecialParentOffset: 2})
		if err != nil {
			t.Fatal(err)
		}
		d := New(hs, Config{})
		rng := rand.New(rand.NewSource(5))
		const objs = 8
		locs := make([]graph.NodeID, objs)
		for o := 0; o < objs; o++ {
			locs[o] = graph.NodeID(rng.Intn(g.N()))
			if err := d.Publish(ObjectID(o), locs[o]); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 300; i++ {
			o := rng.Intn(objs)
			nbrs := g.NeighborIDs(locs[o])
			locs[o] = nbrs[rng.Intn(len(nbrs))]
			if err := d.Move(ObjectID(o), locs[o]); err != nil {
				t.Fatalf("move %d: %v", i, err)
			}
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for o := 0; o < objs; o++ {
			from := graph.NodeID(rng.Intn(g.N()))
			got, cost, err := d.Query(from, ObjectID(o))
			if err != nil {
				t.Fatalf("query: %v", err)
			}
			if got != locs[o] {
				t.Fatalf("object %d at %d, query said %d", o, locs[o], got)
			}
			if cost+1e-9 < m.Dist(from, locs[o]) {
				t.Fatalf("query cost %v below optimal", cost)
			}
		}
		mtr := d.Meter()
		if mtr.MaintRatio() < 1 {
			t.Fatalf("maintenance ratio %v < 1", mtr.MaintRatio())
		}
	}
}
