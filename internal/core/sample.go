package core

import (
	"repro/internal/graph"
)

// exactRowCap bounds the on-demand Dijkstra rows the sampler keeps; old
// rows are evicted FIFO. Sampled operations cluster around a few proxies
// and requesters, so a small cache absorbs most repeat lookups without
// ever approaching the n×n table the oracle mode exists to avoid.
const exactRowCap = 64

// exactSampler re-measures sampled distance terms with exact on-demand
// Dijkstra rows. It is only touched under the directory mutex.
type exactSampler struct {
	g     *graph.Graph
	rows  map[graph.NodeID][]float64
	order []graph.NodeID // FIFO eviction order
}

func newExactSampler(g *graph.Graph) *exactSampler {
	return &exactSampler{g: g, rows: make(map[graph.NodeID][]float64, exactRowCap)}
}

// dist returns the exact shortest-path distance, reusing a cached row of
// either endpoint when present.
func (s *exactSampler) dist(u, v graph.NodeID) float64 {
	if row, ok := s.rows[u]; ok {
		return row[v]
	}
	if row, ok := s.rows[v]; ok {
		return row[u]
	}
	row := s.g.Dijkstra(u).Dist
	if len(s.order) >= exactRowCap {
		delete(s.rows, s.order[0])
		s.order = s.order[1:]
	}
	s.rows[u] = row
	s.order = append(s.order, u)
	return row[v]
}

// mix64 is the SplitMix64 finalizer; the sampling decision hashes
// (seed, operation index) so the sampled subset is a deterministic
// function of the configuration, not of scheduling.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sampleBegin decides whether the operation starting now is re-measured
// exactly, and resets the per-operation accumulators. Called under d.mu.
func (d *Directory) sampleBegin() bool {
	if d.sampler == nil {
		return false
	}
	idx := d.sampOps
	d.sampOps++
	on := mix64(uint64(d.cfg.ExactSampleSeed)^idx)%uint64(d.cfg.ExactSampleEvery) == 0
	d.sampActive = on
	d.sampEst, d.sampExact = 0, 0
	return on
}

// dist is the metered distance: the oracle estimate, shadowed by an exact
// re-measurement while a sampled operation is in flight.
func (d *Directory) dist(u, v graph.NodeID) float64 {
	est := d.m.Dist(u, v)
	if d.sampActive {
		d.sampEst += est
		//motlint:ignore hotalloc exact re-measurement runs on 1/ExactSampleEvery operations
		d.sampExact += d.sampler.dist(u, v)
	}
	return est
}

// sampleEndMaint books a completed sampled move: the accumulated cost
// terms plus the estimated and exact optimal (old-proxy to new-proxy).
func (d *Directory) sampleEndMaint(from, to graph.NodeID, optEst float64) {
	d.sampActive = false
	d.meter.SampledMaintOps++
	d.meter.SampledMaintCostEst += d.sampEst
	d.meter.SampledMaintCostExact += d.sampExact
	d.meter.SampledMaintOptEst += optEst
	//motlint:ignore hotalloc exact re-measurement runs on 1/ExactSampleEvery operations
	d.meter.SampledMaintOptExact += d.sampler.dist(from, to)
}

// sampleEndQuery books a completed sampled query.
func (d *Directory) sampleEndQuery(from, proxy graph.NodeID, optEst float64) {
	d.sampActive = false
	d.meter.SampledQueryOps++
	d.meter.SampledQueryCostEst += d.sampEst
	d.meter.SampledQueryCostExact += d.sampExact
	d.meter.SampledQueryOptEst += optEst
	//motlint:ignore hotalloc exact re-measurement runs on 1/ExactSampleEvery operations
	d.meter.SampledQueryOptExact += d.sampler.dist(from, proxy)
}
