package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/overlay"
)

// Fault recovery (the §7 adaptability path, fine-grained form): when a
// station crashes, the entries it stored vanish. Rather than rebuilding the
// whole directory, each damaged object's trail is re-stamped along the home
// chain of its surviving ground-truth proxy — the same O(diameter) walk a
// publish pays, amortized O(1) cluster updates in the paper's analysis.
// Recovery message cost is metered separately (CostMeter.RecoveryCost) so
// fault-free cost ratios stay comparable.

// sortedSlotKeys returns the materialized slot keys in (level, key) order,
// for deterministic sweeps over the slot map.
func (d *Directory) sortedSlotKeys() []slotKey {
	keys := make([]slotKey, 0, len(d.slots))
	for k := range d.slots {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].level != keys[j].level {
			return keys[i].level < keys[j].level
		}
		return keys[i].key < keys[j].key
	})
	return keys
}

// wipe erases every DL and SDL record of o. Deletions commute, so the sweep
// order is irrelevant; callers re-stamp afterwards if the object lives on.
func (d *Directory) wipe(o ObjectID) {
	for _, s := range d.slots {
		delete(s.dl, o)
		delete(s.sdl, o)
	}
}

// Unpublish removes object o from the directory: its trail is erased from
// the root down to the proxy (charged as one recovery walk) and its
// ground-truth record dropped. This is the "sensor leave / object retired"
// half of §7 dynamics; re-introducing the object later is a fresh Publish.
func (d *Directory) Unpublish(o ObjectID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.loc[o]; !ok {
		return fmt.Errorf("core: object %d not published", o)
	}
	d.obsStart(obs.OpRecovery, o)
	cost := 0.0
	st := d.ov.Root()
	pos := st.Host
	for {
		cost += d.m.Dist(pos, st.Host)
		pos = st.Host
		d.obsVisit(st)
		s, ok := d.peek(st)
		if !ok {
			break
		}
		e, has := s.dl[o]
		if !has {
			break
		}
		d.removeEntry(st, o)
		if !e.hasChild {
			break
		}
		st = e.child
	}
	// The trailing defensive wipe iterates the slot map, so it must stay
	// silent — one aggregate event marks it instead.
	d.obsEvent(obs.EvWipe, -1, pos, 0)
	d.wipe(o) // defensive: a damaged trail may have left detached entries
	delete(d.loc, o)
	delete(d.ver, o)
	d.meter.RecoveryCost += cost
	d.meter.RecoveryOps++
	d.obsFinish(cost)
	return nil
}

// DropHost models the crash of physical node n: every DL/SDL entry stored
// at a station hosted on n is lost, and SDL shortcuts elsewhere that point
// into n are invalidated. It returns the sorted IDs of the objects whose
// directory state was damaged — the set a recovery pass must Repair once
// the node is back (or that a rebuild must cover past the churn threshold).
func (d *Directory) DropHost(n graph.NodeID) []ObjectID {
	d.mu.Lock()
	defer d.mu.Unlock()
	damaged := map[ObjectID]bool{}
	for _, k := range d.sortedSlotKeys() {
		s := d.slots[k]
		if s.station.Host == n {
			for o := range s.dl {
				damaged[o] = true
			}
			for o := range s.sdl {
				damaged[o] = true
			}
			s.dl = make(map[ObjectID]dlEntry)
			s.sdl = make(map[ObjectID]sdlEntry)
			continue
		}
		for o, se := range s.sdl {
			if se.child.Host == n {
				damaged[o] = true
				delete(s.sdl, o)
			}
		}
		for o, e := range s.dl {
			if e.hasChild && e.child.Host == n {
				damaged[o] = true
			}
		}
	}
	out := make([]ObjectID, 0, len(damaged))
	for o := range damaged {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Repair re-establishes o's trail after crash damage: all surviving
// fragments are wiped and the full home chain of the current ground-truth
// proxy is re-stamped at the object's current version (the fine-grained §7
// path — one object's chain, not a directory rebuild). The walk is charged
// to RecoveryCost.
func (d *Directory) Repair(o ObjectID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	proxy, ok := d.loc[o]
	if !ok {
		return fmt.Errorf("core: object %d not published", o)
	}
	d.obsStart(obs.OpRecovery, o)
	// wipe iterates the slot map; mark it with one aggregate event rather
	// than per-slot events whose order would track map iteration.
	d.obsEvent(obs.EvWipe, -1, proxy, 0)
	d.wipe(o)
	cost := d.stampWalk(o, proxy, d.ver[o])
	d.meter.RecoveryCost += cost
	d.meter.RecoveryOps++
	d.obsFinish(cost)
	return nil
}

// Restore re-introduces object o at proxy node at: the same walk and
// resulting directory state as Publish, but charged to RecoveryCost. The
// churn path uses it where the re-stamp is repair work rather than a new
// object — republishing the population into a fresh post-rebuild
// directory, and re-introducing objects parked on a failed proxy once the
// node recovers — so fault-free cost ratios stay comparable.
func (d *Directory) Restore(o ObjectID, at graph.NodeID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cur, ok := d.loc[o]; ok {
		return fmt.Errorf("core: object %d already published at node %d", o, cur)
	}
	d.obsStart(obs.OpRecovery, o)
	cost := d.stampWalk(o, at, 0)
	d.loc[o] = at
	d.ver[o] = 0
	d.meter.RecoveryCost += cost
	d.meter.RecoveryOps++
	d.obsFinish(cost)
	return nil
}

// StaleObjects returns the sorted IDs of published objects whose stored
// trail is no longer operational under the current overlay: following the
// detection trail from the current root station down its child pointers
// must reach the object's ground-truth proxy at level 0. That walk fails
// after crash damage (DropHost wiped a link) and after structural overlay
// repair moved the root or the height (the trail's anchor is gone), which
// are exactly the cases where a climbing operation could miss the object
// — every surviving trail is still found through its peak, at worst at
// the root (Lemma 2.1's meeting argument needs only the anchored top).
// The set is what a recovery pass must Repair; healthy move-shaped trails
// are not flagged, which keeps repair work local to the perturbation.
// Objects whose proxy satisfies skip (nil skips none) are not examined —
// a failed proxy has no defined detection path until it recovers.
func (d *Directory) StaleObjects(skip func(graph.NodeID) bool) []ObjectID {
	d.mu.Lock()
	defer d.mu.Unlock()
	objs := make([]ObjectID, 0, len(d.loc))
	for o := range d.loc {
		if skip != nil && skip(d.loc[o]) {
			continue
		}
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	out := objs[:0]
	root := d.ov.Root()
	// Slots above the current root level can only hold fragments of
	// trails stamped when the hierarchy was taller: after a height
	// shrink no walk — queries never climb past the root — reaches
	// them, so their objects must be re-stamped even when the walk
	// below the new root succeeds, or the fragments leak as orphans.
	var high []*slot
	for _, k := range d.sortedSlotKeys() {
		if s := d.slots[k]; k.level > root.Level && (len(s.dl) > 0 || len(s.sdl) > 0) {
			high = append(high, s)
		}
	}
	for _, o := range objs {
		if !d.trailIntact(o, d.loc[o], root) || holdsAbove(high, o) {
			out = append(out, o)
		}
	}
	return out
}

// holdsAbove reports whether any of the above-root slots still records o.
func holdsAbove(high []*slot, o ObjectID) bool {
	for _, s := range high {
		if _, has := s.dl[o]; has {
			return true
		}
		if _, has := s.sdl[o]; has {
			return true
		}
	}
	return false
}

// trailIntact follows o's stored trail from the given root station down
// to level 0, reporting whether it is unbroken and ends at the proxy.
func (d *Directory) trailIntact(o ObjectID, proxy graph.NodeID, root overlay.Station) bool {
	st := root
	for {
		s, ok := d.peek(st)
		if !ok {
			return false
		}
		e, has := s.dl[o]
		if !has {
			return false
		}
		if !e.hasChild {
			return st.Level == 0 && st.Host == proxy
		}
		if e.child.Level != st.Level-1 {
			// Level strictly decreases, so the walk always terminates.
			return false
		}
		st = e.child
	}
}

// SwapOverlay replaces the directory's overlay (and its metric oracle)
// with a rebuilt one over the same network. Stored trails are untouched:
// the caller must follow up with a StaleObjects sweep and Repair whatever
// the structural change broke, exactly as after an in-place overlay
// repair.
func (d *Directory) SwapOverlay(ov overlay.Overlay) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ov = ov
	d.m = ov.Metric()
}

// AbsorbMeter folds a previous directory's accumulated costs into this one,
// preserving cost continuity across a full rebuild (the coarse §7 fallback
// past the churn threshold).
func (d *Directory) AbsorbMeter(m CostMeter) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.meter.Add(m)
}
