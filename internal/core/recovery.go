package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Fault recovery (the §7 adaptability path, fine-grained form): when a
// station crashes, the entries it stored vanish. Rather than rebuilding the
// whole directory, each damaged object's trail is re-stamped along the home
// chain of its surviving ground-truth proxy — the same O(diameter) walk a
// publish pays, amortized O(1) cluster updates in the paper's analysis.
// Recovery message cost is metered separately (CostMeter.RecoveryCost) so
// fault-free cost ratios stay comparable.

// sortedSlotKeys returns the materialized slot keys in (level, key) order,
// for deterministic sweeps over the slot map.
func (d *Directory) sortedSlotKeys() []slotKey {
	keys := make([]slotKey, 0, len(d.slots))
	for k := range d.slots {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].level != keys[j].level {
			return keys[i].level < keys[j].level
		}
		return keys[i].key < keys[j].key
	})
	return keys
}

// wipe erases every DL and SDL record of o. Deletions commute, so the sweep
// order is irrelevant; callers re-stamp afterwards if the object lives on.
func (d *Directory) wipe(o ObjectID) {
	for _, s := range d.slots {
		delete(s.dl, o)
		delete(s.sdl, o)
	}
}

// Unpublish removes object o from the directory: its trail is erased from
// the root down to the proxy (charged as one recovery walk) and its
// ground-truth record dropped. This is the "sensor leave / object retired"
// half of §7 dynamics; re-introducing the object later is a fresh Publish.
func (d *Directory) Unpublish(o ObjectID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.loc[o]; !ok {
		return fmt.Errorf("core: object %d not published", o)
	}
	d.obsStart(obs.OpRecovery, o)
	cost := 0.0
	st := d.ov.Root()
	pos := st.Host
	for {
		cost += d.m.Dist(pos, st.Host)
		pos = st.Host
		d.obsVisit(st)
		s, ok := d.peek(st)
		if !ok {
			break
		}
		e, has := s.dl[o]
		if !has {
			break
		}
		d.removeEntry(st, o)
		if !e.hasChild {
			break
		}
		st = e.child
	}
	// The trailing defensive wipe iterates the slot map, so it must stay
	// silent — one aggregate event marks it instead.
	d.obsEvent(obs.EvWipe, -1, pos, 0)
	d.wipe(o) // defensive: a damaged trail may have left detached entries
	delete(d.loc, o)
	delete(d.ver, o)
	d.meter.RecoveryCost += cost
	d.meter.RecoveryOps++
	d.obsFinish(cost)
	return nil
}

// DropHost models the crash of physical node n: every DL/SDL entry stored
// at a station hosted on n is lost, and SDL shortcuts elsewhere that point
// into n are invalidated. It returns the sorted IDs of the objects whose
// directory state was damaged — the set a recovery pass must Repair once
// the node is back (or that a rebuild must cover past the churn threshold).
func (d *Directory) DropHost(n graph.NodeID) []ObjectID {
	d.mu.Lock()
	defer d.mu.Unlock()
	damaged := map[ObjectID]bool{}
	for _, k := range d.sortedSlotKeys() {
		s := d.slots[k]
		if s.station.Host == n {
			for o := range s.dl {
				damaged[o] = true
			}
			for o := range s.sdl {
				damaged[o] = true
			}
			s.dl = make(map[ObjectID]dlEntry)
			s.sdl = make(map[ObjectID]sdlEntry)
			continue
		}
		for o, se := range s.sdl {
			if se.child.Host == n {
				damaged[o] = true
				delete(s.sdl, o)
			}
		}
		for o, e := range s.dl {
			if e.hasChild && e.child.Host == n {
				damaged[o] = true
			}
		}
	}
	out := make([]ObjectID, 0, len(damaged))
	for o := range damaged {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Repair re-establishes o's trail after crash damage: all surviving
// fragments are wiped and the full home chain of the current ground-truth
// proxy is re-stamped at the object's current version (the fine-grained §7
// path — one object's chain, not a directory rebuild). The walk is charged
// to RecoveryCost.
func (d *Directory) Repair(o ObjectID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	proxy, ok := d.loc[o]
	if !ok {
		return fmt.Errorf("core: object %d not published", o)
	}
	d.obsStart(obs.OpRecovery, o)
	// wipe iterates the slot map; mark it with one aggregate event rather
	// than per-slot events whose order would track map iteration.
	d.obsEvent(obs.EvWipe, -1, proxy, 0)
	d.wipe(o)
	path := d.ov.DPath(proxy)
	cost := 0.0
	prev := path[0][0]
	for l := 0; l < len(path); l++ {
		lvl := cost
		for _, st := range path[l] {
			cost += d.m.Dist(prev.Host, st.Host)
			prev = st
			d.obsVisit(st)
		}
		d.obsEvent(obs.EvHop, l, prev.Host, cost-lvl)
		cost += d.stampHome(proxy, path, l, o, d.ver[o])
	}
	d.meter.RecoveryCost += cost
	d.meter.RecoveryOps++
	d.obsFinish(cost)
	return nil
}

// AbsorbMeter folds a previous directory's accumulated costs into this one,
// preserving cost continuity across a full rebuild (the coarse §7 fallback
// past the churn threshold).
func (d *Directory) AbsorbMeter(m CostMeter) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.meter.Add(m)
}
