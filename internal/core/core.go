// Package core implements the MOT directory (Algorithm 1 of the paper): the
// detection lists (DL) and special detection lists (SDL) maintained at the
// stations of a hierarchical overlay, and the publish, maintenance
// (insert + delete), and query operations over them, with communication-cost
// metering against the optimal costs.
//
// The engine in this package executes operations one by one (the paper's
// "one by one case", §4.1.1); the discrete-event simulator in internal/sim
// drives the same state machine for the concurrent case.
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/overlay"
)

// ObjectID identifies a distinct mobile object (the paper's o_1..o_m).
type ObjectID int

// Config controls directory behavior.
type Config struct {
	// CountSpecialParentCost folds SDL registration/cleanup messages into
	// the maintenance cost. The paper's analysis excludes this cost (a
	// constant-factor increase in constant-doubling networks, §4); when
	// false it is still incurred and reported separately in the meter.
	CountSpecialParentCost bool
	// Placement distributes the storage of DL/SDL entries across physical
	// nodes (§5 load balancing). Nil means entries live on the station's
	// own host.
	Placement Placement
	// LBThreshold is the detection-list size at which a station starts
	// distributing its entries across its cluster ("the load balancing
	// procedure of MOT kicks in when a maintenance operation floods the
	// detection list of an internal node", §8). Stations below the
	// threshold keep entries local and pay no routing surcharge. Zero
	// defaults to 4 (well under the load-10 bound the paper's Figs. 8–11
	// highlight, since one sensor hosts several stations); negative
	// distributes unconditionally.
	LBThreshold int
	// CountLBRouteCost folds the intra-cluster routing surcharge into the
	// operation costs (the Corollary 5.2 cost model). Like the
	// special-parent cost, the paper's reported ratios treat it as a
	// separate constant/logarithmic factor, so it is metered separately
	// (CostMeter.LBRouteCost) by default.
	CountLBRouteCost bool
	// CountReply adds the result-return message (proxy back to the
	// requester) to the query cost. The paper's query cost analysis covers
	// the search walk; off by default.
	CountReply bool
	// Obs receives a span per operation plus per-node/per-level metrics.
	// Nil (the default) disables observability; instrumented paths then
	// pay one pointer test per hook (see internal/obs).
	Obs *obs.Recorder
	// ExactSampleEvery enables sampled exact re-metering: roughly one in
	// this many move/query operations (chosen by a seeded hash of the
	// operation index) has its distance terms re-measured with on-demand
	// exact Dijkstra rows, filling the CostMeter.Sampled* fields. Zero
	// disables sampling. Only useful when the overlay runs on an
	// approximate oracle — on the exact metric the sampled Est and Exact
	// fields coincide.
	ExactSampleEvery int
	// ExactSampleSeed seeds the operation-sampling hash.
	ExactSampleSeed int64
}

// slotKey identifies a directory slot: one station of the overlay.
type slotKey struct {
	level int
	key   int64
}

// dlEntry is one object's record in a station's detection list.
type dlEntry struct {
	// child is the next station downward on the object's trail; hasChild
	// is false at the bottom-level proxy slot.
	child    overlay.Station
	hasChild bool
	// sp is the special parent registered for this entry; spOK is false
	// near the root where special parents are undefined.
	sp   overlay.Station
	spOK bool
	// version is the move sequence number that stamped this entry.
	version uint64
}

// sdlEntry is one object's record in a station's special detection list: a
// downward shortcut to the special child that registered it.
type sdlEntry struct {
	child   overlay.Station
	version uint64
}

// slot is the mutable directory state of one station.
type slot struct {
	station overlay.Station
	dl      map[ObjectID]dlEntry
	sdl     map[ObjectID]sdlEntry
}

// Directory is the MOT tracking structure over an overlay.
type Directory struct {
	mu  sync.Mutex
	ov  overlay.Overlay
	m   graph.DistanceOracle
	cfg Config

	slots map[slotKey]*slot
	loc   map[ObjectID]graph.NodeID // ground-truth proxy of each object
	ver   map[ObjectID]uint64       // move sequence numbers

	meter CostMeter

	// Sampled exact re-metering state (see sample.go): the row cache, the
	// move/query operation counter the sampling hash keys on, and the
	// in-flight operation's accumulators.
	sampler    *exactSampler
	sampOps    uint64
	sampActive bool
	sampEst    float64
	sampExact  float64

	// Observability state (see obs.go): operation counter, cumulative-cost
	// logical clock, and the span of the operation in flight.
	obsOp  uint64
	obsNow float64
	obsCur obs.Span
}

// New creates an empty directory over the overlay. Objects must be
// introduced with Publish before they can be moved or queried.
func New(ov overlay.Overlay, cfg Config) *Directory {
	if cfg.Placement == nil {
		cfg.Placement = HostPlacement{}
	}
	switch {
	case cfg.LBThreshold == 0:
		cfg.LBThreshold = 4
	case cfg.LBThreshold < 0:
		cfg.LBThreshold = 0 // distribute unconditionally
	}
	d := &Directory{
		ov:    ov,
		m:     ov.Metric(),
		cfg:   cfg,
		slots: make(map[slotKey]*slot),
		loc:   make(map[ObjectID]graph.NodeID),
		ver:   make(map[ObjectID]uint64),
	}
	if cfg.ExactSampleEvery > 0 {
		d.sampler = newExactSampler(d.m.Graph())
	}
	return d
}

// Overlay returns the overlay the directory runs on (ov is mu-guarded
// since SwapOverlay can replace it after a churn rebuild).
func (d *Directory) Overlay() overlay.Overlay {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ov
}

// Meter returns a snapshot of the accumulated cost counters.
func (d *Directory) Meter() CostMeter {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.meter
}

// ResetMeter zeroes the cost counters (e.g. after warmup).
func (d *Directory) ResetMeter() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.meter = CostMeter{}
}

// Location returns the current proxy of o.
func (d *Directory) Location(o ObjectID) (graph.NodeID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v, ok := d.loc[o]
	return v, ok
}

// Objects returns the IDs of all published objects, sorted.
func (d *Directory) Objects() []ObjectID {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]ObjectID, 0, len(d.loc))
	for o := range d.loc {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (d *Directory) slot(st overlay.Station) *slot {
	k := slotKey{level: st.Level, key: st.Key}
	s, ok := d.slots[k]
	if !ok {
		//motlint:ignore hotalloc lazy one-time materialization of a station's slot
		s = &slot{station: st, dl: make(map[ObjectID]dlEntry), sdl: make(map[ObjectID]sdlEntry)}
		d.slots[k] = s
	}
	return s
}

func (d *Directory) peek(st overlay.Station) (*slot, bool) {
	s, ok := d.slots[slotKey{level: st.Level, key: st.Key}]
	return s, ok
}

func (d *Directory) holds(st overlay.Station, o ObjectID) bool {
	if s, ok := d.peek(st); ok {
		_, has := s.dl[o]
		return has
	}
	return false
}

func (d *Directory) String() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return fmt.Sprintf("mot.Directory{objects=%d slots=%d}", len(d.loc), len(d.slots))
}
