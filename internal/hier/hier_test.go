package hier

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/overlay"
)

func build(t testing.TB, g *graph.Graph, cfg Config) *Hierarchy {
	t.Helper()
	m := graph.NewMetric(g)
	hs, err := Build(g, m, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return hs
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(graph.New(0), graph.NewMetric(graph.New(0)), Config{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	if _, err := Build(g, graph.NewMetric(g), Config{}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestSingleNode(t *testing.T) {
	g := graph.New(1)
	hs := build(t, g, Config{Seed: 1})
	if hs.Height() != 0 {
		t.Fatalf("height %d", hs.Height())
	}
	if hs.RootNode() != 0 {
		t.Fatalf("root %d", hs.RootNode())
	}
	p := hs.DPath(0)
	if len(p) != 1 || len(p[0]) != 1 || p[0][0].Host != 0 {
		t.Fatalf("path %v", p)
	}
}

func TestValidateOnGrids(t *testing.T) {
	for _, sz := range []struct{ w, h int }{{2, 5}, {4, 4}, {8, 8}, {11, 11}} {
		for seed := int64(0); seed < 3; seed++ {
			g := graph.Grid(sz.w, sz.h)
			hs := build(t, g, Config{Seed: seed, UseParentSets: true})
			if err := hs.Validate(); err != nil {
				t.Fatalf("grid %dx%d seed %d: %v", sz.w, sz.h, seed, err)
			}
		}
	}
}

func TestHeightBound(t *testing.T) {
	g := graph.Grid(16, 16)
	m := graph.NewMetric(g)
	hs, err := Build(g, m, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// h <= ceil(log D) + 1 plus slack for non-shrinking rounds.
	bound := int(math.Ceil(math.Log2(m.Diameter()))) + 2
	if hs.Height() > bound {
		t.Fatalf("height %d exceeds bound %d (D=%v)", hs.Height(), bound, m.Diameter())
	}
	if hs.Height() < 2 {
		t.Fatalf("height %d suspiciously small for a 16x16 grid", hs.Height())
	}
}

func TestLevelsNestAndShrink(t *testing.T) {
	g := graph.Grid(10, 10)
	hs := build(t, g, Config{Seed: 3})
	if got := len(hs.LevelNodes(0)); got != 100 {
		t.Fatalf("level 0 size %d", got)
	}
	if got := len(hs.LevelNodes(hs.Height())); got != 1 {
		t.Fatalf("top level size %d", got)
	}
	for l := 1; l <= hs.Height(); l++ {
		lower := map[graph.NodeID]bool{}
		for _, u := range hs.LevelNodes(l - 1) {
			lower[u] = true
		}
		for _, u := range hs.LevelNodes(l) {
			if !lower[u] {
				t.Fatalf("level %d node %d missing from level %d", l, u, l-1)
			}
		}
		if len(hs.LevelNodes(l)) > len(hs.LevelNodes(l-1)) {
			t.Fatalf("level %d grew", l)
		}
	}
}

func TestDPathStructureSimpleMode(t *testing.T) {
	g := graph.Grid(8, 8)
	hs := build(t, g, Config{Seed: 5})
	root := hs.Root()
	for u := 0; u < g.N(); u++ {
		p := hs.DPath(graph.NodeID(u))
		if len(p) != hs.Height()+1 {
			t.Fatalf("path of %d has %d levels, want %d", u, len(p), hs.Height()+1)
		}
		if len(p[0]) != 1 || p[0][0].Host != graph.NodeID(u) {
			t.Fatalf("path of %d level 0 = %v", u, p[0])
		}
		for l, stations := range p {
			if len(stations) != 1 {
				t.Fatalf("simple mode path has %d stations at level %d", len(stations), l)
			}
			if stations[0].Level != l {
				t.Fatalf("station level mismatch at %d: %v", l, stations[0])
			}
			if stations[0].Host != hs.Home(graph.NodeID(u), l) {
				t.Fatalf("station host differs from home at level %d", l)
			}
		}
		top := p[len(p)-1][0]
		if top != root {
			t.Fatalf("path of %d tops at %v, root is %v", u, top, root)
		}
	}
}

func TestDPathParentSetsContainHomeAndAreSorted(t *testing.T) {
	g := graph.Grid(8, 8)
	hs := build(t, g, Config{Seed: 5, UseParentSets: true})
	for u := 0; u < g.N(); u += 3 {
		p := hs.DPath(graph.NodeID(u))
		for l := 1; l < len(p); l++ {
			foundHome := false
			home := hs.Home(graph.NodeID(u), l)
			for i, s := range p[l] {
				if s.Host == home {
					foundHome = true
				}
				if i > 0 && p[l][i-1].Key >= s.Key {
					t.Fatalf("level %d stations not ID-sorted: %v", l, p[l])
				}
			}
			if !foundHome {
				t.Fatalf("level %d of DPath(%d) misses home %d", l, u, home)
			}
		}
	}
}

func TestDPathCached(t *testing.T) {
	g := graph.Grid(4, 4)
	hs := build(t, g, Config{Seed: 2})
	p1 := hs.DPath(3)
	p2 := hs.DPath(3)
	if &p1[0] != &p2[0] {
		t.Fatal("DPath not cached")
	}
}

// Lemma 2.1: detection paths of u and v meet at level ceil(log dist)+1 when
// parent sets are used.
func TestLemma21MeetingLevel(t *testing.T) {
	g := graph.Grid(12, 12)
	m := graph.NewMetric(g)
	hs, err := Build(g, m, Config{Seed: 11, UseParentSets: true})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u += 7 {
		for v := u + 1; v < g.N(); v += 13 {
			d := m.Dist(graph.NodeID(u), graph.NodeID(v))
			want := int(math.Ceil(math.Log2(d))) + 1
			if want > hs.Height() {
				want = hs.Height()
			}
			got := overlay.MeetLevel(hs.DPath(graph.NodeID(u)), hs.DPath(graph.NodeID(v)))
			if got < 0 {
				t.Fatalf("paths of %d and %d never meet", u, v)
			}
			if got > want {
				t.Fatalf("paths of %d,%d (dist %v) meet at level %d, bound %d", u, v, d, got, want)
			}
		}
	}
}

// Lemma 2.2: length(DPath_j(u)) <= 2^(j+3*rho+6).
func TestLemma22PathLengthBound(t *testing.T) {
	g := graph.Grid(12, 12)
	m := graph.NewMetric(g)
	hs, err := Build(g, m, Config{Seed: 13, UseParentSets: true})
	if err != nil {
		t.Fatal(err)
	}
	rho := math.Ceil(hs.Rho())
	for u := 0; u < g.N(); u += 11 {
		p := hs.DPath(graph.NodeID(u))
		for j := 0; j <= hs.Height(); j++ {
			bound := math.Pow(2, float64(j)+3*rho+6)
			if got := overlay.LengthUpTo(p, m, j); got > bound {
				t.Fatalf("DPath_%d(%d) length %v exceeds bound %v", j, u, got, bound)
			}
		}
	}
}

func TestSpecialParentHelper(t *testing.T) {
	g := graph.Grid(16, 16)
	hs := build(t, g, Config{Seed: 1, SpecialParentOffset: 2})
	if hs.SpecialOffset() != 2 {
		t.Fatalf("sigma %d", hs.SpecialOffset())
	}
	p := hs.DPath(0)
	sp, ok := overlay.SpecialParent(p, 1, 0, hs.SpecialOffset())
	if !ok {
		t.Fatal("special parent of level-1 station undefined in tall hierarchy")
	}
	if sp.Level != 3 {
		t.Fatalf("special parent level %d, want 3", sp.Level)
	}
	// Near the root: undefined.
	if _, ok := overlay.SpecialParent(p, hs.Height(), 0, 2); ok {
		t.Fatal("special parent above root should be undefined")
	}
	// Offset derived from rho when zero.
	hs2 := build(t, g, Config{Seed: 1})
	if hs2.SpecialOffset() < 6 {
		t.Fatalf("derived sigma %d < 6", hs2.SpecialOffset())
	}
}

func TestObservation1ParentSetConstantSize(t *testing.T) {
	g := graph.Grid(16, 16)
	hs := build(t, g, Config{Seed: 19, UseParentSets: true})
	bound := int(math.Pow(2, 3*math.Ceil(hs.Rho())))
	if bound < 1 {
		bound = 1
	}
	for l := 0; l < hs.Height(); l++ {
		for _, u := range hs.LevelNodes(l) {
			if got := len(hs.ParentSet(u, l)); got > bound {
				t.Fatalf("parent set of %d at level %d has %d members, bound %d (rho=%v)",
					u, l, got, bound, hs.Rho())
			}
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := graph.Grid(9, 9)
	a := build(t, g, Config{Seed: 21})
	b := build(t, g, Config{Seed: 21})
	if a.Height() != b.Height() || a.RootNode() != b.RootNode() {
		t.Fatal("same seed produced different hierarchies")
	}
	for l := 0; l <= a.Height(); l++ {
		la, lb := a.LevelNodes(l), b.LevelNodes(l)
		if len(la) != len(lb) {
			t.Fatalf("level %d sizes differ", l)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("level %d differs at %d", l, i)
			}
		}
	}
}

func TestHomeChainRespectsDefaultParents(t *testing.T) {
	g := graph.Grid(6, 6)
	hs := build(t, g, Config{Seed: 4})
	for u := 0; u < g.N(); u++ {
		cur := graph.NodeID(u)
		for l := 0; l < hs.Height(); l++ {
			dp, ok := hs.DefaultParent(cur, l)
			if !ok {
				t.Fatalf("no default parent for %d at level %d", cur, l)
			}
			if got := hs.Home(graph.NodeID(u), l+1); got != dp {
				t.Fatalf("Home(%d,%d) = %d, want %d", u, l+1, got, dp)
			}
			cur = dp
		}
	}
}

func TestMaxLevelConsistent(t *testing.T) {
	g := graph.Grid(7, 7)
	hs := build(t, g, Config{Seed: 6})
	for l := 0; l <= hs.Height(); l++ {
		for _, u := range hs.LevelNodes(l) {
			if hs.MaxLevel(u) < l {
				t.Fatalf("node %d in level %d but MaxLevel=%d", u, l, hs.MaxLevel(u))
			}
		}
	}
	if hs.MaxLevel(graph.NodeID(hs.RootNode())) != hs.Height() {
		t.Fatal("root MaxLevel mismatch")
	}
	if hs.MaxLevel(graph.NodeID(-1)) != -1 {
		t.Fatal("out-of-range MaxLevel should be -1")
	}
}

// Property: on random geometric graphs the hierarchy always validates.
func TestQuickHierarchyValid(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		g := graph.Grid(5+int(seed%5), 5+int((seed/5)%5))
		m := graph.NewMetric(g)
		hs, err := Build(g, m, Config{Seed: seed, UseParentSets: seed%2 == 0})
		if err != nil {
			return false
		}
		return hs.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	g := graph.Grid(8, 8)
	hs := build(t, g, Config{Seed: 1})
	st := hs.Stats()
	if st.Height != hs.Height() || len(st.LevelSizes) != hs.Height()+1 {
		t.Fatalf("stats %+v", st)
	}
	if st.LevelSizes[0] != 64 || st.LevelSizes[st.Height] != 1 {
		t.Fatalf("stats sizes %v", st.LevelSizes)
	}
}

func BenchmarkBuildGrid32(b *testing.B) {
	g := graph.Grid(32, 32)
	m := graph.NewMetric(g)
	m.Precompute(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, m, Config{Seed: int64(i), UseParentSets: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDPathGrid32(b *testing.B) {
	g := graph.Grid(32, 32)
	m := graph.NewMetric(g)
	hs, err := Build(g, m, Config{Seed: 1, UseParentSets: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hs.DPath(graph.NodeID(i % g.N()))
	}
}

// TestRhoLazyWithExplicitOffset pins the Build fix: with an explicit
// SpecialParentOffset, Build no longer pays for the O(n²) doubling
// estimate, but Rho() still computes it on demand, caches it, and feeds
// Stats the same value.
func TestRhoLazyWithExplicitOffset(t *testing.T) {
	g := graph.Grid(6, 6)
	hs := build(t, g, Config{Seed: 1, SpecialParentOffset: 2})
	if hs.SpecialOffset() != 2 {
		t.Fatalf("sigma = %d, want 2", hs.SpecialOffset())
	}
	r1 := hs.Rho()
	if r1 <= 0 || math.IsInf(r1, 1) {
		t.Fatalf("Rho() = %v, want finite positive on a grid", r1)
	}
	if r2 := hs.Rho(); r2 != r1 {
		t.Fatalf("Rho() not cached: %v then %v", r1, r2)
	}
	if s := hs.Stats(); s.Rho != r1 {
		t.Fatalf("Stats().Rho = %v, want %v", s.Rho, r1)
	}
	// The derived-sigma default still works and uses the same estimate.
	auto := build(t, g, Config{Seed: 1})
	want := 3*int(math.Ceil(auto.Rho())) + 6
	if auto.SpecialOffset() != want {
		t.Fatalf("derived sigma = %d, want %d", auto.SpecialOffset(), want)
	}
}

// TestBuildRejectsTwoNontrivialComponents extends the disconnected error
// path beyond the isolated-vertex case.
func TestBuildRejectsTwoNontrivialComponents(t *testing.T) {
	g := graph.New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	if _, err := Build(g, graph.NewMetric(g), Config{Seed: 1, SpecialParentOffset: 2}); err == nil {
		t.Fatal("two-component graph accepted")
	}
}
