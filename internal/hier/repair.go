package hier

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/overlay"
)

// Incremental hierarchy repair.
//
// With Config.Incremental, every level is the greedy MIS under the pure
// priority order (prio(l, u), u): u ∈ V_(l+1) iff u is live, u ∈ V_l, and
// no neighbor v within 2^(l+1) with (prio(l+1, v), v) < (prio(l+1, u), u)
// is in V_(l+1). That characterization has a unique fixpoint, so the
// hierarchy is a pure function of the live set — failing or readmitting a
// node perturbs it only where the fixpoint actually changes, and Repair
// can chase exactly those changes instead of rebuilding. Selection flips
// propagate only toward higher (priority, ID) pairs, so a min-heap
// worklist popped in ascending order settles every node in one visit.
//
// Concurrency: Repair, Exclude, and Readmit mutate the hierarchy and the
// detection-path cache. Callers must quiesce readers (no concurrent DPath
// / Home / parent lookups) for the duration of a repair; the facade
// tracker serializes them under its churn lock.

// RepairStats summarizes the work one Repair call performed; the churn
// harness uses it to show repair locality (touched ≪ n).
type RepairStats struct {
	Affected          int  // seed nodes handed to Repair
	LevelsTouched     int  // levels whose membership changed
	MembershipChanged int  // (level, node) membership flips
	ParentsRecomputed int  // (level, node) parent reassignments
	ParentsDropped    int  // (level, node) parent entries deleted
	LevelsAdded       int  // levels appended by re-extension
	LevelsRemoved     int  // levels dropped by trimming
	RootChanged       bool // the root moved
}

// Touched is the total number of (level, node) pairs Repair rewrote.
func (st RepairStats) Touched() int {
	return st.MembershipChanged + st.ParentsRecomputed + st.ParentsDropped
}

func (hs *Hierarchy) isExcluded(u graph.NodeID) bool {
	return hs.excluded != nil && hs.excluded[u]
}

// liveAt reports u ∈ V_l counting only live nodes (levelSet[0] tracks the
// live set; higher levels never contain excluded nodes).
func (hs *Hierarchy) liveAt(u graph.NodeID, l int) bool {
	return hs.levelSet[l][u]
}

// liveNodes returns V_l minus the excluded nodes (only level 0 can hold
// them; higher levels come back as the shared slice).
func (hs *Hierarchy) liveNodes(l int) []graph.NodeID {
	if l > 0 || hs.excluded == nil {
		return hs.levels[l]
	}
	live := make([]graph.NodeID, 0, hs.liveN)
	for _, u := range hs.levels[0] {
		if !hs.excluded[u] {
			live = append(live, u)
		}
	}
	return live
}

// liveCount returns |V_l| counting only live nodes.
func (hs *Hierarchy) liveCount(l int) int {
	if l == 0 && hs.excluded != nil {
		return hs.liveN
	}
	return len(hs.levels[l])
}

// prio is the deterministic MIS priority of node u at level `level`: a
// SplitMix64 chain over (seed, level, node). The mixer is a bijection on
// 64-bit words, so structured inputs cannot collide after mixing; ID
// tie-breaking makes the order total regardless.
func (hs *Hierarchy) prio(level int, u graph.NodeID) uint64 {
	h := splitmix64(uint64(hs.cfg.Seed))
	h = splitmix64(h ^ uint64(int64(level)))
	h = splitmix64(h ^ uint64(int64(u)))
	return h
}

// splitmix64 advances a SplitMix64 state and returns the mixed output
// (Steele et al., "Fast Splittable Pseudorandom Number Generators").
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// buildIncremental constructs the levels, bitmaps, and parents of an
// incremental hierarchy from scratch (BuildExcluding's back end).
func (hs *Hierarchy) buildIncremental() error {
	n := hs.g.N()
	live := make([]bool, n)
	hs.liveN = 0
	for i := range live {
		live[i] = !hs.excluded[i]
		if live[i] {
			hs.liveN++
		}
	}
	if hs.liveN == 0 {
		return fmt.Errorf("hier: all nodes excluded")
	}
	hs.levelSet = append(hs.levelSet, live)
	if err := hs.extendLevels(nil); err != nil {
		return err
	}
	hs.h = len(hs.levels) - 1
	hs.root = hs.topRoot()
	for l := 1; l <= hs.h; l++ {
		for _, u := range hs.levels[l] {
			hs.inLevel[u] = l
		}
	}

	hs.defaultParent = make([]map[graph.NodeID]graph.NodeID, hs.h)
	hs.parentSet = make([]map[graph.NodeID][]graph.NodeID, hs.h)
	for l := 0; l < hs.h; l++ {
		dp := make(map[graph.NodeID]graph.NodeID, len(hs.levels[l]))
		ps := make(map[graph.NodeID][]graph.NodeID, len(hs.levels[l]))
		for _, u := range hs.levels[l] {
			if hs.isExcluded(u) {
				continue
			}
			if err := hs.assignParentsInto(u, l, hs.levelSet[l+1], dp, ps); err != nil {
				return err
			}
		}
		hs.defaultParent[l] = dp
		hs.parentSet[l] = ps
	}
	return nil
}

// extendLevels grows the level sequence by greedy MIS until the top level
// is a single live node, recording new-level memberships into changedAt
// when non-nil (Repair's re-extension path; nil during initial build).
func (hs *Hierarchy) extendLevels(changedAt map[int][]graph.NodeID) error {
	member := make([]bool, hs.g.N()) // scratch for levelAdjacency
	for hs.liveCount(len(hs.levels)-1) > 1 {
		l := len(hs.levels) - 1
		cur := hs.liveNodes(l)
		radius := math.Pow(2, float64(l+1))
		adj := levelAdjacency(hs.m, cur, radius, member)
		lvl := l + 1
		next := mis.Greedy(cur, adj, func(u graph.NodeID) uint64 { return hs.prio(lvl, u) })
		if len(next) == 0 {
			return fmt.Errorf("hier: MIS at level %d returned empty set", l)
		}
		if len(next) >= len(cur) && len(cur) > 1 {
			// Same non-termination guard as the Luby path: an edgeless
			// level graph is fine while nodes are far apart, but not past
			// the network diameter.
			if radius > hs.m.Diameter()*2+2 {
				return fmt.Errorf("hier: level %d did not shrink past diameter", l)
			}
		}
		hs.levels = append(hs.levels, next)
		set := make([]bool, hs.g.N())
		for _, u := range next {
			set[u] = true
		}
		hs.levelSet = append(hs.levelSet, set)
		if changedAt != nil {
			changedAt[lvl] = append(changedAt[lvl], next...)
		}
	}
	return nil
}

// topRoot returns the first live node of the top level.
func (hs *Hierarchy) topRoot() graph.NodeID {
	for _, u := range hs.levels[hs.h] {
		if !hs.isExcluded(u) {
			return u
		}
	}
	return hs.levels[hs.h][0]
}

// LiveCount returns the number of non-excluded nodes.
func (hs *Hierarchy) LiveCount() int {
	if hs.excluded == nil {
		return hs.g.N()
	}
	return hs.liveN
}

// IsExcluded reports whether u is currently excluded (failed).
func (hs *Hierarchy) IsExcluded(u graph.NodeID) bool {
	if int(u) < 0 || int(u) >= hs.g.N() {
		return false
	}
	return hs.isExcluded(u)
}

// Exclude marks node u failed: it stays in the V_0 station space but
// becomes ineligible for every MIS level. A no-op if already excluded.
// Call Repair([]graph.NodeID{u}) afterwards to restore the invariants;
// Exclude alone leaves the hierarchy stale.
func (hs *Hierarchy) Exclude(u graph.NodeID) error {
	if !hs.cfg.Incremental {
		return fmt.Errorf("hier: Exclude requires Config.Incremental")
	}
	if int(u) < 0 || int(u) >= hs.g.N() {
		return fmt.Errorf("hier: node %d out of range", u)
	}
	if hs.excluded[u] {
		return nil
	}
	if hs.liveN <= 1 {
		return fmt.Errorf("hier: cannot exclude the last live node")
	}
	hs.excluded[u] = true
	hs.levelSet[0][u] = false
	hs.liveN--
	return nil
}

// Readmit marks a previously excluded node live again. A no-op if already
// live. Call Repair([]graph.NodeID{u}) afterwards to restore the
// invariants.
func (hs *Hierarchy) Readmit(u graph.NodeID) error {
	if !hs.cfg.Incremental {
		return fmt.Errorf("hier: Readmit requires Config.Incremental")
	}
	if int(u) < 0 || int(u) >= hs.g.N() {
		return fmt.Errorf("hier: node %d out of range", u)
	}
	if !hs.excluded[u] {
		return nil
	}
	hs.excluded[u] = false
	hs.levelSet[0][u] = true
	hs.liveN++
	return nil
}

// Repair restores every hierarchy invariant after the liveness of the
// affected nodes changed (Exclude/Readmit), touching only the region the
// greedy-MIS fixpoint actually moved in: per level, a priority-ordered
// worklist re-evaluates selection starting from the eligibility changes,
// then parents are recomputed only for nodes whose candidate parent ball
// changed. The result is identical to BuildExcluding over the current
// live set (Fingerprint-equal), at cost proportional to the perturbed
// neighborhood instead of n.
func (hs *Hierarchy) Repair(affected []graph.NodeID) (RepairStats, error) {
	var st RepairStats
	if !hs.cfg.Incremental {
		return st, fmt.Errorf("hier: Repair requires Config.Incremental")
	}
	if hs.liveN == 0 {
		return st, fmt.Errorf("hier: no live nodes")
	}
	n := hs.g.N()
	seen := make(map[graph.NodeID]bool, len(affected))
	var seeds []graph.NodeID
	for _, u := range affected {
		if int(u) < 0 || int(u) >= n {
			return st, fmt.Errorf("hier: affected node %d out of range", u)
		}
		if !seen[u] {
			seen[u] = true
			seeds = append(seeds, u)
		}
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	st.Affected = len(seeds)
	oldRoot := hs.root
	oldH := hs.h

	// Bottom-up membership fixpoint: the frontier entering level l's pass
	// is the set of nodes whose eligibility for V_(l+1) changed. An empty
	// frontier means every higher level is untouched.
	changedAt := map[int][]graph.NodeID{0: seeds}
	frontier := seeds
	for l := 0; l+1 < len(hs.levels) && len(frontier) > 0; l++ {
		frontier = hs.repairLevel(l, frontier)
		if len(frontier) > 0 {
			changedAt[l+1] = frontier
			st.LevelsTouched++
			st.MembershipChanged += len(frontier)
		}
	}

	// Top structure: re-extend while the top level still has 2+ live
	// nodes, then trim redundant singleton levels, so the height matches
	// what a fresh build would stop at.
	grown := len(hs.levels)
	if err := hs.extendLevels(changedAt); err != nil {
		return st, err
	}
	st.LevelsAdded = len(hs.levels) - grown
	st.MembershipChanged += countChangedFrom(changedAt, grown, len(hs.levels))
	st.LevelsTouched += st.LevelsAdded
	top := len(hs.levels) - 1
	t := top
	for l := 0; l <= top; l++ {
		if hs.liveCount(l) == 1 {
			t = l
			break
		}
	}
	for l := top; l > t; l-- {
		changedAt[l] = append(changedAt[l], hs.levels[l]...)
		st.MembershipChanged += len(hs.levels[l])
		st.LevelsTouched++
		st.LevelsRemoved++
		for _, u := range hs.levels[l] {
			hs.levelSet[l][u] = false
		}
		hs.levels = hs.levels[:l]
		hs.levelSet = hs.levelSet[:l]
	}
	hs.h = len(hs.levels) - 1
	hs.root = hs.topRoot()
	st.RootChanged = hs.root != oldRoot

	// Resize the parent arrays to the new height.
	for len(hs.defaultParent) > hs.h {
		hs.defaultParent = hs.defaultParent[:len(hs.defaultParent)-1]
		hs.parentSet = hs.parentSet[:len(hs.parentSet)-1]
	}
	for len(hs.defaultParent) < hs.h {
		hs.defaultParent = append(hs.defaultParent, make(map[graph.NodeID]graph.NodeID))
		hs.parentSet = append(hs.parentSet, make(map[graph.NodeID][]graph.NodeID))
	}

	// Parents: a node's assignment at level l changes only if it entered
	// or left V_l, or some V_(l+1) membership changed within its 4*2^(l+1)
	// candidate ball (Near is symmetric and exact, so scanning around the
	// changed upper node finds exactly those). Levels at or above the old
	// height never had assignments and are filled wholesale.
	for l := 0; l < hs.h; l++ {
		psRadius := 4 * math.Pow(2, float64(l+1))
		needSet := make(map[graph.NodeID]bool)
		if l >= oldH {
			for _, u := range hs.levels[l] {
				if !hs.isExcluded(u) {
					needSet[u] = true
				}
			}
		} else {
			for _, u := range changedAt[l] {
				needSet[u] = true
			}
			for _, w := range changedAt[l+1] {
				for _, nb := range hs.m.Near(w, psRadius) {
					if hs.liveAt(nb.Node, l) {
						needSet[nb.Node] = true
					}
				}
			}
		}
		need := make([]graph.NodeID, 0, len(needSet))
		for u := range needSet {
			need = append(need, u)
		}
		sort.Slice(need, func(i, j int) bool { return need[i] < need[j] })
		for _, u := range need {
			if !hs.liveAt(u, l) {
				if _, had := hs.defaultParent[l][u]; had {
					st.ParentsDropped++
				}
				delete(hs.defaultParent[l], u)
				delete(hs.parentSet[l], u)
				continue
			}
			if err := hs.assignParentsInto(u, l, hs.levelSet[l+1], hs.defaultParent[l], hs.parentSet[l]); err != nil {
				return st, err
			}
			st.ParentsRecomputed++
		}
	}

	// inLevel for every node whose membership (at any level) changed.
	touched := make(map[graph.NodeID]bool)
	for l := 0; l < len(hs.levels)+st.LevelsRemoved; l++ {
		for _, u := range changedAt[l] {
			touched[u] = true
		}
	}
	relevel := make([]graph.NodeID, 0, len(touched))
	for u := range touched {
		relevel = append(relevel, u)
	}
	sort.Slice(relevel, func(i, j int) bool { return relevel[i] < relevel[j] })
	for _, u := range relevel {
		hs.inLevel[u] = 0
		for l := hs.h; l >= 1; l-- {
			if hs.levelSet[l][u] {
				hs.inLevel[u] = l
				break
			}
		}
	}

	// Detection paths are a cache over the (now mutated) parent tables;
	// dropping it wholesale re-lands on exactly the fresh-build state.
	hs.clearPaths()
	return st, nil
}

// clearPaths drops the detection-path cache after a structural mutation.
func (hs *Hierarchy) clearPaths() {
	hs.pathsMu.Lock()
	hs.paths = make(map[graph.NodeID]overlay.Path)
	hs.pathsMu.Unlock()
}

// repairLevel re-evaluates V_(l+1) membership from the pending dirty set:
// a min-heap worklist popped in ascending (priority, ID) order. When a
// node pops, every lower-ordered node has already settled (flips only
// push higher-ordered neighbors), so one visit per node computes its
// final selection. Returns the sorted nodes whose membership flipped and
// folds them into levels[l+1]/levelSet[l+1].
func (hs *Hierarchy) repairLevel(l int, dirty []graph.NodeID) []graph.NodeID {
	radius := math.Pow(2, float64(l+1))
	up := hs.levelSet[l+1]
	lvl := l + 1
	var pq prioHeap
	pushed := make(map[graph.NodeID]bool)
	push := func(u graph.NodeID) {
		if !pushed[u] {
			pushed[u] = true
			heap.Push(&pq, prioItem{p: hs.prio(lvl, u), u: u})
		}
	}
	for _, u := range dirty {
		push(u)
	}
	var changed []graph.NodeID
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(prioItem)
		u := it.u
		sel := hs.liveAt(u, l)
		if sel {
			for _, nb := range hs.m.Near(u, radius) {
				v := nb.Node
				if v == u || nb.D >= radius || !hs.liveAt(v, l) || !up[v] {
					continue
				}
				pv := hs.prio(lvl, v)
				if pv < it.p || (pv == it.p && v < u) {
					sel = false
					break
				}
			}
		}
		if sel == up[u] {
			continue
		}
		up[u] = sel
		changed = append(changed, u)
		for _, nb := range hs.m.Near(u, radius) {
			v := nb.Node
			if v == u || nb.D >= radius || !hs.liveAt(v, l) {
				continue
			}
			pv := hs.prio(lvl, v)
			if pv > it.p || (pv == it.p && v > u) {
				push(v)
			}
		}
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i] < changed[j] })
	if len(changed) > 0 {
		hs.levels[lvl] = rebuildLevelSlice(hs.levels[lvl], changed, up)
	}
	return changed
}

// rebuildLevelSlice merges the membership flips into the sorted level
// slice: the union of old and changed, filtered by the updated bitmap.
func rebuildLevelSlice(old, changed []graph.NodeID, set []bool) []graph.NodeID {
	merged := make([]graph.NodeID, 0, len(old)+len(changed))
	merged = append(merged, old...)
	merged = append(merged, changed...)
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	out := merged[:0]
	var prev graph.NodeID = -1
	for _, u := range merged {
		if u == prev || !set[u] {
			prev = u
			continue
		}
		prev = u
		out = append(out, u)
	}
	return out
}

// countChangedFrom sums the recorded membership changes at levels in
// [from, to).
func countChangedFrom(changedAt map[int][]graph.NodeID, from, to int) int {
	total := 0
	for l := from; l < to; l++ {
		total += len(changedAt[l])
	}
	return total
}

// Fingerprint hashes the complete tracking-relevant structure — levels,
// live/excluded sets, parents, root, height, sigma, inLevel — so tests
// can assert that Repair landed on exactly the hierarchy a fresh
// BuildExcluding would produce.
func (hs *Hierarchy) Fingerprint() uint64 {
	fp := fnv.New64a()
	buf := make([]byte, 8)
	w := func(v int64) {
		binary.LittleEndian.PutUint64(buf, uint64(v))
		fp.Write(buf)
	}
	w(int64(hs.h))
	w(int64(hs.root))
	w(int64(hs.sigma))
	w(int64(hs.LiveCount()))
	for l, lvl := range hs.levels {
		w(-1)
		w(int64(l))
		for _, u := range lvl {
			w(int64(u))
		}
	}
	for l := 0; l < hs.h; l++ {
		for _, u := range hs.levels[l] {
			if hs.isExcluded(u) {
				continue
			}
			w(-2)
			w(int64(u))
			w(int64(hs.defaultParent[l][u]))
			for _, p := range hs.parentSet[l][u] {
				w(int64(p))
			}
		}
	}
	for u := range hs.inLevel {
		w(int64(hs.inLevel[u]))
	}
	if hs.excluded != nil {
		for u, ex := range hs.excluded {
			if ex {
				w(-3)
				w(int64(u))
			}
		}
	}
	return fp.Sum64()
}

// prioItem / prioHeap: the ascending (priority, ID) worklist.
type prioItem struct {
	p uint64
	u graph.NodeID
}

type prioHeap []prioItem

func (h prioHeap) Len() int { return len(h) }
func (h prioHeap) Less(i, j int) bool {
	if h[i].p != h[j].p {
		return h[i].p < h[j].p
	}
	return h[i].u < h[j].u
}
func (h prioHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *prioHeap) Push(x interface{}) { *h = append(*h, x.(prioItem)) }
func (h *prioHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
