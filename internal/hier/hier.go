// Package hier builds the hierarchical overlay structure HS of the paper's
// §2.2 for constant-doubling networks: a sequence of connectivity graphs
// I_0..I_h whose node sets are nested maximal independent sets (computed
// with Luby's algorithm), with default parents, parent sets, detection
// paths, and special parents.
//
// Level sets: V_0 = V; E_l connects u,v in V_l with dist_G(u,v) < 2^(l+1);
// V_(l+1) is an MIS of (V_l, E_l); V_h is the single root node. The default
// parent of w in V_l is the closest node of V_(l+1) (within 2^(l+1) by MIS
// maximality); the parent set of w is every node of V_(l+1) within
// 4*2^(l+1) of w.
package hier

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/overlay"
)

// Config controls HS construction.
type Config struct {
	// Seed drives the randomized MIS level selection; runs with equal
	// seeds on equal graphs produce identical hierarchies.
	Seed int64
	// UseParentSets makes detection paths visit every parent-set member
	// per level in ID order (§3.1); when false, paths visit only the
	// default parent chain home^l(u), which is Algorithm 1's simple form.
	UseParentSets bool
	// SpecialParentOffset is sigma in Definition 3 (special parent of a
	// level-i station sits at level i+sigma on the same path). Zero means
	// derive the theoretical value 3*rho+6 from the measured doubling
	// constant; experiments typically use a small explicit value so that
	// special parents exist in shallow hierarchies. A negative value
	// disables special parents entirely (used by ablation benchmarks).
	SpecialParentOffset int
	// RhoSamples bounds the centers probed by the doubling estimate
	// (<= 0 means a default of 32).
	RhoSamples int
	// Incremental switches level selection from Luby's randomized MIS to
	// a deterministic hash-priority greedy MIS (mis.Greedy) whose result
	// is a pure function of (Seed, level, node). That makes the hierarchy
	// locally repairable: Exclude/Readmit plus Repair (see repair.go)
	// update the structure only around a failed or rejoined node, and
	// land on the exact hierarchy a fresh BuildExcluding of the same live
	// set would produce. Non-incremental hierarchies keep the historical
	// Luby levels (and their golden outputs) and do not support Repair.
	Incremental bool
}

// Hierarchy is the built HS. It implements overlay.Overlay.
type Hierarchy struct {
	g   *graph.Graph
	m   graph.DistanceOracle
	cfg Config

	levels  [][]graph.NodeID // levels[l] = V_l sorted ascending
	inLevel []int            // inLevel[u] = highest level containing u
	root    graph.NodeID
	h       int // top level index

	// defaultParent[l][u] = default parent in V_(l+1) of u in V_l.
	defaultParent []map[graph.NodeID]graph.NodeID
	// parentSet[l][u] = parent set in V_(l+1) of u in V_l, ID-sorted.
	parentSet []map[graph.NodeID][]graph.NodeID

	// Incremental-repair state (nil/zero unless cfg.Incremental; see
	// repair.go): levelSet[l][u] reports u ∈ V_l (level 0 tracks the
	// live set), excluded marks failed nodes — still present in the
	// levels[0] station space but ineligible for every MIS level and
	// parentless — and liveN counts non-excluded nodes.
	levelSet [][]bool
	excluded []bool
	liveN    int

	rhoOnce sync.Once
	rho     float64
	sigma   int
	pathsMu sync.RWMutex
	paths   map[graph.NodeID]overlay.Path
}

// Build constructs HS over g using the distance oracle m (which must
// belong to g). The graph must be connected and non-empty. Every distance
// Build consumes flows through Near — exact on both implementations — so
// an exact-metric build and an oracle build of the same (g, cfg) produce
// identical hierarchies, and an oracle build never touches an n×n table.
func Build(g *graph.Graph, m graph.DistanceOracle, cfg Config) (*Hierarchy, error) {
	return BuildExcluding(g, m, cfg, nil)
}

// BuildExcluding constructs HS over the live subgraph of g: the excluded
// nodes stay in the V_0 station space (the physical network does not
// shrink) but are ineligible for every MIS level and receive no parents,
// so their detection paths are undefined while excluded. A non-empty
// exclusion list requires Config.Incremental, whose deterministic greedy
// MIS is what makes the excluded-set hierarchy a pure function of the
// live set — the property Repair relies on.
func BuildExcluding(g *graph.Graph, m graph.DistanceOracle, cfg Config, excluded []graph.NodeID) (*Hierarchy, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("hier: empty graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("hier: graph must be connected")
	}
	hs := &Hierarchy{
		g:     g,
		m:     m,
		cfg:   cfg,
		paths: make(map[graph.NodeID]overlay.Path),
	}

	// Level 0 = all nodes.
	v0 := make([]graph.NodeID, g.N())
	for i := range v0 {
		v0[i] = graph.NodeID(i)
	}
	hs.levels = append(hs.levels, v0)
	hs.inLevel = make([]int, g.N())

	if cfg.Incremental {
		hs.excluded = make([]bool, g.N())
		for _, u := range excluded {
			if int(u) < 0 || int(u) >= g.N() {
				return nil, fmt.Errorf("hier: excluded node %d out of range", u)
			}
			hs.excluded[u] = true
		}
		if err := hs.buildIncremental(); err != nil {
			return nil, err
		}
		hs.deriveSigma()
		return hs, nil
	}
	if len(excluded) > 0 {
		return nil, fmt.Errorf("hier: exclusions require Config.Incremental")
	}

	// Refine levels by MIS until a single node remains.
	rng := rand.New(rand.NewSource(cfg.Seed))
	member := make([]bool, g.N()) // scratch level-membership bitmap
	for len(hs.levels[len(hs.levels)-1]) > 1 {
		l := len(hs.levels) - 1
		cur := hs.levels[l]
		radius := math.Pow(2, float64(l+1))
		adj := levelAdjacency(m, cur, radius, member)
		next := mis.Luby(cur, adj, rng)
		if len(next) == 0 {
			return nil, fmt.Errorf("hier: MIS at level %d returned empty set", l)
		}
		if len(next) >= len(cur) && len(cur) > 1 {
			// MIS can't shrink an edgeless level graph; at radius 2^(l+1)
			// that only happens while nodes are still far apart, which is
			// fine — but guard against non-termination past the diameter.
			if radius > m.Diameter()*2+2 {
				return nil, fmt.Errorf("hier: level %d did not shrink past diameter", l)
			}
		}
		hs.levels = append(hs.levels, next)
		for _, u := range next {
			hs.inLevel[u] = l + 1
		}
	}
	hs.h = len(hs.levels) - 1
	hs.root = hs.levels[hs.h][0]

	// Parents.
	hs.defaultParent = make([]map[graph.NodeID]graph.NodeID, hs.h)
	hs.parentSet = make([]map[graph.NodeID][]graph.NodeID, hs.h)
	for l := 0; l < hs.h; l++ {
		cur, up := hs.levels[l], hs.levels[l+1]
		dp := make(map[graph.NodeID]graph.NodeID, len(cur))
		ps := make(map[graph.NodeID][]graph.NodeID, len(cur))
		for _, p := range up {
			member[p] = true
		}
		for _, u := range cur {
			if err := hs.assignParentsInto(u, l, member, dp, ps); err != nil {
				return nil, err
			}
		}
		hs.defaultParent[l] = dp
		hs.parentSet[l] = ps
		for _, p := range up {
			member[p] = false
		}
	}
	hs.deriveSigma()
	return hs, nil
}

// assignParentsInto computes the default parent and parent set of u in
// V_(l+1) (the nodes flagged in member) and stores them into dp and ps,
// replacing any previous assignment. MIS maximality puts the default
// parent within 2^(l+1), so the 4*2^(l+1) ball contains it; Near is exact
// and ID-ascending, matching the old sorted row scan over the upper level
// bit for bit.
func (hs *Hierarchy) assignParentsInto(u graph.NodeID, l int, member []bool, dp map[graph.NodeID]graph.NodeID, ps map[graph.NodeID][]graph.NodeID) error {
	psRadius := 4 * math.Pow(2, float64(l+1))
	best, bestD := graph.Undefined, math.Inf(1)
	var set []graph.NodeID
	for _, nb := range hs.m.Near(u, psRadius) {
		if !member[nb.Node] {
			continue
		}
		p, d := nb.Node, nb.D
		if d < bestD || (d == bestD && p < best) {
			best, bestD = p, d
		}
		set = append(set, p)
	}
	if best == graph.Undefined {
		return fmt.Errorf("hier: node %d has no level-%d parent", u, l+1)
	}
	dp[u] = best
	found := false
	for _, p := range set {
		if p == best {
			found = true
			break
		}
	}
	if !found {
		set = append(set, best)
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	ps[u] = set
	return nil
}

// deriveSigma fixes the special-parent offset. Only the theoretical
// default needs the measured doubling constant; an explicit or disabled
// offset skips that O(n²) estimate entirely — Rho() still computes it on
// demand.
func (hs *Hierarchy) deriveSigma() {
	switch {
	case hs.cfg.SpecialParentOffset > 0:
		hs.sigma = hs.cfg.SpecialParentOffset
	case hs.cfg.SpecialParentOffset < 0:
		hs.sigma = 0 // special parents disabled (ablation)
	default:
		hs.sigma = 3*int(math.Ceil(hs.Rho())) + 6
	}
}

// levelAdjacency returns the E_l adjacency: nodes of cur within < radius.
// member is an all-false scratch bitmap of graph size, restored on return.
// Near is exact and ID-ascending, so the neighbor lists match the old
// sorted row scan exactly while staying output-sensitive in oracle mode.
func levelAdjacency(m graph.DistanceOracle, cur []graph.NodeID, radius float64, member []bool) mis.Adjacency {
	for _, u := range cur {
		member[u] = true
	}
	// Precompute neighbor lists once; MIS calls adj repeatedly.
	idx := make(map[graph.NodeID][]graph.NodeID, len(cur))
	for _, u := range cur {
		var nbr []graph.NodeID
		for _, nb := range m.Near(u, radius) {
			if nb.Node != u && nb.D < radius && member[nb.Node] {
				nbr = append(nbr, nb.Node)
			}
		}
		idx[u] = nbr
	}
	for _, u := range cur {
		member[u] = false
	}
	return func(u graph.NodeID) []graph.NodeID { return idx[u] }
}

// Height returns the top level index h.
func (hs *Hierarchy) Height() int { return hs.h }

// Root returns the root station (level h).
func (hs *Hierarchy) Root() overlay.Station {
	return overlay.Station{Level: hs.h, Key: int64(hs.root), Host: hs.root}
}

// RootNode returns the physical root node.
func (hs *Hierarchy) RootNode() graph.NodeID { return hs.root }

// Metric returns the network's distance oracle.
func (hs *Hierarchy) Metric() graph.DistanceOracle { return hs.m }

// SpecialOffset returns sigma.
func (hs *Hierarchy) SpecialOffset() int { return hs.sigma }

// Rho returns the measured doubling-dimension estimate, computed on
// first use and cached (Build itself only needs it when deriving sigma,
// so hierarchies with an explicit SpecialParentOffset never pay for it
// unless asked). Safe for concurrent use.
func (hs *Hierarchy) Rho() float64 {
	hs.rhoOnce.Do(func() {
		samples := hs.cfg.RhoSamples
		if samples <= 0 {
			samples = 32
		}
		hs.rho = graph.EstimateDoubling(hs.m, samples)
	})
	return hs.rho
}

// LevelNodes returns V_l (shared slice; do not modify).
func (hs *Hierarchy) LevelNodes(l int) []graph.NodeID {
	if l < 0 || l > hs.h {
		return nil
	}
	return hs.levels[l]
}

// MaxLevel returns the highest level that contains u.
func (hs *Hierarchy) MaxLevel(u graph.NodeID) int {
	if int(u) < 0 || int(u) >= len(hs.inLevel) {
		return -1
	}
	return hs.inLevel[u]
}

// Home returns home^l(u): u itself at l = 0, otherwise the default parent
// of home^(l-1)(u).
func (hs *Hierarchy) Home(u graph.NodeID, l int) graph.NodeID {
	cur := u
	for i := 0; i < l; i++ {
		cur = hs.defaultParent[i][cur]
	}
	return cur
}

// HomeStation returns home^l(u) as an overlay station.
func (hs *Hierarchy) HomeStation(u graph.NodeID, l int) overlay.Station {
	h := hs.Home(u, l)
	return overlay.Station{Level: l, Key: int64(h), Host: h}
}

// DefaultParent returns the default parent at level l+1 of node u in V_l.
func (hs *Hierarchy) DefaultParent(u graph.NodeID, l int) (graph.NodeID, bool) {
	if l < 0 || l >= hs.h {
		return graph.Undefined, false
	}
	p, ok := hs.defaultParent[l][u]
	return p, ok
}

// ParentSet returns the parent set at level l+1 of node u in V_l, sorted by
// node ID (shared slice; do not modify).
func (hs *Hierarchy) ParentSet(u graph.NodeID, l int) []graph.NodeID {
	if l < 0 || l >= hs.h {
		return nil
	}
	return hs.parentSet[l][u]
}

// DPath returns the detection path of bottom-level node u: per level, the
// stations visited in ID order. With UseParentSets the level-l entry is
// parentset^l(u) (the parent set of home^(l-1)(u)); otherwise it is the
// single default parent home^l(u). Results are cached and shared.
func (hs *Hierarchy) DPath(u graph.NodeID) overlay.Path {
	hs.pathsMu.RLock()
	p, ok := hs.paths[u]
	hs.pathsMu.RUnlock()
	if ok {
		return p
	}
	p = hs.buildPath(u)
	hs.pathsMu.Lock()
	if prev, ok := hs.paths[u]; ok {
		hs.pathsMu.Unlock()
		return prev
	}
	hs.paths[u] = p
	hs.pathsMu.Unlock()
	return p
}

func (hs *Hierarchy) buildPath(u graph.NodeID) overlay.Path {
	p := make(overlay.Path, hs.h+1)
	p[0] = []overlay.Station{{Level: 0, Key: int64(u), Host: u}}
	home := u
	for l := 1; l <= hs.h; l++ {
		if hs.cfg.UseParentSets {
			set := hs.parentSet[l-1][home]
			stations := make([]overlay.Station, len(set))
			for i, s := range set {
				stations[i] = overlay.Station{Level: l, Key: int64(s), Host: s}
			}
			p[l] = stations
		} else {
			dp := hs.defaultParent[l-1][home]
			p[l] = []overlay.Station{{Level: l, Key: int64(dp), Host: dp}}
		}
		home = hs.defaultParent[l-1][home]
	}
	return p
}

// Validate checks the structural invariants of HS: nested level sets, level
// independence/maximality under the E_l adjacency (over the live nodes in
// incremental mode — excluded nodes are ineligible everywhere), default
// parents within 2^(l+1), parent sets within 4*2^(l+1) and containing the
// default parent, and a single root. It returns the first violation found.
func (hs *Hierarchy) Validate() error {
	for l := 1; l <= hs.h; l++ {
		upper := make(map[graph.NodeID]bool, len(hs.levels[l]))
		for _, u := range hs.levels[l] {
			if hs.isExcluded(u) {
				return fmt.Errorf("hier: excluded node %d in level %d", u, l)
			}
			upper[u] = true
		}
		lower := make(map[graph.NodeID]bool, len(hs.levels[l-1]))
		for _, u := range hs.levels[l-1] {
			lower[u] = true
		}
		for u := range upper {
			if !lower[u] {
				return fmt.Errorf("hier: level %d node %d not in level %d", l, u, l-1)
			}
		}
		live := hs.liveNodes(l - 1)
		radius := math.Pow(2, float64(l))
		adj := levelAdjacency(hs.m, live, radius, make([]bool, hs.g.N()))
		if ok, why := mis.Verify(live, adj, hs.levels[l]); !ok {
			return fmt.Errorf("hier: level %d: %s", l, why)
		}
	}
	for l := 0; l < hs.h; l++ {
		bound := math.Pow(2, float64(l+1))
		for _, u := range hs.levels[l] {
			if hs.isExcluded(u) {
				if _, has := hs.defaultParent[l][u]; has {
					return fmt.Errorf("hier: excluded node %d has a level-%d parent", u, l+1)
				}
				continue
			}
			dp := hs.defaultParent[l][u]
			// Near is exact on every oracle; absence from the 4*bound ball
			// means the distance exceeds 4*bound.
			near := make(map[graph.NodeID]float64)
			for _, nb := range hs.m.Near(u, 4*bound) {
				near[nb.Node] = nb.D
			}
			if d, ok := near[dp]; !ok || d > bound {
				return fmt.Errorf("hier: default parent of %d at level %d is %v away (> %v)", u, l, d, bound)
			}
			set := hs.parentSet[l][u]
			foundDP := false
			for i, p := range set {
				if p == dp {
					foundDP = true
				}
				if d, ok := near[p]; !ok || d > 4*bound {
					return fmt.Errorf("hier: parent-set member %d of %d at level %d is %v away (> %v)", p, u, l, d, 4*bound)
				}
				if i > 0 && set[i-1] >= p {
					return fmt.Errorf("hier: parent set of %d at level %d not ID-sorted", u, l)
				}
			}
			if !foundDP {
				return fmt.Errorf("hier: parent set of %d at level %d missing default parent", u, l)
			}
		}
	}
	if hs.liveCount(hs.h) != 1 {
		return fmt.Errorf("hier: top level has %d live nodes", hs.liveCount(hs.h))
	}
	return nil
}

// Stats summarizes the hierarchy.
type Stats struct {
	Height     int
	LevelSizes []int
	Rho        float64
	Sigma      int
	Root       graph.NodeID
}

// Stats returns summary statistics of the built hierarchy.
func (hs *Hierarchy) Stats() Stats {
	sizes := make([]int, hs.h+1)
	for l := range hs.levels {
		sizes[l] = len(hs.levels[l])
	}
	return Stats{Height: hs.h, LevelSizes: sizes, Rho: hs.Rho(), Sigma: hs.sigma, Root: hs.root}
}

var _ overlay.Overlay = (*Hierarchy)(nil)
