package hier

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func buildIncr(t testing.TB, g *graph.Graph, cfg Config, excluded []graph.NodeID) *Hierarchy {
	t.Helper()
	cfg.Incremental = true
	hs, err := BuildExcluding(g, graph.NewMetric(g), cfg, excluded)
	if err != nil {
		t.Fatalf("BuildExcluding: %v", err)
	}
	return hs
}

func TestIncrementalBuildValidates(t *testing.T) {
	for _, sz := range []struct{ w, h int }{{2, 5}, {4, 4}, {8, 8}} {
		for seed := int64(0); seed < 3; seed++ {
			g := graph.Grid(sz.w, sz.h)
			hs := buildIncr(t, g, Config{Seed: seed, UseParentSets: true, SpecialParentOffset: 2}, nil)
			if err := hs.Validate(); err != nil {
				t.Fatalf("grid %dx%d seed %d: %v", sz.w, sz.h, seed, err)
			}
		}
	}
}

func TestBuildExcludingRequiresIncremental(t *testing.T) {
	g := graph.Grid(3, 3)
	if _, err := BuildExcluding(g, graph.NewMetric(g), Config{Seed: 1}, []graph.NodeID{2}); err == nil {
		t.Fatal("non-incremental exclusion accepted")
	}
}

func TestExcludeReadmitGuards(t *testing.T) {
	g := graph.Grid(3, 3)
	legacy := build(t, g, Config{Seed: 1})
	if err := legacy.Exclude(1); err == nil {
		t.Fatal("Exclude on Luby hierarchy accepted")
	}
	if err := legacy.Readmit(1); err == nil {
		t.Fatal("Readmit on Luby hierarchy accepted")
	}
	if _, err := legacy.Repair([]graph.NodeID{1}); err == nil {
		t.Fatal("Repair on Luby hierarchy accepted")
	}

	hs := buildIncr(t, g, Config{Seed: 1, SpecialParentOffset: 2}, nil)
	if err := hs.Exclude(-1); err == nil {
		t.Fatal("out-of-range Exclude accepted")
	}
	if err := hs.Readmit(99); err == nil {
		t.Fatal("out-of-range Readmit accepted")
	}
	if _, err := hs.Repair([]graph.NodeID{99}); err == nil {
		t.Fatal("out-of-range Repair seed accepted")
	}
	// Idempotent toggles.
	if err := hs.Exclude(4); err != nil {
		t.Fatalf("Exclude: %v", err)
	}
	if err := hs.Exclude(4); err != nil {
		t.Fatalf("double Exclude: %v", err)
	}
	if !hs.IsExcluded(4) || hs.LiveCount() != 8 {
		t.Fatalf("IsExcluded=%v LiveCount=%d", hs.IsExcluded(4), hs.LiveCount())
	}
	if err := hs.Readmit(4); err != nil {
		t.Fatalf("Readmit: %v", err)
	}
	if err := hs.Readmit(4); err != nil {
		t.Fatalf("double Readmit: %v", err)
	}
	if hs.IsExcluded(4) || hs.LiveCount() != 9 {
		t.Fatalf("IsExcluded=%v LiveCount=%d", hs.IsExcluded(4), hs.LiveCount())
	}
	// Cannot exclude everything.
	for u := 0; u < 8; u++ {
		if err := hs.Exclude(graph.NodeID(u)); err != nil {
			t.Fatalf("Exclude %d: %v", u, err)
		}
	}
	if err := hs.Exclude(8); err == nil {
		t.Fatal("excluding the last live node accepted")
	}
}

// TestHierRepairMatchesRebuild is the core tentpole contract: after any
// seeded fail/readmit sequence, Repair lands on a hierarchy
// Fingerprint-identical to a fresh BuildExcluding of the same live set,
// and structurally valid.
func TestHierRepairMatchesRebuild(t *testing.T) {
	grids := []struct{ w, h int }{{4, 4}, {7, 7}, {10, 10}}
	for _, sz := range grids {
		for seed := int64(1); seed <= 3; seed++ {
			g := graph.Grid(sz.w, sz.h)
			m := graph.NewMetric(g)
			cfg := Config{Seed: seed, UseParentSets: true, SpecialParentOffset: 2, Incremental: true}
			hs, err := BuildExcluding(g, m, cfg, nil)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rng := rand.New(rand.NewSource(seed * 1000))
			excluded := make(map[graph.NodeID]bool)
			for step := 0; step < 25; step++ {
				var u graph.NodeID
				if len(excluded) > 0 && rng.Intn(3) == 0 {
					// Readmit a random excluded node.
					k := rng.Intn(len(excluded))
					for v := 0; v < g.N(); v++ {
						if excluded[graph.NodeID(v)] {
							if k == 0 {
								u = graph.NodeID(v)
								break
							}
							k--
						}
					}
					delete(excluded, u)
					if err := hs.Readmit(u); err != nil {
						t.Fatalf("step %d Readmit(%d): %v", step, u, err)
					}
				} else {
					u = graph.NodeID(rng.Intn(g.N()))
					if excluded[u] || len(excluded) >= g.N()-2 {
						continue
					}
					excluded[u] = true
					if err := hs.Exclude(u); err != nil {
						t.Fatalf("step %d Exclude(%d): %v", step, u, err)
					}
				}
				st, err := hs.Repair([]graph.NodeID{u})
				if err != nil {
					t.Fatalf("step %d Repair(%d): %v", step, u, err)
				}
				exList := make([]graph.NodeID, 0, len(excluded))
				for v := 0; v < g.N(); v++ {
					if excluded[graph.NodeID(v)] {
						exList = append(exList, graph.NodeID(v))
					}
				}
				fresh, err := BuildExcluding(g, m, cfg, exList)
				if err != nil {
					t.Fatalf("step %d fresh build: %v", step, err)
				}
				if got, want := hs.Fingerprint(), fresh.Fingerprint(); got != want {
					t.Fatalf("grid %dx%d seed %d step %d (node %d, %d excluded): repair fingerprint %x != rebuild %x\nrepaired: %+v\nfresh:    %+v",
						sz.w, sz.h, seed, step, u, len(excluded), got, want, hs.Stats(), fresh.Stats())
				}
				if err := hs.Validate(); err != nil {
					t.Fatalf("step %d validate: %v", step, err)
				}
				if st.Touched() == 0 && st.Affected > 0 && len(excluded) > 0 {
					// A liveness flip always flips at least the node's own
					// level-0 parent entry — zero touches would mean the
					// repair silently skipped work. (Readmitting into an
					// empty neighborhood still recomputes its parents.)
					t.Fatalf("step %d: repair touched nothing", step)
				}
			}
		}
	}
}

// TestHierRepairBatchedSeeds repairs several simultaneous failures in one
// call, as the facade's rebuild-threshold path does.
func TestHierRepairBatchedSeeds(t *testing.T) {
	g := graph.Grid(8, 8)
	m := graph.NewMetric(g)
	cfg := Config{Seed: 7, UseParentSets: true, SpecialParentOffset: 2, Incremental: true}
	hs, err := BuildExcluding(g, m, cfg, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	batch := []graph.NodeID{3, 17, 17, 40, 63} // duplicate on purpose
	for _, u := range batch {
		if err := hs.Exclude(u); err != nil {
			t.Fatalf("Exclude(%d): %v", u, err)
		}
	}
	if _, err := hs.Repair(batch); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	fresh, err := BuildExcluding(g, m, cfg, []graph.NodeID{3, 17, 40, 63})
	if err != nil {
		t.Fatalf("fresh: %v", err)
	}
	if hs.Fingerprint() != fresh.Fingerprint() {
		t.Fatalf("batched repair diverged from rebuild:\nrepaired: %+v\nfresh:    %+v", hs.Stats(), fresh.Stats())
	}
	if err := hs.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

// TestHierRepairShrinksToTwoNodes drives liveness down to 2 nodes and back,
// exercising the level trim/extend paths.
func TestHierRepairShrinksToTwoNodes(t *testing.T) {
	g := graph.Grid(4, 4)
	m := graph.NewMetric(g)
	cfg := Config{Seed: 3, SpecialParentOffset: 2, Incremental: true}
	hs, err := BuildExcluding(g, m, cfg, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for u := 2; u < 16; u++ {
		if err := hs.Exclude(graph.NodeID(u)); err != nil {
			t.Fatalf("Exclude(%d): %v", u, err)
		}
		if _, err := hs.Repair([]graph.NodeID{graph.NodeID(u)}); err != nil {
			t.Fatalf("Repair(%d): %v", u, err)
		}
	}
	if hs.LiveCount() != 2 {
		t.Fatalf("LiveCount %d", hs.LiveCount())
	}
	if err := hs.Validate(); err != nil {
		t.Fatalf("validate at 2 live: %v", err)
	}
	for u := 15; u >= 2; u-- {
		if err := hs.Readmit(graph.NodeID(u)); err != nil {
			t.Fatalf("Readmit(%d): %v", u, err)
		}
		if _, err := hs.Repair([]graph.NodeID{graph.NodeID(u)}); err != nil {
			t.Fatalf("Repair(%d): %v", u, err)
		}
	}
	fresh, err := BuildExcluding(g, m, cfg, nil)
	if err != nil {
		t.Fatalf("fresh: %v", err)
	}
	if hs.Fingerprint() != fresh.Fingerprint() {
		t.Fatalf("full recovery diverged from pristine build:\nrepaired: %+v\nfresh:    %+v", hs.Stats(), fresh.Stats())
	}
}

// TestHierRepairOracleMatchesExact pins that the incremental build and
// repair see identical structure through the sub-quadratic oracle, since
// every distance flows through exact Near.
func TestHierRepairOracleMatchesExact(t *testing.T) {
	g := graph.Grid(9, 9)
	cfg := Config{Seed: 5, UseParentSets: true, SpecialParentOffset: 2, Incremental: true}
	m := graph.NewMetric(g)
	o := graph.NewOracle(g, graph.OracleConfig{Seed: 5})
	he, err := BuildExcluding(g, m, cfg, nil)
	if err != nil {
		t.Fatalf("exact build: %v", err)
	}
	ho, err := BuildExcluding(g, o, cfg, nil)
	if err != nil {
		t.Fatalf("oracle build: %v", err)
	}
	for _, u := range []graph.NodeID{0, 40, 80} {
		for _, hs := range []*Hierarchy{he, ho} {
			if err := hs.Exclude(u); err != nil {
				t.Fatalf("Exclude(%d): %v", u, err)
			}
			if _, err := hs.Repair([]graph.NodeID{u}); err != nil {
				t.Fatalf("Repair(%d): %v", u, err)
			}
		}
	}
	if he.Fingerprint() != ho.Fingerprint() {
		t.Fatalf("oracle repair diverged from exact:\nexact:  %+v\noracle: %+v", he.Stats(), ho.Stats())
	}
}
