package lb

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/overlay"
)

func buildOverlay(t testing.TB, w, h int) (*hier.Hierarchy, *graph.Graph) {
	t.Helper()
	g := graph.Grid(w, h)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: 1, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	return hs, g
}

func TestPlaceLevelZeroIsHost(t *testing.T) {
	hs, _ := buildOverlay(t, 6, 6)
	b := New(hs)
	st := overlay.Station{Level: 0, Key: 7, Host: 7}
	if got := b.Place(st, 42); got != 7 {
		t.Fatalf("level-0 placement %d", got)
	}
	if c := b.RouteCost(st, 42); c != 0 {
		t.Fatalf("level-0 route cost %v", c)
	}
}

func TestPlaceInsideCluster(t *testing.T) {
	hs, _ := buildOverlay(t, 8, 8)
	b := New(hs)
	m := hs.Metric()
	st := overlay.Station{Level: 3, Key: 20, Host: 20}
	for o := core.ObjectID(0); o < 100; o++ {
		p := b.Place(st, o)
		if d := m.Dist(st.Host, p); d > 8 { // 2^3
			t.Fatalf("object %d placed %v away from cluster center", o, d)
		}
	}
}

func TestPlacementSpreadsLoad(t *testing.T) {
	hs, _ := buildOverlay(t, 8, 8)
	b := New(hs)
	st := overlay.Station{Level: 3, Key: 20, Host: 20}
	counts := map[graph.NodeID]int{}
	const objs = 500
	for o := core.ObjectID(0); o < objs; o++ {
		counts[b.Place(st, o)]++
	}
	size := b.ClusterSize(st)
	if size < 10 {
		t.Fatalf("cluster unexpectedly small: %d", size)
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Perfectly even would be objs/size; allow 3x imbalance.
	if max > 3*objs/size+3 {
		t.Fatalf("max load %d across cluster of %d for %d objects", max, size, objs)
	}
	if len(counts) < size/2 {
		t.Fatalf("only %d of %d members used", len(counts), size)
	}
}

func TestPlacementDeterministic(t *testing.T) {
	hs, _ := buildOverlay(t, 8, 8)
	b1, b2 := New(hs), New(hs)
	st := overlay.Station{Level: 2, Key: 11, Host: 11}
	for o := core.ObjectID(0); o < 50; o++ {
		if b1.Place(st, o) != b2.Place(st, o) {
			t.Fatalf("placement not deterministic for object %d", o)
		}
	}
}

func TestRouteCostBounded(t *testing.T) {
	hs, _ := buildOverlay(t, 8, 8)
	b := New(hs)
	st := overlay.Station{Level: 3, Key: 20, Host: 20}
	e := b.cluster(st)
	// Route cost <= dimension * (2 * cluster radius): each virtual hop is
	// between two members of the radius-8 cluster.
	bound := float64(e.Dimension()) * 16
	for o := core.ObjectID(0); o < 100; o++ {
		if c := b.RouteCost(st, o); c < 0 || c > bound {
			t.Fatalf("route cost %v outside [0, %v]", c, bound)
		}
	}
}

// Integration with the directory: load balancing keeps the maximum node
// load far below the root-concentrated load of the unbalanced directory.
func TestDirectoryLoadBalanced(t *testing.T) {
	hs, g := buildOverlay(t, 11, 11)
	rng := rand.New(rand.NewSource(7))
	const objs = 100

	run := func(pl core.Placement) []int {
		d := core.New(hs, core.Config{Placement: pl})
		for o := 0; o < objs; o++ {
			if err := d.Publish(core.ObjectID(o), graph.NodeID(rng.Intn(g.N()))); err != nil {
				t.Fatal(err)
			}
		}
		return d.LoadByNode(g.N())
	}

	rng = rand.New(rand.NewSource(7))
	plain := run(core.HostPlacement{})
	rng = rand.New(rand.NewSource(7))
	balanced := run(New(hs))

	maxOf := func(xs []int) int {
		m := 0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	if maxOf(balanced) >= maxOf(plain) {
		t.Fatalf("balancing did not reduce max load: %d vs %d", maxOf(balanced), maxOf(plain))
	}
	// The root concentrates ~objs entries without balancing.
	if maxOf(plain) < objs/2 {
		t.Fatalf("unbalanced max load suspiciously low: %d", maxOf(plain))
	}
}

// Balanced directories still answer every query correctly and pay the
// routing surcharge in their cost meter.
func TestBalancedDirectoryCorrectWithSurcharge(t *testing.T) {
	hs, g := buildOverlay(t, 8, 8)
	d := core.New(hs, core.Config{Placement: New(hs)})
	rng := rand.New(rand.NewSource(3))
	locs := make([]graph.NodeID, 10)
	for o := range locs {
		locs[o] = graph.NodeID(rng.Intn(g.N()))
		if err := d.Publish(core.ObjectID(o), locs[o]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 150; i++ {
		o := rng.Intn(len(locs))
		nbrs := g.NeighborIDs(locs[o])
		locs[o] = nbrs[rng.Intn(len(nbrs))]
		if err := d.Move(core.ObjectID(o), locs[o]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for o := range locs {
		got, _, err := d.Query(graph.NodeID(rng.Intn(g.N())), core.ObjectID(o))
		if err != nil {
			t.Fatal(err)
		}
		if got != locs[o] {
			t.Fatalf("object %d at %d, query said %d", o, locs[o], got)
		}
	}
	if d.Meter().LBRouteCost <= 0 {
		t.Fatal("no de Bruijn routing surcharge recorded")
	}
}
