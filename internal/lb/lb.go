// Package lb implements the paper's §5 load balancing: each internal
// station of the overlay forms a cluster of all sensors within radius 2^i
// of it (i = station level), a de Bruijn graph is embedded over the cluster
// members, and directory entries are spread across members by hashing the
// object key modulo the cluster size. Requests reaching the station are
// routed to the entry holder over the embedded de Bruijn edges, which
// multiplies maintenance and query costs by O(log n) (Corollary 5.2) while
// reducing the per-node load ratio to O(log D) (Theorem 5.1).
package lb

import (
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/debruijn"
	"repro/internal/graph"
	"repro/internal/overlay"
)

// Balancer distributes directory entries across station clusters. It
// implements core.Placement.
type Balancer struct {
	m graph.DistanceOracle
	// deBruijnHops prices each access as the full virtual-hop route of
	// Corollary 5.2 (leader to holder over de Bruijn edges). The default
	// prices the direct leader-to-holder distance, modeling leaders that
	// cache resolved holder addresses after the first de Bruijn lookup.
	deBruijnHops bool

	mu       sync.Mutex
	clusters map[clusterKey]*debruijn.Embedding
}

type clusterKey struct {
	level int
	host  graph.NodeID
}

// New creates a balancer over the network metric of the given overlay.
func New(ov overlay.Overlay) *Balancer {
	return &Balancer{m: ov.Metric(), clusters: make(map[clusterKey]*debruijn.Embedding)}
}

// NewDeBruijnPriced creates a balancer whose routing surcharge counts every
// virtual de Bruijn hop (the Corollary 5.2 cost model, used by ablations).
func NewDeBruijnPriced(ov overlay.Overlay) *Balancer {
	return &Balancer{m: ov.Metric(), deBruijnHops: true, clusters: make(map[clusterKey]*debruijn.Embedding)}
}

// cluster returns (building lazily) the de Bruijn embedding of the cluster
// around the station's host: all sensors within 2^level.
func (b *Balancer) cluster(st overlay.Station) *debruijn.Embedding {
	k := clusterKey{level: st.Level, host: st.Host}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.clusters[k]; ok {
		return e
	}
	r := math.Pow(2, float64(st.Level))
	members := b.m.Ball(st.Host, r)
	e := debruijn.New(members)
	b.clusters[k] = e
	return e
}

// hashLabel maps an object key to a member label of the cluster (the
// paper's key(o) mod |X| placement; keys are already uniform in the
// workloads, and a multiplicative scramble guards against striding).
func hashLabel(o core.ObjectID, size int) int {
	if size <= 1 {
		return 0
	}
	x := uint64(o)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(size))
}

// Place returns the cluster member that stores the entry for o at st.
// Bottom-level stations (proxies) always store their own entries.
func (b *Balancer) Place(st overlay.Station, o core.ObjectID) graph.NodeID {
	if st.Level == 0 {
		return st.Host
	}
	e := b.cluster(st)
	label := hashLabel(o, e.Size())
	h, err := e.Host(label)
	if err != nil {
		return st.Host
	}
	return h
}

// RouteCost returns the routing surcharge from the station host (the
// cluster leader) to the entry holder: the direct distance by default, or
// the full de Bruijn virtual-hop route for Corollary 5.2 pricing.
func (b *Balancer) RouteCost(st overlay.Station, o core.ObjectID) float64 {
	if st.Level == 0 {
		return 0
	}
	e := b.cluster(st)
	to := hashLabel(o, e.Size())
	if !b.deBruijnHops {
		h, err := e.Host(to)
		if err != nil {
			return 0
		}
		return b.m.Dist(st.Host, h)
	}
	from := e.LabelOf(st.Host)
	if from < 0 {
		from = 0
	}
	c, err := e.RouteCost(b.m, from, to)
	if err != nil {
		return 0
	}
	return c
}

// ClusterSize reports the member count of the cluster around a station,
// for diagnostics and tests.
func (b *Balancer) ClusterSize(st overlay.Station) int {
	return b.cluster(st).Size()
}

var _ core.Placement = (*Balancer)(nil)
