// Package bench runs the substrate and harness benchmark suite behind
// `make bench-json` / `motsim -benchjson` and renders it as a
// machine-readable JSON artifact (BENCH_10.json) so CI can track the
// perf trajectory release over release. Rows marked Pinned are enforced
// by the regression gate (internal/bench/diff behind `make bench-gate`):
// >15% ns/op growth or any allocs/op growth against the committed
// baseline fails CI.
//
// The suite pins the claims the frozen-metric work makes: the frozen
// Dist path is allocation-free and much cheaper than the lazy
// RWMutex+map path, Precompute's scratch reuse keeps the all-pairs fill
// lean, and the experiments substrate cache turns repeated same-topology
// sweep cells from O(n²·log n) rebuilds into lookups (cells/sec,
// cache-on vs cache-off, on a 16×16-grid sweep) — plus the PR-6 oracle
// claims: the sketch oracle builds far faster than an exact Precompute
// at equal n with O(n·polylog n) bytes/node instead of 8n, its Dist
// reads stay cheap, and a full 10k-node oracle-mode scale cell runs at
// a usable cells/sec without ever freezing an n×n table — and the PR-8
// churn claim: sustained-churn schedule cells/sec with the incremental
// repair engine's recovery cost a small ratio of the rebuild baseline's
// — and the PR-9 live-telemetry overhead contract: live/nil-sink pins
// the disabled fast path at 0 allocs/op, and runtime/ops-live-on vs
// -off pins enabled overhead ≤10% ns/op on a runtime Move+Query round
// trip (the measured gap rides along as overhead_pct) — and the PR-10
// serving rows: serve/ops-publish|move|query each pin one full HTTP
// round trip through the sharded motserve front end (mux dispatch,
// shard hash, batched move drain, ack) with ops_per_sec and the
// server-side p50/p99 riding along as extras.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/obs/live"
	motruntime "repro/internal/runtime"
	"repro/internal/serve"
)

// Result is one benchmark's outcome in flat, diff-friendly units.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Pinned marks the benchmarks the CI regression gate (cmd/benchdiff,
	// `make bench-gate`) enforces: >15% ns/op or any allocs/op growth
	// against the committed BENCH_*.json baseline fails the build.
	// Unpinned rows are tracked for the trajectory but tolerated.
	Pinned bool               `json:"pinned,omitempty"`
	Extra  map[string]float64 `json:"extra,omitempty"`
}

// Report is the full artifact. Schema names the layout so downstream
// tooling can detect format changes.
type Report struct {
	Schema     string   `json:"schema"`
	GoOS       string   `json:"goos"`
	GoArch     string   `json:"goarch"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Benchmarks []Result `json:"benchmarks"`
}

// sink defeats dead-code elimination in the measurement loops.
var sink float64

// best reruns measure and keeps the fastest trial. Pinned contract rows
// feed the CI regression gate, where a single sample of a sub-10ns loop
// can swing 30%+ on scheduler or frequency jitter alone; the minimum of
// a few trials converges on the true cost of the code, which is what
// the gate's 15% tolerance is meant to police.
func best(trials int, measure func() Result) Result {
	res := measure()
	for i := 1; i < trials; i++ {
		if r := measure(); r.NsPerOp < res.NsPerOp {
			res = r
		}
	}
	return res
}

func toResult(name string, r testing.BenchmarkResult, extra map[string]float64) Result {
	return Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Extra:       extra,
	}
}

// distFrozen measures the lock-free frozen read path (the acceptance
// criterion: 0 allocs/op).
func distFrozen() Result {
	g := graph.Grid(32, 32)
	m := graph.NewMetric(g)
	m.Precompute(0)
	n := g.N()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		acc := 0.0
		for i := 0; i < b.N; i++ {
			acc += m.Dist(graph.NodeID(i%n), graph.NodeID((i*31)%n))
		}
		sink = acc
	})
	res := toResult("metric/dist-frozen", r, nil)
	res.Pinned = true
	return res
}

// distLazy measures the pre-freeze RWMutex+map path for comparison; it
// touches only a few source rows so the metric never auto-freezes.
func distLazy() Result {
	g := graph.Grid(32, 32)
	m := graph.NewMetric(g)
	n := g.N()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		acc := 0.0
		for i := 0; i < b.N; i++ {
			acc += m.Dist(graph.NodeID(i%8), graph.NodeID((i*31)%n))
		}
		sink = acc
	})
	return toResult("metric/dist-lazy", r, nil)
}

// precompute measures a cold all-pairs fill + freeze of a 16×16 grid.
func precompute() Result {
	g := graph.Grid(16, 16)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := graph.NewMetric(g)
			m.Precompute(0)
		}
	})
	return toResult("metric/precompute-256", r, nil)
}

// sweep measures a 16×16-grid cost-ratio sweep (4 seeded cells) with the
// substrate cache on or off, reporting cells/sec. The cache is reset
// first either way, so the cache-on number includes one cold build
// amortized over all measured cells.
func sweep(name string, disable bool) Result {
	cfg := experiments.CostRatioConfig{
		Sizes:                 []int{256},
		Objects:               6,
		MovesPerObject:        30,
		Queries:               20,
		Seeds:                 4,
		LoadBalance:           true,
		Workers:               1,
		DisableSubstrateCache: disable,
	}
	cells := len(cfg.Sizes) * cfg.Seeds
	experiments.ResetSubstrateCache()
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunCostRatio(cfg); err != nil {
				panic(err)
			}
		}
	})
	extra := map[string]float64{
		"cells":         float64(cells),
		"cells_per_sec": float64(r.N*cells) / r.T.Seconds(),
	}
	return toResult(name, r, extra)
}

// oracleBuild measures a cold sketch-oracle build at size n against the
// exact Precompute at the same size (exactToo gates the exact leg so the
// comparison stays affordable: at 10k+ the exact build is the wall being
// measured around, not a baseline worth re-paying every run). Extra
// reports bytes/node for the oracle (the O(n·polylog n) memory claim;
// the exact table is always 8n bytes/node) plus the published stretch.
func oracleBuild(n int, exactToo bool) []Result {
	g := graph.NearSquareGrid(n)
	var out []Result
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := graph.NewOracle(g, graph.OracleConfig{})
			sink = o.Stretch()
		}
	})
	o := graph.NewOracle(g, graph.OracleConfig{})
	out = append(out, toResult(fmt.Sprintf("oracle/build-%d", n), r, map[string]float64{
		"bytes_per_node": float64(o.Bytes()) / float64(n),
		"stretch":        o.Stretch(),
		"landmarks":      float64(o.Landmarks()),
		"ball_k":         float64(o.BallK()),
	}))
	if exactToo {
		re := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := graph.NewMetric(g)
				m.Precompute(0)
			}
		})
		out = append(out, toResult(fmt.Sprintf("oracle/exact-precompute-%d", n), re, map[string]float64{
			"bytes_per_node": float64(n) * 8,
		}))
	}
	return out
}

// oracleDist measures the oracle's far-pair Dist read (sketch miss →
// landmark scan), the counterpart of metric/dist-frozen.
func oracleDist() Result {
	g := graph.NearSquareGrid(1024)
	o := graph.NewOracle(g, graph.OracleConfig{})
	n := g.N()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		acc := 0.0
		for i := 0; i < b.N; i++ {
			acc += o.Dist(graph.NodeID(i%n), graph.NodeID((i*31)%n))
		}
		sink = acc
	})
	res := toResult("oracle/dist-1024", r, map[string]float64{"stretch": o.Stretch()})
	res.Pinned = true
	return res
}

// scaleCell measures one full 10k-node oracle-mode scale cell (oracle +
// hierarchy build and workload replay, substrate cache reset first), the
// cells/sec number the 10k+ acceptance criterion tracks.
func scaleCell() Result {
	cfg := experiments.ScaleConfig{Sizes: []int{10000}, Workers: 1}
	experiments.ResetSubstrateCache()
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.ResetSubstrateCache()
			if _, err := experiments.RunScale(cfg); err != nil {
				panic(err)
			}
		}
	})
	return toResult("scale/10k-oracle-cell", r, map[string]float64{
		"cells_per_sec": float64(r.N) / r.T.Seconds(),
	})
}

// churnCell measures the sustained-churn tier at small n (the `make
// churn` workload shape), reporting schedule cells/sec plus the
// repair-vs-rebuild recovery ratio — the PR-8 acceptance number CI
// tracks: incremental hier.Repair must stay well under the
// rebuild-from-scratch baseline on the identical seeded schedule.
func churnCell() Result {
	cfg := experiments.ChurnConfig{
		BaseSeed:       7,
		Size:           64,
		Objects:        5,
		ChurnRate:      0.05,
		Epochs:         3,
		Schedules:      3,
		Workers:        1,
		DisableRuntime: true,
	}
	experiments.ResetSubstrateCache()
	var last *experiments.ChurnResult
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := experiments.RunChurn(cfg)
			if err != nil {
				panic(err)
			}
			last = res
		}
	})
	ratio := 0.0
	for i := range last.Schedules {
		ratio += last.Schedules[i].RecoveryRatio()
	}
	ratio /= float64(len(last.Schedules))
	return toResult("churn/64-repair", r, map[string]float64{
		"cells_per_sec":         float64(r.N*cfg.Schedules) / r.T.Seconds(),
		"repair_rebuild_ratio":  ratio,
		"availability_schedule": last.Schedules[0].Availability(),
	})
}

// liveNilSink measures the disabled live-telemetry fast path in
// isolation: a Start/Observe pair on a nil *Recorder. The pin is the
// PR-9 overhead contract's first half — live-off must stay a pointer
// test, 0 allocs/op.
func liveNilSink() Result {
	var rec *live.Recorder
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := rec.Start()
			rec.Observe(live.ClassMove, st, i, nil)
		}
	})
	res := toResult("live/nil-sink", r, nil)
	res.Pinned = true
	return res
}

// runtimeOps measures one Move+Query round trip on the goroutine
// runtime over an 8×8 grid, with live telemetry off (nil sink) or on —
// the second half of the overhead contract: live-on must stay within
// 10% ns/op of live-off. Run() stamps the measured overhead_pct onto
// the live-on row.
func runtimeOps(name string, lrec *live.Recorder) Result {
	g := graph.Grid(8, 8)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: 1})
	if err != nil {
		panic(err)
	}
	tr := motruntime.NewLive(g, hs, nil, nil, lrec)
	defer tr.Stop()
	if err := tr.Publish(1, 0); err != nil {
		panic(err)
	}
	n := g.N()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := tr.Move(1, graph.NodeID(1+i%(n-2))); err != nil {
				panic(err)
			}
			if _, _, err := tr.Query(graph.NodeID(n-1), 1); err != nil {
				panic(err)
			}
		}
	})
	res := toResult(name, r, nil)
	res.Pinned = true
	return res
}

// serveOps measures one full HTTP round trip of the named op class
// against a live sharded serving front end: request encode, mux
// dispatch, shard hash, the tracker op (through the batched drain loop
// for moves, ack awaited), and response decode, serialized over a
// keep-alive connection. Extra carries client-side ops_per_sec plus the
// server-side p50/p99 for the class from the service-level recorder.
//
// The alloc columns are deliberately zeroed: testing.Benchmark counts
// heap churn from every goroutine in the process, and here that spans
// the HTTP client, the server's handlers, and the per-shard drain
// loops, so allocs/op is scheduler noise rather than a per-op contract.
// The pin these rows enforce is ns/op (the gate's 15% band).
func serveOps(class string) Result {
	s, err := serve.New(serve.Config{Shards: 4, Nodes: 64, Seed: 1})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			panic(err)
		}
		ts.Close()
	}()
	do := func(method, path, body string) {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			panic(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			panic(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			panic(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("%s %s: status %d", method, path, resp.StatusCode))
		}
	}
	n := s.Graph().N()
	var r testing.BenchmarkResult
	switch class {
	case "publish":
		// Republishing is a 409, so every iteration registers a fresh
		// object; next persists across the calibration reruns.
		next := 0
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				next++
				do("POST", "/v1/publish", fmt.Sprintf(`{"object":%d,"node":%d}`, next, next%n))
			}
		})
	case "move":
		do("POST", "/v1/publish", `{"object":1,"node":0}`)
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				do("POST", "/v1/move", fmt.Sprintf(`{"object":1,"to":%d}`, 1+i%(n-2)))
			}
		})
	case "query":
		do("POST", "/v1/publish", `{"object":1,"node":0}`)
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				do("GET", "/v1/query/1", "")
			}
		})
	default:
		panic("serveOps: unknown class " + class)
	}
	res := toResult("serve/ops-"+class, r, nil)
	res.AllocsPerOp, res.BytesPerOp = 0, 0
	res.Pinned = true
	extra := map[string]float64{"ops_per_sec": 1e9 / res.NsPerOp}
	for _, op := range s.Snapshot().Request.Ops {
		if op.Class == class {
			extra["p50_ns"] = float64(op.P50Ns)
			extra["p99_ns"] = float64(op.P99Ns)
		}
	}
	res.Extra = extra
	return res
}

// Run executes the whole suite. It takes a few seconds.
func Run() *Report {
	benchmarks := []Result{
		best(5, distFrozen),
		distLazy(),
		precompute(),
		sweep("sweep/256-cache-on", false),
		sweep("sweep/256-cache-off", true),
		best(5, oracleDist),
		best(5, liveNilSink),
	}
	off := best(5, func() Result { return runtimeOps("runtime/ops-live-off", nil) })
	on := best(5, func() Result {
		return runtimeOps("runtime/ops-live-on", live.New("bench", live.Config{}))
	})
	if off.NsPerOp > 0 {
		on.Extra = map[string]float64{
			"overhead_pct": 100 * (on.NsPerOp/off.NsPerOp - 1),
		}
	}
	benchmarks = append(benchmarks, off, on)
	benchmarks = append(benchmarks, oracleBuild(1024, true)...)
	benchmarks = append(benchmarks, oracleBuild(10000, false)...)
	benchmarks = append(benchmarks, scaleCell(), churnCell())
	for _, class := range []string{"publish", "move", "query"} {
		benchmarks = append(benchmarks, best(3, func() Result { return serveOps(class) }))
	}
	return &Report{
		Schema:     "mot-bench/v1",
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: benchmarks,
	}
}

// WriteJSON renders the report as indented JSON.
func WriteJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
