// Package diff compares two mot-bench/v1 reports — the committed
// BENCH_*.json baseline and a freshly measured run — and decides
// whether the pinned benchmarks regressed. It is the engine behind
// cmd/benchdiff and `make bench-gate`: CI fails when any pinned row
// grows more than the ns/op tolerance (default 15%, absorbing 1-CPU
// runner noise) or allocates more per op at all (allocations are
// deterministic, so the tolerance there is zero). Unpinned rows are
// reported in the delta table for the trajectory but never gate.
package diff

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/bench"
)

// Options tunes the gate.
type Options struct {
	// MaxNsRegress is the tolerated fractional ns/op growth on pinned
	// benchmarks (0.15 = +15%). Non-positive selects the default 0.15.
	MaxNsRegress float64
}

// Row is one benchmark's before/after comparison.
type Row struct {
	Name        string
	Pinned      bool
	BaseNs      float64
	CurNs       float64
	NsDelta     float64 // fractional: 0.10 = +10%
	BaseAllocs  int64
	CurAllocs   int64
	MissingBase bool // present now, absent in the baseline (new benchmark)
	MissingCur  bool // present in the baseline, absent now
}

// Report is the full comparison: every benchmark seen in either input,
// sorted by name, plus the gate verdicts.
type Report struct {
	Schema   string
	Rows     []Row
	Failures []string
}

// OK reports whether the gate passes.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

// Diff compares a baseline report against the current one.
func Diff(base, cur *bench.Report, opts Options) *Report {
	if opts.MaxNsRegress <= 0 {
		opts.MaxNsRegress = 0.15
	}
	baseBy := map[string]bench.Result{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	curBy := map[string]bench.Result{}
	for _, c := range cur.Benchmarks {
		curBy[c.Name] = c
	}
	names := make([]string, 0, len(baseBy)+len(curBy))
	for n := range baseBy {
		names = append(names, n)
	}
	for n := range curBy {
		if _, dup := baseBy[n]; !dup {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	rep := &Report{Schema: cur.Schema}
	for _, name := range names {
		b, inBase := baseBy[name]
		c, inCur := curBy[name]
		row := Row{
			Name:        name,
			Pinned:      (inCur && c.Pinned) || (!inCur && b.Pinned),
			MissingBase: !inBase,
			MissingCur:  !inCur,
		}
		if inBase {
			row.BaseNs, row.BaseAllocs = b.NsPerOp, b.AllocsPerOp
		}
		if inCur {
			row.CurNs, row.CurAllocs = c.NsPerOp, c.AllocsPerOp
		}
		switch {
		case !inCur:
			// A pinned benchmark that vanishes is a gate failure — deleting
			// the measurement must never be the easy way past it.
			if b.Pinned {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s: pinned benchmark missing from current run", name))
			}
		case !inBase:
			// New benchmark: nothing to regress against; next baseline
			// refresh adopts it.
		default:
			if row.BaseNs > 0 {
				row.NsDelta = row.CurNs/row.BaseNs - 1
			}
			if !c.Pinned {
				break
			}
			if row.NsDelta > opts.MaxNsRegress {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s: ns/op %.1f -> %.1f (%+.1f%%, tolerance +%.0f%%)",
						name, row.BaseNs, row.CurNs, 100*row.NsDelta, 100*opts.MaxNsRegress))
			}
			if row.CurAllocs > row.BaseAllocs {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s: allocs/op %d -> %d (any growth fails)",
						name, row.BaseAllocs, row.CurAllocs))
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// LoadReport reads a mot-bench/v1 JSON artifact from disk.
func LoadReport(path string) (*bench.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep bench.Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	if rep.Schema != "mot-bench/v1" {
		return nil, fmt.Errorf("benchdiff: %s: unknown schema %q", path, rep.Schema)
	}
	return &rep, nil
}

// WriteMarkdown renders the comparison as the delta table CI uploads.
func WriteMarkdown(w io.Writer, rep *Report) error {
	if _, err := fmt.Fprintf(w, "# Bench delta (%s)\n\n", rep.Schema); err != nil {
		return err
	}
	if rep.OK() {
		if _, err := fmt.Fprintf(w, "Gate: **pass** — no pinned regressions.\n\n"); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "Gate: **FAIL**\n\n"); err != nil {
			return err
		}
		for _, f := range rep.Failures {
			if _, err := fmt.Fprintf(w, "- %s\n", f); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "| benchmark | pinned | base ns/op | cur ns/op | Δ ns/op | base allocs | cur allocs |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---:|---:|---:|---:|---:|"); err != nil {
		return err
	}
	for _, r := range rep.Rows {
		pin := ""
		if r.Pinned {
			pin = "yes"
		}
		delta := fmt.Sprintf("%+.1f%%", 100*r.NsDelta)
		switch {
		case r.MissingBase:
			delta = "new"
		case r.MissingCur:
			delta = "gone"
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %.1f | %.1f | %s | %d | %d |\n",
			r.Name, pin, r.BaseNs, r.CurNs, delta, r.BaseAllocs, r.CurAllocs); err != nil {
			return err
		}
	}
	return nil
}
