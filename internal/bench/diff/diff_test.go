package diff

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

func report(results ...bench.Result) *bench.Report {
	return &bench.Report{Schema: "mot-bench/v1", Benchmarks: results}
}

func pinned(name string, ns float64, allocs int64) bench.Result {
	return bench.Result{Name: name, NsPerOp: ns, AllocsPerOp: allocs, Pinned: true}
}

func free(name string, ns float64, allocs int64) bench.Result {
	return bench.Result{Name: name, NsPerOp: ns, AllocsPerOp: allocs}
}

// The gate's reason to exist: a deliberately injected >15% ns/op
// regression on a pinned benchmark must fail.
func TestDiffFailsOnNsRegression(t *testing.T) {
	rep := Diff(report(pinned("metric/dist-frozen", 100, 0)),
		report(pinned("metric/dist-frozen", 120, 0)), Options{})
	if rep.OK() {
		t.Fatal("+20% pinned ns/op regression passed the gate")
	}
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0], "+20.0%") {
		t.Fatalf("failures: %v", rep.Failures)
	}
}

func TestDiffPassesWithinTolerance(t *testing.T) {
	rep := Diff(
		report(pinned("metric/dist-frozen", 100, 0), pinned("runtime/ops-live-on", 5000, 40)),
		report(pinned("metric/dist-frozen", 110, 0), pinned("runtime/ops-live-on", 4500, 40)),
		Options{})
	if !rep.OK() {
		t.Fatalf("+10%% should be inside the 15%% tolerance: %v", rep.Failures)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if d := rep.Rows[0].NsDelta; d < 0.099 || d > 0.101 {
		t.Fatalf("delta = %v, want 0.10", d)
	}
}

func TestDiffFailsOnAnyAllocRegression(t *testing.T) {
	rep := Diff(report(pinned("live/nil-sink", 2, 0)),
		report(pinned("live/nil-sink", 2, 1)), Options{})
	if rep.OK() {
		t.Fatal("allocs/op 0 -> 1 on a pinned benchmark passed the gate")
	}
	if !strings.Contains(rep.Failures[0], "allocs/op 0 -> 1") {
		t.Fatalf("failures: %v", rep.Failures)
	}
}

// Deleting a pinned benchmark must not be an escape from the gate.
func TestDiffFailsOnMissingPinned(t *testing.T) {
	rep := Diff(report(pinned("oracle/dist-1024", 30, 0)), report(), Options{})
	if rep.OK() {
		t.Fatal("vanished pinned benchmark passed the gate")
	}
	if !strings.Contains(rep.Failures[0], "missing from current run") {
		t.Fatalf("failures: %v", rep.Failures)
	}
}

// Unpinned rows inform the trajectory; they never gate, however badly
// they move. New benchmarks have no baseline and are adopted silently.
func TestDiffToleratesUnpinnedAndNew(t *testing.T) {
	rep := Diff(
		report(free("sweep/256-cache-on", 1000, 50)),
		report(free("sweep/256-cache-on", 9000, 500), pinned("runtime/ops-live-off", 5000, 40)),
		Options{})
	if !rep.OK() {
		t.Fatalf("unpinned regression or new pinned bench gated: %v", rep.Failures)
	}
	var newRow Row
	for _, r := range rep.Rows {
		if r.Name == "runtime/ops-live-off" {
			newRow = r
		}
	}
	if !newRow.MissingBase {
		t.Fatalf("new benchmark not marked MissingBase: %+v", newRow)
	}
}

func TestDiffCustomTolerance(t *testing.T) {
	base := report(pinned("metric/dist-frozen", 100, 0))
	cur := report(pinned("metric/dist-frozen", 140, 0))
	if Diff(base, cur, Options{MaxNsRegress: 0.5}).OK() != true {
		t.Fatal("+40% should pass a 50% tolerance")
	}
	if Diff(base, cur, Options{MaxNsRegress: 0.3}).OK() {
		t.Fatal("+40% should fail a 30% tolerance")
	}
}

// Round-trip through the on-disk artifact shape `make bench-gate`
// actually consumes: write fixture JSON, load both sides, diff.
func TestLoadReportAndGateFixture(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep *bench.Report) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := bench.WriteJSON(f, rep); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	basePath := write("base.json", report(pinned("metric/dist-frozen", 7.3, 0), free("metric/precompute-256", 250000, 600)))
	curPath := write("cur.json", report(pinned("metric/dist-frozen", 9.1, 0), free("metric/precompute-256", 251000, 600)))

	base, err := LoadReport(basePath)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := LoadReport(curPath)
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(base, cur, Options{})
	if rep.OK() {
		t.Fatal("7.3 -> 9.1 ns/op (+24.7%) on a pinned row passed")
	}

	var md strings.Builder
	if err := WriteMarkdown(&md, rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Gate: **FAIL**", "metric/dist-frozen", "+24.7%", "| yes |", "metric/precompute-256"} {
		if !strings.Contains(md.String(), want) {
			t.Fatalf("markdown missing %q:\n%s", want, md.String())
		}
	}
}

func TestLoadReportRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(bad); err == nil || !strings.Contains(err.Error(), "unknown schema") {
		t.Fatalf("err = %v", err)
	}
	if _, err := LoadReport(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file did not error")
	}
}

func TestWriteMarkdownCleanPass(t *testing.T) {
	rep := Diff(report(pinned("live/nil-sink", 2.1, 0)),
		report(pinned("live/nil-sink", 2.0, 0)), Options{})
	var md strings.Builder
	if err := WriteMarkdown(&md, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "Gate: **pass**") {
		t.Fatalf("clean diff not marked pass:\n%s", md.String())
	}
}
