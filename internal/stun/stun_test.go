package stun

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mobility"
)

func workloadRates(t testing.TB, g *graph.Graph, m *graph.Metric, seed int64) (*mobility.Workload, map[mobility.EdgeKey]float64) {
	t.Helper()
	w, err := mobility.Generate(g, m, mobility.Config{Objects: 10, MovesPerObject: 100, Queries: 50, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return w, w.DetectionRates(g)
}

func TestBuildTreeValid(t *testing.T) {
	g := graph.Grid(6, 6)
	m := graph.NewMetric(g)
	_, rates := workloadRates(t, g, m, 1)
	tr, err := BuildTree(g, m, rates)
	if err != nil {
		t.Fatal(err)
	}
	// All sensors must be leaves; the tree has internal DAB nodes too.
	for u := 0; u < g.N(); u++ {
		if tr.Leaf(graph.NodeID(u)) < 0 {
			t.Fatalf("sensor %d has no leaf", u)
		}
	}
	if tr.Len() <= g.N() {
		t.Fatalf("no internal nodes: %d tree nodes for %d sensors", tr.Len(), g.N())
	}
	// Leaves are childless in DAB (sensors never host other sensors'
	// subtrees directly; only logical internal nodes do).
	for u := 0; u < g.N(); u++ {
		if tr.Parent(tr.Leaf(graph.NodeID(u))) == -1 && g.N() > 1 {
			t.Fatalf("leaf of %d is the root", u)
		}
	}
}

func TestBuildTreeRejectsBadGraph(t *testing.T) {
	if _, err := BuildTree(graph.New(0), graph.NewMetric(graph.New(0)), nil); err == nil {
		t.Fatal("empty graph accepted")
	}
	g := graph.New(2)
	if _, err := BuildTree(g, graph.NewMetric(g), nil); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestEmptyRatesStillBuilds(t *testing.T) {
	// Traffic-conscious with zero knowledge: a single final drain merge.
	g := graph.Grid(4, 4)
	m := graph.NewMetric(g)
	tr, err := BuildTree(g, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < g.N() {
		t.Fatal("tree too small")
	}
}

func TestHighRateNeighborsMergeLow(t *testing.T) {
	// Two sensors joined by the hottest edge should meet deeper in the
	// tree (farther from the root) than two joined only at the top.
	g := graph.Path(8)
	m := graph.NewMetric(g)
	rates := map[mobility.EdgeKey]float64{
		mobility.MakeEdgeKey(0, 1): 100, // hottest pair
		mobility.MakeEdgeKey(2, 3): 1,
	}
	tr, err := BuildTree(g, m, rates)
	if err != nil {
		t.Fatal(err)
	}
	lca := func(a, b graph.NodeID) int {
		depth := map[int]bool{}
		for id := tr.Leaf(a); id != -1; id = tr.Parent(id) {
			depth[id] = true
		}
		for id := tr.Leaf(b); id != -1; id = tr.Parent(id) {
			if depth[id] {
				return id
			}
		}
		return -1
	}
	hot := tr.Depth(lca(0, 1))
	cold := tr.Depth(lca(0, 7))
	if hot <= cold {
		t.Fatalf("hot pair LCA depth %d not below cold pair LCA depth %d", hot, cold)
	}
}

func TestDirectoryEndToEnd(t *testing.T) {
	g := graph.Grid(6, 6)
	m := graph.NewMetric(g)
	w, rates := workloadRates(t, g, m, 5)
	d, err := New(g, m, rates)
	if err != nil {
		t.Fatal(err)
	}
	for o, at := range w.Initial {
		if err := d.Publish(core.ObjectID(o), at); err != nil {
			t.Fatal(err)
		}
	}
	for i, mv := range w.Moves {
		if err := d.Move(mv.Object, mv.To); err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	finals := w.FinalLocations()
	for _, q := range w.Queries {
		got, _, err := d.Query(q.From, q.Object)
		if err != nil {
			t.Fatal(err)
		}
		if got != finals[q.Object] {
			t.Fatalf("query said %d, want %d", got, finals[q.Object])
		}
	}
	mtr := d.Meter()
	if mtr.MaintRatio() < 1 || mtr.QueryRatio() < 1 {
		t.Fatalf("ratios below 1: %+v", mtr)
	}
}

func TestMedoid(t *testing.T) {
	g := graph.Path(5)
	m := graph.NewMetric(g)
	if got := medoid(m, []graph.NodeID{0, 2, 4}); got != 2 {
		t.Fatalf("medoid %d, want 2", got)
	}
	if got := medoid(m, []graph.NodeID{3}); got != 3 {
		t.Fatalf("singleton medoid %d", got)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(5)
	uf.union(0, 1)
	uf.union(3, 4)
	if uf.find(0) != uf.find(1) || uf.find(3) != uf.find(4) {
		t.Fatal("union failed")
	}
	if uf.find(0) == uf.find(3) {
		t.Fatal("separate sets merged")
	}
	uf.union(1, 3)
	if uf.find(0) != uf.find(4) {
		t.Fatal("transitive union failed")
	}
	uf.union(0, 4) // idempotent
	if uf.find(2) != 2 {
		t.Fatal("untouched element moved")
	}
}

func TestDeterministic(t *testing.T) {
	g := graph.Grid(5, 5)
	m := graph.NewMetric(g)
	_, rates := workloadRates(t, g, m, 7)
	t1, err := BuildTree(g, m, rates)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := BuildTree(g, m, rates)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Len() != t2.Len() {
		t.Fatalf("tree sizes differ: %d vs %d", t1.Len(), t2.Len())
	}
	for id := 0; id < t1.Len(); id++ {
		if t1.Parent(id) != t2.Parent(id) || t1.Host(id) != t2.Host(id) {
			t.Fatalf("tree node %d differs", id)
		}
	}

}
