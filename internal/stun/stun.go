// Package stun implements the STUN baseline (Kung & Vlah, WCNC 2003):
// Scalable Tracking Using Networked sensors. STUN builds its hierarchy with
// Drain-And-Balance (DAB): sensors are leaves; descending through the
// distinct detection-rate thresholds, groups of sensors connected by
// high-rate edges are merged first into balanced subtrees, so that
// frequently-crossed adjacencies meet low in the hierarchy. The resulting
// tree is traffic-conscious (it needs the detection rates up front) and its
// queries are sink-initiated: every query is shipped to the root first.
//
// Internal DAB nodes are logical; following the standard realization, each
// is hosted at the member sensor closest to the centroid of its subtree so
// that message costs are physical graph distances (see DESIGN.md).
package stun

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/mobility"
	"repro/internal/treedir"
)

// BuildTree constructs the DAB hierarchy from per-edge detection rates.
func BuildTree(g *graph.Graph, m *graph.Metric, rates map[mobility.EdgeKey]float64) (*treedir.Tree, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("stun: empty graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("stun: graph must be connected")
	}
	tr := treedir.NewTree()
	// One leaf per sensor; root[] tracks each sensor's current subtree root.
	leaf := make([]int, n)
	for u := 0; u < n; u++ {
		id, err := tr.AddLeaf(graph.NodeID(u))
		if err != nil {
			return nil, err
		}
		leaf[u] = id
	}
	rootOf := make([]int, n)
	copy(rootOf, leaf)
	members := make(map[int][]graph.NodeID, n)
	for u := 0; u < n; u++ {
		members[leaf[u]] = []graph.NodeID{graph.NodeID(u)}
	}

	// Distinct thresholds, descending; high-rate subsets merge first.
	seen := map[float64]bool{}
	var thresholds []float64
	for _, r := range rates {
		if r > 0 && !seen[r] {
			seen[r] = true
			thresholds = append(thresholds, r)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(thresholds)))

	uf := newUnionFind(n)
	// Edges sorted by rate descending for incremental unioning.
	type ratedEdge struct {
		key  mobility.EdgeKey
		rate float64
	}
	var edges []ratedEdge
	for k, r := range rates {
		if r > 0 {
			edges = append(edges, ratedEdge{key: k, rate: r})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].rate != edges[j].rate {
			return edges[i].rate > edges[j].rate
		}
		if edges[i].key.U != edges[j].key.U {
			return edges[i].key.U < edges[j].key.U
		}
		return edges[i].key.V < edges[j].key.V
	})

	ei := 0
	for _, w := range thresholds {
		for ei < len(edges) && edges[ei].rate >= w {
			uf.union(int(edges[ei].key.U), int(edges[ei].key.V))
			ei++
		}
		if err := mergeComponents(tr, m, uf, rootOf, members); err != nil {
			return nil, err
		}
	}
	// Final drain: remaining subtrees merge over the plain adjacency.
	for _, e := range g.Edges() {
		uf.union(int(e.From), int(e.To))
	}
	if err := mergeComponents(tr, m, uf, rootOf, members); err != nil {
		return nil, err
	}
	if err := tr.Finalize(); err != nil {
		return nil, err
	}
	return tr, nil
}

// mergeComponents merges, for every union-find component holding more than
// one subtree root, those roots into a single balanced subtree.
func mergeComponents(tr *treedir.Tree, m *graph.Metric, uf *unionFind, rootOf []int, members map[int][]graph.NodeID) error {
	byComp := map[int][]int{} // component representative -> distinct roots
	inComp := map[int]bool{}
	for u := range rootOf {
		r := rootOf[u]
		if inComp[r] {
			continue
		}
		inComp[r] = true
		c := uf.find(u)
		byComp[c] = append(byComp[c], r)
	}
	comps := make([]int, 0, len(byComp))
	for c := range byComp {
		comps = append(comps, c)
	}
	sort.Ints(comps)
	for _, c := range comps {
		roots := byComp[c]
		if len(roots) < 2 {
			continue
		}
		sort.Ints(roots)
		merged, err := balancedMerge(tr, m, roots, members)
		if err != nil {
			return err
		}
		for u := range rootOf {
			for _, r := range roots {
				if rootOf[u] == r {
					rootOf[u] = merged
					break
				}
			}
		}
	}
	return nil
}

// balancedMerge pairs subtree roots level by level (DAB's balanced
// subtrees) until one remains, hosting each new internal node at the member
// sensor closest to the merged set's distance centroid.
func balancedMerge(tr *treedir.Tree, m *graph.Metric, roots []int, members map[int][]graph.NodeID) (int, error) {
	cur := append([]int(nil), roots...)
	for len(cur) > 1 {
		var next []int
		for i := 0; i < len(cur); i += 2 {
			if i+1 == len(cur) {
				next = append(next, cur[i]) // odd one out rises a level
				continue
			}
			a, b := cur[i], cur[i+1]
			mem := append(append([]graph.NodeID(nil), members[a]...), members[b]...)
			host := medoid(m, mem)
			id, err := tr.AddInternal(host)
			if err != nil {
				return -1, err
			}
			if err := tr.SetParent(a, id); err != nil {
				return -1, err
			}
			if err := tr.SetParent(b, id); err != nil {
				return -1, err
			}
			members[id] = mem
			delete(members, a)
			delete(members, b)
			next = append(next, id)
		}
		cur = next
	}
	return cur[0], nil
}

// medoid returns the member minimizing the sum of distances to the others.
func medoid(m *graph.Metric, mem []graph.NodeID) graph.NodeID {
	best, bestSum := mem[0], -1.0
	for _, u := range mem {
		sum := 0.0
		row := m.Row(u)
		for _, v := range mem {
			sum += row[v]
		}
		if bestSum < 0 || sum < bestSum || (sum == bestSum && u < best) {
			best, bestSum = u, sum
		}
	}
	return best
}

// New builds a STUN directory: the DAB tree plus the sink-initiated query
// discipline.
func New(g *graph.Graph, m *graph.Metric, rates map[mobility.EdgeKey]float64) (*treedir.Directory, error) {
	tr, err := BuildTree(g, m, rates)
	if err != nil {
		return nil, err
	}
	return treedir.New(tr, m, treedir.Config{SinkQueries: true})
}

// unionFind is a standard path-compressing disjoint-set forest.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}
