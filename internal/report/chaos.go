package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

// MarkdownChaos renders the chaos tier outcome as a Markdown table, one
// row per seeded schedule, covering both substrates. The recovery columns
// are the §7 repair traffic metered separately from fault-free costs; the
// runtime delay column is the simulated backoff/delivery-delay time
// (accounted, never slept).
func MarkdownChaos(w io.Writer, res *experiments.ChaosResult) error {
	var b strings.Builder
	fmt.Fprintf(&b, "| schedule | seed | sim faults | lost ops | queries done | recovery cost | recovery ops | run faults | failed ops | run cost | run delay |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, s := range res.Schedules {
		fmt.Fprintf(&b, "| %d | %d | %d | %d | %d | %.1f | %d | %d | %d | %.1f | %.1f |\n",
			s.Index, s.Seed,
			s.SimFaults(), s.SimLost, s.SimCompleted,
			s.SimMeter.RecoveryCost, s.SimMeter.RecoveryOps,
			s.RunFaults(), s.RunFailed, s.RunCost, s.RunDelay)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSVChaos writes the chaos tier outcome as CSV, one row per schedule.
func CSVChaos(w io.Writer, res *experiments.ChaosResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"schedule", "seed",
		"sim_faults", "sim_lost", "sim_completed", "recovery_cost", "recovery_ops",
		"run_faults", "run_failed", "run_cost", "run_delay",
	}); err != nil {
		return err
	}
	for _, s := range res.Schedules {
		if err := cw.Write([]string{
			strconv.Itoa(s.Index),
			strconv.FormatInt(s.Seed, 10),
			strconv.Itoa(s.SimFaults()),
			strconv.Itoa(s.SimLost),
			strconv.Itoa(s.SimCompleted),
			fmt.Sprintf("%.2f", s.SimMeter.RecoveryCost),
			strconv.Itoa(s.SimMeter.RecoveryOps),
			strconv.Itoa(s.RunFaults()),
			strconv.Itoa(s.RunFailed),
			fmt.Sprintf("%.2f", s.RunCost),
			fmt.Sprintf("%.2f", s.RunDelay),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
