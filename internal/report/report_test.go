package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func sampleCost() *experiments.CostRatioResult {
	return &experiments.CostRatioResult{
		Sizes:           []int{16, 64},
		Algorithms:      []string{"MOT", "STUN"},
		Maintenance:     [][]float64{{2, 3}, {5, 8}},
		Query:           [][]float64{{1.5, 1.6}, {2.5, 2.6}},
		MaintenanceMean: [][]float64{{2.1, 3.1}, {5.1, 8.1}},
		QueryMean:       [][]float64{{1.7, 1.8}, {2.7, 2.8}},
	}
}

func sampleLoad() *experiments.LoadResult {
	return &experiments.LoadResult{
		Config:   experiments.LoadConfig{Baseline: "STUN", HistogramMax: 3},
		MOT:      stats.SummarizeLoad([]int{0, 1, 2, 2}, 3),
		Baseline: stats.SummarizeLoad([]int{0, 0, 12, 1}, 3),
	}
}

func TestMarkdownCostRatio(t *testing.T) {
	var buf bytes.Buffer
	if err := MarkdownCostRatio(&buf, sampleCost(), false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"| nodes |", "| MOT |", "| 16 |", "2.10", "8.10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := MarkdownCostRatio(&buf, sampleCost(), true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1.70") {
		t.Fatalf("query table missing query ratios:\n%s", buf.String())
	}
}

func TestMarkdownLoad(t *testing.T) {
	var buf bytes.Buffer
	if err := MarkdownLoad(&buf, sampleLoad()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "MOT (load-balanced)") || !strings.Contains(out, "STUN") {
		t.Fatalf("load table:\n%s", out)
	}
	if !strings.Contains(out, "| 12 | 1 |") {
		t.Fatalf("baseline stats missing:\n%s", out)
	}
}

func TestCSVCostRatioParses(t *testing.T) {
	var buf bytes.Buffer
	if err := CSVCostRatio(&buf, sampleCost()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 sizes x 2 algorithms.
	if len(recs) != 5 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][0] != "nodes" || len(recs[1]) != 10 {
		t.Fatalf("header/record shape: %v", recs[0])
	}
	if recs[0][6] != "special_cost" || recs[0][9] != "recovery_ops" {
		t.Fatalf("auxiliary columns missing: %v", recs[0])
	}
	if recs[1][1] != "MOT" || recs[2][1] != "STUN" {
		t.Fatalf("algorithm order: %v %v", recs[1], recs[2])
	}
	// sampleCost predates the auxiliary tables; they must read as zero.
	if recs[1][8] != "0.00" {
		t.Fatalf("missing aux table should render 0.00: %v", recs[1])
	}
}

func TestCSVLoadParses(t *testing.T) {
	var buf bytes.Buffer
	if err := CSVLoad(&buf, sampleLoad()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+4 { // header + buckets 0..3
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][2] != "stun_nodes" {
		t.Fatalf("header: %v", recs[0])
	}
}
