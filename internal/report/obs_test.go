package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func sampleObs() *experiments.ObsResult {
	lbRec := obs.New("core-lb")
	lbRec.SetSeries(obs.SeriesNodeEntries, []float64{1, 2, 0, 1})
	lbRec.SetSeries(obs.SeriesNodeMsgs, []float64{3, 0, 5, 0})
	noRec := obs.New("core-nolb")
	noRec.SetSeries(obs.SeriesNodeEntries, []float64{0, 12, 0, 0})
	simRec := obs.New("sim") // message series only
	simRec.SetSeries(obs.SeriesNodeMsgs, []float64{1, 1, 1, 1})
	return &experiments.ObsResult{Recorders: []*obs.Recorder{lbRec, noRec, simRec}}
}

func TestMarkdownObsLoad(t *testing.T) {
	var buf bytes.Buffer
	if err := MarkdownObsLoad(&buf, sampleObs(), 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"| run |", "| core-lb |", "| core-nolb |", "| sim |", "| load |", "| >=3 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
	// core-nolb has one node with load 12 > 10 and a max of 12.
	if !strings.Contains(out, "| core-nolb | 4 | 12 |") {
		t.Fatalf("nolb headline row wrong:\n%s", out)
	}
	// The histogram block must not include sim (no entries series).
	hist := out[strings.Index(out, "| load |"):]
	if strings.Contains(hist, "sim") {
		t.Fatalf("histogram should omit runs without entries:\n%s", hist)
	}
}

func TestCSVObsLoadParses(t *testing.T) {
	var buf bytes.Buffer
	if err := CSVObsLoad(&buf, sampleObs()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+3*4 { // header + 3 runs x 4 nodes
		t.Fatalf("%d records", len(recs))
	}
	if got := recs[1]; got[0] != "core-lb" || got[1] != "0" || got[2] != "1" || got[3] != "3" {
		t.Fatalf("first row: %v", got)
	}
	// sim has no entries series: zeros for entries, values for msgs.
	last := recs[len(recs)-1]
	if last[0] != "sim" || last[2] != "0" || last[3] != "1" {
		t.Fatalf("sim row: %v", last)
	}
}

func sampleChaos() *experiments.ChaosResult {
	return &experiments.ChaosResult{
		Config: experiments.ChaosConfig{Schedules: 2, Size: 49},
		Schedules: []experiments.ChaosSchedule{
			{
				Index: 0, Seed: 11,
				SimTrace: "a\nb\n", SimCompleted: 9, SimLost: 1,
				SimMeter: core.CostMeter{RecoveryCost: 12.5, RecoveryOps: 3},
				RunTrace: "x\n", RunCost: 100.25, RunDelay: 7.5, RunFailed: 2,
			},
			{Index: 1, Seed: 13},
		},
	}
}

func TestMarkdownChaos(t *testing.T) {
	var buf bytes.Buffer
	if err := MarkdownChaos(&buf, sampleChaos()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| recovery cost |") || !strings.Contains(out, "| run delay |") {
		t.Fatalf("header missing columns:\n%s", out)
	}
	if !strings.Contains(out, "| 0 | 11 | 2 | 1 | 9 | 12.5 | 3 | 1 | 2 | 100.2 | 7.5 |") {
		t.Fatalf("schedule row wrong:\n%s", out)
	}
}

func TestCSVChaosParses(t *testing.T) {
	var buf bytes.Buffer
	if err := CSVChaos(&buf, sampleChaos()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][5] != "recovery_cost" || recs[0][10] != "run_delay" {
		t.Fatalf("header: %v", recs[0])
	}
	if recs[1][2] != "2" || recs[1][5] != "12.50" || recs[1][10] != "7.50" {
		t.Fatalf("row: %v", recs[1])
	}
}
