package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/stats"
)

// obsLoadVectors extracts the per-node storage and message-load series of
// one recorder as integer vectors (rounded; the series hold counts).
func obsLoadVectors(rec *obs.Recorder) (entries, msgs []int) {
	toInt := func(vs []float64) []int {
		out := make([]int, len(vs))
		for i, v := range vs {
			out[i] = int(v + 0.5)
		}
		return out
	}
	return toInt(rec.SeriesValues(obs.SeriesNodeEntries)), toInt(rec.SeriesValues(obs.SeriesNodeMsgs))
}

// MarkdownObsLoad renders the per-node load report of an observability
// sweep: headline statistics per run, then the storage-load histogram of
// every run that recorded one (the §5 load-balancing comparison reads
// core-lb against core-nolb). When a live wall-clock recorder rode
// along (ObsConfig.LiveTelemetry), two latency columns join the
// headline table — p50/p99 wall-clock ms from the live histograms, "-"
// for runs without a live recorder. Without live telemetry the output
// is byte-identical to earlier releases.
func MarkdownObsLoad(w io.Writer, res *experiments.ObsResult, histMax int) error {
	if histMax < 1 {
		histMax = experiments.DefaultHistogramMax
	}
	withLive := res.HasLive()
	var b strings.Builder
	if withLive {
		b.WriteString("| run | nodes | max entries | mean entries | loaded nodes | nodes > 10 | max msgs | mean msgs | p50 ms | p99 ms |\n")
		b.WriteString("|---|---|---|---|---|---|---|---|---|---|\n")
	} else {
		b.WriteString("| run | nodes | max entries | mean entries | loaded nodes | nodes > 10 | max msgs | mean msgs |\n")
		b.WriteString("|---|---|---|---|---|---|---|---|\n")
	}
	type histCol struct {
		name string
		ls   stats.LoadStats
	}
	var cols []histCol
	for _, rec := range res.Recorders {
		if rec == nil {
			continue
		}
		entries, msgs := obsLoadVectors(rec)
		els := stats.SummarizeLoad(entries, histMax)
		mls := stats.SummarizeLoad(msgs, histMax)
		fmt.Fprintf(&b, "| %s | %d | %d | %.2f | %d | %d | %d | %.2f |",
			rec.Label(), maxInt2(len(entries), len(msgs)),
			els.Max, els.Mean, els.NonZero, els.AboveTen, mls.Max, mls.Mean)
		if withLive {
			if lrec := res.LiveFor(rec.Label()); lrec != nil {
				s := lrec.Snapshot()
				fmt.Fprintf(&b, " %.3f | %.3f |", float64(s.Total.P50Ns)/1e6, float64(s.Total.P99Ns)/1e6)
			} else {
				b.WriteString(" - | - |")
			}
		}
		b.WriteString("\n")
		if len(entries) > 0 {
			cols = append(cols, histCol{name: rec.Label(), ls: els})
		}
	}
	if len(cols) > 0 {
		b.WriteString("\n| load |")
		for _, c := range cols {
			fmt.Fprintf(&b, " %s |", c.name)
		}
		b.WriteString("\n|---|")
		for range cols {
			b.WriteString("---|")
		}
		b.WriteString("\n")
		for bucket := 0; bucket <= histMax; bucket++ {
			label := strconv.Itoa(bucket)
			if bucket == histMax {
				label = ">=" + label
			}
			fmt.Fprintf(&b, "| %s |", label)
			for _, c := range cols {
				fmt.Fprintf(&b, " %d |", c.ls.Histogram[bucket])
			}
			b.WriteString("\n")
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSVObsLoad writes the raw per-node vectors of every run as CSV
// (run,node,entries,msgs); runs without a series report zeros. With
// live telemetry attached the per-run wall-clock p50/p99 ms ride along
// as two extra (denormalized, per-run-constant) columns; without it the
// bytes match earlier releases exactly.
func CSVObsLoad(w io.Writer, res *experiments.ObsResult) error {
	cw := csv.NewWriter(w)
	withLive := res.HasLive()
	header := []string{"run", "node", "entries", "msgs"}
	if withLive {
		header = append(header, "p50_ms", "p99_ms")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	at := func(vs []int, i int) int {
		if i < len(vs) {
			return vs[i]
		}
		return 0
	}
	for _, rec := range res.Recorders {
		if rec == nil {
			continue
		}
		p50, p99 := "", ""
		if lrec := res.LiveFor(rec.Label()); lrec != nil {
			s := lrec.Snapshot()
			p50 = fmt.Sprintf("%.3f", float64(s.Total.P50Ns)/1e6)
			p99 = fmt.Sprintf("%.3f", float64(s.Total.P99Ns)/1e6)
		}
		entries, msgs := obsLoadVectors(rec)
		n := maxInt2(len(entries), len(msgs))
		for i := 0; i < n; i++ {
			row := []string{
				rec.Label(),
				strconv.Itoa(i),
				strconv.Itoa(at(entries, i)),
				strconv.Itoa(at(msgs, i)),
			}
			if withLive {
				row = append(row, p50, p99)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func maxInt2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
