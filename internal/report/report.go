// Package report renders experiment results as Markdown tables and CSV —
// the formats EXPERIMENTS.md and external plotting tools consume.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

// MarkdownCostRatio renders a cost-ratio sweep as a Markdown table of the
// figure's series (per-operation mean ratios; the figures' metric).
func MarkdownCostRatio(w io.Writer, res *experiments.CostRatioResult, query bool) error {
	table := res.MaintenanceMean
	if query {
		table = res.QueryMean
	}
	var b strings.Builder
	b.WriteString("| nodes |")
	for _, a := range res.Algorithms {
		fmt.Fprintf(&b, " %s |", a)
	}
	b.WriteString("\n|---|")
	for range res.Algorithms {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for si, n := range res.Sizes {
		fmt.Fprintf(&b, "| %d |", n)
		for a := range res.Algorithms {
			fmt.Fprintf(&b, " %.2f |", table[a][si])
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MarkdownLoad renders a load comparison as a Markdown table: headline
// statistics of both algorithms.
func MarkdownLoad(w io.Writer, res *experiments.LoadResult) error {
	var b strings.Builder
	fmt.Fprintf(&b, "| algorithm | max load | nodes with load > 10 | mean load | loaded nodes |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|\n")
	fmt.Fprintf(&b, "| MOT (load-balanced) | %d | %d | %.2f | %d |\n",
		res.MOT.Max, res.MOT.AboveTen, res.MOT.Mean, res.MOT.NonZero)
	fmt.Fprintf(&b, "| %s | %d | %d | %.2f | %d |\n",
		res.Config.Baseline, res.Baseline.Max, res.Baseline.AboveTen, res.Baseline.Mean, res.Baseline.NonZero)
	_, err := io.WriteString(w, b.String())
	return err
}

// CSVCostRatio writes the sweep as CSV with one row per (size, algorithm):
// all four ratio variants plus the separately-metered auxiliary traffic
// (SDL, load-balance routing, recovery), so no metered cost is dropped.
func CSVCostRatio(w io.Writer, res *experiments.CostRatioResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"nodes", "algorithm", "maint_mean_ratio", "query_mean_ratio", "maint_agg_ratio", "query_agg_ratio", "special_cost", "lb_route_cost", "recovery_cost", "recovery_ops"}); err != nil {
		return err
	}
	// Older results (decoded from JSON, say) may predate the auxiliary
	// columns; read them as zero instead of panicking.
	aux := func(table [][]float64, a, si int) float64 {
		if a < len(table) && si < len(table[a]) {
			return table[a][si]
		}
		return 0
	}
	for si, n := range res.Sizes {
		for a, alg := range res.Algorithms {
			rec := []string{
				strconv.Itoa(n),
				alg,
				fmt.Sprintf("%.4f", res.MaintenanceMean[a][si]),
				fmt.Sprintf("%.4f", res.QueryMean[a][si]),
				fmt.Sprintf("%.4f", res.Maintenance[a][si]),
				fmt.Sprintf("%.4f", res.Query[a][si]),
				fmt.Sprintf("%.2f", aux(res.Special, a, si)),
				fmt.Sprintf("%.2f", aux(res.LBRoute, a, si)),
				fmt.Sprintf("%.2f", aux(res.Recovery, a, si)),
				fmt.Sprintf("%.2f", aux(res.RecoveryOps, a, si)),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVLoad writes both load histograms as CSV (bucket, mot, baseline).
func CSVLoad(w io.Writer, res *experiments.LoadResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"load", "mot_nodes", strings.ToLower(res.Config.Baseline) + "_nodes"}); err != nil {
		return err
	}
	for b := range res.MOT.Histogram {
		if err := cw.Write([]string{
			strconv.Itoa(b),
			strconv.Itoa(res.MOT.Histogram[b]),
			strconv.Itoa(res.Baseline.Histogram[b]),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
