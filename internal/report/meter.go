package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
)

// MeterRow labels one meter snapshot for CSVMeter — typically one row
// per algorithm or per sweep cell.
type MeterRow struct {
	Label string
	Meter core.CostMeter
}

// CSVMeter writes complete CostMeter snapshots as CSV: every metered
// field, snake_cased, one row per labeled meter. This is the exporter
// of record for raw meters — the meterfields lint rule keeps this
// header in lockstep with the struct, so a field added to CostMeter
// cannot silently vanish from the artifact.
func CSVMeter(w io.Writer, rows []MeterRow) error {
	cw := csv.NewWriter(w)
	header := []string{
		"label",
		"publish_cost", "publish_ops",
		"maint_cost", "maint_optimal", "maint_ops",
		"query_cost", "query_optimal", "query_ops",
		"special_cost", "lb_route_cost",
		"recovery_cost", "recovery_ops",
		"sampled_maint_ops", "sampled_maint_cost_est", "sampled_maint_cost_exact",
		"sampled_maint_opt_est", "sampled_maint_opt_exact",
		"sampled_query_ops", "sampled_query_cost_est", "sampled_query_cost_exact",
		"sampled_query_opt_est", "sampled_query_opt_exact",
		"maint_ratio_sum", "maint_ratio_ops",
		"query_ratio_sum", "query_ratio_ops",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return fmt.Sprintf("%.4f", v) }
	for _, r := range rows {
		m := r.Meter
		rec := []string{
			r.Label,
			f(m.PublishCost), strconv.Itoa(m.PublishOps),
			f(m.MaintCost), f(m.MaintOptimal), strconv.Itoa(m.MaintOps),
			f(m.QueryCost), f(m.QueryOptimal), strconv.Itoa(m.QueryOps),
			f(m.SpecialCost), f(m.LBRouteCost),
			f(m.RecoveryCost), strconv.Itoa(m.RecoveryOps),
			strconv.Itoa(m.SampledMaintOps), f(m.SampledMaintCostEst), f(m.SampledMaintCostExact),
			f(m.SampledMaintOptEst), f(m.SampledMaintOptExact),
			strconv.Itoa(m.SampledQueryOps), f(m.SampledQueryCostEst), f(m.SampledQueryCostExact),
			f(m.SampledQueryOptEst), f(m.SampledQueryOptExact),
			f(m.MaintRatioSum), strconv.Itoa(m.MaintRatioOps),
			f(m.QueryRatioSum), strconv.Itoa(m.QueryRatioOps),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
