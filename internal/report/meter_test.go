package report

import (
	"bytes"
	"encoding/csv"
	"reflect"
	"strings"
	"testing"
	"unicode"

	"repro/internal/core"
)

// snakeOf mirrors the meterfields lint rule's column naming: PublishCost
// → publish_cost, LBRouteCost → lb_route_cost.
func snakeOf(s string) string {
	rs := []rune(s)
	var b strings.Builder
	for i, r := range rs {
		if unicode.IsUpper(r) {
			boundary := i > 0 && (unicode.IsLower(rs[i-1]) || unicode.IsDigit(rs[i-1]) ||
				(i+1 < len(rs) && unicode.IsLower(rs[i+1])))
			if boundary {
				b.WriteByte('_')
			}
			b.WriteRune(unicode.ToLower(r))
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// TestCSVMeterCoversEveryField checks — by reflection, independently of
// the static meterfields rule — that the CSVMeter header has exactly one
// column per CostMeter field and that each row is column-aligned.
func TestCSVMeterCoversEveryField(t *testing.T) {
	var buf bytes.Buffer
	m := core.CostMeter{PublishCost: 1.5, PublishOps: 2, QueryCost: 3.25, QueryOps: 4, MaintRatioOps: 7}
	if err := CSVMeter(&buf, []MeterRow{{Label: "mot", Meter: m}}); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want header + 1 row", len(recs))
	}
	header, row := recs[0], recs[1]
	if len(header) != len(row) {
		t.Fatalf("header has %d columns, row has %d", len(header), len(row))
	}
	cols := map[string]int{}
	for i, h := range header {
		cols[h] = i
	}
	rt := reflect.TypeOf(core.CostMeter{})
	if want := rt.NumField() + 1; len(header) != want {
		t.Fatalf("header has %d columns, want %d (label + every CostMeter field)", len(header), want)
	}
	for i := 0; i < rt.NumField(); i++ {
		col := snakeOf(rt.Field(i).Name)
		if _, ok := cols[col]; !ok {
			t.Fatalf("CostMeter.%s has no CSV column %q", rt.Field(i).Name, col)
		}
	}
	if row[cols["label"]] != "mot" {
		t.Fatalf("label column = %q", row[cols["label"]])
	}
	if row[cols["publish_cost"]] != "1.5000" {
		t.Fatalf("publish_cost = %q, want 1.5000", row[cols["publish_cost"]])
	}
	if row[cols["publish_ops"]] != "2" {
		t.Fatalf("publish_ops = %q, want 2", row[cols["publish_ops"]])
	}
	if row[cols["maint_ratio_ops"]] != "7" {
		t.Fatalf("maint_ratio_ops = %q, want 7", row[cols["maint_ratio_ops"]])
	}
}
