package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

// MarkdownChurn renders the churn tier outcome as a Markdown table, one
// row per seeded schedule. The recovery ratio column is the tentpole's
// headline number: incremental repair's metered recovery traffic over the
// rebuild-from-scratch baseline's on the identical schedule.
func MarkdownChurn(w io.Writer, res *experiments.ChurnResult) error {
	var b strings.Builder
	fmt.Fprintf(&b, "| schedule | seed | fail events | availability | cost ratio | repair cost | repair ops | rebuild cost | rebuild ops | recovery ratio | relabels | runtime lost |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for i := range res.Schedules {
		s := &res.Schedules[i]
		fmt.Fprintf(&b, "| %d | %d | %d | %.3f | %.3f | %.1f | %d | %.1f | %d | %.3f | %d | %d |\n",
			s.Index, s.Seed, s.FailEvents,
			s.Availability(), s.CostRatio(),
			s.RepairRecoveryCost, s.RepairRecoveryOps,
			s.RebuildRecoveryCost, s.RebuildRecoveryOps,
			s.RecoveryRatio(), s.Relabels, s.RunFailed)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSVChurn writes the churn tier outcome as CSV, one row per schedule.
func CSVChurn(w io.Writer, res *experiments.ChurnResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"schedule", "seed", "fail_events", "recover_events",
		"ops_issued", "ops_masked", "availability", "cost_ratio",
		"repair_cost", "repair_ops", "rebuild_cost", "rebuild_ops",
		"recovery_ratio", "relabels", "run_failed",
	}); err != nil {
		return err
	}
	for i := range res.Schedules {
		s := &res.Schedules[i]
		if err := cw.Write([]string{
			strconv.Itoa(s.Index),
			strconv.FormatInt(s.Seed, 10),
			strconv.Itoa(s.FailEvents),
			strconv.Itoa(s.RecoverEvents),
			strconv.Itoa(s.OpsIssued),
			strconv.Itoa(s.OpsMasked),
			fmt.Sprintf("%.4f", s.Availability()),
			fmt.Sprintf("%.4f", s.CostRatio()),
			fmt.Sprintf("%.2f", s.RepairRecoveryCost),
			strconv.Itoa(s.RepairRecoveryOps),
			fmt.Sprintf("%.2f", s.RebuildRecoveryCost),
			strconv.Itoa(s.RebuildRecoveryOps),
			fmt.Sprintf("%.4f", s.RecoveryRatio()),
			strconv.Itoa(s.Relabels),
			strconv.Itoa(s.RunFailed),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
