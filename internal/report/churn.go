package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

// churnHasLive reports whether any schedule carries a live wall-clock
// snapshot (ChurnConfig.LiveTelemetry on a runtime-enabled run).
func churnHasLive(res *experiments.ChurnResult) bool {
	for i := range res.Schedules {
		if res.Schedules[i].Live != nil {
			return true
		}
	}
	return false
}

// MarkdownChurn renders the churn tier outcome as a Markdown table, one
// row per seeded schedule. The recovery ratio column is the tentpole's
// headline number: incremental repair's metered recovery traffic over the
// rebuild-from-scratch baseline's on the identical schedule. When live
// telemetry rode along on the runtime replay, p50/p99 wall-clock ms
// columns join the table; without it the bytes match earlier releases
// exactly (the golden tier pins this).
func MarkdownChurn(w io.Writer, res *experiments.ChurnResult) error {
	withLive := churnHasLive(res)
	var b strings.Builder
	if withLive {
		fmt.Fprintf(&b, "| schedule | seed | fail events | availability | cost ratio | repair cost | repair ops | rebuild cost | rebuild ops | recovery ratio | relabels | runtime lost | p50 ms | p99 ms |\n")
		fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	} else {
		fmt.Fprintf(&b, "| schedule | seed | fail events | availability | cost ratio | repair cost | repair ops | rebuild cost | rebuild ops | recovery ratio | relabels | runtime lost |\n")
		fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	}
	for i := range res.Schedules {
		s := &res.Schedules[i]
		fmt.Fprintf(&b, "| %d | %d | %d | %.3f | %.3f | %.1f | %d | %.1f | %d | %.3f | %d | %d |",
			s.Index, s.Seed, s.FailEvents,
			s.Availability(), s.CostRatio(),
			s.RepairRecoveryCost, s.RepairRecoveryOps,
			s.RebuildRecoveryCost, s.RebuildRecoveryOps,
			s.RecoveryRatio(), s.Relabels, s.RunFailed)
		if withLive {
			if s.Live != nil {
				fmt.Fprintf(&b, " %.3f | %.3f |", float64(s.Live.Total.P50Ns)/1e6, float64(s.Live.Total.P99Ns)/1e6)
			} else {
				b.WriteString(" - | - |")
			}
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSVChurn writes the churn tier outcome as CSV, one row per schedule.
// Live-telemetry p50/p99 ms columns append only when a schedule carries
// a live snapshot, keeping live-off bytes identical to earlier
// releases.
func CSVChurn(w io.Writer, res *experiments.ChurnResult) error {
	cw := csv.NewWriter(w)
	withLive := churnHasLive(res)
	header := []string{
		"schedule", "seed", "fail_events", "recover_events",
		"ops_issued", "ops_masked", "availability", "cost_ratio",
		"repair_cost", "repair_ops", "rebuild_cost", "rebuild_ops",
		"recovery_ratio", "relabels", "run_failed",
	}
	if withLive {
		header = append(header, "p50_ms", "p99_ms")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range res.Schedules {
		s := &res.Schedules[i]
		row := []string{
			strconv.Itoa(s.Index),
			strconv.FormatInt(s.Seed, 10),
			strconv.Itoa(s.FailEvents),
			strconv.Itoa(s.RecoverEvents),
			strconv.Itoa(s.OpsIssued),
			strconv.Itoa(s.OpsMasked),
			fmt.Sprintf("%.4f", s.Availability()),
			fmt.Sprintf("%.4f", s.CostRatio()),
			fmt.Sprintf("%.2f", s.RepairRecoveryCost),
			strconv.Itoa(s.RepairRecoveryOps),
			fmt.Sprintf("%.2f", s.RebuildRecoveryCost),
			strconv.Itoa(s.RebuildRecoveryOps),
			fmt.Sprintf("%.4f", s.RecoveryRatio()),
			strconv.Itoa(s.Relabels),
			strconv.Itoa(s.RunFailed),
		}
		if withLive {
			p50, p99 := "", ""
			if s.Live != nil {
				p50 = fmt.Sprintf("%.3f", float64(s.Live.Total.P50Ns)/1e6)
				p99 = fmt.Sprintf("%.3f", float64(s.Live.Total.P99Ns)/1e6)
			}
			row = append(row, p50, p99)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
