package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func sampleChurn() *experiments.ChurnResult {
	return &experiments.ChurnResult{
		Config: experiments.ChurnConfig{Schedules: 2, Size: 64},
		Schedules: []experiments.ChurnSchedule{
			{
				Index: 0, Seed: 19,
				FailEvents: 3, RecoverEvents: 3,
				OpsIssued: 18, OpsMasked: 6,
				Relabels:           12,
				RepairRecoveryCost: 40.5, RepairRecoveryOps: 9,
				RebuildRecoveryCost: 162.0, RebuildRecoveryOps: 30,
				ChurnOpCost: 75.0, SteadyOpCost: 60.0,
				RunFailed: 2,
			},
			{Index: 1, Seed: 23},
		},
	}
}

func TestMarkdownChurn(t *testing.T) {
	var buf bytes.Buffer
	if err := MarkdownChurn(&buf, sampleChurn()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| recovery ratio |") || !strings.Contains(out, "| availability |") {
		t.Fatalf("header missing columns:\n%s", out)
	}
	// availability 18/24, cost ratio 75/60, recovery ratio 40.5/162.
	if !strings.Contains(out, "| 0 | 19 | 3 | 0.750 | 1.250 | 40.5 | 9 | 162.0 | 30 | 0.250 | 12 | 2 |") {
		t.Fatalf("schedule row wrong:\n%s", out)
	}
	// Degenerate schedule: both ratios default to 1.
	if !strings.Contains(out, "| 1 | 23 | 0 | 1.000 | 1.000 |") {
		t.Fatalf("empty schedule row wrong:\n%s", out)
	}
}

func TestCSVChurnParses(t *testing.T) {
	var buf bytes.Buffer
	if err := CSVChurn(&buf, sampleChurn()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][6] != "availability" || recs[0][12] != "recovery_ratio" {
		t.Fatalf("header: %v", recs[0])
	}
	if recs[1][6] != "0.7500" || recs[1][8] != "40.50" || recs[1][12] != "0.2500" {
		t.Fatalf("row: %v", recs[1])
	}
}
