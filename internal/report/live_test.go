package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/live"
)

// sampleObsLive is sampleObs plus a runtime run carrying a live
// wall-clock recorder with a known latency distribution: every op is
// exactly 2ms, so p50 and p99 both report 2.000 (the histogram caps
// bucket upper edges at the exact max).
func sampleObsLive() *experiments.ObsResult {
	res := sampleObs()
	rtRec := obs.New("runtime")
	rtRec.SetSeries(obs.SeriesNodeEntries, []float64{2, 0, 0, 1})
	res.Recorders = append(res.Recorders, rtRec)
	lrec := live.New("runtime", live.Config{})
	for i := 0; i < 100; i++ {
		lrec.ObserveDuration(live.ClassMove, 2*time.Millisecond, i, nil)
	}
	res.Live = make([]*live.Recorder, len(res.Recorders))
	res.Live[len(res.Live)-1] = lrec
	return res
}

func TestMarkdownObsLoadLiveColumns(t *testing.T) {
	var buf bytes.Buffer
	if err := MarkdownObsLoad(&buf, sampleObsLive(), 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| p50 ms | p99 ms |") {
		t.Fatalf("live columns missing from header:\n%s", out)
	}
	if !strings.Contains(out, "| runtime | 4 | 2 |") || !strings.Contains(out, " 2.000 | 2.000 |") {
		t.Fatalf("runtime latency row wrong:\n%s", out)
	}
	// Runs without a live recorder show "-" placeholders.
	if !strings.Contains(out, "| core-lb | 4 | 2 | 1.00 | 3 | 0 | 5 | 2.00 | - | - |") {
		t.Fatalf("live-less run row wrong:\n%s", out)
	}
}

// Live off must keep the exact pre-live layout — no latency columns.
func TestMarkdownObsLoadLiveOffUnchanged(t *testing.T) {
	var buf bytes.Buffer
	if err := MarkdownObsLoad(&buf, sampleObs(), 3); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "p50") {
		t.Fatalf("latency columns leaked into a live-off report:\n%s", buf.String())
	}
}

func TestCSVObsLoadLiveColumns(t *testing.T) {
	var buf bytes.Buffer
	if err := CSVObsLoad(&buf, sampleObsLive()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(recs[0], ","); got != "run,node,entries,msgs,p50_ms,p99_ms" {
		t.Fatalf("header = %s", got)
	}
	var runtimeRow, lbRow []string
	for _, r := range recs[1:] {
		if r[0] == "runtime" && runtimeRow == nil {
			runtimeRow = r
		}
		if r[0] == "core-lb" && lbRow == nil {
			lbRow = r
		}
	}
	if runtimeRow[4] != "2.000" || runtimeRow[5] != "2.000" {
		t.Fatalf("runtime row latencies: %v", runtimeRow)
	}
	if lbRow[4] != "" || lbRow[5] != "" {
		t.Fatalf("live-less run should have empty latency cells: %v", lbRow)
	}
}

func TestMarkdownChurnLiveColumns(t *testing.T) {
	res := sampleChurn()
	res.Schedules[0].Live = &live.Snapshot{
		Total: live.OpSnapshot{Count: 24, P50Ns: 1_500_000, P99Ns: 7_250_000},
	}
	var buf bytes.Buffer
	if err := MarkdownChurn(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| p50 ms | p99 ms |") {
		t.Fatalf("live columns missing:\n%s", out)
	}
	if !strings.Contains(out, "| 0.250 | 12 | 2 | 1.500 | 7.250 |") {
		t.Fatalf("live schedule row wrong:\n%s", out)
	}
	if !strings.Contains(out, "| 1 | 23 | 0 | 1.000 | 1.000 | 0.0 | 0 | 0.0 | 0 | 1.000 | 0 | 0 | - | - |") {
		t.Fatalf("live-less schedule row wrong:\n%s", out)
	}
}

func TestCSVChurnLiveColumns(t *testing.T) {
	res := sampleChurn()
	res.Schedules[1].Live = &live.Snapshot{
		Total: live.OpSnapshot{Count: 10, P50Ns: 900_000, P99Ns: 3_000_000},
	}
	var buf bytes.Buffer
	if err := CSVChurn(&buf, res); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header := strings.Join(recs[0], ",")
	if !strings.HasSuffix(header, "run_failed,p50_ms,p99_ms") {
		t.Fatalf("header = %s", header)
	}
	n := len(recs[0])
	if recs[1][n-2] != "" || recs[1][n-1] != "" {
		t.Fatalf("live-less schedule should have empty latency cells: %v", recs[1])
	}
	if recs[2][n-2] != "0.900" || recs[2][n-1] != "3.000" {
		t.Fatalf("live schedule latencies: %v", recs[2])
	}
}
