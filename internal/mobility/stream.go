package mobility

import "math/rand"

// Seed streams.
//
// The experiment harnesses sweep a grid of (network size, seed index)
// cells, and the parallel sweep runner executes cells in arbitrary order
// across workers. To make the results independent of scheduling, every
// cell derives its PRNG seed from an explicit (baseSeed, size, seedIndex)
// stream split instead of sharing a rand.Rand: the same triple always
// yields the same stream, and distinct triples yield statistically
// independent streams. SplitMix64 is the mixer (Steele et al., "Fast
// Splittable Pseudorandom Number Generators"); it is a bijection on
// 64-bit words, so structured inputs like small consecutive integers
// cannot collide after mixing.

// splitmix64 advances a SplitMix64 state and returns the mixed output.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// StreamSeed derives the PRNG seed of sweep cell (size, seedIndex) from
// baseSeed. The derivation is pure: equal triples give equal seeds, so a
// cell's workload is reproducible no matter which worker runs it or in
// what order.
func StreamSeed(baseSeed int64, size, seedIndex int) int64 {
	h := splitmix64(uint64(baseSeed))
	h = splitmix64(h ^ uint64(int64(size)))
	h = splitmix64(h ^ uint64(int64(seedIndex)))
	return int64(h)
}

// NewStream returns a rand.Rand positioned at the start of the
// (baseSeed, size, seedIndex) stream.
func NewStream(baseSeed int64, size, seedIndex int) *rand.Rand {
	return rand.New(rand.NewSource(StreamSeed(baseSeed, size, seedIndex)))
}
