// Package mobility generates the object-movement and query workloads of the
// paper's evaluation (§8): m mobile objects placed at random sensors, each
// performing a fixed number of maintenance operations (moves between
// adjacent sensors) interleaved across objects in random order, plus query
// workloads from random requesters.
//
// Because the baselines (STUN, Z-DAT) are traffic-conscious, the package
// also extracts per-edge detection rates — how often objects cross each
// sensor adjacency — from a generated workload, which the baseline tree
// constructions consume. MOT never sees them (it is traffic-oblivious).
package mobility

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

// Model selects how objects move.
type Model int

const (
	// RandomWalk moves an object to a uniformly random adjacent sensor at
	// each maintenance operation.
	RandomWalk Model = iota
	// RandomWaypoint repeatedly picks a random destination sensor and
	// walks the shortest path to it one adjacency at a time (each hop is
	// one maintenance operation) — smoother, trajectory-like traffic.
	RandomWaypoint
)

// Move is one maintenance operation: the object's proxy becomes To (always
// adjacent to the object's previous proxy).
type Move struct {
	Object core.ObjectID
	To     graph.NodeID
}

// Query is one query operation issued at sensor From for Object.
type Query struct {
	From   graph.NodeID
	Object core.ObjectID
}

// Workload is a reproducible evaluation workload.
type Workload struct {
	Objects int
	Initial []graph.NodeID // initial proxy per object
	Moves   []Move         // random interleaving; per-object order preserved
	Queries []Query
}

// Config parameterizes workload generation.
type Config struct {
	Objects        int
	MovesPerObject int
	Queries        int
	Model          Model
	Seed           int64
	// QueryRadius localizes queries: each requester is sampled uniformly
	// from the sensors within this distance of the queried object's final
	// position (0 = uniform over all sensors, the paper's setting).
	// Local queries are the regime where distance-sensitive tracking
	// shines: a sink-based structure pays Θ(D) for a query whose optimum
	// is a couple of hops.
	QueryRadius float64
}

// Generate builds a workload over graph g. Movement destinations follow the
// configured model; the per-object move sequences are interleaved in random
// order exactly as in the paper's experiments.
func Generate(g *graph.Graph, m graph.DistanceOracle, cfg Config) (*Workload, error) {
	if cfg.Objects <= 0 {
		return nil, fmt.Errorf("mobility: need at least one object")
	}
	if g.N() == 0 {
		return nil, fmt.Errorf("mobility: empty graph")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{Objects: cfg.Objects}

	w.Initial = make([]graph.NodeID, cfg.Objects)
	for o := range w.Initial {
		w.Initial[o] = graph.NodeID(rng.Intn(g.N()))
	}

	// Per-object move sequences.
	seqs := make([][]graph.NodeID, cfg.Objects)
	for o := 0; o < cfg.Objects; o++ {
		cur := w.Initial[o]
		seq := make([]graph.NodeID, 0, cfg.MovesPerObject)
		var route []graph.NodeID // pending waypoint route
		for len(seq) < cfg.MovesPerObject {
			switch cfg.Model {
			case RandomWalk:
				nbrs := g.NeighborIDs(cur)
				if len(nbrs) == 0 {
					return nil, fmt.Errorf("mobility: node %d has no neighbors", cur)
				}
				cur = nbrs[rng.Intn(len(nbrs))]
				seq = append(seq, cur)
			case RandomWaypoint:
				if len(route) == 0 {
					target := graph.NodeID(rng.Intn(g.N()))
					if target == cur {
						continue
					}
					sp := g.Dijkstra(cur)
					route = sp.PathTo(target)
					if len(route) > 0 {
						route = route[1:] // drop the current node
					}
					continue
				}
				cur = route[0]
				route = route[1:]
				seq = append(seq, cur)
			default:
				return nil, fmt.Errorf("mobility: unknown model %d", cfg.Model)
			}
		}
		seqs[o] = seq
	}

	// Interleave: random order across objects, order preserved within.
	idx := make([]int, cfg.Objects)
	remaining := cfg.Objects * cfg.MovesPerObject
	w.Moves = make([]Move, 0, remaining)
	for remaining > 0 {
		o := rng.Intn(cfg.Objects)
		if idx[o] >= len(seqs[o]) {
			continue
		}
		w.Moves = append(w.Moves, Move{Object: core.ObjectID(o), To: seqs[o][idx[o]]})
		idx[o]++
		remaining--
	}

	// Queries: random object; requester uniform or localized around the
	// object's final position.
	finals := w.FinalLocations()
	w.Queries = make([]Query, cfg.Queries)
	for i := range w.Queries {
		o := rng.Intn(cfg.Objects)
		from := graph.NodeID(rng.Intn(g.N()))
		if cfg.QueryRadius > 0 {
			ball := m.Ball(finals[o], cfg.QueryRadius)
			from = ball[rng.Intn(len(ball))]
		}
		w.Queries[i] = Query{From: from, Object: core.ObjectID(o)}
	}
	return w, nil
}

// FinalLocations replays the workload and returns each object's proxy after
// all moves.
func (w *Workload) FinalLocations() []graph.NodeID {
	locs := append([]graph.NodeID(nil), w.Initial...)
	for _, mv := range w.Moves {
		locs[mv.Object] = mv.To
	}
	return locs
}

// EdgeKey canonically identifies an undirected adjacency.
type EdgeKey struct {
	U, V graph.NodeID
}

// MakeEdgeKey returns the canonical (U < V) key.
func MakeEdgeKey(a, b graph.NodeID) EdgeKey {
	if a > b {
		a, b = b, a
	}
	return EdgeKey{U: a, V: b}
}

// DetectionRates replays the workload and counts how often objects cross
// each adjacency — the traffic knowledge the baselines' tree constructions
// consume (the paper's detection rate, §1.3). Moves between non-adjacent
// sensors (which the generators never produce) are attributed to the first
// edge of the shortest path.
func (w *Workload) DetectionRates(g *graph.Graph) map[EdgeKey]float64 {
	rates := make(map[EdgeKey]float64)
	locs := append([]graph.NodeID(nil), w.Initial...)
	for _, mv := range w.Moves {
		from := locs[mv.Object]
		if from != mv.To {
			if g.HasEdge(from, mv.To) {
				rates[MakeEdgeKey(from, mv.To)]++
			} else {
				sp := g.Dijkstra(from)
				path := sp.PathTo(mv.To)
				for i := 1; i < len(path); i++ {
					rates[MakeEdgeKey(path[i-1], path[i])]++
				}
			}
		}
		locs[mv.Object] = mv.To
	}
	return rates
}

// MovesFor returns the subsequence of moves for one object.
func (w *Workload) MovesFor(o core.ObjectID) []Move {
	var out []Move
	for _, mv := range w.Moves {
		if mv.Object == o {
			out = append(out, mv)
		}
	}
	return out
}
