package mobility

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// streamWalk generates a small random-walk workload from the
// (baseSeed, size, seedIndex) stream and returns its move trace.
func streamWalk(t *testing.T, g *graph.Graph, m *graph.Metric, base int64, size, seedIdx int) []Move {
	t.Helper()
	w, err := Generate(g, m, Config{
		Objects:        4,
		MovesPerObject: 32,
		Queries:        8,
		Seed:           StreamSeed(base, size, seedIdx),
	})
	if err != nil {
		t.Fatal(err)
	}
	return w.Moves
}

// Property: equal (baseSeed, size, seedIndex) triples reproduce the exact
// same walk; perturbing size or seedIndex yields a different walk. This is
// the determinism contract the parallel sweep harness relies on.
func TestStreamSplitProperty(t *testing.T) {
	g := graph.Grid(6, 6)
	m := graph.NewMetric(g)
	m.Precompute(0)

	prop := func(base int64, size, seedIdx uint8) bool {
		s, i := int(size), int(seedIdx)
		a := streamWalk(t, g, m, base, s, i)
		b := streamWalk(t, g, m, base, s, i)
		if !reflect.DeepEqual(a, b) {
			return false // same triple must reproduce the same trace
		}
		c := streamWalk(t, g, m, base, s+1, i)
		d := streamWalk(t, g, m, base, s, i+1)
		// Distinct triples must give independent traces. With 4 objects x
		// 32 moves of >=2-way branching, a coincidental match has
		// probability ~2^-128 — any equality is a stream-split bug.
		return !reflect.DeepEqual(a, c) && !reflect.DeepEqual(a, d)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// StreamSeed itself must be pure and sensitive to every component.
func TestStreamSeedPure(t *testing.T) {
	prop := func(base int64, size, seedIdx uint16) bool {
		s, i := int(size), int(seedIdx)
		if StreamSeed(base, s, i) != StreamSeed(base, s, i) {
			return false
		}
		return StreamSeed(base, s, i) != StreamSeed(base, s+1, i) &&
			StreamSeed(base, s, i) != StreamSeed(base, s, i+1) &&
			StreamSeed(base, s, i) != StreamSeed(base+1, s, i)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// NewStream must start at the head of the derived stream.
func TestNewStreamMatchesSeed(t *testing.T) {
	a := NewStream(7, 64, 3)
	b := NewStream(7, 64, 3)
	for i := 0; i < 16; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
}
