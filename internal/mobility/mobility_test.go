package mobility

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestGenerateValidation(t *testing.T) {
	g := graph.Grid(3, 3)
	m := graph.NewMetric(g)
	if _, err := Generate(g, m, Config{Objects: 0}); err == nil {
		t.Fatal("zero objects accepted")
	}
	if _, err := Generate(graph.New(0), graph.NewMetric(graph.New(0)), Config{Objects: 1}); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := Generate(g, m, Config{Objects: 1, MovesPerObject: 1, Model: Model(99)}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestRandomWalkMovesAreAdjacent(t *testing.T) {
	g := graph.Grid(6, 6)
	m := graph.NewMetric(g)
	w, err := Generate(g, m, Config{Objects: 5, MovesPerObject: 50, Queries: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Moves) != 250 {
		t.Fatalf("%d moves", len(w.Moves))
	}
	locs := append([]graph.NodeID(nil), w.Initial...)
	for i, mv := range w.Moves {
		if !g.HasEdge(locs[mv.Object], mv.To) {
			t.Fatalf("move %d not adjacent: %d -> %d", i, locs[mv.Object], mv.To)
		}
		locs[mv.Object] = mv.To
	}
}

func TestRandomWaypointMovesAreAdjacent(t *testing.T) {
	g := graph.Grid(6, 6)
	m := graph.NewMetric(g)
	w, err := Generate(g, m, Config{Objects: 3, MovesPerObject: 60, Model: RandomWaypoint, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	locs := append([]graph.NodeID(nil), w.Initial...)
	for i, mv := range w.Moves {
		if !g.HasEdge(locs[mv.Object], mv.To) {
			t.Fatalf("waypoint move %d not adjacent: %d -> %d", i, locs[mv.Object], mv.To)
		}
		locs[mv.Object] = mv.To
	}
}

func TestPerObjectOrderPreserved(t *testing.T) {
	g := graph.Grid(5, 5)
	m := graph.NewMetric(g)
	w, err := Generate(g, m, Config{Objects: 4, MovesPerObject: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for o := core.ObjectID(0); o < 4; o++ {
		sub := w.MovesFor(o)
		if len(sub) != 30 {
			t.Fatalf("object %d has %d moves", o, len(sub))
		}
		cur := w.Initial[o]
		for _, mv := range sub {
			if !g.HasEdge(cur, mv.To) {
				t.Fatalf("object %d move not adjacent under interleaving", o)
			}
			cur = mv.To
		}
	}
}

func TestDeterministicSeed(t *testing.T) {
	g := graph.Grid(4, 4)
	m := graph.NewMetric(g)
	a, _ := Generate(g, m, Config{Objects: 3, MovesPerObject: 20, Queries: 7, Seed: 9})
	b, _ := Generate(g, m, Config{Objects: 3, MovesPerObject: 20, Queries: 7, Seed: 9})
	if len(a.Moves) != len(b.Moves) {
		t.Fatal("lengths differ")
	}
	for i := range a.Moves {
		if a.Moves[i] != b.Moves[i] {
			t.Fatalf("move %d differs", i)
		}
	}
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatalf("query %d differs", i)
		}
	}
}

func TestFinalLocations(t *testing.T) {
	g := graph.Path(6)
	m := graph.NewMetric(g)
	w, _ := Generate(g, m, Config{Objects: 2, MovesPerObject: 15, Seed: 4})
	finals := w.FinalLocations()
	locs := append([]graph.NodeID(nil), w.Initial...)
	for _, mv := range w.Moves {
		locs[mv.Object] = mv.To
	}
	for o := range finals {
		if finals[o] != locs[o] {
			t.Fatalf("final location of %d: %d vs %d", o, finals[o], locs[o])
		}
	}
}

func TestDetectionRatesCountCrossings(t *testing.T) {
	g := graph.Grid(5, 5)
	m := graph.NewMetric(g)
	w, _ := Generate(g, m, Config{Objects: 4, MovesPerObject: 100, Seed: 5})
	rates := w.DetectionRates(g)
	total := 0.0
	for k, r := range rates {
		if !g.HasEdge(k.U, k.V) {
			t.Fatalf("rate on non-edge %v", k)
		}
		if k.U >= k.V {
			t.Fatalf("non-canonical key %v", k)
		}
		total += r
	}
	// Every move crosses exactly one edge.
	if total != float64(len(w.Moves)) {
		t.Fatalf("total rate %v, moves %d", total, len(w.Moves))
	}
}

func TestMakeEdgeKeyCanonical(t *testing.T) {
	if MakeEdgeKey(5, 2) != (EdgeKey{U: 2, V: 5}) {
		t.Fatal("key not canonicalized")
	}
	if MakeEdgeKey(2, 5) != MakeEdgeKey(5, 2) {
		t.Fatal("keys differ by direction")
	}
}

func TestQueriesInRange(t *testing.T) {
	g := graph.Grid(4, 4)
	m := graph.NewMetric(g)
	w, _ := Generate(g, m, Config{Objects: 6, MovesPerObject: 5, Queries: 50, Seed: 6})
	for _, q := range w.Queries {
		if int(q.From) < 0 || int(q.From) >= g.N() {
			t.Fatalf("query from %d", q.From)
		}
		if int(q.Object) < 0 || int(q.Object) >= 6 {
			t.Fatalf("query object %d", q.Object)
		}
	}
}
