package mobility

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/graph"
)

// Workloads round-trip through JSON (cmd/mottrace dumps them for external
// tooling; replays must see identical operations).
func TestWorkloadJSONRoundTrip(t *testing.T) {
	g := graph.Grid(5, 5)
	m := graph.NewMetric(g)
	w, err := Generate(g, m, Config{Objects: 4, MovesPerObject: 30, Queries: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(w); err != nil {
		t.Fatal(err)
	}
	var back Workload
	if err := json.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Objects != w.Objects || len(back.Moves) != len(w.Moves) || len(back.Queries) != len(w.Queries) {
		t.Fatalf("shape changed: %+v", back)
	}
	for i := range w.Moves {
		if back.Moves[i] != w.Moves[i] {
			t.Fatalf("move %d changed", i)
		}
	}
	for i := range w.Queries {
		if back.Queries[i] != w.Queries[i] {
			t.Fatalf("query %d changed", i)
		}
	}
	for o := range w.Initial {
		if back.Initial[o] != w.Initial[o] {
			t.Fatalf("initial %d changed", o)
		}
	}
	// Derived data matches too.
	r1 := w.DetectionRates(g)
	r2 := back.DetectionRates(g)
	if len(r1) != len(r2) {
		t.Fatalf("rates differ: %d vs %d edges", len(r1), len(r2))
	}
	for k, v := range r1 {
		if r2[k] != v {
			t.Fatalf("rate for %v changed", k)
		}
	}
}
