package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs/live"
	"repro/internal/runtime/track"
)

// newTestServer builds a small server and an httptest front for it,
// with both torn down at cleanup (Shutdown first, so the drain sees the
// handlers finish).
func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		ts.Close()
	})
	return s, ts
}

// doJSON posts (or gets, for body == "") and decodes the JSON response.
func doJSON(t testing.TB, method, url, body string, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %v:\n%s", method, url, err, raw)
		}
	}
	return resp
}

func publishBody(obj, node int) string {
	return fmt.Sprintf(`{"object":%d,"node":%d}`, obj, node)
}

func moveBody(obj, to int) string {
	return fmt.Sprintf(`{"object":%d,"to":%d}`, obj, to)
}

// TestServeRoundTrip drives the whole happy path plus every client
// fault through the real mux: publish/move/query against live shards,
// duplicate publishes, unknown objects, malformed bodies, out-of-range
// sensors, and the drill endpoints' 403 when chaos admin is off.
func TestServeRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 2, Nodes: 36, Seed: 3})

	var pub publishResponse
	if resp := doJSON(t, "POST", ts.URL+"/v1/publish", publishBody(1, 5), &pub); resp.StatusCode != http.StatusOK {
		t.Fatalf("publish status %d", resp.StatusCode)
	}
	if pub.Object != 1 || pub.Node != 5 || pub.Shard < 0 || pub.Shard > 1 {
		t.Fatalf("publish response %+v", pub)
	}

	// Same object again is a client fault, classified 409.
	if resp := doJSON(t, "POST", ts.URL+"/v1/publish", publishBody(1, 7), nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate publish status %d, want 409", resp.StatusCode)
	}

	var mv moveResponse
	if resp := doJSON(t, "POST", ts.URL+"/v1/move", moveBody(1, 17), &mv); resp.StatusCode != http.StatusOK {
		t.Fatalf("move status %d", resp.StatusCode)
	}
	if mv.Shard != pub.Shard {
		t.Fatalf("move landed on shard %d, publish on %d", mv.Shard, pub.Shard)
	}

	var q queryResponse
	if resp := doJSON(t, "GET", ts.URL+"/v1/query/1", "", &q); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if q.Location != 17 {
		t.Fatalf("query location %d, want 17", q.Location)
	}
	if loc, ok := s.Location(1); !ok || loc != 17 {
		t.Fatalf("direct Location = %d,%v, want 17,true", loc, ok)
	}

	// Distance-sensitive query from an explicit sensor.
	var qf queryResponse
	if resp := doJSON(t, "GET", ts.URL+"/v1/query/1?from=17", "", &qf); resp.StatusCode != http.StatusOK {
		t.Fatalf("query?from status %d", resp.StatusCode)
	}
	if qf.Location != 17 {
		t.Fatalf("query?from location %d, want 17", qf.Location)
	}

	// Client faults, each with its contract status.
	for _, tc := range []struct {
		name, method, path, body string
		want                     int
	}{
		{"unknown object query", "GET", "/v1/query/999", "", http.StatusNotFound},
		{"move unpublished", "POST", "/v1/move", moveBody(999, 3), http.StatusNotFound},
		{"syntax error", "POST", "/v1/publish", `{"object":`, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/publish", `{"object":2,"node":1,"bogus":true}`, http.StatusBadRequest},
		{"trailing garbage", "POST", "/v1/move", moveBody(1, 3) + `{"more":1}`, http.StatusBadRequest},
		{"wrong type", "POST", "/v1/move", `{"object":"one","to":3}`, http.StatusBadRequest},
		{"node out of range", "POST", "/v1/publish", publishBody(2, 36), http.StatusBadRequest},
		{"negative node", "POST", "/v1/move", moveBody(1, -1), http.StatusBadRequest},
		{"bad object id", "GET", "/v1/query/not-a-number", "", http.StatusBadRequest},
		{"bad from param", "GET", "/v1/query/1?from=x", "", http.StatusBadRequest},
		{"from out of range", "GET", "/v1/query/1?from=36", "", http.StatusBadRequest},
		{"drills disabled fail", "POST", "/v1/fail/3", "", http.StatusForbidden},
		{"drills disabled recover", "POST", "/v1/recover/3", "", http.StatusForbidden},
		{"bad method", "GET", "/v1/publish", "", http.StatusMethodNotAllowed},
	} {
		resp := doJSON(t, tc.method, ts.URL+tc.path, tc.body, nil)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// A malformed move must not have touched the trail.
	var q2 queryResponse
	if resp := doJSON(t, "GET", ts.URL+"/v1/query/1", "", &q2); resp.StatusCode != http.StatusOK || q2.Location != 17 {
		t.Fatalf("after rejected moves: status %d location %d, want 200/17", resp.StatusCode, q2.Location)
	}
}

// TestServeShardPartition pins the SplitMix64 partition: a dense object
// range spreads across every shard, and each object consistently lands
// on the same shard across ops.
func TestServeShardPartition(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 4, Nodes: 16, Seed: 1})
	hit := make([]int, 4)
	for o := 0; o < 32; o++ {
		var pub publishResponse
		if resp := doJSON(t, "POST", ts.URL+"/v1/publish", publishBody(o, o%16), &pub); resp.StatusCode != http.StatusOK {
			t.Fatalf("publish %d: status %d", o, resp.StatusCode)
		}
		if want := s.shardFor(core.ObjectID(o)).id; pub.Shard != want {
			t.Fatalf("object %d on shard %d, shardFor says %d", o, pub.Shard, want)
		}
		hit[pub.Shard]++
	}
	for i, n := range hit {
		if n == 0 {
			t.Errorf("shard %d got no objects out of a dense 32 (distribution %v)", i, hit)
		}
	}
}

// TestServeCoalescing feeds one batch with a burst of moves for the
// same object through applyBatch directly: the tracker sees exactly one
// move (the latest position), superseded requests ack as coalesced, and
// an interleaved second object is untouched by the collapse.
func TestServeCoalescing(t *testing.T) {
	s, _ := newTestServer(t, Config{Shards: 1, Nodes: 36, Seed: 1})
	sh := s.shards[0]
	for o := 1; o <= 2; o++ {
		if err := sh.tr.Publish(core.ObjectID(o), 0); err != nil {
			t.Fatal(err)
		}
	}
	opsBefore := sh.live.Snapshot().Total.Count

	mk := func(o, to int) moveReq {
		return moveReq{obj: core.ObjectID(o), to: graph.NodeID(to), done: make(chan moveResult, 1)}
	}
	batch := []moveReq{mk(1, 5), mk(2, 9), mk(1, 11), mk(1, 23)}
	sh.applyBatch(batch)

	wantCoalesced := []bool{true, false, true, false}
	for i, req := range batch {
		res := <-req.done
		if res.err != nil {
			t.Fatalf("batch[%d]: %v", i, res.err)
		}
		if res.coalesced != wantCoalesced[i] {
			t.Errorf("batch[%d] coalesced = %v, want %v", i, res.coalesced, wantCoalesced[i])
		}
	}
	if loc, _ := sh.tr.Location(1); loc != 23 {
		t.Fatalf("object 1 at %d, want the latest queued position 23", loc)
	}
	if loc, _ := sh.tr.Location(2); loc != 9 {
		t.Fatalf("object 2 at %d, want 9", loc)
	}

	// The collapse must be visible at the tracker: 4 queued moves, but
	// only 2 maintenance ops recorded (one per object in the batch).
	if got := sh.live.Snapshot().Total.Count - opsBefore; got != 2 {
		t.Fatalf("tracker ops for the batch = %d, want 2 (coalesced)", got)
	}
}

// TestServeBackpressure exercises both 429 paths deterministically: a
// saturated inflight window (slot held externally) and a full move
// queue (drain loop stopped, queue stuffed). Both must carry the
// Retry-After hint, count into the rejected meter, and clear once the
// pressure lifts.
func TestServeBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1, Nodes: 16, Seed: 1, Inflight: 1, QueueDepth: 1})
	sh := s.shards[0]
	if resp := doJSON(t, "POST", ts.URL+"/v1/publish", publishBody(1, 0), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("publish status %d", resp.StatusCode)
	}

	// Hold the single inflight slot: publish and query must shed.
	if !sh.tryAcquire() {
		t.Fatal("could not take the only slot")
	}
	for _, tc := range []struct{ method, path, body string }{
		{"POST", "/v1/publish", publishBody(2, 1)},
		{"GET", "/v1/query/1", ""},
	} {
		resp := doJSON(t, tc.method, ts.URL+tc.path, tc.body, nil)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s %s under saturation: status %d, want 429", tc.method, tc.path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s %s: 429 without Retry-After", tc.method, tc.path)
		}
	}
	sh.release()
	if resp := doJSON(t, "GET", ts.URL+"/v1/query/1", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after release: status %d", resp.StatusCode)
	}

	// Full move queue: stop the drain loop, stuff the one slot, then a
	// client move must shed instead of blocking.
	sh.stopLoop()
	sh.loops.Wait()
	if _, ok := sh.enqueueMove(1, 2); !ok {
		t.Fatal("stuffing the stopped queue failed")
	}
	resp := doJSON(t, "POST", ts.URL+"/v1/move", moveBody(1, 3), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("move into full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("move 429 without Retry-After")
	}
	if got := s.Snapshot().Rejected; got != 3 {
		t.Fatalf("rejected meter = %d, want 3", got)
	}
}

// TestServeChaosDrill runs a fault drill over HTTP: with chaos admin
// on, failing the overlay root makes operations fail with 503 (the
// retransmission budget exhausts against a crashed sensor), and
// recovery restores service.
func TestServeChaosDrill(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 2, Nodes: 16, Seed: 1, ChaosAdmin: true, MaxAttempts: 2})
	if resp := doJSON(t, "POST", ts.URL+"/v1/publish", publishBody(1, 2), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("publish status %d", resp.StatusCode)
	}

	root := int64(s.Root())
	var drill drillResponse
	if resp := doJSON(t, "POST", fmt.Sprintf("%s/v1/fail/%d", ts.URL, root), "", &drill); resp.StatusCode != http.StatusOK {
		t.Fatalf("fail drill status %d", resp.StatusCode)
	}
	if drill.Action != "fail" || drill.Node != root {
		t.Fatalf("drill response %+v", drill)
	}
	if resp := doJSON(t, "GET", ts.URL+"/v1/query/1", "", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query through failed root: status %d, want 503", resp.StatusCode)
	}

	if resp := doJSON(t, "POST", fmt.Sprintf("%s/v1/recover/%d", ts.URL, root), "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("recover drill status %d", resp.StatusCode)
	}
	var q queryResponse
	if resp := doJSON(t, "GET", ts.URL+"/v1/query/1", "", &q); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after recovery: status %d", resp.StatusCode)
	}
	if q.Location != 2 {
		t.Fatalf("query after recovery: location %d, want 2", q.Location)
	}

	// Drill endpoints still validate their input.
	if resp := doJSON(t, "POST", ts.URL+"/v1/fail/99", "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fail out-of-range: status %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, "POST", ts.URL+"/v1/fail/abc", "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fail bad id: status %d, want 400", resp.StatusCode)
	}
}

// TestServeDebugEndpoints reads back the aggregated /debug/serve
// snapshot and each shard's mounted runtime diagnostics.
func TestServeDebugEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, Nodes: 16, Seed: 1})
	for o := 0; o < 8; o++ {
		if resp := doJSON(t, "POST", ts.URL+"/v1/publish", publishBody(o, o), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("publish %d: status %d", o, resp.StatusCode)
		}
		if resp := doJSON(t, "POST", ts.URL+"/v1/move", moveBody(o, o+8), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("move %d: status %d", o, resp.StatusCode)
		}
		if resp := doJSON(t, "GET", fmt.Sprintf("%s/v1/query/%d", ts.URL, o), "", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", o, resp.StatusCode)
		}
	}

	var st Status
	if resp := doJSON(t, "GET", ts.URL+"/debug/serve", "", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/serve status %d", resp.StatusCode)
	}
	if st.Shards != 2 || st.Nodes != 16 {
		t.Fatalf("snapshot shape %+v", st)
	}
	if st.Request.Total.Count != 24 {
		t.Fatalf("request count %d, want 24", st.Request.Total.Count)
	}
	if st.OpsPerSec <= 0 || st.UptimeNs <= 0 {
		t.Fatalf("rates unset: ops/sec %.1f uptime %d", st.OpsPerSec, st.UptimeNs)
	}
	if len(st.ShardStatus) != 2 {
		t.Fatalf("shard rows %d, want 2", len(st.ShardStatus))
	}
	var shardOps int64
	for _, row := range st.ShardStatus {
		if row.Label != fmt.Sprintf("serve-shard-%d", row.ID) {
			t.Fatalf("shard row label %q", row.Label)
		}
		if row.QueueDepth != 0 {
			t.Fatalf("shard %d queue depth %d at quiescence", row.ID, row.QueueDepth)
		}
		shardOps += row.Ops
	}
	if shardOps != 24 {
		t.Fatalf("summed shard ops %d, want 24", shardOps)
	}
	for _, class := range []live.Class{live.ClassPublish, live.ClassMove, live.ClassQuery} {
		op := st.Request.Ops[class]
		if op.Count != 8 || op.P50Ns <= 0 || op.P99Ns < op.P50Ns {
			t.Fatalf("request class %s malformed: %+v", op.Class, op)
		}
	}

	// Per-shard runtime diagnostics ride along under /debug/shard/<i>/.
	for i := 0; i < 2; i++ {
		var snap live.Snapshot
		url := fmt.Sprintf("%s/debug/shard/%d/debug/live", ts.URL, i)
		if resp := doJSON(t, "GET", url, "", &snap); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", url, resp.StatusCode)
		}
		if snap.Label != fmt.Sprintf("serve-shard-%d", i) {
			t.Fatalf("shard %d live label %q", i, snap.Label)
		}
		if snap.Total.Count == 0 {
			t.Fatalf("shard %d live count 0", i)
		}
	}
}

// TestServeShutdownDrain is the SIGTERM-drain contract over a real
// listener: concurrent writers stream moves while the server shuts
// down mid-flight; afterwards every move acknowledged with a 200 must
// be reflected in its object's final location — no lost acks — and the
// server answers nothing further.
func TestServeShutdownDrain(t *testing.T) {
	s, err := New(Config{Shards: 4, Nodes: 36, Seed: 2, QueueDepth: 64, Inflight: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Start()
	defer ts.Close()

	const writers = 8
	lastAcked := make([]int64, writers) // -1 = nothing acked
	var stop atomic.Bool
	var g track.Group
	for w := 0; w < writers; w++ {
		obj := w + 1
		if resp := doJSON(t, "POST", ts.URL+"/v1/publish", publishBody(obj, 0), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("publish %d: status %d", obj, resp.StatusCode)
		}
		lastAcked[w] = -1
		g.Go(func() {
			client := &http.Client{Timeout: 5 * time.Second}
			for target := 1; !stop.Load(); target++ {
				to := target % 36
				resp, err := client.Post(ts.URL+"/v1/move", "application/json",
					bytes.NewReader([]byte(moveBody(obj, to))))
				if err != nil {
					return // connection cut by the drain: nothing was acked
				}
				code := resp.StatusCode
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch code {
				case http.StatusOK:
					lastAcked[w] = int64(to)
				case http.StatusTooManyRequests:
					continue // shed, retry next target
				default:
					return // 503 once draining: stop writing
				}
			}
		})
	}

	// Let the writers build up real traffic, then drain mid-flight.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := make(chan error, 1)
	g.Go(func() { shutdownErr <- s.Shutdown(ctx) })

	// The handler drain covers the httptest server's connections too:
	// its Close waits for outstanding requests, and the draining flag
	// turns everything arriving later into an immediate 503.
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	stop.Store(true)
	g.Wait()

	// Every acknowledged move is reflected at quiescence.
	acked := 0
	for w := 0; w < writers; w++ {
		if lastAcked[w] < 0 {
			continue
		}
		acked++
		obj := core.ObjectID(w + 1)
		loc, ok := s.Location(obj)
		if !ok {
			t.Fatalf("object %d vanished after drain", obj)
		}
		if int64(loc) != lastAcked[w] {
			t.Fatalf("object %d at %d, last acked move was to %d — lost an acked move",
				obj, loc, lastAcked[w])
		}
	}
	if acked == 0 {
		t.Fatal("no writer got a single ack; the test exercised nothing")
	}

	// Post-drain: the handler refuses new work, and Shutdown stays
	// idempotent with the same answer.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/query/1", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain query status %d, want 503", rec.Code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestRaceServeMixedLoad hammers one server with every op class plus
// debug reads and a shutdown race, for the -race tier: four writer
// groups and two snapshot readers against 2 shards, then Shutdown twice
// concurrently while traffic is still arriving.
func TestRaceServeMixedLoad(t *testing.T) {
	s, err := New(Config{Shards: 2, Nodes: 16, Seed: 5, QueueDepth: 32, Inflight: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for o := 0; o < 4; o++ {
		if resp := doJSON(t, "POST", ts.URL+"/v1/publish", publishBody(o, o), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("publish %d: status %d", o, resp.StatusCode)
		}
	}

	var stop atomic.Bool
	var g track.Group
	for w := 0; w < 4; w++ {
		obj := w
		g.Go(func() {
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 1; !stop.Load(); i++ {
				body := bytes.NewReader([]byte(moveBody(obj, i%16)))
				resp, err := client.Post(ts.URL+"/v1/move", "application/json", body)
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusServiceUnavailable {
					return
				}
				qresp, err := client.Get(fmt.Sprintf("%s/v1/query/%d", ts.URL, obj))
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, qresp.Body)
				qresp.Body.Close()
			}
		})
	}
	for r := 0; r < 2; r++ {
		g.Go(func() {
			client := &http.Client{Timeout: 5 * time.Second}
			for !stop.Load() {
				for _, path := range []string{"/debug/serve", "/debug/shard/0/debug/live"} {
					resp, err := client.Get(ts.URL + path)
					if err != nil {
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		})
	}

	time.Sleep(30 * time.Millisecond)
	var closers track.Group
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		closers.Go(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			errs[i] = s.Shutdown(ctx)
		})
	}
	closers.Wait()
	stop.Store(true)
	g.Wait()
	if errs[0] != errs[1] {
		t.Fatalf("concurrent Shutdowns disagreed: %v vs %v", errs[0], errs[1])
	}
	if errs[0] != nil {
		t.Fatalf("Shutdown: %v", errs[0])
	}
}
