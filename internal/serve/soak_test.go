package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runtime/track"
)

// soakSecs returns the opt-in soak duration: 0 (skip) unless MOT_SOAK=1,
// 60s by default, overridable through MOT_SOAK_SECS for local tinkering.
func soakSecs(t *testing.T) int {
	t.Helper()
	if os.Getenv("MOT_SOAK") != "1" {
		t.Skip("soak tier is opt-in: set MOT_SOAK=1 (make soak)")
	}
	if raw := os.Getenv("MOT_SOAK_SECS"); raw != "" {
		secs, err := strconv.Atoi(raw)
		if err != nil || secs <= 0 {
			t.Fatalf("MOT_SOAK_SECS=%q: want a positive integer", raw)
		}
		return secs
	}
	return 60
}

// soakP99SLO is the drain-time request-p99 ceiling. Deliberately loose —
// the soak runs on arbitrary CI hardware next to a chaos drill — it
// exists to catch collapse (seconds-long tails from a stuck queue), not
// to pin performance; BENCH_10.json's serve rows do that.
const soakP99SLO = 500 * time.Millisecond

// TestSoakServe is the `make soak` tier: sustained mixed load plus a
// rolling chaos drill against a live motserve for ~60s, then a graceful
// drain with the service invariants asserted at quiescence — every move
// acknowledged to a clean object (one that never saw a server fault) is
// reflected in its final location, every queue is empty, and the
// request p99 stayed under the (loose) SLO.
func TestSoakServe(t *testing.T) {
	secs := soakSecs(t)
	s, err := New(Config{
		Shards: 4, Nodes: 144, Seed: 11,
		QueueDepth: 256, Inflight: 64,
		ChaosAdmin: true, MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	var srvG track.Group
	srvG.Go(func() { _ = s.Serve(ln) })
	defer srvG.Wait()

	const writers = 8
	type objState struct {
		lastAcked int64 // -1 until the first acked move
		// failedSince lists the targets of 5xx'd moves after the last
		// ack: a fault mid-move may or may not have applied it, so the
		// final location must be lastAcked or one of these — anything
		// else (or anything older) is a lost/corrupted ack.
		failedSince []int64
		damaged     bool // saw any 5xx at any point
		acks        int64
	}
	states := make([]*objState, writers)
	root := int64(s.Root())

	var stop atomic.Bool
	var shed atomic.Int64
	var g track.Group
	for w := 0; w < writers; w++ {
		obj := 1000 + w
		st := &objState{lastAcked: -1}
		states[w] = st
		resp, err := http.Post(base+"/v1/publish", "application/json",
			bytes.NewReader([]byte(publishBody(obj, w))))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("publish %d: status %d", obj, resp.StatusCode)
		}
		g.Go(func() {
			client := &http.Client{Timeout: 10 * time.Second}
			for target := 1; !stop.Load(); target++ {
				to := target % 144
				resp, err := client.Post(base+"/v1/move", "application/json",
					bytes.NewReader([]byte(moveBody(obj, to))))
				if err != nil {
					return
				}
				code := resp.StatusCode
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case code == http.StatusOK:
					st.lastAcked = int64(to)
					st.failedSince = st.failedSince[:0]
					st.acks++
				case code == http.StatusTooManyRequests:
					shed.Add(1)
				case code >= 500:
					// Chaos fault mid-op: not acked, but possibly applied.
					st.failedSince = append(st.failedSince, int64(to))
					st.damaged = true
				}
				// Interleave queries: responses must always be well-formed,
				// whatever the drill is doing.
				qresp, err := client.Get(fmt.Sprintf("%s/v1/query/%d", base, obj))
				if err != nil {
					return
				}
				if qresp.StatusCode == http.StatusOK {
					var q queryResponse
					if err := json.NewDecoder(qresp.Body).Decode(&q); err != nil {
						panic(fmt.Sprintf("query %d: malformed 200 body: %v", obj, err))
					}
				} else if qresp.StatusCode >= 500 {
					st.damaged = true
				}
				_, _ = io.Copy(io.Discard, qresp.Body)
				qresp.Body.Close()
			}
		})
	}

	// Rolling chaos drill: fail a non-root sensor, let traffic grind on
	// it, recover, move on. Runs the whole soak.
	g.Go(func() {
		client := &http.Client{Timeout: 10 * time.Second}
		drill := func(action string, node int64) {
			resp, err := client.Post(fmt.Sprintf("%s/v1/%s/%d", base, action, node), "application/json", nil)
			if err != nil {
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		for victim := int64(1); !stop.Load(); victim++ {
			node := victim % 144
			if node == root {
				continue
			}
			drill("fail", node)
			time.Sleep(200 * time.Millisecond)
			drill("recover", node)
			time.Sleep(300 * time.Millisecond)
		}
	})

	time.Sleep(time.Duration(secs) * time.Second)

	// Drain mid-flight, exactly as SIGTERM would.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	stop.Store(true)
	g.Wait()

	// Invariants at quiescence.
	snap := s.Snapshot()
	for _, row := range snap.ShardStatus {
		if row.QueueDepth != 0 {
			t.Errorf("shard %d: %d moves still queued after drain", row.ID, row.QueueDepth)
		}
	}
	var acked, clean int64
	for w, st := range states {
		acked += st.acks
		if !st.damaged {
			clean++
		}
		if st.lastAcked < 0 {
			continue
		}
		obj := core.ObjectID(1000 + w)
		loc, ok := s.Location(obj)
		if !ok {
			t.Errorf("object %d vanished at quiescence", obj)
			continue
		}
		// The location must be the last acked target, or — when faults
		// struck after that ack — one of the possibly-applied failed
		// targets. Anything else means an acknowledged move was lost or
		// a position materialized that was never requested.
		legal := int64(loc) == st.lastAcked
		for _, to := range st.failedSince {
			legal = legal || int64(loc) == to
		}
		if !legal {
			t.Errorf("object %d at %d, want last ack %d or a failed-since target %v — lost an acked move",
				obj, loc, st.lastAcked, st.failedSince)
		}
	}
	if acked == 0 {
		t.Fatal("soak acknowledged no moves at all")
	}
	if p99 := time.Duration(snap.Request.Total.P99Ns); p99 > soakP99SLO {
		t.Errorf("request p99 %v blew the %v soak SLO", p99, soakP99SLO)
	}
	t.Logf("soak: %ds, %d acked moves (%d clean objects of %d), %d shed (429), %.0f ops/sec, p50 %v p99 %v",
		secs, acked, clean, writers, shed.Load(), snap.OpsPerSec,
		time.Duration(snap.Request.Total.P50Ns), time.Duration(snap.Request.Total.P99Ns))
}
