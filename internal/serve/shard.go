package serve

import (
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs/live"
	"repro/internal/runtime"
	"repro/internal/runtime/track"
)

// moveReq is one queued position report: apply carries the outcome back
// on done, which the admitting handler blocks on — the HTTP ack IS the
// application, so nothing acknowledged can be lost.
type moveReq struct {
	obj  core.ObjectID
	to   graph.NodeID
	done chan moveResult
}

// moveResult is the outcome of an applied (or coalesced-away) move.
type moveResult struct {
	err error
	// coalesced reports that this request's position was superseded by a
	// later queued move of the same object before the tracker saw it —
	// the ack still means "the trail reflects a report at least as new
	// as yours".
	coalesced bool
}

// shard is one partition of the object space: an independent tracker
// plus the bounded move queue and drain loop in front of it.
type shard struct {
	id   int
	srv  *Server
	live *live.Recorder
	tr   *runtime.Tracker

	// moveQ is the bounded pending-move queue; a full queue is
	// backpressure (429), never a blocked handler.
	moveQ chan moveReq
	// sem is the inflight window for synchronous ops (publish/query);
	// a try-acquire miss is backpressure too.
	sem chan struct{}

	quit     chan struct{}
	quitOnce sync.Once
	loops    track.Group
}

// stopLoop signals the drain loop to flush and exit; idempotent so
// tests can stop one shard's loop ahead of a full Shutdown.
func (sh *shard) stopLoop() {
	sh.quitOnce.Do(func() { close(sh.quit) })
}

// tryAcquire claims an inflight slot without blocking.
func (sh *shard) tryAcquire() bool {
	select {
	case sh.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (sh *shard) release() { <-sh.sem }

// enqueueMove admits a move into the bounded queue. ok=false means the
// queue is full right now — the caller answers 429 and the client
// retries; nothing was accepted, so nothing can be lost.
func (sh *shard) enqueueMove(obj core.ObjectID, to graph.NodeID) (chan moveResult, bool) {
	req := moveReq{obj: obj, to: to, done: make(chan moveResult, 1)}
	select {
	case sh.moveQ <- req:
		return req.done, true
	default:
		return nil, false
	}
}

// drainLoop is the shard's single consumer: block for one pending move,
// gather whatever else is queued behind it, coalesce per object, apply,
// ack. Because handlers block on their done channels and Server.Shutdown
// only closes quit after every handler has returned, a closed quit
// implies an empty queue — the final gather below is belt and braces for
// direct (non-HTTP) enqueuers in tests.
func (sh *shard) drainLoop() {
	for {
		select {
		case <-sh.quit:
			sh.applyBatch(sh.gather(nil))
			return
		case first := <-sh.moveQ:
			sh.applyBatch(sh.gather([]moveReq{first}))
		}
	}
}

// gather drains everything currently queued, without blocking, onto
// batch. Arrival order is preserved — coalescing depends on it.
func (sh *shard) gather(batch []moveReq) []moveReq {
	for {
		select {
		case req := <-sh.moveQ:
			batch = append(batch, req)
		default:
			return batch
		}
	}
}

// applyBatch collapses the batch to one tracker op per object — the
// latest queued position wins, per arrival order — applies those in
// first-appearance order, then acks every waiter with its group's
// outcome. Superseded requests are marked coalesced; under the paper's
// one-by-one maintenance discipline this is where a burst of position
// reports for a hot object costs one trail update instead of many.
func (sh *shard) applyBatch(batch []moveReq) {
	if len(batch) == 0 {
		return
	}
	// Group by object, preserving first-appearance order so acks and
	// applies stay deterministic for a given arrival order. The map only
	// locates each object's group; iteration runs over the slice.
	groups := make([][]moveReq, 0, len(batch))
	idx := make(map[core.ObjectID]int, len(batch))
	for _, req := range batch {
		i, ok := idx[req.obj]
		if !ok {
			i = len(groups)
			idx[req.obj] = i
			groups = append(groups, nil)
		}
		groups[i] = append(groups[i], req)
	}
	for _, group := range groups {
		winner := group[len(group)-1]
		err := sh.tr.Move(winner.obj, winner.to)
		for _, req := range group {
			req.done <- moveResult{err: err, coalesced: req.to != winner.to}
		}
	}
}

// queueDepth reports how many moves are pending right now (diagnostic).
func (sh *shard) queueDepth() int { return len(sh.moveQ) }

// inflight reports how many synchronous ops hold window slots right now.
func (sh *shard) inflight() int { return len(sh.sem) }
