package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs/live"
	"repro/internal/runtime"
)

// Wire types for the /v1 API. Object IDs are free-form int64s chosen by
// the client; node IDs must name sensors in [0, Nodes).
type (
	publishRequest struct {
		Object int64 `json:"object"`
		Node   int64 `json:"node"`
	}
	publishResponse struct {
		Object int64 `json:"object"`
		Node   int64 `json:"node"`
		Shard  int   `json:"shard"`
	}
	moveRequest struct {
		Object int64 `json:"object"`
		To     int64 `json:"to"`
	}
	moveResponse struct {
		Object int64 `json:"object"`
		To     int64 `json:"to"`
		Shard  int   `json:"shard"`
		// Coalesced reports that a newer queued move of the same object
		// superseded this one before the tracker saw it; the trail
		// reflects a report at least as new as this one.
		Coalesced bool `json:"coalesced,omitempty"`
	}
	queryResponse struct {
		Object   int64   `json:"object"`
		Location int64   `json:"location"`
		Cost     float64 `json:"cost"`
		Shard    int     `json:"shard"`
	}
	drillResponse struct {
		Node   int64  `json:"node"`
		Action string `json:"action"`
	}
	errorResponse struct {
		Error string `json:"error"`
	}
)

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/publish", s.handlePublish)
	mux.HandleFunc("POST /v1/move", s.handleMove)
	mux.HandleFunc("GET /v1/query/{object}", s.handleQuery)
	mux.HandleFunc("POST /v1/fail/{node}", s.drillHandler("fail"))
	mux.HandleFunc("POST /v1/recover/{node}", s.drillHandler("recover"))
	mux.HandleFunc("GET /debug/serve", s.handleDebugServe)
	// Each shard's full runtime diagnostics ride along under a prefix:
	// GET /debug/shard/<i>/debug/live, /debug/shard/<i>/debug/load, ...
	for i, sh := range s.shards {
		prefix := fmt.Sprintf("/debug/shard/%d", i)
		mux.Handle(prefix+"/", http.StripPrefix(prefix, sh.tr.DebugMux()))
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// decodeBody strictly decodes a JSON request body into v: unknown
// fields, trailing garbage and type mismatches are all 400s, so a
// malformed report is rejected rather than half-read.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
		return false
	}
	if dec.More() {
		writeErr(w, http.StatusBadRequest, "malformed JSON body: trailing data")
		return false
	}
	return true
}

// admitted rejects new work once a drain has begun. The HTTP server's
// own Shutdown already stops accepting connections; this flag covers
// handlers mounted without one (tests driving Handler directly).
func (s *Server) admitted(w http.ResponseWriter) bool {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server draining")
		return false
	}
	return true
}

// reject answers 429 with the contract's Retry-After hint.
func (s *Server) reject(w http.ResponseWriter, what string) {
	s.rejected.Add(1)
	w.Header().Set("Retry-After", "1")
	writeErr(w, http.StatusTooManyRequests, what)
}

func (s *Server) validNode(w http.ResponseWriter, n int64) bool {
	if n < 0 || n >= int64(s.g.N()) {
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("node %d out of range [0,%d)", n, s.g.N()))
		return false
	}
	return true
}

// opStatus maps tracker errors onto request statuses via the sentinel
// classification, so client faults (404/409) never masquerade as server
// faults and fault-drill delivery failures surface as 503s.
func opStatus(err error) int {
	var de *chaos.DeliveryError
	switch {
	case errors.Is(err, runtime.ErrNotPublished):
		return http.StatusNotFound
	case errors.Is(err, runtime.ErrAlreadyPublished):
		return http.StatusConflict
	case errors.As(err, &de):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	if !s.admitted(w) {
		return
	}
	var req publishRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !s.validNode(w, req.Node) {
		return
	}
	obj := core.ObjectID(req.Object)
	sh := s.shardFor(obj)
	if !sh.tryAcquire() {
		s.reject(w, "shard inflight window full")
		return
	}
	st := s.agg.Start()
	err := sh.tr.Publish(obj, graph.NodeID(req.Node))
	sh.release()
	s.agg.Observe(live.ClassPublish, st, int(obj), err)
	if err != nil {
		writeErr(w, opStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, publishResponse{Object: req.Object, Node: req.Node, Shard: sh.id})
}

func (s *Server) handleMove(w http.ResponseWriter, r *http.Request) {
	if !s.admitted(w) {
		return
	}
	var req moveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !s.validNode(w, req.To) {
		return
	}
	obj := core.ObjectID(req.Object)
	sh := s.shardFor(obj)
	st := s.agg.Start()
	done, ok := sh.enqueueMove(obj, graph.NodeID(req.To))
	if !ok {
		s.reject(w, "shard move queue full")
		return
	}
	// Block until the drain loop applies (or coalesces) the report: the
	// 200 below is the ack the no-lost-moves guarantee hangs off.
	res := <-done
	s.agg.Observe(live.ClassMove, st, int(obj), res.err)
	if res.err != nil {
		writeErr(w, opStatus(res.err), res.err.Error())
		return
	}
	writeJSON(w, http.StatusOK, moveResponse{
		Object: req.Object, To: req.To, Shard: sh.id, Coalesced: res.coalesced,
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.admitted(w) {
		return
	}
	objRaw := r.PathValue("object")
	objN, err := strconv.ParseInt(objRaw, 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad object id "+strconv.Quote(objRaw))
		return
	}
	// Queries issue from the overlay root by default; ?from=<node>
	// queries from an arbitrary sensor (distance-sensitive cost).
	from := int64(s.root)
	if raw := r.URL.Query().Get("from"); raw != "" {
		from, err = strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad from node "+strconv.Quote(raw))
			return
		}
		if !s.validNode(w, from) {
			return
		}
	}
	obj := core.ObjectID(objN)
	sh := s.shardFor(obj)
	if !sh.tryAcquire() {
		s.reject(w, "shard inflight window full")
		return
	}
	st := s.agg.Start()
	loc, cost, err := sh.tr.Query(graph.NodeID(from), obj)
	sh.release()
	s.agg.Observe(live.ClassQuery, st, int(obj), err)
	if err != nil {
		writeErr(w, opStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Object: objN, Location: int64(loc), Cost: cost, Shard: sh.id,
	})
}

// drillHandler builds the fail/recover admin endpoint. Drills are a
// deliberate blast radius: the named sensor goes down (or comes back)
// on every shard at once, since shards share the physical network.
func (s *Server) drillHandler(action string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.cfg.ChaosAdmin {
			writeErr(w, http.StatusForbidden,
				"fault drills disabled: start the server with chaos admin enabled")
			return
		}
		if !s.admitted(w) {
			return
		}
		raw := r.PathValue("node")
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad node id "+strconv.Quote(raw))
			return
		}
		if !s.validNode(w, n) {
			return
		}
		st := s.agg.Start()
		for _, sh := range s.shards {
			if action == "fail" {
				sh.tr.Crash(graph.NodeID(n))
			} else {
				sh.tr.Recover(graph.NodeID(n))
			}
		}
		s.agg.Observe(live.ClassRecovery, st, int(n), nil)
		writeJSON(w, http.StatusOK, drillResponse{Node: n, Action: action})
	}
}
