package serve

import (
	"net/http"
	"time"

	"repro/internal/obs/live"
)

// ShardStatus is one shard's row in the /debug/serve snapshot.
type ShardStatus struct {
	ID    int    `json:"id"`
	Label string `json:"label"`
	// QueueDepth is the number of moves pending in the bounded queue at
	// snapshot time; sustained depth near the configured bound means
	// clients are about to see 429s.
	QueueDepth int `json:"queue_depth"`
	// Inflight is the number of synchronous ops holding window slots.
	Inflight int `json:"inflight"`
	// Ops is the shard tracker's lifetime operation count.
	Ops int64 `json:"ops"`
}

// Status is the aggregated /debug/serve snapshot: service-level rates
// and tails plus per-shard queue pressure. Request percentiles are
// measured at the HTTP surface (queue wait included); per-shard tracker
// latencies live under /debug/shard/<i>/debug/live.
type Status struct {
	Shards     int     `json:"shards"`
	Nodes      int     `json:"nodes"`
	QueueDepth int     `json:"queue_bound"`
	Inflight   int     `json:"inflight_bound"`
	UptimeNs   int64   `json:"uptime_ns"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Rejected counts 429 responses (move queue or inflight window
	// full) over the server's lifetime.
	Rejected int64 `json:"rejected"`
	// Request carries per-class request-latency percentiles
	// (p50/p90/p99/p999) from the service-level recorder.
	Request     live.Snapshot `json:"request"`
	ShardStatus []ShardStatus `json:"shard_status"`
}

// Snapshot assembles the current aggregated service status.
func (s *Server) Snapshot() Status {
	snap := s.agg.Snapshot()
	uptime := time.Since(s.start)
	st := Status{
		Shards:     len(s.shards),
		Nodes:      s.cfg.Nodes,
		QueueDepth: s.cfg.QueueDepth,
		Inflight:   s.cfg.Inflight,
		UptimeNs:   int64(uptime),
		Rejected:   s.rejected.Load(),
		Request:    snap,
	}
	if secs := uptime.Seconds(); secs > 0 {
		st.OpsPerSec = float64(snap.Total.Count) / secs
	}
	for _, sh := range s.shards {
		st.ShardStatus = append(st.ShardStatus, ShardStatus{
			ID:         sh.id,
			Label:      sh.live.Label(),
			QueueDepth: sh.queueDepth(),
			Inflight:   sh.inflight(),
			Ops:        sh.live.Snapshot().Total.Count,
		})
	}
	return st
}

func (s *Server) handleDebugServe(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}
