// Package serve is the long-running front end over the tracking
// structures: a stdlib HTTP/JSON server that turns the batch harnesses'
// one-shot workloads into a sustained publish/move/query request
// stream, the ROADMAP's "motserve" — where the headline metric is
// ops/sec and tail latency rather than cost ratio.
//
// Architecture. The object space is partitioned across N shards by a
// SplitMix64 hash of the object ID; each shard owns an independent
// goroutine-runtime tracker (internal/runtime) over one shared sensor
// network and overlay hierarchy, with its own wall-clock telemetry
// recorder (internal/obs/live, labeled serve-shard-<i>). Publishes and
// queries execute synchronously under a per-shard inflight window;
// moves flow through a per-shard bounded queue into a drain loop that
// batches whatever is pending and coalesces multiple queued moves of
// the same object into the latest position before touching the tracker
// (the paper's one-by-one discipline then pays one maintenance
// operation for a burst of position reports). Every accepted move is
// acknowledged only after its batch applies, so a 200 means the trail
// reflects the report — nothing acknowledged can be lost by a drain.
//
// Backpressure. Both admission paths are bounded: a full move queue or
// a saturated inflight window answers 429 with a Retry-After hint
// instead of queueing unboundedly. Shutdown drains in dependency
// order — stop admitting, finish in-flight handlers (which flushes the
// move queues, since handlers block for their acks), then stop the
// drain loops and trackers — so SIGTERM never abandons acknowledged
// work.
//
// Observability and chaos. /debug/serve aggregates ops/sec, queue
// depths and per-class p50/p99 across shards; each shard's full
// runtime diagnostics (including /debug/live) mount under
// /debug/shard/<i>/. With Config.ChaosAdmin set, POST /v1/fail/<node>
// and /v1/recover/<node> drive internal/chaos fault drills against the
// live server: messages routed through a failed sensor drop and
// retry until the retransmission budget surfaces a DeliveryError as a
// 503. This package measures wall-clock time by design and is on
// motlint's walltime allowlist; nothing it records feeds deterministic
// artifacts.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/obs/live"
	"repro/internal/overlay"
	"repro/internal/runtime"
)

// OracleMinNodes is the network size at which the server switches its
// distance substrate from the exact frozen metric to the sub-quadratic
// landmark/ball oracle (mirroring the scale harness's threshold).
const OracleMinNodes = 4096

// Config parameterizes a Server.
type Config struct {
	// Shards is the number of independent trackers the object space is
	// hash-partitioned across. Default 4.
	Shards int
	// Nodes is the sensor-network size (a near-square grid). Networks
	// of OracleMinNodes and above build on the sub-quadratic distance
	// oracle instead of the exact metric. Default 256.
	Nodes int
	// Seed drives the overlay construction and salts each shard's
	// telemetry and fault streams. Default 1.
	Seed int64
	// QueueDepth bounds each shard's pending-move queue; a full queue
	// answers 429. Default 1024.
	QueueDepth int
	// Inflight bounds each shard's concurrently executing publishes and
	// queries; a saturated window answers 429. Default 256.
	Inflight int
	// SampleSize caps each live recorder's span reservoir.
	// Default live.DefaultSampleSize.
	SampleSize int
	// ChaosAdmin opts in to the fault-drill admin endpoints
	// (/v1/fail, /v1/recover) and builds every shard tracker with a
	// chaos injector so failed sensors actually drop traffic. Off, the
	// endpoints answer 403 and trackers run injector-free.
	ChaosAdmin bool
	// MaxAttempts bounds per-message retransmissions during fault
	// drills before an operation fails with a 503. Only meaningful with
	// ChaosAdmin; default 4.
	MaxAttempts int
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Nodes <= 0 {
		c.Nodes = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.Inflight <= 0 {
		c.Inflight = 256
	}
	if c.SampleSize <= 0 {
		c.SampleSize = live.DefaultSampleSize
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
}

// Server is the sharded serving front end. Build with New, expose via
// Handler (tests) or Serve/ListenAndServe (deployments), and always
// drain with Shutdown.
type Server struct {
	cfg    Config
	g      *graph.Graph
	dm     graph.DistanceOracle
	ov     overlay.Overlay
	root   graph.NodeID
	shards []*shard
	mux    *http.ServeMux

	// agg measures request latency at the HTTP surface (admission to
	// response, queue wait included) across all shards — the number
	// /debug/serve's percentiles report. Per-shard recorders underneath
	// measure tracker-op latency alone.
	agg   *live.Recorder
	start time.Time

	rejected atomic.Int64 // 429s across all endpoints

	httpMu   sync.Mutex
	httpSrv  *http.Server
	draining atomic.Bool

	closeOnce sync.Once
	closeErr  error
}

// New builds the shared substrate (grid, distance oracle, overlay) and
// starts Config.Shards independent trackers over it. The server is not
// listening yet: mount Handler yourself or call Serve/ListenAndServe.
// Call Shutdown to drain.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	g := graph.NearSquareGrid(cfg.Nodes)
	var dm graph.DistanceOracle
	if cfg.Nodes >= OracleMinNodes {
		dm = graph.NewOracle(g, graph.OracleConfig{Seed: cfg.Seed})
	} else {
		m := graph.NewMetric(g)
		m.Precompute(0)
		dm = m
	}
	ov, err := hier.Build(g, dm, hier.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("serve: building overlay: %w", err)
	}
	s := &Server{
		cfg:   cfg,
		g:     g,
		dm:    dm,
		ov:    ov,
		root:  ov.Root().Host,
		agg:   live.New("serve", live.Config{SampleSize: cfg.SampleSize, Seed: cfg.Seed}),
		start: time.Now(),
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard(i, s, g, ov))
	}
	s.mux = s.buildMux()
	return s, nil
}

// splitmix64 is the SplitMix64 finalizer — the same mixer the seed
// streams and fault plans use — here hashing object IDs onto shards.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// shardFor maps an object to its owning shard. The hash decorrelates
// shard load from dense client ID ranges (o, o+1, ... spread evenly).
func (s *Server) shardFor(o core.ObjectID) *shard {
	return s.shards[splitmix64(uint64(int64(o)))%uint64(len(s.shards))]
}

// Graph returns the shared sensor network.
func (s *Server) Graph() *graph.Graph { return s.g }

// Root returns the overlay root sensor (failing it downs every trail).
func (s *Server) Root() graph.NodeID { return s.root }

// Location returns object o's current proxy on its owning shard —
// a direct (non-HTTP) read for tests and invariant checks; valid even
// after Shutdown.
func (s *Server) Location(o core.ObjectID) (graph.NodeID, bool) {
	return s.shardFor(o).tr.Location(o)
}

// Handler returns the server's HTTP handler (the /v1 API plus the
// /debug endpoints), for tests and callers that bring their own
// listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a graceful drain, matching net/http.
func (s *Server) Serve(ln net.Listener) error {
	s.httpMu.Lock()
	if s.httpSrv == nil {
		s.httpSrv = &http.Server{Handler: s.mux}
	}
	srv := s.httpSrv
	s.httpMu.Unlock()
	return srv.Serve(ln)
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown drains the server in dependency order: stop admitting
// requests (new arrivals answer 503), let in-flight handlers finish —
// which flushes the move queues, because a move handler only returns
// once its batch applied — then stop the drain loops, and finally the
// shard trackers. Acknowledged moves are therefore always applied
// before their trackers stop: a drain loses nothing a client was told
// succeeded. Idempotent and safe to call concurrently; every call
// returns the first drain's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		var err error
		s.httpMu.Lock()
		srv := s.httpSrv
		s.httpMu.Unlock()
		if srv != nil {
			if err = srv.Shutdown(ctx); err != nil {
				// Drain budget exhausted: cut stragglers. The listener is
				// already closed, so nothing new gets in either way.
				err = srv.Close()
			}
		}
		for _, sh := range s.shards {
			sh.stopLoop()
		}
		for _, sh := range s.shards {
			sh.loops.Wait()
		}
		for _, sh := range s.shards {
			sh.tr.Stop()
		}
		s.closeErr = err
	})
	return s.closeErr
}

// newInjector builds a shard's fault injector for ChaosAdmin mode:
// zero spontaneous fault rates — drills drive explicit Crash/Recover —
// with the configured retransmission budget so traffic through a
// failed sensor surfaces a DeliveryError instead of hanging.
func newInjector(cfg Config, shardID int, n int) *chaos.Injector {
	if !cfg.ChaosAdmin {
		return nil
	}
	return chaos.NewInjector(chaos.Config{
		Seed:        cfg.Seed + int64(shardID),
		MaxAttempts: cfg.MaxAttempts,
	}, n)
}

// newShard starts shard i's tracker and drain loop.
func newShard(i int, s *Server, g *graph.Graph, ov overlay.Overlay) *shard {
	lrec := live.New(fmt.Sprintf("serve-shard-%d", i), live.Config{
		SampleSize: s.cfg.SampleSize,
		Seed:       s.cfg.Seed + int64(i),
	})
	sh := &shard{
		id:    i,
		srv:   s,
		live:  lrec,
		tr:    runtime.NewLive(g, ov, newInjector(s.cfg, i, g.N()), nil, lrec),
		moveQ: make(chan moveReq, s.cfg.QueueDepth),
		sem:   make(chan struct{}, s.cfg.Inflight),
		quit:  make(chan struct{}),
	}
	sh.loops.Go(sh.drainLoop)
	return sh
}
