// Package zdat implements the Z-DAT baseline (Lin, Peng & Tseng, IEEE TMC
// 2006): the Zone-based Deviation-Avoidance Tree, plus its shortcuts
// variant (message-pruning tree with shortcuts, Liu et al. 2008).
//
// The deviation-avoidance rule keeps every node's tree path to the sink a
// shortest path in G (zero deviation), while the detection rates make the
// tree traffic-conscious: among a node's shortest-path-preserving parent
// candidates, the highest-rate adjacency is linked first, so frequently
// crossed edges become tree edges. Z-DAT's zones divide the sensing region
// into 4^depth rectangular zones; parent candidates inside the node's own
// zone are preferred to keep subtrees geographically local.
package zdat

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/mobility"
	"repro/internal/treedir"
)

// Config parameterizes the Z-DAT construction.
type Config struct {
	// ZoneDepth is the recursive quadrant-division depth delta; the region
	// is split into 4^ZoneDepth rectangular zones. Zero means plain DAT
	// (one zone).
	ZoneDepth int
	// Shortcuts enables the shortcuts query variant: descend from the
	// discovery node straight to the proxy along the graph shortest path.
	Shortcuts bool
	// Sink is the tree root; Undefined selects the metric center, the
	// natural sink placement.
	Sink graph.NodeID
}

// BuildTree constructs the Z-DAT spanning tree.
func BuildTree(g *graph.Graph, m *graph.Metric, rates map[mobility.EdgeKey]float64, cfg Config) (*treedir.Tree, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("zdat: empty graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("zdat: graph must be connected")
	}
	sink := cfg.Sink
	if sink == graph.Undefined || int(sink) >= n {
		sink = m.Center()
	}
	zones := zoneIDs(g, cfg.ZoneDepth)

	tr := treedir.NewTree()
	leaf := make([]int, n)
	for u := 0; u < n; u++ {
		id, err := tr.AddLeaf(graph.NodeID(u))
		if err != nil {
			return nil, err
		}
		leaf[u] = id
	}
	toSink := m.Row(sink)
	rate := func(a, b graph.NodeID) float64 {
		return rates[mobility.MakeEdgeKey(a, b)]
	}
	const eps = 1e-9
	for u := 0; u < n; u++ {
		if graph.NodeID(u) == sink {
			continue
		}
		// Deviation avoidance: only neighbors on a shortest path to the
		// sink qualify. Prefer same-zone candidates, then higher rate,
		// then smaller ID.
		var best graph.NodeID = graph.Undefined
		bestZone, bestRate := false, -1.0
		g.Neighbors(graph.NodeID(u), func(v graph.NodeID, w float64) bool {
			if math.Abs(toSink[v]+w-toSink[u]) > eps {
				return true // would deviate
			}
			sameZone := zones[v] == zones[u]
			r := rate(graph.NodeID(u), v)
			better := false
			switch {
			case best == graph.Undefined:
				better = true
			case sameZone != bestZone:
				better = sameZone
			case r != bestRate:
				better = r > bestRate
			default:
				better = v < best
			}
			if better {
				best, bestZone, bestRate = v, sameZone, r
			}
			return true
		})
		if best == graph.Undefined {
			return nil, fmt.Errorf("zdat: node %d has no shortest-path parent toward sink %d", u, sink)
		}
		if err := tr.SetParent(leaf[u], leaf[best]); err != nil {
			return nil, err
		}
	}
	if err := tr.Finalize(); err != nil {
		return nil, err
	}
	return tr, nil
}

// zoneIDs assigns each sensor its rectangular zone index at the configured
// quadrant depth. Graphs without geometric embeddings fall back to a single
// zone (plain DAT).
func zoneIDs(g *graph.Graph, depth int) []int {
	n := g.N()
	zones := make([]int, n)
	if depth <= 0 || !g.HasPositions() {
		return zones
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for u := 0; u < n; u++ {
		p := g.Position(graph.NodeID(u))
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	side := 1 << depth
	spanX, spanY := maxX-minX, maxY-minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	for u := 0; u < n; u++ {
		p := g.Position(graph.NodeID(u))
		zx := int(float64(side) * (p.X - minX) / (spanX * (1 + 1e-12)))
		zy := int(float64(side) * (p.Y - minY) / (spanY * (1 + 1e-12)))
		if zx >= side {
			zx = side - 1
		}
		if zy >= side {
			zy = side - 1
		}
		zones[u] = zy*side + zx
	}
	return zones
}

// New builds a Z-DAT directory (climbing queries; shortcuts per config).
func New(g *graph.Graph, m *graph.Metric, rates map[mobility.EdgeKey]float64, cfg Config) (*treedir.Directory, error) {
	tr, err := BuildTree(g, m, rates, cfg)
	if err != nil {
		return nil, err
	}
	return treedir.New(tr, m, treedir.Config{Shortcuts: cfg.Shortcuts})
}
