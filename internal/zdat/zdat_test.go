package zdat

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mobility"
)

func rates(t testing.TB, g *graph.Graph, m *graph.Metric, seed int64) (*mobility.Workload, map[mobility.EdgeKey]float64) {
	t.Helper()
	w, err := mobility.Generate(g, m, mobility.Config{Objects: 8, MovesPerObject: 80, Queries: 40, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return w, w.DetectionRates(g)
}

func TestBuildTreeRejectsBadGraph(t *testing.T) {
	if _, err := BuildTree(graph.New(0), graph.NewMetric(graph.New(0)), nil, Config{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	g := graph.New(2)
	if _, err := BuildTree(g, graph.NewMetric(g), nil, Config{}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

// Deviation avoidance: every node's tree-path length to the sink equals its
// graph distance to the sink (the defining DAT property).
func TestZeroDeviation(t *testing.T) {
	g := graph.Grid(7, 7)
	m := graph.NewMetric(g)
	_, r := rates(t, g, m, 1)
	for _, depth := range []int{0, 1, 2} {
		tr, err := BuildTree(g, m, r, Config{ZoneDepth: depth, Sink: graph.Undefined})
		if err != nil {
			t.Fatal(err)
		}
		sink := m.Center()
		for u := 0; u < g.N(); u++ {
			treeDist := 0.0
			id := tr.Leaf(graph.NodeID(u))
			for tr.Parent(id) != -1 {
				p := tr.Parent(id)
				treeDist += m.Dist(tr.Host(id), tr.Host(p))
				id = p
			}
			if tr.Host(id) != sink {
				t.Fatalf("depth %d: root hosted at %d, sink %d", depth, tr.Host(id), sink)
			}
			if math.Abs(treeDist-m.Dist(graph.NodeID(u), sink)) > 1e-9 {
				t.Fatalf("depth %d: node %d tree dist %v, graph dist %v",
					depth, u, treeDist, m.Dist(graph.NodeID(u), sink))
			}
		}
	}
}

func TestExplicitSink(t *testing.T) {
	g := graph.Grid(5, 5)
	m := graph.NewMetric(g)
	tr, err := BuildTree(g, m, nil, Config{Sink: 0})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Host(tr.Root()) != 0 {
		t.Fatalf("root host %d, want sink 0", tr.Host(tr.Root()))
	}
}

func TestRatePreferenceAmongShortestPathParents(t *testing.T) {
	// Node 4 in a 3x3 grid (center) with sink at 0 has two shortest-path
	// parents: 1 and 3. The hotter edge must win.
	g := graph.Grid(3, 3)
	m := graph.NewMetric(g)
	hot := map[mobility.EdgeKey]float64{mobility.MakeEdgeKey(4, 3): 9, mobility.MakeEdgeKey(4, 1): 1}
	tr, err := BuildTree(g, m, hot, Config{Sink: 0})
	if err != nil {
		t.Fatal(err)
	}
	if p := tr.Parent(tr.Leaf(4)); tr.Host(p) != 3 {
		t.Fatalf("center parent hosted at %d, want 3 (hot edge)", tr.Host(p))
	}
	hot2 := map[mobility.EdgeKey]float64{mobility.MakeEdgeKey(4, 3): 1, mobility.MakeEdgeKey(4, 1): 9}
	tr2, err := BuildTree(g, m, hot2, Config{Sink: 0})
	if err != nil {
		t.Fatal(err)
	}
	if p := tr2.Parent(tr2.Leaf(4)); tr2.Host(p) != 1 {
		t.Fatalf("center parent hosted at %d, want 1 (hot edge)", tr2.Host(p))
	}
}

func TestZoneIDsPartition(t *testing.T) {
	g := graph.Grid(8, 8)
	zones := zoneIDs(g, 2) // 16 zones of 2x2... (8/4=2 per side)
	seen := map[int]int{}
	for _, z := range zones {
		if z < 0 || z >= 16 {
			t.Fatalf("zone %d out of range", z)
		}
		seen[z]++
	}
	if len(seen) != 16 {
		t.Fatalf("%d distinct zones, want 16", len(seen))
	}
	for z, c := range seen {
		if c != 4 {
			t.Fatalf("zone %d has %d sensors, want 4", z, c)
		}
	}
	// Depth 0 or missing positions: single zone.
	if z := zoneIDs(g, 0); z[5] != 0 {
		t.Fatal("depth 0 should be single zone")
	}
	noPos := graph.New(4)
	if z := zoneIDs(noPos, 3); z[1] != 0 {
		t.Fatal("no positions should fall back to single zone")
	}
}

func TestEndToEndBothVariants(t *testing.T) {
	g := graph.Grid(6, 6)
	m := graph.NewMetric(g)
	w, r := rates(t, g, m, 3)
	for _, shortcuts := range []bool{false, true} {
		d, err := New(g, m, r, Config{ZoneDepth: 2, Shortcuts: shortcuts})
		if err != nil {
			t.Fatal(err)
		}
		for o, at := range w.Initial {
			if err := d.Publish(core.ObjectID(o), at); err != nil {
				t.Fatal(err)
			}
		}
		for _, mv := range w.Moves {
			if err := d.Move(mv.Object, mv.To); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		finals := w.FinalLocations()
		for _, q := range w.Queries {
			got, _, err := d.Query(q.From, q.Object)
			if err != nil {
				t.Fatal(err)
			}
			if got != finals[q.Object] {
				t.Fatalf("shortcuts=%t: query said %d, want %d", shortcuts, got, finals[q.Object])
			}
		}
		if rr := d.Meter().MaintRatio(); rr < 1 {
			t.Fatalf("maintenance ratio %v", rr)
		}
	}
}

func TestShortcutsImproveQueries(t *testing.T) {
	g := graph.Grid(8, 8)
	m := graph.NewMetric(g)
	w, r := rates(t, g, m, 9)
	run := func(shortcuts bool) float64 {
		d, err := New(g, m, r, Config{ZoneDepth: 1, Shortcuts: shortcuts})
		if err != nil {
			t.Fatal(err)
		}
		for o, at := range w.Initial {
			if err := d.Publish(core.ObjectID(o), at); err != nil {
				t.Fatal(err)
			}
		}
		for _, mv := range w.Moves {
			if err := d.Move(mv.Object, mv.To); err != nil {
				t.Fatal(err)
			}
		}
		for _, q := range w.Queries {
			if _, _, err := d.Query(q.From, q.Object); err != nil {
				t.Fatal(err)
			}
		}
		return d.Meter().QueryCost
	}
	if plain, short := run(false), run(true); short > plain+1e-9 {
		t.Fatalf("shortcut queries cost more: %v vs %v", short, plain)
	}
}
