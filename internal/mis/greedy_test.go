package mis

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randomAdj builds a random symmetric adjacency over n nodes.
func randomAdj(rng *rand.Rand, n int, p float64) ([]graph.NodeID, Adjacency) {
	nodes := make([]graph.NodeID, n)
	nbr := make(map[graph.NodeID][]graph.NodeID, n)
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				u, v := graph.NodeID(i), graph.NodeID(j)
				nbr[u] = append(nbr[u], v)
				nbr[v] = append(nbr[v], u)
			}
		}
	}
	return nodes, func(u graph.NodeID) []graph.NodeID { return nbr[u] }
}

func TestGreedyIsMaximalIndependent(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nodes, adj := randomAdj(rng, 40, 0.15)
		prio := func(u graph.NodeID) uint64 { return uint64(u*u) % 17 } // collisions on purpose
		set := Greedy(nodes, adj, prio)
		if ok, why := Verify(nodes, adj, set); !ok {
			t.Fatalf("seed %d: %s", seed, why)
		}
		again := Greedy(nodes, adj, prio)
		if len(again) != len(set) {
			t.Fatalf("seed %d: non-deterministic size %d vs %d", seed, len(again), len(set))
		}
		for i := range set {
			if set[i] != again[i] {
				t.Fatalf("seed %d: non-deterministic member %d vs %d", seed, set[i], again[i])
			}
			if i > 0 && set[i-1] >= set[i] {
				t.Fatalf("seed %d: result not ID-sorted", seed)
			}
		}
	}
}

func TestGreedyLowestPriorityAlwaysIn(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nodes, adj := randomAdj(rng, 30, 0.2)
	prio := func(u graph.NodeID) uint64 { return uint64(100 + u) }
	set := Greedy(nodes, adj, prio)
	if len(set) == 0 || set[0] != nodes[0] {
		// Node 0 has the strictly lowest (prio, id) pair, so nothing can
		// block it from the greedy MIS.
		t.Fatalf("lowest-priority node missing from %v", set)
	}
}
