package mis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func graphAdj(g *graph.Graph) Adjacency {
	return func(u graph.NodeID) []graph.NodeID { return g.NeighborIDs(u) }
}

func allNodes(g *graph.Graph) []graph.NodeID {
	nodes := make([]graph.NodeID, g.N())
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	return nodes
}

func TestLubyOnGridIsMaximalIndependent(t *testing.T) {
	g := graph.Grid(8, 8)
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		set := Luby(allNodes(g), graphAdj(g), rng)
		ok, why := Verify(allNodes(g), graphAdj(g), set)
		if !ok {
			t.Fatalf("seed %d: %s (set %v)", seed, why, set)
		}
		if len(set) == 0 {
			t.Fatalf("seed %d: empty MIS on non-empty graph", seed)
		}
	}
}

func TestLubyEmptyAndSingleton(t *testing.T) {
	g := graph.New(1)
	rng := rand.New(rand.NewSource(1))
	set := Luby(nil, graphAdj(g), rng)
	if len(set) != 0 {
		t.Fatalf("MIS of empty node set: %v", set)
	}
	set = Luby([]graph.NodeID{0}, graphAdj(g), rng)
	if len(set) != 1 || set[0] != 0 {
		t.Fatalf("MIS of singleton: %v", set)
	}
}

func TestLubyEdgelessIncludesAll(t *testing.T) {
	g := graph.New(7)
	rng := rand.New(rand.NewSource(3))
	set := Luby(allNodes(g), graphAdj(g), rng)
	if len(set) != 7 {
		t.Fatalf("MIS of edgeless graph has %d nodes, want 7", len(set))
	}
}

func TestLubyCliqueSelectsOne(t *testing.T) {
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.MustAddEdge(graph.NodeID(i), graph.NodeID(j), 1)
		}
	}
	rng := rand.New(rand.NewSource(9))
	set := Luby(allNodes(g), graphAdj(g), rng)
	if len(set) != 1 {
		t.Fatalf("MIS of K6 has %d nodes, want 1", len(set))
	}
}

func TestLubySubsetOfNodes(t *testing.T) {
	// MIS over only the even nodes of a path: odd nodes invisible.
	g := graph.Path(10)
	evens := []graph.NodeID{0, 2, 4, 6, 8}
	// In the induced subgraph the evens have no edges, so all are in.
	rng := rand.New(rand.NewSource(5))
	adj := func(u graph.NodeID) []graph.NodeID {
		var out []graph.NodeID
		for _, v := range g.NeighborIDs(u) {
			if v%2 == 0 {
				out = append(out, v)
			}
		}
		return out
	}
	set := Luby(evens, adj, rng)
	if len(set) != 5 {
		t.Fatalf("induced MIS %v", set)
	}
}

func TestLubyParallelMatchesSequential(t *testing.T) {
	g := graph.Grid(9, 9)
	for seed := int64(0); seed < 8; seed++ {
		s1 := Luby(allNodes(g), graphAdj(g), rand.New(rand.NewSource(seed)))
		s2 := LubyParallel(allNodes(g), graphAdj(g), rand.New(rand.NewSource(seed)))
		if len(s1) != len(s2) {
			t.Fatalf("seed %d: sizes differ %d vs %d", seed, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("seed %d: sets differ at %d: %v vs %v", seed, i, s1, s2)
			}
		}
	}
}

func TestLubyParallelIsMaximalIndependent(t *testing.T) {
	g := graph.Ring(30)
	rng := rand.New(rand.NewSource(17))
	set := LubyParallel(allNodes(g), graphAdj(g), rng)
	ok, why := Verify(allNodes(g), graphAdj(g), set)
	if !ok {
		t.Fatalf("%s: %v", why, set)
	}
	// Ring MIS size between n/3 and n/2.
	if len(set) < 10 || len(set) > 15 {
		t.Fatalf("ring-30 MIS size %d outside [10,15]", len(set))
	}
}

func TestVerifyDetectsViolations(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	nodes := allNodes(g)
	adj := graphAdj(g)
	if ok, _ := Verify(nodes, adj, []graph.NodeID{0, 1}); ok {
		t.Fatal("Verify accepted dependent set {0,1}")
	}
	if ok, _ := Verify(nodes, adj, []graph.NodeID{0}); ok {
		t.Fatal("Verify accepted non-maximal set {0}")
	}
	if ok, _ := Verify(nodes, adj, []graph.NodeID{9}); ok {
		t.Fatal("Verify accepted out-of-universe member")
	}
	if ok, why := Verify(nodes, adj, []graph.NodeID{0, 2}); !ok {
		t.Fatalf("Verify rejected valid MIS {0,2}: %s", why)
	}
	if ok, why := Verify(nodes, adj, []graph.NodeID{1, 3}); !ok {
		t.Fatalf("Verify rejected valid MIS {1,3}: %s", why)
	}
}

// Property: Luby output on random geometric graphs is always a valid MIS.
func TestQuickLubyAlwaysValid(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 5 + int(sz)%40
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomGeometric(n, 6, 2, rng)
		set := Luby(allNodes(g), graphAdj(g), rng)
		ok, _ := Verify(allNodes(g), graphAdj(g), set)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLubyGrid32(b *testing.B) {
	g := graph.Grid(32, 32)
	nodes := allNodes(g)
	adj := graphAdj(g)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Luby(nodes, adj, rand.New(rand.NewSource(int64(i))))
	}
}
