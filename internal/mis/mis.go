// Package mis implements Luby's randomized distributed Maximal Independent
// Set algorithm (Luby, STOC 1985), the building block the paper uses to
// select the leader nodes of each level of the tracking hierarchy HS (§2.2).
//
// Two realizations are provided with identical semantics: Luby runs the
// per-round logic sequentially (deterministic given the seed), and
// LubyParallel runs one goroutine per node per round with channel
// synchronization, mirroring the distributed execution on real sensors.
package mis

import (
	"math/rand"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/runtime/track"
)

// Adjacency reports the neighbors of a node in the (level) graph on which
// the MIS is computed. It must be symmetric: v in adj(u) iff u in adj(v).
type Adjacency func(u graph.NodeID) []graph.NodeID

const (
	statusActive = iota
	statusIn
	statusOut
)

// Luby computes a maximal independent set of the graph induced by nodes and
// adj, using Luby's algorithm: in each round every still-active node draws
// a random priority, joins the MIS if its priority beats all active
// neighbors (ties broken by node ID), and then MIS members and their
// neighbors retire. The result is sorted by node ID. rng must not be nil.
func Luby(nodes []graph.NodeID, adj Adjacency, rng *rand.Rand) []graph.NodeID {
	status := make(map[graph.NodeID]int, len(nodes))
	for _, u := range nodes {
		status[u] = statusActive
	}
	active := append([]graph.NodeID(nil), nodes...)
	sort.Slice(active, func(i, j int) bool { return active[i] < active[j] })

	var result []graph.NodeID
	for len(active) > 0 {
		prio := make(map[graph.NodeID]float64, len(active))
		for _, u := range active {
			prio[u] = rng.Float64()
		}
		var joined []graph.NodeID
		for _, u := range active {
			wins := true
			for _, v := range adj(u) {
				if status[v] != statusActive {
					continue
				}
				pv := prio[v]
				if pv < prio[u] || (pv == prio[u] && v < u) {
					wins = false
					break
				}
			}
			if wins {
				joined = append(joined, u)
			}
		}
		for _, u := range joined {
			status[u] = statusIn
			result = append(result, u)
			for _, v := range adj(u) {
				if status[v] == statusActive {
					status[v] = statusOut
				}
			}
		}
		next := active[:0]
		for _, u := range active {
			if status[u] == statusActive {
				next = append(next, u)
			}
		}
		active = next
	}
	sort.Slice(result, func(i, j int) bool { return result[i] < result[j] })
	return result
}

// LubyParallel computes an MIS with the same round structure as Luby but
// evaluates each round's win condition concurrently, one goroutine per
// active node — the shape of the actual distributed algorithm, where each
// sensor exchanges priorities with neighbors and decides locally. Given the
// same rng seed it returns the same set as Luby (priorities are drawn
// centrally per round in node-ID order to keep the stream deterministic).
func LubyParallel(nodes []graph.NodeID, adj Adjacency, rng *rand.Rand) []graph.NodeID {
	status := sync.Map{} // graph.NodeID -> int
	for _, u := range nodes {
		status.Store(u, statusActive)
	}
	active := append([]graph.NodeID(nil), nodes...)
	sort.Slice(active, func(i, j int) bool { return active[i] < active[j] })

	stat := func(u graph.NodeID) int {
		v, ok := status.Load(u)
		if !ok {
			return statusOut
		}
		return v.(int)
	}

	var result []graph.NodeID
	for len(active) > 0 {
		prio := make(map[graph.NodeID]float64, len(active))
		for _, u := range active {
			prio[u] = rng.Float64()
		}
		wins := make([]bool, len(active))
		var round track.Group
		for i, u := range active {
			round.Go(func() {
				w := true
				for _, v := range adj(u) {
					if stat(v) != statusActive {
						continue
					}
					pv, ok := prio[v]
					if !ok {
						continue
					}
					if pv < prio[u] || (pv == prio[u] && v < u) {
						w = false
						break
					}
				}
				wins[i] = w
			})
		}
		round.Wait()
		for i, u := range active {
			if wins[i] {
				status.Store(u, statusIn)
				result = append(result, u)
			}
		}
		for i, u := range active {
			if wins[i] {
				for _, v := range adj(u) {
					if stat(v) == statusActive {
						status.Store(v, statusOut)
					}
				}
			}
		}
		next := active[:0]
		for _, u := range active {
			if stat(u) == statusActive {
				next = append(next, u)
			}
		}
		active = next
	}
	sort.Slice(result, func(i, j int) bool { return result[i] < result[j] })
	return result
}

// Verify checks that set is an independent and maximal subset of nodes
// under adj, returning false with a reason when it is not. Used by tests
// and by the hierarchy's self-checks.
func Verify(nodes []graph.NodeID, adj Adjacency, set []graph.NodeID) (bool, string) {
	in := make(map[graph.NodeID]bool, len(set))
	universe := make(map[graph.NodeID]bool, len(nodes))
	for _, u := range nodes {
		universe[u] = true
	}
	for _, u := range set {
		if !universe[u] {
			return false, "set member not in node universe"
		}
		in[u] = true
	}
	for _, u := range set {
		for _, v := range adj(u) {
			if in[v] && v != u {
				return false, "set not independent"
			}
		}
	}
	for _, u := range nodes {
		if in[u] {
			continue
		}
		dominated := false
		for _, v := range adj(u) {
			if in[v] {
				dominated = true
				break
			}
		}
		if !dominated {
			return false, "set not maximal"
		}
	}
	return true, ""
}
