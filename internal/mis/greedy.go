package mis

import (
	"sort"

	"repro/internal/graph"
)

// Greedy computes the lexicographically-first maximal independent set of
// the graph induced by nodes and adj under the order (prio(u), u): nodes
// are visited in ascending priority (ties broken by node ID) and selected
// whenever no already-selected neighbor exists. The result is sorted by
// node ID.
//
// Unlike Luby, the greedy MIS is a pure function of the priority
// assignment: u is selected iff no neighbor v with (prio(v), v) <
// (prio(u), u) is selected. That characterization has a unique fixpoint,
// which is what makes local incremental repair possible — hier.Repair
// re-evaluates it only where eligibility changed and provably converges
// to the same set a full rebuild would compute.
func Greedy(nodes []graph.NodeID, adj Adjacency, prio func(graph.NodeID) uint64) []graph.NodeID {
	order := append([]graph.NodeID(nil), nodes...)
	sort.Slice(order, func(i, j int) bool {
		pi, pj := prio(order[i]), prio(order[j])
		if pi != pj {
			return pi < pj
		}
		return order[i] < order[j]
	})
	selected := make(map[graph.NodeID]bool, len(nodes))
	var result []graph.NodeID
	for _, u := range order {
		blocked := false
		for _, v := range adj(u) {
			if selected[v] {
				blocked = true
				break
			}
		}
		if !blocked {
			selected[u] = true
			result = append(result, u)
		}
	}
	sort.Slice(result, func(i, j int) bool { return result[i] < result[j] })
	return result
}
