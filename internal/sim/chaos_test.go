package sim

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/chaos"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/mobility"
)

// fakeInjector scripts delivery fates for engine-level tests.
type fakeInjector struct {
	dropAll  bool
	dropN    int // drop the first N attempts of every message
	extra    float64
	max      int
	backoff  float64
	failures int
}

func (f *fakeInjector) Attempt(op uint64, hop, attempt int, dest graph.NodeID, dist, now float64) (bool, float64) {
	if f.dropAll || attempt <= f.dropN {
		return true, 0
	}
	return false, f.extra
}
func (f *fakeInjector) MaxAttempts() int            { return f.max }
func (f *fakeInjector) Backoff(attempt int) float64 { return f.backoff }
func (f *fakeInjector) Fail(op uint64, hop, attempts int, dest graph.NodeID, now float64) error {
	f.failures++
	return &chaos.DeliveryError{Op: op, Hop: hop, Attempts: attempts, Dest: dest}
}

// Without an injector, Deliver must be byte-identical to After(dist, fn).
func TestChaosDeliverFaultFreeMatchesAfter(t *testing.T) {
	e := NewEngine(0)
	attempts, at := 0, -1.0
	e.Deliver(Delivery{Op: 1, Hop: 1, Dest: 3, Dist: 2.5,
		OnAttempt: func(int) { attempts++ },
		Fn:        func() { at = e.Now() }})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if attempts != 1 || at != 2.5 {
		t.Fatalf("attempts=%d deliveredAt=%v, want 1 and 2.5", attempts, at)
	}
}

// Dropped attempts retry after timeout+backoff and eventually deliver.
func TestChaosDeliverRetriesThenDelivers(t *testing.T) {
	e := NewEngine(0)
	f := &fakeInjector{dropN: 2, max: 5, backoff: 3}
	e.SetFaults(f)
	attempts, at := 0, -1.0
	e.Deliver(Delivery{Op: 1, Hop: 1, Dest: 0, Dist: 2,
		OnAttempt: func(int) { attempts++ },
		Fn:        func() { at = e.Now() },
		OnFail:    func(error) { t.Fatal("unexpected failure") }})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Two drops: each costs dist(2)+backoff(3); third attempt travels 2.
	if attempts != 3 || at != 12 {
		t.Fatalf("attempts=%d deliveredAt=%v, want 3 and 12", attempts, at)
	}
}

// Exhausting the budget surfaces the typed error via OnFail.
func TestChaosDeliverFailsAfterMaxAttempts(t *testing.T) {
	e := NewEngine(0)
	f := &fakeInjector{dropAll: true, max: 3, backoff: 1}
	e.SetFaults(f)
	var got error
	e.Deliver(Delivery{Op: 7, Hop: 2, Dest: 5, Dist: 1,
		Fn:     func() { t.Fatal("delivered despite dropAll") },
		OnFail: func(err error) { got = err }})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var de *chaos.DeliveryError
	if !errors.As(got, &de) {
		t.Fatalf("OnFail got %T %v, want *chaos.DeliveryError", got, got)
	}
	if de.Op != 7 || de.Attempts != 3 || de.Dest != 5 {
		t.Fatalf("DeliveryError = %+v", de)
	}
	if f.failures != 1 {
		t.Fatalf("Fail called %d times", f.failures)
	}
}

// chaosSim builds a seeded grid simulation with a scheduled workload.
func chaosSim(t *testing.T, n int, seed int64, cfg Config) (*Engine, *MOTSim, float64, int) {
	t.Helper()
	g := graph.NearSquareGrid(n)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: seed, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(0)
	s, err := NewMOT(hs, eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mobility.Generate(g, m, mobility.Config{Objects: 4, MovesPerObject: 20, Queries: 12, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	horizon, err := Schedule(s, w, DriverConfig{Diameter: m.Diameter(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return eng, s, horizon, g.N()
}

// Across seeds and fault mixes, every chaotic run must end quiescent and
// globally consistent — the recovery invariant of the fault layer.
func TestChaosSimInvariantsAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		for _, redirects := range []bool{false, true} {
			eng, s, horizon, n := chaosSim(t, 36, seed, Config{PeriodSync: true, Redirects: redirects})
			inj := chaos.NewInjector(chaos.Config{
				Seed: seed, DropRate: 0.2, DelayRate: 0.25,
				CrashRate: 0.15, CrashSpan: 0.4, Horizon: horizon,
				MaxAttempts: 5,
			}, n)
			eng.SetFaults(inj)
			if err := eng.Run(); err != nil {
				t.Fatalf("seed %d redirects %v: %v", seed, redirects, err)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("seed %d redirects %v: %v\ntrace:\n%s", seed, redirects, err, inj.Trace().Render())
			}
		}
	}
}

// With a one-attempt budget and aggressive drops, moves must fail, the
// repair path must re-stamp trails (RecoveryOps > 0), and the directory
// must still be consistent at quiescence.
func TestChaosSimRepairsLostMoves(t *testing.T) {
	eng, s, _, n := chaosSim(t, 36, 3, Config{PeriodSync: true})
	inj := chaos.NewInjector(chaos.Config{Seed: 3, DropRate: 0.5, MaxAttempts: 1}, n)
	eng.SetFaults(inj)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after repairs: %v", err)
	}
	if len(s.Lost()) == 0 {
		t.Fatal("no operations lost despite DropRate=0.5 with MaxAttempts=1")
	}
	meter := s.Meter()
	if meter.RecoveryOps == 0 || meter.RecoveryCost <= 0 {
		t.Fatalf("repair path not exercised: %d ops, cost %v", meter.RecoveryOps, meter.RecoveryCost)
	}
	if len(s.Errors()) != 0 {
		t.Fatalf("protocol errors under chaos: %v", s.Errors())
	}
}

// Replaying the same simulation with the same chaos seed must reproduce the
// fault trace and meter byte for byte; a different chaos seed must not.
func TestChaosSimTraceReplays(t *testing.T) {
	run := func(chaosSeed int64) (string, string) {
		eng, s, horizon, n := chaosSim(t, 36, 5, Config{PeriodSync: true})
		inj := chaos.NewInjector(chaos.Config{
			Seed: chaosSeed, DropRate: 0.25, DelayRate: 0.2,
			CrashRate: 0.1, CrashSpan: 0.3, Horizon: horizon, MaxAttempts: 4,
		}, n)
		eng.SetFaults(inj)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return inj.Trace().Render(), fmt.Sprintf("%+v", s.Meter())
	}
	t1, m1 := run(42)
	t2, m2 := run(42)
	if t1 != t2 || m1 != m2 {
		t.Fatal("same chaos seed did not replay byte-identically")
	}
	t3, _ := run(43)
	if t1 == t3 {
		t.Fatal("different chaos seeds produced identical traces")
	}
}

// A quiescent chaotic run leaves parked queries released: every waiter map
// must be empty after the run (queries either completed, were lost, or
// chased a repaired proxy).
func TestChaosSimNoStrandedWaiters(t *testing.T) {
	eng, s, horizon, n := chaosSim(t, 49, 7, Config{PeriodSync: true})
	inj := chaos.NewInjector(chaos.Config{
		Seed: 7, DropRate: 0.3, CrashRate: 0.2, CrashSpan: 0.5,
		Horizon: horizon, MaxAttempts: 3,
	}, n)
	eng.SetFaults(inj)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, byObj := range s.waiters {
		for o, ws := range byObj {
			if len(ws) > 0 {
				t.Fatalf("stranded waiters for object %d at slot %v", o, k)
			}
		}
	}
	// Every completed query found the true proxy at its completion time
	// (complete() requires it); count sanity only.
	if len(s.Results())+len(s.Lost()) == 0 {
		t.Fatal("no queries completed or were lost")
	}
}
