package sim

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/mobility"
)

// The improved concurrent query handling (§3): forwarding tombstones left
// by deletes let queries that lost the trail jump toward the new proxy
// instead of re-climbing.
func TestRedirectsStillCorrect(t *testing.T) {
	g := graph.Grid(8, 8)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: 1, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	w, err := mobility.Generate(g, m, mobility.Config{Objects: 6, MovesPerObject: 40, Queries: 80, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for _, redirects := range []bool{false, true} {
		eng := NewEngine(0)
		s, err := NewMOT(hs, eng, Config{Redirects: redirects})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Schedule(s, w, DriverConfig{Diameter: m.Diameter(), Seed: 13}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("redirects=%t: %v", redirects, err)
		}
		if got := len(s.Results()); got != len(w.Queries) {
			t.Fatalf("redirects=%t: %d of %d queries completed", redirects, got, len(w.Queries))
		}
	}
}

// With redirects, a query racing a burst of moves follows tombstones and
// completes with no more restarts than the plain re-climb strategy.
func TestRedirectsBoundRestarts(t *testing.T) {
	g := graph.Grid(10, 10)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: 2, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	run := func(redirects bool) (restarts int) {
		eng := NewEngine(0)
		s, err := NewMOT(hs, eng, Config{Redirects: redirects})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Publish(1, 0); err != nil {
			t.Fatal(err)
		}
		// A long run of rapid moves along the bottom row with queries
		// launched mid-flight from the far corner.
		for i := 1; i <= 9; i++ {
			if err := s.IssueMove(1, graph.NodeID(i), float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 5; i++ {
			if err := s.IssueQuery(99, 1, float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, r := range s.Results() {
			if r.Found != 9 {
				t.Fatalf("redirects=%t: query found %d", redirects, r.Found)
			}
			total += r.Restarts
		}
		return total
	}
	plain := run(false)
	redirected := run(true)
	if redirected > plain {
		t.Fatalf("redirects increased restarts: %d vs %d", redirected, plain)
	}
}

// Tree baselines support the same forwarding-tombstone redirects.
func TestTreeRedirectsStillCorrect(t *testing.T) {
	g := graph.Grid(7, 7)
	m := graph.NewMetric(g)
	w, err := mobility.Generate(g, m, mobility.Config{Objects: 5, MovesPerObject: 30, Queries: 40, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, redirects := range []bool{false, true} {
		s, eng := buildTreeSim(t, g, m, w, false, false)
		s.cfg.Redirects = redirects
		if _, err := Schedule(s, w, DriverConfig{Diameter: m.Diameter(), Seed: 6}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("redirects=%t: %v", redirects, err)
		}
		if got := len(s.Results()); got != len(w.Queries) {
			t.Fatalf("redirects=%t: %d of %d queries", redirects, got, len(w.Queries))
		}
	}
}
