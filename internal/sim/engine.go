// Package sim provides a discrete-event simulation of concurrent MOT and
// baseline executions (the paper's "concurrent case", §4.1.2 and §4.2.2).
//
// Time is measured in the paper's unit: the duration a message needs to
// travel unit distance, so delivering a message between hosts u and v takes
// dist(u, v) time. Maintenance operations for the same object may overlap
// in flight; the simulator enforces the paper's two concurrency mechanisms:
//
//   - per-level periods Φ(i) = 2^i·φ gate when an operation may cross from
//     level i to i+1 (§4.1.2), and
//   - same-object maintenance operations are pipelined — operation v may not
//     process level k before operation v-1 has finished processing level k —
//     the ordering that the ID-ordered parent-set probing of §3.1 provides
//     in the message-passing algorithm.
//
// Queries run fully concurrently with maintenance: a query that loses the
// trail restarts its climb from where it stands, and one that reaches a
// stale proxy waits for the delete message, which carries the new proxy
// (§3, "In this way, queries can be successful even while a move is in
// progress").
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/graph"
	"repro/internal/obs"
)

// event is a scheduled continuation.
type event struct {
	at  float64
	seq int64 // FIFO tie-break for equal times
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event executor.
type Engine struct {
	now    float64
	seq    int64
	events eventHeap
	steps  int64
	limit  int64
	faults FaultInjector
	obs    *obs.Recorder
}

// NewEngine returns an engine with the given step limit (a safety net
// against runaway simulations; <= 0 means a generous default).
func NewEngine(limit int64) *Engine {
	if limit <= 0 {
		limit = 200_000_000
	}
	return &Engine{limit: limit}
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute time t (clamped to now for past times).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn delay time units from now.
func (e *Engine) After(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// SetObs installs a recorder for the engine's queue-depth and step-count
// gauges; nil disables them.
func (e *Engine) SetObs(r *obs.Recorder) { e.obs = r }

// Run processes events until the queue drains. It returns an error if the
// step limit is exceeded (which indicates a protocol livelock).
func (e *Engine) Run() error {
	for e.events.Len() > 0 {
		if e.obs != nil {
			e.obs.GaugeMax("engine.queue", float64(e.events.Len()))
		}
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		e.steps++
		if e.steps > e.limit {
			return fmt.Errorf("sim: step limit %d exceeded at t=%v (livelock?)", e.limit, e.now)
		}
		ev.fn()
	}
	if e.obs != nil {
		e.obs.GaugeMax("engine.steps", float64(e.steps))
	}
	return nil
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.events.Len() }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() int64 { return e.steps }

// FaultInjector decides the fate of message deliveries. It is satisfied by
// chaos.Injector; sim does not import chaos so the simulator stays
// fault-agnostic when no injector is installed.
type FaultInjector interface {
	// Attempt decides one delivery attempt: drop it (retry after backoff)
	// or deliver it with extraDelay added to the travel time.
	Attempt(op uint64, hop, attempt int, dest graph.NodeID, dist, now float64) (drop bool, extraDelay float64)
	// MaxAttempts bounds retransmissions per message.
	MaxAttempts() int
	// Backoff returns the simulated-time wait after failed attempt k.
	Backoff(attempt int) float64
	// Fail builds the typed error surfaced when attempts are exhausted.
	Fail(op uint64, hop, attempts int, dest graph.NodeID, now float64) error
}

// Delivery is one message send through the fault layer.
type Delivery struct {
	// Op and Hop identify the message within its operation (the logical
	// key fault decisions hash).
	Op  uint64
	Hop int
	// Dest is the destination node, Dist the travel distance (= fault-free
	// travel time).
	Dest graph.NodeID
	Dist float64
	// OnAttempt is invoked once per transmission attempt, before its fate
	// is decided — the place to account retransmission cost.
	OnAttempt func(attempt int)
	// Fn runs at the destination when an attempt gets through.
	Fn func()
	// OnFail runs when MaxAttempts attempts all dropped. Nil panics the
	// simulation (callers must handle failure when faults are installed).
	OnFail func(err error)
}

// SetFaults installs a fault injector; nil restores fault-free delivery.
func (e *Engine) SetFaults(f FaultInjector) { e.faults = f }

// Deliver sends one message. Without an injector this is exactly
// After(d.Dist, d.Fn) plus the OnAttempt(1) accounting callback, so
// fault-free runs are byte-identical to the pre-chaos engine. With an
// injector, dropped attempts are retried after the attempt's timeout
// (Dist) plus exponential backoff, and exhausting the budget invokes
// OnFail with the injector's typed error.
func (e *Engine) Deliver(d Delivery) {
	if e.faults == nil {
		if d.OnAttempt != nil {
			d.OnAttempt(1)
		}
		e.After(d.Dist, d.Fn)
		return
	}
	e.deliverAttempt(d, 1)
}

func (e *Engine) deliverAttempt(d Delivery, attempt int) {
	if d.OnAttempt != nil {
		d.OnAttempt(attempt)
	}
	drop, extra := e.faults.Attempt(d.Op, d.Hop, attempt, d.Dest, d.Dist, e.now)
	if !drop {
		e.After(d.Dist+extra, d.Fn)
		return
	}
	if attempt >= e.faults.MaxAttempts() {
		err := e.faults.Fail(d.Op, d.Hop, attempt, d.Dest, e.now)
		if d.OnFail == nil {
			panic(fmt.Sprintf("sim: unhandled delivery failure: %v", err))
		}
		d.OnFail(err)
		return
	}
	// The sender learns of the loss after the attempt's timeout (one
	// travel time), then waits out the backoff before retransmitting.
	e.After(d.Dist+e.faults.Backoff(attempt), func() {
		e.deliverAttempt(d, attempt+1)
	})
}
