package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mobility"
)

// Target is a simulated tracking structure the concurrent driver can feed
// (MOTSim or TreeSim).
type Target interface {
	Publish(o core.ObjectID, at graph.NodeID) error
	IssueMove(o core.ObjectID, to graph.NodeID, at float64) error
	IssueQuery(from graph.NodeID, o core.ObjectID, at float64) error
}

// DriverConfig shapes the concurrent schedule. The defaults reproduce the
// paper's setting: bursts of up to 10 concurrent operations per object, the
// next object's burst starting after the previous object's burst window
// (§8: "we start 10 concurrent operations for some other object after 10
// concurrent operations for one object finished").
type DriverConfig struct {
	// Concurrency is the number of operations of one object issued
	// concurrently (the paper fixes 10).
	Concurrency int
	// Gap is the issue-time spacing between the operations of one burst.
	Gap float64
	// Window is the time allotted to one burst before the next object's
	// burst starts; <= 0 derives 2×(Concurrency×Gap + diameter).
	Window float64
	// Diameter of the network, used for the Window default.
	Diameter float64
	// Seed drives the burst ordering and query timing.
	Seed int64
}

func (c *DriverConfig) fill() {
	if c.Concurrency <= 0 {
		c.Concurrency = 10
	}
	if c.Gap <= 0 {
		c.Gap = 1
	}
	if c.Window <= 0 {
		c.Window = 2 * (float64(c.Concurrency)*c.Gap + c.Diameter)
	}
}

// Schedule publishes the workload's objects, schedules every move in
// concurrent bursts, and spreads the workload's queries uniformly over the
// busy horizon so they overlap maintenance. It returns the schedule horizon.
// Call eng.Run afterwards to execute.
func Schedule(target Target, w *mobility.Workload, cfg DriverConfig) (float64, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	for o, at := range w.Initial {
		if err := target.Publish(core.ObjectID(o), at); err != nil {
			return 0, fmt.Errorf("sim: publish %d: %w", o, err)
		}
	}
	// Per-object sequences, preserved order.
	seqs := make([][]mobility.Move, w.Objects)
	for _, mv := range w.Moves {
		seqs[mv.Object] = append(seqs[mv.Object], mv)
	}
	idx := make([]int, w.Objects)
	t := 0.0
	remaining := len(w.Moves)
	for remaining > 0 {
		// Pick a random object with moves left, take its next burst.
		o := rng.Intn(w.Objects)
		if idx[o] >= len(seqs[o]) {
			continue
		}
		burst := seqs[o][idx[o]:]
		if len(burst) > cfg.Concurrency {
			burst = burst[:cfg.Concurrency]
		}
		idx[o] += len(burst)
		remaining -= len(burst)
		for i, mv := range burst {
			if err := target.IssueMove(mv.Object, mv.To, t+float64(i)*cfg.Gap); err != nil {
				return 0, fmt.Errorf("sim: issue move: %w", err)
			}
		}
		t += cfg.Window
	}
	horizon := t
	if horizon <= 0 {
		horizon = 1
	}
	for _, q := range w.Queries {
		at := rng.Float64() * horizon
		if err := target.IssueQuery(q.From, q.Object, at); err != nil {
			return 0, fmt.Errorf("sim: issue query: %w", err)
		}
	}
	return horizon, nil
}
