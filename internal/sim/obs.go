package sim

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Observability hooks for the concurrent substrate. The logical clock is
// the engine's simulated time, and spans live on the in-flight operation
// structs because maintenance and queries overlap. Operation numbers are
// the simulator's own issue-order numbering (s.nextOp) — the same ids the
// fault layer hashes — so instrumentation never perturbs fault decisions;
// publishes, which the simulator does not number, use op 0 and are
// disambiguated by object in the export sort. Every hook reduces to one
// pointer test when Config.Obs is nil.

// obsSpan opens a span at the current simulated time.
//
//motlint:hotpath
func (s *MOTSim) obsSpan(kind string, id uint64, o core.ObjectID) obs.Span {
	if s.obs == nil {
		return obs.Span{}
	}
	return s.obs.StartSpan(kind, id, int(o), s.eng.Now())
}

// obsArrive accounts one message arrival at a station of the given level:
// a hop event on the span plus the per-level hop count.
//
//motlint:hotpath
func (s *MOTSim) obsArrive(sp obs.Span, level int, host graph.NodeID) {
	if s.obs == nil {
		return
	}
	s.obs.AddAt(obs.SeriesLevelHops, level, 1)
	sp.Event(obs.EvHop, level, int(host), 0, s.eng.Now())
}

// obsAttempt accounts one transmission attempt toward dest (retries
// included, mirroring the cost meter): the per-node traffic series, plus
// a retry event when the fault layer forced a retransmission.
//
//motlint:hotpath
func (s *MOTSim) obsAttempt(sp obs.Span, dest graph.NodeID, d float64, attempt int) {
	if s.obs == nil {
		return
	}
	s.obs.AddAt(obs.SeriesNodeMsgs, int(dest), 1)
	if attempt > 1 {
		sp.Event(obs.EvRetry, -1, int(dest), d, s.eng.Now())
	}
}
