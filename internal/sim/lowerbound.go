package sim

import (
	"repro/internal/graph"
	"repro/internal/mobility"
)

// SteinerLowerBound computes the §4.1.2 lower bound for concurrent
// maintenance: when a batch of maintenance operations for one object is in
// flight simultaneously, any algorithm must pay at least (half) the weight
// of a Steiner tree connecting the involved proxies. The workload's moves
// are grouped per object into bursts of the given concurrency; each
// burst's terminals are its source and destination proxies. The per-move
// distance lower bound (what the meters use) can be loose under
// concurrency; this bound is the batch-aware alternative the analysis
// uses. The returned value uses the metric-closure MST 2-approximation, so
// the true optimum lies within [result/2, result].
func SteinerLowerBound(m *graph.Metric, w *mobility.Workload, concurrency int) float64 {
	if concurrency <= 0 {
		concurrency = 10
	}
	seqs := make([][]graph.NodeID, w.Objects)
	for o, at := range w.Initial {
		seqs[o] = append(seqs[o], at)
	}
	for _, mv := range w.Moves {
		seqs[mv.Object] = append(seqs[mv.Object], mv.To)
	}
	total := 0.0
	for _, seq := range seqs {
		// seq = initial proxy followed by destinations; burst i covers
		// positions [1+i*c, 1+(i+1)*c) with the preceding proxy as the
		// burst's source terminal.
		for start := 1; start < len(seq); start += concurrency {
			end := start + concurrency
			if end > len(seq) {
				end = len(seq)
			}
			terminals := seq[start-1 : end]
			total += graph.SteinerApprox(m, terminals)
		}
	}
	return total
}
