package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/overlay"
)

// Config controls the concurrent MOT simulation.
type Config struct {
	// PhiBase is φ in the per-level period Φ(i) = 2^i·φ (§4.1.2); the
	// theory uses 2^(3ρ+6), experiments a small constant. Default 4.
	PhiBase float64
	// PeriodSync gates level crossings at period boundaries; disabling it
	// is an ablation (pipelining alone still guarantees consistency).
	PeriodSync bool
	// MaxRestarts bounds the number of times one query may restart its
	// climb after losing a trail to a concurrent delete.
	MaxRestarts int
	// Redirects enables the paper's improved concurrent query handling
	// (§3: "We can have improved algorithm to solve this problem without
	// ever reaching the incorrect proxy node"): deletes leave short-lived
	// forwarding pointers at the stations they erase, so a query that
	// lost the trail jumps straight toward the new proxy instead of
	// re-climbing or waiting at the stale bottom.
	Redirects bool
	// Obs receives a span per issued operation plus per-node/per-level
	// metrics, timed on the simulated clock. Nil disables observability;
	// the engine's queue gauges follow the same recorder (see obs.go).
	Obs *obs.Recorder
}

func (c *Config) fill() {
	if c.PhiBase <= 0 {
		c.PhiBase = 4
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 10000
	}
}

type slotKey struct {
	level int
	key   int64
}

type simEntry struct {
	child overlay.Station // downward pointer; meaningless at level 0
	ver   uint64
	sp    overlay.Station
	spOK  bool
}

type simSDL struct {
	child overlay.Station
	ver   uint64
}

type simSlot struct {
	station overlay.Station
	dl      map[core.ObjectID]simEntry
	sdl     map[core.ObjectID]simSDL
	// fwd holds forwarding tombstones left by deletes when Redirects is
	// enabled: the destination of the move whose delete erased the entry.
	fwd map[core.ObjectID]graph.NodeID
}

// QueryResult records one completed simulated query.
type QueryResult struct {
	Origin   graph.NodeID
	Object   core.ObjectID
	Found    graph.NodeID
	Cost     float64
	Optimal  float64
	Restarts int
	Waited   bool
}

// MOTSim simulates concurrent MOT executions over a single-parent overlay
// (Algorithm 1's simple form; parent sets are a one-by-one refinement).
type MOTSim struct {
	eng *Engine
	ov  overlay.Overlay
	m   graph.DistanceOracle
	cfg Config

	slots map[slotKey]*simSlot
	loc   map[core.ObjectID]graph.NodeID
	ver   map[core.ObjectID]uint64

	// Same-object maintenance operations execute in issue order — the
	// serialization the paper's period scheme Φ(i) enforces for
	// closely-spaced operations (§4.1.2; see DESIGN.md). Operations for
	// different objects, and all queries, interleave freely.
	queue  map[core.ObjectID][]*moveOp
	active map[core.ObjectID]bool

	// waiters[slot][o] = queries parked at a stale bottom-level proxy,
	// resumed by the delete message carrying the new proxy.
	waiters map[slotKey]map[core.ObjectID][]func(newProxy graph.NodeID)

	meter   core.CostMeter
	results []QueryResult
	errs    []error

	// nextOp numbers operations in issue order; fault decisions hash the
	// (op, hop, attempt) identity, so numbering must be deterministic.
	nextOp uint64
	// lost records operations abandoned by the fault layer (delivery
	// failures). Unlike errs these are expected under chaos and do not
	// fail CheckInvariants; the repair path restores the trail instead.
	lost []error

	obs *obs.Recorder
}

// NewMOT builds a concurrent simulator over ov, which must produce
// single-station detection-path levels (hier.Config.UseParentSets = false).
func NewMOT(ov overlay.Overlay, eng *Engine, cfg Config) (*MOTSim, error) {
	cfg.fill()
	p := ov.DPath(ov.Root().Host)
	for l, sts := range p {
		if len(sts) != 1 {
			return nil, fmt.Errorf("sim: overlay has %d stations at level %d; the concurrent simulator needs single-parent paths", len(sts), l)
		}
	}
	if cfg.Obs != nil {
		eng.SetObs(cfg.Obs)
	}
	return &MOTSim{
		eng:     eng,
		ov:      ov,
		m:       ov.Metric(),
		cfg:     cfg,
		slots:   make(map[slotKey]*simSlot),
		loc:     make(map[core.ObjectID]graph.NodeID),
		ver:     make(map[core.ObjectID]uint64),
		queue:   make(map[core.ObjectID][]*moveOp),
		active:  make(map[core.ObjectID]bool),
		waiters: make(map[slotKey]map[core.ObjectID][]func(graph.NodeID)),
		obs:     cfg.Obs,
	}, nil
}

// Meter returns the accumulated cost counters.
func (s *MOTSim) Meter() core.CostMeter { return s.meter }

// Results returns the completed query records.
func (s *MOTSim) Results() []QueryResult { return s.results }

// Errors returns protocol errors observed during the run (always empty in a
// correct execution).
func (s *MOTSim) Errors() []error { return s.errs }

// Lost returns the operations the fault layer failed (delivery budgets
// exhausted). Empty without an installed FaultInjector.
func (s *MOTSim) Lost() []error { return s.lost }

// Location returns the ground-truth proxy of o.
func (s *MOTSim) Location(o core.ObjectID) (graph.NodeID, bool) {
	v, ok := s.loc[o]
	return v, ok
}

func (s *MOTSim) slot(st overlay.Station) *simSlot {
	k := slotKey{st.Level, st.Key}
	sl, ok := s.slots[k]
	if !ok {
		sl = &simSlot{
			station: st,
			dl:      make(map[core.ObjectID]simEntry),
			sdl:     make(map[core.ObjectID]simSDL),
			fwd:     make(map[core.ObjectID]graph.NodeID),
		}
		s.slots[k] = sl
	}
	return sl
}

func (s *MOTSim) fail(format string, args ...interface{}) {
	s.errs = append(s.errs, fmt.Errorf(format, args...))
}

// Publish stamps o's initial trail instantly (publish is the one-time
// initialization, performed before the tracked execution starts).
func (s *MOTSim) Publish(o core.ObjectID, at graph.NodeID) error {
	if _, ok := s.loc[o]; ok {
		return fmt.Errorf("sim: object %d already published", o)
	}
	span := s.obsSpan(obs.OpPublish, 0, o)
	path := s.ov.DPath(at)
	cost := 0.0
	prev := path[0][0]
	for l := 0; l < len(path); l++ {
		st := path[l][0]
		cost += s.m.Dist(prev.Host, st.Host)
		prev = st
		s.obsAttempt(span, st.Host, 0, 1)
		s.obsArrive(span, l, st.Host)
		s.stamp(span, path, l, o, 0)
	}
	s.loc[o] = at
	s.ver[o] = 0
	s.meter.PublishCost += cost
	s.meter.PublishOps++
	span.End(s.eng.Now())
	return nil
}

// stamp writes the entry for o at path[l] with the given version, handling
// SDL registration and cost. span is the operation the stamp belongs to.
func (s *MOTSim) stamp(span obs.Span, path overlay.Path, l int, o core.ObjectID, ver uint64) {
	st := path[l][0]
	var child overlay.Station
	if l > 0 {
		child = path[l-1][0]
	}
	sp, spOK := overlay.SpecialParent(path, l, 0, s.ov.SpecialOffset())
	sl := s.slot(st)
	if old, ok := sl.dl[o]; ok && old.spOK {
		s.removeSDL(old.sp, st, o)
	}
	sl.dl[o] = simEntry{child: child, ver: ver, sp: sp, spOK: spOK}
	delete(sl.fwd, o)
	span.Event(obs.EvStamp, l, int(st.Host), 0, s.eng.Now())
	if spOK {
		s.slot(sp).sdl[o] = simSDL{child: st, ver: ver}
		s.meter.SpecialCost += s.m.Dist(st.Host, sp.Host)
		span.Event(obs.EvSDL, sp.Level, int(sp.Host), s.m.Dist(st.Host, sp.Host), s.eng.Now())
	}
}

func (s *MOTSim) removeSDL(sp, child overlay.Station, o core.ObjectID) {
	sl := s.slot(sp)
	if se, ok := sl.sdl[o]; ok && se.child == child {
		delete(sl.sdl, o)
	}
}

// --- maintenance -----------------------------------------------------

type moveOp struct {
	id       uint64
	hop      int
	o        core.ObjectID
	ver      uint64
	from, to graph.NodeID
	path     overlay.Path
	pos      graph.NodeID
	cost     float64
	optimal  float64
	span     obs.Span
}

// send routes one message of a maintenance operation through the fault
// layer; each transmission attempt (including retries) costs one travel.
func (s *MOTSim) send(op *moveOp, dest graph.NodeID, fn func()) {
	d := s.m.Dist(op.pos, dest)
	op.hop++
	s.eng.Deliver(Delivery{
		Op:        op.id,
		Hop:       op.hop,
		Dest:      dest,
		Dist:      d,
		OnAttempt: func(att int) { op.cost += d; s.obsAttempt(op.span, dest, d, att) },
		Fn:        fn,
		OnFail:    func(err error) { s.abortMove(op, err) },
	})
}

// IssueMove schedules a maintenance operation at time at. The object's
// ground truth (its physical proxy) changes at the issue time; the
// directory update is queued behind any still-running maintenance operation
// of the same object and otherwise starts immediately.
func (s *MOTSim) IssueMove(o core.ObjectID, to graph.NodeID, at float64) error {
	if _, ok := s.loc[o]; !ok {
		return fmt.Errorf("sim: object %d not published", o)
	}
	s.eng.At(at, func() {
		from := s.loc[o]
		if from == to {
			return
		}
		s.loc[o] = to
		s.ver[o]++
		s.nextOp++
		op := &moveOp{id: s.nextOp, o: o, ver: s.ver[o], from: from, to: to, path: s.ov.DPath(to), pos: to,
			optimal: s.m.Dist(from, to)}
		op.span = s.obsSpan(obs.OpMove, op.id, o)
		s.queue[o] = append(s.queue[o], op)
		s.pump(o)
	})
	return nil
}

// pump starts the next queued maintenance operation of o, if any and none
// is running.
func (s *MOTSim) pump(o core.ObjectID) {
	if s.active[o] || len(s.queue[o]) == 0 {
		return
	}
	op := s.queue[o][0]
	s.queue[o] = s.queue[o][1:]
	s.active[o] = true
	s.stamp(op.span, op.path, 0, o, op.ver)
	s.enterLevel(op, 1)
}

// enterLevel applies the period gate, then travels to the level-k station.
func (s *MOTSim) enterLevel(op *moveOp, k int) {
	if k >= len(op.path) {
		s.fail("sim: move %d/%d passed the root", op.o, op.ver)
		s.finishMove(op)
		return
	}
	proceed := func() {
		st := op.path[k][0]
		s.send(op, st.Host, func() { s.arriveLevel(op, k) })
	}
	if s.cfg.PeriodSync {
		phi := math.Pow(2, float64(k)) * s.cfg.PhiBase
		boundary := math.Ceil(s.eng.Now()/phi) * phi
		if boundary > s.eng.Now() {
			op.span.Event(obs.EvWait, k, int(op.pos), boundary-s.eng.Now(), s.eng.Now())
			s.eng.At(boundary, proceed)
			return
		}
	}
	proceed()
}

// arriveLevel processes the level-k station: either the peak (an older
// entry exists — repoint and start the delete) or a fresh stamp and climb.
func (s *MOTSim) arriveLevel(op *moveOp, k int) {
	st := op.path[k][0]
	op.pos = st.Host
	s.obsArrive(op.span, k, st.Host)
	sl := s.slot(st)
	if e, ok := sl.dl[op.o]; ok {
		if e.ver >= op.ver {
			// Cannot happen under per-object serialization; defensive.
			s.fail("sim: move %d/%d overtaken at level %d", op.o, op.ver, k)
			s.finishMove(op)
			return
		}
		// Peak: repoint to the new chain, then prune the old one.
		op.span.Event(obs.EvPeak, k, int(st.Host), 0, s.eng.Now())
		s.stamp(op.span, op.path, k, op.o, op.ver)
		s.deleteStep(op, e.child)
		return
	}
	s.stamp(op.span, op.path, k, op.o, op.ver)
	s.enterLevel(op, k+1)
}

// deleteStep travels to the next station of the old trail and erases it.
func (s *MOTSim) deleteStep(op *moveOp, target overlay.Station) {
	s.send(op, target.Host, func() {
		op.pos = target.Host
		s.obsArrive(op.span, target.Level, target.Host)
		sl := s.slot(target)
		e, ok := sl.dl[op.o]
		if !ok || e.ver >= op.ver {
			// The entry was already replaced by a newer move; the newer
			// chain owns everything below.
			s.finishMove(op)
			return
		}
		delete(sl.dl, op.o)
		op.span.Event(obs.EvWipe, target.Level, int(target.Host), 0, s.eng.Now())
		if s.cfg.Redirects {
			sl.fwd[op.o] = op.to
		}
		if e.spOK {
			s.removeSDL(e.sp, target, op.o)
			s.meter.SpecialCost += s.m.Dist(target.Host, e.sp.Host)
		}
		if target.Level == 0 {
			s.resolveWaiters(target, op.o, op.to)
			s.finishMove(op)
			return
		}
		s.deleteStep(op, e.child)
	})
}

func (s *MOTSim) finishMove(op *moveOp) {
	s.meter.AddMaintSample(op.cost, op.optimal)
	op.span.End(s.eng.Now())
	s.active[op.o] = false
	s.pump(op.o)
}

// abortMove handles a maintenance message that exhausted its delivery
// budget: the move is recorded as lost, its travel so far is charged to
// recovery (not the maintenance ratio), and the object's trail is rebuilt
// from the ground truth so invariants hold at quiescence.
func (s *MOTSim) abortMove(op *moveOp, err error) {
	s.lost = append(s.lost, fmt.Errorf("sim: move %d/%d lost: %w", op.o, op.ver, err))
	s.meter.RecoveryCost += op.cost
	op.span.Event(obs.EvAbort, -1, int(op.pos), 0, s.eng.Now())
	op.span.End(s.eng.Now())
	// The repair walk is its own recovery span, sharing the failed move's
	// operation number (kind disambiguates in the export sort).
	rspan := s.obsSpan(obs.OpRecovery, op.id, op.o)
	s.repair(rspan, op.o, op.ver)
	rspan.End(s.eng.Now())
	s.active[op.o] = false
	s.pump(op.o)
}

// repair re-establishes o's trail after a failed operation left it in an
// unknown intermediate state: every entry of o is wiped and the full home
// chain of the current ground-truth proxy is re-stamped with the failed
// operation's version (the §7 fine-grained path — rebuild one object's
// chain, not the directory). Queries parked at stale proxies are released
// toward the repaired proxy.
func (s *MOTSim) repair(span obs.Span, o core.ObjectID, ver uint64) {
	keys := make([]slotKey, 0, len(s.slots))
	for k := range s.slots {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].level != keys[j].level {
			return keys[i].level < keys[j].level
		}
		return keys[i].key < keys[j].key
	})
	// One aggregate wipe event covers the whole sweep.
	span.Event(obs.EvWipe, -1, int(s.loc[o]), 0, s.eng.Now())
	for _, k := range keys {
		sl := s.slots[k]
		delete(sl.dl, o)
		delete(sl.sdl, o)
		delete(sl.fwd, o)
	}
	proxy := s.loc[o]
	path := s.ov.DPath(proxy)
	cost := 0.0
	prev := path[0][0]
	for l := 0; l < len(path); l++ {
		st := path[l][0]
		cost += s.m.Dist(prev.Host, st.Host)
		prev = st
		s.obsAttempt(span, st.Host, 0, 1)
		s.obsArrive(span, l, st.Host)
		s.stamp(span, path, l, o, ver)
	}
	s.meter.RecoveryCost += cost
	s.meter.RecoveryOps++
	// Release every query parked on o, in deterministic slot order; they
	// chase the repaired proxy (and re-anchor if the object moves again).
	for _, k := range keys {
		if byObj, ok := s.waiters[k]; ok && len(byObj[o]) > 0 {
			s.resolveWaiters(s.slots[k].station, o, proxy)
		}
	}
}

func (s *MOTSim) resolveWaiters(st overlay.Station, o core.ObjectID, newProxy graph.NodeID) {
	k := slotKey{st.Level, st.Key}
	if byObj, ok := s.waiters[k]; ok {
		ws := byObj[o]
		delete(byObj, o)
		for _, w := range ws {
			w(newProxy)
		}
	}
}

// --- queries ----------------------------------------------------------

type queryOp struct {
	id       uint64
	hop      int
	origin   graph.NodeID
	o        core.ObjectID
	pos      graph.NodeID
	cost     float64
	optimal  float64
	restarts int
	waited   bool
	lastSlot *simSlot // slot where the trail last broke (for redirects)
	span     obs.Span
}

// qsend routes one query message through the fault layer.
func (s *MOTSim) qsend(q *queryOp, dest graph.NodeID, fn func()) {
	d := s.m.Dist(q.pos, dest)
	q.hop++
	s.eng.Deliver(Delivery{
		Op:        q.id,
		Hop:       q.hop,
		Dest:      dest,
		Dist:      d,
		OnAttempt: func(att int) { q.cost += d; s.obsAttempt(q.span, dest, d, att) },
		Fn:        fn,
		OnFail: func(err error) {
			s.lost = append(s.lost, fmt.Errorf("sim: query for %d from %d lost: %w", q.o, q.origin, err))
			s.meter.RecoveryCost += q.cost
			q.span.Event(obs.EvAbort, -1, int(dest), 0, s.eng.Now())
			q.span.End(s.eng.Now())
		},
	})
}

// IssueQuery schedules a query from origin for o at time at.
func (s *MOTSim) IssueQuery(origin graph.NodeID, o core.ObjectID, at float64) error {
	if _, ok := s.loc[o]; !ok {
		return fmt.Errorf("sim: object %d not published", o)
	}
	s.eng.At(at, func() {
		s.nextOp++
		q := &queryOp{id: s.nextOp, origin: origin, o: o, pos: origin}
		q.optimal = s.m.Dist(origin, s.loc[o])
		q.span = s.obsSpan(obs.OpQuery, q.id, o)
		s.climb(q, s.ov.DPath(origin), 0)
	})
	return nil
}

// climb travels up the requester's detection path looking for the object in
// DLs and SDLs (Algorithm 1 lines 19–24).
func (s *MOTSim) climb(q *queryOp, path overlay.Path, k int) {
	if k >= len(path) {
		s.fail("sim: query for %d from %d passed the root", q.o, q.origin)
		return
	}
	st := path[k][0]
	s.qsend(q, st.Host, func() {
		q.pos = st.Host
		s.obsArrive(q.span, k, st.Host)
		sl := s.slot(st)
		if _, ok := sl.dl[q.o]; ok {
			q.span.Event(obs.EvPeak, k, int(st.Host), 0, s.eng.Now())
			s.descend(q, st)
			return
		}
		if se, ok := sl.sdl[q.o]; ok {
			q.span.Event(obs.EvSDL, k, int(st.Host), 0, s.eng.Now())
			s.hopTo(q, se.child)
			return
		}
		s.climb(q, path, k+1)
	})
}

// hopTo travels to a station believed to hold the object and descends.
func (s *MOTSim) hopTo(q *queryOp, st overlay.Station) {
	s.qsend(q, st.Host, func() {
		q.pos = st.Host
		s.obsArrive(q.span, st.Level, st.Host)
		if sl := s.slot(st); true {
			if _, ok := sl.dl[q.o]; !ok {
				q.lastSlot = sl
				s.restart(q)
				return
			}
		}
		s.descend(q, st)
	})
}

// descend follows downward pointers; q.pos is already at st's host and st
// is known to hold the object.
func (s *MOTSim) descend(q *queryOp, st overlay.Station) {
	sl := s.slot(st)
	e, ok := sl.dl[q.o]
	if !ok {
		q.lastSlot = sl
		s.restart(q)
		return
	}
	if st.Level == 0 {
		if s.loc[q.o] == st.Host {
			s.complete(q, st.Host)
			return
		}
		// Stale proxy: the object moved and the delete has not arrived
		// yet. Wait for it; it carries the new proxy.
		q.waited = true
		q.span.Event(obs.EvWait, 0, int(st.Host), 0, s.eng.Now())
		k := slotKey{st.Level, st.Key}
		if s.waiters[k] == nil {
			s.waiters[k] = make(map[core.ObjectID][]func(graph.NodeID))
		}
		s.waiters[k][q.o] = append(s.waiters[k][q.o], func(newProxy graph.NodeID) {
			s.chase(q, newProxy)
		})
		return
	}
	next := e.child
	s.qsend(q, next.Host, func() {
		q.pos = next.Host
		s.obsArrive(q.span, next.Level, next.Host)
		s.descend(q, next)
	})
}

// chase forwards a resumed query to the proxy named by a delete message or
// forwarding tombstone. If the object has moved on again by arrival, the
// query re-anchors at this proxy's bottom-level slot — whose own tombstone
// (if the next delete already passed) chains the chase forward.
func (s *MOTSim) chase(q *queryOp, proxy graph.NodeID) {
	s.qsend(q, proxy, func() {
		q.pos = proxy
		s.obsArrive(q.span, 0, proxy)
		if s.loc[q.o] == proxy {
			s.complete(q, proxy)
			return
		}
		q.lastSlot = s.slots[slotKey{0, int64(proxy)}]
		s.restart(q)
	})
}

// restart re-climbs from the query's current position after a lost trail,
// or — with Redirects — follows the forwarding tombstone the delete left
// behind, heading straight for the mover's destination.
func (s *MOTSim) restart(q *queryOp) {
	q.restarts++
	q.span.Event(obs.EvRestart, -1, int(q.pos), 0, s.eng.Now())
	if q.restarts > s.cfg.MaxRestarts {
		s.fail("sim: query for %d from %d exceeded %d restarts", q.o, q.origin, s.cfg.MaxRestarts)
		return
	}
	// Tombstones live at the station where the trail broke; consume the
	// anchor so a failed chase cannot re-follow the same stale pointer.
	if s.cfg.Redirects && q.lastSlot != nil {
		last := q.lastSlot
		q.lastSlot = nil
		if to, ok := last.fwd[q.o]; ok && to != q.pos {
			s.chase(q, to)
			return
		}
	}
	s.climb(q, s.ov.DPath(q.pos), 0)
}

func (s *MOTSim) complete(q *queryOp, found graph.NodeID) {
	s.results = append(s.results, QueryResult{
		Origin: q.origin, Object: q.o, Found: found,
		Cost: q.cost, Optimal: q.optimal, Restarts: q.restarts, Waited: q.waited,
	})
	s.meter.AddQuerySample(q.cost, q.optimal)
	q.span.End(s.eng.Now())
}

// CheckInvariants validates quiescent-state consistency: every object's
// trail runs root → proxy with strictly usable pointers and no orphans.
// Call only after Engine.Run has drained all events.
func (s *MOTSim) CheckInvariants() error {
	if s.eng.Pending() > 0 {
		return fmt.Errorf("sim: invariants checked before quiescence (%d events pending)", s.eng.Pending())
	}
	for _, err := range s.errs {
		return fmt.Errorf("sim: protocol error during run: %w", err)
	}
	for o, proxy := range s.loc {
		st := s.ov.Root()
		onTrail := map[slotKey]bool{}
		for {
			sl := s.slot(st)
			e, ok := sl.dl[o]
			if !ok {
				return fmt.Errorf("sim: trail for %d broken at %v", o, st)
			}
			onTrail[slotKey{st.Level, st.Key}] = true
			if st.Level == 0 {
				if st.Host != proxy {
					return fmt.Errorf("sim: trail for %d ends at %d, proxy %d", o, st.Host, proxy)
				}
				break
			}
			st = e.child
		}
		for k, sl := range s.slots {
			if _, has := sl.dl[o]; has && !onTrail[k] {
				return fmt.Errorf("sim: orphaned entry for %d at %v", o, sl.station)
			}
		}
	}
	return nil
}
