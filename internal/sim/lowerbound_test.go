package sim

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/mobility"
)

func TestSteinerLowerBoundProperties(t *testing.T) {
	g := graph.Grid(8, 8)
	m := graph.NewMetric(g)
	w, err := mobility.Generate(g, m, mobility.Config{Objects: 5, MovesPerObject: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	lb := SteinerLowerBound(m, w, 10)
	if lb <= 0 {
		t.Fatal("zero lower bound for a non-trivial workload")
	}
	// The batch-aware bound never exceeds the per-move distance total
	// (connecting every consecutive pair is one valid Steiner topology,
	// and the MST over the closure is at most that chain).
	perMove := 0.0
	locs := append([]graph.NodeID(nil), w.Initial...)
	for _, mv := range w.Moves {
		perMove += m.Dist(locs[mv.Object], mv.To)
		locs[mv.Object] = mv.To
	}
	if lb > perMove+1e-9 {
		t.Fatalf("Steiner bound %v exceeds per-move total %v", lb, perMove)
	}
	// Concurrency 1 degenerates to exactly the per-move total.
	if got := SteinerLowerBound(m, w, 1); got != perMove {
		t.Fatalf("concurrency-1 bound %v, want per-move %v", got, perMove)
	}
}

// The simulated concurrent MOT cost dominates the Steiner lower bound (it
// must: the bound is what any algorithm pays).
func TestSimulatedCostDominatesSteinerBound(t *testing.T) {
	g := graph.Grid(8, 8)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: 1, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	w, err := mobility.Generate(g, m, mobility.Config{Objects: 5, MovesPerObject: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(0)
	s, err := NewMOT(hs, eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Schedule(s, w, DriverConfig{Diameter: m.Diameter(), Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	bound := SteinerLowerBound(m, w, 10)
	if cost := s.Meter().MaintCost; cost < bound/2 {
		t.Fatalf("simulated cost %v below Steiner bound %v", cost, bound/2)
	}
}
