package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/treedir"
)

// TreeSim simulates concurrent executions of the message-pruning tree
// baselines (STUN, Z-DAT) under the same timing model as MOTSim: messages
// take distance time, same-object maintenance serializes in issue order,
// queries interleave freely and chase moving objects through delete
// notifications.
type TreeSim struct {
	eng *Engine
	t   *treedir.Tree
	m   *graph.Metric
	cfg Config
	tc  treedir.Config

	dl  []map[core.ObjectID]treeEntry    // per tree node
	fwd []map[core.ObjectID]graph.NodeID // forwarding tombstones (Redirects)
	loc map[core.ObjectID]graph.NodeID
	ver map[core.ObjectID]uint64

	queue  map[core.ObjectID][]*treeMove
	active map[core.ObjectID]bool

	waiters map[int]map[core.ObjectID][]func(graph.NodeID)

	meter   core.CostMeter
	results []QueryResult
	errs    []error
}

type treeEntry struct {
	child int // child tree node holding the object; -1 at the proxy leaf
	ver   uint64
}

type treeMove struct {
	o        core.ObjectID
	ver      uint64
	from, to graph.NodeID
	cost     float64
	optimal  float64
	pos      graph.NodeID
}

// NewTree builds a concurrent simulator over a finalized baseline tree. tc
// carries the baseline's query discipline (sink queries for STUN, shortcuts
// for Z-DAT+SC).
func NewTree(t *treedir.Tree, m *graph.Metric, eng *Engine, cfg Config, tc treedir.Config) (*TreeSim, error) {
	if t.Root() < 0 {
		return nil, fmt.Errorf("sim: tree not finalized")
	}
	cfg.fill()
	dl := make([]map[core.ObjectID]treeEntry, t.Len())
	fwd := make([]map[core.ObjectID]graph.NodeID, t.Len())
	for i := range dl {
		dl[i] = make(map[core.ObjectID]treeEntry)
		fwd[i] = make(map[core.ObjectID]graph.NodeID)
	}
	return &TreeSim{
		eng: eng, t: t, m: m, cfg: cfg, tc: tc,
		dl:      dl,
		fwd:     fwd,
		loc:     make(map[core.ObjectID]graph.NodeID),
		ver:     make(map[core.ObjectID]uint64),
		queue:   make(map[core.ObjectID][]*treeMove),
		active:  make(map[core.ObjectID]bool),
		waiters: make(map[int]map[core.ObjectID][]func(graph.NodeID)),
	}, nil
}

// Meter returns the accumulated cost counters.
func (s *TreeSim) Meter() core.CostMeter { return s.meter }

// Results returns completed query records.
func (s *TreeSim) Results() []QueryResult { return s.results }

// Errors returns protocol errors observed during the run.
func (s *TreeSim) Errors() []error { return s.errs }

func (s *TreeSim) fail(format string, args ...interface{}) {
	s.errs = append(s.errs, fmt.Errorf(format, args...))
}

// Publish stamps o's initial leaf-to-root trail instantly.
func (s *TreeSim) Publish(o core.ObjectID, at graph.NodeID) error {
	if _, ok := s.loc[o]; ok {
		return fmt.Errorf("sim: object %d already published", o)
	}
	leaf := s.t.Leaf(at)
	if leaf < 0 {
		return fmt.Errorf("sim: sensor %d has no leaf", at)
	}
	cost := 0.0
	child := -1
	for id := leaf; id != -1; id = s.t.Parent(id) {
		if child != -1 {
			cost += s.m.Dist(s.t.Host(child), s.t.Host(id))
		}
		s.dl[id][o] = treeEntry{child: child}
		child = id
	}
	s.loc[o] = at
	s.meter.PublishCost += cost
	s.meter.PublishOps++
	return nil
}

// IssueMove schedules a maintenance operation at time at.
func (s *TreeSim) IssueMove(o core.ObjectID, to graph.NodeID, at float64) error {
	if _, ok := s.loc[o]; !ok {
		return fmt.Errorf("sim: object %d not published", o)
	}
	s.eng.At(at, func() {
		from := s.loc[o]
		if from == to {
			return
		}
		s.loc[o] = to
		s.ver[o]++
		op := &treeMove{o: o, ver: s.ver[o], from: from, to: to, pos: to, optimal: s.m.Dist(from, to)}
		s.queue[o] = append(s.queue[o], op)
		s.pump(o)
	})
	return nil
}

func (s *TreeSim) pump(o core.ObjectID) {
	if s.active[o] || len(s.queue[o]) == 0 {
		return
	}
	op := s.queue[o][0]
	s.queue[o] = s.queue[o][1:]
	s.active[o] = true
	leaf := s.t.Leaf(op.to)
	if e, ok := s.dl[leaf][op.o]; ok {
		// The new proxy's tree node is already on the trail (it was an
		// ancestor of the old proxy): repoint it as the trail's end and
		// prune the stale branch below.
		s.dl[leaf][op.o] = treeEntry{child: -1, ver: op.ver}
		s.deleteStep(op, leaf, e.child)
		return
	}
	s.dl[leaf][op.o] = treeEntry{child: -1, ver: op.ver}
	delete(s.fwd[leaf], op.o)
	s.climbMove(op, leaf, s.t.Parent(leaf))
}

// climbMove hops the insert from tree node prev to tree node id.
func (s *TreeSim) climbMove(op *treeMove, prev, id int) {
	if id == -1 {
		s.fail("sim: tree move %d/%d passed the root", op.o, op.ver)
		s.finish(op)
		return
	}
	d := s.m.Dist(s.t.Host(prev), s.t.Host(id))
	op.cost += d
	s.eng.After(d, func() {
		op.pos = s.t.Host(id)
		if e, ok := s.dl[id][op.o]; ok {
			oldChild := e.child
			s.dl[id][op.o] = treeEntry{child: prev, ver: op.ver}
			if oldChild == -1 {
				// The peak is the old proxy leaf itself (spanning trees:
				// an ancestor sensor was the proxy). Nothing to prune.
				s.resolveWaiters(id, op.o, op.to)
				s.finish(op)
				return
			}
			s.deleteStep(op, id, oldChild)
			return
		}
		s.dl[id][op.o] = treeEntry{child: prev, ver: op.ver}
		s.climbMove(op, id, s.t.Parent(id))
	})
}

// deleteStep prunes the old branch downward from tree node at toward child.
func (s *TreeSim) deleteStep(op *treeMove, at, child int) {
	if child == -1 {
		// at was the old proxy leaf; its entry was already removed by the
		// caller (or it was the peak). Resolve waiters and finish.
		s.finish(op)
		return
	}
	d := s.m.Dist(s.t.Host(at), s.t.Host(child))
	op.cost += d
	s.eng.After(d, func() {
		op.pos = s.t.Host(child)
		e, ok := s.dl[child][op.o]
		if !ok {
			s.fail("sim: tree delete %d/%d lost the trail at node %d", op.o, op.ver, child)
			s.finish(op)
			return
		}
		delete(s.dl[child], op.o)
		if s.cfg.Redirects {
			s.fwd[child][op.o] = op.to
		}
		if e.child == -1 {
			s.resolveWaiters(child, op.o, op.to)
			s.finish(op)
			return
		}
		s.deleteStep(op, child, e.child)
	})
}

func (s *TreeSim) finish(op *treeMove) {
	s.meter.AddMaintSample(op.cost, op.optimal)
	s.active[op.o] = false
	s.pump(op.o)
}

func (s *TreeSim) resolveWaiters(node int, o core.ObjectID, newProxy graph.NodeID) {
	if byObj, ok := s.waiters[node]; ok {
		ws := byObj[o]
		delete(byObj, o)
		for _, w := range ws {
			w(newProxy)
		}
	}
}

// --- queries ----------------------------------------------------------

// IssueQuery schedules a query from origin for o at time at.
func (s *TreeSim) IssueQuery(origin graph.NodeID, o core.ObjectID, at float64) error {
	if _, ok := s.loc[o]; !ok {
		return fmt.Errorf("sim: object %d not published", o)
	}
	s.eng.At(at, func() {
		q := &queryOp{origin: origin, o: o, pos: origin}
		q.optimal = s.m.Dist(origin, s.loc[o])
		s.startQuery(q, origin)
	})
	return nil
}

func (s *TreeSim) startQuery(q *queryOp, from graph.NodeID) {
	if s.tc.SinkQueries {
		root := s.t.Root()
		d := s.m.Dist(q.pos, s.t.Host(root))
		q.cost += d
		s.eng.After(d, func() {
			q.pos = s.t.Host(root)
			if _, ok := s.dl[root][q.o]; !ok {
				s.fail("sim: root lost object %d", q.o)
				return
			}
			s.descend(q, root)
		})
		return
	}
	leaf := s.t.Leaf(from)
	if leaf < 0 {
		s.fail("sim: query origin %d has no leaf", from)
		return
	}
	s.climbQuery(q, -1, leaf)
}

func (s *TreeSim) climbQuery(q *queryOp, prev, id int) {
	if id == -1 {
		s.fail("sim: query for %d passed the root", q.o)
		return
	}
	d := 0.0
	if prev != -1 {
		d = s.m.Dist(s.t.Host(prev), s.t.Host(id))
	} else {
		d = s.m.Dist(q.pos, s.t.Host(id))
	}
	q.cost += d
	s.eng.After(d, func() {
		q.pos = s.t.Host(id)
		if _, ok := s.dl[id][q.o]; ok {
			s.descend(q, id)
			return
		}
		s.climbQuery(q, id, s.t.Parent(id))
	})
}

func (s *TreeSim) descend(q *queryOp, id int) {
	e, ok := s.dl[id][q.o]
	if !ok {
		if s.cfg.Redirects {
			if to, ok := s.fwd[id][q.o]; ok {
				s.chase(q, to)
				return
			}
		}
		s.restart(q)
		return
	}
	if e.child == -1 {
		host := s.t.Host(id)
		if s.loc[q.o] == host {
			s.complete(q, host)
			return
		}
		q.waited = true
		if s.waiters[id] == nil {
			s.waiters[id] = make(map[core.ObjectID][]func(graph.NodeID))
		}
		s.waiters[id][q.o] = append(s.waiters[id][q.o], func(newProxy graph.NodeID) {
			s.chase(q, newProxy)
		})
		return
	}
	if s.tc.Shortcuts {
		// Jump straight to the current proxy.
		target := s.loc[q.o]
		d := s.m.Dist(q.pos, target)
		q.cost += d
		s.eng.After(d, func() {
			q.pos = target
			if s.loc[q.o] == target {
				s.complete(q, target)
				return
			}
			s.restart(q)
		})
		return
	}
	child := e.child
	d := s.m.Dist(q.pos, s.t.Host(child))
	q.cost += d
	s.eng.After(d, func() {
		q.pos = s.t.Host(child)
		s.descend(q, child)
	})
}

func (s *TreeSim) chase(q *queryOp, proxy graph.NodeID) {
	d := s.m.Dist(q.pos, proxy)
	q.cost += d
	s.eng.After(d, func() {
		q.pos = proxy
		if s.loc[q.o] == proxy {
			s.complete(q, proxy)
			return
		}
		s.restart(q)
	})
}

func (s *TreeSim) restart(q *queryOp) {
	q.restarts++
	if q.restarts > s.cfg.MaxRestarts {
		s.fail("sim: tree query for %d exceeded %d restarts", q.o, s.cfg.MaxRestarts)
		return
	}
	s.startQuery(q, q.pos)
}

func (s *TreeSim) complete(q *queryOp, found graph.NodeID) {
	s.results = append(s.results, QueryResult{
		Origin: q.origin, Object: q.o, Found: found,
		Cost: q.cost, Optimal: q.optimal, Restarts: q.restarts, Waited: q.waited,
	})
	s.meter.AddQuerySample(q.cost, q.optimal)
}

// CheckInvariants validates quiescent-state trail consistency.
func (s *TreeSim) CheckInvariants() error {
	if s.eng.Pending() > 0 {
		return fmt.Errorf("sim: invariants checked before quiescence")
	}
	for _, err := range s.errs {
		return fmt.Errorf("sim: protocol error during run: %w", err)
	}
	perObject := make(map[core.ObjectID]int)
	for _, entries := range s.dl {
		for o := range entries {
			perObject[o]++
		}
	}
	for o, proxy := range s.loc {
		id := s.t.Root()
		steps := 0
		for {
			e, ok := s.dl[id][o]
			if !ok {
				return fmt.Errorf("sim: tree trail for %d broken at node %d", o, id)
			}
			steps++
			if e.child == -1 {
				break
			}
			id = e.child
		}
		if s.t.Host(id) != proxy {
			return fmt.Errorf("sim: tree trail for %d ends at %d, proxy %d", o, s.t.Host(id), proxy)
		}
		if perObject[o] != steps {
			return fmt.Errorf("sim: object %d has %d entries, trail %d", o, perObject[o], steps)
		}
	}
	return nil
}
