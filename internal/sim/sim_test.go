package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/mobility"
	"repro/internal/stun"
	"repro/internal/treedir"
	"repro/internal/zdat"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(0)
	var got []int
	e.At(5, func() { got = append(got, 2) })
	e.At(1, func() { got = append(got, 0) })
	e.At(1, func() { got = append(got, 1) }) // FIFO at equal times
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("order %v", got)
	}
	if e.Now() != 5 {
		t.Fatalf("now %v", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(0)
	sum := 0.0
	e.At(1, func() {
		e.After(2, func() { sum = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 3 {
		t.Fatalf("nested event at %v, want 3", sum)
	}
}

func TestEngineStepLimit(t *testing.T) {
	e := NewEngine(10)
	var loop func()
	loop = func() { e.After(1, loop) }
	e.At(0, loop)
	if err := e.Run(); err == nil {
		t.Fatal("livelock not detected")
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine(0)
	ran := false
	e.At(5, func() {
		e.At(1, func() { ran = true }) // in the past: clamped to now
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("clamped event dropped")
	}
}

func motSim(t testing.TB, w, h int, cfg Config) (*MOTSim, *Engine, *graph.Graph) {
	t.Helper()
	g := graph.Grid(w, h)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: 1, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(0)
	s, err := NewMOT(hs, eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, eng, g
}

func TestMOTRejectsParentSetOverlay(t *testing.T) {
	g := graph.Grid(5, 5)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: 1, UseParentSets: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMOT(hs, NewEngine(0), Config{}); err == nil {
		t.Fatal("parent-set overlay accepted by concurrent simulator")
	}
}

func TestMOTSingleMoveAndQuery(t *testing.T) {
	s, eng, _ := motSim(t, 6, 6, Config{})
	if err := s.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(1, 0); err == nil {
		t.Fatal("duplicate publish accepted")
	}
	if err := s.IssueMove(9, 3, 0); err == nil {
		t.Fatal("move of unpublished accepted")
	}
	if err := s.IssueQuery(0, 9, 0); err == nil {
		t.Fatal("query of unpublished accepted")
	}
	if err := s.IssueMove(1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.IssueQuery(35, 1, 1000); err != nil { // after the move settles
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Location(1); v != 1 {
		t.Fatalf("location %d", v)
	}
	res := s.Results()
	if len(res) != 1 || res[0].Found != 1 {
		t.Fatalf("results %+v", res)
	}
	if res[0].Cost < res[0].Optimal {
		t.Fatalf("query cost %v below optimal %v", res[0].Cost, res[0].Optimal)
	}
}

func TestMOTConcurrentBurstsSettleConsistently(t *testing.T) {
	for _, periodSync := range []bool{true, false} {
		s, eng, g := motSim(t, 8, 8, Config{PeriodSync: periodSync})
		m := graph.NewMetric(g)
		w, err := mobility.Generate(g, m, mobility.Config{Objects: 6, MovesPerObject: 40, Queries: 60, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Schedule(s, w, DriverConfig{Diameter: m.Diameter(), Seed: 3}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if errs := s.Errors(); len(errs) > 0 {
			t.Fatalf("periodSync=%t protocol errors: %v", periodSync, errs)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("periodSync=%t: %v", periodSync, err)
		}
		finals := w.FinalLocations()
		for o, want := range finals {
			if got, _ := s.Location(core.ObjectID(o)); got != want {
				t.Fatalf("object %d at %d, want %d", o, got, want)
			}
		}
		if got := len(s.Results()); got != len(w.Queries) {
			t.Fatalf("periodSync=%t: %d of %d queries completed", periodSync, got, len(w.Queries))
		}
		mtr := s.Meter()
		if mtr.MaintOps == 0 || mtr.MaintRatio() < 1 {
			t.Fatalf("maintenance meter %+v", mtr)
		}
	}
}

func TestMOTQueryChasesMovingObject(t *testing.T) {
	s, eng, _ := motSim(t, 8, 8, Config{})
	if err := s.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	// Rapid-fire moves along the top row while a distant query launches.
	for i := 1; i <= 7; i++ {
		if err := s.IssueMove(1, graph.NodeID(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.IssueQuery(63, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	res := s.Results()
	if len(res) != 1 {
		t.Fatalf("query did not complete: %+v, errors %v", res, s.Errors())
	}
	if res[0].Found != 7 {
		t.Fatalf("query found %d, want final proxy 7", res[0].Found)
	}
}

func TestMOTDeterministic(t *testing.T) {
	run := func() core.CostMeter {
		s, eng, g := motSim(t, 7, 7, Config{})
		m := graph.NewMetric(g)
		w, err := mobility.Generate(g, m, mobility.Config{Objects: 4, MovesPerObject: 25, Queries: 30, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Schedule(s, w, DriverConfig{Diameter: m.Diameter(), Seed: 11}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Meter()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic:\n%+v\n%+v", a, b)
	}
}

func buildTreeSim(t testing.TB, g *graph.Graph, m *graph.Metric, w *mobility.Workload, sink bool, shortcuts bool) (*TreeSim, *Engine) {
	t.Helper()
	rates := w.DetectionRates(g)
	var tr *treedir.Tree
	var err error
	var tc treedir.Config
	if sink {
		tr, err = stun.BuildTree(g, m, rates)
		tc = treedir.Config{SinkQueries: true}
	} else {
		tr, err = zdat.BuildTree(g, m, rates, zdat.Config{ZoneDepth: 2, Sink: graph.Undefined})
		tc = treedir.Config{Shortcuts: shortcuts}
	}
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(0)
	s, err := NewTree(tr, m, eng, Config{}, tc)
	if err != nil {
		t.Fatal(err)
	}
	return s, eng
}

func TestTreeSimAllVariantsSettle(t *testing.T) {
	g := graph.Grid(7, 7)
	m := graph.NewMetric(g)
	w, err := mobility.Generate(g, m, mobility.Config{Objects: 5, MovesPerObject: 30, Queries: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name            string
		sink, shortcuts bool
	}{
		{"stun", true, false},
		{"zdat", false, false},
		{"zdat+sc", false, true},
	} {
		s, eng := buildTreeSim(t, g, m, w, mode.sink, mode.shortcuts)
		if _, err := Schedule(s, w, DriverConfig{Diameter: m.Diameter(), Seed: 5}); err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if errs := s.Errors(); len(errs) > 0 {
			t.Fatalf("%s protocol errors: %v", mode.name, errs)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if got := len(s.Results()); got != len(w.Queries) {
			t.Fatalf("%s: %d of %d queries completed", mode.name, got, len(w.Queries))
		}
		mtr := s.Meter()
		if mtr.MaintRatio() < 1 {
			t.Fatalf("%s maintenance ratio %v", mode.name, mtr.MaintRatio())
		}
	}
}

func TestTreeSimSpanningTreeAncestorMove(t *testing.T) {
	// Moving an object to a tree ancestor of its proxy exercises the
	// repoint-at-leaf path.
	g := graph.Path(6)
	m := graph.NewMetric(g)
	tr, err := zdat.BuildTree(g, m, nil, zdat.Config{Sink: 0})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(0)
	s, err := NewTree(tr, m, eng, Config{}, treedir.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(0, 5); err != nil {
		t.Fatal(err)
	}
	// 4 is the tree parent of 5 (path toward sink 0).
	if err := s.IssueMove(0, 4, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.IssueMove(0, 5, 1); err != nil { // and back down
		t.Fatal(err)
	}
	if err := s.IssueQuery(0, 0, 50); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	res := s.Results()
	if len(res) != 1 || res[0].Found != 5 {
		t.Fatalf("results %+v", res)
	}
}

func TestConcurrentRatiosComparableToOneByOne(t *testing.T) {
	// The paper observes only a small factor increase from one-by-one to
	// concurrent execution. Compare the simulated MOT maintenance ratio
	// against the one-by-one core on the same workload.
	g := graph.Grid(8, 8)
	m := graph.NewMetric(g)
	w, err := mobility.Generate(g, m, mobility.Config{Objects: 8, MovesPerObject: 50, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := hier.Build(g, m, hier.Config{Seed: 1, SpecialParentOffset: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := core.New(hs, core.Config{})
	for o, at := range w.Initial {
		if err := d.Publish(core.ObjectID(o), at); err != nil {
			t.Fatal(err)
		}
	}
	for _, mv := range w.Moves {
		if err := d.Move(mv.Object, mv.To); err != nil {
			t.Fatal(err)
		}
	}
	oneByOne := d.Meter().MaintRatio()

	eng := NewEngine(0)
	s, err := NewMOT(hs, eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Schedule(s, w, DriverConfig{Diameter: m.Diameter(), Seed: 21}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	concurrent := s.Meter().MaintRatio()
	if math.Abs(concurrent-oneByOne) > 0.5*oneByOne {
		t.Fatalf("concurrent ratio %v too far from one-by-one %v", concurrent, oneByOne)
	}
}
