// Package runtime is a live distributed realization of the MOT algorithm:
// every sensor node runs as its own goroutine with a message inbox, and
// publish / maintenance / query operations travel station to station
// through the network (costs accounted as shortest-path distances), as the
// message-passing protocol the paper describes (footnote 2 of §3: the
// iterative pseudocode "can be immediately converted to a message-passing
// based distributed algorithm").
//
// The measured reproductions use the sequential engine (internal/core) and
// the discrete-event simulator (internal/sim); this package demonstrates
// the same protocol running on real concurrent nodes and backs the
// examples. Operations can be observed via NewInstrumented (spans and
// per-node metrics on a cost clock, see obs.go) and the opt-in debug
// HTTP endpoint (debug.go).
package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/overlay"
	"repro/internal/runtime/track"
)

type slotKey struct {
	level int
	key   int64
}

type slotState struct {
	dl map[core.ObjectID]overlay.Station // downward pointer; Level<0 means proxy slot
}

// message is a mobile operation state traveling through the network.
type message struct {
	dest graph.NodeID // next node that must process it
	op   *opState
}

type opKind int

const (
	opPublish opKind = iota
	opInsertUp
	opDeleteDown
	opQueryUp
	opQueryDown
)

type opState struct {
	kind  opKind
	id    uint64 // operation number; with hop it keys fault decisions
	hop   int
	o     core.ObjectID
	path  overlay.Path
	level int             // current level being processed
	down  overlay.Station // target of the downward walk
	cost  float64
	reply chan result
	span  obs.Span
	at    float64 // cost-clock time the operation began
}

type result struct {
	proxy graph.NodeID
	cost  float64
	err   error
}

// Client-fault classification of operation errors, so front ends
// (internal/serve) can map them to request-level statuses without
// string matching. Both wrap into the same messages as before.
var (
	// ErrAlreadyPublished reports a Publish of an object that is
	// already tracked.
	ErrAlreadyPublished = errors.New("already published")
	// ErrNotPublished reports a Move or Query of an object the tracker
	// has never seen (or that was unpublished).
	ErrNotPublished = errors.New("not published")
)

// Tracker runs the distributed MOT protocol over an overlay, one goroutine
// per sensor node.
type Tracker struct {
	g  *graph.Graph
	m  graph.DistanceOracle
	ov overlay.Overlay

	inboxes []chan message
	quit    chan struct{}
	stopped sync.Once
	loops   track.Group

	// slots[n] is owned exclusively by node n's goroutine.
	slots []map[slotKey]*slotState

	locMu sync.Mutex
	loc   map[core.ObjectID]graph.NodeID
	objMu map[core.ObjectID]*sync.Mutex // per-object one-by-one serialization

	costMu    sync.Mutex
	totalCost float64

	// Fault injection (nil without chaos): opSeq numbers operations, the
	// injector decides per-attempt fates, crashed marks nodes explicitly
	// downed via Crash (the runtime has no simulated clock, so chaos crash
	// windows do not apply here), and simDelay accumulates the simulated
	// time lost to backoffs and slow deliveries.
	inj      *chaos.Injector
	opSeq    atomic.Uint64
	crashMu  sync.Mutex
	crashed  []bool
	delayMu  sync.Mutex
	simDelay float64

	// Observability (nil obs disables; see obs.go): the cost clock and
	// the in-flight operation count behind it.
	obs      *obs.Recorder
	obsMu    sync.Mutex
	obsNow   float64
	inflight int

	// Live wall-clock telemetry (nil disables — the pinned 0 allocs/op
	// fast path): per-op latency histograms + sampled spans, served by
	// ServeDebug's /debug/live endpoints. Never feeds measured output.
	live *live.Recorder
}

// New starts a tracker: one goroutine per sensor node of the overlay's
// graph. Call Stop when done.
func New(g *graph.Graph, ov overlay.Overlay) *Tracker {
	return NewChaos(g, ov, nil)
}

// NewChaos starts a tracker whose message deliveries pass through the
// given fault injector (nil behaves exactly like New). Dropped attempts
// are retried up to the injector's MaxAttempts with exponential backoff
// accounted in simulated time (no wall-clock sleeping); exhausting the
// budget surfaces a typed *chaos.DeliveryError on the blocked operation
// instead of hanging it.
func NewChaos(g *graph.Graph, ov overlay.Overlay, inj *chaos.Injector) *Tracker {
	return NewInstrumented(g, ov, inj, nil)
}

// NewInstrumented starts a tracker whose operations additionally record
// spans and per-node metrics into rec (nil rec behaves exactly like
// NewChaos). The runtime's logical clock is a cost clock — see obs.go.
func NewInstrumented(g *graph.Graph, ov overlay.Overlay, inj *chaos.Injector, rec *obs.Recorder) *Tracker {
	return NewLive(g, ov, inj, rec, nil)
}

// NewLive is NewInstrumented plus a wall-clock telemetry sink: each
// public operation's real elapsed time lands in lrec's histograms and
// span reservoir (nil lrec behaves exactly like NewInstrumented and
// keeps the zero-allocation disabled path). Unlike rec, lrec's data is
// non-deterministic by design and never reaches measured artifacts —
// it surfaces only through ServeDebug, expvar, and summaries.
func NewLive(g *graph.Graph, ov overlay.Overlay, inj *chaos.Injector, rec *obs.Recorder, lrec *live.Recorder) *Tracker {
	t := &Tracker{
		g:       g,
		m:       ov.Metric(),
		ov:      ov,
		inboxes: make([]chan message, g.N()),
		quit:    make(chan struct{}),
		slots:   make([]map[slotKey]*slotState, g.N()),
		loc:     make(map[core.ObjectID]graph.NodeID),
		objMu:   make(map[core.ObjectID]*sync.Mutex),
		inj:     inj,
		crashed: make([]bool, g.N()),
		obs:     rec,
		live:    lrec,
	}
	for i := range t.inboxes {
		t.inboxes[i] = make(chan message, 256)
		t.slots[i] = make(map[slotKey]*slotState)
	}
	for i := 0; i < g.N(); i++ {
		id := graph.NodeID(i)
		t.loops.Go(func() { t.nodeLoop(id) })
	}
	return t
}

// Stop shuts down all node goroutines. Pending operations are abandoned.
// Stop is idempotent and safe to call concurrently; every call blocks
// until the loops have drained.
func (t *Tracker) Stop() {
	t.stopped.Do(func() { close(t.quit) })
	t.loops.Wait()
}

// Crash marks node n as down: messages addressed to it are dropped (and
// retried by senders) until Recover. Out-of-range nodes are ignored.
// Crashing affects message delivery only; operations already executing at
// the node finish (sensor radio down, CPU alive).
func (t *Tracker) Crash(n graph.NodeID) {
	st := t.live.Start()
	t.setCrashed(n, true)
	t.live.Observe(live.ClassRecovery, st, int(n), nil)
}

// Recover marks node n as up again.
func (t *Tracker) Recover(n graph.NodeID) {
	st := t.live.Start()
	t.setCrashed(n, false)
	t.live.Observe(live.ClassRecovery, st, int(n), nil)
}

func (t *Tracker) setCrashed(n graph.NodeID, down bool) {
	if int(n) < 0 || int(n) >= len(t.crashed) {
		return
	}
	t.crashMu.Lock()
	t.crashed[n] = down
	t.crashMu.Unlock()
}

func (t *Tracker) isCrashed(n graph.NodeID) bool {
	t.crashMu.Lock()
	defer t.crashMu.Unlock()
	return t.crashed[n]
}

// SimulatedDelay returns the total simulated time spent in retransmission
// backoffs and injected delivery delays (the runtime executes them
// instantly — determinism forbids wall-clock sleeps — but accounts them).
func (t *Tracker) SimulatedDelay() float64 {
	t.delayMu.Lock()
	defer t.delayMu.Unlock()
	return t.simDelay
}

func (t *Tracker) addDelay(d float64) {
	t.delayMu.Lock()
	t.simDelay += d
	t.delayMu.Unlock()
}

// FaultTrace returns the injector's fault trace (nil without chaos).
func (t *Tracker) FaultTrace() *chaos.Trace {
	if t.inj == nil {
		return nil
	}
	return t.inj.Trace()
}

// LiveRecorder returns the tracker's wall-clock telemetry sink (nil
// when live telemetry is off).
func (t *Tracker) LiveRecorder() *live.Recorder { return t.live }

// Cost returns the total distance traveled by all messages so far.
func (t *Tracker) Cost() float64 {
	t.costMu.Lock()
	defer t.costMu.Unlock()
	return t.totalCost
}

// Location returns the current proxy of o.
func (t *Tracker) Location(o core.ObjectID) (graph.NodeID, bool) {
	t.locMu.Lock()
	defer t.locMu.Unlock()
	v, ok := t.loc[o]
	return v, ok
}

func (t *Tracker) objLock(o core.ObjectID) *sync.Mutex {
	t.locMu.Lock()
	defer t.locMu.Unlock()
	mu, ok := t.objMu[o]
	if !ok {
		mu = &sync.Mutex{}
		t.objMu[o] = mu
	}
	return mu
}

// send routes a message from node `from` toward op processing at dest,
// accounting the shortest-path distance (the cost model of §1.1). With a
// fault injector installed, each attempt's fate is a pure hash of the
// message identity (op, hop, attempt): drops are retried after simulated
// backoff (accounted, never slept) until MaxAttempts, then the operation
// unblocks with a typed *chaos.DeliveryError instead of hanging.
//
//motlint:hotpath
func (t *Tracker) send(from graph.NodeID, msg message) {
	op := msg.op
	d := t.m.Dist(from, msg.dest)
	op.hop++
	hop := op.hop
	for attempt := 1; ; attempt++ {
		t.costMu.Lock()
		t.totalCost += d
		t.costMu.Unlock()
		op.cost += d
		t.obsAttempt(op, msg.dest, d, attempt)
		if t.inj == nil {
			t.deliver(msg)
			return
		}
		var drop bool
		var extra float64
		if t.isCrashed(msg.dest) {
			t.inj.DropForced(op.id, hop, attempt, msg.dest)
			drop = true
		} else {
			drop, extra = t.inj.Attempt(op.id, hop, attempt, msg.dest, d, -1)
		}
		if !drop {
			if extra > 0 {
				t.addDelay(extra)
			}
			t.deliver(msg)
			return
		}
		if attempt >= t.inj.MaxAttempts() {
			op.reply <- result{err: t.inj.Fail(op.id, hop, attempt, msg.dest, -1)}
			return
		}
		t.addDelay(d + t.inj.Backoff(attempt))
	}
}

// deliver forwards the message hop by hop to its destination inbox.
//
//motlint:hotpath
func (t *Tracker) deliver(msg message) {
	select {
	case t.inboxes[msg.dest] <- msg:
	case <-t.quit:
	}
}

// nodeLoop is one sensor's event loop.
//
//motlint:hotpath
func (t *Tracker) nodeLoop(id graph.NodeID) {
	for {
		select {
		case <-t.quit:
			return
		case msg := <-t.inboxes[id]:
			t.handle(id, msg.op)
		}
	}
}

func (t *Tracker) slot(n graph.NodeID, st overlay.Station) *slotState {
	k := slotKey{st.Level, st.Key}
	s, ok := t.slots[n][k]
	if !ok {
		//motlint:ignore hotalloc lazy one-time materialization of a node's slot
		s = &slotState{dl: make(map[core.ObjectID]overlay.Station)}
		t.slots[n][k] = s
	}
	return s
}

// proxyMark is the sentinel downward pointer of a bottom-level proxy slot.
var proxyMark = overlay.Station{Level: -1}

// handle processes an operation arriving at node n. The node owns its slot
// state; all mutation happens here.
func (t *Tracker) handle(n graph.NodeID, op *opState) {
	switch op.kind {
	case opPublish, opInsertUp:
		st := op.path[op.level][0]
		t.obsArrive(op, op.level, n)
		s := t.slot(n, st)
		if op.kind == opInsertUp && op.level > 0 {
			if old, ok := s.dl[op.o]; ok {
				// Peak: repoint and start the delete downward.
				s.dl[op.o] = op.path[op.level-1][0]
				t.obsEvent(op, obs.EvPeak, op.level, n, 0)
				t.obsEvent(op, obs.EvStamp, op.level, n, 0)
				op.kind = opDeleteDown
				op.down = old
				t.send(n, message{dest: old.Host, op: op})
				return
			}
		}
		if op.level == 0 {
			s.dl[op.o] = proxyMark
		} else {
			s.dl[op.o] = op.path[op.level-1][0]
		}
		t.obsEvent(op, obs.EvStamp, op.level, n, 0)
		if op.level+1 < len(op.path) {
			op.level++
			t.send(n, message{dest: op.path[op.level][0].Host, op: op})
			return
		}
		op.reply <- result{proxy: n, cost: op.cost}
	case opDeleteDown:
		st := op.down
		t.obsArrive(op, st.Level, n)
		s := t.slot(n, st)
		next, ok := s.dl[op.o]
		if !ok {
			op.reply <- result{err: fmt.Errorf("runtime: delete lost trail of object %d at %v", op.o, st)}
			return
		}
		delete(s.dl, op.o)
		t.obsEvent(op, obs.EvWipe, st.Level, n, 0)
		if next == proxyMark {
			op.reply <- result{proxy: n, cost: op.cost}
			return
		}
		op.down = next
		t.send(n, message{dest: next.Host, op: op})
	case opQueryUp:
		st := op.path[op.level][0]
		t.obsArrive(op, op.level, n)
		s := t.slot(n, st)
		if next, ok := s.dl[op.o]; ok {
			t.obsEvent(op, obs.EvPeak, op.level, n, 0)
			if next == proxyMark {
				op.reply <- result{proxy: n, cost: op.cost}
				return
			}
			op.kind = opQueryDown
			op.down = next
			t.send(n, message{dest: next.Host, op: op})
			return
		}
		if op.level+1 >= len(op.path) {
			op.reply <- result{err: fmt.Errorf("runtime: query for object %d passed the root", op.o)}
			return
		}
		op.level++
		t.send(n, message{dest: op.path[op.level][0].Host, op: op})
	case opQueryDown:
		st := op.down
		t.obsArrive(op, st.Level, n)
		s := t.slot(n, st)
		next, ok := s.dl[op.o]
		if !ok {
			op.reply <- result{err: fmt.Errorf("runtime: query lost trail of object %d at %v", op.o, st)}
			return
		}
		if next == proxyMark {
			op.reply <- result{proxy: n, cost: op.cost}
			return
		}
		op.down = next
		t.send(n, message{dest: next.Host, op: op})
	}
}

// Publish introduces o at sensor node at and blocks until the detection
// trail reaches the root.
func (t *Tracker) Publish(o core.ObjectID, at graph.NodeID) error {
	st := t.live.Start()
	err := t.publish(o, at)
	t.live.Observe(live.ClassPublish, st, int(o), err)
	return err
}

func (t *Tracker) publish(o core.ObjectID, at graph.NodeID) error {
	mu := t.objLock(o)
	mu.Lock()
	defer mu.Unlock()
	t.locMu.Lock()
	if _, ok := t.loc[o]; ok {
		t.locMu.Unlock()
		return fmt.Errorf("runtime: object %d %w", o, ErrAlreadyPublished)
	}
	t.loc[o] = at
	t.locMu.Unlock()
	op := &opState{kind: opPublish, id: t.opSeq.Add(1), o: o, path: t.ov.DPath(at), reply: make(chan result, 1)}
	t.obsBegin(obs.OpPublish, op)
	t.deliver(message{dest: at, op: op})
	res := <-op.reply
	if res.err != nil {
		t.obsEvent(op, obs.EvAbort, -1, at, 0)
	}
	t.obsEnd(op)
	return res.err
}

// Move reports that o moved to sensor node to; it blocks until the
// maintenance operation (insert and delete) completes. Moves of the same
// object serialize (the one-by-one discipline); different objects proceed
// concurrently on the node goroutines.
func (t *Tracker) Move(o core.ObjectID, to graph.NodeID) error {
	st := t.live.Start()
	err := t.move(o, to)
	t.live.Observe(live.ClassMove, st, int(o), err)
	return err
}

func (t *Tracker) move(o core.ObjectID, to graph.NodeID) error {
	mu := t.objLock(o)
	mu.Lock()
	defer mu.Unlock()
	t.locMu.Lock()
	from, ok := t.loc[o]
	if !ok {
		t.locMu.Unlock()
		return fmt.Errorf("runtime: object %d %w", o, ErrNotPublished)
	}
	if from == to {
		t.locMu.Unlock()
		return nil
	}
	t.loc[o] = to
	t.locMu.Unlock()
	op := &opState{kind: opInsertUp, id: t.opSeq.Add(1), o: o, path: t.ov.DPath(to), reply: make(chan result, 1)}
	t.obsBegin(obs.OpMove, op)
	// The bottom-level stamp happens at the new proxy itself.
	t.deliver(message{dest: to, op: op})
	res := <-op.reply
	if res.err != nil {
		t.obsEvent(op, obs.EvAbort, -1, to, 0)
	}
	t.obsEnd(op)
	if res.err != nil {
		return res.err
	}
	if res.proxy != from {
		return fmt.Errorf("runtime: delete for object %d ended at %d, expected old proxy %d", o, res.proxy, from)
	}
	return nil
}

// Query locates o from sensor node from, returning the proxy node and the
// communication cost of the query's search walk.
func (t *Tracker) Query(from graph.NodeID, o core.ObjectID) (graph.NodeID, float64, error) {
	st := t.live.Start()
	proxy, cost, err := t.query(from, o)
	t.live.Observe(live.ClassQuery, st, int(o), err)
	return proxy, cost, err
}

func (t *Tracker) query(from graph.NodeID, o core.ObjectID) (graph.NodeID, float64, error) {
	t.locMu.Lock()
	_, ok := t.loc[o]
	t.locMu.Unlock()
	if !ok {
		return graph.Undefined, 0, fmt.Errorf("runtime: object %d %w", o, ErrNotPublished)
	}
	// Queries share the object's serialization lock so they never observe
	// a half-updated trail (the runtime's one-by-one discipline).
	mu := t.objLock(o)
	mu.Lock()
	defer mu.Unlock()
	op := &opState{kind: opQueryUp, id: t.opSeq.Add(1), o: o, path: t.ov.DPath(from), reply: make(chan result, 1)}
	t.obsBegin(obs.OpQuery, op)
	t.deliver(message{dest: from, op: op})
	res := <-op.reply
	if res.err != nil {
		t.obsEvent(op, obs.EvAbort, -1, from, 0)
	}
	t.obsEnd(op)
	return res.proxy, res.cost, res.err
}
