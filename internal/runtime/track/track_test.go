package track

import (
	"sync/atomic"
	"testing"
)

func TestGroupWaitDrainsAll(t *testing.T) {
	var g Group
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		g.Go(func() { n.Add(1) })
	}
	g.Wait()
	if got := n.Load(); got != 100 {
		t.Fatalf("after Wait: %d goroutines ran, want 100", got)
	}
}

func TestGroupZeroValueWait(t *testing.T) {
	var g Group
	g.Wait() // must not block or panic with nothing launched
}

// TestConcurrentGroupReuse exercises launch-while-draining interleavings;
// it runs under the -race smoke tier (name matches the tier's -run filter).
func TestConcurrentGroupReuse(t *testing.T) {
	var g Group
	var n atomic.Int64
	for round := 0; round < 50; round++ {
		for i := 0; i < 4; i++ {
			g.Go(func() { n.Add(1) })
		}
		g.Wait()
	}
	if got := n.Load(); got != 200 {
		t.Fatalf("ran %d, want 200", got)
	}
}
