// Package track is the one place in library code allowed to launch
// goroutines. Every concurrent helper in the module (the distributed
// tracker's node loops, the metric precomputation pool, the parallel MIS
// rounds, the sweep-cell worker pool) starts its goroutines through a
// Group, so the -race smoke tier can always drain them: a Group is never
// abandoned — its owner calls Wait (or Stop for long-lived loops) before
// returning.
//
// The motlint barego rule enforces the discipline: a bare go statement
// anywhere else in library code is a lint error. Keeping the launch site
// in one package also gives the race tier a single choke point to
// instrument.
package track

import "sync"

// Group tracks a set of goroutines. The zero value is ready to use.
// Go launches, Wait drains. A Group must not be copied after first use.
type Group struct {
	wg sync.WaitGroup
}

// Go runs fn on a new tracked goroutine.
func (g *Group) Go(fn func()) {
	g.wg.Add(1)
	//motlint:ignore barego the module's single sanctioned launch site
	go func() {
		defer g.wg.Done()
		fn()
	}()
}

// Wait blocks until every goroutine launched with Go has returned.
func (g *Group) Wait() {
	g.wg.Wait()
}
