package runtime

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/runtime/track"
)

// newLiveTracker builds a tracker with both observability layers
// attached: the deterministic obs recorder and a live wall-clock sink.
func newLiveTracker(t testing.TB, w, h int) (*Tracker, *live.Recorder) {
	t.Helper()
	g := graph.Grid(w, h)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lrec := live.New("runtime-test", live.Config{SampleSize: 64, Seed: 1})
	tr := NewLive(g, hs, nil, obs.New("runtime"), lrec)
	t.Cleanup(tr.Stop)
	return tr, lrec
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("%s: bad JSON %v:\n%s", path, err, body)
		}
	}
	return resp
}

// TestDebugMuxLiveRoundTrip drives the debug handler through httptest:
// run real ops, then read back the live percentile snapshot and the
// sampled spans exactly as a ServeDebug client would.
func TestDebugMuxLiveRoundTrip(t *testing.T) {
	tr, lrec := newLiveTracker(t, 6, 6)
	for o := 1; o <= 4; o++ {
		if err := tr.Publish(core.ObjectID(o), graph.NodeID(o)); err != nil {
			t.Fatal(err)
		}
		if err := tr.Move(core.ObjectID(o), graph.NodeID(o+20)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := tr.Query(0, core.ObjectID(o)); err != nil {
			t.Fatal(err)
		}
	}
	tr.Crash(3)
	tr.Recover(3)
	lrec.Publish()

	srv := httptest.NewServer(tr.debugMux())
	defer srv.Close()

	var snap live.Snapshot
	if resp := getJSON(t, srv, "/debug/live", &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/live status %d", resp.StatusCode)
	}
	if snap.Label != "runtime-test" {
		t.Fatalf("label = %q", snap.Label)
	}
	if snap.Total.Count != 14 { // 4 publish + 4 move + 4 query + crash + recover
		t.Fatalf("total count = %d, want 14", snap.Total.Count)
	}
	byClass := map[string]live.OpSnapshot{}
	for _, op := range snap.Ops {
		byClass[op.Class] = op
	}
	for _, class := range []string{"publish", "move", "query"} {
		op := byClass[class]
		if op.Count != 4 {
			t.Fatalf("%s count = %d, want 4", class, op.Count)
		}
		if op.P50Ns <= 0 || op.P99Ns < op.P50Ns || op.MaxNs < op.P999Ns {
			t.Fatalf("%s percentiles malformed: %+v", class, op)
		}
	}
	if byClass["recovery"].Count != 2 {
		t.Fatalf("recovery count = %d, want 2 (crash+recover)", byClass["recovery"].Count)
	}

	var samples []live.Sample
	if resp := getJSON(t, srv, "/debug/live/samples", &samples); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/live/samples status %d", resp.StatusCode)
	}
	if len(samples) != 14 {
		t.Fatalf("samples = %d, want all 14 (under reservoir cap)", len(samples))
	}
	for _, s := range samples {
		if s.DurNs < 0 || s.Class == "" {
			t.Fatalf("malformed sample: %+v", s)
		}
	}

	// The deterministic endpoints still serve alongside the live ones.
	var obsSnap map[string]any
	if resp := getJSON(t, srv, "/debug/obs", &obsSnap); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/obs status %d", resp.StatusCode)
	}
	var load []int
	if resp := getJSON(t, srv, "/debug/load", &load); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/load status %d", resp.StatusCode)
	}
	if len(load) != 36 {
		t.Fatalf("load length = %d", len(load))
	}
}

// TestDebugMuxLiveDisabled pins the live-off contract at the HTTP
// surface: the endpoints exist but answer 404, not garbage.
func TestDebugMuxLiveDisabled(t *testing.T) {
	tr, _ := newObsTracker(t, 4, 4)
	srv := httptest.NewServer(tr.debugMux())
	defer srv.Close()
	for _, path := range []string{"/debug/live", "/debug/live/samples"} {
		if resp := getJSON(t, srv, path, nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s with live off: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestServeDebugLive exercises the real listener path: publisher
// lifecycle, expvar registration, and a fresh snapshot over HTTP.
func TestServeDebugLive(t *testing.T) {
	tr, _ := newLiveTracker(t, 4, 4)
	if err := tr.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	srv, err := tr.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/debug/live")
	if err != nil {
		t.Fatal(err)
	}
	var snap live.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Total.Count != 1 {
		t.Fatalf("live snapshot over HTTP: %+v", snap.Total)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRaceDebugCloseDuringStop is the shutdown-ordering regression for
// the debug endpoint: /debug/live requests hammer the server while the
// tracker stops and the server closes, from several goroutines at once.
// Before DebugServer.Close switched to a Shutdown-first teardown, an
// in-flight handler could still be reading the live recorder while the
// publisher and tracker were being torn down around it; Close also
// wasn't guarded, so concurrent or repeated Closes raced on the serve
// loop's Wait. Runs in the -race smoke tier.
func TestRaceDebugCloseDuringStop(t *testing.T) {
	for round := 0; round < 3; round++ {
		g := graph.Grid(4, 4)
		m := graph.NewMetric(g)
		hs, err := hier.Build(g, m, hier.Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		lrec := live.New("race-debug", live.Config{SampleSize: 32, Seed: 1})
		tr := NewLive(g, hs, nil, nil, lrec)
		srv, err := tr.ServeDebug("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Publish(1, 0); err != nil {
			t.Fatal(err)
		}

		var hammers track.Group
		stop := make(chan struct{})
		for w := 0; w < 4; w++ {
			hammers.Go(func() {
				client := &http.Client{Timeout: 2 * time.Second}
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, path := range []string{"/debug/live", "/debug/live/samples"} {
						resp, err := client.Get("http://" + srv.Addr() + path)
						if err != nil {
							// Connection refused/reset once the teardown has
							// won the race is the expected outcome here.
							return
						}
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			})
		}

		// Generate traffic, then tear everything down while requests are
		// still in flight: Close and Stop race each other and themselves.
		for i := 0; i < 10; i++ {
			if err := tr.Move(1, graph.NodeID(1+i%14)); err != nil {
				t.Fatal(err)
			}
		}
		var teardown track.Group
		errs := make([]error, 2)
		teardown.Go(func() { errs[0] = srv.Close() })
		teardown.Go(func() { errs[1] = srv.Close() })
		teardown.Go(tr.Stop)
		teardown.Wait()
		if errs[0] != errs[1] {
			t.Fatalf("double Close disagreed: %v vs %v", errs[0], errs[1])
		}
		if errs[0] != nil {
			t.Fatalf("Close: %v", errs[0])
		}
		// A Close after the fact stays a no-op with the same answer.
		if err := srv.Close(); err != nil {
			t.Fatalf("repeated Close: %v", err)
		}
		close(stop)
		hammers.Wait()
	}
}

// TestLiveOverheadBudget sanity-checks the overhead contract outside
// the bench harness: the same op sequence with live telemetry on must
// not blow past the live-off time. The precise ≤10% pin lives in
// internal/bench (runtime/ops-live-on vs -off, recorded in
// BENCH_10.json); here we take min-of-3 trials and assert a loose 1.5×
// ceiling so scheduler noise on 1-CPU CI can't flake the tier.
func TestLiveOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	run := func(lrec *live.Recorder) time.Duration {
		g := graph.Grid(8, 8)
		m := graph.NewMetric(g)
		hs, err := hier.Build(g, m, hier.Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		tr := NewLive(g, hs, nil, nil, lrec)
		defer tr.Stop()
		if err := tr.Publish(1, 0); err != nil {
			t.Fatal(err)
		}
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 3; trial++ {
			t0 := time.Now()
			for i := 0; i < 200; i++ {
				if err := tr.Move(1, graph.NodeID(1+i%60)); err != nil {
					t.Fatal(err)
				}
				if _, _, err := tr.Query(63, 1); err != nil {
					t.Fatal(err)
				}
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	off := run(nil)
	on := run(live.New("overhead", live.Config{}))
	if off > 0 && float64(on) > 1.5*float64(off) {
		t.Fatalf("live-on %v vs live-off %v: overhead beyond loose 1.5x ceiling", on, off)
	}
	t.Logf("live-off %v, live-on %v (%.1f%%)", off, on, 100*(float64(on)/float64(off)-1))
}
