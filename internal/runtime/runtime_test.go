package runtime

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hier"
)

func newTracker(t testing.TB, w, h int) (*Tracker, *graph.Graph) {
	t.Helper()
	g := graph.Grid(w, h)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := New(g, hs)
	t.Cleanup(tr.Stop)
	return tr, g
}

func TestPublishQuerySingle(t *testing.T) {
	tr, g := newTracker(t, 6, 6)
	if err := tr.Publish(1, 17); err != nil {
		t.Fatal(err)
	}
	if err := tr.Publish(1, 0); err == nil {
		t.Fatal("duplicate publish accepted")
	}
	for u := 0; u < g.N(); u += 5 {
		got, cost, err := tr.Query(graph.NodeID(u), 1)
		if err != nil {
			t.Fatalf("query from %d: %v", u, err)
		}
		if got != 17 {
			t.Fatalf("query from %d said %d", u, got)
		}
		if cost < 0 {
			t.Fatalf("negative cost %v", cost)
		}
	}
	if tr.Cost() <= 0 {
		t.Fatal("no message cost recorded")
	}
}

func TestMoveAndTrack(t *testing.T) {
	tr, g := newTracker(t, 7, 7)
	if err := tr.Publish(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Move(9, 1); err == nil {
		t.Fatal("move of unpublished accepted")
	}
	if _, _, err := tr.Query(0, 9); err == nil {
		t.Fatal("query of unpublished accepted")
	}
	rng := rand.New(rand.NewSource(8))
	cur := graph.NodeID(0)
	for i := 0; i < 60; i++ {
		nbrs := g.NeighborIDs(cur)
		cur = nbrs[rng.Intn(len(nbrs))]
		if err := tr.Move(2, cur); err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
		if v, _ := tr.Location(2); v != cur {
			t.Fatalf("location %d want %d", v, cur)
		}
	}
	got, _, err := tr.Query(24, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != cur {
		t.Fatalf("query said %d, proxy %d", got, cur)
	}
}

func TestMoveNoop(t *testing.T) {
	tr, _ := newTracker(t, 4, 4)
	if err := tr.Publish(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := tr.Move(1, 3); err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.Location(1); v != 3 {
		t.Fatal("no-op move changed location")
	}
}

// Many objects tracked concurrently from multiple client goroutines — the
// distributed node loops must handle interleaved traffic for different
// objects without corruption.
func TestConcurrentObjectsParallelClients(t *testing.T) {
	tr, g := newTracker(t, 8, 8)
	const objs = 12
	var wg sync.WaitGroup
	errCh := make(chan error, objs)
	finals := make([]graph.NodeID, objs)
	for o := 0; o < objs; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + o)))
			cur := graph.NodeID(rng.Intn(g.N()))
			if err := tr.Publish(core.ObjectID(o), cur); err != nil {
				errCh <- err
				return
			}
			for i := 0; i < 40; i++ {
				nbrs := g.NeighborIDs(cur)
				cur = nbrs[rng.Intn(len(nbrs))]
				if err := tr.Move(core.ObjectID(o), cur); err != nil {
					errCh <- err
					return
				}
				if i%10 == 0 {
					from := graph.NodeID(rng.Intn(g.N()))
					got, _, err := tr.Query(from, core.ObjectID(o))
					if err != nil {
						errCh <- err
						return
					}
					if got != cur {
						errCh <- errQuery{o: o, got: got, want: cur}
						return
					}
				}
			}
			finals[o] = cur
		}(o)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for o := 0; o < objs; o++ {
		got, _, err := tr.Query(0, core.ObjectID(o))
		if err != nil {
			t.Fatal(err)
		}
		if got != finals[o] {
			t.Fatalf("object %d at %d, query said %d", o, finals[o], got)
		}
	}
}

type errQuery struct {
	o         int
	got, want graph.NodeID
}

func (e errQuery) Error() string {
	return "query mismatch"
}

func TestStopTerminates(t *testing.T) {
	g := graph.Grid(4, 4)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := New(g, hs)
	if err := tr.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	tr.Stop() // must return promptly; Cleanup-free direct call
}
