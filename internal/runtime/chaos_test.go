package runtime

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hier"
)

func newChaosTracker(t testing.TB, w, h int, cfg chaos.Config) (*Tracker, *graph.Graph) {
	t.Helper()
	g := graph.Grid(w, h)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewChaos(g, hs, chaos.NewInjector(cfg, g.N()))
	t.Cleanup(tr.Stop)
	return tr, g
}

// Regression: Stop used to panic on the second call (double close of the
// quit channel). It must now be idempotent — twice sequentially and from
// many goroutines at once under -race.
func TestRaceDoubleStop(t *testing.T) {
	tr, _ := newTracker(t, 4, 4)
	tr.Stop()
	tr.Stop() // second sequential call must not panic

	tr2, _ := newTracker(t, 4, 4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr2.Stop()
		}()
	}
	wg.Wait()
}

// chaosWorkload drives a small sequential workload and reports the fault
// trace, accounted simulated delay, and how many operations failed with a
// typed delivery error.
func chaosWorkload(t *testing.T, tr *Tracker, g *graph.Graph) (trace string, delay float64, failed int) {
	t.Helper()
	count := func(err error) {
		if err == nil {
			return
		}
		var de *chaos.DeliveryError
		if !errors.As(err, &de) {
			t.Fatalf("unexpected non-chaos error: %v", err)
		}
		failed++
	}
	for o := 1; o <= 3; o++ {
		count(tr.Publish(core.ObjectID(o), graph.NodeID(o*5%g.N())))
	}
	for i := 0; i < 10; i++ {
		count(tr.Move(core.ObjectID(i%3+1), graph.NodeID((i*7+3)%g.N())))
	}
	for i := 0; i < 6; i++ {
		_, _, err := tr.Query(graph.NodeID((i*11)%g.N()), core.ObjectID(i%3+1))
		count(err)
	}
	return tr.FaultTrace().Render(), tr.SimulatedDelay(), failed
}

// The same chaos seed must reproduce the fault trace and accounted delay
// byte for byte across fresh trackers; a different seed must not.
func TestChaosRuntimeTraceReplays(t *testing.T) {
	run := func(seed int64) (string, float64) {
		tr, g := newChaosTracker(t, 6, 6, chaos.Config{
			Seed: seed, DropRate: 0.3, DelayRate: 0.3, MaxAttempts: 10,
		})
		trace, delay, failed := chaosWorkload(t, tr, g)
		if failed != 0 {
			t.Fatalf("seed %d: %d operations failed despite a 10-attempt budget", seed, failed)
		}
		if trace == "" {
			t.Fatalf("seed %d: no faults injected at drop rate 0.3", seed)
		}
		if delay <= 0 {
			t.Fatalf("seed %d: retries and slow deliveries accounted no simulated delay", seed)
		}
		return trace, delay
	}
	t1, d1 := run(9)
	t2, d2 := run(9)
	if t1 != t2 || d1 != d2 {
		t.Fatal("same chaos seed did not replay byte-identically")
	}
	t3, _ := run(10)
	if t1 == t3 {
		t.Fatal("different chaos seeds produced identical traces")
	}
}

// Crashed nodes drop every message addressed to them: an operation that
// must route through a crashed station exhausts its budget and fails with
// a typed *chaos.DeliveryError instead of hanging. After Recover, fresh
// operations succeed again.
func TestChaosRuntimeCrashFailsThenRecovers(t *testing.T) {
	tr, g := newChaosTracker(t, 5, 5, chaos.Config{Seed: 1, MaxAttempts: 3})
	if err := tr.Publish(1, 12); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < g.N(); n++ {
		tr.Crash(graph.NodeID(n))
	}
	err := tr.Move(1, 3)
	var de *chaos.DeliveryError
	if !errors.As(err, &de) {
		t.Fatalf("move through a fully crashed network returned %v, want *chaos.DeliveryError", err)
	}
	if de.Attempts != 3 {
		t.Fatalf("delivery gave up after %d attempts, want MaxAttempts=3", de.Attempts)
	}
	if tr.SimulatedDelay() <= 0 {
		t.Fatal("retransmission backoffs accounted no simulated delay")
	}
	// The trace holds only forced crash drops plus the terminal failure.
	crashes, fails := 0, 0
	for _, ev := range tr.FaultTrace().Events() {
		switch ev.Kind {
		case "crash":
			crashes++
		case "fail":
			fails++
		default:
			t.Fatalf("unexpected %q event in crash-only run: %v", ev.Kind, ev)
		}
	}
	if crashes != 3 || fails != 1 {
		t.Fatalf("trace recorded %d crash drops and %d failures, want 3 and 1", crashes, fails)
	}
	for n := 0; n < g.N(); n++ {
		tr.Recover(graph.NodeID(n))
	}
	// The failed move left object 1's trail torn; fresh objects must work.
	if err := tr.Publish(2, 7); err != nil {
		t.Fatalf("publish after recovery: %v", err)
	}
	if err := tr.Move(2, 18); err != nil {
		t.Fatalf("move after recovery: %v", err)
	}
	got, _, err := tr.Query(0, 2)
	if err != nil || got != 18 {
		t.Fatalf("query after recovery: proxy %d err %v, want 18", got, err)
	}
}

// Without chaos, the fault surface stays inert: no trace, no delay, and
// Crash on an out-of-range node is ignored.
func TestChaosRuntimeDisabledByDefault(t *testing.T) {
	tr, _ := newTracker(t, 4, 4)
	tr.Crash(-1)
	tr.Crash(10_000)
	if tr.FaultTrace() != nil {
		t.Fatal("FaultTrace non-nil without an injector")
	}
	if tr.SimulatedDelay() != 0 {
		t.Fatal("simulated delay accounted without an injector")
	}
	if err := tr.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
}
