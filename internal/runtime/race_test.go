package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// Race-detector stress for the goroutine tracker: many client goroutines
// publish, move, and query distinct objects concurrently while the sensor
// node goroutines route the operations, and readers poll Location and
// Cost the whole time. Run under `go test -race` (the `make check` smoke
// tier does); it asserts the final tracked locations match the ground
// truth each client computed locally.
func TestRaceTrackerMovesAndQueries(t *testing.T) {
	tr, g := newTracker(t, 6, 6)
	const (
		objs  = 16
		moves = 25
	)
	truth := make([]graph.NodeID, objs)
	errCh := make(chan error, objs+1)
	var clients, poller sync.WaitGroup

	// Background reader: Location and Cost must be safe to call while
	// moves are in flight.
	stopPoll := make(chan struct{})
	poller.Add(1)
	go func() {
		defer poller.Done()
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			for o := 0; o < objs; o++ {
				tr.Location(core.ObjectID(o))
			}
			if tr.Cost() < 0 {
				errCh <- fmt.Errorf("negative total cost")
				return
			}
		}
	}()

	for o := 0; o < objs; o++ {
		clients.Add(1)
		go func(o int) {
			defer clients.Done()
			rng := rand.New(rand.NewSource(int64(1000 + o)))
			cur := graph.NodeID(rng.Intn(g.N()))
			if err := tr.Publish(core.ObjectID(o), cur); err != nil {
				errCh <- err
				return
			}
			for i := 0; i < moves; i++ {
				nbrs := g.NeighborIDs(cur)
				cur = nbrs[rng.Intn(len(nbrs))]
				if err := tr.Move(core.ObjectID(o), cur); err != nil {
					errCh <- err
					return
				}
				if i%7 == 0 {
					from := graph.NodeID(rng.Intn(g.N()))
					got, cost, err := tr.Query(from, core.ObjectID(o))
					if err != nil {
						errCh <- err
						return
					}
					if got != cur {
						errCh <- fmt.Errorf("object %d: query said %d, at %d", o, got, cur)
						return
					}
					if cost < 0 {
						errCh <- fmt.Errorf("object %d: negative query cost", o)
						return
					}
				}
			}
			truth[o] = cur
		}(o)
	}
	// Wait for the clients, then release the poller (it would otherwise
	// spin forever).
	clients.Wait()
	close(stopPoll)
	poller.Wait()

	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Ground truth: the tracker's final answer for every object matches
	// the walk its client performed.
	for o := 0; o < objs; o++ {
		got, _, err := tr.Query(0, core.ObjectID(o))
		if err != nil {
			t.Fatal(err)
		}
		if got != truth[o] {
			t.Fatalf("object %d finished at %d, tracker says %d", o, truth[o], got)
		}
		if loc, ok := tr.Location(core.ObjectID(o)); !ok || loc != truth[o] {
			t.Fatalf("object %d Location=(%d,%v), want %d", o, loc, ok, truth[o])
		}
	}
	if tr.Cost() <= 0 {
		t.Fatal("no message cost accounted")
	}
}
