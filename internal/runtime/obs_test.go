package runtime

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hier"
	"repro/internal/obs"
)

func newObsTracker(t testing.TB, w, h int) (*Tracker, *obs.Recorder) {
	t.Helper()
	g := graph.Grid(w, h)
	m := graph.NewMetric(g)
	hs, err := hier.Build(g, m, hier.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New("runtime")
	tr := NewInstrumented(g, hs, nil, rec)
	t.Cleanup(tr.Stop)
	return tr, rec
}

// TestInstrumentedSpans checks that sequential operations produce one
// span each, on a monotone cost clock, with stamp/wipe/peak annotations.
func TestInstrumentedSpans(t *testing.T) {
	tr, rec := newObsTracker(t, 6, 6)
	if err := tr.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Move(1, 35); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Query(17, 1); err != nil {
		t.Fatal(err)
	}
	if rec.SpanCount() != 3 {
		t.Fatalf("spans = %d, want 3", rec.SpanCount())
	}
	var out strings.Builder
	if err := rec.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("jsonl lines = %d", len(lines))
	}
	for i, want := range []string{obs.OpPublish, obs.OpMove, obs.OpQuery} {
		if !strings.Contains(lines[i], `"kind":"`+want+`"`) {
			t.Fatalf("line %d missing kind %s: %s", i, want, lines[i])
		}
	}
	if !strings.Contains(lines[0], obs.EvStamp) {
		t.Fatalf("publish span has no stamps: %s", lines[0])
	}
	if !strings.Contains(lines[1], obs.EvWipe) || !strings.Contains(lines[1], obs.EvPeak) {
		t.Fatalf("move span missing wipe/peak: %s", lines[1])
	}
	snap := rec.Snapshot()
	if len(snap.Series) == 0 {
		t.Fatal("no series recorded")
	}
	gotGauge := false
	for _, g := range snap.Gauges {
		if g.Name == "ops.inflight" && g.Value >= 1 {
			gotGauge = true
		}
	}
	if !gotGauge {
		t.Fatalf("ops.inflight gauge missing: %+v", snap.Gauges)
	}
}

// TestLoadByNodeAndObserveLoad checks the quiescent storage-load view.
func TestLoadByNodeAndObserveLoad(t *testing.T) {
	tr, rec := newObsTracker(t, 5, 5)
	for o := 1; o <= 3; o++ {
		if err := tr.Publish(core.ObjectID(o), graph.NodeID(o*7%25)); err != nil {
			t.Fatal(err)
		}
	}
	load := tr.LoadByNode()
	if len(load) != 25 {
		t.Fatalf("load length = %d", len(load))
	}
	total := 0
	for _, v := range load {
		total += v
	}
	if total == 0 {
		t.Fatal("no entries counted")
	}
	tr.ObserveLoad()
	vals := rec.SeriesValues(obs.SeriesNodeEntries)
	if len(vals) != 25 {
		t.Fatalf("series length = %d", len(vals))
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	if int(sum) != total {
		t.Fatalf("series sum %v != load total %d", sum, total)
	}
}

// TestServeDebug exercises the opt-in debug endpoint end to end.
func TestServeDebug(t *testing.T) {
	tr, _ := newObsTracker(t, 4, 4)
	if err := tr.Publish(1, 5); err != nil {
		t.Fatal(err)
	}
	srv, err := tr.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad /debug/obs JSON: %v\n%s", err, body)
	}
	if snap.Label != "runtime" || snap.Spans != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/debug/load")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var load []int
	if err := json.Unmarshal(body, &load); err != nil {
		t.Fatalf("bad /debug/load JSON: %v\n%s", err, body)
	}
	if len(load) != 16 {
		t.Fatalf("load = %v", load)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expvar status %d", resp.StatusCode)
	}
}
