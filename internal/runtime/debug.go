package runtime

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/obs/live"
	"repro/internal/runtime/track"
)

// closeTimeout bounds how long Close waits for in-flight debug requests
// before cutting their connections.
const closeTimeout = 5 * time.Second

// DebugServer is the opt-in diagnostics endpoint of a live tracker.
type DebugServer struct {
	addr string
	srv  *http.Server
	pub  *live.Publisher
	g    track.Group

	closeOnce sync.Once
	closeErr  error
}

// Addr returns the address the server listens on (host:port).
func (s *DebugServer) Addr() string { return s.addr }

// Close tears the endpoint down in dependency order: first the HTTP
// server via Shutdown — which waits for in-flight handlers, so a
// /debug/live request racing the teardown finishes against a live
// publisher rather than observing it mid-stop — then the snapshot
// publisher, then the serve loop. Requests that outstay closeTimeout
// get their connections cut instead of stalling the teardown forever.
//
// Close is idempotent and safe to call concurrently with itself and
// with Tracker.Stop: every call blocks until the first teardown
// finishes and returns its error. Callers shutting a tracker down
// should Close the debug server before Stop so no handler can observe
// the tracker mid-stop.
func (s *DebugServer) Close() error {
	s.closeOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), closeTimeout)
		defer cancel()
		err := s.srv.Shutdown(ctx)
		if err != nil {
			// Drain budget exhausted (or the context tree was torn down):
			// cut the straggler connections. Shutdown already closed the
			// listener, so nothing new gets in either way.
			err = s.srv.Close()
		}
		s.pub.Stop()
		s.g.Wait()
		s.closeErr = err
	})
	return s.closeErr
}

// DebugMux returns the tracker's diagnostics handler — what ServeDebug
// serves — so front ends (internal/serve mounts one per shard) and
// tests can mount it under their own prefix without binding a listener.
// The /debug/live endpoints fall back to an on-demand snapshot when no
// Publisher runs, so the mux is self-contained.
func (t *Tracker) DebugMux() *http.ServeMux { return t.debugMux() }

// debugMux builds the tracker's diagnostics handler — split out from
// ServeDebug so tests can drive it through httptest without binding a
// real listener.
func (t *Tracker) debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.obs.Snapshot())
	})
	mux.HandleFunc("/debug/load", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(t.LoadByNode())
	})
	mux.HandleFunc("/debug/live", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if t.live == nil {
			http.Error(w, `{"error":"live telemetry disabled"}`, http.StatusNotFound)
			return
		}
		b, err := live.MarshalSnapshotJSON(t.live.Latest())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(b)
	})
	mux.HandleFunc("/debug/live/samples", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if t.live == nil {
			http.Error(w, `{"error":"live telemetry disabled"}`, http.StatusNotFound)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.live.Samples())
	})
	return mux
}

// ServeDebug starts an HTTP debug endpoint for the tracker on addr (use
// "127.0.0.1:0" for an ephemeral port): /debug/obs serves the current
// observability snapshot as JSON, /debug/load the per-node entry counts,
// /debug/live and /debug/live/samples the wall-clock latency snapshot
// and sampled spans when the tracker was built with NewLive, and the
// standard expvar and pprof handlers ride along. With live telemetry
// attached, the snapshot republishes once a second and is also exposed
// as the expvar "live.<label>". Strictly opt-in — nothing listens
// unless this is called — and diagnostics only: measured runs export
// through internal/obs writers instead.
func (t *Tracker) ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &DebugServer{addr: ln.Addr().String(), srv: &http.Server{Handler: t.debugMux()}}
	if t.live != nil {
		t.live.PublishExpvar()
		s.pub = t.live.StartPublisher(time.Second)
	}
	s.g.Go(func() { _ = s.srv.Serve(ln) })
	return s, nil
}
