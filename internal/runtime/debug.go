package runtime

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/runtime/track"
)

// DebugServer is the opt-in diagnostics endpoint of a live tracker.
type DebugServer struct {
	addr string
	srv  *http.Server
	g    track.Group
}

// Addr returns the address the server listens on (host:port).
func (s *DebugServer) Addr() string { return s.addr }

// Close shuts the server down and waits for its serve loop to exit.
func (s *DebugServer) Close() error {
	err := s.srv.Close()
	s.g.Wait()
	return err
}

// ServeDebug starts an HTTP debug endpoint for the tracker on addr (use
// "127.0.0.1:0" for an ephemeral port): /debug/obs serves the current
// observability snapshot as JSON, /debug/load the per-node entry counts,
// and the standard expvar and pprof handlers ride along. Strictly
// opt-in — nothing listens unless this is called — and diagnostics only:
// measured runs export through internal/obs writers instead.
func (t *Tracker) ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.obs.Snapshot())
	})
	mux.HandleFunc("/debug/load", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(t.LoadByNode())
	})
	s := &DebugServer{addr: ln.Addr().String(), srv: &http.Server{Handler: mux}}
	s.g.Go(func() { _ = s.srv.Serve(ln) })
	return s, nil
}
