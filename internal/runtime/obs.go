package runtime

import (
	"repro/internal/graph"
	"repro/internal/obs"
)

// Observability hooks for the live-goroutine substrate. The runtime has
// no clock at all (motlint's walltime rule bans wall time, and sleeping
// would break determinism), so the logical clock is a cost clock: a span
// opens at the current accumulated clock value and the clock advances by
// the operation's cost when it completes. Under sequential replay —
// one blocking operation at a time, the mode the golden tests drive —
// this ordering is exact and exports are byte-deterministic; racing
// clients still record safely, but span ids then follow the racy issue
// order. Events inside a span carry the span's start time (the runtime
// cannot time individual hops) and rely on Seq for ordering.

// obsBegin opens the span for op and bumps the in-flight gauge.
func (t *Tracker) obsBegin(kind string, op *opState) {
	if t.obs == nil {
		return
	}
	t.obsMu.Lock()
	op.at = t.obsNow
	t.inflight++
	t.obs.GaugeMax("ops.inflight", float64(t.inflight))
	t.obsMu.Unlock()
	op.span = t.obs.StartSpan(kind, op.id, int(op.o), op.at)
}

// obsEnd closes op's span, advancing the cost clock by its final cost.
func (t *Tracker) obsEnd(op *opState) {
	if t.obs == nil {
		return
	}
	t.obsMu.Lock()
	t.obsNow += op.cost
	end := t.obsNow
	t.inflight--
	t.obsMu.Unlock()
	op.span.End(end)
}

// obsEvent annotates op's span (event time = span start; Seq orders).
func (t *Tracker) obsEvent(op *opState, kind string, level int, node graph.NodeID, cost float64) {
	if t.obs == nil {
		return
	}
	op.span.Event(kind, level, int(node), cost, op.at)
}

// obsArrive accounts the operation's arrival at node n while processing
// the given overlay level.
func (t *Tracker) obsArrive(op *opState, level int, n graph.NodeID) {
	if t.obs == nil {
		return
	}
	t.obs.AddAt(obs.SeriesLevelHops, level, 1)
	op.span.Event(obs.EvHop, level, int(n), 0, op.at)
}

// obsAttempt accounts one transmission attempt toward dest (retries
// included, mirroring the cost meter).
func (t *Tracker) obsAttempt(op *opState, dest graph.NodeID, d float64, attempt int) {
	if t.obs == nil {
		return
	}
	t.obs.AddAt(obs.SeriesNodeMsgs, int(dest), 1)
	if attempt > 1 {
		op.span.Event(obs.EvRetry, -1, int(dest), d, op.at)
	}
}

// LoadByNode returns the number of detection-list entries stored at each
// sensor node. Slot state is owned by the node goroutines, so call only
// at quiescence (no operations in flight).
func (t *Tracker) LoadByNode() []int {
	out := make([]int, len(t.slots))
	for n, slots := range t.slots {
		for _, s := range slots {
			out[n] += len(s.dl)
		}
	}
	return out
}

// ObserveLoad snapshots LoadByNode into the recorder's node.entries
// series, replacing any previous snapshot. Quiescence rules as above.
func (t *Tracker) ObserveLoad() {
	if t.obs == nil {
		return
	}
	load := t.LoadByNode()
	vals := make([]float64, len(load))
	for i, v := range load {
		vals[i] = float64(v)
	}
	t.obs.SetSeries(obs.SeriesNodeEntries, vals)
}
