package debruijn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func members(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i * 3) // arbitrary non-contiguous IDs
	}
	return out
}

func TestNewDimension(t *testing.T) {
	cases := []struct{ size, d int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {17, 5},
	}
	for _, c := range cases {
		e := New(members(c.size))
		if e.Dimension() != c.d {
			t.Errorf("size %d: dimension %d, want %d", c.size, e.Dimension(), c.d)
		}
		if e.Size() != c.size {
			t.Errorf("size %d reported %d", c.size, e.Size())
		}
	}
}

func TestNewEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil) did not panic")
		}
	}()
	New(nil)
}

func TestHostMapping(t *testing.T) {
	e := New(members(5)) // d = 3, labels 0..7
	for l := 0; l < 5; l++ {
		h, err := e.Host(l)
		if err != nil || h != graph.NodeID(l*3) {
			t.Fatalf("Host(%d) = %d, %v", l, h, err)
		}
	}
	// Labels 5..7 emulated by stripping the MSB (bit 2): 5->1, 6->2, 7->3.
	for _, c := range []struct{ label, want int }{{5, 1}, {6, 2}, {7, 3}} {
		h, err := e.Host(c.label)
		if err != nil || h != graph.NodeID(c.want*3) {
			t.Fatalf("Host(%d) = %d, %v; want member %d", c.label, h, err, c.want)
		}
	}
	if _, err := e.Host(8); err == nil {
		t.Fatal("Host(8) accepted")
	}
	if _, err := e.Host(-1); err == nil {
		t.Fatal("Host(-1) accepted")
	}
}

func TestLabelOf(t *testing.T) {
	e := New(members(6))
	for i := 0; i < 6; i++ {
		if got := e.LabelOf(graph.NodeID(i * 3)); got != i {
			t.Fatalf("LabelOf(%d) = %d", i*3, got)
		}
	}
	if e.LabelOf(graph.NodeID(1)) != -1 {
		t.Fatal("LabelOf non-member should be -1")
	}
}

func TestRouteValidEdges(t *testing.T) {
	e := New(members(8)) // d = 3
	mask := (1 << 3) - 1
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			path, err := e.Route(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if path[0] != u || path[len(path)-1] != v {
				t.Fatalf("route %d->%d = %v", u, v, path)
			}
			if len(path)-1 > 3 {
				t.Fatalf("route %d->%d longer than diameter: %v", u, v, path)
			}
			for i := 1; i < len(path); i++ {
				from, to := path[i-1], path[i]
				if ((from<<1)&mask) != to&^1 && ((from<<1)|1)&mask != to {
					t.Fatalf("route %d->%d has invalid edge %d->%d", u, v, from, to)
				}
			}
		}
	}
}

func TestRouteSelf(t *testing.T) {
	e := New(members(4))
	path, err := e.Route(2, 2)
	if err != nil || len(path) != 1 || path[0] != 2 {
		t.Fatalf("self route %v, %v", path, err)
	}
}

func TestRouteOutOfRange(t *testing.T) {
	e := New(members(4))
	if _, err := e.Route(0, 9); err == nil {
		t.Fatal("out-of-range route accepted")
	}
}

func TestRouteUsesOverlap(t *testing.T) {
	e := New(members(8)) // d = 3
	// 011 -> 110 shares overlap "11": route should take 1 hop.
	path, err := e.Route(0b011, 0b110)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Fatalf("overlap route %v, want single hop", path)
	}
}

func TestRouteCostNonNegativeAndBounded(t *testing.T) {
	g := graph.Grid(4, 4)
	m := graph.NewMetric(g)
	var nodes []graph.NodeID
	for i := 0; i < 8; i++ {
		nodes = append(nodes, graph.NodeID(i))
	}
	e := New(nodes)
	diam := m.Diameter()
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			c, err := e.RouteCost(m, u, v)
			if err != nil {
				t.Fatal(err)
			}
			if c < 0 || c > float64(e.Dimension())*diam {
				t.Fatalf("route cost %v out of bounds", c)
			}
		}
	}
}

func TestNeighborTableConstantSize(t *testing.T) {
	e := New(members(7))
	for l := 0; l < 1<<e.Dimension(); l++ {
		tab, err := e.NeighborTable(l)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab) != 2 {
			t.Fatalf("label %d has %d out-neighbors", l, len(tab))
		}
	}
	if _, err := e.NeighborTable(99); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestJoinLeaveBasic(t *testing.T) {
	e := New(members(3)) // labels 0,3,6
	if _, err := e.Join(graph.NodeID(3)); err == nil {
		t.Fatal("duplicate join accepted")
	}
	upd, err := e.Join(graph.NodeID(100))
	if err != nil {
		t.Fatal(err)
	}
	if upd <= 0 {
		t.Fatal("join reported zero updates")
	}
	if e.Size() != 4 || !e.Contains(100) || e.LabelOf(100) != 3 {
		t.Fatalf("post-join state: size=%d label=%d", e.Size(), e.LabelOf(100))
	}
	// Leave a middle node: tail takes its label.
	if _, err := e.Leave(graph.NodeID(3)); err != nil {
		t.Fatal(err)
	}
	if e.Contains(3) || e.LabelOf(100) != 1 || e.Size() != 3 {
		t.Fatalf("post-leave state: size=%d label(100)=%d", e.Size(), e.LabelOf(100))
	}
	if _, err := e.Leave(graph.NodeID(3)); err == nil {
		t.Fatal("double leave accepted")
	}
}

func TestLeaveLastMemberRejected(t *testing.T) {
	e := New(members(1))
	if _, err := e.Leave(graph.NodeID(0)); err == nil {
		t.Fatal("removing last member accepted")
	}
}

func TestDimensionChangesOnPowerOfTwo(t *testing.T) {
	e := New(members(4)) // d=2
	upd, err := e.Join(graph.NodeID(500))
	if err != nil {
		t.Fatal(err)
	}
	if e.Dimension() != 3 {
		t.Fatalf("dimension %d after growing past 4", e.Dimension())
	}
	if upd != 5 {
		t.Fatalf("dimension-growing join updated %d nodes, want all 5", upd)
	}
	upd, err = e.Leave(graph.NodeID(500))
	if err != nil {
		t.Fatal(err)
	}
	if e.Dimension() != 2 {
		t.Fatalf("dimension %d after shrinking to 4", e.Dimension())
	}
	if upd != 5 {
		t.Fatalf("dimension-shrinking leave updated %d, want 5", upd)
	}
}

// §7: amortized adaptability is O(1) per join/leave within a cluster.
func TestAmortizedAdaptabilityConstant(t *testing.T) {
	e := New(members(1))
	total := 0
	const ops = 2000
	// Grow by 1000, then shrink by 1000, counting updates.
	for i := 0; i < ops/2; i++ {
		upd, err := e.Join(graph.NodeID(1000 + i))
		if err != nil {
			t.Fatal(err)
		}
		total += upd
	}
	for i := ops/2 - 1; i >= 0; i-- {
		upd, err := e.Leave(graph.NodeID(1000 + i))
		if err != nil {
			t.Fatal(err)
		}
		total += upd
	}
	if avg := float64(total) / ops; avg > 12 {
		t.Fatalf("amortized adaptability %v updates/op, want O(1)", avg)
	}
}

// Property: after any join/leave sequence, labels remain a bijection onto
// 0..|X|-1 and every de Bruijn vertex resolves to a member.
func TestQuickJoinLeaveConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New(members(3))
		present := map[graph.NodeID]bool{0: true, 3: true, 6: true}
		nextID := graph.NodeID(1000)
		for i := 0; i < 60; i++ {
			if rng.Intn(2) == 0 || e.Size() <= 1 {
				id := nextID
				nextID++
				if _, err := e.Join(id); err != nil {
					return false
				}
				present[id] = true
			} else {
				// Remove a random present member.
				var pick graph.NodeID
				k := rng.Intn(len(present))
				for h := range present {
					if k == 0 {
						pick = h
						break
					}
					k--
				}
				if _, err := e.Leave(pick); err != nil {
					return false
				}
				delete(present, pick)
			}
			// Bijection check.
			seen := map[int]bool{}
			for h := range present {
				l := e.LabelOf(h)
				if l < 0 || l >= e.Size() || seen[l] {
					return false
				}
				seen[l] = true
			}
			// Every vertex label resolves.
			for l := 0; l < 1<<e.Dimension(); l++ {
				if _, err := e.Host(l); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRoute(b *testing.B) {
	e := New(members(64))
	for i := 0; i < b.N; i++ {
		if _, err := e.Route(i%64, (i*7)%64); err != nil {
			b.Fatal(err)
		}
	}
}
