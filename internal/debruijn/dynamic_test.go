package debruijn

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// checkConsistent verifies the structural invariants the §7 relabeling
// must preserve after every Join/Leave: labels form a bijection onto
// 0..|X|-1, the emulated dimension matches the member count, and every
// neighborhood table resolves to current members.
func checkConsistent(e *Embedding) error {
	size := e.Size()
	if got, want := e.Dimension(), dimension(size); got != want {
		return fmt.Errorf("dimension %d for %d members, want %d", got, size, want)
	}
	seen := make(map[graph.NodeID]bool, size)
	for label := 0; label < size; label++ {
		h, err := e.Host(label)
		if err != nil {
			return fmt.Errorf("Host(%d): %w", label, err)
		}
		if seen[h] {
			return fmt.Errorf("host %d emulates two labels", h)
		}
		seen[h] = true
		if e.LabelOf(h) != label {
			return fmt.Errorf("LabelOf(%d) = %d, want %d", h, e.LabelOf(h), label)
		}
		if !e.Contains(h) {
			return fmt.Errorf("member %d not Contains()ed", h)
		}
		nt, err := e.NeighborTable(label)
		if err != nil {
			return fmt.Errorf("NeighborTable(%d): %w", label, err)
		}
		for _, nb := range nt {
			if !e.Contains(nb) {
				return fmt.Errorf("label %d neighbor host %d left the cluster", label, nb)
			}
		}
	}
	// Labels in [|X|, 2^d) are emulated by dropping the top bit; they must
	// resolve to a member. Beyond 2^d is out of range.
	for label := size; label < 1<<e.Dimension(); label++ {
		h, err := e.Host(label)
		if err != nil {
			return fmt.Errorf("emulated Host(%d): %w", label, err)
		}
		if !e.Contains(h) {
			return fmt.Errorf("emulated label %d maps to non-member %d", label, h)
		}
	}
	if _, err := e.Host(1 << e.Dimension()); err == nil {
		return fmt.Errorf("Host(%d) beyond the label space accepted", 1<<e.Dimension())
	}
	return nil
}

// TestDynamicJoinLeaveProperties drives random §7 join/leave schedules
// through testing/quick: after every step the embedding must stay
// consistent, the relabel count must respect the amortized-O(1) bounds
// (O(1) inside a power-of-two band, |X| when the dimension changes), and
// routing between random labels must stay well-formed.
func TestDynamicJoinLeaveProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const universe = 64
		size := 1 + rng.Intn(8)
		members := make([]graph.NodeID, size)
		in := make(map[graph.NodeID]bool, universe)
		for i := range members {
			members[i] = graph.NodeID(i)
			in[members[i]] = true
		}
		e := New(members)
		for step := 0; step < 60; step++ {
			h := graph.NodeID(rng.Intn(universe))
			oldSize, oldD := e.Size(), e.Dimension()
			if in[h] {
				upd, err := e.Leave(h)
				if oldSize == 1 {
					if err == nil {
						t.Logf("seed %d step %d: removing the last member accepted", seed, step)
						return false
					}
					continue
				}
				if err != nil {
					t.Logf("seed %d step %d: Leave(%d): %v", seed, step, h, err)
					return false
				}
				delete(in, h)
				if e.Dimension() != oldD {
					if upd != e.Size()+1 {
						t.Logf("seed %d step %d: dimension shrink relabeled %d, want %d", seed, step, upd, e.Size()+1)
						return false
					}
				} else if upd > 5 {
					t.Logf("seed %d step %d: steady leave relabeled %d > 5", seed, step, upd)
					return false
				}
			} else {
				upd, err := e.Join(h)
				if err != nil {
					t.Logf("seed %d step %d: Join(%d): %v", seed, step, h, err)
					return false
				}
				in[h] = true
				if e.Dimension() != oldD {
					if upd != e.Size() {
						t.Logf("seed %d step %d: dimension growth relabeled %d, want %d", seed, step, upd, e.Size())
						return false
					}
				} else if upd > 6 {
					t.Logf("seed %d step %d: steady join relabeled %d > 6", seed, step, upd)
					return false
				}
			}
			if err := checkConsistent(e); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
			u, v := rng.Intn(e.Size()), rng.Intn(e.Size())
			path, err := e.Route(u, v)
			if err != nil {
				t.Logf("seed %d step %d: Route(%d,%d): %v", seed, step, u, v, err)
				return false
			}
			if len(path) == 0 || path[0] != u || path[len(path)-1] != v {
				t.Logf("seed %d step %d: Route(%d,%d) endpoints wrong: %v", seed, step, u, v, path)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicErrorPaths(t *testing.T) {
	e := New([]graph.NodeID{3, 5})
	if _, err := e.Join(3); err == nil {
		t.Fatal("duplicate Join accepted")
	}
	if _, err := e.Leave(9); err == nil {
		t.Fatal("Leave of a non-member accepted")
	}
	if _, err := e.Leave(3); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if _, err := e.Leave(5); err == nil {
		t.Fatal("removing the last member accepted")
	}
}
