// Package debruijn implements the d-dimensional de Bruijn graph embedding
// the paper uses inside clusters for load balancing (§5) and dynamic
// adaptability (§7), following Rajaraman et al. (SPAA 2001).
//
// A d-dimensional de Bruijn graph has 2^d vertices labeled by d-bit
// strings, with directed edges u1..ud -> u2..ud 0 and u2..ud 1. Its
// diameter is d and shortest paths can be computed locally by maximizing
// the overlap between the source's suffix and the destination's prefix, so
// every cluster node only stores a constant-size neighborhood table.
//
// With |X| cluster members, d = ceil(log2 |X|). A vertex whose label l is
// >= |X| is emulated by the member with label l minus the most significant
// bit (the paper's §5 hosting rule).
package debruijn

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Embedding maps a de Bruijn vertex space onto the members of one cluster.
type Embedding struct {
	hosts  []graph.NodeID       // member label -> physical node
	labels map[graph.NodeID]int // physical node -> label
	d      int                  // dimension; vertex labels are d bits
}

// New embeds a de Bruijn graph over the given cluster members. Members are
// initially sorted by node ID and labeled 0..|X|-1 (later joins and leaves
// relabel incrementally, §7). New panics on an empty member set.
func New(members []graph.NodeID) *Embedding {
	if len(members) == 0 {
		panic("debruijn: empty cluster")
	}
	hosts := append([]graph.NodeID(nil), members...)
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	labels := make(map[graph.NodeID]int, len(hosts))
	for i, h := range hosts {
		labels[h] = i
	}
	return &Embedding{hosts: hosts, labels: labels, d: dimension(len(hosts))}
}

func dimension(size int) int {
	d := 0
	for (1 << d) < size {
		d++
	}
	return d
}

// Size returns the number of cluster members |X|.
func (e *Embedding) Size() int { return len(e.hosts) }

// Dimension returns d; the vertex space has 2^d labels.
func (e *Embedding) Dimension() int { return e.d }

// Members returns the members by label (shared; do not modify).
func (e *Embedding) Members() []graph.NodeID { return e.hosts }

// Host returns the physical node emulating the de Bruijn vertex with the
// given label. Labels in [0, |X|) map directly; labels in [|X|, 2^d) drop
// their most significant bit.
func (e *Embedding) Host(label int) (graph.NodeID, error) {
	if label < 0 || label >= (1<<e.d) {
		return graph.Undefined, fmt.Errorf("debruijn: label %d out of range [0, %d)", label, 1<<e.d)
	}
	if label < len(e.hosts) {
		return e.hosts[label], nil
	}
	stripped := label &^ (1 << (e.d - 1))
	if stripped >= len(e.hosts) {
		// Can only happen for |X| < 2^(d-1), which dimension() rules out.
		return graph.Undefined, fmt.Errorf("debruijn: label %d not emulated (|X|=%d)", label, len(e.hosts))
	}
	return e.hosts[stripped], nil
}

// LabelOf returns the label of a member node, or -1 if the node is not a
// member.
func (e *Embedding) LabelOf(host graph.NodeID) int {
	if l, ok := e.labels[host]; ok {
		return l
	}
	return -1
}

// Route returns the label sequence of a shortest de Bruijn path from label
// u to label v (inclusive of both): shift in v's bits after skipping the
// longest overlap between u's suffix and v's prefix. The path length is at
// most d hops.
func (e *Embedding) Route(u, v int) ([]int, error) {
	max := 1 << e.d
	if u < 0 || u >= max || v < 0 || v >= max {
		return nil, fmt.Errorf("debruijn: route labels (%d,%d) out of range [0,%d)", u, v, max)
	}
	if u == v {
		return []int{u}, nil
	}
	// Find the largest t <= d such that the last t bits of u equal the
	// first t bits of v.
	best := 0
	for t := e.d - 1; t >= 1; t-- {
		suffix := u & ((1 << t) - 1)
		prefix := v >> (e.d - t)
		if suffix == prefix {
			best = t
			break
		}
	}
	path := []int{u}
	cur := u
	mask := (1 << e.d) - 1
	for i := e.d - best - 1; i >= 0; i-- {
		bit := (v >> i) & 1
		cur = ((cur << 1) | bit) & mask
		path = append(path, cur)
	}
	return path, nil
}

// RouteCost returns the total physical distance of routing a message from
// label u to label v through the embedded de Bruijn graph: each virtual hop
// costs the shortest-path distance between the hosting sensors
// (Corollary 5.2's O(log |X|) routing overhead).
func (e *Embedding) RouteCost(m graph.DistanceOracle, u, v int) (float64, error) {
	path, err := e.Route(u, v)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for i := 1; i < len(path); i++ {
		a, err := e.Host(path[i-1])
		if err != nil {
			return 0, err
		}
		b, err := e.Host(path[i])
		if err != nil {
			return 0, err
		}
		total += m.Dist(a, b)
	}
	return total, nil
}

// NeighborTable returns the outgoing de Bruijn neighbors (hosts) of the
// vertex with the given label — the constant-size table each cluster node
// stores (at most two out-edges).
func (e *Embedding) NeighborTable(label int) ([]graph.NodeID, error) {
	if label < 0 || label >= (1<<e.d) {
		return nil, fmt.Errorf("debruijn: label %d out of range", label)
	}
	if e.d == 0 {
		return nil, nil
	}
	mask := (1 << e.d) - 1
	var out []graph.NodeID
	for bit := 0; bit <= 1; bit++ {
		next := ((label << 1) | bit) & mask
		h, err := e.Host(next)
		if err != nil {
			return nil, err
		}
		out = append(out, h)
	}
	return out, nil
}
