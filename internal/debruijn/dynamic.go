package debruijn

import (
	"fmt"

	"repro/internal/graph"
)

// Join adds a node to the cluster, assigning it the next label |X| (§7).
// It returns the number of cluster nodes whose labels or neighborhood
// tables had to be updated: O(1) normally, |X| when the addition pushes the
// member count past a power of two and the embedded dimension grows.
func (e *Embedding) Join(host graph.NodeID) (updated int, err error) {
	if _, ok := e.labels[host]; ok {
		return 0, fmt.Errorf("debruijn: node %d already in cluster", host)
	}
	label := len(e.hosts)
	e.hosts = append(e.hosts, host)
	e.labels[host] = label
	newD := dimension(len(e.hosts))
	if newD != e.d {
		// Dimension grows: every member must split its emulated labels.
		e.d = newD
		return len(e.hosts), nil
	}
	// The joining node, its de Bruijn neighbors, and the member that
	// previously emulated this label update their tables.
	return min(len(e.hosts), 6), nil
}

// Leave removes a node from the cluster (§7). If the departing node does
// not hold the last label, the node with the last label takes over the
// departing label first (the paper's relabel-to-tail rule), so only O(1)
// nodes update — unless the shrink crosses a power of two, in which case
// the dimension drops and all |X| members merge label pairs.
func (e *Embedding) Leave(host graph.NodeID) (updated int, err error) {
	label, ok := e.labels[host]
	if !ok {
		return 0, fmt.Errorf("debruijn: node %d not in cluster", host)
	}
	if len(e.hosts) == 1 {
		return 0, fmt.Errorf("debruijn: cannot remove the last cluster member")
	}
	last := len(e.hosts) - 1
	moved := 0
	if label != last {
		e.hosts[label] = e.hosts[last]
		e.labels[e.hosts[label]] = label
		moved = 1
	}
	e.hosts = e.hosts[:last]
	delete(e.labels, host)
	newD := dimension(len(e.hosts))
	if newD != e.d {
		e.d = newD
		return len(e.hosts) + 1, nil
	}
	return min(len(e.hosts), 4+moved), nil
}

// Contains reports membership.
func (e *Embedding) Contains(host graph.NodeID) bool {
	_, ok := e.labels[host]
	return ok
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
