// Package treedir implements a generic message-pruning tree directory — the
// tracking structure shared by the traffic-conscious baselines STUN (Kung &
// Vlah 2003) and Z-DAT (Lin et al. 2006) the paper compares against (§1.3,
// §8). Tree nodes keep per-object detection entries with downward pointers;
// maintenance climbs from the new proxy's leaf to the lowest ancestor that
// knows the object and prunes the old branch; queries climb from the
// requester (or start at the sink, STUN-style) and descend the pointers.
//
// Tree nodes may be physical sensors (spanning trees, Z-DAT) or logical
// nodes mapped onto representative sensors (STUN's Drain-And-Balance
// hierarchy); message costs are always shortest-path distances between the
// hosting sensors, the same cost model the MOT directory uses.
package treedir

import (
	"fmt"

	"repro/internal/graph"
)

// Tree is a rooted tree whose nodes are hosted at physical sensors.
type Tree struct {
	parent   []int
	children [][]int
	host     []graph.NodeID
	leafOf   map[graph.NodeID]int // sensor -> its leaf tree node
	root     int
	final    bool
}

// NewTree returns an empty tree builder.
func NewTree() *Tree {
	return &Tree{leafOf: make(map[graph.NodeID]int), root: -1}
}

// AddLeaf adds a leaf tree node for the given sensor and returns its tree
// node ID. Each sensor may have at most one leaf.
func (t *Tree) AddLeaf(sensor graph.NodeID) (int, error) {
	if t.final {
		return -1, fmt.Errorf("treedir: tree finalized")
	}
	if _, ok := t.leafOf[sensor]; ok {
		return -1, fmt.Errorf("treedir: sensor %d already has a leaf", sensor)
	}
	id := t.addNode(sensor)
	t.leafOf[sensor] = id
	return id, nil
}

// AddInternal adds an internal tree node hosted at the given sensor and
// returns its tree node ID.
func (t *Tree) AddInternal(host graph.NodeID) (int, error) {
	if t.final {
		return -1, fmt.Errorf("treedir: tree finalized")
	}
	return t.addNode(host), nil
}

func (t *Tree) addNode(host graph.NodeID) int {
	id := len(t.parent)
	t.parent = append(t.parent, -1)
	t.children = append(t.children, nil)
	t.host = append(t.host, host)
	return id
}

// SetParent links child under parent.
func (t *Tree) SetParent(child, parent int) error {
	if t.final {
		return fmt.Errorf("treedir: tree finalized")
	}
	if child < 0 || child >= len(t.parent) || parent < 0 || parent >= len(t.parent) {
		return fmt.Errorf("treedir: SetParent(%d,%d) out of range", child, parent)
	}
	if child == parent {
		return fmt.Errorf("treedir: node %d cannot parent itself", child)
	}
	if t.parent[child] != -1 {
		return fmt.Errorf("treedir: node %d already has a parent", child)
	}
	t.parent[child] = parent
	t.children[parent] = append(t.children[parent], child)
	return nil
}

// Finalize validates the structure: exactly one root, no cycles, every node
// reachable from the root.
func (t *Tree) Finalize() error {
	if t.final {
		return nil
	}
	if len(t.parent) == 0 {
		return fmt.Errorf("treedir: empty tree")
	}
	roots := 0
	for id, p := range t.parent {
		if p == -1 {
			roots++
			t.root = id
		}
	}
	if roots != 1 {
		return fmt.Errorf("treedir: %d roots, want 1", roots)
	}
	// Reachability (also detects cycles, since |visited| would fall short).
	visited := make([]bool, len(t.parent))
	stack := []int{t.root}
	count := 0
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[u] {
			return fmt.Errorf("treedir: cycle through node %d", u)
		}
		visited[u] = true
		count++
		stack = append(stack, t.children[u]...)
	}
	if count != len(t.parent) {
		return fmt.Errorf("treedir: %d of %d nodes reachable from root", count, len(t.parent))
	}
	t.final = true
	return nil
}

// Root returns the root tree node ID.
func (t *Tree) Root() int { return t.root }

// Len returns the number of tree nodes.
func (t *Tree) Len() int { return len(t.parent) }

// Parent returns the parent tree node of id (-1 for the root).
func (t *Tree) Parent(id int) int { return t.parent[id] }

// Host returns the physical sensor hosting tree node id.
func (t *Tree) Host(id int) graph.NodeID { return t.host[id] }

// Leaf returns the leaf tree node of a sensor, or -1.
func (t *Tree) Leaf(sensor graph.NodeID) int {
	if id, ok := t.leafOf[sensor]; ok {
		return id
	}
	return -1
}

// Depth returns the number of edges from id to the root.
func (t *Tree) Depth(id int) int {
	d := 0
	for t.parent[id] != -1 {
		id = t.parent[id]
		d++
	}
	return d
}

// PathToRoot returns the tree nodes from id (inclusive) to the root.
func (t *Tree) PathToRoot(id int) []int {
	var out []int
	for id != -1 {
		out = append(out, id)
		id = t.parent[id]
	}
	return out
}
