package treedir

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// spanningTree builds a BFS spanning tree of g rooted at root, with one
// tree node per sensor.
func spanningTree(t testing.TB, g *graph.Graph, root graph.NodeID) *Tree {
	t.Helper()
	tr := NewTree()
	ids := make([]int, g.N())
	for u := 0; u < g.N(); u++ {
		id, err := tr.AddLeaf(graph.NodeID(u))
		if err != nil {
			t.Fatal(err)
		}
		ids[u] = id
	}
	visited := make([]bool, g.N())
	queue := []graph.NodeID{root}
	visited[root] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.NeighborIDs(u) {
			if !visited[v] {
				visited[v] = true
				if err := tr.SetParent(ids[v], ids[u]); err != nil {
					t.Fatal(err)
				}
				queue = append(queue, v)
			}
		}
	}
	if err := tr.Finalize(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTreeBuilderValidation(t *testing.T) {
	tr := NewTree()
	if err := tr.Finalize(); err == nil {
		t.Fatal("empty tree finalized")
	}
	a, _ := tr.AddLeaf(0)
	if _, err := tr.AddLeaf(0); err == nil {
		t.Fatal("duplicate leaf accepted")
	}
	b, _ := tr.AddLeaf(1)
	if err := tr.SetParent(a, a); err == nil {
		t.Fatal("self-parent accepted")
	}
	if err := tr.SetParent(a, 99); err == nil {
		t.Fatal("out-of-range parent accepted")
	}
	r, _ := tr.AddInternal(0)
	if err := tr.SetParent(a, r); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetParent(a, r); err == nil {
		t.Fatal("re-parenting accepted")
	}
	if err := tr.SetParent(b, r); err != nil {
		t.Fatal(err)
	}
	if err := tr.Finalize(); err != nil {
		t.Fatal(err)
	}
	if tr.Root() != r || tr.Len() != 3 {
		t.Fatalf("root %d len %d", tr.Root(), tr.Len())
	}
	if tr.Depth(a) != 1 || tr.Depth(r) != 0 {
		t.Fatal("depths wrong")
	}
	if p := tr.PathToRoot(a); len(p) != 2 || p[1] != r {
		t.Fatalf("path %v", p)
	}
	if _, err := tr.AddLeaf(5); err == nil {
		t.Fatal("mutation after finalize accepted")
	}
}

func TestTwoRootsRejected(t *testing.T) {
	tr := NewTree()
	tr.AddLeaf(0)
	tr.AddLeaf(1)
	if err := tr.Finalize(); err == nil {
		t.Fatal("forest finalized as tree")
	}
}

func TestDirectoryRequiresFinalizedTree(t *testing.T) {
	tr := NewTree()
	tr.AddLeaf(0)
	g := graph.Path(2)
	if _, err := New(tr, graph.NewMetric(g), Config{}); err == nil {
		t.Fatal("unfinalized tree accepted")
	}
}

func TestPublishMoveQueryOnSpanningTree(t *testing.T) {
	g := graph.Grid(6, 6)
	m := graph.NewMetric(g)
	tr := spanningTree(t, g, 0)
	d, err := New(tr, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Publish(1, 35); err != nil {
		t.Fatal(err)
	}
	if err := d.Publish(1, 0); err == nil {
		t.Fatal("duplicate publish accepted")
	}
	if err := d.Move(9, 1); err == nil {
		t.Fatal("move of unpublished accepted")
	}
	if _, _, err := d.Query(0, 9); err == nil {
		t.Fatal("query of unpublished accepted")
	}
	rng := rand.New(rand.NewSource(4))
	cur := graph.NodeID(35)
	for i := 0; i < 200; i++ {
		nbrs := g.NeighborIDs(cur)
		cur = nbrs[rng.Intn(len(nbrs))]
		if err := d.Move(1, cur); err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		got, cost, err := d.Query(graph.NodeID(u), 1)
		if err != nil {
			t.Fatalf("query from %d: %v", u, err)
		}
		if got != cur {
			t.Fatalf("query from %d said %d, proxy %d", u, got, cur)
		}
		if cost+1e-9 < m.Dist(graph.NodeID(u), cur) {
			t.Fatalf("query cost %v below optimal", cost)
		}
	}
	if r := d.Meter().MaintRatio(); r < 1 {
		t.Fatalf("maintenance ratio %v", r)
	}
}

func TestSinkQueriesCostThroughRoot(t *testing.T) {
	g := graph.Path(9)
	m := graph.NewMetric(g)
	tr := spanningTree(t, g, 4) // root hosted at center node 4
	d, err := New(tr, m, Config{SinkQueries: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	// Query from node 1 for the object at node 0: requester is adjacent
	// to the proxy, but the sink model must pay the trip to the root.
	_, cost, err := d.Query(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cost < m.Dist(1, 4)+m.Dist(4, 0) {
		t.Fatalf("sink query cost %v below root round trip", cost)
	}
	// The climb model answers the same query with cost ~1.
	d2, _ := New(tr, m, Config{})
	if err := d2.Publish(1, 0); err != nil {
		t.Fatal(err)
	}
	_, cost2, err := d2.Query(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cost2 >= cost {
		t.Fatalf("climb query (%v) not cheaper than sink query (%v)", cost2, cost)
	}
}

func TestShortcutsNeverWorseThanTreeDescent(t *testing.T) {
	g := graph.Grid(8, 8)
	m := graph.NewMetric(g)
	tr := spanningTree(t, g, 0)
	plain, _ := New(tr, m, Config{})
	short, _ := New(tr, m, Config{Shortcuts: true})
	rng := rand.New(rand.NewSource(5))
	cur := graph.NodeID(17)
	if err := plain.Publish(1, cur); err != nil {
		t.Fatal(err)
	}
	if err := short.Publish(1, cur); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		nbrs := g.NeighborIDs(cur)
		cur = nbrs[rng.Intn(len(nbrs))]
		if err := plain.Move(1, cur); err != nil {
			t.Fatal(err)
		}
		if err := short.Move(1, cur); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < g.N(); u += 3 {
		_, cp, err := plain.Query(graph.NodeID(u), 1)
		if err != nil {
			t.Fatal(err)
		}
		_, cs, err := short.Query(graph.NodeID(u), 1)
		if err != nil {
			t.Fatal(err)
		}
		if cs > cp+1e-9 {
			t.Fatalf("shortcut query (%v) worse than tree descent (%v) from %d", cs, cp, u)
		}
	}
}

func TestLoadByNode(t *testing.T) {
	g := graph.Grid(5, 5)
	m := graph.NewMetric(g)
	tr := spanningTree(t, g, 12)
	d, _ := New(tr, m, Config{})
	for o := 0; o < 10; o++ {
		if err := d.Publish(core.ObjectID(o), graph.NodeID(o)); err != nil {
			t.Fatal(err)
		}
	}
	load := d.LoadByNode(g.N())
	// Every object's trail passes the root host.
	if load[12] < 10 {
		t.Fatalf("root load %d, want >= 10", load[12])
	}
	total := 0
	for _, c := range load {
		total += c
	}
	if total == 0 {
		t.Fatal("no load recorded")
	}
}

func TestMoveNoop(t *testing.T) {
	g := graph.Path(4)
	m := graph.NewMetric(g)
	tr := spanningTree(t, g, 0)
	d, _ := New(tr, m, Config{})
	if err := d.Publish(1, 2); err != nil {
		t.Fatal(err)
	}
	before := d.Meter()
	if err := d.Move(1, 2); err != nil {
		t.Fatal(err)
	}
	if d.Meter() != before {
		t.Fatal("no-op move changed meter")
	}
}
