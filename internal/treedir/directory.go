package treedir

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Config selects the baseline's query discipline.
type Config struct {
	// SinkQueries routes every query through the tree root first (STUN's
	// sink-initiated model): the requester sends the query to the sink,
	// which resolves it by descending the pruning tree.
	SinkQueries bool
	// Shortcuts lets a query jump straight from the discovery node to the
	// proxy along the graph shortest path instead of walking the tree
	// downward (the message-pruning tree with shortcuts of Liu et al.,
	// used by the Z-DAT + shortcuts baseline).
	Shortcuts bool
}

// Directory is a message-pruning tree directory over a finalized Tree.
type Directory struct {
	t   *Tree
	m   *graph.Metric
	cfg Config

	dl    []map[core.ObjectID]int // per tree node: object -> child pointer (-1 at the proxy leaf)
	loc   map[core.ObjectID]graph.NodeID
	meter core.CostMeter
}

// New creates a directory over a finalized tree. It returns an error if the
// tree has not been finalized.
func New(t *Tree, m *graph.Metric, cfg Config) (*Directory, error) {
	if !t.final {
		return nil, fmt.Errorf("treedir: tree not finalized")
	}
	dl := make([]map[core.ObjectID]int, t.Len())
	for i := range dl {
		dl[i] = make(map[core.ObjectID]int)
	}
	return &Directory{t: t, m: m, cfg: cfg, dl: dl, loc: make(map[core.ObjectID]graph.NodeID)}, nil
}

// Meter returns a snapshot of the cost counters.
func (d *Directory) Meter() core.CostMeter { return d.meter }

// ResetMeter zeroes the cost counters.
func (d *Directory) ResetMeter() { d.meter = core.CostMeter{} }

// Location returns the current proxy of o.
func (d *Directory) Location(o core.ObjectID) (graph.NodeID, bool) {
	v, ok := d.loc[o]
	return v, ok
}

// Publish introduces o at sensor at, stamping the leaf-to-root path.
func (d *Directory) Publish(o core.ObjectID, at graph.NodeID) error {
	if cur, ok := d.loc[o]; ok {
		return fmt.Errorf("treedir: object %d already published at %d", o, cur)
	}
	leaf := d.t.Leaf(at)
	if leaf < 0 {
		return fmt.Errorf("treedir: sensor %d has no leaf", at)
	}
	cost := 0.0
	child := -1
	for id := leaf; id != -1; id = d.t.Parent(id) {
		if child != -1 {
			cost += d.m.Dist(d.t.Host(child), d.t.Host(id))
		}
		d.dl[id][o] = child
		child = id
	}
	d.loc[o] = at
	d.meter.PublishCost += cost
	d.meter.PublishOps++
	return nil
}

// Move performs a maintenance operation: o moved to sensor to. The insert
// climbs from to's leaf until a node already holding o (the LCA with the
// old branch), repoints it, and the delete prunes the old branch downward.
func (d *Directory) Move(o core.ObjectID, to graph.NodeID) error {
	from, ok := d.loc[o]
	if !ok {
		return fmt.Errorf("treedir: object %d not published", o)
	}
	if from == to {
		return nil
	}
	leaf := d.t.Leaf(to)
	if leaf < 0 {
		return fmt.Errorf("treedir: sensor %d has no leaf", to)
	}
	cost := 0.0
	child := -1
	peak := -1
	for id := leaf; id != -1; id = d.t.Parent(id) {
		if child != -1 {
			cost += d.m.Dist(d.t.Host(child), d.t.Host(id))
		}
		if _, has := d.dl[id][o]; has {
			peak = id
			break
		}
		d.dl[id][o] = child
		child = id
	}
	if peak < 0 {
		return fmt.Errorf("treedir: insert for object %d passed the root", o)
	}
	oldChild := d.dl[peak][o]
	d.dl[peak][o] = child
	// Prune the old branch.
	prevHost := d.t.Host(peak)
	for id := oldChild; id != -1; {
		cost += d.m.Dist(prevHost, d.t.Host(id))
		prevHost = d.t.Host(id)
		next := d.dl[id][o]
		delete(d.dl[id], o)
		id = next
	}
	d.loc[o] = to
	d.meter.AddMaintSample(cost, d.m.Dist(from, to))
	return nil
}

// Query locates o from sensor from, returning the proxy and the query's
// communication cost.
func (d *Directory) Query(from graph.NodeID, o core.ObjectID) (graph.NodeID, float64, error) {
	proxy, ok := d.loc[o]
	if !ok {
		return graph.Undefined, 0, fmt.Errorf("treedir: object %d not published", o)
	}
	cost := 0.0
	var start int
	if d.cfg.SinkQueries {
		// Requester ships the query to the sink (tree root) first.
		cost += d.m.Dist(from, d.t.Host(d.t.Root()))
		start = d.t.Root()
		if _, has := d.dl[start][o]; !has {
			return graph.Undefined, cost, fmt.Errorf("treedir: root lost object %d", o)
		}
	} else {
		leaf := d.t.Leaf(from)
		if leaf < 0 {
			return graph.Undefined, 0, fmt.Errorf("treedir: sensor %d has no leaf", from)
		}
		id := leaf
		prev := -1
		for {
			if prev != -1 {
				cost += d.m.Dist(d.t.Host(prev), d.t.Host(id))
			}
			if _, has := d.dl[id][o]; has {
				break
			}
			prev = id
			id = d.t.Parent(id)
			if id == -1 {
				return graph.Undefined, cost, fmt.Errorf("treedir: query for %d passed the root", o)
			}
		}
		start = id
	}

	if d.cfg.Shortcuts {
		cost += d.m.Dist(d.t.Host(start), proxy)
	} else {
		prevHost := d.t.Host(start)
		for id := d.dl[start][o]; id != -1; {
			cost += d.m.Dist(prevHost, d.t.Host(id))
			prevHost = d.t.Host(id)
			id = d.dl[id][o]
		}
		if prevHost != proxy {
			return graph.Undefined, cost, fmt.Errorf("treedir: descent for %d ended at %d, proxy %d", o, prevHost, proxy)
		}
	}
	d.meter.AddQuerySample(cost, d.m.Dist(from, proxy))
	return proxy, cost, nil
}

// LoadByNode returns the number of detection entries stored at each
// physical sensor (tree nodes map onto their hosts).
func (d *Directory) LoadByNode(n int) []int {
	counts := make([]int, n)
	for id, entries := range d.dl {
		h := d.t.Host(id)
		if int(h) >= 0 && int(h) < n {
			counts[h] += len(entries)
		}
	}
	return counts
}

// CheckInvariants verifies that every published object has a clean pointer
// trail from the root to its proxy leaf and no orphaned entries.
func (d *Directory) CheckInvariants() error {
	perObject := make(map[core.ObjectID]int)
	for _, entries := range d.dl {
		for o := range entries {
			perObject[o]++
		}
	}
	for o, proxy := range d.loc {
		id := d.t.Root()
		steps := 0
		for {
			child, has := d.dl[id][o]
			if !has {
				return fmt.Errorf("treedir: trail for %d broken at node %d", o, id)
			}
			steps++
			if child == -1 {
				break
			}
			id = child
		}
		if d.t.Host(id) != proxy {
			return fmt.Errorf("treedir: trail for %d ends at %d, proxy %d", o, d.t.Host(id), proxy)
		}
		if leaf := d.t.Leaf(proxy); leaf != id {
			return fmt.Errorf("treedir: trail for %d ends at non-leaf %d", o, id)
		}
		if perObject[o] != steps {
			return fmt.Errorf("treedir: object %d has %d entries, trail has %d", o, perObject[o], steps)
		}
	}
	return nil
}
