package graph

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/runtime/track"
)

// Inf is the distance reported between disconnected nodes.
var Inf = math.Inf(1)

// distHeap is a manual binary min-heap of (node, distance) pairs for
// Dijkstra. It deliberately avoids container/heap: the interface-based
// Push/Pop box every item, and the boxing dominates allocation counts
// when Precompute runs Dijkstra from every source.
type distItem struct {
	node NodeID
	d    float64
}

type distHeap []distItem

func (h *distHeap) push(it distItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].d <= s[i].d {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *distHeap) pop() distItem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		small := i
		if l := 2*i + 1; l < n && s[l].d < s[small].d {
			small = l
		}
		if r := 2*i + 2; r < n && s[r].d < s[small].d {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top
}

// SSSP holds single-source shortest-path results from one source node.
type SSSP struct {
	Source NodeID
	Dist   []float64
	Parent []NodeID // Parent[v] is the predecessor of v on a shortest path; Undefined at the source and for unreachable nodes
}

// Dijkstra computes single-source shortest paths from src using a binary
// heap (lazy deletion). It panics if src is out of range.
func (g *Graph) Dijkstra(src NodeID) *SSSP {
	if !g.valid(src) {
		panic("graph: Dijkstra source out of range")
	}
	dist := make([]float64, g.n)
	parent := make([]NodeID, g.n)
	h := make(distHeap, 0, 64)
	g.dijkstraInto(src, dist, parent, &h)
	return &SSSP{Source: src, Dist: dist, Parent: parent}
}

// dijkstraInto is the allocation-free core of Dijkstra: it writes
// single-source distances from src into dist (length n), optionally
// records predecessors into parent, and reuses h as heap scratch.
// Precompute calls it once per missing source with the same scratch
// buffers so an all-pairs fill allocates only the result table.
func (g *Graph) dijkstraInto(src NodeID, dist []float64, parent []NodeID, h *distHeap) {
	for i := range dist {
		dist[i] = Inf
	}
	if parent != nil {
		for i := range parent {
			parent[i] = Undefined
		}
	}
	dist[src] = 0
	*h = (*h)[:0]
	h.push(distItem{node: src, d: 0})
	for len(*h) > 0 {
		it := h.pop()
		u := it.node
		if it.d > dist[u] {
			continue // stale entry
		}
		for _, e := range g.adj[u] {
			if nd := it.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				if parent != nil {
					parent[e.to] = u
				}
				h.push(distItem{node: e.to, d: nd})
			}
		}
	}
}

// PathTo reconstructs the shortest path from the SSSP source to v, inclusive
// of both endpoints. It returns nil if v is unreachable.
func (s *SSSP) PathTo(v NodeID) []NodeID {
	if int(v) < 0 || int(v) >= len(s.Dist) || math.IsInf(s.Dist[v], 1) {
		return nil
	}
	var rev []NodeID
	for u := v; u != Undefined; u = s.Parent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// flatTable is the frozen all-pairs table: row-major distances plus
// lazily-computed per-node eccentricities and the diameter. The distance
// slab is fully written before the table is published through an atomic
// pointer, and never written again, so readers need no locks. ecc and
// diam are computed at most once, guarded by once.
type flatTable struct {
	n    int
	d    []float64 // row-major, length n*n
	once sync.Once
	ecc  []float64
	diam float64
}

// row returns the shared distance row of u as a capped subslice of the
// slab, so an append by a confused caller cannot clobber the next row.
//
//motlint:hotpath
func (t *flatTable) row(u NodeID) []float64 {
	off := int(u) * t.n
	return t.d[off : off+t.n : off+t.n]
}

// fill computes eccentricities and the diameter once. Disconnected pairs
// carry Inf distances, so a disconnected graph yields Inf here too.
func (t *flatTable) fill() {
	t.once.Do(func() {
		t.ecc = make([]float64, t.n)
		for u := 0; u < t.n; u++ {
			e := 0.0
			for _, d := range t.d[u*t.n : (u+1)*t.n] {
				if d > e {
					e = d
				}
			}
			t.ecc[u] = e
			if e > t.diam {
				t.diam = e
			}
		}
	})
}

// Metric provides O(1) shortest-path distance queries over a graph by
// caching single-source results on demand. It is safe for concurrent use.
// For the experiment sizes in the paper (≤1024 nodes) the full all-pairs
// table fits comfortably in memory.
//
// A Metric has two phases. While rows are partially cached, reads go
// through an RWMutex-guarded map. Once every source row exists — either
// because Precompute ran or because lazy use touched the last row — the
// table freezes into one row-major []float64 published via an atomic
// pointer, and every subsequent Dist/Row/Ball/Diameter read is lock-free
// and allocation-free. The frozen table is immutable, which is what makes
// sharing one Metric across concurrent sweep cells safe.
type Metric struct {
	g    *Graph
	mu   sync.RWMutex
	by   map[NodeID][]float64
	flat atomic.Pointer[flatTable]
}

// NewMetric returns a lazy all-pairs shortest-path oracle for g. The graph
// must not be mutated afterwards.
func NewMetric(g *Graph) *Metric {
	return &Metric{g: g, by: make(map[NodeID][]float64)}
}

// Graph returns the underlying graph.
func (m *Metric) Graph() *Graph { return m.g }

// Frozen reports whether the flat all-pairs table has been published.
func (m *Metric) Frozen() bool { return m.flat.Load() != nil }

// Dist returns the shortest-path distance between u and v (Inf if
// disconnected). It panics if either node is out of range — including
// when u == v, so Dist(-5, -5) fails as loudly as Dist(-5, 0).
//
//motlint:hotpath
func (m *Metric) Dist(u, v NodeID) float64 {
	if !m.g.valid(u) || !m.g.valid(v) {
		panic(fmt.Sprintf("graph: Dist(%d, %d) out of range for n=%d", u, v, m.g.n))
	}
	if t := m.flat.Load(); t != nil {
		return t.d[int(u)*t.n+int(v)]
	}
	if u == v {
		return 0
	}
	return m.Row(u)[v]
}

// Row returns the full distance row from u. The returned slice is shared;
// callers must not modify it. Computing the final missing row freezes the
// metric (see the type comment), after which rows alias the flat table.
// Only the frozen and cached paths are hot; the first-touch fill below
// carries reasoned hotalloc waivers because it runs once per row.
//
//motlint:hotpath
func (m *Metric) Row(u NodeID) []float64 {
	if !m.g.valid(u) {
		panic(fmt.Sprintf("graph: Row(%d) out of range for n=%d", u, m.g.n))
	}
	if t := m.flat.Load(); t != nil {
		return t.row(u)
	}
	m.mu.RLock()
	row, ok := m.by[u]
	m.mu.RUnlock()
	if ok {
		return row
	}
	//motlint:ignore hotalloc lazy first-touch fill runs once per row; frozen reads never reach it
	res := m.g.Dijkstra(u)
	m.mu.Lock()
	if prev, ok := m.by[u]; ok { // racing fill; keep first
		m.mu.Unlock()
		return prev
	}
	m.by[u] = res.Dist
	full := len(m.by) == m.g.n
	m.mu.Unlock()
	if full {
		//motlint:ignore hotalloc one-time freeze when the last row lands
		m.Precompute(1) // every row cached: copy-only freeze, no goroutines
		return m.Row(u)
	}
	return res.Dist
}

// Precompute fills every missing source row and freezes the metric into
// the flat table; afterwards all reads are lock-free. par bounds the
// worker goroutines; par <= 0 means min(GOMAXPROCS, missing rows), and
// any par is clamped to the number of missing rows, so a fully cached
// metric (or a repeated Precompute) spawns no goroutines at all.
func (m *Metric) Precompute(par int) {
	if m.flat.Load() != nil {
		return
	}
	n := m.g.n
	flat := make([]float64, n*n)
	missing := make([]NodeID, 0, n)
	m.mu.RLock()
	for u := 0; u < n; u++ {
		if row, ok := m.by[NodeID(u)]; ok {
			copy(flat[u*n:(u+1)*n], row)
		} else {
			missing = append(missing, NodeID(u))
		}
	}
	m.mu.RUnlock()
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(missing) {
		par = len(missing)
	}
	switch {
	case len(missing) == 0:
		// copy-only freeze
	case par <= 1:
		h := make(distHeap, 0, 64)
		for _, u := range missing {
			m.g.dijkstraInto(u, flat[int(u)*n:(int(u)+1)*n], nil, &h)
		}
	default:
		jobs := make(chan NodeID)
		var pool track.Group
		for w := 0; w < par; w++ {
			pool.Go(func() {
				h := make(distHeap, 0, 64) // per-worker scratch, reused across sources
				for u := range jobs {
					m.g.dijkstraInto(u, flat[int(u)*n:(int(u)+1)*n], nil, &h)
				}
			})
		}
		for _, u := range missing {
			jobs <- u
		}
		close(jobs)
		pool.Wait()
	}
	// Racing Precomputes build identical tables (Dijkstra is deterministic
	// and cached rows are immutable); CompareAndSwap keeps the first.
	if m.flat.CompareAndSwap(nil, &flatTable{n: n, d: flat}) {
		frozenTables.Add(1)
	}
}

// frozenTables counts flat n×n tables published process-wide. Scale tests
// assert the delta stays zero across an oracle-mode run: the whole point
// of the oracle is that no quadratic table is ever materialized.
var frozenTables atomic.Int64

// FrozenTableCount returns how many flat all-pairs tables have been
// published process-wide since start.
func FrozenTableCount() int64 { return frozenTables.Load() }

// freeze returns the flat table, forcing a full Precompute if needed.
func (m *Metric) freeze() *flatTable {
	if t := m.flat.Load(); t != nil {
		return t
	}
	m.Precompute(0)
	return m.flat.Load()
}

// Diameter returns the maximum finite shortest-path distance over all node
// pairs; 0 for graphs with fewer than two nodes. It returns Inf if the
// graph is disconnected. The first call freezes the metric and caches the
// result; later calls are O(1).
func (m *Metric) Diameter() float64 {
	if m.g.n < 2 {
		return 0
	}
	t := m.freeze()
	t.fill()
	return t.diam
}

// Eccentricity returns max_v dist(u, v). On a frozen metric the value is
// cached (computed alongside the diameter).
func (m *Metric) Eccentricity(u NodeID) float64 {
	if t := m.flat.Load(); t != nil {
		t.fill()
		return t.ecc[u]
	}
	row := m.Row(u)
	e := 0.0
	for _, d := range row {
		if d > e {
			e = d
		}
	}
	return e
}

// Center returns a node with minimum eccentricity (a natural sink/root).
func (m *Metric) Center() NodeID {
	best, bestE := NodeID(0), math.Inf(1)
	for u := 0; u < m.g.n; u++ {
		if e := m.Eccentricity(NodeID(u)); e < bestE {
			best, bestE = NodeID(u), e
		}
	}
	return best
}

// BallSize returns |{v : dist(u,v) <= r}| including u itself.
//
//motlint:hotpath
func (m *Metric) BallSize(u NodeID, r float64) int {
	row := m.Row(u)
	c := 0
	for _, d := range row {
		if d <= r {
			c++
		}
	}
	return c
}

// Ball returns the nodes within distance r of u (including u).
func (m *Metric) Ball(u NodeID, r float64) []NodeID {
	row := m.Row(u)
	var out []NodeID
	for v, d := range row {
		if d <= r {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// Near returns every node within distance r of u (including u) with its
// exact distance, sorted by ascending node ID. On a Metric this is a row
// scan — lazy use computes (and may freeze) the row like Ball does; large-n
// callers that must avoid the n×n table use an *Oracle instead.
func (m *Metric) Near(u NodeID, r float64) []Neighbor {
	row := m.Row(u)
	var out []Neighbor
	for v, d := range row {
		if d <= r {
			out = append(out, Neighbor{Node: NodeID(v), D: d})
		}
	}
	return out
}

// Stretch returns 1: the Metric is exact.
func (m *Metric) Stretch() float64 { return 1 }

// DoublingEstimate returns an empirical estimate of the doubling dimension
// rho of the graph metric: the max over sampled centers and radii of
// log2(|B(u,2r)| / |B(u,r)|), a standard proxy used to size hierarchy
// constants. samples limits the number of centers probed (<=0 means all).
// Disconnected graphs have Inf diameter; the radius sweep stops once a
// ball covers the whole graph or the radius leaves the finite range, so
// the estimate terminates (and ignores the unreachable remainder).
func (m *Metric) DoublingEstimate(samples int) float64 {
	n := m.g.n
	if n == 0 {
		return 0
	}
	if samples <= 0 || samples > n {
		samples = n
	}
	step := n / samples
	if step == 0 {
		step = 1
	}
	maxRho := 0.0
	diam := m.Diameter()
	for u := 0; u < n; u += step {
		for r := 1.0; r <= diam && !math.IsInf(r, 1); r *= 2 {
			b1 := m.BallSize(NodeID(u), r)
			b2 := m.BallSize(NodeID(u), 2*r)
			if b1 > 0 && b2 > b1 {
				if rho := math.Log2(float64(b2) / float64(b1)); rho > maxRho {
					maxRho = rho
				}
			}
			if b1 == n {
				break // the ball already covers every node; doubling r cannot grow it
			}
		}
	}
	return maxRho
}
