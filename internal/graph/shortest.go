package graph

import (
	"container/heap"
	"math"
	"sync"

	"repro/internal/runtime/track"
)

// Inf is the distance reported between disconnected nodes.
var Inf = math.Inf(1)

// distHeap is a binary heap of (node, distance) pairs for Dijkstra.
type distItem struct {
	node NodeID
	d    float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SSSP holds single-source shortest-path results from one source node.
type SSSP struct {
	Source NodeID
	Dist   []float64
	Parent []NodeID // Parent[v] is the predecessor of v on a shortest path; Undefined at the source and for unreachable nodes
}

// Dijkstra computes single-source shortest paths from src using a binary
// heap (lazy deletion). It panics if src is out of range.
func (g *Graph) Dijkstra(src NodeID) *SSSP {
	if !g.valid(src) {
		panic("graph: Dijkstra source out of range")
	}
	dist := make([]float64, g.n)
	parent := make([]NodeID, g.n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = Undefined
	}
	dist[src] = 0
	h := distHeap{{node: src, d: 0}}
	for h.Len() > 0 {
		it := heap.Pop(&h).(distItem)
		u := it.node
		if it.d > dist[u] {
			continue // stale entry
		}
		for _, e := range g.adj[u] {
			if nd := it.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				parent[e.to] = u
				heap.Push(&h, distItem{node: e.to, d: nd})
			}
		}
	}
	return &SSSP{Source: src, Dist: dist, Parent: parent}
}

// PathTo reconstructs the shortest path from the SSSP source to v, inclusive
// of both endpoints. It returns nil if v is unreachable.
func (s *SSSP) PathTo(v NodeID) []NodeID {
	if int(v) < 0 || int(v) >= len(s.Dist) || math.IsInf(s.Dist[v], 1) {
		return nil
	}
	var rev []NodeID
	for u := v; u != Undefined; u = s.Parent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Metric provides O(1) shortest-path distance queries over a graph by
// caching single-source results on demand. It is safe for concurrent use.
// For the experiment sizes in the paper (≤1024 nodes) the full all-pairs
// table fits comfortably in memory.
type Metric struct {
	g  *Graph
	mu sync.RWMutex
	by map[NodeID][]float64
}

// NewMetric returns a lazy all-pairs shortest-path oracle for g. The graph
// must not be mutated afterwards.
func NewMetric(g *Graph) *Metric {
	return &Metric{g: g, by: make(map[NodeID][]float64)}
}

// Graph returns the underlying graph.
func (m *Metric) Graph() *Graph { return m.g }

// Dist returns the shortest-path distance between u and v (Inf if
// disconnected). Results are cached per source row.
func (m *Metric) Dist(u, v NodeID) float64 {
	if u == v {
		return 0
	}
	return m.Row(u)[v]
}

// Row returns the full distance row from u. The returned slice is shared;
// callers must not modify it.
func (m *Metric) Row(u NodeID) []float64 {
	m.mu.RLock()
	row, ok := m.by[u]
	m.mu.RUnlock()
	if ok {
		return row
	}
	res := m.g.Dijkstra(u)
	m.mu.Lock()
	if prev, ok := m.by[u]; ok { // racing fill; keep first
		m.mu.Unlock()
		return prev
	}
	m.by[u] = res.Dist
	m.mu.Unlock()
	return res.Dist
}

// Precompute fills the cache for every source, using par goroutines
// (par <= 0 means one goroutine per available result slot, bounded at 8).
func (m *Metric) Precompute(par int) {
	if par <= 0 {
		par = 8
	}
	type job struct{ u NodeID }
	jobs := make(chan job)
	var pool track.Group
	for w := 0; w < par; w++ {
		pool.Go(func() {
			for j := range jobs {
				m.Row(j.u)
			}
		})
	}
	for u := 0; u < m.g.n; u++ {
		jobs <- job{NodeID(u)}
	}
	close(jobs)
	pool.Wait()
}

// Diameter returns the maximum finite shortest-path distance over all node
// pairs; 0 for graphs with fewer than two nodes. It returns Inf if the
// graph is disconnected.
func (m *Metric) Diameter() float64 {
	if m.g.n < 2 {
		return 0
	}
	d := 0.0
	for u := 0; u < m.g.n; u++ {
		row := m.Row(NodeID(u))
		for v := u + 1; v < m.g.n; v++ {
			if row[v] > d {
				d = row[v]
			}
		}
	}
	return d
}

// Eccentricity returns max_v dist(u, v).
func (m *Metric) Eccentricity(u NodeID) float64 {
	row := m.Row(u)
	e := 0.0
	for _, d := range row {
		if d > e {
			e = d
		}
	}
	return e
}

// Center returns a node with minimum eccentricity (a natural sink/root).
func (m *Metric) Center() NodeID {
	best, bestE := NodeID(0), math.Inf(1)
	for u := 0; u < m.g.n; u++ {
		if e := m.Eccentricity(NodeID(u)); e < bestE {
			best, bestE = NodeID(u), e
		}
	}
	return best
}

// BallSize returns |{v : dist(u,v) <= r}| including u itself.
func (m *Metric) BallSize(u NodeID, r float64) int {
	row := m.Row(u)
	c := 0
	for _, d := range row {
		if d <= r {
			c++
		}
	}
	return c
}

// Ball returns the nodes within distance r of u (including u).
func (m *Metric) Ball(u NodeID, r float64) []NodeID {
	row := m.Row(u)
	var out []NodeID
	for v, d := range row {
		if d <= r {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// DoublingEstimate returns an empirical estimate of the doubling dimension
// rho of the graph metric: the max over sampled centers and radii of
// log2(|B(u,2r)| / |B(u,r)|), a standard proxy used to size hierarchy
// constants. samples limits the number of centers probed (<=0 means all).
func (m *Metric) DoublingEstimate(samples int) float64 {
	n := m.g.n
	if n == 0 {
		return 0
	}
	if samples <= 0 || samples > n {
		samples = n
	}
	step := n / samples
	if step == 0 {
		step = 1
	}
	maxRho := 0.0
	diam := m.Diameter()
	for u := 0; u < n; u += step {
		for r := 1.0; r <= diam; r *= 2 {
			b1 := m.BallSize(NodeID(u), r)
			b2 := m.BallSize(NodeID(u), 2*r)
			if b1 > 0 && b2 > b1 {
				if rho := math.Log2(float64(b2) / float64(b1)); rho > maxRho {
					maxRho = rho
				}
			}
		}
	}
	return maxRho
}
