package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Grid returns a w×h grid network with unit edge weights and unit-spaced
// positions; node (x, y) has ID y*w + x. Grids are the network family used
// in the paper's evaluation (§8).
func Grid(w, h int) *Graph {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("graph: invalid grid %dx%d", w, h))
	}
	g := New(w * h)
	pos := make([]Point, w*h)
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pos[id(x, y)] = Point{X: float64(x), Y: float64(y)}
			if x+1 < w {
				g.MustAddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				g.MustAddEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	if err := g.SetPositions(pos); err != nil {
		panic(err)
	}
	return g
}

// GridSizes mirrors the evaluation's "10 to 1024 nodes" sweep with
// near-square grids.
var GridSizes = []struct {
	W, H int
}{
	{2, 5}, {4, 4}, {6, 6}, {8, 8}, {11, 11}, {16, 16}, {23, 23}, {32, 32},
}

// NearSquareGrid returns a grid with approximately n nodes, as close to
// square as possible while having at least n nodes.
func NearSquareGrid(n int) *Graph {
	if n <= 0 {
		panic("graph: NearSquareGrid needs n > 0")
	}
	w := int(math.Floor(math.Sqrt(float64(n))))
	if w < 1 {
		w = 1
	}
	h := (n + w - 1) / w
	return Grid(w, h)
}

// Ring returns an n-cycle with unit edge weights; rings are the paper's
// example of a topology where spanning-tree trackers pay Θ(D) cost ratios.
func Ring(n int) *Graph {
	if n < 3 {
		panic("graph: ring needs n >= 3")
	}
	g := New(n)
	pos := make([]Point, n)
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		r := float64(n) / (2 * math.Pi)
		pos[i] = Point{X: r * math.Cos(theta), Y: r * math.Sin(theta)}
		g.MustAddEdge(NodeID(i), NodeID((i+1)%n), 1)
	}
	if err := g.SetPositions(pos); err != nil {
		panic(err)
	}
	return g
}

// Path returns an n-node path with unit edge weights.
func Path(n int) *Graph {
	if n < 1 {
		panic("graph: path needs n >= 1")
	}
	g := New(n)
	pos := make([]Point, n)
	for i := 0; i < n; i++ {
		pos[i] = Point{X: float64(i)}
		if i+1 < n {
			g.MustAddEdge(NodeID(i), NodeID(i+1), 1)
		}
	}
	if err := g.SetPositions(pos); err != nil {
		panic(err)
	}
	return g
}

// Star returns a star with n-1 leaves around center 0 and unit weights.
func Star(n int) *Graph {
	if n < 2 {
		panic("graph: star needs n >= 2")
	}
	g := New(n)
	pos := make([]Point, n)
	for i := 1; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n-1)
		pos[i] = Point{X: math.Cos(theta), Y: math.Sin(theta)}
		g.MustAddEdge(0, NodeID(i), 1)
	}
	if err := g.SetPositions(pos); err != nil {
		panic(err)
	}
	return g
}

// RandomGeometric places n sensors uniformly at random in a side×side
// square and connects pairs within the given radio radius, weighting edges
// by Euclidean distance; it then normalizes weights so the shortest edge is
// 1 and retries with a grown radius until connected. This is the standard
// constant-doubling sensor deployment model.
func RandomGeometric(n int, side, radius float64, rng *rand.Rand) *Graph {
	if n <= 0 {
		panic("graph: RandomGeometric needs n > 0")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	for {
		g := New(n)
		if err := g.SetPositions(pos); err != nil {
			panic(err)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := pos[i].X - pos[j].X
				dy := pos[i].Y - pos[j].Y
				d := math.Hypot(dx, dy)
				if d > 0 && d <= radius {
					g.MustAddEdge(NodeID(i), NodeID(j), d)
				}
			}
		}
		if g.Connected() {
			g.Normalize()
			return g
		}
		radius *= 1.3
		if radius > 4*side {
			// Degenerate draw (coincident points); fall back to a clique
			// over distinct points by perturbing.
			for i := range pos {
				pos[i].X += rng.Float64() * 1e-6
				pos[i].Y += rng.Float64() * 1e-6
			}
		}
	}
}

// RandomTree returns a uniformly random labeled tree on n nodes (random
// attachment), unit weights. Useful as a pathological general-network input.
func RandomTree(n int, rng *rand.Rand) *Graph {
	if n < 1 {
		panic("graph: RandomTree needs n >= 1")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	g := New(n)
	for i := 1; i < n; i++ {
		p := NodeID(rng.Intn(i))
		g.MustAddEdge(NodeID(i), p, 1)
	}
	return g
}

// WeightedRing returns a ring whose single "long" edge makes the diameter
// large relative to n — exercises the min{log n, log D} analysis split.
func WeightedRing(n int, longWeight float64) *Graph {
	if n < 3 {
		panic("graph: WeightedRing needs n >= 3")
	}
	if longWeight < 1 {
		longWeight = 1
	}
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), 1)
	}
	g.MustAddEdge(NodeID(n-1), 0, longWeight)
	return g
}
