package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDijkstraPathGraph(t *testing.T) {
	g := Path(5)
	s := g.Dijkstra(0)
	for v := 0; v < 5; v++ {
		if s.Dist[v] != float64(v) {
			t.Fatalf("dist to %d = %v", v, s.Dist[v])
		}
	}
	p := s.PathTo(4)
	want := []NodeID{0, 1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("path %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path %v", p)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	s := g.Dijkstra(0)
	if !math.IsInf(s.Dist[2], 1) {
		t.Fatalf("dist to isolated node = %v", s.Dist[2])
	}
	if s.PathTo(2) != nil {
		t.Fatal("PathTo unreachable returned non-nil")
	}
	if s.PathTo(99) != nil {
		t.Fatal("PathTo out of range returned non-nil")
	}
}

func TestDijkstraWeighted(t *testing.T) {
	// Triangle where the two-hop route is cheaper than the direct edge.
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 5)
	s := g.Dijkstra(0)
	if s.Dist[2] != 2 {
		t.Fatalf("dist(0,2) = %v, want 2 via node 1", s.Dist[2])
	}
	p := s.PathTo(2)
	if len(p) != 3 || p[1] != 1 {
		t.Fatalf("path %v", p)
	}
}

func TestMetricGridDistances(t *testing.T) {
	g := Grid(6, 6)
	m := NewMetric(g)
	// Unit grid: shortest path distance = Manhattan distance.
	for trial := 0; trial < 200; trial++ {
		u := NodeID(trial % g.N())
		v := NodeID((trial * 7) % g.N())
		ux, uy := int(u)%6, int(u)/6
		vx, vy := int(v)%6, int(v)/6
		want := float64(abs(ux-vx) + abs(uy-vy))
		if got := m.Dist(u, v); got != want {
			t.Fatalf("dist(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
}

func TestMetricSymmetryAndTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := RandomGeometric(40, 8, 2, rng)
	m := NewMetric(g)
	f := func(a, b, c uint16) bool {
		u := NodeID(int(a) % g.N())
		v := NodeID(int(b) % g.N())
		w := NodeID(int(c) % g.N())
		duv, dvu := m.Dist(u, v), m.Dist(v, u)
		if math.Abs(duv-dvu) > 1e-9 {
			return false
		}
		// Triangle inequality.
		return m.Dist(u, w) <= duv+m.Dist(v, w)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDiameterKnown(t *testing.T) {
	cases := []struct {
		g    *Graph
		want float64
	}{
		{Path(10), 9},
		{Grid(4, 4), 6},
		{Ring(10), 5},
		{Star(9), 2},
	}
	for i, c := range cases {
		m := NewMetric(c.g)
		if d := m.Diameter(); d != c.want {
			t.Errorf("case %d: diameter %v, want %v", i, d, c.want)
		}
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	m := NewMetric(g)
	if !math.IsInf(m.Diameter(), 1) {
		t.Fatal("disconnected diameter not Inf")
	}
}

func TestCenterOfPath(t *testing.T) {
	g := Path(9)
	m := NewMetric(g)
	if c := m.Center(); c != 4 {
		t.Fatalf("center of P9 = %d, want 4", c)
	}
}

func TestBall(t *testing.T) {
	g := Grid(5, 5)
	m := NewMetric(g)
	center := NodeID(12) // middle
	if got := m.BallSize(center, 1); got != 5 {
		t.Fatalf("BallSize(center,1) = %d, want 5", got)
	}
	ball := m.Ball(center, 2)
	if len(ball) != 13 { // diamond of radius 2 fits fully: 1+4+8
		t.Fatalf("Ball radius 2 has %d nodes, want 13", len(ball))
	}
	for _, v := range ball {
		if m.Dist(center, v) > 2 {
			t.Fatalf("ball member %d at distance %v", v, m.Dist(center, v))
		}
	}
}

func TestPrecomputeMatchesLazy(t *testing.T) {
	g := Grid(8, 8)
	lazy := NewMetric(g)
	pre := NewMetric(g)
	pre.Precompute(4)
	for u := 0; u < g.N(); u += 5 {
		for v := 0; v < g.N(); v += 7 {
			if lazy.Dist(NodeID(u), NodeID(v)) != pre.Dist(NodeID(u), NodeID(v)) {
				t.Fatalf("precompute mismatch at (%d,%d)", u, v)
			}
		}
	}
}

func TestDoublingEstimateGridIsBounded(t *testing.T) {
	g := Grid(16, 16)
	m := NewMetric(g)
	rho := m.DoublingEstimate(16)
	if rho <= 0 || rho > 3.5 {
		t.Fatalf("grid doubling estimate %v outside (0, 3.5]", rho)
	}
}

func TestRowSharedNotCopied(t *testing.T) {
	g := Path(4)
	m := NewMetric(g)
	r1 := m.Row(0)
	r2 := m.Row(0)
	if &r1[0] != &r2[0] {
		t.Fatal("Row should return the cached slice")
	}
}

func BenchmarkDijkstraGrid32(b *testing.B) {
	g := Grid(32, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(NodeID(i % g.N()))
	}
}

func BenchmarkMetricPrecompute1024(b *testing.B) {
	g := Grid(32, 32)
	for i := 0; i < b.N; i++ {
		m := NewMetric(g)
		m.Precompute(0)
	}
}
