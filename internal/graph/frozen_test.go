package graph

// Tests for the frozen flat APSP table and the disconnected-graph
// behavior of the metric layer: the DoublingEstimate termination
// regression, Dist range-check consistency, frozen-vs-lazy equivalence
// (including disconnected inputs), and the lock-free zero-allocation
// read contract.

import (
	"math"
	"math/rand"
	"testing"
)

// twoComponents returns a graph whose nodes split into a path component
// and a ring component with no edges between them.
func twoComponents(pathN, ringN int) *Graph {
	g := New(pathN + ringN)
	for i := 0; i < pathN-1; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), 1)
	}
	for i := 0; i < ringN; i++ {
		g.MustAddEdge(NodeID(pathN+i), NodeID(pathN+(i+1)%ringN), 1)
	}
	return g
}

// TestDoublingEstimateDisconnected is the regression test for the
// non-termination bug: with a disconnected graph Diameter() is +Inf, and
// the radius sweep `for r := 1.0; r <= diam; r *= 2` saturated r at +Inf
// and never exited. The fixed sweep stops once a ball covers the graph
// or r leaves the finite range; without the fix this test hangs and
// fails by timeout.
func TestDoublingEstimateDisconnected(t *testing.T) {
	g := twoComponents(5, 4)
	m := NewMetric(g)
	rho := m.DoublingEstimate(0)
	if math.IsInf(rho, 1) || math.IsNaN(rho) || rho < 0 {
		t.Fatalf("DoublingEstimate on disconnected graph = %v, want finite non-negative", rho)
	}
	// Sanity: the same components joined by an edge give a finite rho too,
	// and the disconnected estimate stays in a plausible range.
	if rho > 10 {
		t.Fatalf("DoublingEstimate = %v, implausibly large for 9 nodes", rho)
	}
}

func TestDiameterDisconnectedCached(t *testing.T) {
	g := twoComponents(3, 3)
	m := NewMetric(g)
	if d := m.Diameter(); !math.IsInf(d, 1) {
		t.Fatalf("Diameter of disconnected graph = %v, want +Inf", d)
	}
	// Second call hits the cached value.
	if d := m.Diameter(); !math.IsInf(d, 1) {
		t.Fatalf("cached Diameter = %v, want +Inf", d)
	}
	if !m.Frozen() {
		t.Fatal("Diameter should freeze the metric")
	}
}

// TestDistOutOfRangeConsistent pins the validation fix: Dist used to
// short-circuit u == v before any range check, so Dist(-5, -5) silently
// returned 0 while Dist(-5, 0) panicked. Both must now panic, frozen or
// not.
func TestDistOutOfRangeConsistent(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	for _, frozen := range []bool{false, true} {
		m := NewMetric(Path(4))
		if frozen {
			m.Precompute(0)
		}
		mustPanic("Dist(-5,-5)", func() { m.Dist(-5, -5) })
		mustPanic("Dist(-5,0)", func() { m.Dist(-5, 0) })
		mustPanic("Dist(0,99)", func() { m.Dist(0, 99) })
		mustPanic("Dist(99,99)", func() { m.Dist(99, 99) })
		mustPanic("Row(-1)", func() { m.Row(-1) })
		if d := m.Dist(2, 2); d != 0 {
			t.Fatalf("Dist(2,2) = %v, want 0", d)
		}
	}
}

// TestFrozenMatchesLazy is the equivalence property test: for random
// geometric graphs, random trees, and disconnected unions, a frozen
// metric must agree with a lazy one on Dist, Row, Ball, BallSize,
// Eccentricity, and Diameter — including the +Inf entries between
// components.
func TestFrozenMatchesLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		name string
		g    *Graph
	}{
		{"geometric", RandomGeometric(40, 1, 0.3, rng)},
		{"tree", RandomTree(40, rng)},
		{"two-components", twoComponents(7, 6)},
		{"singleton", New(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lazy := NewMetric(tc.g)
			frozen := NewMetric(tc.g)
			frozen.Precompute(0)
			if !frozen.Frozen() {
				t.Fatal("Precompute did not freeze")
			}
			n := tc.g.N()
			for u := 0; u < n; u++ {
				lrow, frow := lazy.Row(NodeID(u)), frozen.Row(NodeID(u))
				for v := 0; v < n; v++ {
					if lrow[v] != frow[v] && !(math.IsInf(lrow[v], 1) && math.IsInf(frow[v], 1)) {
						t.Fatalf("Row(%d)[%d]: lazy %v vs frozen %v", u, v, lrow[v], frow[v])
					}
					if ld, fd := lazy.Dist(NodeID(u), NodeID(v)), frozen.Dist(NodeID(u), NodeID(v)); ld != fd && !(math.IsInf(ld, 1) && math.IsInf(fd, 1)) {
						t.Fatalf("Dist(%d,%d): lazy %v vs frozen %v", u, v, ld, fd)
					}
				}
				for _, r := range []float64{0, 1, 2.5, 100} {
					lb, fb := lazy.Ball(NodeID(u), r), frozen.Ball(NodeID(u), r)
					if len(lb) != len(fb) {
						t.Fatalf("Ball(%d,%v): lazy %v vs frozen %v", u, r, lb, fb)
					}
					for i := range lb {
						if lb[i] != fb[i] {
							t.Fatalf("Ball(%d,%v)[%d]: lazy %v vs frozen %v", u, r, i, lb[i], fb[i])
						}
					}
					if ls, fs := lazy.BallSize(NodeID(u), r), frozen.BallSize(NodeID(u), r); ls != fs || ls != len(lb) {
						t.Fatalf("BallSize(%d,%v): lazy %d, frozen %d, |Ball| %d", u, r, ls, fs, len(lb))
					}
				}
				le, fe := lazy.Eccentricity(NodeID(u)), frozen.Eccentricity(NodeID(u))
				if le != fe && !(math.IsInf(le, 1) && math.IsInf(fe, 1)) {
					t.Fatalf("Eccentricity(%d): lazy %v vs frozen %v", u, le, fe)
				}
			}
			ld, fd := lazy.Diameter(), frozen.Diameter()
			if ld != fd && !(math.IsInf(ld, 1) && math.IsInf(fd, 1)) {
				t.Fatalf("Diameter: lazy %v vs frozen %v", ld, fd)
			}
			if tc.name == "two-components" && !math.IsInf(fd, 1) {
				t.Fatalf("disconnected Diameter = %v, want +Inf", fd)
			}
		})
	}
}

// TestPathToNilAcrossComponents checks SSSP path reconstruction returns
// nil (not garbage) for unreachable targets.
func TestPathToNilAcrossComponents(t *testing.T) {
	g := twoComponents(4, 3)
	res := g.Dijkstra(0)
	if p := res.PathTo(5); p != nil {
		t.Fatalf("PathTo across components = %v, want nil", p)
	}
	if p := res.PathTo(3); len(p) != 4 {
		t.Fatalf("PathTo(3) = %v, want the 4-node path", p)
	}
}

// TestAutoFreezeOnFullFill checks that purely lazy use freezes the
// metric once the last row is computed, after which reads are lock-free.
func TestAutoFreezeOnFullFill(t *testing.T) {
	g := Ring(6)
	m := NewMetric(g)
	for u := 0; u < g.N()-1; u++ {
		m.Row(NodeID(u))
		if m.Frozen() {
			t.Fatalf("frozen after only %d of %d rows", u+1, g.N())
		}
	}
	m.Row(NodeID(g.N() - 1))
	if !m.Frozen() {
		t.Fatal("not frozen after all rows were computed lazily")
	}
	if d := m.Dist(0, 3); d != 3 {
		t.Fatalf("Dist(0,3) on ring = %v, want 3", d)
	}
}

// TestFrozenDistZeroAllocs pins the acceptance criterion: frozen-path
// Dist (and Row) allocate nothing.
func TestFrozenDistZeroAllocs(t *testing.T) {
	g := Grid(8, 8)
	m := NewMetric(g)
	m.Precompute(0)
	n := g.N()
	i := 0
	if allocs := testing.AllocsPerRun(100, func() {
		u := NodeID(i % n)
		v := NodeID((i * 13) % n)
		_ = m.Dist(u, v)
		_ = m.Row(u)
		i++
	}); allocs != 0 {
		t.Fatalf("frozen Dist/Row allocate %v per op, want 0", allocs)
	}
}

// TestPrecomputeReusesLazyRows checks that rows cached before Precompute
// survive into the frozen table unchanged.
func TestPrecomputeReusesLazyRows(t *testing.T) {
	g := Grid(4, 4)
	m := NewMetric(g)
	want := append([]float64(nil), m.Row(5)...)
	m.Precompute(2)
	got := m.Row(5)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row 5 entry %d changed across freeze: %v vs %v", i, want[i], got[i])
		}
	}
	m.Precompute(0) // idempotent on a frozen metric
	if !m.Frozen() {
		t.Fatal("metric not frozen after Precompute")
	}
}

func TestEmptyGraphMetric(t *testing.T) {
	m := NewMetric(New(0))
	m.Precompute(0)
	if d := m.Diameter(); d != 0 {
		t.Fatalf("empty-graph Diameter = %v, want 0", d)
	}
	if rho := m.DoublingEstimate(4); rho != 0 {
		t.Fatalf("empty-graph DoublingEstimate = %v, want 0", rho)
	}
}

// BenchmarkMetricDistFrozen pins the lock-free frozen read path; run
// with -benchmem to see the 0 allocs/op.
func BenchmarkMetricDistFrozen(b *testing.B) {
	g := Grid(32, 32)
	m := NewMetric(g)
	m.Precompute(0)
	n := g.N()
	b.ReportAllocs()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += m.Dist(NodeID(i%n), NodeID((i*31)%n))
	}
	benchSink = acc
}

// BenchmarkMetricDistLazy measures the pre-freeze RWMutex+map path for
// comparison; it touches only a few source rows so the metric never
// auto-freezes.
func BenchmarkMetricDistLazy(b *testing.B) {
	g := Grid(32, 32)
	m := NewMetric(g)
	n := g.N()
	b.ReportAllocs()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += m.Dist(NodeID(i%8), NodeID((i*31)%n))
	}
	benchSink = acc
}

var benchSink float64
