//go:build race

package graph

// raceEnabled reports that this binary was built with -race: the
// detector's instrumentation allocates, so zero-alloc pins skip.
const raceEnabled = true
