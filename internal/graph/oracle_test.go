package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/runtime/track"
)

// eps absorbs float64 summation noise in the oracle invariants: landmark
// estimates are sums of independently-rounded Dijkstra distances.
const eps = 1e-9

// oracleFamilies returns the seeded topology families the property suite
// runs over: a grid, a random geometric graph, a random tree, and a
// weighted ring (≥3 families per the contract; RGG instances may be
// disconnected, which the invariants must survive).
type oracleFamily struct {
	name string
	g    *Graph
}

func oracleFamilies() []oracleFamily {
	return []oracleFamily{
		{"grid", Grid(14, 14)},
		{"rgg", RandomGeometric(220, 10, 1.2, rand.New(rand.NewSource(61)))},
		{"tree", RandomTree(250, rand.New(rand.NewSource(62)))},
		{"weightedRing", WeightedRing(120, 7)},
	}
}

// smallOracle builds an Oracle with deliberately tight budgets so most
// far pairs exercise the landmark-estimate path rather than the sketches.
func smallOracle(g *Graph, seed int64, workers int) *Oracle {
	return NewOracle(g, OracleConfig{Landmarks: 5, BallK: 9, Seed: seed, Workers: workers})
}

func TestOracleStretchInvariant(t *testing.T) {
	for _, fam := range oracleFamilies() {
		g := fam.g
		t.Run(fam.name, func(t *testing.T) {
			m := NewMetric(g)
			o := smallOracle(g, 11, 3)
			s := o.Stretch()
			if s < 1 {
				t.Fatalf("stretch %v < 1", s)
			}
			n := g.N()
			for u := 0; u < n; u++ {
				for v := u; v < n; v++ {
					exact := m.Dist(NodeID(u), NodeID(v))
					est := o.Dist(NodeID(u), NodeID(v))
					if math.IsInf(exact, 1) != math.IsInf(est, 1) {
						t.Fatalf("(%d,%d): exact=%v est=%v infinity mismatch", u, v, exact, est)
					}
					if math.IsInf(exact, 1) {
						continue
					}
					if est < exact-eps*(1+exact) {
						t.Fatalf("(%d,%d): est %v below exact %v", u, v, est, exact)
					}
					if est > s*exact+eps*(1+exact) {
						t.Fatalf("(%d,%d): est %v above stretch bound %v·%v", u, v, est, s, exact)
					}
					if back := o.Dist(NodeID(v), NodeID(u)); back != est {
						t.Fatalf("(%d,%d): asymmetric %v vs %v", u, v, est, back)
					}
				}
			}
			if d := o.Dist(0, 0); d != 0 {
				t.Fatalf("Dist(0,0) = %v", d)
			}
		})
	}
}

// TestOracleRelaxedTriangle pins the documented relaxed triangle
// inequality est(u,w) ≤ S·(est(u,v)+est(v,w)): estimates overshoot by at
// most S on the left while the right is at least the exact subpath costs.
func TestOracleRelaxedTriangle(t *testing.T) {
	for _, fam := range oracleFamilies() {
		g := fam.g
		t.Run(fam.name, func(t *testing.T) {
			o := smallOracle(g, 13, 2)
			s := o.Stretch()
			rng := rand.New(rand.NewSource(17))
			n := g.N()
			for i := 0; i < 4000; i++ {
				u, v, w := NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
				duw := o.Dist(u, w)
				via := o.Dist(u, v) + o.Dist(v, w)
				if math.IsInf(via, 1) {
					continue
				}
				if duw > s*via+eps*(1+via) {
					t.Fatalf("(%d,%d,%d): est(u,w)=%v > %v·(est(u,v)+est(v,w))=%v", u, v, w, duw, s, via)
				}
			}
		})
	}
}

// TestOracleNearExact pins the exactness contract of the local queries:
// Near/Ball/BallSize agree with the exact metric on every implementation,
// for radii both inside and outside the sketch guarantee.
func TestOracleNearExact(t *testing.T) {
	for _, fam := range oracleFamilies() {
		g := fam.g
		t.Run(fam.name, func(t *testing.T) {
			m := NewMetric(g)
			o := smallOracle(g, 19, 4)
			diam := m.Diameter()
			if math.IsInf(diam, 1) {
				diam = 40
			}
			rng := rand.New(rand.NewSource(23))
			radii := []float64{0, 0.5, 1, 2, diam / 4, diam / 2, diam, diam + 1}
			for i := 0; i < 40; i++ {
				u := NodeID(rng.Intn(g.N()))
				for _, r := range radii {
					want := m.Near(u, r)
					got := o.Near(u, r)
					if len(want) != len(got) {
						t.Fatalf("Near(%d,%v): %d vs exact %d nodes", u, r, len(got), len(want))
					}
					for j := range want {
						if want[j].Node != got[j].Node || math.Abs(want[j].D-got[j].D) > eps*(1+want[j].D) {
							t.Fatalf("Near(%d,%v)[%d]: %+v vs exact %+v", u, r, j, got[j], want[j])
						}
					}
					if bs := o.BallSize(u, r); bs != m.BallSize(u, r) {
						t.Fatalf("BallSize(%d,%v) = %d, exact %d", u, r, bs, m.BallSize(u, r))
					}
					wantB, gotB := m.Ball(u, r), o.Ball(u, r)
					if len(wantB) != len(gotB) {
						t.Fatalf("Ball(%d,%v) size %d vs %d", u, r, len(gotB), len(wantB))
					}
					for j := range wantB {
						if wantB[j] != gotB[j] {
							t.Fatalf("Ball(%d,%v)[%d] = %d, exact %d", u, r, j, gotB[j], wantB[j])
						}
					}
				}
			}
		})
	}
}

// TestOracleDisconnected mirrors TestDoublingEstimateDisconnected for the
// oracle path: cross-component distances are +Inf, within-component
// queries stay exact and finite, and nothing hangs or panics.
func TestOracleDisconnected(t *testing.T) {
	g := New(9)
	// Component A: path 0-1-2-3; component B: triangle 4-5-6; 7, 8 isolated.
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(4, 5, 1)
	g.MustAddEdge(5, 6, 1)
	g.MustAddEdge(4, 6, 1)
	o := NewOracle(g, OracleConfig{Landmarks: 2, BallK: 2, Seed: 5, Workers: 3})
	m := NewMetric(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			exact := m.Dist(NodeID(u), NodeID(v))
			est := o.Dist(NodeID(u), NodeID(v))
			if math.IsInf(exact, 1) {
				if !math.IsInf(est, 1) {
					t.Fatalf("(%d,%d): cross-component est %v, want +Inf", u, v, est)
				}
				continue
			}
			if est < exact-eps || est > o.Stretch()*exact+eps {
				t.Fatalf("(%d,%d): est %v outside [%v, %v·%v]", u, v, est, exact, o.Stretch(), exact)
			}
		}
	}
	if d := o.Diameter(); !math.IsInf(d, 1) {
		t.Fatalf("disconnected Diameter = %v, want +Inf", d)
	}
	if got := o.BallSize(0, 100); got != 4 {
		t.Fatalf("BallSize(0, 100) = %d, want component size 4", got)
	}
	if got := o.BallSize(7, 100); got != 1 {
		t.Fatalf("BallSize(isolated, 100) = %d, want 1", got)
	}
	if nbs := o.Near(8, math.Inf(1)); len(nbs) != 1 || nbs[0].Node != 8 {
		t.Fatalf("Near(isolated, +Inf) = %v", nbs)
	}
}

// TestOracleWorkerDeterminism pins byte-level build determinism: any
// worker count yields identical estimates, stretch, and sketches.
func TestOracleWorkerDeterminism(t *testing.T) {
	g := RandomGeometric(180, 9, 1.3, rand.New(rand.NewSource(71)))
	base := smallOracle(g, 29, 1)
	for _, workers := range []int{2, 4, 7, 32} {
		o := smallOracle(g, 29, workers)
		if o.Stretch() != base.Stretch() {
			t.Fatalf("workers=%d: stretch %v vs %v", workers, o.Stretch(), base.Stretch())
		}
		if o.Landmarks() != base.Landmarks() {
			t.Fatalf("workers=%d: %d landmarks vs %d", workers, o.Landmarks(), base.Landmarks())
		}
		for u := 0; u < g.N(); u++ {
			for v := u + 1; v < g.N(); v += 3 {
				if a, b := o.Dist(NodeID(u), NodeID(v)), base.Dist(NodeID(u), NodeID(v)); a != b {
					t.Fatalf("workers=%d: Dist(%d,%d) %v vs %v", workers, u, v, a, b)
				}
			}
			if a, b := o.rsketch[u], base.rsketch[u]; a != b {
				t.Fatalf("workers=%d: rsketch[%d] %v vs %v", workers, u, a, b)
			}
		}
	}
}

// TestOracleConcurrentReads hammers a shared oracle from several
// goroutines — meaningful under -race, where RACE_RUN picks it up.
func TestOracleConcurrentReads(t *testing.T) {
	g := Grid(12, 12)
	o := NewOracle(g, OracleConfig{Landmarks: 4, BallK: 8, Seed: 3, Workers: 4})
	n := g.N()
	var pool track.Group
	for w := 0; w < 6; w++ {
		w := w
		pool.Go(func() {
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 400; i++ {
				u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
				if d := o.Dist(u, v); d < 0 {
					panic("negative distance")
				}
				_ = o.Near(u, float64(rng.Intn(8)))
				_ = o.Diameter()
			}
		})
	}
	pool.Wait()
}

// TestOracleQuickSymmetry drives symmetry and non-negativity through
// testing/quick over arbitrary node pairs.
func TestOracleQuickSymmetry(t *testing.T) {
	g := RandomTree(200, rand.New(rand.NewSource(41)))
	o := smallOracle(g, 43, 2)
	n := g.N()
	prop := func(a, b uint16) bool {
		u, v := NodeID(int(a)%n), NodeID(int(b)%n)
		d1, d2 := o.Dist(u, v), o.Dist(v, u)
		return d1 == d2 && d1 >= 0 && (u != v || d1 == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(47))}); err != nil {
		t.Fatal(err)
	}
}

// TestOracleFullySketched: when every node's sketch holds its whole
// component, the oracle is exact and publishes stretch 1.
func TestOracleFullySketched(t *testing.T) {
	g := Grid(5, 5)
	o := NewOracle(g, OracleConfig{Landmarks: 3, BallK: 25, Seed: 7, Workers: 2})
	if s := o.Stretch(); s != 1 {
		t.Fatalf("fully-sketched stretch = %v, want 1", s)
	}
	m := NewMetric(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if est, exact := o.Dist(NodeID(u), NodeID(v)), m.Dist(NodeID(u), NodeID(v)); est != exact {
				t.Fatalf("(%d,%d): %v != exact %v", u, v, est, exact)
			}
		}
	}
}

// TestOracleDiameterUpperBound pins the documented Diameter contract:
// an upper bound within a factor 2 of the true diameter.
func TestOracleDiameterUpperBound(t *testing.T) {
	for _, fam := range oracleFamilies() {
		g := fam.g
		t.Run(fam.name, func(t *testing.T) {
			m := NewMetric(g)
			o := smallOracle(g, 53, 3)
			exact := m.Diameter()
			got := o.Diameter()
			if math.IsInf(exact, 1) {
				if !math.IsInf(got, 1) {
					t.Fatalf("disconnected: oracle Diameter %v, want +Inf", got)
				}
				return
			}
			if got < exact-eps {
				t.Fatalf("oracle Diameter %v below true diameter %v", got, exact)
			}
			if got > 2*exact+eps {
				t.Fatalf("oracle Diameter %v above 2×true %v", got, 2*exact)
			}
		})
	}
}

// TestOracleDiameterEdgeSemantics pins the tiny/disconnected edge of
// the Diameter contract against Metric.Diameter, case by case: 0 only
// for graphs with fewer than two nodes, +Inf the moment a second
// component exists — never 0 for a graph that isn't a point. These are
// exactly the shapes where a zero-landmark-ish accident (empty rows,
// isolated singleton components) could leak a bogus finite bound to
// callers sizing doubling sweeps off it.
func TestOracleDiameterEdgeSemantics(t *testing.T) {
	pair := New(2)
	pair.MustAddEdge(0, 1, 3)
	pathPlusIsolated := New(4)
	pathPlusIsolated.MustAddEdge(0, 1, 1)
	pathPlusIsolated.MustAddEdge(1, 2, 1)
	twoComponents := New(5)
	twoComponents.MustAddEdge(0, 1, 2)
	twoComponents.MustAddEdge(2, 3, 1)
	twoComponents.MustAddEdge(3, 4, 1)
	for _, tc := range []struct {
		name string
		g    *Graph
		want float64
	}{
		{"empty", New(0), 0},
		{"singleton", New(1), 0},
		{"two isolated", New(2), math.Inf(1)},
		{"single edge", pair, 6}, // 2·ecc of either endpoint
		{"path plus isolated", pathPlusIsolated, math.Inf(1)},
		{"two components", twoComponents, math.Inf(1)},
		{"all isolated", New(5), math.Inf(1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{1, 9, 42} {
				o := NewOracle(tc.g, OracleConfig{Landmarks: 2, BallK: 2, Seed: seed})
				got := o.Diameter()
				if math.IsInf(tc.want, 1) {
					if !math.IsInf(got, 1) {
						t.Fatalf("seed %d: Diameter = %v, want +Inf", seed, got)
					}
				} else if tc.want == 0 {
					if got != 0 {
						t.Fatalf("seed %d: Diameter = %v, want 0", seed, got)
					}
				} else if got < tc.want/2-eps || got > tc.want+eps {
					// A 2·ecc bound on a connected graph: within [D, 2D].
					t.Fatalf("seed %d: Diameter = %v, want in [%v,%v]", seed, got, tc.want/2, tc.want)
				}
				// The exact metric must agree on every finite/Inf/zero class.
				exact := NewMetric(tc.g).Diameter()
				if math.IsInf(exact, 1) != math.IsInf(got, 1) || (exact == 0) != (got == 0) {
					t.Fatalf("seed %d: oracle %v vs metric %v disagree on edge class", seed, got, exact)
				}
			}
		})
	}
}

// TestOracleMetricInterchange pins the two implementations behind the
// shared interface: Metric reports stretch 1, Near agrees between them,
// and EstimateDoubling over the exact implementation reproduces
// Metric.DoublingEstimate.
func TestOracleMetricInterchange(t *testing.T) {
	g := Grid(8, 8)
	m := NewMetric(g)
	var exact DistanceOracle = m
	if s := exact.Stretch(); s != 1 {
		t.Fatalf("Metric stretch = %v", s)
	}
	if got, want := EstimateDoubling(m, 16), m.DoublingEstimate(16); got != want {
		t.Fatalf("EstimateDoubling %v != DoublingEstimate %v", got, want)
	}
	nbs := exact.Near(0, 2)
	ball := exact.Ball(0, 2)
	if len(nbs) != len(ball) || len(nbs) != exact.BallSize(0, 2) {
		t.Fatalf("Near/Ball/BallSize disagree: %d/%d/%d", len(nbs), len(ball), exact.BallSize(0, 2))
	}
	for i := range nbs {
		if nbs[i].Node != ball[i] {
			t.Fatalf("Near[%d]=%d, Ball[%d]=%d", i, nbs[i].Node, i, ball[i])
		}
	}
}

// TestOracleTinyGraphs exercises the degenerate sizes.
func TestOracleTinyGraphs(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		g := New(n)
		if n == 2 {
			g.MustAddEdge(0, 1, 3)
		}
		o := NewOracle(g, OracleConfig{Seed: 1})
		if s := o.Stretch(); s != 1 {
			t.Fatalf("n=%d: stretch %v", n, s)
		}
		if n == 2 {
			if d := o.Dist(0, 1); d != 3 {
				t.Fatalf("Dist(0,1) = %v", d)
			}
			if d := o.Diameter(); d < 3 || d > 6 {
				t.Fatalf("Diameter = %v, want in [3,6]", d)
			}
		}
	}
}

// TestOracleBallSizeMatchesNear cross-checks the count-only BallSize
// against the materializing Near on every family, over radii that hit
// both the sketch path and the bounded-Dijkstra fallback.
func TestOracleBallSizeMatchesNear(t *testing.T) {
	for _, fam := range oracleFamilies() {
		o := smallOracle(fam.g, 77, 1)
		diam := o.Diameter()
		for _, r := range []float64{0, 0.5, 1, 2, diam / 2, diam, diam * 2} {
			for u := 0; u < fam.g.N(); u += 17 {
				got := o.BallSize(NodeID(u), r)
				want := len(o.Near(NodeID(u), r))
				if got != want {
					t.Fatalf("%s: BallSize(%d, %v) = %d, Near gives %d", fam.name, u, r, got, want)
				}
			}
		}
	}
}

// TestOracleHotPathZeroAllocs pins the //motlint:hotpath contract
// dynamically: Dist and BallSize (sketch path and pooled-scratch
// fallback alike) allocate nothing per call once the scratch pool has
// warmed to the working ball size.
func TestOracleHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the pin runs in the plain tier")
	}
	g := Grid(12, 12)
	o := smallOracle(g, 5, 1)
	n := g.N()
	diam := o.Diameter()
	o.BallSize(0, diam) // warm the pooled scratch to the largest ball
	i := 0
	if allocs := testing.AllocsPerRun(200, func() {
		u := NodeID(i % n)
		v := NodeID((i * 29) % n)
		_ = o.Dist(u, v)
		_ = o.BallSize(u, 0.5)  // sketch path
		_ = o.BallSize(u, diam) // bounded-Dijkstra fallback
		i++
	}); allocs != 0 {
		t.Fatalf("oracle Dist/BallSize allocate %v per op, want 0", allocs)
	}
}
