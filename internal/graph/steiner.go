package graph

import "sort"

// SteinerApprox returns the weight of a Steiner tree connecting the given
// terminal nodes, computed with the classic metric-closure MST
// 2-approximation: build the complete graph over terminals weighted by
// shortest-path distances and take its minimum spanning tree. The paper's
// concurrent-case analysis (§4.1.2) lower-bounds the cost of a batch of
// simultaneous maintenance operations by the Steiner tree of the issuing
// nodes; this approximation is within a factor 2 of the optimum (and the
// true optimum is at least half the returned weight).
//
// Duplicate terminals are ignored; fewer than two distinct terminals cost
// zero.
func SteinerApprox(m *Metric, terminals []NodeID) float64 {
	uniq := make([]NodeID, 0, len(terminals))
	seen := make(map[NodeID]bool, len(terminals))
	for _, t := range terminals {
		if !seen[t] {
			seen[t] = true
			uniq = append(uniq, t)
		}
	}
	if len(uniq) < 2 {
		return 0
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })

	// Prim's algorithm over the metric closure.
	const unvisited = -1
	inTree := make([]bool, len(uniq))
	best := make([]float64, len(uniq))
	row0 := m.Row(uniq[0])
	for i := range best {
		best[i] = row0[uniq[i]]
	}
	inTree[0] = true
	total := 0.0
	for added := 1; added < len(uniq); added++ {
		pick := unvisited
		for i := range uniq {
			if inTree[i] {
				continue
			}
			if pick == unvisited || best[i] < best[pick] {
				pick = i
			}
		}
		total += best[pick]
		inTree[pick] = true
		row := m.Row(uniq[pick])
		for i := range uniq {
			if !inTree[i] && row[uniq[i]] < best[i] {
				best[i] = row[uniq[i]]
			}
		}
	}
	return total
}
