// Package graph provides the weighted-graph model of a sensor network used
// throughout the MOT reproduction: graph nodes are sensor nodes, edges are
// adjacencies between sensors (an object can pass directly between them),
// and edge weights are normalized physical distances.
//
// The package supplies generators for the network families used in the
// paper's evaluation (grids) and in its discussion (rings, random geometric
// graphs), exact shortest-path machinery (Dijkstra single-source and cached
// all-pairs), the network diameter, and an empirical doubling-dimension
// estimate used to pick hierarchy constants.
package graph

import (
	"fmt"
	"math"
)

// NodeID identifies a sensor node. Nodes are numbered 0..N-1.
type NodeID int

// Undefined is the sentinel for "no node".
const Undefined NodeID = -1

// Edge is a weighted, undirected adjacency between two sensors.
type Edge struct {
	From, To NodeID
	Weight   float64
}

// Point is the planar position of a sensor; the evaluation's grid networks
// and the Z-DAT baseline's rectangular zones need coordinates.
type Point struct {
	X, Y float64
}

// Graph is a weighted undirected graph G = (V, E, w). The zero value is an
// empty graph; use New or a generator to create one. Edge weights are
// normalized so the shortest edge has weight 1 (see Normalize).
type Graph struct {
	n   int
	adj [][]halfEdge // adjacency lists
	pos []Point      // optional geometric embedding (len 0 or n)

	nEdges int
}

type halfEdge struct {
	to NodeID
	w  float64
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{n: n, adj: make([][]halfEdge, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.nEdges }

// AddEdge inserts an undirected edge {u, v} with weight w. It panics on an
// out-of-range endpoint, a self loop, or a non-positive weight; duplicate
// edges are rejected with an error to keep adjacency lists canonical.
func (g *Graph) AddEdge(u, v NodeID, w float64) error {
	if !g.valid(u) || !g.valid(v) {
		return fmt.Errorf("graph: edge endpoint out of range: {%d,%d} with n=%d", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self loop at node %d", u)
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("graph: invalid edge weight %v on {%d,%d}", w, u, v)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: v, w: w})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, w: w})
	g.nEdges++
	return nil
}

// MustAddEdge is AddEdge that panics on error; for use by generators and
// tests where the input is known to be well formed.
func (g *Graph) MustAddEdge(u, v NodeID, w float64) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if !g.valid(u) || !g.valid(v) {
		return false
	}
	// Scan the shorter list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, e := range g.adj[a] {
		if e.to == b {
			return true
		}
	}
	return false
}

// EdgeWeight returns the weight of edge {u, v}, or (0, false) if absent.
func (g *Graph) EdgeWeight(u, v NodeID) (float64, bool) {
	if !g.valid(u) || !g.valid(v) {
		return 0, false
	}
	for _, e := range g.adj[u] {
		if e.to == v {
			return e.w, true
		}
	}
	return 0, false
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u NodeID) int {
	if !g.valid(u) {
		return 0
	}
	return len(g.adj[u])
}

// Neighbors calls fn for every neighbor of u with the edge weight. It stops
// early if fn returns false.
func (g *Graph) Neighbors(u NodeID, fn func(v NodeID, w float64) bool) {
	if !g.valid(u) {
		return
	}
	for _, e := range g.adj[u] {
		if !fn(e.to, e.w) {
			return
		}
	}
}

// NeighborIDs returns a fresh slice of u's neighbors.
func (g *Graph) NeighborIDs(u NodeID) []NodeID {
	if !g.valid(u) {
		return nil
	}
	out := make([]NodeID, 0, len(g.adj[u]))
	for _, e := range g.adj[u] {
		out = append(out, e.to)
	}
	return out
}

// Edges returns all undirected edges once each (From < To).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.nEdges)
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			if NodeID(u) < e.to {
				out = append(out, Edge{From: NodeID(u), To: e.to, Weight: e.w})
			}
		}
	}
	return out
}

// SetPositions attaches a geometric embedding; len(pos) must equal N().
func (g *Graph) SetPositions(pos []Point) error {
	if len(pos) != g.n {
		return fmt.Errorf("graph: %d positions for %d nodes", len(pos), g.n)
	}
	g.pos = append([]Point(nil), pos...)
	return nil
}

// HasPositions reports whether a geometric embedding is attached.
func (g *Graph) HasPositions() bool { return len(g.pos) == g.n && g.n > 0 }

// Position returns the planar position of u; it panics if the graph has no
// embedding (callers that need coordinates, like Z-DAT zoning, require one).
func (g *Graph) Position(u NodeID) Point {
	if !g.HasPositions() {
		panic("graph: no geometric embedding attached")
	}
	return g.pos[u]
}

// Normalize rescales all edge weights so the minimum edge weight is exactly
// 1, as the paper's model requires (§2.1); positions are scaled to match.
// It returns the scale factor applied (1 if no edges).
func (g *Graph) Normalize() float64 {
	minW := math.Inf(1)
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			if e.w < minW {
				minW = e.w
			}
		}
	}
	if math.IsInf(minW, 1) || minW == 1 {
		return 1
	}
	scale := 1 / minW
	for u := 0; u < g.n; u++ {
		for i := range g.adj[u] {
			g.adj[u][i].w *= scale
		}
	}
	for i := range g.pos {
		g.pos[i].X *= scale
		g.pos[i].Y *= scale
	}
	return scale
}

// Connected reports whether the graph is connected (true for the empty and
// the single-node graph).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.to] {
				seen[e.to] = true
				count++
				stack = append(stack, e.to)
			}
		}
	}
	return count == g.n
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, adj: make([][]halfEdge, g.n), nEdges: g.nEdges}
	for u := range g.adj {
		c.adj[u] = append([]halfEdge(nil), g.adj[u]...)
	}
	if g.pos != nil {
		c.pos = append([]Point(nil), g.pos...)
	}
	return c
}

func (g *Graph) valid(u NodeID) bool { return u >= 0 && int(u) < g.n }

// String summarizes the graph for diagnostics.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d geometric=%t}", g.n, g.nEdges, g.HasPositions())
}
