package graph

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/runtime/track"
)

// DistanceOracle is the routing-grade distance interface the tracking
// structures are built against. Two implementations exist: the exact
// *Metric (lazy Dijkstra rows that freeze into a flat all-pairs table,
// stretch 1) and the sub-quadratic *Oracle (landmark + ball sketches with
// a build-time-computed stretch bound and O(n·(L+k)) memory).
//
// The contract every implementation must honor:
//
//   - Dist is symmetric, zero on the diagonal, +Inf across connected
//     components, and sandwiched by exact ≤ Dist ≤ Stretch()·exact.
//   - Near, Ball, and BallSize are exact (never estimated): the MOT
//     algorithm needs only hierarchy- and de Bruijn-local distances, and
//     those local queries stay exact in every implementation; only
//     far-pair Dist may be approximate.
//   - Near returns all v with d(u,v) ≤ r in ascending node order, with
//     exact distances.
//   - Diameter is exact on *Metric; approximate implementations must
//     return an upper bound within a factor 2 of the true diameter (+Inf
//     for disconnected graphs either way), so callers using it only in
//     convergence guards never fail early.
//
// Implementations must be safe for concurrent use after construction.
type DistanceOracle interface {
	// Graph returns the underlying graph.
	Graph() *Graph
	// Dist returns the (possibly estimated) shortest-path distance.
	Dist(u, v NodeID) float64
	// Near returns every node within distance r of u (including u) with
	// its exact distance, sorted by ascending node ID.
	Near(u NodeID, r float64) []Neighbor
	// Ball returns the nodes within distance r of u (including u),
	// ascending.
	Ball(u NodeID, r float64) []NodeID
	// BallSize returns |{v : dist(u,v) <= r}| including u itself.
	BallSize(u NodeID, r float64) int
	// Diameter returns the graph diameter (exact or a ≤2× upper bound —
	// see the interface comment), +Inf when disconnected.
	Diameter() float64
	// Stretch returns the multiplicative bound S with
	// exact ≤ Dist ≤ S·exact for every finite pair; 1 for exact oracles.
	Stretch() float64
}

// Neighbor pairs a node with its exact distance from a query center.
type Neighbor struct {
	Node NodeID
	D    float64
}

// OracleConfig parameterizes the landmark/ball sketch oracle.
type OracleConfig struct {
	// Landmarks is the total landmark budget L (full Dijkstra rows kept,
	// O(L·n) floats). <=0 derives 4·ceil(log2 n)+8, clamped to n. Every
	// connected component receives at least one landmark, so same-
	// component estimates are always finite.
	Landmarks int
	// BallK is the per-node sketch size k: each node stores exact
	// distances to its k nearest nodes (O(k·n) entries). <=0 derives
	// 8·ceil(log2 n)+16, clamped to n.
	BallK int
	// Seed salts the first landmark choice per component; the remaining
	// landmarks follow a deterministic farthest-point traversal, so equal
	// (graph, config) builds are identical at any worker count.
	Seed int64
	// Workers bounds the goroutines building ball sketches. <=0 means
	// GOMAXPROCS. The result is byte-identical for every value.
	Workers int
}

func (c *OracleConfig) fill(n int) {
	lg := 0
	for s := 1; s < n; s <<= 1 {
		lg++
	}
	if c.Landmarks <= 0 {
		c.Landmarks = 4*lg + 8
	}
	if c.BallK <= 0 {
		c.BallK = 8*lg + 16
	}
	if c.Landmarks > n {
		c.Landmarks = n
	}
	if c.BallK > n {
		c.BallK = n
	}
	if c.BallK < 2 && n >= 2 {
		c.BallK = 2
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// Oracle is the sub-quadratic distance oracle: per-node ball sketches
// (exact distances to the k nearest nodes) answer near queries and
// near-pair Dist exactly; seeded farthest-point landmarks (full Dijkstra
// rows) answer far-pair Dist with the triangle upper bound
// min_l d(u,l)+d(l,v). The published stretch bound is computed at build
// time from the cover and sketch radii (see Stretch) — no n×n table is
// ever materialized, and memory is O(n·(L+k)).
//
// An Oracle is immutable after NewOracle and safe for concurrent use.
type Oracle struct {
	g   *Graph
	cfg OracleConfig

	comp      []int32  // connected component index per node
	landmarks []NodeID // selection order
	lrows     [][]float64
	rland     []float64 // d(u, nearest landmark)

	sketch  [][]Neighbor // per node, k nearest sorted by ascending node ID
	rsketch []float64    // guaranteed-exact radius: d(u,v) < rsketch[u] ⇒ v in sketch[u]; +Inf when the sketch holds u's whole component

	stretch float64

	// scratch pools the fallback Dijkstra state for Near queries beyond
	// the sketch radius: dist arrays stay all-+Inf between uses (searches
	// restore only the entries they touched), so a pooled query pays for
	// its output, not for an O(n) reset.
	scratch sync.Pool

	diamOnce sync.Once
	diam     float64
}

type nearScratch struct {
	dist    []float64
	touched []NodeID
	h       distHeap
}

// NewOracle builds the sketch oracle over g. The graph must not be
// mutated afterwards.
func NewOracle(g *Graph, cfg OracleConfig) *Oracle {
	n := g.N()
	o := &Oracle{g: g, cfg: cfg}
	o.cfg.fill(n)
	if n == 0 {
		o.stretch = 1
		return o
	}
	o.scratch.New = func() any {
		dist := make([]float64, n)
		for i := range dist {
			dist[i] = Inf
		}
		return &nearScratch{dist: dist, h: make(distHeap, 0, 64)}
	}
	o.findComponents()
	o.pickLandmarks()
	o.buildSketches()
	o.computeStretch()
	return o
}

// findComponents labels connected components in node-scan order.
func (o *Oracle) findComponents() {
	n := o.g.N()
	o.comp = make([]int32, n)
	for i := range o.comp {
		o.comp[i] = -1
	}
	next := int32(0)
	var stack []NodeID
	for s := 0; s < n; s++ {
		if o.comp[s] >= 0 {
			continue
		}
		o.comp[s] = next
		stack = append(stack[:0], NodeID(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range o.g.adj[u] {
				if o.comp[e.to] < 0 {
					o.comp[e.to] = next
					stack = append(stack, e.to)
				}
			}
		}
		next++
	}
}

// pickLandmarks selects landmarks per component — a seeded first pick,
// then deterministic farthest-point traversal (ties broken by smallest
// node ID) — and stores one full Dijkstra row per landmark.
func (o *Oracle) pickLandmarks() {
	n := o.g.N()
	nComp := 0
	for _, c := range o.comp {
		if int(c) >= nComp {
			nComp = int(c) + 1
		}
	}
	members := make([][]NodeID, nComp)
	for u := 0; u < n; u++ {
		c := o.comp[u]
		members[c] = append(members[c], NodeID(u))
	}

	minD := make([]float64, n)
	for i := range minD {
		minD[i] = Inf
	}
	h := make(distHeap, 0, 64)
	addLandmark := func(l NodeID) {
		row := make([]float64, n)
		o.g.dijkstraInto(l, row, nil, &h)
		o.landmarks = append(o.landmarks, l)
		o.lrows = append(o.lrows, row)
		for _, u := range members[o.comp[l]] {
			if row[u] < minD[u] {
				minD[u] = row[u]
			}
		}
	}

	for c := 0; c < nComp; c++ {
		mem := members[c]
		// Budget proportional to component size, at least one.
		budget := o.cfg.Landmarks * len(mem) / n
		if budget < 1 {
			budget = 1
		}
		if budget > len(mem) {
			budget = len(mem)
		}
		first := mem[splitmix64(uint64(o.cfg.Seed)^uint64(c)*0x9e3779b97f4a7c15)%uint64(len(mem))]
		addLandmark(first)
		for i := 1; i < budget; i++ {
			far, farD := Undefined, -1.0
			for _, u := range mem {
				if d := minD[u]; d > farD {
					far, farD = u, d
				}
			}
			if farD <= 0 {
				break // component fully covered by existing landmarks
			}
			addLandmark(far)
		}
	}
	o.rland = minD
}

// buildSketches computes each node's k-nearest sketch with truncated
// Dijkstras, striped across workers (each output slot is written by
// exactly one worker, so any worker count yields identical sketches).
func (o *Oracle) buildSketches() {
	n := o.g.N()
	o.sketch = make([][]Neighbor, n)
	o.rsketch = make([]float64, n)
	workers := o.cfg.Workers
	if workers > n {
		workers = n
	}
	var pool track.Group
	for w := 0; w < workers; w++ {
		w := w
		pool.Go(func() {
			dist := make([]float64, n)
			for i := range dist {
				dist[i] = Inf
			}
			h := make(distHeap, 0, 64)
			var touched []NodeID
			for u := w; u < n; u += workers {
				sk, r := o.g.nearestInto(NodeID(u), o.cfg.BallK, dist, &touched, &h)
				o.sketch[u] = sk
				o.rsketch[u] = r
			}
		})
	}
	pool.Wait()
}

// nearestInto settles up to k nodes of a Dijkstra from src and returns
// them sorted by ascending node ID, plus the guaranteed-exact radius:
// +Inf when the frontier exhausted (the sketch holds src's entire
// component), otherwise the last settled distance r, guaranteeing every
// v with d(src,v) < r is in the sketch. dist must be all-+Inf on entry
// and is restored on exit via the touched list.
func (g *Graph) nearestInto(src NodeID, k int, dist []float64, touched *[]NodeID, h *distHeap) ([]Neighbor, float64) {
	*touched = (*touched)[:0]
	*h = (*h)[:0]
	dist[src] = 0
	*touched = append(*touched, src)
	h.push(distItem{node: src, d: 0})
	settled := make([]Neighbor, 0, k)
	radius := Inf
	for len(*h) > 0 {
		it := h.pop()
		if it.d > dist[it.node] {
			continue // stale entry; settled nodes only reappear as stale
		}
		if len(settled) == k {
			// it is the (k+1)-th nearest: everything strictly closer is
			// already in the sketch, so its distance is the exact radius.
			radius = it.d
			break
		}
		settled = append(settled, Neighbor{Node: it.node, D: it.d})
		for _, e := range g.adj[it.node] {
			if nd := it.d + e.w; nd < dist[e.to] {
				if dist[e.to] == Inf {
					*touched = append(*touched, e.to)
				}
				dist[e.to] = nd
				h.push(distItem{node: e.to, d: nd})
			}
		}
	}
	for _, u := range *touched {
		dist[u] = Inf
	}
	sort.Slice(settled, func(i, j int) bool { return settled[i].Node < settled[j].Node })
	return settled, radius
}

// withinInto settles every node within distance r of src (exact,
// output-sensitive: the search never leaves the ball). dist must be
// all-+Inf on entry and is restored on exit.
func (g *Graph) withinInto(src NodeID, r float64, dist []float64, touched *[]NodeID, h *distHeap) []Neighbor {
	*touched = (*touched)[:0]
	*h = (*h)[:0]
	dist[src] = 0
	*touched = append(*touched, src)
	h.push(distItem{node: src, d: 0})
	var settled []Neighbor
	for len(*h) > 0 {
		it := h.pop()
		if it.d > dist[it.node] || it.d > r {
			continue
		}
		settled = append(settled, Neighbor{Node: it.node, D: it.d})
		for _, e := range g.adj[it.node] {
			if nd := it.d + e.w; nd < dist[e.to] && nd <= r {
				if dist[e.to] == Inf {
					*touched = append(*touched, e.to)
				}
				dist[e.to] = nd
				h.push(distItem{node: e.to, d: nd})
			}
		}
	}
	for _, u := range *touched {
		dist[u] = Inf
	}
	sort.Slice(settled, func(i, j int) bool { return settled[i].Node < settled[j].Node })
	return settled
}

// withinCount is withinInto without the result list: it settles the
// same radius-bounded ball and returns only its size. The scratch
// appends below amortize to zero once the pooled buffers have warmed up
// to the working ball size, which is what the BallSize bench pins.
func (g *Graph) withinCount(src NodeID, r float64, dist []float64, touched *[]NodeID, h *distHeap) int {
	*touched = (*touched)[:0]
	*h = (*h)[:0]
	dist[src] = 0
	//motlint:ignore hotalloc pooled scratch grows once to the working ball size
	*touched = append(*touched, src)
	//motlint:ignore hotalloc pooled heap grows once to the working ball size
	h.push(distItem{node: src, d: 0})
	count := 0
	for len(*h) > 0 {
		it := h.pop()
		if it.d > dist[it.node] || it.d > r {
			continue
		}
		count++
		for _, e := range g.adj[it.node] {
			if nd := it.d + e.w; nd < dist[e.to] && nd <= r {
				if dist[e.to] == Inf {
					//motlint:ignore hotalloc pooled scratch grows once to the working ball size
					*touched = append(*touched, e.to)
				}
				dist[e.to] = nd
				//motlint:ignore hotalloc pooled heap grows once to the working ball size
				h.push(distItem{node: e.to, d: nd})
			}
		}
	}
	for _, u := range *touched {
		dist[u] = Inf
	}
	return count
}

// computeStretch derives the published bound. For any pair answered by a
// sketch the estimate is exact. A pair (u,v) answered by landmarks has
// v outside u's sketch, so exact > rsketch[u], while the triangle route
// through u's nearest landmark overshoots by at most 2·rland[u]; hence
// est/exact ≤ 1 + 2·rland[u]/rsketch[u], and the maximum of that ratio
// over nodes with truncated sketches bounds every estimated pair.
func (o *Oracle) computeStretch() {
	s := 1.0
	for u := range o.rsketch {
		r := o.rsketch[u]
		if r == Inf || r <= 0 {
			continue // whole component in the sketch: never estimated
		}
		if b := 1 + 2*o.rland[u]/r; b > s {
			s = b
		}
	}
	o.stretch = s
}

// Graph returns the underlying graph.
func (o *Oracle) Graph() *Graph { return o.g }

// Landmarks returns the number of landmark rows kept.
func (o *Oracle) Landmarks() int { return len(o.landmarks) }

// BallK returns the per-node sketch size.
func (o *Oracle) BallK() int { return o.cfg.BallK }

// Bytes estimates the oracle's resident memory: landmark rows plus ball
// sketches (the quantity the BENCH trajectory tracks as bytes/node).
func (o *Oracle) Bytes() int64 {
	b := int64(len(o.lrows)) * int64(o.g.N()) * 8
	for _, sk := range o.sketch {
		b += int64(len(sk)) * 16
	}
	b += int64(len(o.rland)+len(o.rsketch)) * 8
	b += int64(len(o.comp)) * 4
	return b
}

// Stretch returns the build-time-computed bound S with
// exact ≤ Dist ≤ S·exact for every finite pair.
func (o *Oracle) Stretch() float64 { return o.stretch }

// sketchDist looks v up in u's sketch (binary search by node ID).
func (o *Oracle) sketchDist(u, v NodeID) (float64, bool) {
	sk := o.sketch[u]
	i := sort.Search(len(sk), func(i int) bool { return sk[i].Node >= v })
	if i < len(sk) && sk[i].Node == v {
		return sk[i].D, true
	}
	return 0, false
}

// Dist returns the exact distance when either endpoint's sketch holds
// the other, and otherwise the landmark triangle upper bound
// min_l d(u,l)+d(l,v). Cross-component pairs return +Inf. It panics on
// out-of-range nodes, like Metric.Dist.
//
//motlint:hotpath
func (o *Oracle) Dist(u, v NodeID) float64 {
	if !o.g.valid(u) || !o.g.valid(v) {
		panic(fmt.Sprintf("graph: Dist(%d, %d) out of range for n=%d", u, v, o.g.N()))
	}
	if u == v {
		return 0
	}
	if d, ok := o.sketchDist(u, v); ok {
		return d
	}
	if d, ok := o.sketchDist(v, u); ok {
		return d
	}
	best := Inf
	for _, row := range o.lrows {
		if s := row[u] + row[v]; s < best {
			best = s
		}
	}
	return best
}

// near answers Near/Ball/BallSize: the sketch when it provably covers
// radius r, otherwise an on-demand radius-bounded Dijkstra (transient,
// output-sensitive — never an n-sized row).
func (o *Oracle) near(u NodeID, r float64) []Neighbor {
	if !o.g.valid(u) {
		panic(fmt.Sprintf("graph: Near(%d) out of range for n=%d", u, o.g.N()))
	}
	if r < o.rsketch[u] {
		sk := o.sketch[u]
		out := make([]Neighbor, 0, len(sk))
		for _, nb := range sk {
			if nb.D <= r {
				out = append(out, nb)
			}
		}
		return out
	}
	sc := o.scratch.Get().(*nearScratch)
	out := o.g.withinInto(u, r, sc.dist, &sc.touched, &sc.h)
	o.scratch.Put(sc)
	return out
}

// Near returns every node within distance r of u with its exact
// distance, ascending by node ID.
func (o *Oracle) Near(u NodeID, r float64) []Neighbor { return o.near(u, r) }

// Ball returns the nodes within distance r of u (including u).
func (o *Oracle) Ball(u NodeID, r float64) []NodeID {
	nbs := o.near(u, r)
	out := make([]NodeID, len(nbs))
	for i, nb := range nbs {
		out[i] = nb.Node
	}
	return out
}

// BallSize returns |{v : dist(u,v) <= r}| including u itself. Unlike
// Near it never materializes the neighbor list: the sketch path counts
// in place and the fallback runs a count-only bounded Dijkstra on
// pooled scratch, so per-level ball sizing in the tracking hot loops
// stays allocation-free.
//
//motlint:hotpath
func (o *Oracle) BallSize(u NodeID, r float64) int {
	if !o.g.valid(u) {
		panic(fmt.Sprintf("graph: BallSize(%d) out of range for n=%d", u, o.g.N()))
	}
	if r < o.rsketch[u] {
		c := 0
		for _, nb := range o.sketch[u] {
			if nb.D <= r {
				c++
			}
		}
		return c
	}
	sc := o.scratch.Get().(*nearScratch)
	c := o.g.withinCount(u, r, sc.dist, &sc.touched, &sc.h)
	o.scratch.Put(sc)
	return c
}

// Diameter returns the upper bound 2·min_l ecc(l) over the landmark
// rows, which is within a factor 2 of the true diameter
// (D ≤ 2·ecc(l) ≤ 2·D for every l). The edge semantics match
// Metric.Diameter exactly: 0 for graphs with fewer than two nodes, and
// +Inf for disconnected graphs — every landmark row then carries an Inf
// entry for the other components, so every eccentricity (and the bound)
// is +Inf. A landmark-free oracle at n ≥ 2 cannot happen (pickLandmarks
// places at least one landmark per component), but if it ever did the
// answer is the vacuous bound +Inf, never 0: a 0 would tell callers
// sizing doubling sweeps or ball radii that the graph is a point.
// Cached after the first call.
func (o *Oracle) Diameter() float64 {
	o.diamOnce.Do(func() {
		n := o.g.N()
		if n < 2 {
			o.diam = 0
			return
		}
		best := Inf
		for _, row := range o.lrows {
			ecc := 0.0
			for _, d := range row {
				if d > ecc {
					ecc = d
				}
			}
			if 2*ecc < best {
				best = 2 * ecc
			}
		}
		// best is still +Inf when there are no landmark rows (vacuous
		// bound) or the graph is disconnected (every ecc is +Inf) —
		// both deliberately +Inf, matching Metric.Diameter.
		o.diam = best
	})
	return o.diam
}

// EstimateDoubling is Metric.DoublingEstimate generalized to any
// DistanceOracle: the max over sampled centers and doubling radii of
// log2(|B(u,2r)|/|B(u,r)|). Ball sizes are exact on every implementation,
// so the estimate matches the exact metric's; on an *Oracle, Diameter is
// its ≤2× upper bound, which only extends the radius sweep (adding
// iterations where the ball already covers the component, which the
// break below skips). samples <= 0 probes every node.
func EstimateDoubling(o DistanceOracle, samples int) float64 {
	n := o.Graph().N()
	if n == 0 {
		return 0
	}
	if samples <= 0 || samples > n {
		samples = n
	}
	step := n / samples
	if step == 0 {
		step = 1
	}
	maxRho := 0.0
	diam := o.Diameter()
	for u := 0; u < n; u += step {
		for r := 1.0; r <= diam && r < Inf; r *= 2 {
			b1 := o.BallSize(NodeID(u), r)
			b2 := o.BallSize(NodeID(u), 2*r)
			if b1 > 0 && b2 > b1 {
				if rho := math.Log2(float64(b2) / float64(b1)); rho > maxRho {
					maxRho = rho
				}
			}
			if b1 == n {
				break
			}
		}
	}
	return maxRho
}

// splitmix64 is the SplitMix64 finalizer, used for seeded deterministic
// choices without any shared PRNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

var _ DistanceOracle = (*Oracle)(nil)
var _ DistanceOracle = (*Metric)(nil)
