package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSteinerTrivialCases(t *testing.T) {
	g := Grid(5, 5)
	m := NewMetric(g)
	if w := SteinerApprox(m, nil); w != 0 {
		t.Fatalf("empty terminals: %v", w)
	}
	if w := SteinerApprox(m, []NodeID{3}); w != 0 {
		t.Fatalf("single terminal: %v", w)
	}
	if w := SteinerApprox(m, []NodeID{3, 3, 3}); w != 0 {
		t.Fatalf("duplicate terminals: %v", w)
	}
	if w := SteinerApprox(m, []NodeID{0, 4}); w != 4 {
		t.Fatalf("pair: %v, want 4", w)
	}
}

func TestSteinerKnownValues(t *testing.T) {
	g := Path(10)
	m := NewMetric(g)
	// Terminals on a path: the Steiner tree is the spanning interval.
	if w := SteinerApprox(m, []NodeID{2, 5, 9}); w != 7 {
		t.Fatalf("path terminals: %v, want 7", w)
	}
	// Star: center plus k leaves costs k.
	s := Star(6)
	ms := NewMetric(s)
	if w := SteinerApprox(ms, []NodeID{0, 1, 2, 3}); w != 3 {
		t.Fatalf("star terminals: %v, want 3", w)
	}
	// Leaves only: the metric-closure MST pays 2 per additional leaf.
	if w := SteinerApprox(ms, []NodeID{1, 2, 3}); w != 4 {
		t.Fatalf("star leaves: %v, want 4", w)
	}
}

// Properties: the approximation is at least the diameter of the terminal
// set (any connecting tree spans the farthest pair) and at most the sum of
// consecutive distances in ID order (a particular spanning path).
func TestQuickSteinerBounds(t *testing.T) {
	g := Grid(8, 8)
	m := NewMetric(g)
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 10 {
			raw = raw[:10]
		}
		terms := make([]NodeID, len(raw))
		for i, r := range raw {
			terms[i] = NodeID(int(r) % g.N())
		}
		w := SteinerApprox(m, terms)
		// Lower bound: max pairwise distance.
		maxD := 0.0
		for i := range terms {
			for j := i + 1; j < len(terms); j++ {
				if d := m.Dist(terms[i], terms[j]); d > maxD {
					maxD = d
				}
			}
		}
		if w < maxD-1e-9 {
			return false
		}
		// Upper bound: chain in sorted order of distinct terminals.
		seen := map[NodeID]bool{}
		var uniq []NodeID
		for _, u := range terms {
			if !seen[u] {
				seen[u] = true
				uniq = append(uniq, u)
			}
		}
		chain := 0.0
		for i := 1; i < len(uniq); i++ {
			chain += m.Dist(uniq[i-1], uniq[i])
		}
		return w <= chain+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSteinerMonotoneUnderSubsets(t *testing.T) {
	g := Grid(6, 6)
	m := NewMetric(g)
	rng := rand.New(rand.NewSource(3))
	terms := []NodeID{}
	prev := 0.0
	for i := 0; i < 8; i++ {
		terms = append(terms, NodeID(rng.Intn(g.N())))
		w := SteinerApprox(m, terms)
		if w+1e-9 < prev/2 {
			// MST approximations are not strictly monotone, but cannot
			// collapse below half the previous optimum bound.
			t.Fatalf("Steiner weight collapsed: %v after %v", w, prev)
		}
		prev = w
	}
}

func BenchmarkSteinerApprox(b *testing.B) {
	g := Grid(16, 16)
	m := NewMetric(g)
	m.Precompute(0)
	terms := make([]NodeID, 12)
	for i := range terms {
		terms[i] = NodeID(i * 19 % g.N())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SteinerApprox(m, terms)
	}
}
