package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 5, 0", g.N(), g.M())
	}
	if g.Connected() {
		t.Fatal("5 isolated nodes reported connected")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	cases := []struct {
		u, v NodeID
		w    float64
	}{
		{0, 1, 1},           // duplicate
		{1, 0, 1},           // duplicate reversed
		{0, 0, 1},           // self loop
		{0, 3, 1},           // out of range
		{-1, 0, 1},          // out of range
		{1, 2, 0},           // zero weight
		{1, 2, -2},          // negative weight
		{1, 2, math.NaN()},  // NaN
		{1, 2, math.Inf(1)}, // Inf
	}
	for _, c := range cases {
		if err := g.AddEdge(c.u, c.v, c.w); err == nil {
			t.Errorf("AddEdge(%d,%d,%v) accepted, want error", c.u, c.v, c.w)
		}
	}
	if g.M() != 1 {
		t.Fatalf("edge count corrupted: %d", g.M())
	}
}

func TestEdgeQueries(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 2.5)
	g.MustAddEdge(1, 2, 1.5)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge symmetric lookup failed")
	}
	if g.HasEdge(0, 2) || g.HasEdge(0, 3) {
		t.Fatal("HasEdge reported absent edge")
	}
	if w, ok := g.EdgeWeight(1, 2); !ok || w != 1.5 {
		t.Fatalf("EdgeWeight(1,2) = %v, %v", w, ok)
	}
	if _, ok := g.EdgeWeight(0, 3); ok {
		t.Fatal("EdgeWeight reported absent edge")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %d, %d", g.Degree(1), g.Degree(3))
	}
	ids := g.NeighborIDs(1)
	if len(ids) != 2 {
		t.Fatalf("NeighborIDs(1) = %v", ids)
	}
}

func TestNeighborsEarlyStop(t *testing.T) {
	g := Star(10)
	count := 0
	g.Neighbors(0, func(v NodeID, w float64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d neighbors, want 3", count)
	}
}

func TestEdgesListing(t *testing.T) {
	g := Grid(3, 3)
	edges := g.Edges()
	if len(edges) != g.M() {
		t.Fatalf("Edges() returned %d, M()=%d", len(edges), g.M())
	}
	for _, e := range edges {
		if e.From >= e.To {
			t.Fatalf("edge not canonical: %+v", e)
		}
	}
	// 3x3 grid: 2*3 horizontal + 3*2 vertical = 12 edges.
	if g.M() != 12 {
		t.Fatalf("3x3 grid has %d edges, want 12", g.M())
	}
}

func TestNormalize(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 4)
	scale := g.Normalize()
	if scale != 0.5 {
		t.Fatalf("scale = %v, want 0.5", scale)
	}
	if w, _ := g.EdgeWeight(0, 1); w != 1 {
		t.Fatalf("min edge weight after normalize = %v", w)
	}
	if w, _ := g.EdgeWeight(1, 2); w != 2 {
		t.Fatalf("other edge weight after normalize = %v", w)
	}
	// Idempotent.
	if s2 := g.Normalize(); s2 != 1 {
		t.Fatalf("second normalize scale = %v, want 1", s2)
	}
}

func TestClone(t *testing.T) {
	g := Grid(4, 4)
	c := g.Clone()
	c.MustAddEdge(0, 5, 3) // diagonal not in grid
	if g.HasEdge(0, 5) {
		t.Fatal("mutating clone affected original")
	}
	if c.M() != g.M()+1 {
		t.Fatalf("clone edge count %d vs %d", c.M(), g.M())
	}
	if g.Position(5) != c.Position(5) {
		t.Fatal("clone lost positions")
	}
}

func TestGridStructure(t *testing.T) {
	g := Grid(4, 3)
	if g.N() != 12 {
		t.Fatalf("n=%d", g.N())
	}
	if !g.Connected() {
		t.Fatal("grid not connected")
	}
	// Corner degree 2, edge degree 3, interior degree 4.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree %d", g.Degree(0))
	}
	if g.Degree(1) != 3 {
		t.Fatalf("border degree %d", g.Degree(1))
	}
	if g.Degree(5) != 4 {
		t.Fatalf("interior degree %d", g.Degree(5))
	}
	p := g.Position(NodeID(1*4 + 2)) // (x=2, y=1)
	if p.X != 2 || p.Y != 1 {
		t.Fatalf("position = %+v", p)
	}
}

func TestRingPathStar(t *testing.T) {
	r := Ring(8)
	if r.M() != 8 || !r.Connected() {
		t.Fatalf("ring m=%d connected=%t", r.M(), r.Connected())
	}
	for i := 0; i < 8; i++ {
		if r.Degree(NodeID(i)) != 2 {
			t.Fatalf("ring degree at %d = %d", i, r.Degree(NodeID(i)))
		}
	}
	p := Path(6)
	if p.M() != 5 || p.Degree(0) != 1 || p.Degree(3) != 2 {
		t.Fatal("path structure wrong")
	}
	s := Star(7)
	if s.Degree(0) != 6 || s.M() != 6 {
		t.Fatal("star structure wrong")
	}
}

func TestNearSquareGrid(t *testing.T) {
	for _, n := range []int{10, 16, 36, 100, 1000, 1024} {
		g := NearSquareGrid(n)
		if g.N() < n {
			t.Fatalf("NearSquareGrid(%d) has %d nodes", n, g.N())
		}
		if !g.Connected() {
			t.Fatalf("NearSquareGrid(%d) disconnected", n)
		}
	}
}

func TestRandomGeometricConnectedNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := RandomGeometric(60, 10, 2.0, rng)
	if !g.Connected() {
		t.Fatal("random geometric graph disconnected after retry loop")
	}
	minW := math.Inf(1)
	for _, e := range g.Edges() {
		if e.Weight < minW {
			minW = e.Weight
		}
	}
	if math.Abs(minW-1) > 1e-9 {
		t.Fatalf("min weight %v, want 1 after normalize", minW)
	}
}

func TestRandomTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomTree(50, rng)
	if g.M() != 49 || !g.Connected() {
		t.Fatalf("random tree m=%d connected=%t", g.M(), g.Connected())
	}
}

func TestWeightedRing(t *testing.T) {
	g := WeightedRing(10, 100)
	if w, ok := g.EdgeWeight(9, 0); !ok || w != 100 {
		t.Fatalf("long edge weight %v ok=%t", w, ok)
	}
	m := NewMetric(g)
	// Diameter should route around the cheap side: farthest pair ~ n-1.
	if d := m.Diameter(); d != 9 {
		t.Fatalf("weighted ring diameter %v, want 9", d)
	}
}

// Property: in any grid, HasEdge(u,v) iff Manhattan distance 1.
func TestQuickGridAdjacency(t *testing.T) {
	g := Grid(9, 7)
	f := func(a, b uint16) bool {
		u := NodeID(int(a) % g.N())
		v := NodeID(int(b) % g.N())
		ux, uy := int(u)%9, int(u)/9
		vx, vy := int(v)%9, int(v)/9
		manhattan := abs(ux-vx) + abs(uy-vy)
		return g.HasEdge(u, v) == (manhattan == 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
