package obs

import (
	"encoding/json"
	"io"
)

// Chrome trace-event exporter: the JSON array format chrome://tracing
// and Perfetto load directly. Each recorder becomes one process (pid =
// 1 + its position in the argument list, named by its label), each
// object one thread, each span one complete ("X") slice, and each
// retry/abort/restart event one instant ("i") marker. Timestamps are
// the substrate's logical time interpreted as microseconds — the unit
// is abstract, only the relative layout matters in the viewer.

type chromeEvent struct {
	Name  string      `json:"name"`
	Cat   string      `json:"cat,omitempty"`
	Ph    string      `json:"ph"`
	Ts    float64     `json:"ts"`
	Dur   float64     `json:"dur,omitempty"`
	Pid   int         `json:"pid"`
	Tid   int         `json:"tid"`
	Scope string      `json:"s,omitempty"`
	Args  interface{} `json:"args,omitempty"`
}

type chromeSpanArgs struct {
	Op     uint64 `json:"op"`
	Object int    `json:"object"`
	Events int    `json:"events"`
}

type chromeMetaArgs struct {
	Name string `json:"name"`
}

// chromeInstants are the event kinds surfaced as instant markers (the
// anomalies worth spotting on a timeline); plain hops and stamps stay
// inside their span's slice to keep traces compact.
var chromeInstants = map[string]bool{
	EvRetry: true, EvAbort: true, EvRestart: true, EvWait: true,
}

// WriteChromeTrace writes one Chrome trace covering all given recorders.
// Nil recorders are skipped.
func WriteChromeTrace(w io.Writer, recs ...*Recorder) error {
	var events []chromeEvent
	for ri, r := range recs {
		if r == nil {
			continue
		}
		pid := ri + 1
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: chromeMetaArgs{Name: r.Label()},
		})
		for _, sp := range r.sortedSpans() {
			events = append(events, chromeEvent{
				Name: sp.kind, Cat: sp.kind, Ph: "X",
				Ts: sp.start, Dur: sp.end - sp.start,
				Pid: pid, Tid: sp.object,
				Args: chromeSpanArgs{Op: sp.op, Object: sp.object, Events: len(sp.events)},
			})
			for _, ev := range sp.events {
				if !chromeInstants[ev.Kind] {
					continue
				}
				events = append(events, chromeEvent{
					Name: ev.Kind, Cat: sp.kind, Ph: "i",
					Ts: ev.At, Pid: pid, Tid: sp.object, Scope: "t",
				})
			}
		}
	}
	if events == nil {
		events = []chromeEvent{}
	}
	out, err := json.Marshal(events)
	if err != nil {
		return err
	}
	_, err = w.Write(append(out, '\n'))
	return err
}
