package obs

import "testing"

// The nil-sink benchmarks pin the disabled-observability cost: a span
// start + event + end + counter bump against a nil recorder must compile
// down to a handful of pointer tests.

func BenchmarkSpanDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan(OpMove, uint64(i), 3, 0)
		sp.Event(EvHop, 1, 2, 1, 0)
		sp.End(1)
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	r := New("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan(OpMove, uint64(i), 3, 0)
		sp.Event(EvHop, 1, 2, 1, 0)
		sp.End(1)
	}
}

func BenchmarkMetricsDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add("ops", 1)
		r.Observe("cost", float64(i&15))
		r.AddAt(SeriesNodeMsgs, i&63, 1)
	}
}

func BenchmarkMetricsEnabled(b *testing.B) {
	r := New("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add("ops", 1)
		r.Observe("cost", float64(i&15))
		r.AddAt(SeriesNodeMsgs, i&63, 1)
	}
}
