package obs

import "sort"

// The metrics registry: counters (monotone sums), gauges (high
// watermarks), histograms over a fixed power-of-two bucket layout, and
// indexed series (dense float vectors keyed by a small integer index —
// node ID or overlay level). All four share the recorder mutex; every
// method on a nil recorder is a no-op.

// histBounds are the shared bucket upper bounds. A fixed layout keeps
// snapshots byte-stable and cross-run comparable; the +Inf bucket
// absorbs the tail.
var histBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

type histogram struct {
	count  int64
	sum    float64
	counts []int64 // len(histBounds)+1, last bucket is +Inf
}

func (h *histogram) observe(v float64) {
	h.count++
	h.sum += v
	for i, b := range histBounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(histBounds)]++
}

// Add increments the named counter by v.
func (r *Recorder) Add(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += v
	r.mu.Unlock()
}

// GaugeMax raises the named high-watermark gauge to v if v exceeds the
// current value (the first observation always sets it).
func (r *Recorder) GaugeMax(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if cur, ok := r.gauges[name]; !ok || v > cur {
		r.gauges[name] = v
	}
	r.mu.Unlock()
}

// Observe records v into the named fixed-bucket histogram.
func (r *Recorder) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = &histogram{counts: make([]int64, len(histBounds)+1)}
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// AddAt adds v to element idx of the named series, growing the vector
// with zeros as needed. Negative indices are ignored.
func (r *Recorder) AddAt(name string, idx int, v float64) {
	if r == nil || idx < 0 {
		return
	}
	r.mu.Lock()
	s := r.series[name]
	for len(s) <= idx {
		s = append(s, 0)
	}
	s[idx] += v
	r.series[name] = s
	r.mu.Unlock()
}

// SetSeries replaces the named series wholesale with a copy of values —
// for point-in-time vectors (per-node storage load) that are snapshotted
// rather than accumulated.
func (r *Recorder) SetSeries(name string, values []float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.series[name] = append([]float64(nil), values...)
	r.mu.Unlock()
}

// NameValue is one named scalar in a snapshot.
type NameValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistSnapshot is one histogram in a snapshot. Counts[i] holds the
// observations <= Bounds[i]; the final element counts the +Inf tail.
type HistSnapshot struct {
	Name   string    `json:"name"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// SeriesSnapshot is one indexed series in a snapshot: a dense vector
// whose index is the node ID or level the values were recorded at.
type SeriesSnapshot struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Max returns the largest value in the series (0 when empty).
func (s SeriesSnapshot) Max() float64 {
	m := 0.0
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean over all indices (0 when empty).
func (s SeriesSnapshot) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// NonZero returns the number of non-zero entries.
func (s SeriesSnapshot) NonZero() int {
	n := 0
	for _, v := range s.Values {
		if v != 0 {
			n++
		}
	}
	return n
}

// Snapshot is a deterministic point-in-time copy of the registry: every
// section is sorted by name, series values are copied, and histogram
// layouts are shared references to the immutable bounds table.
type Snapshot struct {
	Label      string           `json:"label"`
	Spans      int              `json:"spans"`
	Counters   []NameValue      `json:"counters"`
	Gauges     []NameValue      `json:"gauges"`
	Histograms []HistSnapshot   `json:"histograms"`
	Series     []SeriesSnapshot `json:"series"`
}

// Snapshot captures the registry. Safe to call while recording
// continues; the zero Snapshot is returned for a nil recorder.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{Label: r.label, Spans: len(r.spans)}

	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap.Counters = append(snap.Counters, NameValue{Name: name, Value: r.counters[name]})
	}

	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap.Gauges = append(snap.Gauges, NameValue{Name: name, Value: r.gauges[name]})
	}

	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		snap.Histograms = append(snap.Histograms, HistSnapshot{
			Name: name, Count: h.count, Sum: h.sum,
			Bounds: histBounds,
			Counts: append([]int64(nil), h.counts...),
		})
	}

	names = names[:0]
	for name := range r.series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap.Series = append(snap.Series, SeriesSnapshot{
			Name: name, Values: append([]float64(nil), r.series[name]...),
		})
	}
	return snap
}

// SeriesValues returns a copy of the named series (nil when absent or
// the recorder is disabled) — the per-node load vectors reports consume.
func (r *Recorder) SeriesValues(name string) []float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		return nil
	}
	return append([]float64(nil), s...)
}
