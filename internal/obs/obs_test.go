package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/runtime/track"
)

// TestNilRecorderIsInert pins the nil-sink contract: every method on a
// nil recorder (and the spans it hands out) is a safe no-op.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Label() != "" {
		t.Fatal("nil recorder has a label")
	}
	sp := r.StartSpan(OpMove, 1, 2, 0)
	if sp.Active() {
		t.Fatal("nil recorder produced an active span")
	}
	sp.Event(EvHop, 0, 1, 1.5, 0.5)
	sp.End(2)
	r.Add("x", 1)
	r.GaugeMax("x", 1)
	r.Observe("x", 1)
	r.AddAt("x", 3, 1)
	if r.SpanCount() != 0 {
		t.Fatal("nil recorder counted spans")
	}
	snap := r.Snapshot()
	if snap.Spans != 0 || snap.Counters != nil {
		t.Fatalf("nil recorder snapshot not zero: %+v", snap)
	}
	if vs := r.SeriesValues("x"); vs != nil {
		t.Fatalf("nil recorder returned series %v", vs)
	}
	var b strings.Builder
	if err := r.WriteJSONL(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil recorder JSONL: err=%v out=%q", err, b.String())
	}
	r.Dump() // must not panic
}

// TestSpanRecording checks span/event bookkeeping and the snapshot's
// aggregate view.
func TestSpanRecording(t *testing.T) {
	r := New("test")
	sp := r.StartSpan(OpMove, 7, 3, 10)
	sp.Event(EvHop, 0, 4, 1.5, 10)
	sp.Event(EvStamp, 1, 5, 0, 10)
	sp.End(12.5)
	if !sp.Active() {
		t.Fatal("span from live recorder inactive")
	}
	if r.SpanCount() != 1 {
		t.Fatalf("SpanCount = %d, want 1", r.SpanCount())
	}
	spans := r.sortedSpans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	got := spans[0]
	if got.op != 7 || got.kind != OpMove || got.object != 3 || got.start != 10 || got.end != 12.5 || !got.done {
		t.Fatalf("span = %+v", got)
	}
	if len(got.events) != 2 || got.events[0].Seq != 0 || got.events[1].Seq != 1 {
		t.Fatalf("events = %+v", got.events)
	}
	if got.events[0].Kind != EvHop || got.events[0].Node != 4 || got.events[0].Cost != 1.5 {
		t.Fatalf("hop event = %+v", got.events[0])
	}
}

// TestMetricsRegistry checks the four metric families and snapshot
// ordering.
func TestMetricsRegistry(t *testing.T) {
	r := New("m")
	r.Add("z.count", 2)
	r.Add("a.count", 1)
	r.Add("a.count", 3)
	r.GaugeMax("depth", 5)
	r.GaugeMax("depth", 3) // lower; must not stick
	r.GaugeMax("depth", 9)
	r.Observe("cost", 0.5) // le1
	r.Observe("cost", 600) // +Inf
	r.Observe("cost", 16)  // le16
	r.AddAt("load", 2, 4)
	r.AddAt("load", 0, 1)
	r.AddAt("load", -1, 99) // ignored

	snap := r.Snapshot()
	if len(snap.Counters) != 2 || snap.Counters[0].Name != "a.count" || snap.Counters[0].Value != 4 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 9 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	h := snap.Histograms[0]
	if h.Count != 3 || h.Sum != 616.5 {
		t.Fatalf("hist count/sum = %d/%g", h.Count, h.Sum)
	}
	if h.Counts[0] != 1 || h.Counts[4] != 1 || h.Counts[len(h.Counts)-1] != 1 {
		t.Fatalf("hist buckets = %v", h.Counts)
	}
	if len(snap.Series) != 1 {
		t.Fatalf("series = %+v", snap.Series)
	}
	s := snap.Series[0]
	if len(s.Values) != 3 || s.Values[0] != 1 || s.Values[1] != 0 || s.Values[2] != 4 {
		t.Fatalf("series values = %v", s.Values)
	}
	if s.Max() != 4 || s.NonZero() != 2 {
		t.Fatalf("series stats max=%g nonzero=%d", s.Max(), s.NonZero())
	}
	if got := r.SeriesValues("load"); len(got) != 3 || got[2] != 4 {
		t.Fatalf("SeriesValues = %v", got)
	}
	if r.SeriesValues("missing") != nil {
		t.Fatal("missing series not nil")
	}
}

// TestConcurrentRecording hammers one recorder from several goroutines
// under the race detector and checks the totals: concurrent use must be
// safe even though deterministic exports additionally require a
// deterministic issue order.
func TestConcurrentRecording(t *testing.T) {
	r := New("race")
	const workers, per = 8, 200
	var g track.Group
	for w := 0; w < workers; w++ {
		w := w
		g.Go(func() {
			for i := 0; i < per; i++ {
				sp := r.StartSpan(OpQuery, uint64(w*per+i+1), w, float64(i))
				sp.Event(EvHop, 0, w, 1, float64(i))
				sp.End(float64(i + 1))
				r.Add("ops", 1)
				r.Observe("cost", float64(i%20))
				r.AddAt(SeriesNodeMsgs, w, 1)
				r.GaugeMax("hi", float64(i))
			}
		})
	}
	g.Wait()
	if r.SpanCount() != workers*per {
		t.Fatalf("spans = %d, want %d", r.SpanCount(), workers*per)
	}
	snap := r.Snapshot()
	if snap.Counters[0].Value != workers*per {
		t.Fatalf("ops counter = %g", snap.Counters[0].Value)
	}
	if snap.Series[0].NonZero() != workers {
		t.Fatalf("series nonzero = %d", snap.Series[0].NonZero())
	}
	// Span identity is unique, so the sorted export is deterministic
	// even though recording order raced.
	var a, b strings.Builder
	if err := r.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("repeated JSONL exports differ")
	}
}

// TestSnapshotJSONRoundTrips ensures the snapshot marshals (the debug
// endpoint serves it as JSON).
func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := New("json")
	r.Add("c", 1)
	r.Observe("h", 2)
	r.AddAt("s", 1, 3)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Label != "json" || len(back.Histograms) != 1 || back.Histograms[0].Count != 1 {
		t.Fatalf("round trip = %+v", back)
	}
}

// TestNilRecorderZeroAllocs pins the //motlint:hotpath contract on the
// nil-sink path: every hook a disabled substrate touches reduces to a
// pointer test, so instrumentation costs nothing when Obs is off.
func TestNilRecorderZeroAllocs(t *testing.T) {
	var r *Recorder
	if allocs := testing.AllocsPerRun(200, func() {
		if r.Enabled() {
			t.Fatal("nil recorder claims enabled")
		}
		_ = r.Label()
		sp := r.StartSpan(OpMove, 1, 2, 3)
		_ = sp.Active()
		sp.Event(EvHop, 0, 1, 2, 3)
		sp.End(4)
		_ = r.SpanCount()
	}); allocs != 0 {
		t.Fatalf("nil-sink obs path allocates %v per op, want 0", allocs)
	}
}
