package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteJSONLExactBytes pins the exact line format, the identity sort
// (op, then object, then kind), and the empty-events rendering.
func TestWriteJSONLExactBytes(t *testing.T) {
	r := New("core")
	// Recorded out of identity order on purpose.
	b := r.StartSpan(OpQuery, 2, 5, 1)
	b.End(3)
	a := r.StartSpan(OpMove, 1, 9, 0)
	a.Event(EvHop, 2, 4, 1.5, 0.5)
	a.End(2)
	p2 := r.StartSpan(OpPublish, 0, 8, 0)
	p2.End(0)
	p1 := r.StartSpan(OpPublish, 0, 3, 0)
	p1.End(0)

	var out strings.Builder
	if err := r.WriteJSONL(&out); err != nil {
		t.Fatal(err)
	}
	want := `{"run":"core","op":0,"kind":"publish","object":3,"start":0,"end":0,"events":[]}
{"run":"core","op":0,"kind":"publish","object":8,"start":0,"end":0,"events":[]}
{"run":"core","op":1,"kind":"move","object":9,"start":0,"end":2,"events":[{"seq":0,"kind":"hop","level":2,"node":4,"cost":1.5,"at":0.5}]}
{"run":"core","op":2,"kind":"query","object":5,"start":1,"end":3,"events":[]}
`
	if out.String() != want {
		t.Fatalf("JSONL mismatch:\ngot:\n%s\nwant:\n%s", out.String(), want)
	}
}

// TestWriteJSONLAllConcatenates checks the multi-recorder stream keeps
// recorder order and skips nil entries.
func TestWriteJSONLAllConcatenates(t *testing.T) {
	a := New("a")
	a.StartSpan(OpMove, 1, 0, 0).End(1)
	b := New("b")
	b.StartSpan(OpQuery, 1, 0, 0).End(1)
	var out strings.Builder
	if err := WriteJSONLAll(&out, a, nil, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], `"run":"a"`) || !strings.Contains(lines[1], `"run":"b"`) {
		t.Fatalf("run tags wrong: %v", lines)
	}
}

// TestWriteMetricsCSVExactBytes pins the CSV schema end to end.
func TestWriteMetricsCSVExactBytes(t *testing.T) {
	r := New("sim")
	r.Add("ops", 3)
	r.GaugeMax("queue", 7)
	r.Observe("hops", 2)
	r.Observe("hops", 1000)
	r.AddAt("load", 1, 2.5)

	var out strings.Builder
	if err := r.WriteMetricsCSV(&out); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"run,type,name,key,value",
		"sim,counter,ops,,3",
		"sim,gauge,queue,,7",
		"sim,hist,hops,le1,0",
		"sim,hist,hops,le2,1",
		"sim,hist,hops,le4,0",
		"sim,hist,hops,le8,0",
		"sim,hist,hops,le16,0",
		"sim,hist,hops,le32,0",
		"sim,hist,hops,le64,0",
		"sim,hist,hops,le128,0",
		"sim,hist,hops,le256,0",
		"sim,hist,hops,le512,0",
		"sim,hist,hops,+Inf,1",
		"sim,hist,hops,sum,1002",
		"sim,hist,hops,count,2",
		"sim,series,load,0,0",
		"sim,series,load,1,2.5",
		"",
	}, "\n")
	if out.String() != want {
		t.Fatalf("CSV mismatch:\ngot:\n%s\nwant:\n%s", out.String(), want)
	}
}

// TestWriteMetricsCSVNilRecorder keeps the header-only contract.
func TestWriteMetricsCSVNilRecorder(t *testing.T) {
	var out strings.Builder
	if err := WriteMetricsCSVAll(&out, nil); err != nil {
		t.Fatal(err)
	}
	if out.String() != "run,type,name,key,value\n" {
		t.Fatalf("got %q", out.String())
	}
}

// TestWriteChromeTrace validates the trace is a well-formed JSON array
// with process metadata, complete slices, and instant markers.
func TestWriteChromeTrace(t *testing.T) {
	r := New("runtime")
	sp := r.StartSpan(OpMove, 1, 4, 10)
	sp.Event(EvHop, 0, 2, 1, 10)   // not an instant
	sp.Event(EvRetry, 0, 2, 1, 11) // instant
	sp.End(12)

	var out strings.Builder
	if err := WriteChromeTrace(&out, r); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal([]byte(out.String()), &events); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, out.String())
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want meta+slice+instant: %v", len(events), events)
	}
	if events[0]["ph"] != "M" || events[0]["pid"] != float64(1) {
		t.Fatalf("meta = %v", events[0])
	}
	if events[1]["ph"] != "X" || events[1]["name"] != OpMove || events[1]["dur"] != float64(2) || events[1]["tid"] != float64(4) {
		t.Fatalf("slice = %v", events[1])
	}
	if events[2]["ph"] != "i" || events[2]["name"] != EvRetry || events[2]["s"] != "t" {
		t.Fatalf("instant = %v", events[2])
	}
}

// TestWriteChromeTraceEmpty ensures the no-recorder case still emits a
// loadable empty array rather than JSON null.
func TestWriteChromeTraceEmpty(t *testing.T) {
	var out strings.Builder
	if err := WriteChromeTrace(&out, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("got %q", out.String())
	}
}

// TestWriteText smoke-tests the human summary (content, not exact bytes).
func TestWriteText(t *testing.T) {
	r := New("text")
	r.StartSpan(OpPublish, 0, 1, 0).End(0)
	r.Add("ops", 2)
	r.GaugeMax("g", 5)
	r.Observe("h", 4)
	r.AddAt("s", 0, 1)
	var out strings.Builder
	if err := r.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"obs text: 1 spans", "counter", "gauge", "hist", "series"} {
		if !strings.Contains(out.String(), frag) {
			t.Fatalf("summary missing %q:\n%s", frag, out.String())
		}
	}
}
