package obs

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

// Edge cases of the exporters the sweep harnesses never hit: recorders
// with metrics but no spans, histogram-only recorders, and fully empty
// recorders must all render well-formed (and loadable) artifacts.

// A recorder that recorded metrics but never a span must still produce
// a loadable Chrome trace: exactly its process_name metadata event, no
// slices, no instants.
func TestWriteChromeTraceMetricsOnly(t *testing.T) {
	r := New("metrics-only")
	r.Add("ops.total", 7)
	r.GaugeMax("ops.inflight", 2)
	var out strings.Builder
	if err := WriteChromeTrace(&out, r); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(out.String()), &events); err != nil {
		t.Fatalf("trace not a JSON array: %v\n%s", err, out.String())
	}
	if len(events) != 1 {
		t.Fatalf("events = %d, want only the process_name meta", len(events))
	}
	if events[0]["name"] != "process_name" || events[0]["ph"] != "M" {
		t.Fatalf("meta event wrong: %+v", events[0])
	}
	if args, ok := events[0]["args"].(map[string]any); !ok || args["name"] != "metrics-only" {
		t.Fatalf("meta args wrong: %+v", events[0])
	}
}

// An empty recorder (no spans, no metrics) still claims its process in
// a multi-recorder trace; nil slots vanish without perturbing the pid
// assignment of their neighbors.
func TestWriteChromeTraceEmptyAndNilMix(t *testing.T) {
	empty := New("empty")
	var out strings.Builder
	if err := WriteChromeTrace(&out, nil, empty, nil); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
		Pid  int    `json:"pid"`
	}
	if err := json.Unmarshal([]byte(out.String()), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Name != "process_name" {
		t.Fatalf("events: %+v", events)
	}
	if events[0].Pid != 2 {
		t.Fatalf("pid = %d, want positional 2 (nil slots keep their index)", events[0].Pid)
	}
}

// JSONL of an empty recorder is zero bytes — no blank lines, no "null".
func TestWriteJSONLEmpty(t *testing.T) {
	var out strings.Builder
	if err := WriteJSONLAll(&out, nil, New("empty")); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("empty recorders wrote %q", out.String())
	}
}

// A histogram-only snapshot renders every bucket row (le<bound>, +Inf,
// sum, count) and nothing else.
func TestWriteMetricsCSVHistogramOnly(t *testing.T) {
	r := New("hist-only")
	r.Observe("span.cost", 3)   // le4 bucket
	r.Observe("span.cost", 600) // +Inf tail
	r.Observe("span.cost", 0.5) // le1 bucket
	var out strings.Builder
	if err := r.WriteMetricsCSV(&out); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 10 bounds + +Inf + sum + count.
	if len(recs) != 1+10+3 {
		t.Fatalf("rows = %d:\n%s", len(recs), out.String())
	}
	byKey := map[string]string{}
	for _, rec := range recs[1:] {
		if rec[0] != "hist-only" || rec[1] != "hist" || rec[2] != "span.cost" {
			t.Fatalf("non-histogram row in histogram-only export: %v", rec)
		}
		byKey[rec[3]] = rec[4]
	}
	if byKey["le1"] != "1" || byKey["le4"] != "1" || byKey["+Inf"] != "1" {
		t.Fatalf("bucket counts wrong: %v", byKey)
	}
	if byKey["count"] != "3" || byKey["sum"] != "603.5" {
		t.Fatalf("sum/count wrong: %v", byKey)
	}
}

// A metrics-only snapshot (counters+gauges+series, no spans and no
// histograms) exports exactly its rows; a nil recorder only the header.
func TestWriteMetricsCSVMetricsOnlyAndNil(t *testing.T) {
	r := New("m")
	r.Add("msgs.total", 5)
	r.GaugeMax("depth.max", 4)
	r.AddAt("node.entries", 2, 1)
	var out strings.Builder
	if err := WriteMetricsCSVAll(&out, r, nil); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + counter + gauge + series[0..2].
	if len(recs) != 1+1+1+3 {
		t.Fatalf("rows = %d:\n%s", len(recs), out.String())
	}
	if r.SpanCount() != 0 {
		t.Fatalf("metrics-only recorder has %d spans", r.SpanCount())
	}

	out.Reset()
	var nilRec *Recorder
	if err := nilRec.WriteMetricsCSV(&out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "run,type,name,key,value" {
		t.Fatalf("nil recorder CSV = %q, want header only", out.String())
	}
}

// WriteText covers the same three shapes without panicking and names
// every section it has data for.
func TestWriteTextShapes(t *testing.T) {
	r := New("shapes")
	r.Add("c", 1)
	r.Observe("h", 2)
	r.SetSeries("s", []float64{1, 0, 3})
	var out strings.Builder
	if err := r.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"obs shapes: 0 spans", "counter", "hist", "n=1 mean=2.000", "series", "len=3"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("text summary missing %q:\n%s", want, out.String())
		}
	}
	var nilRec *Recorder
	if err := nilRec.WriteText(&out); err != nil {
		t.Fatal(err)
	}
}
