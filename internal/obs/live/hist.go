package live

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-bucketed latency histogram, HDR-style: values below 2^subBits
// nanoseconds land in exact unit buckets, everything above in
// log-linear buckets — one octave split into 2^subBits sub-buckets —
// so the relative quantile error is bounded by 2^-subBits (~3%) at any
// magnitude from nanoseconds to hours. The layout is fixed at compile
// time: recording is a few atomic adds on a preallocated counter
// array, never an allocation, and snapshots are cross-run comparable.

const (
	// histSubBits sets the per-octave resolution: 32 sub-buckets,
	// ~3.1% worst-case relative error on reported percentiles.
	histSubBits = 5
	histSub     = 1 << histSubBits
	// histSlots covers the full non-negative int64 range: unit buckets
	// 0..histSub-1, then (64-histSubBits) octaves of histSub sub-buckets.
	histSlots = (64 - histSubBits + 1) * histSub
)

// histogram is one op class's latency distribution. All fields are
// atomics: Observe never takes a lock.
type histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // exact maximum, nanoseconds
	buckets [histSlots]atomic.Int64
}

// histSlot maps a non-negative nanosecond value to its bucket index
// (monotone, contiguous, total over uint64).
func histSlot(u uint64) int {
	if u < histSub {
		return int(u)
	}
	major := bits.Len64(u) - histSubBits // >= 1
	sub := u >> uint(major-1)            // in [histSub, 2*histSub)
	return major*histSub + int(sub-histSub)
}

// histSlotUpper returns the largest value mapping to slot s — the
// conservative (upper-edge) representative used for percentiles.
func histSlotUpper(s int) int64 {
	if s < histSub {
		return int64(s)
	}
	major := s / histSub
	sub := uint64(histSub + s%histSub)
	return int64((sub+1)<<uint(major-1) - 1)
}

// observe records one latency. Negative durations (clock steps) clamp
// to zero rather than corrupting the layout.
func (h *histogram) observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[histSlot(uint64(ns))].Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// load copies the bucket counters (a torn read across concurrent
// observes is fine: each counter is individually atomic and quantiles
// are statistical by nature).
func (h *histogram) load(counts *[histSlots]int64) (count, sum, max int64) {
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return h.count.Load(), h.sum.Load(), h.max.Load()
}

// quantileOf walks the cumulative distribution to the q-quantile's
// bucket and returns its upper edge, capped at the exact observed max.
func quantileOf(counts *[histSlots]int64, total, max int64, q float64) int64 {
	if total <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range counts {
		cum += counts[i]
		if cum >= rank {
			if v := histSlotUpper(i); v < max || max == 0 {
				return v
			}
			return max
		}
	}
	return max
}
