// Package live is the wall-clock half of the observability story — the
// layer internal/obs deliberately refuses to be. Where obs records on
// logical clocks so exports stay byte-deterministic, live measures what
// actually happened on this machine: per-operation wall-clock latency
// distributions (log-bucketed histograms answering p50/p90/p99/p999 and
// max) and a bounded-memory sample of recent operations (a fixed-size
// reservoir with seeded replacement, never unbounded growth).
//
// The two layers never mix. Nothing live records can reach a measured
// artifact: deterministic exporters (JSONL/CSV/Chrome traces, report
// tables in their default shape) are sourced exclusively from
// internal/obs, while live snapshots surface through diagnostics
// channels only — the /debug/live endpoints, expvar, and stderr
// summaries. This package is the single library package on motlint's
// walltime allowlist; a time.Now anywhere else in library code is
// still a lint error.
//
// Overhead contract. A nil *Recorder is a fully disabled sink: every
// method nil-checks the receiver and returns immediately, so
// instrumented paths pay one pointer test and zero allocations when
// live telemetry is off (pinned by TestNilLiveRecorderZeroAllocs and
// the live/nil-sink bench). Enabled, an observation is two clock reads
// plus a handful of atomic adds and a short mutex hold on the sampler
// — budgeted at ≤10% of a runtime tracker op and measured by the
// runtime/ops-live-* benchmarks in internal/bench.
package live

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Class is an operation class — the same four the deterministic layer
// spans (internal/obs's OpPublish..OpRecovery).
type Class int

const (
	ClassPublish Class = iota
	ClassMove
	ClassQuery
	ClassRecovery
	// NumClasses bounds Class; out-of-range classes are clamped to
	// ClassRecovery rather than dropped.
	NumClasses
)

var classNames = [NumClasses]string{"publish", "move", "query", "recovery"}

// String names the class as it appears in snapshots and summaries.
func (c Class) String() string {
	if c < 0 || c >= NumClasses {
		return "other"
	}
	return classNames[c]
}

// DefaultSampleSize is the span-reservoir capacity used when
// Config.SampleSize is zero.
const DefaultSampleSize = 256

// Config parameterizes a live recorder.
type Config struct {
	// SampleSize caps the span reservoir (default DefaultSampleSize).
	// Memory for samples is SampleSize entries, allocated once —
	// sustained load never grows it.
	SampleSize int
	// Seed drives the reservoir's replacement stream (SplitMix64).
	// Equal seeds over an identical observation sequence keep identical
	// samples; the default is 1.
	Seed int64
}

// Recorder collects wall-clock latency histograms per operation class
// and a bounded reservoir of sampled spans. A nil Recorder is a valid,
// fully disabled sink; all methods are safe for concurrent use.
type Recorder struct {
	label string
	start time.Time

	hists [NumClasses]histogram
	errs  [NumClasses]atomic.Int64
	samp  reservoir

	// published is the most recent periodic snapshot (see Publisher);
	// Latest falls back to a fresh Snapshot when none was published.
	published atomic.Pointer[Snapshot]
}

// New returns an enabled live recorder labeled label.
func New(label string, cfg Config) *Recorder {
	if cfg.SampleSize <= 0 {
		cfg.SampleSize = DefaultSampleSize
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	r := &Recorder{label: label, start: time.Now()}
	r.samp.init(cfg.SampleSize, cfg.Seed)
	return r
}

// Enabled reports whether the recorder actually records.
func (r *Recorder) Enabled() bool { return r != nil }

// Label returns the recorder's label ("" when disabled).
func (r *Recorder) Label() string {
	if r == nil {
		return ""
	}
	return r.label
}

// Stamp is an opaque start-of-operation mark. The zero Stamp (and any
// Stamp from a nil Recorder) makes Observe a no-op.
type Stamp struct {
	t time.Time
}

// Start reads the wall clock for an operation about to run. On a nil
// recorder it returns the zero Stamp without touching the clock.
func (r *Recorder) Start() Stamp {
	if r == nil {
		return Stamp{}
	}
	return Stamp{t: time.Now()}
}

// Observe closes the measurement opened by Start: it records the
// elapsed wall time into class c's histogram, counts err, and offers
// the span to the sample reservoir.
func (r *Recorder) Observe(c Class, st Stamp, object int, err error) {
	if r == nil || st.t.IsZero() {
		return
	}
	r.observe(c, time.Since(st.t), st.t, object, err)
}

// ObserveDuration records a span of known duration d (tests and
// substrates that measure elapsed time themselves).
func (r *Recorder) ObserveDuration(c Class, d time.Duration, object int, err error) {
	if r == nil {
		return
	}
	r.observe(c, d, time.Now().Add(-d), object, err)
}

func (r *Recorder) observe(c Class, d time.Duration, start time.Time, object int, err error) {
	if c < 0 || c >= NumClasses {
		c = ClassRecovery
	}
	r.hists[c].observe(d)
	if err != nil {
		r.errs[c].Add(1)
	}
	r.samp.offer(Sample{
		Class:  c.String(),
		Object: object,
		Start:  start.UnixNano(),
		DurNs:  int64(d),
		Err:    err != nil,
	})
}

// Quantile returns class c's q-quantile latency (0 when disabled or
// unobserved).
func (r *Recorder) Quantile(c Class, q float64) time.Duration {
	if r == nil || c < 0 || c >= NumClasses {
		return 0
	}
	var counts [histSlots]int64
	total, _, max := r.hists[c].load(&counts)
	return time.Duration(quantileOf(&counts, total, max, q))
}

// OpSnapshot is one class's distribution in a snapshot. Latencies are
// nanoseconds; percentiles carry the histogram's ~3% bucket error,
// MaxNs is exact.
type OpSnapshot struct {
	Class  string  `json:"class"`
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P90Ns  int64   `json:"p90_ns"`
	P99Ns  int64   `json:"p99_ns"`
	P999Ns int64   `json:"p999_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// Snapshot is a point-in-time copy of the recorder: per-class
// distributions, the all-classes aggregate, and the sampler's
// occupancy. It is what the /debug/live endpoint and expvar serve.
type Snapshot struct {
	Label    string       `json:"label"`
	UptimeNs int64        `json:"uptime_ns"`
	Total    OpSnapshot   `json:"total"`
	Ops      []OpSnapshot `json:"ops"`
	// SamplesSeen counts every span offered to the reservoir;
	// SamplesKept is its current (bounded) occupancy.
	SamplesSeen int64 `json:"samples_seen"`
	SamplesKept int   `json:"samples_kept"`
}

func opSnapshot(name string, counts *[histSlots]int64, count, sum, max, errs int64) OpSnapshot {
	op := OpSnapshot{Class: name, Count: count, Errors: errs, MaxNs: max}
	if count == 0 {
		return op
	}
	op.MeanNs = float64(sum) / float64(count)
	op.P50Ns = quantileOf(counts, count, max, 0.50)
	op.P90Ns = quantileOf(counts, count, max, 0.90)
	op.P99Ns = quantileOf(counts, count, max, 0.99)
	op.P999Ns = quantileOf(counts, count, max, 0.999)
	return op
}

// Snapshot captures the recorder. Safe while recording continues; the
// zero Snapshot is returned for a nil recorder.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	snap := Snapshot{Label: r.label, UptimeNs: int64(time.Since(r.start))}
	var agg [histSlots]int64
	var counts [histSlots]int64
	var aggCount, aggSum, aggMax, aggErrs int64
	for c := Class(0); c < NumClasses; c++ {
		count, sum, max := r.hists[c].load(&counts)
		errs := r.errs[c].Load()
		snap.Ops = append(snap.Ops, opSnapshot(c.String(), &counts, count, sum, max, errs))
		for i := range agg {
			agg[i] += counts[i]
		}
		aggCount += count
		aggSum += sum
		aggErrs += errs
		if max > aggMax {
			aggMax = max
		}
	}
	snap.Total = opSnapshot("all", &agg, aggCount, aggSum, aggMax, aggErrs)
	snap.SamplesSeen, snap.SamplesKept = r.samp.stats()
	return snap
}

// Samples returns a copy of the reservoir's current contents, ordered
// by span start time. Bounded by Config.SampleSize.
func (r *Recorder) Samples() []Sample {
	if r == nil {
		return nil
	}
	return r.samp.samples()
}

// WriteSummary writes a compact human-readable latency summary — the
// shape `motsim -live-summary` prints to stderr.
func (r *Recorder) WriteSummary(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	if _, err := fmt.Fprintf(w, "live %s: %d ops in %v, %d sampled of %d seen\n",
		s.Label, s.Total.Count, time.Duration(s.UptimeNs).Round(time.Millisecond),
		s.SamplesKept, s.SamplesSeen); err != nil {
		return err
	}
	for _, op := range s.Ops {
		if op.Count == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %-8s n=%-7d err=%-4d p50=%-10v p90=%-10v p99=%-10v p999=%-10v max=%v\n",
			op.Class, op.Count, op.Errors,
			time.Duration(op.P50Ns), time.Duration(op.P90Ns),
			time.Duration(op.P99Ns), time.Duration(op.P999Ns),
			time.Duration(op.MaxNs)); err != nil {
			return err
		}
	}
	return nil
}
