package live

import (
	"encoding/json"
	"expvar"
	"sync"
	"time"

	"repro/internal/runtime/track"
)

// Publish captures a snapshot and installs it as the recorder's
// latest published view (what Latest and the expvar hook serve).
func (r *Recorder) Publish() {
	if r == nil {
		return
	}
	s := r.Snapshot()
	r.published.Store(&s)
}

// Latest returns the most recently published snapshot, or a fresh one
// if nothing has been published yet (so the /debug/live endpoint is
// never stale-empty on a young server).
func (r *Recorder) Latest() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	if s := r.published.Load(); s != nil {
		return *s
	}
	return r.Snapshot()
}

// Publisher periodically re-publishes a recorder's snapshot on a
// background goroutine (launched via track.Group, per the barego
// discipline). Stop it before discarding the recorder.
type Publisher struct {
	quit chan struct{}
	g    track.Group
	once sync.Once
}

// StartPublisher publishes the recorder every interval until Stop.
// interval defaults to one second when non-positive. Returns nil on a
// nil recorder.
func (r *Recorder) StartPublisher(interval time.Duration) *Publisher {
	if r == nil {
		return nil
	}
	if interval <= 0 {
		interval = time.Second
	}
	p := &Publisher{quit: make(chan struct{})}
	p.g.Go(func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				r.Publish()
			case <-p.quit:
				return
			}
		}
	})
	return p
}

// Stop halts the publish loop and waits for its goroutine to exit.
// Safe to call more than once, and on a nil Publisher.
func (p *Publisher) Stop() {
	if p == nil {
		return
	}
	p.once.Do(func() { close(p.quit) })
	p.g.Wait()
}

// expvar's registry is process-global and panics on duplicate names,
// so the live vars publish through one registered Func per name that
// indirects into a swappable recorder registry: re-registering a label
// (tests, server restarts within a process) just repoints the entry.
var (
	expvarMu   sync.Mutex
	expvarRecs = map[string]*Recorder{}
	expvarOnce = map[string]*sync.Once{}
)

// PublishExpvar exposes the recorder's latest snapshot as the expvar
// variable "live.<label>" (served by /debug/vars). Registering the
// same label again repoints it at the new recorder.
func (r *Recorder) PublishExpvar() {
	if r == nil {
		return
	}
	name := "live." + r.label
	expvarMu.Lock()
	expvarRecs[name] = r
	once, ok := expvarOnce[name]
	if !ok {
		once = new(sync.Once)
		expvarOnce[name] = once
	}
	expvarMu.Unlock()
	once.Do(func() {
		expvar.Publish(name, expvar.Func(func() any {
			expvarMu.Lock()
			rec := expvarRecs[name]
			expvarMu.Unlock()
			return rec.Latest()
		}))
	})
}

// MarshalSnapshotJSON renders a snapshot as indented JSON — shared by
// the /debug/live handler and tests so both serve the same bytes.
func MarshalSnapshotJSON(s Snapshot) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
